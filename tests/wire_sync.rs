//! Differential fault matrix over real localhost TCP.
//!
//! The in-process suite (`tests/fault_sync.rs`) proves the driver survives
//! *content* faults; this suite re-runs that matrix with every peer behind
//! a real TCP connection — length-prefixed, checksummed frames, handshake,
//! per-read deadlines — and then adds the *byte-level* adversaries the
//! in-process transport cannot express: slow-loris drip-feeding, oversized
//! frame headers, mid-frame disconnects, post-handshake garbage,
//! frame-boundary truncation, checksum corruption, and connection churn.
//!
//! The deliverable under test is graceful degradation: one honest TCP peer
//! out of four suffices under every fault class, every adversary is banned
//! within a bounded time and score budget, and the converged state is
//! identical to the in-process run's.

use ebv::core::{
    serve_adversary, serve_blocks, sync_multi, BaselineNode, BlockSource, EbvBlock, EbvConfig,
    EbvNode, Fault, FaultSchedule, FaultyPeer, Intermediary, PeerHandle, SyncConfig, TcpPeer,
    TcpServer, WireAdversary, WireConfig,
};
use ebv::primitives::hash::Hash256;
use ebv::store::{KvStore, StoreConfig, UtxoSet};
use ebv::workload::{ChainGenerator, GeneratorParams};
use ebv_chain::Block;
use std::time::Duration;

/// A baseline chain and its EBV conversion.
fn chain_pair(n: u32, seed: u64) -> (Vec<Block>, Vec<EbvBlock>) {
    let blocks = ChainGenerator::new(GeneratorParams::tiny(n, seed)).generate();
    let ebv = Intermediary::new(0)
        .convert_chain(&blocks)
        .expect("conversion");
    (blocks, ebv)
}

fn fresh_baseline(genesis: &Block) -> BaselineNode {
    let utxos = UtxoSet::new(KvStore::open(StoreConfig::with_budget(8 << 20)).expect("store"));
    BaselineNode::new(genesis, utxos, ebv::core::BaselineConfig::default()).expect("boot")
}

/// Three content-faulty TCP servers + one honest, mirroring the in-process
/// `peer_lineup`: the servers speak the wire protocol perfectly but their
/// `BlockSource` injects the fault, so the bytes on the wire carry the
/// same corruption the channel transport would.
fn tcp_lineup<S: Clone + BlockSource + 'static>(
    chain: S,
    network: Hash256,
    fault: Fault,
) -> (Vec<TcpServer>, Vec<TcpPeer>) {
    let wire = WireConfig::fast_test();
    let mut servers = Vec::new();
    let mut peers = Vec::new();
    for p in 0..3usize {
        let mut pattern = vec![fault; p + 1];
        pattern.push(Fault::None);
        let faulty = FaultyPeer::new(chain.clone(), FaultSchedule::cycle(pattern))
            .with_stall(Duration::from_millis(120));
        let server = serve_blocks(faulty, network, wire).expect("bind faulty server");
        peers.push(TcpPeer::new(p, server.addr(), network, wire));
        servers.push(server);
    }
    let server = serve_blocks(chain, network, wire).expect("bind honest server");
    peers.push(TcpPeer::new(3, server.addr(), network, wire));
    servers.push(server);
    (servers, peers)
}

/// Sync an EBV node and a baseline node through the same faulty TCP
/// line-up and assert they converge to the same logical state — the exact
/// invariant `tests/fault_sync.rs` asserts for the in-process transport.
fn assert_differential_sync_tcp(fault: Fault, seed: u64) {
    let (blocks, ebv_blocks) = chain_pair(16, seed);
    let tip = blocks.len() as u32 - 1;
    let baseline_tip_hash = blocks[tip as usize].header.hash();
    let ebv_tip_hash = ebv_blocks[tip as usize].header.hash();
    let cfg = SyncConfig::fast_test();

    let ebv_network = ebv_blocks[0].header.hash();
    let mut ebv_node = EbvNode::new(&ebv_blocks[0], EbvConfig::default());
    let (_servers, peers) = tcp_lineup(ebv_blocks, ebv_network, fault);
    sync_multi(&mut ebv_node, peers, &cfg)
        .unwrap_or_else(|e| panic!("ebv TCP sync under {fault:?} (seed {seed}): {e}"));

    let baseline_network = blocks[0].header.hash();
    let mut baseline_node = fresh_baseline(&blocks[0]);
    let (_servers, peers) = tcp_lineup(blocks, baseline_network, fault);
    sync_multi(&mut baseline_node, peers, &cfg)
        .unwrap_or_else(|e| panic!("baseline TCP sync under {fault:?} (seed {seed}): {e}"));

    assert_eq!(ebv_node.tip_height(), tip, "{fault:?}: ebv tip");
    assert_eq!(baseline_node.tip_height(), tip, "{fault:?}: baseline tip");
    assert_eq!(ebv_node.tip_hash(), ebv_tip_hash, "{fault:?}: ebv tip hash");
    assert_eq!(
        baseline_node.tip_hash(),
        baseline_tip_hash,
        "{fault:?}: baseline tip hash"
    );
    assert_eq!(
        ebv_node.total_unspent(),
        baseline_node.utxos().size().count,
        "{fault:?}: unspent-set size must agree across systems"
    );
}

#[test]
fn tcp_survives_corrupt_peers() {
    assert_differential_sync_tcp(Fault::Corrupt, 101);
}

#[test]
fn tcp_survives_truncating_peers() {
    assert_differential_sync_tcp(Fault::Truncate, 201);
}

#[test]
fn tcp_survives_stalling_peers() {
    assert_differential_sync_tcp(Fault::Stall, 301);
}

#[test]
fn tcp_survives_wrong_height_peers() {
    assert_differential_sync_tcp(Fault::WrongHeight { offset: 3 }, 401);
}

#[test]
fn tcp_survives_stale_tip_peers() {
    assert_differential_sync_tcp(Fault::StaleTip, 501);
}

#[test]
fn tcp_equivocating_peers_cannot_displace_a_longer_chain() {
    // Equivocation over the wire: three TCP servers whose sources serve a
    // shorter fork on every other request; the reorg attempts must all be
    // rejected as not-better, exactly as in-process.
    let (blocks, ebv_blocks) = chain_pair(16, 701);
    let tip = blocks.len() as u32 - 1;
    let mut short_fork: Vec<Block> = blocks[..=(tip - 5) as usize].to_vec();
    for k in 0..2u32 {
        let h = tip - 5 + 1 + k;
        let prev = short_fork.last().expect("prefix").header.hash();
        short_fork.push(ebv::chain::build_block(
            prev,
            ebv::chain::coinbase_tx(h, ebv::script::Script::new(), Vec::new()),
            Vec::new(),
            777,
            0,
        ));
    }
    let ebv_short_fork = Intermediary::new(0)
        .convert_chain(&short_fork)
        .expect("fork conversion");
    let network = ebv_blocks[0].header.hash();
    let wire = WireConfig::fast_test();
    let cfg = SyncConfig::fast_test();

    let mut node = EbvNode::new(&ebv_blocks[0], EbvConfig::default());
    let mut servers = Vec::new();
    let mut peers = Vec::new();
    for p in 0..3usize {
        let faulty = FaultyPeer::new(
            ebv_blocks.clone(),
            FaultSchedule::cycle(vec![Fault::Equivocate, Fault::None]),
        )
        .with_fork(ebv_short_fork.clone());
        let server = serve_blocks(faulty, network, wire).expect("bind equivocator");
        peers.push(TcpPeer::new(p, server.addr(), network, wire));
        servers.push(server);
    }
    let server = serve_blocks(ebv_blocks.clone(), network, wire).expect("bind honest");
    peers.push(TcpPeer::new(3, server.addr(), network, wire));
    servers.push(server);

    sync_multi(&mut node, peers, &cfg).expect("sync completes over TCP");
    assert_eq!(node.tip_height(), tip);
    assert_eq!(node.tip_hash(), ebv_blocks[tip as usize].header.hash());
}

#[test]
fn tcp_run_converges_to_the_same_state_as_in_process() {
    // Same chain, same fault class, both transports: the `Transport`
    // abstraction must be invisible in the converged state.
    let (_, ebv_blocks) = chain_pair(16, 1601);
    let tip = ebv_blocks.len() as u32 - 1;
    let cfg = SyncConfig::fast_test();

    let mut in_process = EbvNode::new(&ebv_blocks[0], EbvConfig::default());
    let mut peers = Vec::new();
    for p in 0..3usize {
        let mut pattern = vec![Fault::Corrupt; p + 1];
        pattern.push(Fault::None);
        let faulty = FaultyPeer::new(ebv_blocks.clone(), FaultSchedule::cycle(pattern))
            .with_stall(Duration::from_millis(120));
        peers.push(PeerHandle::spawn(p, faulty));
    }
    peers.push(PeerHandle::spawn(3, ebv_blocks.clone()));
    sync_multi(&mut in_process, peers, &cfg).expect("in-process sync");

    let network = ebv_blocks[0].header.hash();
    let mut over_tcp = EbvNode::new(&ebv_blocks[0], EbvConfig::default());
    let (_servers, peers) = tcp_lineup(ebv_blocks, network, Fault::Corrupt);
    sync_multi(&mut over_tcp, peers, &cfg).expect("TCP sync");

    assert_eq!(in_process.tip_height(), tip);
    assert_eq!(over_tcp.tip_height(), in_process.tip_height());
    assert_eq!(over_tcp.tip_hash(), in_process.tip_hash());
    assert_eq!(over_tcp.total_unspent(), in_process.total_unspent());
}

/// Three byte-level adversaries of one class + one honest peer. Asserts
/// graceful degradation: the node reaches the tip, every adversary is
/// banned inside a bounded time and score budget, the honest peer is not.
///
/// `id_base` keeps each class's peer ids unique so the process-global
/// telemetry trace stays attributable under parallel test execution.
fn assert_adversary_class_contained(adversary: WireAdversary, id_base: usize) {
    let (_, ebv_blocks) = chain_pair(12, 2000 + id_base as u64);
    let tip = ebv_blocks.len() as u32 - 1;
    let network = ebv_blocks[0].header.hash();
    let wire = WireConfig::fast_test();
    let cfg = SyncConfig::fast_test();

    let mut node = EbvNode::new(&ebv_blocks[0], EbvConfig::default());
    let mut adv_servers = Vec::new();
    let mut peers = Vec::new();
    for p in 0..3usize {
        let server =
            serve_adversary(ebv_blocks.clone(), network, adversary, wire).expect("bind adversary");
        peers.push(TcpPeer::new(id_base + p, server.addr(), network, wire));
        adv_servers.push(server);
    }
    let honest = serve_blocks(ebv_blocks.clone(), network, wire).expect("bind honest");
    peers.push(TcpPeer::new(id_base + 3, honest.addr(), network, wire));

    let report = sync_multi(&mut node, peers, &cfg).unwrap_or_else(|e| {
        panic!(
            "{}: one honest peer must carry the sync: {e}",
            adversary.label()
        )
    });

    assert_eq!(node.tip_height(), tip, "{}: tip", adversary.label());
    assert_eq!(
        node.tip_hash(),
        ebv_blocks[tip as usize].header.hash(),
        "{}: tip hash",
        adversary.label()
    );
    for stats in &report.peers[..3] {
        assert!(
            stats.banned,
            "{}: adversary peer {} not banned (score {}, wire errors {}, stalls {})",
            adversary.label(),
            stats.id,
            stats.score,
            stats.wire_errors,
            stats.stalls
        );
        assert!(
            stats.score >= 100,
            "{}: ban without a full score ({})",
            adversary.label(),
            stats.score
        );
        // Strikes to a 100-point ban: at most 40 points per violation, so
        // at least 3 byte-level violations (or deadline stalls, for the
        // slow classes) must have been recorded.
        assert!(
            stats.wire_errors + stats.stalls >= 3,
            "{}: ban not backed by recorded violations (wire {}, stalls {})",
            adversary.label(),
            stats.wire_errors,
            stats.stalls
        );
        // Bounded time-to-ban: worst case is 4 strikes behind per-request
        // deadlines plus capped backoff; 5 seconds is an order of
        // magnitude of headroom over the observed worst class.
        let banned_at = stats
            .banned_at_us
            .unwrap_or_else(|| panic!("{}: banned without a ban time", adversary.label()));
        assert!(
            banned_at <= 5_000_000,
            "{}: time-to-ban {banned_at}us exceeds the 5s budget",
            adversary.label()
        );
    }
    assert!(
        !report.peers[3].banned,
        "{}: honest peer banned",
        adversary.label()
    );
}

#[test]
fn tcp_contains_slow_loris_peers() {
    assert_adversary_class_contained(
        WireAdversary::SlowLoris {
            interval: Duration::from_millis(5),
        },
        9200,
    );
}

#[test]
fn tcp_contains_oversized_frame_peers() {
    assert_adversary_class_contained(WireAdversary::OversizedFrame, 9210);
}

#[test]
fn tcp_contains_mid_frame_disconnect_peers() {
    assert_adversary_class_contained(WireAdversary::MidFrameDisconnect, 9220);
}

#[test]
fn tcp_contains_garbage_after_handshake_peers() {
    assert_adversary_class_contained(WireAdversary::GarbageAfterHandshake, 9230);
}

#[test]
fn tcp_contains_frame_truncation_peers() {
    assert_adversary_class_contained(WireAdversary::FrameTruncation, 9240);
}

#[test]
fn tcp_contains_bad_checksum_peers() {
    assert_adversary_class_contained(WireAdversary::BadChecksum, 9250);
}

#[test]
fn tcp_contains_connection_churn_peers() {
    assert_adversary_class_contained(WireAdversary::Churn, 9260);
}

#[test]
fn ban_trace_names_the_byte_level_violation() {
    // The ban verdict must carry byte-level evidence: a checksum-corrupting
    // peer's score events name "checksum-mismatch" and the ban event
    // carries a time-to-ban. Unique peer id 9300 keeps this attributable
    // in the process-global trace.
    ebv::telemetry::set_enabled(true);
    let (_, ebv_blocks) = chain_pair(10, 3001);
    let network = ebv_blocks[0].header.hash();
    let wire = WireConfig::fast_test();
    let cfg = SyncConfig::fast_test();

    let server = serve_adversary(
        ebv_blocks.clone(),
        network,
        WireAdversary::BadChecksum,
        wire,
    )
    .expect("bind adversary");
    let peers = vec![TcpPeer::new(9300, server.addr(), network, wire)];
    let mut node = EbvNode::new(&ebv_blocks[0], EbvConfig::default());
    let err = sync_multi(&mut node, peers, &cfg).expect_err("no honest peer to finish");
    match err {
        ebv::core::SyncError::AllPeersFailed { total, banned, .. } => {
            assert_eq!(total, 1);
            assert_eq!(banned, 1, "the checksum corruptor must be banned");
        }
        other => panic!("expected AllPeersFailed, got {other:?}"),
    }

    let trace = ebv::telemetry::trace_snapshot();
    let penalties = trace
        .iter()
        .filter(|l| {
            l.contains("\"event\":\"sync.peer_score\"")
                && l.contains("\"peer\":9300")
                && l.contains("\"reason\":\"checksum-mismatch\"")
        })
        .count();
    assert!(
        penalties >= 3,
        "a 100-point ban from 40-point checksum penalties needs at least 3 \
         score events, saw {penalties}"
    );
    let bans: Vec<&String> = trace
        .iter()
        .filter(|l| l.contains("\"event\":\"sync.peer_banned\"") && l.contains("\"peer\":9300"))
        .collect();
    assert_eq!(bans.len(), 1, "exactly one ban event for peer 9300");
    assert!(
        bans[0].contains("\"banned_after_us\":"),
        "ban event must carry the time-to-ban: {}",
        bans[0]
    );
}

#[test]
fn tcp_failover_when_a_peer_exhausts_mid_chain() {
    // Partition-shaped failover: peer 0 serves only the first half of the
    // chain and answers Exhausted beyond it; peer 1 has the whole chain.
    // The driver must finish on peer 1 without banning the stale peer.
    let (_, ebv_blocks) = chain_pair(16, 4001);
    let tip = ebv_blocks.len() as u32 - 1;
    let network = ebv_blocks[0].header.hash();
    let wire = WireConfig::fast_test();
    let cfg = SyncConfig::fast_test();

    let half: Vec<EbvBlock> = ebv_blocks[..ebv_blocks.len() / 2].to_vec();
    let stale = serve_blocks(half, network, wire).expect("bind stale server");
    let full = serve_blocks(ebv_blocks.clone(), network, wire).expect("bind full server");
    let peers = vec![
        TcpPeer::new(0, stale.addr(), network, wire),
        TcpPeer::new(1, full.addr(), network, wire),
    ];
    let mut node = EbvNode::new(&ebv_blocks[0], EbvConfig::default());
    let report = sync_multi(&mut node, peers, &cfg).expect("full peer carries the sync");
    assert_eq!(node.tip_height(), tip);
    assert!(!report.peers[1].banned, "the full peer must not be banned");
}

#[test]
fn tcp_failover_when_a_server_goes_down() {
    // Peer 0's server is shut down before the sync starts (the listener is
    // gone, dials fail); peer 1 is live. The driver must close peer 0
    // after its dial budget and finish on peer 1 alone.
    let (_, ebv_blocks) = chain_pair(12, 4101);
    let tip = ebv_blocks.len() as u32 - 1;
    let network = ebv_blocks[0].header.hash();
    let wire = WireConfig::fast_test();
    let cfg = SyncConfig::fast_test();

    let dead = serve_blocks(ebv_blocks.clone(), network, wire).expect("bind doomed server");
    let dead_addr = dead.addr();
    dead.shutdown();
    let live = serve_blocks(ebv_blocks.clone(), network, wire).expect("bind live server");
    let peers = vec![
        TcpPeer::new(0, dead_addr, network, wire),
        TcpPeer::new(1, live.addr(), network, wire),
    ];
    let mut node = EbvNode::new(&ebv_blocks[0], EbvConfig::default());
    let report = sync_multi(&mut node, peers, &cfg).expect("live peer carries the sync");
    assert_eq!(node.tip_height(), tip);
    assert_eq!(
        report.peers[0].blocks_accepted, 0,
        "dead peer served nothing"
    );
    assert!(!report.peers[1].banned, "live peer must not be banned");
}

#[test]
fn tcp_scales_to_dozens_of_mixed_adversaries() {
    // The netsim-scale scenario: 4 honest TCP servers against two full
    // cohorts of every adversary class (14 adversarial peers, 18 total).
    // The model node validates structurally, so this exercises connection
    // handling and scoring at scale rather than validation cost.
    let blocks = ChainGenerator::new(GeneratorParams::tiny(20, 4201)).generate();
    let tip = blocks.len() as u32 - 1;
    let mut adversaries = WireAdversary::all(Duration::from_millis(5));
    adversaries.extend(WireAdversary::all(Duration::from_millis(3)));
    let n_advs = adversaries.len();
    let result = ebv::netsim::sync_under_wire_faults(
        &blocks,
        ebv::netsim::ValidationModel::Constant(10),
        4,
        &adversaries,
        7,
    )
    .expect("honest cohort must carry the sync");
    assert_eq!(result.tip_height, tip);
    let banned = result.report.peers[..n_advs]
        .iter()
        .filter(|s| s.banned)
        .count();
    assert_eq!(banned, n_advs, "every adversary banned ({banned}/{n_advs})");
    for stats in &result.report.peers[n_advs..] {
        assert!(!stats.banned, "honest peer {} banned", stats.id);
    }
}
