//! Differential fault-injection suite for the multi-peer sync subsystem.
//!
//! For every fault class the harness can inject, an EBV node and a
//! baseline node sync the same logical chain through the same peer
//! line-up (three faulty peers, one honest) with deterministic, seeded
//! fault schedules — and must converge to the same place: identical tip
//! height, identical total-unspent count, and each node's tip hash equal
//! to its own format's expected tip. (The intermediary re-mines headers
//! when converting baseline blocks to EBV format, so the two formats'
//! hashes differ by construction; height + unspent-set equality is the
//! cross-format invariant, own-format tip hash the per-node one.)
//!
//! Also here: the forced 3-block reorg mid-IBD, the reorg restore path,
//! and the disconnect-to-genesis round trip driven through the
//! `ValidatingNode` interface with invariants checked at every step.

use ebv::chain::{build_block, coinbase_tx, Block};
use ebv::core::sync::node::ValidatingNode;
use ebv::core::{
    reorg_to, sync_multi, BaselineConfig, BaselineNode, EbvBlock, EbvConfig, EbvNode, Fault,
    FaultSchedule, FaultyPeer, Intermediary, PeerHandle, ReorgError, SyncConfig,
};
use ebv::script::Script;
use ebv::store::{KvStore, StoreConfig, UtxoSet};
use ebv::workload::{ChainGenerator, GeneratorParams};
use std::time::Duration;

/// A baseline chain and its EBV conversion.
fn chain_pair(n: u32, seed: u64) -> (Vec<Block>, Vec<EbvBlock>) {
    let blocks = ChainGenerator::new(GeneratorParams::tiny(n, seed)).generate();
    let ebv = Intermediary::new(0)
        .convert_chain(&blocks)
        .expect("conversion");
    (blocks, ebv)
}

/// `base[..=fork]` plus `ext` fresh empty blocks (distinct `time` keeps the
/// branch's hashes off the main chain).
fn fork_chain(base: &[Block], fork: u32, ext: usize, time: u32) -> Vec<Block> {
    let mut chain: Vec<Block> = base[..=fork as usize].to_vec();
    for k in 0..ext {
        let h = fork + 1 + k as u32;
        let prev = chain.last().expect("prefix nonempty").header.hash();
        chain.push(build_block(
            prev,
            coinbase_tx(h, Script::new(), Vec::new()),
            Vec::new(),
            time,
            0,
        ));
    }
    chain
}

fn fresh_baseline(genesis: &Block) -> BaselineNode {
    let utxos = UtxoSet::new(KvStore::open(StoreConfig::with_budget(8 << 20)).expect("store"));
    BaselineNode::new(genesis, utxos, BaselineConfig::default()).expect("boot")
}

/// Three faulty peers + one honest peer, all serving `chain`, faults from
/// a deterministic cyclic schedule (fault on every other request).
fn peer_lineup<S: Clone + ebv::core::BlockSource + 'static>(
    chain: S,
    fault: Fault,
) -> Vec<PeerHandle> {
    let mut peers = Vec::new();
    for p in 0..3usize {
        // Offset each peer's cycle so the lineup is not in lockstep.
        let mut pattern = vec![fault; p + 1];
        pattern.push(Fault::None);
        let faulty = FaultyPeer::new(chain.clone(), FaultSchedule::cycle(pattern))
            .with_stall(Duration::from_millis(120));
        peers.push(PeerHandle::spawn(p, faulty));
    }
    peers.push(PeerHandle::spawn(3, chain));
    peers
}

/// Sync an EBV node and a baseline node through the same faulty lineup and
/// assert they converge to the same logical state.
fn assert_differential_sync(fault: Fault, seed: u64) {
    let (blocks, ebv_blocks) = chain_pair(16, seed);
    let tip = blocks.len() as u32 - 1;
    let baseline_tip_hash = blocks[tip as usize].header.hash();
    let ebv_tip_hash = ebv_blocks[tip as usize].header.hash();
    let cfg = SyncConfig::fast_test();

    let mut ebv_node = EbvNode::new(&ebv_blocks[0], EbvConfig::default());
    sync_multi(&mut ebv_node, peer_lineup(ebv_blocks, fault), &cfg)
        .unwrap_or_else(|e| panic!("ebv sync under {fault:?} (seed {seed}): {e}"));

    let mut baseline_node = fresh_baseline(&blocks[0]);
    sync_multi(&mut baseline_node, peer_lineup(blocks, fault), &cfg)
        .unwrap_or_else(|e| panic!("baseline sync under {fault:?} (seed {seed}): {e}"));

    assert_eq!(ebv_node.tip_height(), tip, "{fault:?}: ebv tip");
    assert_eq!(baseline_node.tip_height(), tip, "{fault:?}: baseline tip");
    assert_eq!(ebv_node.tip_hash(), ebv_tip_hash, "{fault:?}: ebv tip hash");
    assert_eq!(
        baseline_node.tip_hash(),
        baseline_tip_hash,
        "{fault:?}: baseline tip hash"
    );
    assert_eq!(
        ebv_node.total_unspent(),
        baseline_node.utxos().size().count,
        "{fault:?}: unspent-set size must agree across systems"
    );
}

#[test]
fn survives_corrupt_peers() {
    assert_differential_sync(Fault::Corrupt, 101);
    assert_differential_sync(Fault::Corrupt, 102);
}

#[test]
fn survives_truncating_peers() {
    assert_differential_sync(Fault::Truncate, 201);
    assert_differential_sync(Fault::Truncate, 202);
}

#[test]
fn survives_stalling_peers() {
    assert_differential_sync(Fault::Stall, 301);
}

#[test]
fn survives_wrong_height_peers() {
    assert_differential_sync(Fault::WrongHeight { offset: 3 }, 401);
    assert_differential_sync(Fault::WrongHeight { offset: 7 }, 402);
}

#[test]
fn survives_stale_tip_peers() {
    assert_differential_sync(Fault::StaleTip, 501);
    assert_differential_sync(Fault::StaleTip, 502);
}

#[test]
fn survives_seeded_fault_soup() {
    // Every fault class mixed, drawn from a seeded schedule per peer.
    let (blocks, ebv_blocks) = chain_pair(16, 601);
    let tip = blocks.len() as u32 - 1;
    let cfg = SyncConfig::fast_test();
    let all_faults = vec![
        Fault::Corrupt,
        Fault::Truncate,
        Fault::Stall,
        Fault::WrongHeight { offset: 3 },
        Fault::StaleTip,
    ];

    let mut ebv_node = EbvNode::new(&ebv_blocks[0], EbvConfig::default());
    let mut peers = Vec::new();
    for p in 0..3usize {
        let schedule = FaultSchedule::seeded(601 + p as u64, 40, all_faults.clone());
        let faulty =
            FaultyPeer::new(ebv_blocks.clone(), schedule).with_stall(Duration::from_millis(120));
        peers.push(PeerHandle::spawn(p, faulty));
    }
    peers.push(PeerHandle::spawn(3, ebv_blocks));
    let report = sync_multi(&mut ebv_node, peers, &cfg).expect("sync survives the soup");
    assert_eq!(ebv_node.tip_height(), tip);
    assert!(
        !report.peers[3].banned,
        "the honest peer must not be banned"
    );
}

#[test]
fn banned_peer_trace_explains_the_ban() {
    // A ban is a terminal judgment; the event trace must carry the
    // evidence (the per-penalty score changes and their reasons), not just
    // the verdict. The trace is process-global, so a unique peer id keeps
    // this test's lines distinguishable from other tests in this binary.
    ebv::telemetry::set_enabled(true);
    let (_, ebv_blocks) = chain_pair(12, 1101);
    // A unique driver seed gives this session a trace root no other test
    // in the binary shares, so the flight-recorder bundle below can be
    // found by trace id alone.
    let cfg = SyncConfig {
        seed: 0x9100,
        ..SyncConfig::fast_test()
    };

    // The only peer corrupts every batch: each failure costs 40 points
    // (the corrupted blocks decode but do not link, so the driver walks
    // the "fork" and rejects it), so the ban threshold (100) falls on the
    // third failure, after which no usable peer remains and the sync
    // reports failure.
    let always_corrupt = FaultyPeer::new(
        ebv_blocks.clone(),
        FaultSchedule::cycle(vec![Fault::Corrupt]),
    );
    let peers = vec![PeerHandle::spawn(9100, always_corrupt)];
    let mut node = EbvNode::new(&ebv_blocks[0], EbvConfig::default());
    let err = sync_multi(&mut node, peers, &cfg).expect_err("no honest peer to finish the sync");
    match err {
        ebv::core::SyncError::AllPeersFailed { total, banned, .. } => {
            assert_eq!(total, 1);
            assert_eq!(
                banned, 1,
                "the corrupt peer must be banned, not merely failed"
            );
        }
        other => panic!("expected AllPeersFailed, got {other:?}"),
    }

    let trace = ebv::telemetry::trace_snapshot();
    let bans: Vec<&String> = trace
        .iter()
        .filter(|l| l.contains("\"event\":\"sync.peer_banned\"") && l.contains("\"peer\":9100"))
        .collect();
    assert_eq!(bans.len(), 1, "exactly one ban event for peer 9100");
    // The ban names the fault class that tipped the score...
    let reason = bans[0]
        .split("\"last_reason\":\"")
        .nth(1)
        .and_then(|rest| rest.split('"').next())
        .unwrap_or_else(|| panic!("ban event lacks a last_reason: {}", bans[0]));
    // ...and the per-penalty score events corroborate it: at least three
    // 40-point penalties of that same class precede a 100-point ban.
    let matching_penalties = trace
        .iter()
        .filter(|l| {
            l.contains("\"event\":\"sync.peer_score\"")
                && l.contains("\"peer\":9100")
                && l.contains(&format!("\"reason\":\"{reason}\""))
        })
        .count();
    assert!(
        matching_penalties >= 3,
        "a 100-point ban from 40-point {reason:?} penalties needs at least 3 \
         score events, saw {matching_penalties}"
    );

    // The ban also dumps a flight-recorder bundle, and that bundle must be
    // reconstructible from the ban's trace id alone: every captured event
    // carries the same trace, and the causal chain contains both the
    // corroborating score penalties and the ban itself.
    let ban_trace = bans[0]
        .split("\"trace\":\"")
        .nth(1)
        .and_then(|rest| rest.split('"').next())
        .unwrap_or_else(|| panic!("ban event lacks a trace id: {}", bans[0]))
        .to_string();
    let bundle = ebv::telemetry::flight::recent_bundles()
        .into_iter()
        .find(|b| {
            b.contains("\"trigger\":\"sync.peer_banned\"")
                && b.contains(&format!("\"trace\":\"{ban_trace}\""))
        })
        .expect("the ban must dump a post-mortem bundle under its trace id");
    let bundle_json = ebv::telemetry::json::parse(&bundle).expect("bundle is valid JSON");
    let events = match bundle_json.get("events") {
        Some(ebv::telemetry::json::Value::Array(events)) => events,
        other => panic!("bundle events missing: {other:?}"),
    };
    use ebv::telemetry::json::Value;
    let mut scores = 0usize;
    let mut saw_ban = false;
    for ev in events {
        assert_eq!(
            ev.get("trace").and_then(Value::as_str),
            Some(ban_trace.as_str()),
            "bundle event outside the ban's trace: {ev:?}"
        );
        match ev.get("event").and_then(Value::as_str) {
            Some("sync.peer_score") => scores += 1,
            Some("sync.peer_banned") => saw_ban = true,
            _ => {}
        }
    }
    assert!(saw_ban, "bundle must contain the triggering ban event");
    assert!(
        scores >= 3,
        "bundle must carry the causal chain (≥3 score penalties), saw {scores}"
    );
    // The bundle embeds the banned peer's stats as trigger context.
    assert!(
        bundle.contains("\"peer\":") && bundle.contains("\"banned\":true"),
        "bundle must embed the banned peer's stats"
    );
}

#[test]
fn equivocating_peers_cannot_displace_a_longer_chain() {
    // The equivocating peers' fork is shorter than the honest chain, so
    // every reorg attempt must be rejected as not-better.
    let (blocks, ebv_blocks) = chain_pair(16, 701);
    let tip = blocks.len() as u32 - 1;
    let short_fork = fork_chain(&blocks, tip - 5, 2, 777);
    let ebv_short_fork = Intermediary::new(0)
        .convert_chain(&short_fork)
        .expect("fork conversion");
    let cfg = SyncConfig::fast_test();

    let mut node = EbvNode::new(&ebv_blocks[0], EbvConfig::default());
    let mut peers = Vec::new();
    for p in 0..3usize {
        let faulty = FaultyPeer::new(
            ebv_blocks.clone(),
            FaultSchedule::cycle(vec![Fault::Equivocate, Fault::None]),
        )
        .with_fork(ebv_short_fork.clone());
        peers.push(PeerHandle::spawn(p, faulty));
    }
    peers.push(PeerHandle::spawn(3, ebv_blocks.clone()));
    sync_multi(&mut node, peers, &cfg).expect("sync completes");
    assert_eq!(node.tip_height(), tip);
    assert_eq!(node.tip_hash(), ebv_blocks[tip as usize].header.hash());
}

#[test]
fn forced_three_block_reorg_mid_ibd() {
    // Peer 0 serves branch A; peer 1 serves branch B, which forks 3 blocks
    // below A's tip and is 3 blocks longer. The driver syncs A first
    // (lower peer id), discovers B mid-IBD, and must reorg onto it. Both
    // node types end on their own format's B tip with identical logical
    // state.
    let (blocks_a, ebv_a) = chain_pair(12, 801);
    let tip_a = blocks_a.len() as u32 - 1;
    let fork = tip_a - 3;
    let blocks_b = fork_chain(&blocks_a, fork, 6, 888);
    let ebv_b = Intermediary::new(0)
        .convert_chain(&blocks_b)
        .expect("branch B conversion");
    let tip_b = blocks_b.len() as u32 - 1;
    assert_eq!(tip_b, fork + 6);
    let cfg = SyncConfig::fast_test();

    // EBV node.
    let mut ebv_node = EbvNode::new(&ebv_a[0], EbvConfig::default());
    let peers = vec![
        PeerHandle::spawn(0, ebv_a.clone()),
        PeerHandle::spawn(1, ebv_b.clone()),
    ];
    let report = sync_multi(&mut ebv_node, peers, &cfg).expect("ebv sync with reorg");
    assert_eq!(report.reorgs, 1, "exactly one reorg");
    assert_eq!(report.blocks_disconnected, 3, "a 3-block unwind");
    assert_eq!(ebv_node.tip_height(), tip_b);
    assert_eq!(ebv_node.tip_hash(), ebv_b[tip_b as usize].header.hash());

    // Baseline node, same story.
    let mut baseline_node = fresh_baseline(&blocks_a[0]);
    let peers = vec![
        PeerHandle::spawn(0, blocks_a.clone()),
        PeerHandle::spawn(1, blocks_b.clone()),
    ];
    let report = sync_multi(&mut baseline_node, peers, &cfg).expect("baseline sync with reorg");
    assert_eq!(report.reorgs, 1);
    assert_eq!(report.blocks_disconnected, 3);
    assert_eq!(baseline_node.tip_height(), tip_b);
    assert_eq!(
        baseline_node.tip_hash(),
        blocks_b[tip_b as usize].header.hash()
    );

    // Cross-system: after the identical reorg, the unspent sets agree.
    assert_eq!(
        ebv_node.total_unspent(),
        baseline_node.utxos().size().count,
        "post-reorg unspent-set size must agree across systems"
    );
}

#[test]
fn reorg_restores_original_chain_when_branch_is_invalid() {
    let (_, ebv_a) = chain_pair(10, 901);
    let full_tip = ebv_a.len() as u32 - 1;
    let mut node = EbvNode::new(&ebv_a[0], EbvConfig::default());
    for b in &ebv_a[1..] {
        node.process_block(b).expect("valid");
    }
    // Unwind one block so a 3-block branch from the same material is
    // strictly longer than the node's remaining 2 blocks above the fork.
    node.disconnect_tip().expect("undo intact");
    let tip = node.tip_height();
    assert_eq!(tip, full_tip - 1);
    let unspent_before = node.total_unspent();
    let fork = tip - 2;

    // A would-be-better branch whose second block is corrupt: take A's own
    // top blocks (so the header-linkage pre-check passes) and break the
    // middle one's tidy body — validation fails there, mid-connect.
    let b1 = ebv_a[(fork + 1) as usize].clone();
    let mut b2 = ebv_a[(fork + 2) as usize].clone();
    let b3 = ebv_a[(fork + 3) as usize].clone();
    b2.transactions[0].tidy.lock_time += 1; // breaks integrity/merkle
    let branch: Vec<EbvBlock> = vec![b1, b2, b3];
    let old_branch: Vec<EbvBlock> = ebv_a[(fork + 1) as usize..=tip as usize].to_vec();
    match reorg_to(&mut node, fork, &branch, &old_branch) {
        Err(ReorgError::InvalidBranch { restored: true, .. }) => {}
        other => panic!("expected restored invalid-branch failure, got {other:?}"),
    }
    // Original chain is back, bit-for-bit.
    assert_eq!(node.tip_height(), tip);
    assert_eq!(node.tip_hash(), ebv_a[tip as usize].header.hash());
    assert_eq!(node.total_unspent(), unspent_before);
    node.check_invariants()
        .expect("invariants hold after restore");
}

#[test]
fn disconnect_to_genesis_round_trip_with_sparse_vectors() {
    // A mainnet-like chain long enough that spent-out blocks produce
    // sparse and deleted vectors; unwind it block by block through the
    // ValidatingNode interface (as the reorg engine would), checking
    // invariants at every step, then replay it and compare state.
    let (blocks, ebv_blocks) = chain_pair(40, 1001);
    let mut ebv_node = EbvNode::new(&ebv_blocks[0], EbvConfig::default());
    for b in &ebv_blocks[1..] {
        ebv_node.process_block(b).expect("valid");
    }
    let tip = ebv_node.tip_height();
    let tip_hash = ebv_node.tip_hash();
    let unspent = ebv_node.total_unspent();
    let memory = ebv_node.status_memory();

    let mut baseline_node = fresh_baseline(&blocks[0]);
    for b in &blocks[1..] {
        baseline_node.process_block(b).expect("valid");
    }
    let baseline_count = baseline_node.utxos().size().count;
    assert_eq!(unspent, baseline_count);

    // Unwind both to genesis.
    for expected in (0..tip).rev() {
        let h = ValidatingNode::disconnect_tip_block(&mut ebv_node)
            .expect("undo intact")
            .expect("not at genesis yet");
        assert_eq!(h, expected);
        ebv_node.check_invariants().expect("ebv invariants");
        let h = ValidatingNode::disconnect_tip_block(&mut baseline_node)
            .expect("undo intact")
            .expect("not at genesis yet");
        assert_eq!(h, expected);
        baseline_node
            .check_invariants()
            .expect("baseline invariants");
    }
    assert_eq!(ebv_node.tip_height(), 0);
    assert_eq!(baseline_node.tip_height(), 0);
    // Genesis cannot be disconnected.
    assert_eq!(
        ValidatingNode::disconnect_tip_block(&mut ebv_node).expect("ok"),
        None
    );
    assert_eq!(
        ValidatingNode::disconnect_tip_block(&mut baseline_node).expect("ok"),
        None
    );

    // Replay to the tip: byte-identical final state.
    for b in &ebv_blocks[1..] {
        ebv_node.process_block(b).expect("replay");
    }
    for b in &blocks[1..] {
        baseline_node.process_block(b).expect("replay");
    }
    assert_eq!(ebv_node.tip_height(), tip);
    assert_eq!(ebv_node.tip_hash(), tip_hash);
    assert_eq!(ebv_node.total_unspent(), unspent);
    assert_eq!(ebv_node.status_memory(), memory);
    assert_eq!(baseline_node.utxos().size().count, baseline_count);
}
