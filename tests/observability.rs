//! Observability-layer integration: deterministic trace trees, flight-
//! recorder post-mortems at every failure class, and the health watchdog.
//!
//! Telemetry state (trace ring, flight rings, registry, heartbeats) is
//! process-global, so every test here serializes on one lock and clears
//! the rings it reads before producing events.

use ebv::core::{
    build_checkpoints, parallel_ibd, sync_multi, EbvBlock, EbvConfig, EbvNode, Fault,
    FaultSchedule, FaultyPeer, Intermediary, PeerHandle, SyncConfig,
};
use ebv::telemetry::json::{parse, Value};
use ebv::workload::{ChainGenerator, GeneratorParams};
use std::sync::{Mutex, MutexGuard};
use std::time::Duration;

static OBS_LOCK: Mutex<()> = Mutex::new(());

/// Take the global-telemetry lock, enable telemetry, and clear the trace
/// and flight rings so the test reads only its own events.
fn telemetry_session() -> MutexGuard<'static, ()> {
    let guard = OBS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    ebv::telemetry::set_enabled(true);
    ebv::telemetry::trace_clear();
    ebv::telemetry::flight::clear();
    guard
}

fn ebv_chain(n: u32, seed: u64) -> Vec<EbvBlock> {
    let blocks = ChainGenerator::new(GeneratorParams::tiny(n, seed)).generate();
    Intermediary::new(0)
        .convert_chain(&blocks)
        .expect("conversion")
}

/// One peer that corrupts every batch: three 40-point penalties, a ban,
/// then `AllPeersFailed` — the canonical failing session.
fn run_ban_scenario(chain: &[EbvBlock], driver_seed: u64) {
    let cfg = SyncConfig {
        seed: driver_seed,
        ..SyncConfig::fast_test()
    };
    let corrupt = FaultyPeer::new(chain.to_vec(), FaultSchedule::cycle(vec![Fault::Corrupt]));
    let peers = vec![PeerHandle::spawn(4242, corrupt)];
    let mut node = EbvNode::new(&chain[0], EbvConfig::default());
    sync_multi(&mut node, peers, &cfg).expect_err("no honest peer to finish the sync");
}

/// The identity of every span in the trace ring: (trace, span, parent,
/// name), sorted. Wall times and ring order are timing-dependent; the id
/// tuples are what the seeded-determinism claim is about.
fn span_tuples() -> Vec<(String, String, String, String)> {
    let mut out = Vec::new();
    for line in ebv::telemetry::trace_snapshot() {
        let Ok(v) = parse(&line) else { continue };
        if v.get("event").and_then(Value::as_str) != Some("span.begin") {
            continue;
        }
        let field = |k: &str| v.get(k).and_then(Value::as_str).unwrap_or("").to_string();
        out.push((
            field("trace"),
            field("span"),
            field("parent"),
            field("name"),
        ));
    }
    out.sort();
    out
}

#[test]
fn same_seed_sync_runs_yield_identical_span_trees() {
    let _guard = telemetry_session();
    let chain = ebv_chain(12, 0xabc1);

    run_ban_scenario(&chain, 0xd0d0);
    let first = span_tuples();
    assert!(
        first.iter().any(|t| t.3 == "sync.session"),
        "the session root span must appear"
    );
    assert!(
        first.iter().any(|t| t.3 == "sync.request"),
        "per-request spans must appear"
    );

    ebv::telemetry::trace_clear();
    ebv::telemetry::flight::clear();
    run_ban_scenario(&chain, 0xd0d0);
    let second = span_tuples();

    assert_eq!(
        first, second,
        "same seed must derive byte-identical trace/span/parent ids"
    );

    // A different seed roots a different trace entirely.
    ebv::telemetry::trace_clear();
    ebv::telemetry::flight::clear();
    run_ban_scenario(&chain, 0xd0d1);
    let third = span_tuples();
    assert_ne!(first[0].0, third[0].0, "distinct seeds, distinct trace ids");
}

#[test]
fn same_seed_parallel_ibd_yields_identical_span_trees() {
    let _guard = telemetry_session();
    let chain = ebv_chain(120, 0x51ac);
    let checkpoints = build_checkpoints(&chain[0], &chain[1..], 30).expect("consistent");

    let mut runs = Vec::new();
    for _ in 0..2 {
        ebv::telemetry::trace_clear();
        let run = parallel_ibd(
            &chain[0],
            &chain[1..],
            &checkpoints,
            2,
            EbvConfig::default(),
        )
        .expect("valid chain replays in parallel");
        assert_eq!(run.stitch_mismatch, None);
        runs.push(span_tuples());
    }
    assert!(
        runs[0].iter().any(|t| t.3 == "ibd.parallel"),
        "the IBD root span must appear"
    );
    assert!(
        runs[0].iter().filter(|t| t.3 == "ibd.interval").count() >= 2,
        "interval spans must appear under the root"
    );
    assert_eq!(
        runs[0], runs[1],
        "worker scheduling must not leak into span identity"
    );
}

#[test]
fn stitch_mismatch_dumps_a_causal_bundle() {
    let _guard = telemetry_session();
    let chain = ebv_chain(120, 0x51ac);
    let tip = chain.len() as u32 - 1;
    let mut checkpoints = build_checkpoints(&chain[0], &chain[1..], 30).expect("consistent");
    assert!(checkpoints.len() >= 2);

    // Corrupt checkpoint 1 plausibly (flip one output that survives to the
    // chain tip to spent) so only the stitch can notice — same conviction
    // path the parallel-IBD suite exercises.
    let mut truth = EbvNode::new(&chain[0], EbvConfig::default());
    for block in &chain[1..] {
        truth.process_block(block).expect("valid block");
    }
    let victim = &checkpoints[1];
    let (h, pos) = (0..=victim.height())
        .find_map(|h| {
            let v = truth.bitvecs().vector(h)?;
            (0..v.len())
                .find(|&p| v.is_unspent(p) == Some(true))
                .map(|p| (h, p))
        })
        .expect("some output survives the whole chain");
    let mut set = victim.restore();
    set.spend(h, pos).expect("picked an unspent bit");
    checkpoints[1] = set.snapshot(victim.height(), victim.tip_hash());

    let run = parallel_ibd(
        &chain[0],
        &chain[1..],
        &checkpoints,
        2,
        EbvConfig::default(),
    )
    .expect("mismatch degrades, it does not fail");
    assert_eq!(run.stitch_mismatch, Some(1));
    assert_eq!(run.node.tip_height(), tip);

    let bundle = ebv::telemetry::flight::recent_bundles()
        .into_iter()
        .find(|b| b.contains("\"trigger\":\"ibd.interval.stitch_mismatch\""))
        .expect("the stitch mismatch must dump a bundle");
    let v = parse(&bundle).expect("bundle is valid JSON");
    assert_eq!(
        v.get("schema").and_then(Value::as_str),
        Some("ebv.postmortem.v1")
    );
    let trace = v
        .get("trace")
        .and_then(Value::as_str)
        .expect("the stitch happens under the IBD root span");
    let Some(Value::Array(events)) = v.get("events") else {
        panic!("bundle has no events array");
    };
    assert!(!events.is_empty());
    for ev in events {
        assert_eq!(
            ev.get("trace").and_then(Value::as_str),
            Some(trace),
            "bundle must be reconstructible from the trace id alone: {ev:?}"
        );
    }
    // The convicted interval rides along as trigger context.
    let stitch = v.get("stitch").expect("stitch context embedded");
    assert_eq!(stitch.get("interval").and_then(Value::as_f64), Some(1.0));
}

#[test]
fn snapshot_rejection_dumps_a_bundle() {
    let _guard = telemetry_session();
    let chain = ebv_chain(4, 0x5a9);
    let mut node = EbvNode::new(&chain[0], EbvConfig::default());
    node.process_block(&chain[1]).expect("valid block");
    let snap = node.snapshot();
    let h0 = *node.header_at(0).expect("genesis header");

    // Too few headers for the snapshot height: rejected, and the rejection
    // leaves a post-mortem bundle naming the reason.
    assert!(
        EbvNode::from_snapshot(&snap, vec![h0], EbvConfig::default()).is_err(),
        "header count mismatch must be rejected"
    );
    let bundle = ebv::telemetry::flight::recent_bundles()
        .into_iter()
        .find(|b| b.contains("\"trigger\":\"ebv.snapshot_rejected\""))
        .expect("the rejection must dump a bundle");
    let v = parse(&bundle).expect("bundle is valid JSON");
    let snapshot_ctx = v.get("snapshot").expect("snapshot context embedded");
    assert_eq!(
        snapshot_ctx.get("height").and_then(Value::as_f64),
        Some(1.0)
    );
    assert!(
        snapshot_ctx
            .get("reason")
            .and_then(Value::as_str)
            .is_some_and(|r| r.contains("HeaderCount")),
        "bundle names the rejection reason"
    );
}

#[test]
fn postmortem_bundles_are_written_to_disk() {
    let _guard = telemetry_session();
    let dir = std::env::temp_dir().join(format!("ebv-obs-postmortem-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create postmortem dir");
    ebv::telemetry::flight::set_postmortem_dir(Some(dir.clone()));

    let chain = ebv_chain(12, 0xabc1);
    run_ban_scenario(&chain, 0xf11e);
    ebv::telemetry::flight::set_postmortem_dir(None);

    let mut bundles: Vec<_> = std::fs::read_dir(&dir)
        .expect("read postmortem dir")
        .map(|e| e.expect("dir entry").path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("postmortem-") && n.ends_with(".json"))
        })
        .collect();
    bundles.sort();
    assert!(
        !bundles.is_empty(),
        "the ban and the session failure must write bundles"
    );
    for path in &bundles {
        let text = std::fs::read_to_string(path).expect("read bundle");
        let v = parse(&text).unwrap_or_else(|e| panic!("{}: bad JSON: {e}", path.display()));
        assert_eq!(
            v.get("schema").and_then(Value::as_str),
            Some("ebv.postmortem.v1"),
            "{}",
            path.display()
        );
        assert!(matches!(v.get("events"), Some(Value::Array(_))));
        assert!(v.get("metrics").is_some(), "registry snapshot embedded");
    }
    let names: Vec<String> = bundles
        .iter()
        .filter_map(|p| p.file_name().and_then(|n| n.to_str()).map(str::to_string))
        .collect();
    assert!(
        names.iter().any(|n| n.contains("sync_peer_banned")),
        "ban bundle on disk, got {names:?}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn watchdog_flags_a_stalled_heartbeat_and_rearms() {
    let _guard = telemetry_session();
    ebv::telemetry::health::reset();
    let stalls = ebv::telemetry::counter("health.stalls");
    let before = stalls.get();

    ebv::telemetry::heartbeat("obs.stall.probe");
    let watchdog =
        ebv::telemetry::Watchdog::spawn(Duration::from_millis(60), Duration::from_millis(15));
    // Generous window: the beat goes stale well past the deadline.
    std::thread::sleep(Duration::from_millis(400));
    let flagged = stalls.get();
    assert!(
        flagged > before,
        "a silent heartbeat must be flagged as stalled"
    );
    // One stall is one flag — no re-firing while the task stays silent.
    std::thread::sleep(Duration::from_millis(200));
    assert_eq!(stalls.get(), flagged, "no duplicate flags for one stall");

    // A fresh beat re-arms the detector; a second silence flags again.
    ebv::telemetry::heartbeat("obs.stall.probe");
    std::thread::sleep(Duration::from_millis(400));
    drop(watchdog);
    assert!(
        stalls.get() > flagged,
        "a new stall after recovery must be flagged again"
    );
    ebv::telemetry::health::reset();
}
