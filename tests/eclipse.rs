//! Eclipse-resistance acceptance suite: the adversary cohort from
//! `ebv::netsim::eclipse` must win a majority of seeds against a naive
//! address manager, win nothing against the hardened `PeerManager`
//! defenses, and — the part that matters — a victim that survived a
//! hardened campaign must still reach the honest tip when it syncs
//! through its (partially poisoned) tables via `sync_managed`.

use ebv::core::{
    sync_managed, DefensePolicy, EbvBlock, EbvConfig, EbvNode, Intermediary, ManagedConfig,
    PeerAddr, PeerHandle,
};
use ebv::netsim::{eclipse_probability, run_eclipse_campaign, EclipseParams, HONEST_GROUP_BASE};
use ebv::workload::{ChainGenerator, GeneratorParams};

const SEEDS: u64 = 24;

#[test]
fn defenses_off_adversary_eclipses_majority_of_seeds() {
    let p = eclipse_probability(&EclipseParams::default(), DefensePolicy::naive(), SEEDS);
    assert!(
        p > 0.5,
        "a naive address manager must lose most campaigns; P(eclipse) = {p}"
    );
}

#[test]
fn defenses_on_eclipse_probability_is_zero() {
    let p = eclipse_probability(&EclipseParams::default(), DefensePolicy::hardened(), SEEDS);
    assert_eq!(
        p, 0.0,
        "hardened defenses must win every one of {SEEDS} seeds; P(eclipse) = {p}"
    );
}

fn ebv_chain(n: u32, seed: u64) -> Vec<EbvBlock> {
    let blocks = ChainGenerator::new(GeneratorParams::tiny(n, seed)).generate();
    Intermediary::new(0)
        .convert_chain(&blocks)
        .expect("conversion")
}

#[test]
fn victim_reaches_honest_tip_through_post_campaign_tables() {
    // Survive a full hardened campaign, then restart and sync through the
    // manager the attack left behind: honest addresses serve the real
    // chain, adversary addresses answer but censor (a stale 4-block
    // prefix), anything fabricated does not answer. The sync must still
    // reach the honest tip — the end-to-end claim behind the probability
    // numbers above.
    let params = EclipseParams::default();
    let ebv_blocks = ebv_chain(12, 4242);
    let tip = ebv_blocks.len() as u32 - 1;
    let stale: Vec<EbvBlock> = ebv_blocks[..4].to_vec();

    for seed in 0..3u64 {
        let (outcome, mut manager) = run_eclipse_campaign(&params, DefensePolicy::hardened(), seed);
        assert!(!outcome.eclipsed, "seed {seed}: hardened victim eclipsed");
        assert!(
            outcome.honest_outbound > 0,
            "seed {seed}: no honest outbound survived the campaign"
        );

        // Restart: connections drop, the address tables persist.
        let connected: Vec<PeerAddr> = manager
            .outbound()
            .iter()
            .chain(manager.inbound().iter())
            .map(|c| c.addr)
            .collect();
        for addr in connected {
            manager.disconnect(addr);
        }

        let mut factory = |addr: PeerAddr, id: usize| {
            if addr.netgroup() >= HONEST_GROUP_BASE {
                Some(PeerHandle::spawn(id, ebv_blocks.clone()))
            } else if (1..=params.adversary_groups).contains(&addr.netgroup()) {
                Some(PeerHandle::spawn(id, stale.clone()))
            } else {
                None
            }
        };
        let mut node = EbvNode::new(&ebv_blocks[0], EbvConfig::default());
        let report = sync_managed(
            &mut node,
            &mut manager,
            &mut factory,
            &ManagedConfig::fast_test(),
            10_000,
        )
        .unwrap_or_else(|e| panic!("seed {seed}: managed sync failed: {e}"));
        assert_eq!(node.tip_height(), tip, "seed {seed}: tip not reached");
        assert_eq!(
            node.tip_hash(),
            ebv_blocks[tip as usize].header.hash(),
            "seed {seed}: wrong tip"
        );
        assert!(
            report
                .peer_addrs
                .iter()
                .any(|a| a.netgroup() >= HONEST_GROUP_BASE),
            "seed {seed}: no honest peer in the final session"
        );
    }
}

#[test]
fn campaigns_are_deterministic_across_processes() {
    // The probability figures above are only meaningful if a campaign is
    // a pure function of its seed.
    let params = EclipseParams::default();
    for seed in [0u64, 7, 19] {
        let (a, _) = run_eclipse_campaign(&params, DefensePolicy::hardened(), seed);
        let (b, _) = run_eclipse_campaign(&params, DefensePolicy::hardened(), seed);
        assert_eq!(a.eclipsed, b.eclipsed);
        assert_eq!(a.adversary_outbound, b.adversary_outbound);
        assert_eq!(a.honest_outbound, b.honest_outbound);
        assert!((a.table_poison_fraction - b.table_poison_fraction).abs() < f64::EPSILON);
    }
}
