//! End-to-end properties of the EBV validation pipeline:
//!
//! * the sequential and parallel configurations are observationally
//!   identical — same accept/reject decision and the same `EbvError` on
//!   every block, valid or tampered, over a ~1k-block random chain;
//! * `disconnect_tip` restores the bit-vector set exactly (connect /
//!   disconnect round trip).

use ebv_core::tidy::{EbvBlock, InputBody};
use ebv_core::{BlockBitVector, EbvConfig, EbvNode, Intermediary};
use ebv_primitives::hash::sha256d;
use ebv_script::Script;
use ebv_workload::{ChainGenerator, GeneratorParams};

/// Generate a chain and convert it to EBV form (genesis included).
fn build_ebv_chain(params: GeneratorParams) -> Vec<EbvBlock> {
    let blocks = ChainGenerator::new(params).generate();
    Intermediary::new(0)
        .convert_chain(&blocks)
        .expect("generated chains always convert")
}

/// Recompute the hash links after mutating transaction `tx`'s bodies.
fn relink(block: &mut EbvBlock, tx: usize) {
    let hashes: Vec<_> = block.transactions[tx]
        .bodies
        .iter()
        .map(InputBody::hash)
        .collect();
    block.transactions[tx].tidy.input_hashes = hashes;
    block.header.merkle_root = block.compute_merkle_root();
}

/// A deterministically corrupted copy of `block`; `mode` selects which
/// validation phase the corruption targets.
fn tamper(block: &EbvBlock, mode: usize) -> EbvBlock {
    let mut b = block.clone();
    let has_spend = b.transactions.len() > 1 && b.transactions[1].bodies[0].proof.is_some();
    match if has_spend { mode % 6 } else { 5 } {
        0 => {
            // Proof claims a nonexistent height → BadHeight (EV).
            b.transactions[1].bodies[0].proof.as_mut().unwrap().height = 1_000_000;
            relink(&mut b, 1);
        }
        1 => {
            // Forged ELs value → the leaf no longer folds to the stored
            // root → EvFailed.
            let p = b.transactions[1].bodies[0].proof.as_mut().unwrap();
            let rel = p.relative_position as usize;
            p.els.outputs[rel].value += 1;
            relink(&mut b, 1);
        }
        2 => {
            // Outputs worth more than the inputs → ValueImbalance.
            b.transactions[1].tidy.outputs[0].value = u64::MAX / 2;
            b.header.merkle_root = b.compute_merkle_root();
        }
        3 => {
            // Unlocking script emptied → SvFailed.
            b.transactions[1].bodies[0].us = Script::new();
            relink(&mut b, 1);
        }
        4 => {
            // Lying stake position → StakeMismatch.
            b.transactions[1].tidy.stake_position += 1;
            b.header.merkle_root = b.compute_merkle_root();
        }
        _ => {
            // Bogus Merkle root → MerkleMismatch.
            b.header.merkle_root = sha256d(b"bogus root");
        }
    }
    b
}

#[test]
fn sequential_and_parallel_pipelines_agree() {
    let chain = build_ebv_chain(GeneratorParams::tiny(1000, 0xd1ff));
    let mut par = EbvNode::new(&chain[0], EbvConfig::default());
    let mut seq = EbvNode::new(&chain[0], EbvConfig::sequential());
    let mut two = EbvNode::new(
        &chain[0],
        EbvConfig {
            workers: Some(2),
            ..EbvConfig::default()
        },
    );

    for (h, block) in chain.iter().enumerate().skip(1) {
        // Every 7th block, feed all nodes a tampered copy first and
        // require the identical rejection (cycling through corruption
        // targets so every phase's error selection is exercised).
        if h % 7 == 0 {
            let bad = tamper(block, h / 7);
            let e_par = par
                .process_block(&bad)
                .expect_err("tampered block rejected");
            let e_seq = seq
                .process_block(&bad)
                .expect_err("tampered block rejected");
            let e_two = two
                .process_block(&bad)
                .expect_err("tampered block rejected");
            assert_eq!(e_par, e_seq, "height {h}: parallel vs sequential error");
            assert_eq!(e_par, e_two, "height {h}: default vs 2-worker error");
        }
        // `Ok` carries wall-clock timings, so compare decisions + errors.
        let r_par = par.process_block(block);
        let r_seq = seq.process_block(block);
        let r_two = two.process_block(block);
        assert_eq!(
            r_par.as_ref().err(),
            r_seq.as_ref().err(),
            "height {h}: par vs seq error"
        );
        assert_eq!(
            r_par.as_ref().err(),
            r_two.as_ref().err(),
            "height {h}: 2-worker error"
        );
        assert!(r_par.is_ok(), "height {h}: generated block must validate");
    }

    // Identical decisions must leave identical state.
    assert_eq!(par.tip_height(), seq.tip_height());
    assert_eq!(par.tip_hash(), seq.tip_hash());
    assert_eq!(par.total_unspent(), seq.total_unspent());
    assert_eq!(par.status_memory(), seq.status_memory());
    for h in 0..=par.tip_height() {
        assert_eq!(
            par.bitvecs().vector(h),
            seq.bitvecs().vector(h),
            "vector at height {h}"
        );
    }
}

#[test]
fn connect_disconnect_round_trip_restores_bitvectors() {
    let chain = build_ebv_chain(GeneratorParams::mainnet_like(120, 0xabc));
    let mut node = EbvNode::new(&chain[0], EbvConfig::default());
    let split = 80usize;
    for block in &chain[1..split] {
        node.process_block(block).expect("valid block");
    }

    // Snapshot the full bit-vector state at the split point.
    let snap_tip = node.tip_hash();
    let snap_unspent = node.total_unspent();
    let snapshot: Vec<Option<BlockBitVector>> = (0..chain.len() as u32)
        .map(|h| node.bitvecs().vector(h).cloned())
        .collect();

    for block in &chain[split..] {
        node.process_block(block).expect("valid block");
    }
    assert_eq!(node.tip_height() as usize, chain.len() - 1);

    while node.tip_height() as usize >= split {
        node.disconnect_tip().expect("undo data present");
    }

    assert_eq!(node.tip_hash(), snap_tip);
    assert_eq!(node.total_unspent(), snap_unspent);
    let restored = (0..chain.len() as u32)
        .filter(|&h| node.bitvecs().vector(h).is_some())
        .count();
    assert_eq!(restored, snapshot.iter().filter(|v| v.is_some()).count());
    for (h, expect) in snapshot.iter().enumerate() {
        assert_eq!(
            node.bitvecs().vector(h as u32),
            expect.as_ref(),
            "bit vector at height {h} must be restored exactly"
        );
    }
}
