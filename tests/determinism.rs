//! Cross-component determinism: every pipeline stage is a pure function
//! of the seed, so experiment runs are exactly reproducible.

use ebv::core::{EbvConfig, EbvNode, Intermediary};
use ebv::primitives::encode::Encodable;
use ebv::workload::{ChainGenerator, ChainProfile, GeneratorParams};

#[test]
fn identical_seeds_produce_identical_everything() {
    let run = |seed: u64| {
        let blocks = ChainGenerator::new(GeneratorParams::tiny(10, seed)).generate();
        let ebv_blocks = Intermediary::new(0)
            .convert_chain(&blocks)
            .expect("conversion");
        let mut node = EbvNode::new(&ebv_blocks[0], EbvConfig::default());
        for b in &ebv_blocks[1..] {
            node.process_block(b).expect("valid");
        }
        // Fingerprint: serialized bytes of baseline + ebv chains + final state.
        let mut bytes = Vec::new();
        for b in &blocks {
            b.encode(&mut bytes);
        }
        for b in &ebv_blocks {
            b.encode(&mut bytes);
        }
        (
            ebv::primitives::hash::sha256d(&bytes),
            node.tip_hash(),
            node.total_unspent(),
            node.status_memory(),
        )
    };
    assert_eq!(run(42), run(42));
    assert_ne!(run(42).0, run(43).0);
}

#[test]
fn profile_statistics_are_deterministic() {
    let p1 = ChainProfile::measure(
        &ChainGenerator::new(GeneratorParams::mainnet_like(60, 5)).generate(),
    );
    let p2 = ChainProfile::measure(
        &ChainGenerator::new(GeneratorParams::mainnet_like(60, 5)).generate(),
    );
    assert_eq!(p1.inputs, p2.inputs);
    assert_eq!(p1.outputs, p2.outputs);
}

#[test]
fn netsim_runs_are_seed_deterministic() {
    use ebv::netsim::{GossipSim, SimParams, ValidationModel};
    let sim = GossipSim::new(SimParams {
        validation: ValidationModel::ebv_from_mean_us(5_000),
        ..Default::default()
    });
    assert_eq!(sim.run(7).receive_us, sim.run(7).receive_us);
    assert_ne!(sim.run(7).receive_us, sim.run(8).receive_us);
}
