//! Security test suite — the attacks of the paper's §V, mounted across
//! crate boundaries against a running EBV node.

use ebv::chain::transaction::{spend_sighash, TxOut};
use ebv::core::{
    ebv_coinbase, pack_ebv_block, sign_input, EbvConfig, EbvError, EbvNode, EbvTransaction,
    InputBody, ProofArchive, UvError,
};
use ebv::primitives::ec::PrivateKey;
use ebv::primitives::hash::{sha256d, Hash256};
use ebv::script::standard::{p2pkh_lock, p2pkh_unlock};
use ebv_chain::merkle::MerkleBranch;
use ebv_chain::BLOCK_SUBSIDY;
use ebv_core::{EbvBlock, InputProof};

/// World: genesis coinbase pays `alice`; returns node + archive + alice.
fn world() -> (EbvNode, ProofArchive, PrivateKey, EbvBlock) {
    let alice = PrivateKey::from_seed(50);
    let genesis = pack_ebv_block(
        Hash256::ZERO,
        vec![ebv_coinbase(
            0,
            p2pkh_lock(&alice.public_key().address_hash()),
        )],
        0,
        0,
    );
    let node = EbvNode::new(&genesis, EbvConfig::default());
    let mut archive = ProofArchive::new();
    archive.add_block(0, &genesis);
    (node, archive, alice, genesis)
}

fn spend_with(proof: InputProof, signer: &PrivateKey, out_value: u64) -> EbvTransaction {
    let outputs = vec![TxOut::new(
        out_value,
        p2pkh_lock(&signer.public_key().address_hash()),
    )];
    let digest = spend_sighash(
        1,
        &[(proof.height, proof.absolute_position())],
        &outputs,
        0,
        0,
    );
    let us = p2pkh_unlock(
        &sign_input(signer, &digest),
        &signer.public_key().to_compressed(),
    );
    EbvTransaction::from_parts(
        1,
        vec![InputBody {
            us,
            proof: Some(proof),
        }],
        outputs,
        0,
    )
}

fn block_with(node: &EbvNode, height: u32, tx: EbvTransaction) -> EbvBlock {
    pack_ebv_block(
        node.tip_hash(),
        vec![ebv_coinbase(height, ebv::script::Script::new()), tx],
        height,
        0,
    )
}

#[test]
fn spending_a_nonexistent_output_fails_ev() {
    let (mut node, archive, alice, _) = world();
    // Fabricate a proof for an output that was never created: real ELs but
    // a hand-built Merkle branch over fake leaves.
    let real = archive.make_proof(0, 0).expect("exists");
    let fake_leaves = vec![sha256d(b"fake0"), sha256d(b"fake1")];
    let forged = InputProof {
        mbr: MerkleBranch::extract(&fake_leaves, 0),
        els: real.els.clone(),
        height: 0,
        relative_position: 0,
    };
    let tx = spend_with(forged, &alice, 1000);
    let err = node.process_block(&block_with(&node, 1, tx)).unwrap_err();
    assert!(matches!(err, EbvError::EvFailed { .. }), "got {err:?}");
}

#[test]
fn spending_an_already_spent_output_fails_uv() {
    let (mut node, mut archive, alice, _) = world();
    // Legitimate spend first.
    let proof = archive.make_proof(0, 0).expect("exists");
    let b1 = block_with(&node, 1, spend_with(proof, &alice, BLOCK_SUBSIDY));
    node.process_block(&b1).expect("first spend ok");
    archive.add_block(1, &b1);

    // Second spend of the same coordinates.
    let proof = archive
        .make_proof(0, 0)
        .expect("coordinates still derivable");
    let tx = spend_with(proof, &alice, 500);
    let err = node.process_block(&block_with(&node, 2, tx)).unwrap_err();
    assert!(
        matches!(
            err,
            EbvError::UvFailed {
                err: UvError::UnknownHeight(0),
                ..
            }
        ),
        "fully-spent block's vector was deleted, so UV reports unknown height: {err:?}"
    );
}

#[test]
fn fake_position_is_caught() {
    let (mut node, archive, alice, _) = world();
    // The proposer lies about the relative position (the §IV-D2 attack):
    // the coinbase has a single output, so position 1 does not exist.
    let mut proof = archive.make_proof(0, 0).expect("exists");
    proof.relative_position = 1;
    let tx = spend_with(proof, &alice, 1000);
    let err = node.process_block(&block_with(&node, 1, tx)).unwrap_err();
    assert!(
        matches!(err, EbvError::PositionOutOfEls { .. }),
        "got {err:?}"
    );
}

#[test]
fn fake_stake_position_in_els_is_caught_by_ev() {
    let (mut node, archive, alice, _) = world();
    // The proposer doctors the *stake position inside ELs* to shift the
    // absolute position: the leaf hash changes, so EV fails.
    let mut proof = archive.make_proof(0, 0).expect("exists");
    proof.els.stake_position = 7;
    let tx = spend_with(proof, &alice, 1000);
    let err = node.process_block(&block_with(&node, 1, tx)).unwrap_err();
    assert!(matches!(err, EbvError::EvFailed { .. }), "got {err:?}");
}

#[test]
fn stealing_with_wrong_key_fails_sv() {
    let (mut node, archive, _alice, _) = world();
    let mallory = PrivateKey::from_seed(666);
    let proof = archive.make_proof(0, 0).expect("exists");
    // Mallory signs with her own key for an output locked to alice.
    let tx = spend_with(proof, &mallory, 1000);
    let err = node.process_block(&block_with(&node, 1, tx)).unwrap_err();
    // P2PKH pubkey-hash mismatch surfaces as a script VerifyFailed.
    assert!(matches!(err, EbvError::SvFailed { .. }), "got {err:?}");
}

#[test]
fn replayed_signature_on_different_outputs_fails_sv() {
    let (mut node, archive, alice, _) = world();
    let proof = archive.make_proof(0, 0).expect("exists");
    // Build a legit tx, then swap the outputs while keeping the signature:
    // the spend digest commits to outputs, so SV must fail.
    let mut tx = spend_with(proof, &alice, 1000);
    tx.tidy.outputs[0].value = 999_999;
    let err = node.process_block(&block_with(&node, 1, tx)).unwrap_err();
    assert!(matches!(err, EbvError::SvFailed { .. }), "got {err:?}");
}

#[test]
fn inflating_value_beyond_inputs_fails() {
    let (mut node, archive, alice, _) = world();
    let proof = archive.make_proof(0, 0).expect("exists");
    let outputs = vec![TxOut::new(
        BLOCK_SUBSIDY * 2,
        p2pkh_lock(&alice.public_key().address_hash()),
    )];
    let digest = spend_sighash(1, &[(0, 0)], &outputs, 0, 0);
    let us = p2pkh_unlock(
        &sign_input(&alice, &digest),
        &alice.public_key().to_compressed(),
    );
    let tx = EbvTransaction::from_parts(
        1,
        vec![InputBody {
            us,
            proof: Some(proof),
        }],
        outputs,
        0,
    );
    let err = node.process_block(&block_with(&node, 1, tx)).unwrap_err();
    assert!(
        matches!(err, EbvError::ValueImbalance { .. }),
        "got {err:?}"
    );
}

#[test]
fn truncated_merkle_branch_fails_ev() {
    let (mut node, mut archive, alice, _) = world();
    // Grow the chain so branches are non-trivial: block 1 has 2 txs.
    let proof = archive.make_proof(0, 0).expect("exists");
    let b1 = block_with(&node, 1, spend_with(proof, &alice, BLOCK_SUBSIDY));
    node.process_block(&b1).expect("ok");
    archive.add_block(1, &b1);

    // Spend alice's change output at block 1 with a truncated branch.
    let mut proof = archive.make_proof(1, 1).expect("change exists");
    assert!(!proof.mbr.siblings.is_empty());
    proof.mbr.siblings.pop();
    let tx = spend_with(proof, &alice, 1000);
    let err = node.process_block(&block_with(&node, 2, tx)).unwrap_err();
    assert!(matches!(err, EbvError::EvFailed { .. }), "got {err:?}");
}

#[test]
fn miner_cannot_misassign_stake_positions() {
    let (mut node, archive, alice, _) = world();
    let proof = archive.make_proof(0, 0).expect("exists");
    let mut block = block_with(&node, 1, spend_with(proof, &alice, BLOCK_SUBSIDY));
    // A lying miner shifts the second transaction's stake position and
    // re-commits the Merkle root (so the root check passes).
    block.transactions[1].tidy.stake_position = 5;
    block.header.merkle_root = block.compute_merkle_root();
    let err = node.process_block(&block).unwrap_err();
    assert!(matches!(err, EbvError::StakeMismatch { .. }), "got {err:?}");
}

#[test]
fn timelocked_output_respects_cltv() {
    use ebv::script::opcodes::{OP_CHECKLOCKTIMEVERIFY, OP_DROP};
    use ebv::script::Builder;

    let (mut node, mut archive, alice, _) = world();
    // Block 1 pays alice through a CLTV-guarded script requiring
    // lock_time ≥ 700.
    let timelock = Builder::new()
        .push_int(700)
        .push_op(OP_CHECKLOCKTIMEVERIFY)
        .push_op(OP_DROP)
        .into_script();
    // Prefix the standard P2PKH with the timelock: the full lock is
    // "700 CLTV DROP DUP HASH160 <h> EQUALVERIFY CHECKSIG".
    let mut lock_bytes = timelock.as_bytes().to_vec();
    lock_bytes.extend_from_slice(p2pkh_lock(&alice.public_key().address_hash()).as_bytes());
    let lock = ebv::script::Script::from_bytes(lock_bytes);

    let proof = archive.make_proof(0, 0).expect("genesis coin");
    let outputs = vec![TxOut::new(BLOCK_SUBSIDY, lock)];
    let digest = spend_sighash(1, &[(0, 0)], &outputs, 0, 0);
    let us = p2pkh_unlock(
        &sign_input(&alice, &digest),
        &alice.public_key().to_compressed(),
    );
    let fund = EbvTransaction::from_parts(
        1,
        vec![InputBody {
            us,
            proof: Some(proof),
        }],
        outputs,
        0,
    );
    let b1 = block_with(&node, 1, fund);
    node.process_block(&b1).expect("funding block valid");
    archive.add_block(1, &b1);

    // Spend attempt with lock_time 0: CLTV fails.
    let build_spend = |archive: &ProofArchive, lock_time: u32| {
        let proof = archive.make_proof(1, 1).expect("timelocked coin");
        let outputs = vec![TxOut::new(
            1000,
            p2pkh_lock(&alice.public_key().address_hash()),
        )];
        let digest = spend_sighash(1, &[(1, 1)], &outputs, lock_time, 0);
        let us = p2pkh_unlock(
            &sign_input(&alice, &digest),
            &alice.public_key().to_compressed(),
        );
        EbvTransaction::from_parts(
            1,
            vec![InputBody {
                us,
                proof: Some(proof),
            }],
            outputs,
            lock_time,
        )
    };
    let early = build_spend(&archive, 0);
    let b_early = block_with(&node, 2, early);
    match node.process_block(&b_early) {
        Err(EbvError::SvFailed { .. }) => {}
        other => panic!("expected CLTV failure, got {other:?}"),
    }

    // With lock_time 700 the same coin spends fine.
    let late = build_spend(&archive, 700);
    let b_late = block_with(&node, 2, late);
    node.process_block(&b_late).expect("CLTV satisfied");
}

#[test]
fn baseline_rejects_the_same_attacks() {
    // The baseline comparator must also be sound: nonexistent outpoint.
    use ebv::core::{BaselineConfig, BaselineError, BaselineNode};
    use ebv::store::{KvStore, StoreConfig, UtxoSet};
    use ebv_chain::transaction::{Transaction, TxIn};
    use ebv_chain::{build_block, coinbase_tx, OutPoint};

    let alice = PrivateKey::from_seed(50);
    let genesis = build_block(
        Hash256::ZERO,
        coinbase_tx(
            0,
            p2pkh_lock(&alice.public_key().address_hash()),
            Vec::new(),
        ),
        Vec::new(),
        0,
        0,
    );
    let utxos = UtxoSet::new(KvStore::open(StoreConfig::with_budget(1 << 20)).expect("store"));
    let mut node = BaselineNode::new(&genesis, utxos, BaselineConfig::default()).expect("boot");

    let outputs = vec![TxOut::new(1, ebv::script::Script::new())];
    let digest = spend_sighash(1, &[(0, 0)], &outputs, 0, 0);
    let us = p2pkh_unlock(
        &sign_input(&alice, &digest),
        &alice.public_key().to_compressed(),
    );
    let ghost = Transaction {
        version: 1,
        inputs: vec![TxIn::new(OutPoint::new(sha256d(b"ghost"), 0), us)],
        outputs,
        lock_time: 0,
    };
    let block = build_block(
        genesis.header.hash(),
        coinbase_tx(1, ebv::script::Script::new(), Vec::new()),
        vec![ghost],
        1,
        0,
    );
    let err = node.process_block(&block).unwrap_err();
    assert!(
        matches!(err, BaselineError::MissingUtxo { .. }),
        "got {err:?}"
    );
}
