//! Security test suite — the attacks of the paper's §V, mounted across
//! crate boundaries against a running EBV node.

use ebv::chain::transaction::{spend_sighash, TxOut};
use ebv::core::{
    ebv_coinbase, pack_ebv_block, sign_input, EbvConfig, EbvError, EbvNode, EbvTransaction,
    InputBody, ProofArchive, UvError,
};
use ebv::primitives::ec::PrivateKey;
use ebv::primitives::hash::{sha256d, Hash256};
use ebv::script::standard::{p2pkh_lock, p2pkh_unlock};
use ebv_chain::merkle::MerkleBranch;
use ebv_chain::BLOCK_SUBSIDY;
use ebv_core::{EbvBlock, InputProof};

/// World: genesis coinbase pays `alice`; returns node + archive + alice.
fn world() -> (EbvNode, ProofArchive, PrivateKey, EbvBlock) {
    let alice = PrivateKey::from_seed(50);
    let genesis = pack_ebv_block(
        Hash256::ZERO,
        vec![ebv_coinbase(
            0,
            p2pkh_lock(&alice.public_key().address_hash()),
        )],
        0,
        0,
    );
    let node = EbvNode::new(&genesis, EbvConfig::default());
    let mut archive = ProofArchive::new();
    archive.add_block(0, &genesis);
    (node, archive, alice, genesis)
}

fn spend_with(proof: InputProof, signer: &PrivateKey, out_value: u64) -> EbvTransaction {
    let outputs = vec![TxOut::new(
        out_value,
        p2pkh_lock(&signer.public_key().address_hash()),
    )];
    let digest = spend_sighash(
        1,
        &[(proof.height, proof.absolute_position())],
        &outputs,
        0,
        0,
    );
    let us = p2pkh_unlock(
        &sign_input(signer, &digest),
        &signer.public_key().to_compressed(),
    );
    EbvTransaction::from_parts(
        1,
        vec![InputBody {
            us,
            proof: Some(proof),
        }],
        outputs,
        0,
    )
}

fn block_with(node: &EbvNode, height: u32, tx: EbvTransaction) -> EbvBlock {
    pack_ebv_block(
        node.tip_hash(),
        vec![ebv_coinbase(height, ebv::script::Script::new()), tx],
        height,
        0,
    )
}

#[test]
fn spending_a_nonexistent_output_fails_ev() {
    let (mut node, archive, alice, _) = world();
    // Fabricate a proof for an output that was never created: real ELs but
    // a hand-built Merkle branch over fake leaves.
    let real = archive.make_proof(0, 0).expect("exists");
    let fake_leaves = vec![sha256d(b"fake0"), sha256d(b"fake1")];
    let forged = InputProof {
        mbr: MerkleBranch::extract(&fake_leaves, 0),
        els: real.els.clone(),
        height: 0,
        relative_position: 0,
    };
    let tx = spend_with(forged, &alice, 1000);
    let err = node.process_block(&block_with(&node, 1, tx)).unwrap_err();
    assert!(matches!(err, EbvError::EvFailed { .. }), "got {err:?}");
}

#[test]
fn spending_an_already_spent_output_fails_uv() {
    let (mut node, mut archive, alice, _) = world();
    // Legitimate spend first.
    let proof = archive.make_proof(0, 0).expect("exists");
    let b1 = block_with(&node, 1, spend_with(proof, &alice, BLOCK_SUBSIDY));
    node.process_block(&b1).expect("first spend ok");
    archive.add_block(1, &b1);

    // Second spend of the same coordinates.
    let proof = archive
        .make_proof(0, 0)
        .expect("coordinates still derivable");
    let tx = spend_with(proof, &alice, 500);
    let err = node.process_block(&block_with(&node, 2, tx)).unwrap_err();
    assert!(
        matches!(
            err,
            EbvError::UvFailed {
                err: UvError::UnknownHeight(0),
                ..
            }
        ),
        "fully-spent block's vector was deleted, so UV reports unknown height: {err:?}"
    );
}

#[test]
fn fake_position_is_caught() {
    let (mut node, archive, alice, _) = world();
    // The proposer lies about the relative position (the §IV-D2 attack):
    // the coinbase has a single output, so position 1 does not exist.
    let mut proof = archive.make_proof(0, 0).expect("exists");
    proof.relative_position = 1;
    let tx = spend_with(proof, &alice, 1000);
    let err = node.process_block(&block_with(&node, 1, tx)).unwrap_err();
    assert!(
        matches!(err, EbvError::PositionOutOfEls { .. }),
        "got {err:?}"
    );
}

#[test]
fn fake_stake_position_in_els_is_caught_by_ev() {
    let (mut node, archive, alice, _) = world();
    // The proposer doctors the *stake position inside ELs* to shift the
    // absolute position: the leaf hash changes, so EV fails.
    let mut proof = archive.make_proof(0, 0).expect("exists");
    proof.els.stake_position = 7;
    let tx = spend_with(proof, &alice, 1000);
    let err = node.process_block(&block_with(&node, 1, tx)).unwrap_err();
    assert!(matches!(err, EbvError::EvFailed { .. }), "got {err:?}");
}

#[test]
fn stealing_with_wrong_key_fails_sv() {
    let (mut node, archive, _alice, _) = world();
    let mallory = PrivateKey::from_seed(666);
    let proof = archive.make_proof(0, 0).expect("exists");
    // Mallory signs with her own key for an output locked to alice.
    let tx = spend_with(proof, &mallory, 1000);
    let err = node.process_block(&block_with(&node, 1, tx)).unwrap_err();
    // P2PKH pubkey-hash mismatch surfaces as a script VerifyFailed.
    assert!(matches!(err, EbvError::SvFailed { .. }), "got {err:?}");
}

#[test]
fn replayed_signature_on_different_outputs_fails_sv() {
    let (mut node, archive, alice, _) = world();
    let proof = archive.make_proof(0, 0).expect("exists");
    // Build a legit tx, then swap the outputs while keeping the signature:
    // the spend digest commits to outputs, so SV must fail.
    let mut tx = spend_with(proof, &alice, 1000);
    tx.tidy.outputs[0].value = 999_999;
    let err = node.process_block(&block_with(&node, 1, tx)).unwrap_err();
    assert!(matches!(err, EbvError::SvFailed { .. }), "got {err:?}");
}

#[test]
fn inflating_value_beyond_inputs_fails() {
    let (mut node, archive, alice, _) = world();
    let proof = archive.make_proof(0, 0).expect("exists");
    let outputs = vec![TxOut::new(
        BLOCK_SUBSIDY * 2,
        p2pkh_lock(&alice.public_key().address_hash()),
    )];
    let digest = spend_sighash(1, &[(0, 0)], &outputs, 0, 0);
    let us = p2pkh_unlock(
        &sign_input(&alice, &digest),
        &alice.public_key().to_compressed(),
    );
    let tx = EbvTransaction::from_parts(
        1,
        vec![InputBody {
            us,
            proof: Some(proof),
        }],
        outputs,
        0,
    );
    let err = node.process_block(&block_with(&node, 1, tx)).unwrap_err();
    assert!(
        matches!(err, EbvError::ValueImbalance { .. }),
        "got {err:?}"
    );
}

#[test]
fn truncated_merkle_branch_fails_ev() {
    let (mut node, mut archive, alice, _) = world();
    // Grow the chain so branches are non-trivial: block 1 has 2 txs.
    let proof = archive.make_proof(0, 0).expect("exists");
    let b1 = block_with(&node, 1, spend_with(proof, &alice, BLOCK_SUBSIDY));
    node.process_block(&b1).expect("ok");
    archive.add_block(1, &b1);

    // Spend alice's change output at block 1 with a truncated branch.
    let mut proof = archive.make_proof(1, 1).expect("change exists");
    assert!(!proof.mbr.siblings.is_empty());
    proof.mbr.siblings.pop();
    let tx = spend_with(proof, &alice, 1000);
    let err = node.process_block(&block_with(&node, 2, tx)).unwrap_err();
    assert!(matches!(err, EbvError::EvFailed { .. }), "got {err:?}");
}

#[test]
fn miner_cannot_misassign_stake_positions() {
    let (mut node, archive, alice, _) = world();
    let proof = archive.make_proof(0, 0).expect("exists");
    let mut block = block_with(&node, 1, spend_with(proof, &alice, BLOCK_SUBSIDY));
    // A lying miner shifts the second transaction's stake position and
    // re-commits the Merkle root (so the root check passes).
    block.transactions[1].tidy.stake_position = 5;
    block.header.merkle_root = block.compute_merkle_root();
    let err = node.process_block(&block).unwrap_err();
    assert!(matches!(err, EbvError::StakeMismatch { .. }), "got {err:?}");
}

#[test]
fn timelocked_output_respects_cltv() {
    use ebv::script::opcodes::{OP_CHECKLOCKTIMEVERIFY, OP_DROP};
    use ebv::script::Builder;

    let (mut node, mut archive, alice, _) = world();
    // Block 1 pays alice through a CLTV-guarded script requiring
    // lock_time ≥ 700.
    let timelock = Builder::new()
        .push_int(700)
        .push_op(OP_CHECKLOCKTIMEVERIFY)
        .push_op(OP_DROP)
        .into_script();
    // Prefix the standard P2PKH with the timelock: the full lock is
    // "700 CLTV DROP DUP HASH160 <h> EQUALVERIFY CHECKSIG".
    let mut lock_bytes = timelock.as_bytes().to_vec();
    lock_bytes.extend_from_slice(p2pkh_lock(&alice.public_key().address_hash()).as_bytes());
    let lock = ebv::script::Script::from_bytes(lock_bytes);

    let proof = archive.make_proof(0, 0).expect("genesis coin");
    let outputs = vec![TxOut::new(BLOCK_SUBSIDY, lock)];
    let digest = spend_sighash(1, &[(0, 0)], &outputs, 0, 0);
    let us = p2pkh_unlock(
        &sign_input(&alice, &digest),
        &alice.public_key().to_compressed(),
    );
    let fund = EbvTransaction::from_parts(
        1,
        vec![InputBody {
            us,
            proof: Some(proof),
        }],
        outputs,
        0,
    );
    let b1 = block_with(&node, 1, fund);
    node.process_block(&b1).expect("funding block valid");
    archive.add_block(1, &b1);

    // Spend attempt with lock_time 0: CLTV fails.
    let build_spend = |archive: &ProofArchive, lock_time: u32| {
        let proof = archive.make_proof(1, 1).expect("timelocked coin");
        let outputs = vec![TxOut::new(
            1000,
            p2pkh_lock(&alice.public_key().address_hash()),
        )];
        let digest = spend_sighash(1, &[(1, 1)], &outputs, lock_time, 0);
        let us = p2pkh_unlock(
            &sign_input(&alice, &digest),
            &alice.public_key().to_compressed(),
        );
        EbvTransaction::from_parts(
            1,
            vec![InputBody {
                us,
                proof: Some(proof),
            }],
            outputs,
            lock_time,
        )
    };
    let early = build_spend(&archive, 0);
    let b_early = block_with(&node, 2, early);
    match node.process_block(&b_early) {
        Err(EbvError::SvFailed { .. }) => {}
        other => panic!("expected CLTV failure, got {other:?}"),
    }

    // With lock_time 700 the same coin spends fine.
    let late = build_spend(&archive, 700);
    let b_late = block_with(&node, 2, late);
    node.process_block(&b_late).expect("CLTV satisfied");
}

#[test]
fn baseline_rejects_the_same_attacks() {
    // The baseline comparator must also be sound: nonexistent outpoint.
    use ebv::core::{BaselineConfig, BaselineError, BaselineNode};
    use ebv::store::{KvStore, StoreConfig, UtxoSet};
    use ebv_chain::transaction::{Transaction, TxIn};
    use ebv_chain::{build_block, coinbase_tx, OutPoint};

    let alice = PrivateKey::from_seed(50);
    let genesis = build_block(
        Hash256::ZERO,
        coinbase_tx(
            0,
            p2pkh_lock(&alice.public_key().address_hash()),
            Vec::new(),
        ),
        Vec::new(),
        0,
        0,
    );
    let utxos = UtxoSet::new(KvStore::open(StoreConfig::with_budget(1 << 20)).expect("store"));
    let mut node = BaselineNode::new(&genesis, utxos, BaselineConfig::default()).expect("boot");

    let outputs = vec![TxOut::new(1, ebv::script::Script::new())];
    let digest = spend_sighash(1, &[(0, 0)], &outputs, 0, 0);
    let us = p2pkh_unlock(
        &sign_input(&alice, &digest),
        &alice.public_key().to_compressed(),
    );
    let ghost = Transaction {
        version: 1,
        inputs: vec![TxIn::new(OutPoint::new(sha256d(b"ghost"), 0), us)],
        outputs,
        lock_time: 0,
    };
    let block = build_block(
        genesis.header.hash(),
        coinbase_tx(1, ebv::script::Script::new(), Vec::new()),
        vec![ghost],
        1,
        0,
    );
    let err = node.process_block(&block).unwrap_err();
    assert!(
        matches!(err, BaselineError::MissingUtxo { .. }),
        "got {err:?}"
    );
}

// ---------------------------------------------------------------------------
// Wire-codec hardening: the framing layer is the first untrusted-input
// surface a networked node exposes, so its decoder must never panic, never
// let a claimed length drive an allocation, and never accept a tampered
// header. These tests fuzz the frame format structurally — every
// truncation point, every header bit — rather than randomly.

use ebv::core::sync::wire::{
    checksum, decode_frame, encode_frame, FrameHeader, PayloadBuf, WireError, WireMessage,
    DEFAULT_MAX_FRAME, FRAME_HEADER_LEN, PAYLOAD_CHUNK,
};
use ebv::core::BitVectorSnapshot;
use ebv::primitives::encode::{write_varint, Decodable, Encodable, MAX_COLLECTION_LEN};

/// One of every wire message kind, with representative payloads.
fn every_wire_message() -> Vec<WireMessage> {
    vec![
        WireMessage::Hello {
            network: sha256d(b"testnet"),
            start_height: 7,
        },
        WireMessage::GetBlocks {
            id: 42,
            start_height: 100,
            count: 16,
        },
        WireMessage::Blocks {
            id: 42,
            blocks: vec![vec![1, 2, 3], Vec::new(), vec![0xFF; 300]],
        },
        WireMessage::Exhausted { id: 42 },
        WireMessage::Bye,
    ]
}

#[test]
fn wire_frames_round_trip_every_message_type() {
    for msg in every_wire_message() {
        let frame = encode_frame(&msg);
        let (decoded, consumed) = decode_frame(&frame, DEFAULT_MAX_FRAME)
            .unwrap_or_else(|e| panic!("{}: {e}", msg.name()));
        assert_eq!(consumed, frame.len(), "{}: full frame consumed", msg.name());
        assert_eq!(decoded, msg, "{}: round trip", msg.name());
    }
}

#[test]
fn wire_decode_survives_truncation_at_every_byte_boundary() {
    // Every proper prefix of every frame must decode to TruncatedFrame —
    // never a panic, never a partial message, with one principled
    // exception: a prefix that cuts inside the header may instead report
    // the header defect it can already see (there is none here, the
    // header is honest, so header prefixes shorter than 16 bytes are all
    // TruncatedFrame too).
    for msg in every_wire_message() {
        let frame = encode_frame(&msg);
        for cut in 0..frame.len() {
            match decode_frame(&frame[..cut], DEFAULT_MAX_FRAME) {
                Err(WireError::TruncatedFrame) => {}
                other => panic!(
                    "{} cut at {cut}/{}: expected TruncatedFrame, got {other:?}",
                    msg.name(),
                    frame.len()
                ),
            }
        }
    }
}

#[test]
fn wire_decode_survives_every_header_bit_flip() {
    // Flip each of the 128 header bits in turn. The decoder must never
    // panic and must never return the original message: either the header
    // check, the checksum, or the payload decode catches the tamper. (A
    // kind-byte flip can land on another valid kind, and a length flip
    // can shorten the frame into a valid shorter one — so "always an
    // error" is not the invariant; "never the original bytes' meaning"
    // is.)
    for msg in every_wire_message() {
        let frame = encode_frame(&msg);
        for byte in 0..FRAME_HEADER_LEN {
            for bit in 0..8u8 {
                let mut tampered = frame.clone();
                tampered[byte] ^= 1 << bit;
                if let Ok((decoded, _)) = decode_frame(&tampered, DEFAULT_MAX_FRAME) {
                    assert_ne!(
                        decoded,
                        msg,
                        "{}: flipping header byte {byte} bit {bit} went unnoticed",
                        msg.name()
                    );
                }
            }
        }
    }
}

#[test]
fn wire_decode_survives_payload_corruption() {
    // Any single-byte payload corruption must be caught by the checksum.
    for msg in every_wire_message() {
        let frame = encode_frame(&msg);
        for byte in FRAME_HEADER_LEN..frame.len() {
            let mut tampered = frame.clone();
            tampered[byte] ^= 0x01;
            match decode_frame(&tampered, DEFAULT_MAX_FRAME) {
                Err(WireError::ChecksumMismatch) => {}
                other => panic!(
                    "{}: payload byte {byte} corruption yielded {other:?}",
                    msg.name()
                ),
            }
        }
    }
}

#[test]
fn wire_header_rejects_oversized_claim_before_any_allocation() {
    // A header claiming a frame larger than the cap is rejected from the
    // 16 header bytes alone.
    let mut header = [0u8; FRAME_HEADER_LEN];
    header[0..4].copy_from_slice(b"EBW1");
    header[4..6].copy_from_slice(&1u16.to_le_bytes());
    header[6] = 0x05; // Bye
    header[8..12].copy_from_slice(&(u32::MAX - 1).to_le_bytes());
    match FrameHeader::parse(&header, DEFAULT_MAX_FRAME) {
        Err(WireError::FrameTooLarge { claimed, max }) => {
            assert_eq!(claimed, u32::MAX - 1);
            assert_eq!(max, DEFAULT_MAX_FRAME);
        }
        other => panic!("expected FrameTooLarge, got {other:?}"),
    }

    // And even an *accepted* maximal claim must not drive the payload
    // buffer's allocation: capacity tracks received bytes in bounded
    // chunks, never the attacker's number.
    let mut buf = PayloadBuf::new(DEFAULT_MAX_FRAME as usize);
    assert!(
        buf.capacity() <= PAYLOAD_CHUNK,
        "claim drove the allocation"
    );
    let mut received = 0;
    for _ in 0..3 {
        let window = buf.window();
        let n = window.len();
        buf.advance(n, n);
        received += n;
        // Capacity tracks bytes actually received (one chunk of lookahead,
        // doubled at worst by Vec growth) — never the 8 MiB claim.
        assert!(
            buf.capacity() <= 2 * (received + PAYLOAD_CHUNK),
            "payload buffer exceeded its chunked-growth bound: {} after {received} bytes",
            buf.capacity()
        );
    }
    assert!(
        buf.capacity() < DEFAULT_MAX_FRAME as usize / 16,
        "payload buffer approached the claimed size: {}",
        buf.capacity()
    );
}

#[test]
fn wire_checksum_is_the_declared_hash() {
    // The checksum is pinned to sha256d's first four bytes — a frame
    // written by any correct implementation of the spec verifies here.
    let payload = b"frame payload";
    assert_eq!(checksum(payload), sha256d(payload).as_bytes()[..4]);
}

#[test]
fn huge_claimed_tx_count_in_a_tiny_block_fails_cleanly() {
    // A block whose header is honest but whose transaction-count varint
    // claims 2^25 entries followed by nothing: the decoder must fail with
    // a clean decode error (no panic, no count-sized allocation).
    let genesis = world().3;
    let mut bytes = genesis.header.to_bytes();
    assert_eq!(bytes.len(), 80, "header prefix");
    write_varint(&mut bytes, MAX_COLLECTION_LEN);
    let err = EbvBlock::from_bytes(&bytes).expect_err("truncated body must not decode");
    let _ = err; // any DecodeError is acceptable; not panicking is the point
}

#[test]
fn huge_claimed_vector_count_in_a_tiny_snapshot_fails_cleanly() {
    // Same attack at the snapshot layer: height + tip hash + unspent
    // count, then a vector-count varint claiming 2^25 with an empty body.
    let mut bytes = Vec::new();
    0u32.encode(&mut bytes);
    sha256d(b"tip").encode(&mut bytes);
    0u64.encode(&mut bytes);
    write_varint(&mut bytes, MAX_COLLECTION_LEN);
    let err = BitVectorSnapshot::from_bytes(&bytes).expect_err("empty body must not decode");
    let _ = err;
}
