//! Batch-verification differential at the node level: with
//! `batch_verify` on and off, both validators must return the identical
//! accept/reject decision and the identical error — including the
//! minimum-`(tx, input)` selection — on every block of a tampered chain.

use ebv_core::tidy::{EbvBlock, InputBody};
use ebv_core::{BaselineConfig, BaselineNode, EbvConfig, EbvNode, Intermediary};
use ebv_script::Script;
use ebv_store::{KvStore, StoreConfig, UtxoSet};
use ebv_workload::{ChainGenerator, GeneratorParams};

fn build_chains(params: GeneratorParams) -> (Vec<ebv_chain::Block>, Vec<EbvBlock>) {
    let blocks = ChainGenerator::new(params).generate();
    let ebv_blocks = Intermediary::new(0)
        .convert_chain(&blocks)
        .expect("generated chains always convert");
    (blocks, ebv_blocks)
}

/// Recompute the hash links after mutating transaction `tx`'s bodies.
fn relink(block: &mut EbvBlock, tx: usize) {
    let hashes: Vec<_> = block.transactions[tx]
        .bodies
        .iter()
        .map(InputBody::hash)
        .collect();
    block.transactions[tx].tidy.input_hashes = hashes;
    block.header.merkle_root = block.compute_merkle_root();
}

/// Corrupt one byte inside the signature push of input `(tx, input)`'s
/// unlocking script — the tamper lands in the ECDSA check itself, which is
/// exactly the work the batch settles differently from the strict path.
fn tamper_signature(block: &EbvBlock, tx: usize, input: usize) -> EbvBlock {
    let mut b = block.clone();
    let mut bytes = b.transactions[tx].bodies[input].us.as_bytes().to_vec();
    // Byte 0 is the push-length opcode; byte 1 starts the 64-byte compact
    // signature. Flip mid-signature so both components stay in range and
    // the failure is a clean equation mismatch, not a parse error.
    bytes[20] ^= 0x01;
    b.transactions[tx].bodies[input].us = Script::from_bytes(bytes);
    relink(&mut b, tx);
    b
}

/// Same corruption for a baseline block.
fn tamper_baseline_signature(
    block: &ebv_chain::Block,
    tx: usize,
    input: usize,
) -> ebv_chain::Block {
    let mut b = block.clone();
    let mut bytes = b.transactions[tx].inputs[input]
        .unlocking_script
        .as_bytes()
        .to_vec();
    bytes[20] ^= 0x01;
    b.transactions[tx].inputs[input].unlocking_script = Script::from_bytes(bytes);
    b.header.merkle_root = b.compute_merkle_root();
    b
}

#[test]
fn ebv_batch_and_strict_report_identical_errors() {
    let (_, chain) = build_chains(GeneratorParams::tiny(400, 0xba7c));
    let mut strict = EbvNode::new(&chain[0], EbvConfig::default());
    let mut batch = EbvNode::new(
        &chain[0],
        EbvConfig {
            batch_verify: true,
            ..EbvConfig::default()
        },
    );
    let mut batch_seq = EbvNode::new(
        &chain[0],
        EbvConfig {
            batch_verify: true,
            ..EbvConfig::sequential()
        },
    );

    for (h, block) in chain.iter().enumerate().skip(1) {
        // Every 5th block: tamper a signature (possibly several, to
        // exercise minimum-(tx, input) selection) and demand the same
        // rejection from all three configurations.
        if h % 5 == 0
            && block.transactions.len() > 1
            && block.transactions[1].bodies[0].proof.is_some()
        {
            let mut bad = tamper_signature(block, 1, 0);
            if h % 10 == 0
                && bad.transactions.len() > 2
                && bad.transactions[2].bodies[0].proof.is_some()
            {
                bad = tamper_signature(&bad, 2, 0);
            }
            let e_strict = strict.process_block(&bad).expect_err("tampered sig");
            let e_batch = batch.process_block(&bad).expect_err("tampered sig");
            let e_seq = batch_seq.process_block(&bad).expect_err("tampered sig");
            assert_eq!(e_strict, e_batch, "height {h}: strict vs batch error");
            assert_eq!(e_strict, e_seq, "height {h}: strict vs batch-seq error");
        }
        let r_strict = strict.process_block(block);
        let r_batch = batch.process_block(block);
        let r_seq = batch_seq.process_block(block);
        assert_eq!(
            r_strict.as_ref().err(),
            r_batch.as_ref().err(),
            "height {h}"
        );
        assert_eq!(r_strict.as_ref().err(), r_seq.as_ref().err(), "height {h}");
        assert!(r_strict.is_ok(), "height {h}: generated block validates");
    }

    assert_eq!(strict.tip_height(), batch.tip_height());
    assert_eq!(strict.tip_hash(), batch.tip_hash());
    assert_eq!(strict.state_digest(), batch.state_digest());
    assert_eq!(strict.state_digest(), batch_seq.state_digest());
}

#[test]
fn baseline_batch_and_strict_agree() {
    let (blocks, _) = build_chains(GeneratorParams::tiny(120, 0x5eed));
    let fresh = || {
        UtxoSet::new(
            KvStore::open(StoreConfig {
                cache_budget: 1 << 20,
                latency: Default::default(),
                path: None,
            })
            .expect("temp store opens"),
        )
    };
    let mut strict =
        BaselineNode::new(&blocks[0], fresh(), BaselineConfig::default()).expect("genesis");
    let mut batch = BaselineNode::new(
        &blocks[0],
        fresh(),
        BaselineConfig {
            batch_verify: true,
            ..BaselineConfig::default()
        },
    )
    .expect("genesis");

    for (h, block) in blocks.iter().enumerate().skip(1) {
        if h % 6 == 0 && block.transactions.len() > 1 && !block.transactions[1].inputs.is_empty() {
            let bad = tamper_baseline_signature(block, 1, 0);
            let e_strict = strict.process_block(&bad).expect_err("tampered sig");
            let e_batch = batch.process_block(&bad).expect_err("tampered sig");
            // BaselineError wraps io::Error and so cannot derive PartialEq;
            // the Debug rendering carries the full (tx, input, err) triple.
            assert_eq!(
                format!("{e_strict:?}"),
                format!("{e_batch:?}"),
                "height {h}: baseline batch error"
            );
        }
        let r_strict = strict.process_block(block);
        let r_batch = batch.process_block(block);
        assert_eq!(
            r_strict.as_ref().err().map(|e| format!("{e:?}")),
            r_batch.as_ref().err().map(|e| format!("{e:?}")),
            "height {h}"
        );
        assert!(r_strict.is_ok(), "height {h}: generated block validates");
    }
    assert_eq!(strict.tip_height(), batch.tip_height());
    assert_eq!(strict.tip_hash(), batch.tip_hash());
}
