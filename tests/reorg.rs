//! Reorg primitives: connecting then disconnecting blocks must restore
//! state exactly, on both node types, and re-connecting must succeed.

use ebv::core::{BaselineConfig, BaselineNode, EbvConfig, EbvNode, Intermediary};
use ebv::store::{KvStore, StoreConfig, UtxoSet};
use ebv::workload::{ChainGenerator, GeneratorParams};

fn chain_pair() -> (Vec<ebv::chain::Block>, Vec<ebv_core::EbvBlock>) {
    let blocks = ChainGenerator::new(GeneratorParams::tiny(12, 31)).generate();
    let ebv_blocks = Intermediary::new(0)
        .convert_chain(&blocks)
        .expect("conversion");
    (blocks, ebv_blocks)
}

#[test]
fn ebv_disconnect_restores_state() {
    let (_, ebv_blocks) = chain_pair();
    let mut node = EbvNode::new(&ebv_blocks[0], EbvConfig::default());

    // Connect to height 8, snapshot, connect to 12, roll back to 8.
    for b in &ebv_blocks[1..=8] {
        node.process_block(b).expect("valid");
    }
    let unspent_at_8 = node.total_unspent();
    let memory_at_8 = node.status_memory();
    let tip_at_8 = node.tip_hash();

    for b in &ebv_blocks[9..] {
        node.process_block(b).expect("valid");
    }
    assert_eq!(node.tip_height(), 12);

    for expected in (8..12).rev() {
        assert_eq!(node.disconnect_tip().expect("undo intact"), Some(expected));
    }
    assert_eq!(node.tip_height(), 8);
    assert_eq!(node.tip_hash(), tip_at_8);
    assert_eq!(node.total_unspent(), unspent_at_8);
    assert_eq!(node.status_memory(), memory_at_8);

    // Reconnect the same blocks: must validate again.
    for b in &ebv_blocks[9..] {
        node.process_block(b).expect("reconnect after rollback");
    }
    assert_eq!(node.tip_height(), 12);
}

#[test]
fn ebv_disconnect_to_genesis_then_stop() {
    let (_, ebv_blocks) = chain_pair();
    let mut node = EbvNode::new(&ebv_blocks[0], EbvConfig::default());
    for b in &ebv_blocks[1..=3] {
        node.process_block(b).expect("valid");
    }
    assert_eq!(node.disconnect_tip().expect("undo intact"), Some(2));
    assert_eq!(node.disconnect_tip().expect("undo intact"), Some(1));
    assert_eq!(node.disconnect_tip().expect("undo intact"), Some(0));
    // Genesis cannot be disconnected.
    assert_eq!(node.disconnect_tip().expect("undo intact"), None);
    assert_eq!(node.tip_height(), 0);
}

#[test]
fn baseline_disconnect_restores_utxo_set() {
    let (blocks, _) = chain_pair();
    let utxos = UtxoSet::new(KvStore::open(StoreConfig::with_budget(8 << 20)).expect("store"));
    let mut node = BaselineNode::new(&blocks[0], utxos, BaselineConfig::default()).expect("boot");

    for b in &blocks[1..=6] {
        node.process_block(b).expect("valid");
    }
    let size_at_6 = node.utxos().size();
    let tip_at_6 = node.tip_hash();

    for b in &blocks[7..] {
        node.process_block(b).expect("valid");
    }
    for expected in (6..12).rev() {
        assert_eq!(node.disconnect_tip().expect("undo intact"), Some(expected));
    }
    assert_eq!(node.utxos().size(), size_at_6);
    assert_eq!(node.tip_hash(), tip_at_6);

    // Reconnect.
    for b in &blocks[7..] {
        node.process_block(b).expect("reconnect");
    }
    assert_eq!(node.tip_height(), 12);
}

#[test]
fn nodes_agree_after_identical_reorg() {
    let (blocks, ebv_blocks) = chain_pair();
    let utxos = UtxoSet::new(KvStore::open(StoreConfig::with_budget(8 << 20)).expect("store"));
    let mut baseline =
        BaselineNode::new(&blocks[0], utxos, BaselineConfig::default()).expect("boot");
    let mut ebv = EbvNode::new(&ebv_blocks[0], EbvConfig::default());

    for (b, e) in blocks[1..].iter().zip(&ebv_blocks[1..]) {
        baseline.process_block(b).expect("valid");
        ebv.process_block(e).expect("valid");
    }
    baseline.disconnect_tip().expect("rollback");
    baseline.disconnect_tip().expect("rollback");
    ebv.disconnect_tip().expect("rollback");
    ebv.disconnect_tip().expect("rollback");
    assert_eq!(baseline.utxos().size().count, ebv.total_unspent());
    assert_eq!(baseline.tip_height(), ebv.tip_height());
}
