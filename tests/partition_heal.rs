//! Partition-recovery acceptance suite: after a gossip partition heals,
//! all 500 netsim nodes must converge onto the heavier branch through the
//! real `reorg_to` engine, the EBV and baseline validation models must
//! reach bit-identical post-heal state, and — satellite to the netsim
//! scenario — a fork deeper than `max_reorg_depth` must fail *closed*
//! through the real sync driver, on both node types, with a scored,
//! slug-attributed outcome rather than a stall or a wrapped reorg.

use ebv::chain::{build_block, coinbase_tx, Block};
use ebv::core::{
    sync_multi, BaselineConfig, BaselineNode, EbvConfig, EbvNode, Intermediary, PeerHandle,
    SyncConfig,
};
use ebv::netsim::{run_partition_heal, PartitionParams, ValidationModel};
use ebv::script::Script;
use ebv::store::{KvStore, StoreConfig, UtxoSet};
use ebv::workload::{ChainGenerator, GeneratorParams};

#[test]
fn all_500_nodes_converge_to_the_heavy_tip() {
    let params = PartitionParams::default();
    assert!(params.nodes >= 500, "acceptance scale is >= 500 nodes");
    let out = run_partition_heal(&params, ValidationModel::ebv_from_mean_us(1_000));
    assert!(
        out.converged,
        "only {}/{} nodes converged after {} heal rounds",
        out.converged_nodes, out.nodes, out.heal_rounds
    );
    assert_eq!(out.converged_nodes, params.nodes);
    assert!(
        out.heal_rounds < params.max_heal_rounds,
        "convergence must not hit the round backstop"
    );
    assert_eq!(out.refused, 0, "no reorg is deeper than the default bound");
    assert!(!out.reorg_depths.is_empty(), "the minority must reorg");
    assert!(
        out.reorg_depths.iter().all(|&d| d <= params.branch_a),
        "no reorg can be deeper than branch A: {:?}",
        out.reorg_depths
    );
}

#[test]
fn ebv_and_baseline_models_reach_identical_post_heal_state() {
    // Differential: the validation model changes only the modeled cost,
    // never the consensus outcome. Same seed, same topology, same
    // reorg schedule — different total modeled time.
    let params = PartitionParams::default();
    let ebv = run_partition_heal(&params, ValidationModel::ebv_from_mean_us(1_000));
    let baseline = run_partition_heal(&params, ValidationModel::baseline_from_mean_us(10_000));
    assert!(ebv.converged && baseline.converged);
    assert_eq!(ebv.heavy_tip, baseline.heavy_tip, "post-heal tips differ");
    assert_eq!(ebv.converged_nodes, baseline.converged_nodes);
    assert_eq!(ebv.heal_rounds, baseline.heal_rounds);
    assert_eq!(
        ebv.reorg_depths, baseline.reorg_depths,
        "the reorg schedule must be model-independent"
    );
    assert!(
        ebv.total_modeled_us < baseline.total_modeled_us,
        "EBV recovery must be modeled cheaper: {} vs {}",
        ebv.total_modeled_us,
        baseline.total_modeled_us
    );
}

#[test]
fn too_deep_partition_fails_closed_at_netsim_scale() {
    // The netsim-level fail-closed story at the acceptance node count: a
    // minority branch deeper than the bound leaves its nodes visibly
    // unconverged (refusals counted), never wrapped or stalled.
    let params = PartitionParams {
        branch_a: 10,
        branch_b: 12,
        max_reorg_depth: 4,
        ..PartitionParams::default()
    };
    let out = run_partition_heal(&params, ValidationModel::ebv_from_mean_us(1_000));
    assert!(!out.converged, "deep minority nodes must refuse the reorg");
    assert!(out.refused > 0, "refusals must be counted, not silent");
    assert!(
        out.reorg_depths.iter().all(|&d| d <= 4),
        "every performed reorg stays within the bound: {:?}",
        out.reorg_depths
    );
}

/// `base[..=fork]` plus `ext` fresh empty blocks (distinct `time` keeps
/// the branch's hashes off the main chain).
fn fork_chain(base: &[Block], fork: u32, ext: usize, time: u32) -> Vec<Block> {
    let mut chain: Vec<Block> = base[..=fork as usize].to_vec();
    for k in 0..ext {
        let h = fork + 1 + k as u32;
        let prev = chain.last().expect("prefix nonempty").header.hash();
        chain.push(build_block(
            prev,
            coinbase_tx(h, Script::new(), Vec::new()),
            Vec::new(),
            time,
            0,
        ));
    }
    chain
}

/// The fail-closed verdict shared by both node types: the deep-fork peer
/// was banned on scored `fork_rejected` penalties (slug-attributed in the
/// process-global trace), the honest peer was not, and no blocks were
/// unwound — the fork was refused, not wrapped into a partial reorg.
fn assert_depth_refusal(report: &ebv::core::SyncReport, honest_id: usize, fork_id: usize) {
    let stat = |id: usize| {
        report
            .peers
            .iter()
            .find(|p| p.id == id)
            .unwrap_or_else(|| panic!("no stats for peer {id}"))
    };
    let fork = stat(fork_id);
    assert!(fork.banned, "the deep-fork peer must be banned");
    assert!(
        fork.banned_at_us.is_some(),
        "the ban must carry a time-to-ban"
    );
    assert!(
        fork.fork_rejects >= 4,
        "a 100-point ban from 25-point fork penalties needs >= 4 rejects, saw {}",
        fork.fork_rejects
    );
    assert!(!stat(honest_id).banned, "the honest peer must survive");
    assert_eq!(report.reorgs, 0, "the deep reorg must not happen");
    assert_eq!(report.blocks_disconnected, 0, "no block may be unwound");

    let trace = ebv::telemetry::trace_snapshot();
    assert!(
        trace.iter().any(|l| {
            l.contains("\"event\":\"sync.peer_banned\"")
                && l.contains(&format!("\"peer\":{fork_id}"))
                && l.contains("\"last_reason\":\"fork_rejected\"")
        }),
        "the ban event must attribute the fork_rejected slug"
    );
    assert!(
        trace.iter().any(|l| {
            l.contains("\"event\":\"sync.peer_score\"")
                && l.contains(&format!("\"peer\":{fork_id}"))
                && l.contains("\"reason\":\"fork_rejected\"")
        }),
        "the score trail must carry fork_rejected penalties"
    );
}

#[test]
fn deep_fork_fails_closed_on_ebv_node() {
    // The node holds the 2-block prefix both branches share, then syncs
    // chain A (16 blocks) from the honest peer. The second peer serves
    // branch B: forked at height 1 — far deeper than the configured
    // max_reorg_depth of 4 — and longer than A, so it would win by length
    // were the depth bound not enforced. The driver must refuse the
    // reorg with scored fork_rejected penalties until the peer is banned,
    // and the node must end the session on chain A.
    ebv::telemetry::set_enabled(true);
    let blocks_a = ChainGenerator::new(GeneratorParams::tiny(16, 6101)).generate();
    let ebv_a = Intermediary::new(0)
        .convert_chain(&blocks_a)
        .expect("conversion");
    let tip_a = ebv_a.len() as u32 - 1;
    let blocks_b = fork_chain(&blocks_a, 1, blocks_a.len() + 4, 6_600_000);
    let ebv_b = Intermediary::new(0)
        .convert_chain(&blocks_b)
        .expect("fork conversion");
    assert!(blocks_b.len() > blocks_a.len(), "branch B must be longer");

    let mut node = EbvNode::new(&ebv_a[0], EbvConfig::default());
    node.process_block(&ebv_a[1]).expect("shared prefix");
    let cfg = SyncConfig {
        max_reorg_depth: 4,
        ..SyncConfig::fast_test()
    };
    // Ties in the scheduler go to the lowest peer id, so the honest peer
    // reaches the tip first and the fork peer attacks an established chain.
    let peers = vec![
        PeerHandle::spawn(9301, ebv_a.clone()),
        PeerHandle::spawn(9360, ebv_b),
    ];
    let report = sync_multi(&mut node, peers, &cfg).expect("honest peer carries the session");
    assert_eq!(node.tip_height(), tip_a, "node must stay on chain A");
    assert_eq!(node.tip_hash(), ebv_a[tip_a as usize].header.hash());
    assert_depth_refusal(&report, 9301, 9360);
    node.check_invariants().expect("invariants after refusal");
}

#[test]
fn deep_fork_fails_closed_on_baseline_node() {
    ebv::telemetry::set_enabled(true);
    let blocks_a = ChainGenerator::new(GeneratorParams::tiny(16, 6201)).generate();
    let tip_a = blocks_a.len() as u32 - 1;
    let blocks_b = fork_chain(&blocks_a, 1, blocks_a.len() + 4, 6_700_000);
    assert!(blocks_b.len() > blocks_a.len(), "branch B must be longer");

    let utxos = UtxoSet::new(KvStore::open(StoreConfig::with_budget(8 << 20)).expect("store"));
    let mut node = BaselineNode::new(&blocks_a[0], utxos, BaselineConfig::default()).expect("boot");
    node.process_block(&blocks_a[1]).expect("shared prefix");
    let cfg = SyncConfig {
        max_reorg_depth: 4,
        ..SyncConfig::fast_test()
    };
    let peers = vec![
        PeerHandle::spawn(9401, blocks_a.clone()),
        PeerHandle::spawn(9460, blocks_b),
    ];
    let report = sync_multi(&mut node, peers, &cfg).expect("honest peer carries the session");
    assert_eq!(node.tip_height(), tip_a, "node must stay on chain A");
    assert_eq!(node.tip_hash(), blocks_a[tip_a as usize].header.hash());
    assert_depth_refusal(&report, 9401, 9460);
    node.check_invariants().expect("invariants after refusal");
}
