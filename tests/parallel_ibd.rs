//! Snapshot-parallel IBD: differential and adversarial coverage.
//!
//! * `parallel_ibd` must reach a final state **identical** to sequential
//!   `ebv_ibd` — tip hash, total-unspent, every bit vector — across worker
//!   counts {1, 2, 4} and checkpoint intervals including a non-divisor K;
//! * a corrupted checkpoint must be detected at the stitch, attributed to
//!   the offending interval, and degraded to a sequential fallback that
//!   still produces the correct final state;
//! * `ebv_ibd`/`baseline_ibd` must return the periods completed before a
//!   mid-chunk validation failure instead of discarding them.

use ebv_core::baseline_node::BaselineConfig;
use ebv_core::{
    baseline_ibd, build_checkpoints, ebv_ibd, parallel_ibd, BaselineNode, EbvConfig, EbvNode,
    Intermediary, ParallelIbdError,
};
use ebv_primitives::encode::Encodable;
use ebv_primitives::hash::sha256d;
use ebv_store::{KvStore, StoreConfig, UtxoSet};
use ebv_workload::{ChainGenerator, GeneratorParams};

fn ebv_chain(n: u32, seed: u64) -> Vec<ebv_core::EbvBlock> {
    let blocks = ChainGenerator::new(GeneratorParams::tiny(n, seed)).generate();
    Intermediary::new(0)
        .convert_chain(&blocks)
        .expect("generated chains always convert")
}

/// Replay the whole chain sequentially — the ground truth.
fn sequential_node(chain: &[ebv_core::EbvBlock]) -> EbvNode {
    let mut node = EbvNode::new(&chain[0], EbvConfig::default());
    ebv_ibd(&mut node, &chain[1..], 64).expect("generated chain validates");
    node
}

/// Full-state equality: tip, totals, and every bit vector.
fn assert_same_state(got: &EbvNode, want: &EbvNode) {
    assert_eq!(got.tip_height(), want.tip_height());
    assert_eq!(got.tip_hash(), want.tip_hash());
    assert_eq!(got.total_unspent(), want.total_unspent());
    for h in 0..=want.tip_height() {
        assert_eq!(
            got.bitvecs().vector(h),
            want.bitvecs().vector(h),
            "bit vector at height {h}"
        );
    }
    assert_eq!(got.state_digest(), want.state_digest());
}

#[test]
fn parallel_matches_sequential_across_workers_and_intervals() {
    let chain = ebv_chain(240, 0x51ac);
    let tip = chain.len() as u32 - 1;
    let want = sequential_node(&chain);

    // 60 divides the chain evenly; 97 leaves a short tail interval.
    for every in [60usize, 97] {
        let checkpoints =
            build_checkpoints(&chain[0], &chain[1..], every).expect("structurally consistent");
        let expected_cps = (tip as usize - 1) / every;
        assert_eq!(checkpoints.len(), expected_cps, "K={every}");

        // The stitch invariant, directly: each checkpoint must be byte-
        // identical to the fully validated state at its height.
        let mut probe = EbvNode::new(&chain[0], EbvConfig::default());
        for block in &chain[1..=every] {
            probe.process_block(block).expect("valid block");
        }
        assert_eq!(
            probe.snapshot().to_bytes(),
            checkpoints[0].to_bytes(),
            "checkpoint K={every} equals validated state"
        );

        for workers in [1usize, 2, 4] {
            let run = parallel_ibd(
                &chain[0],
                &chain[1..],
                &checkpoints,
                workers,
                EbvConfig::default(),
            )
            .expect("valid chain replays");
            assert_eq!(run.stitch_mismatch, None, "K={every} workers={workers}");
            assert_eq!(run.intervals.len(), checkpoints.len() + 1);
            // Intervals tile the chain contiguously.
            assert_eq!(run.intervals[0].start_height, 1);
            assert_eq!(run.intervals.last().unwrap().end_height, tip);
            for pair in run.intervals.windows(2) {
                assert_eq!(pair[1].start_height, pair[0].end_height + 1);
            }
            assert_same_state(&run.node, &want);
        }
    }

    // No checkpoints at all degenerates to one sequential interval.
    let run = parallel_ibd(&chain[0], &chain[1..], &[], 4, EbvConfig::default())
        .expect("valid chain replays");
    assert_eq!(run.intervals.len(), 1);
    assert_same_state(&run.node, &want);
}

#[test]
fn corrupted_checkpoint_is_caught_at_the_stitch() {
    let chain = ebv_chain(240, 0x51ac);
    let tip = chain.len() as u32 - 1;
    let want = sequential_node(&chain);
    let mut checkpoints =
        build_checkpoints(&chain[0], &chain[1..], 60).expect("structurally consistent");
    assert!(checkpoints.len() >= 2);

    // Corrupt checkpoint 1 *plausibly*: flip one surviving output to spent,
    // picking a coordinate still unspent at the chain tip so every later
    // block still replays cleanly — only the stitch can notice.
    let victim = &checkpoints[1];
    let (h, pos) = (0..=victim.height())
        .find_map(|h| {
            let v = want.bitvecs().vector(h)?;
            (0..v.len())
                .find(|&p| v.is_unspent(p) == Some(true))
                .map(|p| (h, p))
        })
        .expect("some output survives the whole chain");
    let mut set = victim.restore();
    set.spend(h, pos).expect("picked an unspent bit");
    checkpoints[1] = set.snapshot(victim.height(), victim.tip_hash());

    let run = parallel_ibd(
        &chain[0],
        &chain[1..],
        &checkpoints,
        4,
        EbvConfig::default(),
    )
    .expect("mismatch degrades, it does not fail");
    // Interval 1 replayed from the good checkpoint 0, so its end state is
    // the truth and checkpoint 1 is convicted at stitch index 1.
    assert_eq!(run.stitch_mismatch, Some(1));
    // Intervals 0 and 1 committed, then one sequential-fallback tail.
    assert_eq!(run.intervals.len(), 3);
    assert_eq!(run.intervals[2].start_height, 121);
    assert_eq!(run.intervals[2].end_height, tip);
    assert_same_state(&run.node, &want);
}

#[test]
fn unusable_checkpoint_lists_are_rejected() {
    let chain = ebv_chain(60, 0xbeef);
    let checkpoints = build_checkpoints(&chain[0], &chain[1..], 20).expect("consistent");
    assert_eq!(checkpoints.len(), 2);

    let descending: Vec<_> = checkpoints.iter().rev().cloned().collect();
    assert_eq!(
        parallel_ibd(&chain[0], &chain[1..], &descending, 2, EbvConfig::default())
            .err()
            .map(|e| matches!(e, ParallelIbdError::BadCheckpoints(_))),
        Some(true)
    );

    // A checkpoint at the tip height starts an empty interval — rejected.
    let mut node = sequential_node(&chain);
    let at_tip = vec![node.snapshot()];
    assert_eq!(
        parallel_ibd(&chain[0], &chain[1..], &at_tip, 2, EbvConfig::default())
            .err()
            .map(|e| matches!(e, ParallelIbdError::BadCheckpoints(_))),
        Some(true)
    );
    drop(node.disconnect_tip());
}

#[test]
fn ebv_ibd_returns_completed_periods_on_failure() {
    let mut chain = ebv_chain(20, 0x77);
    // Break block 13: bogus Merkle root → MerkleMismatch mid-third-chunk.
    chain[13].header.merkle_root = sha256d(b"bogus root");

    let mut node = EbvNode::new(&chain[0], EbvConfig::default());
    let failure = ebv_ibd(&mut node, &chain[1..], 5).expect_err("tampered block rejected");
    assert_eq!(failure.failed_at, 13);
    // Periods 1-5 and 6-10 completed, plus the partial 11-12.
    assert_eq!(failure.completed.len(), 3);
    assert_eq!(failure.completed[0].start_height, 1);
    assert_eq!(failure.completed[0].end_height, 5);
    assert_eq!(failure.completed[2].start_height, 11);
    assert_eq!(failure.completed[2].end_height, 12);
    assert_eq!(node.tip_height(), 12);
}

#[test]
fn baseline_ibd_returns_completed_periods_on_failure() {
    let mut blocks = ChainGenerator::new(GeneratorParams::tiny(20, 0x77)).generate();
    blocks[13].header.merkle_root = sha256d(b"bogus root");

    let utxos = UtxoSet::new(KvStore::open(StoreConfig::with_budget(1 << 20)).unwrap());
    let mut node = BaselineNode::new(&blocks[0], utxos, BaselineConfig::default()).unwrap();
    let failure = baseline_ibd(&mut node, &blocks[1..], 5).expect_err("tampered block rejected");
    assert_eq!(failure.failed_at, 13);
    assert_eq!(failure.completed.len(), 3);
    assert_eq!(failure.completed[2].end_height, 12);
    assert_eq!(node.tip_height(), 12);
}
