//! Status-database durability: restart and crash-recovery behaviour of
//! the UTXO set across real files.

use ebv::chain::OutPoint;
use ebv::primitives::hash::sha256d;
use ebv::script::Builder;
use ebv::store::{KvStore, LatencyModel, UtxoEntry, UtxoSet};
use std::path::PathBuf;

fn temp_path(tag: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!(
        "ebv-recovery-{}-{}-{tag}.log",
        std::process::id(),
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .as_nanos()
    ));
    p
}

struct Cleanup(PathBuf);
impl Drop for Cleanup {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
    }
}

fn entry(value: u64) -> UtxoEntry {
    UtxoEntry {
        value,
        locking_script: Builder::new().push_data(&[0xcd; 25]).into_script(),
        height: 2,
        position: value as u32,
        coinbase: false,
    }
}

fn outpoint(i: u64) -> OutPoint {
    OutPoint::new(sha256d(&i.to_le_bytes()), 0)
}

#[test]
fn utxo_set_survives_restart() {
    let path = temp_path("restart");
    let _c = Cleanup(path.clone());
    {
        let kv = KvStore::open_at(&path, 1 << 20, LatencyModel::none()).expect("open");
        let mut set = UtxoSet::new(kv);
        for i in 0..50 {
            set.insert(&outpoint(i), &entry(i)).expect("insert");
        }
        let e = entry(7);
        set.delete(&outpoint(7), &e).expect("delete");
        set.flush().expect("flush");
    }
    // Reopen: all entries except the deleted one are present.
    let kv = KvStore::open_at(&path, 1 << 20, LatencyModel::none()).expect("reopen");
    let mut set = UtxoSet::new(kv);
    assert!(set.fetch(&outpoint(7)).expect("io").is_none());
    for i in (0..50).filter(|&i| i != 7) {
        let got = set.fetch(&outpoint(i)).expect("io").expect("present");
        assert_eq!(got.value, i);
    }
}

#[test]
fn crash_mid_append_loses_only_the_torn_record() {
    let path = temp_path("crash");
    let _c = Cleanup(path.clone());
    {
        let mut kv = KvStore::open_at(&path, 1 << 20, LatencyModel::none()).expect("open");
        kv.put(b"durable-1", vec![1; 40]).expect("put");
        kv.put(b"durable-2", vec![2; 40]).expect("put");
        kv.flush().expect("flush");
    }
    // Simulate a torn write: append garbage that looks like a cut-off
    // record header.
    {
        use std::io::Write;
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(&path)
            .expect("open raw");
        f.write_all(&[1u8, 90, 0, 0]).expect("torn tail");
    }
    let mut kv = KvStore::open_at(&path, 1 << 20, LatencyModel::none()).expect("recovers");
    assert_eq!(
        kv.get(b"durable-1").expect("io").expect("present"),
        vec![1; 40]
    );
    assert_eq!(
        kv.get(b"durable-2").expect("io").expect("present"),
        vec![2; 40]
    );
    // And the store keeps working after recovery.
    kv.put(b"post-crash", vec![3; 8]).expect("put");
    kv.flush().expect("flush");
    drop(kv);
    let mut kv = KvStore::open_at(&path, 1 << 20, LatencyModel::none()).expect("reopen");
    assert_eq!(
        kv.get(b"post-crash").expect("io").expect("present"),
        vec![3; 8]
    );
}

#[test]
fn compaction_preserves_contents_across_restart() {
    let path = temp_path("compact");
    let _c = Cleanup(path.clone());
    {
        let mut kv = KvStore::open_at(&path, 1 << 20, LatencyModel::none()).expect("open");
        for i in 0..100u32 {
            kv.put(&i.to_le_bytes(), vec![0xee; 64]).expect("put");
        }
        for i in 0..80u32 {
            kv.delete(&i.to_le_bytes()).expect("delete");
        }
        kv.flush().expect("flush");
        let reclaimed = kv.compact().expect("compact");
        assert!(reclaimed > 0, "compaction reclaims shadowed records");
    }
    let mut kv = KvStore::open_at(&path, 1 << 20, LatencyModel::none()).expect("reopen");
    for i in 0..80u32 {
        assert!(
            kv.get(&i.to_le_bytes()).expect("io").is_none(),
            "{i} deleted"
        );
    }
    for i in 80..100u32 {
        assert_eq!(
            kv.get(&i.to_le_bytes()).expect("io").expect("kept"),
            vec![0xee; 64]
        );
    }
}
