//! End-to-end pipeline: workload generator → baseline node, and through
//! the intermediary → EBV node. Both must accept the chain and agree on
//! the resulting state.

use ebv::core::{baseline_ibd, ebv_ibd, BaselineConfig, BaselineNode, Intermediary};
use ebv::store::{KvStore, LatencyModel, StoreConfig, UtxoSet};
use ebv::workload::{ChainGenerator, GeneratorParams};
use ebv_core::{EbvConfig, EbvNode};

fn utxo_set(budget: usize) -> UtxoSet {
    UtxoSet::new(KvStore::open(StoreConfig::with_budget(budget)).expect("store"))
}

#[test]
fn generated_chain_validates_on_both_nodes() {
    let blocks = ChainGenerator::new(GeneratorParams::tiny(15, 21)).generate();
    let ebv_blocks = Intermediary::new(0)
        .convert_chain(&blocks)
        .expect("conversion");

    let mut baseline =
        BaselineNode::new(&blocks[0], utxo_set(8 << 20), BaselineConfig::default()).expect("boot");
    for b in &blocks[1..] {
        baseline
            .process_block(b)
            .expect("baseline accepts generated block");
    }

    let mut ebv = EbvNode::new(&ebv_blocks[0], EbvConfig::default());
    for b in &ebv_blocks[1..] {
        ebv.process_block(b).expect("ebv accepts converted block");
    }

    assert_eq!(baseline.tip_height(), 15);
    assert_eq!(ebv.tip_height(), 15);
    // The fundamental agreement: same unspent outputs in both models.
    assert_eq!(baseline.utxos().size().count, ebv.total_unspent());
    // And EBV's status data is smaller (the paper's headline).
    assert!(ebv.status_memory().optimized < baseline.utxos().size().bytes);
}

#[test]
fn tight_budget_changes_performance_not_results() {
    // Spends reach back far enough that a starved cache must miss.
    let params = GeneratorParams {
        p_old_spend: 0.8,
        old_age_range: (3, 9),
        ..GeneratorParams::tiny(12, 5)
    };
    let blocks = ChainGenerator::new(params).generate();

    // Roomy cache.
    let mut roomy =
        BaselineNode::new(&blocks[0], utxo_set(8 << 20), BaselineConfig::default()).expect("boot");
    // Starved cache with injected latency: every block still validates.
    let store = KvStore::open(StoreConfig {
        cache_budget: 256,
        latency: LatencyModel::scaled_hdd(30, 5),
        path: None,
    })
    .expect("store");
    let mut starved = BaselineNode::new(&blocks[0], UtxoSet::new(store), BaselineConfig::default())
        .expect("boot");

    for b in &blocks[1..] {
        roomy.process_block(b).expect("roomy accepts");
        starved.process_block(b).expect("starved accepts");
    }
    assert_eq!(roomy.utxos().size(), starved.utxos().size());
    // The starved node actually hit the disk.
    assert!(starved.utxos().stats().cache_misses > 0);
    assert_eq!(roomy.utxos().stats().cache_misses, 0);
}

#[test]
fn ibd_drivers_cover_whole_chain() {
    let blocks = ChainGenerator::new(GeneratorParams::tiny(20, 8)).generate();
    let ebv_blocks = Intermediary::new(0)
        .convert_chain(&blocks)
        .expect("conversion");

    let mut baseline =
        BaselineNode::new(&blocks[0], utxo_set(8 << 20), BaselineConfig::default()).expect("boot");
    let periods = baseline_ibd(&mut baseline, &blocks[1..], 7).expect("ibd");
    assert_eq!(periods.len(), 3); // 7 + 7 + 6
    assert_eq!(periods.last().expect("periods").end_height, 20);

    let mut ebv = EbvNode::new(&ebv_blocks[0], EbvConfig::default());
    let periods = ebv_ibd(&mut ebv, &ebv_blocks[1..], 7).expect("ibd");
    assert_eq!(periods.len(), 3);
    // EV+UV must be a small share of EBV time (the paper's Fig. 17b shape)
    // — at this scale just assert they are not the dominant term.
    let b = ebv.cumulative_breakdown();
    assert!(b.ev + b.uv < b.total(), "EV+UV must not be the whole cost");
}

#[test]
fn proof_overhead_is_logarithmic_in_block_size() {
    // The EBV proof carries ~32·log2(n_tx) bytes of Merkle branch; check
    // branches in converted blocks have the expected length.
    let blocks = ChainGenerator::new(GeneratorParams::mainnet_like(30, 13)).generate();
    let ebv_blocks = Intermediary::new(0)
        .convert_chain(&blocks)
        .expect("conversion");
    for eb in &ebv_blocks {
        let n_tx = eb.transactions.len();
        let max_height = (n_tx as f64).log2().ceil() as usize;
        for tx in eb.transactions.iter().skip(1) {
            for body in &tx.bodies {
                let proof = body.proof.as_ref().expect("spend has proof");
                // The branch was extracted from the *source* block of the
                // spent output, so bound by the largest block seen.
                assert!(
                    proof.mbr.siblings.len() <= 16,
                    "branch unreasonably long: {} (block has {n_tx} txs, max_height {max_height})",
                    proof.mbr.siblings.len()
                );
            }
        }
    }
}

#[test]
fn ebv_blocks_round_trip_through_wire_format() {
    use ebv::primitives::encode::{Decodable, Encodable};
    let blocks = ChainGenerator::new(GeneratorParams::tiny(6, 2)).generate();
    let ebv_blocks = Intermediary::new(0)
        .convert_chain(&blocks)
        .expect("conversion");
    for eb in &ebv_blocks {
        let bytes = eb.to_bytes();
        let decoded = ebv_core::EbvBlock::from_bytes(&bytes).expect("decodes");
        assert_eq!(&decoded, eb);
        // A decoded block still validates its own integrity.
        for tx in &decoded.transactions {
            tx.check_integrity().expect("integrity survives round trip");
        }
    }
}
