//! Randomized property tests over the core data structures and invariants
//! that every experiment rests on.
//!
//! Previously written with `proptest`; the offline build environment has
//! no registry, so these now drive the same properties from the local
//! deterministic `rand` shim (fixed seeds, explicit case loops). Failures
//! print the seed/case so a run is trivially reproducible.

use ebv::primitives::encode::{Decodable, Encodable, Reader};
use ebv_chain::merkle::{merkle_root, MerkleBranch};
use ebv_core::bitvec::{BitVectorSet, BlockBitVector};
use ebv_primitives::hash::{sha256d, Hash256};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const CASES: usize = 64;

// ---- bit-vectors --------------------------------------------------------

#[test]
fn bitvec_roundtrip_any_spend_pattern() {
    let mut rng = SmallRng::seed_from_u64(0x5eed_0001);
    for case in 0..CASES {
        let len = rng.gen_range(1u32..2000);
        let mut v = BlockBitVector::new_all_unspent(len);
        for _ in 0..rng.gen_range(0usize..300) {
            let s = rng.gen_range(0u32..2000);
            // Keep at least one bit unspent: the set deletes fully-spent
            // vectors, so all-spent never reaches the wire and the hardened
            // decoder rejects it.
            if v.ones() > 1 || v.is_unspent(s % len) == Some(false) {
                v.spend(s % len);
            }
        }
        let decoded = BlockBitVector::from_bytes(&v.to_bytes()).expect("round trip");
        assert_eq!(decoded, v, "case {case}, len {len}");
        // The optimized encoding is never larger than the dense one.
        assert!(v.optimized_size() <= v.dense_size(), "case {case}");
        // ones() always equals the popcount implied by iter_unspent().
        assert_eq!(v.iter_unspent().count() as u32, v.ones(), "case {case}");
    }
}

#[test]
fn bitvec_spend_unspend_involution() {
    let mut rng = SmallRng::seed_from_u64(0x5eed_0002);
    for case in 0..CASES {
        let len = rng.gen_range(1u32..500);
        let pos = rng.gen_range(0u32..500) % len;
        let mut v = BlockBitVector::new_all_unspent(len);
        assert!(v.spend(pos), "case {case}");
        assert!(!v.spend(pos), "case {case}");
        assert!(v.unspend(pos), "case {case}");
        assert_eq!(v.ones(), len, "case {case}");
        assert_eq!(v, BlockBitVector::new_all_unspent(len), "case {case}");
    }
}

#[test]
fn bitvec_set_counts_are_conserved() {
    let mut rng = SmallRng::seed_from_u64(0x5eed_0003);
    for case in 0..CASES {
        let blocks: Vec<u32> = (0..rng.gen_range(1usize..12))
            .map(|_| rng.gen_range(1u32..64))
            .collect();
        let mut set = BitVectorSet::new();
        let mut expected: u64 = 0;
        for (h, &n) in blocks.iter().enumerate() {
            set.insert_block(h as u32, n);
            expected += n as u64;
        }
        for _ in 0..rng.gen_range(0usize..100) {
            let h = rng.gen_range(0usize..12) % blocks.len();
            let pos = rng.gen_range(0u32..64) % blocks[h];
            if set.spend(h as u32, pos).is_ok() {
                expected -= 1;
            }
        }
        assert_eq!(set.total_unspent(), expected, "case {case}");
        // Memory never exceeds the dense upper bound.
        let m = set.memory();
        assert!(m.optimized <= m.unoptimized, "case {case}");
    }
}

// ---- Merkle -------------------------------------------------------------

#[test]
fn merkle_branch_verifies_for_every_leaf() {
    let mut rng = SmallRng::seed_from_u64(0x5eed_0004);
    for case in 0..CASES {
        let n = rng.gen_range(1usize..60);
        let tamper = rng.gen::<bool>();
        let leaves: Vec<Hash256> = (0..n).map(|i| sha256d(&(i as u64).to_le_bytes())).collect();
        let root = merkle_root(&leaves);
        for (i, leaf) in leaves.iter().enumerate() {
            let mut branch = MerkleBranch::extract(&leaves, i);
            if tamper && !branch.siblings.is_empty() {
                branch.siblings[0] = sha256d(b"tampered");
                // A tampered sibling always breaks verification.
                assert!(!branch.verify(leaf, &root), "case {case}, leaf {i}");
            } else {
                assert!(branch.verify(leaf, &root), "case {case}, leaf {i}");
            }
        }
    }
}

#[test]
fn merkle_root_is_injective_on_leaf_change() {
    let mut rng = SmallRng::seed_from_u64(0x5eed_0005);
    for case in 0..CASES {
        let n = rng.gen_range(2usize..40);
        let flip = rng.gen_range(0usize..40) % n;
        let leaves: Vec<Hash256> = (0..n).map(|i| sha256d(&(i as u64).to_le_bytes())).collect();
        let mut altered = leaves.clone();
        altered[flip] = sha256d(b"altered");
        assert_ne!(merkle_root(&leaves), merkle_root(&altered), "case {case}");
    }
}

// ---- encoding -----------------------------------------------------------

#[test]
fn varint_roundtrip() {
    let mut rng = SmallRng::seed_from_u64(0x5eed_0006);
    // Mix the full u64 domain with small values, where varint width changes.
    let mut values: Vec<u64> = (0..CASES).map(|_| rng.gen::<u64>()).collect();
    values.extend([
        0,
        1,
        0xfc,
        0xfd,
        0xfffe,
        0xffff,
        0x1_0000,
        u32::MAX as u64,
        u64::MAX,
    ]);
    for v in values {
        let mut buf = Vec::new();
        ebv::primitives::encode::write_varint(&mut buf, v);
        assert_eq!(buf.len(), ebv::primitives::encode::varint_len(v), "v={v}");
        let mut r = Reader::new(&buf);
        assert_eq!(r.read_varint().expect("decodes"), v);
        assert_eq!(r.remaining(), 0, "v={v}");
    }
}

#[test]
fn script_num_roundtrip() {
    let mut rng = SmallRng::seed_from_u64(0x5eed_0007);
    let mut values: Vec<i64> = (0..CASES)
        .map(|_| rng.gen_range(-0x8000_0000i64..=0x8000_0000i64))
        .collect();
    values.extend([
        0,
        1,
        -1,
        127,
        128,
        -128,
        0x7fff_ffff,
        -0x8000_0000,
        0x8000_0000,
    ]);
    for v in values {
        let enc = ebv::script::ScriptNum(v).encode();
        let dec = ebv::script::ScriptNum::decode(&enc, 5).expect("minimal");
        assert_eq!(dec.0, v);
        assert!(enc.len() <= 5, "v={v}");
    }
}

#[test]
fn hash256_encode_roundtrip() {
    let mut rng = SmallRng::seed_from_u64(0x5eed_0008);
    for case in 0..CASES {
        let mut bytes = [0u8; 32];
        for b in bytes.iter_mut() {
            *b = rng.gen::<u8>();
        }
        let h = Hash256::from_bytes(bytes);
        let enc = h.to_bytes();
        assert_eq!(Hash256::from_bytes_dec(&enc), h, "case {case}");
    }
}

// ---- crypto -------------------------------------------------------------

#[test]
fn ecdsa_sign_verify_random_keys() {
    let mut rng = SmallRng::seed_from_u64(0x5eed_0009);
    // The curve ops dominate runtime; 16 cases keep this test snappy while
    // still varying both key and message.
    for case in 0..16 {
        let seed = rng.gen_range(1u64..5000);
        let mut msg = [0u8; 16];
        for b in msg.iter_mut() {
            *b = rng.gen::<u8>();
        }
        let sk = ebv::primitives::ec::PrivateKey::from_seed(seed);
        let pk = sk.public_key();
        let digest = ebv::primitives::hash::sha256(&msg);
        let sig = sk.sign(&digest);
        assert!(pk.verify(&digest, &sig), "case {case}, seed {seed}");
        // Tampered digest never verifies.
        let mut other = digest;
        other[0] ^= 1;
        assert!(!pk.verify(&other, &sig), "case {case}, seed {seed}");
    }
}

#[test]
fn compressed_pubkey_roundtrip() {
    let mut rng = SmallRng::seed_from_u64(0x5eed_000a);
    for case in 0..16 {
        let seed = rng.gen_range(1u64..5000);
        let pk = ebv::primitives::ec::PrivateKey::from_seed(seed).public_key();
        let enc = pk.to_compressed();
        let dec = ebv::primitives::ec::PublicKey::from_compressed(&enc).expect("valid");
        assert_eq!(dec, pk, "case {case}, seed {seed}");
    }
}

/// Helper: decode via the `Decodable` trait without inline turbofish.
trait DecHelper {
    fn from_bytes_dec(buf: &[u8]) -> Hash256;
}

impl DecHelper for Hash256 {
    fn from_bytes_dec(buf: &[u8]) -> Hash256 {
        <Hash256 as Decodable>::from_bytes(buf).expect("32 bytes")
    }
}
