//! Property-based tests (proptest) over the core data structures and
//! invariants that every experiment rests on.

use ebv::primitives::encode::{Decodable, Encodable, Reader};
use ebv_chain::merkle::{merkle_root, MerkleBranch};
use ebv_core::bitvec::{BitVectorSet, BlockBitVector};
use ebv_primitives::hash::{sha256d, Hash256};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // ---- bit-vectors ----------------------------------------------------

    #[test]
    fn bitvec_roundtrip_any_spend_pattern(
        len in 1u32..2000,
        spends in prop::collection::vec(0u32..2000, 0..300),
    ) {
        let mut v = BlockBitVector::new_all_unspent(len);
        for s in spends {
            v.spend(s % len);
        }
        let decoded = BlockBitVector::from_bytes(&v.to_bytes()).expect("round trip");
        prop_assert_eq!(&decoded, &v);
        // The optimized encoding is never larger than the dense one.
        prop_assert!(v.optimized_size() <= v.dense_size());
        // ones() always equals the popcount implied by iter_unspent().
        prop_assert_eq!(v.iter_unspent().count() as u32, v.ones());
    }

    #[test]
    fn bitvec_spend_unspend_involution(len in 1u32..500, pos in 0u32..500) {
        let pos = pos % len;
        let mut v = BlockBitVector::new_all_unspent(len);
        prop_assert!(v.spend(pos));
        prop_assert!(!v.spend(pos));
        prop_assert!(v.unspend(pos));
        prop_assert_eq!(v.ones(), len);
        prop_assert_eq!(&v, &BlockBitVector::new_all_unspent(len));
    }

    #[test]
    fn bitvec_set_counts_are_conserved(
        blocks in prop::collection::vec(1u32..64, 1..12),
        spends in prop::collection::vec((0usize..12, 0u32..64), 0..100),
    ) {
        let mut set = BitVectorSet::new();
        let mut expected: u64 = 0;
        for (h, &n) in blocks.iter().enumerate() {
            set.insert_block(h as u32, n);
            expected += n as u64;
        }
        for (bi, pos) in spends {
            let h = (bi % blocks.len()) as u32;
            let pos = pos % blocks[h as usize];
            if set.spend(h, pos).is_ok() {
                expected -= 1;
            }
        }
        prop_assert_eq!(set.total_unspent(), expected);
        // Memory never exceeds the dense upper bound.
        let m = set.memory();
        prop_assert!(m.optimized <= m.unoptimized);
    }

    // ---- Merkle ----------------------------------------------------------

    #[test]
    fn merkle_branch_verifies_for_every_leaf(n in 1usize..60, tamper in any::<bool>()) {
        let leaves: Vec<Hash256> =
            (0..n).map(|i| sha256d(&(i as u64).to_le_bytes())).collect();
        let root = merkle_root(&leaves);
        for (i, leaf) in leaves.iter().enumerate() {
            let mut branch = MerkleBranch::extract(&leaves, i);
            if tamper && !branch.siblings.is_empty() {
                branch.siblings[0] = sha256d(b"tampered");
                // With n == 2 and duplicated-sibling quirks a tampered
                // sibling always breaks verification:
                prop_assert!(!branch.verify(leaf, &root));
            } else {
                prop_assert!(branch.verify(leaf, &root));
            }
        }
    }

    #[test]
    fn merkle_root_is_injective_on_leaf_change(n in 2usize..40, flip in 0usize..40) {
        let flip = flip % n;
        let leaves: Vec<Hash256> =
            (0..n).map(|i| sha256d(&(i as u64).to_le_bytes())).collect();
        let mut altered = leaves.clone();
        altered[flip] = sha256d(b"altered");
        prop_assert_ne!(merkle_root(&leaves), merkle_root(&altered));
    }

    // ---- encoding ----------------------------------------------------------

    #[test]
    fn varint_roundtrip(v in any::<u64>()) {
        let mut buf = Vec::new();
        ebv::primitives::encode::write_varint(&mut buf, v);
        prop_assert_eq!(buf.len(), ebv::primitives::encode::varint_len(v));
        let mut r = Reader::new(&buf);
        prop_assert_eq!(r.read_varint().expect("decodes"), v);
        prop_assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn script_num_roundtrip(v in -0x8000_0000i64..=0x8000_0000i64) {
        let enc = ebv::script::ScriptNum(v).encode();
        let dec = ebv::script::ScriptNum::decode(&enc, 5).expect("minimal");
        prop_assert_eq!(dec.0, v);
        prop_assert!(enc.len() <= 5);
    }

    #[test]
    fn hash256_encode_roundtrip(bytes in prop::array::uniform32(any::<u8>())) {
        let h = Hash256::from_bytes(bytes);
        let enc = h.to_bytes();
        prop_assert_eq!(Hash256::from_bytes_dec(&enc), h);
    }

    // ---- crypto ------------------------------------------------------------

    #[test]
    fn ecdsa_sign_verify_random_keys(seed in 1u64..5000, msg in any::<[u8; 16]>()) {
        let sk = ebv::primitives::ec::PrivateKey::from_seed(seed);
        let pk = sk.public_key();
        let digest = ebv::primitives::hash::sha256(&msg);
        let sig = sk.sign(&digest);
        prop_assert!(pk.verify(&digest, &sig));
        // Tampered digest never verifies.
        let mut other = digest;
        other[0] ^= 1;
        prop_assert!(!pk.verify(&other, &sig));
    }

    #[test]
    fn compressed_pubkey_roundtrip(seed in 1u64..5000) {
        let pk = ebv::primitives::ec::PrivateKey::from_seed(seed).public_key();
        let enc = pk.to_compressed();
        let dec = ebv::primitives::ec::PublicKey::from_compressed(&enc).expect("valid");
        prop_assert_eq!(dec, pk);
    }
}

/// Helper: decode via the `Decodable` trait (proptest macros dislike
/// turbofish inline).
trait DecHelper {
    fn from_bytes_dec(buf: &[u8]) -> Hash256;
}

impl DecHelper for Hash256 {
    fn from_bytes_dec(buf: &[u8]) -> Hash256 {
        <Hash256 as Decodable>::from_bytes(buf).expect("32 bytes")
    }
}

// Silence unused-import warnings from the facade double-path imports.
#[allow(unused_imports)]
use ebv::primitives::encode::DecodeError as _DecodeError;
