//! Overhead guard: telemetry must be cheap enough to leave instrumented
//! code paths in place. The same 1k-block chain is validated with the
//! process-global switch off and on; the enabled run may cost at most 5%
//! more wall clock (plus a small absolute allowance for scheduler noise).
//!
//! This test lives in its own integration-test binary on purpose: the
//! switch is process-global, and toggling it here must not race tests
//! that rely on telemetry staying enabled.

use ebv::core::{EbvBlock, EbvConfig, EbvNode, Intermediary};
use ebv::telemetry::Stopwatch;
use ebv::workload::{ChainGenerator, GeneratorParams};
use std::time::Duration;

/// Validate the whole chain on a fresh node and return the wall time.
/// Sequential pipeline: single-threaded runs time far more reproducibly
/// than the work-stealing one, and they execute the identical span and
/// per-input instrumentation.
fn validate_run(chain: &[EbvBlock]) -> Duration {
    let sw = Stopwatch::start();
    // With telemetry on, this roots a trace so every per-block span carries
    // ids and feeds the flight-recorder rings — the full causal-tracing
    // cost is inside the guarded window. Inert when disabled.
    let _root = ebv::telemetry::SpanGuard::enter_root("overhead.run", 0xd1ff);
    let mut node = EbvNode::new(&chain[0], EbvConfig::sequential());
    for block in &chain[1..] {
        node.process_block(block).expect("chain is valid");
    }
    sw.elapsed()
}

#[test]
fn telemetry_overhead_is_under_five_percent() {
    let blocks = ChainGenerator::new(GeneratorParams::tiny(1000, 0xd1ff)).generate();
    let chain = Intermediary::new(0)
        .convert_chain(&blocks)
        .expect("generated chains always convert");

    // One warm-up run populates caches and the page tables.
    ebv::telemetry::set_enabled(false);
    validate_run(&chain);

    // Min-of-three interleaved runs on each side: the minimum is the run
    // least disturbed by the scheduler, which is the cost we are guarding.
    let mut disabled = Duration::MAX;
    let mut enabled = Duration::MAX;
    for _ in 0..3 {
        ebv::telemetry::set_enabled(false);
        disabled = disabled.min(validate_run(&chain));
        ebv::telemetry::set_enabled(true);
        enabled = enabled.min(validate_run(&chain));
    }
    ebv::telemetry::set_enabled(false);

    let limit = disabled.mul_f64(1.05) + Duration::from_millis(100);
    assert!(
        enabled <= limit,
        "telemetry overhead too high: disabled {:?}, enabled {:?} (limit {:?})",
        disabled,
        enabled,
        limit
    );
}
