//! Offline, API-compatible subset of `criterion`.
//!
//! A plain timing harness: each `bench_function` runs a short warmup, then
//! `sample_size` timed samples, and prints min/median/mean per iteration.
//! No statistics beyond that, no plots, no baselines — just enough for
//! `cargo bench` to keep producing comparable numbers in an offline
//! environment.

pub use std::hint::black_box;

use std::time::{Duration, Instant};

/// How per-iteration setup cost is amortized in [`Bencher::iter_batched`].
/// Only the variants the workspace uses exist; both run one routine call
/// per setup here.
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    PerIteration,
    SmallInput,
    LargeInput,
}

/// The benchmark driver handed to each target function.
pub struct Criterion {
    sample_size: usize,
    warmup_iters: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            sample_size: 20,
            warmup_iters: 3,
        }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Criterion {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Also accepted post-construction (upstream allows both orders).
    pub fn measurement_time(self, _d: Duration) -> Criterion {
        self
    }

    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            samples: Vec::new(),
            target_samples: self.sample_size,
        };
        // Warmup: run the body a few times, discarding measurements.
        for _ in 0..self.warmup_iters {
            bencher.samples.clear();
            bencher.target_samples = 1;
            f(&mut bencher);
        }
        bencher.samples.clear();
        bencher.target_samples = self.sample_size;
        f(&mut bencher);
        report(name, &mut bencher.samples);
        self
    }
}

fn report(name: &str, samples: &mut [Duration]) {
    if samples.is_empty() {
        println!("{name:<40} no samples recorded");
        return;
    }
    samples.sort_unstable();
    let min = samples[0];
    let median = samples[samples.len() / 2];
    let mean = samples.iter().sum::<Duration>() / samples.len() as u32;
    println!(
        "{name:<40} min {:>12?}   median {:>12?}   mean {:>12?}   ({} samples)",
        min,
        median,
        mean,
        samples.len()
    );
}

/// Collects timed samples of the routine under test.
pub struct Bencher {
    samples: Vec<Duration>,
    target_samples: usize,
}

impl Bencher {
    /// Time `routine` repeatedly; one sample per call.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        for _ in 0..self.target_samples {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }

    /// Time `routine` on a fresh `setup()` product per sample; setup time
    /// is excluded from the measurement.
    pub fn iter_batched<I, R, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> R,
    {
        for _ in 0..self.target_samples {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples.push(start.elapsed());
        }
    }
}

/// Upstream-compatible group macro, both forms:
/// `criterion_group!(name, target_a, target_b)` and
/// `criterion_group! { name = n; config = expr; targets = a, b }`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Runs each group from `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn target(c: &mut Criterion) {
        let mut runs = 0u64;
        c.bench_function("noop", |b| b.iter(|| runs += 1));
        assert!(runs > 0);
    }

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default().sample_size(5);
        target(&mut c);
    }

    #[test]
    fn iter_batched_runs_setup_per_sample() {
        let mut c = Criterion::default().sample_size(4);
        let mut setups = 0u32;
        c.bench_function("batched", |b| {
            b.iter_batched(
                || {
                    setups += 1;
                    vec![1u8; 16]
                },
                |v| v.len(),
                BatchSize::PerIteration,
            )
        });
        assert!(setups >= 4);
    }

    criterion_group!(simple_group, target);
    criterion_group! {
        name = configured_group;
        config = Criterion::default().sample_size(3);
        targets = target
    }

    #[test]
    fn macros_expand() {
        simple_group();
        configured_group();
    }
}
