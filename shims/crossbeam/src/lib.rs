//! Offline, API-compatible subset of `crossbeam`: just
//! `channel::{bounded, unbounded, Sender, Receiver}`, implemented over
//! `std::sync::mpsc`. Semantics match what the sync drivers need: bounded
//! rendezvous-ish channels with blocking `send`/`recv` that error once the
//! peer is dropped.

pub mod channel {
    use std::sync::mpsc;

    /// Error returned by [`Sender::send`] when the receiver is gone; holds
    /// the unsent message like the crossbeam original.
    #[derive(Debug)]
    pub struct SendError<T>(pub T);

    impl<T> std::fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    /// Error returned by [`Receiver::recv`] when all senders are gone.
    #[derive(Clone, Copy, PartialEq, Eq, Debug)]
    pub struct RecvError;

    impl std::fmt::Display for RecvError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "receiving on an empty and disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    /// Error returned by [`Receiver::recv_timeout`]: either the deadline
    /// passed with no message, or every sender is gone.
    #[derive(Clone, Copy, PartialEq, Eq, Debug)]
    pub enum RecvTimeoutError {
        Timeout,
        Disconnected,
    }

    impl std::fmt::Display for RecvTimeoutError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                RecvTimeoutError::Timeout => write!(f, "timed out waiting on channel"),
                RecvTimeoutError::Disconnected => {
                    write!(f, "receiving on an empty and disconnected channel")
                }
            }
        }
    }

    impl std::error::Error for RecvTimeoutError {}

    /// Sending half; clonable, blocking on a full bounded channel.
    pub struct Sender<T> {
        inner: SenderKind<T>,
    }

    enum SenderKind<T> {
        Bounded(mpsc::SyncSender<T>),
        Unbounded(mpsc::Sender<T>),
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Sender<T> {
            let inner = match &self.inner {
                SenderKind::Bounded(s) => SenderKind::Bounded(s.clone()),
                SenderKind::Unbounded(s) => SenderKind::Unbounded(s.clone()),
            };
            Sender { inner }
        }
    }

    impl<T> Sender<T> {
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            match &self.inner {
                SenderKind::Bounded(s) => s.send(msg).map_err(|e| SendError(e.0)),
                SenderKind::Unbounded(s) => s.send(msg).map_err(|e| SendError(e.0)),
            }
        }
    }

    /// Receiving half.
    pub struct Receiver<T> {
        inner: mpsc::Receiver<T>,
    }

    impl<T> Receiver<T> {
        pub fn recv(&self) -> Result<T, RecvError> {
            self.inner.recv().map_err(|_| RecvError)
        }

        pub fn try_recv(&self) -> Result<T, mpsc::TryRecvError> {
            self.inner.try_recv()
        }

        /// Block for at most `timeout` waiting for a message.
        pub fn recv_timeout(&self, timeout: std::time::Duration) -> Result<T, RecvTimeoutError> {
            self.inner.recv_timeout(timeout).map_err(|e| match e {
                mpsc::RecvTimeoutError::Timeout => RecvTimeoutError::Timeout,
                mpsc::RecvTimeoutError::Disconnected => RecvTimeoutError::Disconnected,
            })
        }

        pub fn iter(&self) -> mpsc::Iter<'_, T> {
            self.inner.iter()
        }
    }

    /// A channel holding at most `cap` in-flight messages.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (
            Sender {
                inner: SenderKind::Bounded(tx),
            },
            Receiver { inner: rx },
        )
    }

    /// An unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (
            Sender {
                inner: SenderKind::Unbounded(tx),
            },
            Receiver { inner: rx },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{bounded, unbounded, RecvError};
    use std::thread;

    #[test]
    fn bounded_round_trip_across_threads() {
        let (tx, rx) = bounded::<u32>(1);
        let handle = thread::spawn(move || {
            for i in 0..10 {
                tx.send(i).expect("receiver alive");
            }
        });
        let got: Vec<u32> = (0..10).map(|_| rx.recv().expect("sender alive")).collect();
        handle.join().unwrap();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn send_fails_after_receiver_drops() {
        let (tx, rx) = unbounded::<u8>();
        drop(rx);
        assert!(tx.send(1).is_err());
    }
}
