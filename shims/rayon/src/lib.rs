//! Offline, API-compatible subset of `rayon`.
//!
//! Implements the slice/range parallel iterators this workspace uses with
//! `std::thread::scope` and contiguous index chunks. Two deliberate
//! differences from upstream:
//!
//! * `collect::<Result<_, E>>()` is **deterministic**: when several items
//!   fail, the error of the lowest-index item is returned (upstream rayon
//!   short-circuits on whichever failure a worker sees first). The EBV
//!   validation pipeline depends on this for sequential/parallel error
//!   equivalence.
//! * Work is split into one contiguous chunk per worker rather than
//!   work-stolen; with the hash/signature-bound workloads here the items
//!   are statistically uniform, so static splitting loses little.
//!
//! Worker count defaults to `std::thread::available_parallelism()` and can
//! be overridden per-call-site with `ThreadPoolBuilder::build` +
//! `ThreadPool::install`, mirroring the upstream API.

use std::cell::Cell;
use std::num::NonZeroUsize;

thread_local! {
    /// Per-thread worker-count override installed by [`ThreadPool::install`].
    static WORKER_OVERRIDE: Cell<Option<usize>> = const { Cell::new(None) };
}

/// Number of worker threads parallel operations on this thread will use.
pub fn current_num_threads() -> usize {
    WORKER_OVERRIDE.with(|w| w.get()).unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1)
    })
}

/// Builder mirroring `rayon::ThreadPoolBuilder`; only `num_threads` is
/// honored.
#[derive(Default)]
pub struct ThreadPoolBuilder {
    num_threads: Option<usize>,
}

/// Error type kept for API compatibility; building never fails here.
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

impl ThreadPoolBuilder {
    pub fn new() -> ThreadPoolBuilder {
        ThreadPoolBuilder::default()
    }

    /// `0` means "use the default", as in upstream rayon.
    pub fn num_threads(mut self, n: usize) -> ThreadPoolBuilder {
        self.num_threads = if n == 0 { None } else { Some(n) };
        self
    }

    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            num_threads: self.num_threads,
        })
    }
}

/// A handle that scopes a worker-count override; threads are spawned per
/// operation (scoped), not pooled.
pub struct ThreadPool {
    num_threads: Option<usize>,
}

impl ThreadPool {
    /// Run `op` with this pool's worker count governing any parallel
    /// iterators it executes.
    pub fn install<R>(&self, op: impl FnOnce() -> R) -> R {
        let prev = WORKER_OVERRIDE.with(|w| w.replace(self.num_threads));
        let result = op();
        WORKER_OVERRIDE.with(|w| w.set(prev));
        result
    }

    pub fn current_num_threads(&self) -> usize {
        self.num_threads.unwrap_or_else(current_num_threads)
    }
}

/// An indexed source of items: the executable core of every parallel
/// iterator here.
pub trait IndexedSource: Sync + Sized {
    type Item: Send;

    fn len(&self) -> usize;

    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Produce the item at `i`. Called at most once per index.
    fn item_at(&self, i: usize) -> Self::Item;
}

/// Run `src` over all indices, in parallel when beneficial, returning the
/// items in index order.
fn execute<S: IndexedSource>(src: &S) -> Vec<S::Item> {
    let n = src.len();
    let workers = current_num_threads().min(n.max(1));
    if workers <= 1 || n <= 1 {
        return (0..n).map(|i| src.item_at(i)).collect();
    }
    let chunk = n.div_ceil(workers);
    let mut out: Vec<Option<S::Item>> = Vec::with_capacity(n);
    out.resize_with(n, || None);
    std::thread::scope(|scope| {
        let mut rest = out.as_mut_slice();
        let mut start = 0usize;
        while !rest.is_empty() {
            let take = chunk.min(rest.len());
            let (head, tail) = rest.split_at_mut(take);
            rest = tail;
            let base = start;
            start += take;
            scope.spawn(move || {
                for (off, slot) in head.iter_mut().enumerate() {
                    *slot = Some(src.item_at(base + off));
                }
            });
        }
    });
    out.into_iter()
        .map(|slot| slot.expect("worker filled every slot"))
        .collect()
}

// ---- concrete sources --------------------------------------------------

/// Parallel iterator over `&[T]`.
pub struct SliceIter<'a, T> {
    slice: &'a [T],
}

impl<'a, T: Sync> IndexedSource for SliceIter<'a, T> {
    type Item = &'a T;
    fn len(&self) -> usize {
        self.slice.len()
    }
    fn item_at(&self, i: usize) -> &'a T {
        &self.slice[i]
    }
}

/// Parallel iterator over non-overlapping chunks of `&[T]`
/// (`.par_chunks()`).
pub struct ChunksIter<'a, T> {
    slice: &'a [T],
    size: usize,
}

impl<'a, T: Sync> IndexedSource for ChunksIter<'a, T> {
    type Item = &'a [T];
    fn len(&self) -> usize {
        self.slice.len().div_ceil(self.size)
    }
    fn item_at(&self, i: usize) -> &'a [T] {
        let start = i * self.size;
        let end = (start + self.size).min(self.slice.len());
        &self.slice[start..end]
    }
}

/// Parallel iterator over `Range<usize>`.
pub struct RangeIter {
    start: usize,
    end: usize,
}

impl IndexedSource for RangeIter {
    type Item = usize;
    fn len(&self) -> usize {
        self.end - self.start
    }
    fn item_at(&self, i: usize) -> usize {
        self.start + i
    }
}

/// Lazy `map` adapter.
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S, F, R> IndexedSource for Map<S, F>
where
    S: IndexedSource,
    F: Fn(S::Item) -> R + Sync,
    R: Send,
{
    type Item = R;
    fn len(&self) -> usize {
        self.base.len()
    }
    fn item_at(&self, i: usize) -> R {
        (self.f)(self.base.item_at(i))
    }
}

/// Eager `filter_map` adapter: evaluates all items (in parallel), drops the
/// `None`s, and exposes the reductions the workspace uses. Unlike [`Map`]
/// it cannot be a lazy [`IndexedSource`] because filtering changes the item
/// count.
pub struct FilterMap<S, F> {
    base: S,
    f: F,
}

impl<S, F, R> FilterMap<S, F>
where
    S: IndexedSource,
    F: Fn(S::Item) -> Option<R> + Sync,
    R: Send,
{
    /// Execute eagerly; survivors keep index order.
    fn drive(self) -> Vec<R> {
        execute(&Map {
            base: self.base,
            f: self.f,
        })
        .into_iter()
        .flatten()
        .collect()
    }

    pub fn collect<C: FromParallelIterator<R>>(self) -> C {
        C::from_items(self.drive())
    }

    /// Minimum surviving item by `key`; deterministic (the lowest-index
    /// item wins ties, as with `std`'s `Iterator::min_by_key`).
    pub fn min_by_key<K, KF>(self, key: KF) -> Option<R>
    where
        K: Ord,
        KF: Fn(&R) -> K,
    {
        self.drive().into_iter().min_by_key(|item| key(item))
    }
}

/// `.par_chunks()` entry point, mirroring `rayon::slice::ParallelSlice`.
pub trait ParallelSlice<T: Sync> {
    fn par_chunks(&self, size: usize) -> ChunksIter<'_, T>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_chunks(&self, size: usize) -> ChunksIter<'_, T> {
        assert!(size > 0, "chunk size must be non-zero");
        ChunksIter { slice: self, size }
    }
}

// ---- user-facing traits ------------------------------------------------

/// The subset of `rayon::iter::ParallelIterator` the workspace uses.
pub trait ParallelIterator: IndexedSource {
    fn map<R, F>(self, f: F) -> Map<Self, F>
    where
        R: Send,
        F: Fn(Self::Item) -> R + Sync,
    {
        Map { base: self, f }
    }

    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Sync,
    {
        let _ = self.map(f).drive();
    }

    fn collect<C: FromParallelIterator<Self::Item>>(self) -> C {
        C::from_items(self.drive())
    }

    /// Map-and-filter in one pass. The adapter keeps one slot per input
    /// index internally, so downstream reductions stay index-ordered and
    /// deterministic.
    fn filter_map<R, F>(self, f: F) -> FilterMap<Self, F>
    where
        R: Send,
        F: Fn(Self::Item) -> Option<R> + Sync,
    {
        FilterMap { base: self, f }
    }

    /// Execute eagerly, preserving index order.
    fn drive(self) -> Vec<Self::Item> {
        execute(&self)
    }
}

impl<S: IndexedSource> ParallelIterator for S {}

/// Collection from an index-ordered item vector.
pub trait FromParallelIterator<T>: Sized {
    fn from_items(items: Vec<T>) -> Self;
}

impl<T> FromParallelIterator<T> for Vec<T> {
    fn from_items(items: Vec<T>) -> Vec<T> {
        items
    }
}

impl<E> FromParallelIterator<Result<(), E>> for Result<(), E> {
    /// Deterministic: the lowest-index failure wins.
    fn from_items(items: Vec<Result<(), E>>) -> Result<(), E> {
        items.into_iter().collect()
    }
}

impl<T, E> FromParallelIterator<Result<T, E>> for Result<Vec<T>, E> {
    /// Deterministic: the lowest-index failure wins.
    fn from_items(items: Vec<Result<T, E>>) -> Result<Vec<T>, E> {
        items.into_iter().collect()
    }
}

/// `.par_iter()` entry point.
pub trait IntoParallelRefIterator<'a> {
    type Iter: ParallelIterator;
    fn par_iter(&'a self) -> Self::Iter;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Iter = SliceIter<'a, T>;
    fn par_iter(&'a self) -> SliceIter<'a, T> {
        SliceIter { slice: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Iter = SliceIter<'a, T>;
    fn par_iter(&'a self) -> SliceIter<'a, T> {
        SliceIter { slice: self }
    }
}

/// `.into_par_iter()` entry point.
pub trait IntoParallelIterator {
    type Iter: ParallelIterator;
    fn into_par_iter(self) -> Self::Iter;
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Iter = RangeIter;
    fn into_par_iter(self) -> RangeIter {
        RangeIter {
            start: self.start,
            end: self.end.max(self.start),
        }
    }
}

pub mod iter {
    pub use super::{
        FromParallelIterator, IntoParallelIterator, IntoParallelRefIterator, ParallelIterator,
    };
}

pub mod slice {
    pub use super::ParallelSlice;
}

pub mod prelude {
    pub use super::{
        FromParallelIterator, IntoParallelIterator, IntoParallelRefIterator, ParallelIterator,
        ParallelSlice,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::ThreadPoolBuilder;

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<usize> = (0..1000).collect();
        let doubled: Vec<usize> = v.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
        let from_range: Vec<usize> = (0..100).into_par_iter().map(|x| x + 1).collect();
        assert_eq!(from_range, (1..101).collect::<Vec<_>>());
    }

    #[test]
    fn result_collect_returns_lowest_index_error() {
        let v: Vec<usize> = (0..100).collect();
        let r: Result<(), usize> = v
            .par_iter()
            .map(|&x| if x >= 40 { Err(x) } else { Ok(()) })
            .collect();
        assert_eq!(r, Err(40));
        let ok: Result<(), usize> = v.par_iter().map(|_| Ok(())).collect();
        assert!(ok.is_ok());
    }

    #[test]
    fn install_overrides_worker_count() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        pool.install(|| {
            assert_eq!(super::current_num_threads(), 3);
            let v: Vec<usize> = (0..10).into_par_iter().map(|x| x).collect();
            assert_eq!(v.len(), 10);
        });
        // Restored afterwards.
        assert_ne!(super::current_num_threads(), 0);
    }

    #[test]
    fn par_chunks_partitions_in_order() {
        let v: Vec<usize> = (0..10).collect();
        let chunks: Vec<Vec<usize>> = v.par_chunks(4).map(|c| c.to_vec()).collect();
        assert_eq!(chunks, vec![vec![0, 1, 2, 3], vec![4, 5, 6, 7], vec![8, 9]]);
        // Exact multiple and empty slice.
        let exact: Vec<Vec<usize>> = v[..8].par_chunks(4).map(|c| c.to_vec()).collect();
        assert_eq!(exact.len(), 2);
        let empty: Vec<Vec<usize>> = v[..0].par_chunks(4).map(|c| c.to_vec()).collect();
        assert!(empty.is_empty());
    }

    #[test]
    fn filter_map_min_by_key_is_deterministic() {
        let v: Vec<usize> = (0..100).collect();
        let min = v
            .par_iter()
            .filter_map(|&x| if x % 7 == 0 && x > 0 { Some(x) } else { None })
            .min_by_key(|&x| x);
        assert_eq!(min, Some(7));
        let none = v
            .par_iter()
            .filter_map(|&x| if x > 1000 { Some(x) } else { None })
            .min_by_key(|&x| x);
        assert_eq!(none, None);
        let collected: Vec<usize> = v.par_iter().filter_map(|&x| (x < 3).then_some(x)).collect();
        assert_eq!(collected, vec![0, 1, 2]);
    }

    #[test]
    fn empty_inputs() {
        let v: Vec<u8> = Vec::new();
        let out: Vec<u8> = v.par_iter().map(|&b| b).collect();
        assert!(out.is_empty());
        let r: Result<(), ()> = v.par_iter().map(|_| Ok(())).collect();
        assert!(r.is_ok());
    }
}
