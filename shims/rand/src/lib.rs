//! Offline, API-compatible subset of the `rand` crate (0.8 surface).
//!
//! Provides exactly what this workspace uses: `SmallRng` seeded from a
//! `u64`, uniform `gen_range` over integer ranges, `gen::<f64>()`,
//! `gen::<u64>()`, `gen::<u32>()`, `gen::<bool>()` and `gen_bool(p)`.
//! The generator is xoshiro256++ (public domain reference construction)
//! seeded through SplitMix64, which is the same family upstream `SmallRng`
//! uses on 64-bit targets.

use std::ops::{Range, RangeInclusive};

/// Core entropy source: everything derives from `next_u64`.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// Deterministic construction from a seed.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// A value uniformly sampleable from an `RngCore` — the shim's stand-in
/// for `Distribution<T> for Standard`.
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u8 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` using the top 53 bits.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A range a value can be uniformly drawn from — the shim's stand-in for
/// `SampleRange<T>`.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Unbiased integer sampling in `[0, bound)` by rejection (Lemire-style
/// threshold on the low word is overkill at our call rates).
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    assert!(bound > 0, "cannot sample from an empty range");
    let zone = u64::MAX - (u64::MAX - bound + 1) % bound;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % bound;
        }
    }
}

/// Integer types `gen_range` supports. The blanket impls below stay
/// generic over this trait so `gen_range(0..4)` leaves the literal's type
/// free to unify with its use site, exactly like upstream rand.
pub trait UniformInt: Copy {
    /// Offset into `u64` space such that ordering is preserved.
    fn to_offset(self) -> u64;
    fn from_offset(offset: u64) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty => $signed:expr),*) => {$(
        impl UniformInt for $t {
            fn to_offset(self) -> u64 {
                if $signed {
                    (self as i64 as u64) ^ (1 << 63)
                } else {
                    self as u64
                }
            }
            fn from_offset(offset: u64) -> $t {
                if $signed {
                    (offset ^ (1 << 63)) as i64 as $t
                } else {
                    offset as $t
                }
            }
        }
    )*};
}

impl_uniform_int!(u8 => false, u16 => false, u32 => false, u64 => false,
                  usize => false, i32 => true, i64 => true);

impl<T: UniformInt> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = (self.start.to_offset(), self.end.to_offset());
        assert!(lo < hi, "cannot sample from an empty range");
        T::from_offset(lo + uniform_below(rng, hi - lo))
    }
}

impl<T: UniformInt> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = (self.start().to_offset(), self.end().to_offset());
        assert!(lo <= hi, "cannot sample from an empty range");
        let span = (hi - lo).wrapping_add(1);
        if span == 0 {
            // Full u64 domain.
            return T::from_offset(rng.next_u64());
        }
        T::from_offset(lo + uniform_below(rng, span))
    }
}

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from an empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// User-facing convenience methods, blanket-implemented for every source.
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of [0, 1]");
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — small, fast, and plenty for synthetic workloads.
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 stream to fill the state, as xoshiro recommends.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// `rand::prelude` subset.
pub mod prelude {
    pub use super::rngs::SmallRng;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_given_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(10u32..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(5usize..=5);
            assert_eq!(w, 5);
            let f = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&f));
            let i = rng.gen_range(0..4);
            assert!((0..4).contains(&i));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SmallRng::seed_from_u64(9);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn bool_and_small_ints_vary() {
        let mut rng = SmallRng::seed_from_u64(3);
        let bools: Vec<bool> = (0..64).map(|_| rng.gen()).collect();
        assert!(bools.iter().any(|&b| b) && bools.iter().any(|&b| !b));
    }
}
