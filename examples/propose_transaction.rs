//! Wallet flow: propose an EBV transaction from scratch (paper §IV-C).
//!
//! Shows the proposer-side mechanics: locate the coin's coordinates,
//! obtain `ELs` + `MBr` from the proof archive, sign the shared spend
//! digest, assemble the input body, and watch the validator accept it —
//! then try to cheat and watch each attack fail.
//!
//! ```sh
//! cargo run --example propose_transaction
//! ```

use ebv::chain::transaction::{spend_sighash, TxOut};
use ebv::core::{
    ebv_coinbase, pack_ebv_block, sign_input, EbvConfig, EbvNode, EbvTransaction, InputBody,
};
use ebv::primitives::ec::PrivateKey;
use ebv::primitives::hash::Hash256;
use ebv::script::standard::{p2pkh_lock, p2pkh_unlock};
use ebv_core::ProofArchive;

fn main() {
    // Alice mines the genesis block; its coinbase pays her.
    let alice = PrivateKey::from_seed(1);
    let bob = PrivateKey::from_seed(2);
    let genesis = pack_ebv_block(
        Hash256::ZERO,
        vec![ebv_coinbase(
            0,
            p2pkh_lock(&alice.public_key().address_hash()),
        )],
        0,
        0,
    );
    let mut node = EbvNode::new(&genesis, EbvConfig::default());

    // The proposer-side archive (a wallet tracks the blocks it cares
    // about; the intermediary node serves the same data in the testbed).
    let mut archive = ProofArchive::new();
    archive.add_block(0, &genesis);

    // --- Propose: Alice pays Bob with the genesis coinbase output -------
    // 1. The coin's coordinates: height 0, absolute position 0.
    let (height, position) = (0u32, 0u32);
    // 2. Proof: ELs (the coinbase tidy tx) + MBr into block 0.
    let proof = archive.make_proof(height, position).expect("coin exists");
    println!(
        "proof: ELs with {} outputs, stake {}, {} siblings, {} bytes",
        proof.els.outputs.len(),
        proof.els.stake_position,
        proof.mbr.siblings.len(),
        proof.proof_size()
    );
    // 3. Outputs and signature over the shared spend digest.
    let value = proof.spent_output().expect("in range").value;
    let outputs = vec![TxOut::new(
        value,
        p2pkh_lock(&bob.public_key().address_hash()),
    )];
    let digest = spend_sighash(1, &[(height, position)], &outputs, 0, 0);
    let us = p2pkh_unlock(
        &sign_input(&alice, &digest),
        &alice.public_key().to_compressed(),
    );
    // 4. Assemble the transaction: the tidy part carries hash(body) only.
    let tx = EbvTransaction::from_parts(
        1,
        vec![InputBody {
            us,
            proof: Some(proof),
        }],
        outputs,
        0,
    );

    // A miner packages it (stamping the stake position).
    let block1 = pack_ebv_block(
        genesis.header.hash(),
        vec![
            ebv_coinbase(1, p2pkh_lock(&alice.public_key().address_hash())),
            tx.clone(),
        ],
        1,
        0,
    );
    let breakdown = node.process_block(&block1).expect("valid spend accepted");
    println!(
        "block 1 accepted: ev {:?}, uv {:?}, sv {:?}",
        breakdown.ev, breakdown.uv, breakdown.sv
    );
    archive.add_block(1, &block1);

    // --- Attacks (paper §V) ---------------------------------------------
    // (a) double spend: same coin again.
    let proof2 = archive
        .make_proof(0, 0)
        .expect("coordinates still resolvable");
    let outputs2 = vec![TxOut::new(
        value,
        p2pkh_lock(&alice.public_key().address_hash()),
    )];
    let digest2 = spend_sighash(1, &[(0, 0)], &outputs2, 0, 0);
    let us2 = p2pkh_unlock(
        &sign_input(&alice, &digest2),
        &alice.public_key().to_compressed(),
    );
    let double = EbvTransaction::from_parts(
        1,
        vec![InputBody {
            us: us2,
            proof: Some(proof2),
        }],
        outputs2,
        0,
    );
    let bad_block = pack_ebv_block(
        block1.header.hash(),
        vec![
            ebv_coinbase(2, p2pkh_lock(&alice.public_key().address_hash())),
            double,
        ],
        2,
        0,
    );
    let err = node
        .process_block(&bad_block)
        .expect_err("double spend must fail");
    println!("double spend rejected: {err}");

    // (b) forged value inside ELs: EV catches the tampered leaf.
    let mut forged_proof = archive.make_proof(1, 1).expect("bob's coin");
    forged_proof.els.outputs[0].value *= 10;
    let outputs3 = vec![TxOut::new(
        value * 10,
        p2pkh_lock(&bob.public_key().address_hash()),
    )];
    let digest3 = spend_sighash(1, &[(1, forged_proof.absolute_position())], &outputs3, 0, 0);
    let us3 = p2pkh_unlock(
        &sign_input(&bob, &digest3),
        &bob.public_key().to_compressed(),
    );
    let forged = EbvTransaction::from_parts(
        1,
        vec![InputBody {
            us: us3,
            proof: Some(forged_proof),
        }],
        outputs3,
        0,
    );
    let bad_block = pack_ebv_block(
        block1.header.hash(),
        vec![
            ebv_coinbase(2, p2pkh_lock(&alice.public_key().address_hash())),
            forged,
        ],
        2,
        0,
    );
    let err = node
        .process_block(&bad_block)
        .expect_err("forged ELs must fail");
    println!("forged ELs rejected:  {err}");

    println!(
        "tip height: {}, unspent outputs: {}",
        node.tip_height(),
        node.total_unspent()
    );
}
