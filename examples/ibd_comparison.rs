//! IBD race: the same logical ledger synced by a Bitcoin-style node and
//! an EBV node under an identical memory budget (paper Figs. 5 and 17 in
//! miniature).
//!
//! ```sh
//! cargo run --release --example ibd_comparison
//! ```

use ebv::core::{baseline_ibd, ebv_ibd, BaselineConfig, BaselineNode, Intermediary};
use ebv::store::{KvStore, LatencyModel, StoreConfig, UtxoSet};
use ebv::workload::{ChainGenerator, GeneratorParams};
use ebv_core::{EbvConfig, EbvNode};

fn main() {
    let n_blocks = 200;
    let budget = 48 << 10; // deliberately tight, like the paper's 500 MB vs 4.3 GB
    let latency = LatencyModel::scaled_hdd(60, 15);

    println!("generating {n_blocks}-block chain…");
    let blocks = ChainGenerator::new(GeneratorParams::mainnet_like(n_blocks, 11)).generate();
    let mut intermediary = Intermediary::new(0);
    let ebv_blocks = intermediary.convert_chain(&blocks).expect("conversion");

    // Baseline IBD.
    let store = KvStore::open(StoreConfig {
        cache_budget: budget,
        latency,
        path: None,
    })
    .expect("store");
    let mut baseline =
        BaselineNode::new(&blocks[0], UtxoSet::new(store), BaselineConfig::default())
            .expect("genesis");
    let periods = baseline_ibd(&mut baseline, &blocks[1..], 50).expect("ibd");
    let base_total: f64 = periods.iter().map(|p| p.wall.as_secs_f64()).sum();
    let bb = baseline.cumulative_breakdown();
    println!(
        "bitcoin-style IBD: {base_total:.2} s (dbo {:.2} s, sv {:.2} s, others {:.2} s; \
         cache hit ratio {:.1}%)",
        bb.dbo.as_secs_f64(),
        bb.sv.as_secs_f64(),
        bb.others.as_secs_f64(),
        baseline.utxos().stats().hit_ratio() * 100.0,
    );

    // EBV IBD.
    let mut ebv = EbvNode::new(&ebv_blocks[0], EbvConfig::default());
    let periods = ebv_ibd(&mut ebv, &ebv_blocks[1..], 50).expect("ibd");
    let ebv_total: f64 = periods.iter().map(|p| p.wall.as_secs_f64()).sum();
    let eb = ebv.cumulative_breakdown();
    println!(
        "EBV IBD:           {ebv_total:.2} s (ev {:.2} s, uv {:.2} s, sv {:.2} s, commit {:.2} s, others {:.2} s)",
        eb.ev.as_secs_f64(),
        eb.uv.as_secs_f64(),
        eb.sv.as_secs_f64(),
        eb.commit.as_secs_f64(),
        eb.others.as_secs_f64(),
    );

    println!(
        "reduction: {:.1}%  (paper: 38.5% at its scale)",
        (1.0 - ebv_total / base_total) * 100.0
    );
    assert_eq!(baseline.tip_height(), ebv.tip_height());
    assert_eq!(baseline.utxos().size().count, ebv.total_unspent());
    println!(
        "both nodes at height {} with {} unspent outputs — consistent",
        ebv.tip_height(),
        ebv.total_unspent()
    );
}
