//! Quickstart: generate a small chain, convert it to EBV format, validate
//! it on an EBV node, and inspect the status-data savings.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use ebv::core::{EbvConfig, EbvNode, Intermediary};
use ebv::store::{KvStore, StoreConfig, UtxoSet};
use ebv::workload::{ChainGenerator, GeneratorParams};
use ebv_core::{BaselineConfig, BaselineNode};

fn main() {
    // 1. Generate a deterministic 60-block chain with real ECDSA spends.
    let params = GeneratorParams::mainnet_like(60, 7);
    let blocks = ChainGenerator::new(params).generate();
    let stats = ChainGenerator::stats(&blocks);
    println!(
        "generated {} blocks: {} transactions, {} inputs, {} outputs",
        stats.blocks, stats.transactions, stats.inputs, stats.outputs
    );

    // 2. Convert to EBV format through the intermediary node (paper §VI-A):
    //    every input gains its proof (MBr, ELs, height, position).
    let mut intermediary = Intermediary::new(0);
    let ebv_blocks = intermediary.convert_chain(&blocks).expect("conversion");
    let example_proof = ebv_blocks
        .iter()
        .flat_map(|b| b.transactions.iter().skip(1))
        .flat_map(|tx| tx.bodies.iter())
        .filter_map(|b| b.proof.as_ref())
        .next()
        .expect("chain contains spends");
    println!(
        "first input proof: height {}, position {}, {} Merkle siblings, {} proof bytes",
        example_proof.height,
        example_proof.absolute_position(),
        example_proof.mbr.siblings.len(),
        example_proof.proof_size(),
    );

    // 3. Validate the whole chain on an EBV node — headers + bit-vectors
    //    only, no database.
    let mut ebv = EbvNode::new(&ebv_blocks[0], EbvConfig::default());
    for block in &ebv_blocks[1..] {
        ebv.process_block(block).expect("valid block");
    }
    let b = ebv.cumulative_breakdown();
    println!(
        "EBV validated to height {}: ev {:?}, uv {:?}, sv {:?}, commit {:?}, others {:?}",
        ebv.tip_height(),
        b.ev,
        b.uv,
        b.sv,
        b.commit,
        b.others
    );

    // 4. Same chain through the Bitcoin-style baseline for comparison.
    let utxos = UtxoSet::new(KvStore::open(StoreConfig::with_budget(8 << 20)).expect("store"));
    let mut baseline =
        BaselineNode::new(&blocks[0], utxos, BaselineConfig::default()).expect("genesis");
    for block in &blocks[1..] {
        baseline.process_block(block).expect("valid block");
    }

    // 5. The paper's headline: status-data memory.
    let ebv_mem = ebv.status_memory();
    let utxo_mem = baseline.utxos().size();
    println!(
        "status data: UTXO set {} bytes ({} entries) vs bit-vectors {} bytes ({} vectors) — {:.1}% smaller",
        utxo_mem.bytes,
        utxo_mem.count,
        ebv_mem.optimized,
        ebv_mem.vectors,
        (1.0 - ebv_mem.optimized as f64 / utxo_mem.bytes as f64) * 100.0
    );
    assert_eq!(baseline.utxos().size().count, ebv.total_unspent());
    println!(
        "both nodes agree on {} unspent outputs",
        ebv.total_unspent()
    );
}
