//! Mempool + mining loop: unconfirmed transactions are validated on
//! receipt (paper §IV-D), pooled, packaged into blocks by a miner, and
//! evicted when confirmed — a miniature of the full node lifecycle.
//!
//! ```sh
//! cargo run --example mempool_mining
//! ```

use ebv::chain::transaction::{spend_sighash, TxOut};
use ebv::core::{
    ebv_coinbase, pack_ebv_block, sign_input, EbvConfig, EbvNode, EbvTransaction, InputBody,
    Mempool, ProofArchive,
};
use ebv::primitives::ec::PrivateKey;
use ebv::primitives::hash::Hash256;
use ebv::script::standard::{p2pkh_lock, p2pkh_unlock};

fn main() {
    let miner = PrivateKey::from_seed(1);
    let users: Vec<PrivateKey> = (10..14).map(PrivateKey::from_seed).collect();

    // Bootstrap: 4 blocks whose coinbases pay the users.
    let mut archive = ProofArchive::new();
    let genesis = pack_ebv_block(
        Hash256::ZERO,
        vec![ebv_coinbase(
            0,
            p2pkh_lock(&users[0].public_key().address_hash()),
        )],
        0,
        0,
    );
    archive.add_block(0, &genesis);
    let mut node = EbvNode::new(&genesis, EbvConfig::default());
    for (i, user) in users.iter().enumerate().skip(1) {
        let block = pack_ebv_block(
            node.tip_hash(),
            vec![ebv_coinbase(
                i as u32,
                p2pkh_lock(&user.public_key().address_hash()),
            )],
            i as u32,
            0,
        );
        node.process_block(&block).expect("bootstrap block");
        archive.add_block(i as u32, &block);
    }
    println!(
        "bootstrapped {} blocks; every user owns one coinbase",
        node.tip_height() + 1
    );

    // Users broadcast payments; the node validates each on receipt.
    let mut pool = Mempool::new();
    for (i, user) in users.iter().enumerate() {
        let coords = (i as u32, 0u32); // user i's coinbase output
        let proof = archive.make_proof(coords.0, coords.1).expect("owned coin");
        let value = proof.spent_output().expect("in range").value;
        let payee = &users[(i + 1) % users.len()];
        let outputs = vec![TxOut::new(
            value,
            p2pkh_lock(&payee.public_key().address_hash()),
        )];
        let digest = spend_sighash(1, &[coords], &outputs, 0, 0);
        let us = p2pkh_unlock(
            &sign_input(user, &digest),
            &user.public_key().to_compressed(),
        );
        let tx = EbvTransaction::from_parts(
            1,
            vec![InputBody {
                us,
                proof: Some(proof),
            }],
            outputs,
            0,
        );
        let id = pool.accept(&node, tx).expect("valid payment admitted");
        println!("pooled payment {} → {} (id {id})", i, (i + 1) % users.len());
    }

    // A conflicting double spend is refused at admission.
    {
        let proof = archive.make_proof(0, 0).expect("coin");
        let outputs = vec![TxOut::new(
            1,
            p2pkh_lock(&miner.public_key().address_hash()),
        )];
        let digest = spend_sighash(1, &[(0, 0)], &outputs, 0, 0);
        let us = p2pkh_unlock(
            &sign_input(&users[0], &digest),
            &users[0].public_key().to_compressed(),
        );
        let conflict = EbvTransaction::from_parts(
            1,
            vec![InputBody {
                us,
                proof: Some(proof),
            }],
            outputs,
            0,
        );
        let err = pool.accept(&node, conflict).expect_err("conflict refused");
        println!("conflicting spend refused: {err}");
    }

    // The miner packages the pool into a block.
    let height = node.tip_height() + 1;
    let mut txs = vec![ebv_coinbase(
        height,
        p2pkh_lock(&miner.public_key().address_hash()),
    )];
    txs.extend(pool.take_for_block(100));
    let block = pack_ebv_block(node.tip_hash(), txs, height, 0);
    let breakdown = node.process_block(&block).expect("mined block validates");
    pool.remove_confirmed(&block);
    println!(
        "mined block {height} with {} payments: sv {:?}, ev {:?}, uv {:?}; pool now {}",
        block.transactions.len() - 1,
        breakdown.sv,
        breakdown.ev,
        breakdown.uv,
        pool.len()
    );
    println!("unspent outputs: {}", node.total_unspent());
}
