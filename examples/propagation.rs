//! Block propagation over a simulated 20-node, 5-region gossip network
//! (paper §VI-E / Fig. 18 in miniature).
//!
//! ```sh
//! cargo run --example propagation
//! ```

use ebv::netsim::{GossipSim, SimParams, SimResult, ValidationModel};

fn main() {
    // Validation means chosen to mirror the measured gap between the two
    // systems (run `cargo run -p ebv-bench --bin fig18` for the version
    // that measures them from real validation runs).
    let bitcoin = GossipSim::new(SimParams {
        validation: ValidationModel::baseline_from_mean_us(800_000), // 800 ms
        block_bytes: 1_200_000,                                      // ~mainnet block
        ..Default::default()
    });
    let ebv = GossipSim::new(SimParams {
        validation: ValidationModel::ebv_from_mean_us(60_000), // 60 ms
        block_bytes: 3_000_000,                                // proof-carrying blocks are larger
        ..Default::default()
    });

    let runs = 5;
    let b = bitcoin.run_many(42, runs);
    let e = ebv.run_many(42, runs);

    println!("receive time of the i-th node (ms), averaged over {runs} runs:");
    println!("{:>6} {:>12} {:>12}", "node", "bitcoin", "ebv");
    let n = b[0].receive_us.len();
    for i in 0..n {
        let bi: f64 = b.iter().map(|r| r.sorted_ms()[i]).sum::<f64>() / runs as f64;
        let ei: f64 = e.iter().map(|r| r.sorted_ms()[i]).sum::<f64>() / runs as f64;
        println!("{:>6} {:>12.0} {:>12.0}", i + 1, bi, ei);
    }

    let b_last: f64 = b.iter().map(SimResult::last_receive_ms).sum::<f64>() / runs as f64;
    let e_last: f64 = e.iter().map(SimResult::last_receive_ms).sum::<f64>() / runs as f64;
    println!(
        "\nfull propagation: bitcoin {b_last:.0} ms vs ebv {e_last:.0} ms → {:.1}% faster \
         (paper: 66.4%)",
        (1.0 - e_last / b_last) * 100.0
    );
}
