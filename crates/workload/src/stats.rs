//! Chain-statistics summaries — how a generated chain compares with the
//! per-block aggregates the paper's figures assume.

use ebv_chain::Block;
use std::collections::HashMap;

/// Per-block series of the quantities the experiments plot.
#[derive(Clone, Debug, Default)]
pub struct ChainProfile {
    /// Non-coinbase transactions per block.
    pub txs: Vec<u32>,
    /// Non-coinbase inputs per block (Figs. 4b/15's x-axis).
    pub inputs: Vec<u32>,
    /// Outputs per block (bit-vector widths).
    pub outputs: Vec<u32>,
}

impl ChainProfile {
    /// Measure a chain (including its genesis block).
    pub fn measure(blocks: &[Block]) -> ChainProfile {
        let mut p = ChainProfile::default();
        for b in blocks {
            p.txs.push(b.transactions.len() as u32 - 1);
            p.inputs.push(b.input_count() as u32);
            p.outputs.push(b.output_count() as u32);
        }
        p
    }

    /// Mean of a series.
    fn mean(series: &[u32]) -> f64 {
        if series.is_empty() {
            return 0.0;
        }
        series.iter().map(|&v| v as f64).sum::<f64>() / series.len() as f64
    }

    pub fn mean_inputs(&self) -> f64 {
        Self::mean(&self.inputs)
    }

    pub fn mean_outputs(&self) -> f64 {
        Self::mean(&self.outputs)
    }

    pub fn max_outputs(&self) -> u32 {
        self.outputs.iter().copied().max().unwrap_or(0)
    }

    /// Ratio of mean activity in the last decile to the first — the
    /// "ramp" the generator was asked for.
    pub fn activity_ramp(&self) -> f64 {
        let n = self.txs.len();
        if n < 20 {
            return 1.0;
        }
        let head = Self::mean(&self.txs[..n / 10]);
        let tail = Self::mean(&self.txs[n - n / 10..]);
        if head == 0.0 {
            f64::INFINITY
        } else {
            tail / head
        }
    }
}

/// Realized spend-age distribution: how many blocks outputs lived before
/// being consumed (the quantity the cache-miss economics depend on).
pub fn spend_age_histogram(blocks: &[Block]) -> HashMap<u32, u64> {
    // Map txid → creation height.
    let mut created_at = HashMap::new();
    for (h, block) in blocks.iter().enumerate() {
        for tx in &block.transactions {
            created_at.insert(tx.txid(), h as u32);
        }
    }
    let mut hist: HashMap<u32, u64> = HashMap::new();
    for (h, block) in blocks.iter().enumerate() {
        for tx in block.transactions.iter().skip(1) {
            for input in &tx.inputs {
                if let Some(&birth) = created_at.get(&input.prevout.txid) {
                    *hist.entry(h as u32 - birth).or_default() += 1;
                }
            }
        }
    }
    hist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ChainGenerator, GeneratorParams};

    #[test]
    fn profile_matches_direct_counts() {
        let blocks = ChainGenerator::new(GeneratorParams::tiny(10, 4)).generate();
        let p = ChainProfile::measure(&blocks);
        assert_eq!(p.txs.len(), 11);
        let total_inputs: u32 = p.inputs.iter().sum();
        assert_eq!(total_inputs as u64, ChainGenerator::stats(&blocks).inputs);
        assert!(p.mean_outputs() >= 1.0, "every block has a coinbase output");
    }

    #[test]
    fn mainnet_like_ramps_up() {
        let blocks = ChainGenerator::new(GeneratorParams::mainnet_like(120, 9)).generate();
        let p = ChainProfile::measure(&blocks);
        assert!(
            p.activity_ramp() > 1.5,
            "activity should ramp, got {}",
            p.activity_ramp()
        );
        assert!(p.max_outputs() <= 1 << 16, "paper's 65536-output cap");
    }

    #[test]
    fn spend_ages_are_positive_and_bounded() {
        let blocks = ChainGenerator::new(GeneratorParams::tiny(25, 6)).generate();
        let hist = spend_age_histogram(&blocks);
        assert!(!hist.is_empty(), "chain contains spends");
        assert!(!hist.contains_key(&0), "no same-block spends by design");
        let total: u64 = hist.values().sum();
        assert_eq!(total, ChainGenerator::stats(&blocks).inputs);
    }

    #[test]
    fn old_spend_knob_shifts_ages() {
        let young = ChainGenerator::new(GeneratorParams::tiny(60, 3)).generate();
        let old_params = GeneratorParams {
            p_old_spend: 0.9,
            old_age_range: (20, 40),
            ..GeneratorParams::tiny(60, 3)
        };
        let old = ChainGenerator::new(old_params).generate();
        let mean_age = |hist: &HashMap<u32, u64>| {
            let (mut n, mut s) = (0u64, 0u64);
            for (&age, &count) in hist {
                n += count;
                s += age as u64 * count;
            }
            s as f64 / n.max(1) as f64
        };
        let young_mean = mean_age(&spend_age_histogram(&young));
        let old_mean = mean_age(&spend_age_histogram(&old));
        assert!(
            old_mean > young_mean + 3.0,
            "old-spend knob must raise mean age: {young_mean} vs {old_mean}"
        );
    }
}
