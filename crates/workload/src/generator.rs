//! The deterministic chain generator.
//!
//! Produces a baseline-format chain whose per-block statistics follow the
//! configured profile. Spend timing is scheduled at output creation: each
//! output either joins the dormant set (never spent — UTXO growth) or is
//! assigned a death height drawn from a geometric distribution; when its
//! block arrives, it is consumed by a spending transaction. A
//! consolidation epoch, if configured, additionally sweeps dormant coins.
//!
//! All signatures are real ECDSA over the shared spend digest, so the
//! generated chain validates on both the baseline node and (after
//! conversion by the intermediary) the EBV node.

use crate::keys::KeyPool;
use crate::params::GeneratorParams;
use ebv_chain::transaction::{spend_sighash, Transaction, TxIn, TxOut};
use ebv_chain::{build_block, coinbase_tx, Block, OutPoint, BLOCK_SUBSIDY};
use ebv_primitives::hash::Hash256;
use ebv_script::standard::p2pkh_unlock;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;

/// A coin the generator can spend later.
#[derive(Clone, Debug)]
struct Coin {
    outpoint: OutPoint,
    /// Coordinates the shared sighash commits to.
    height: u32,
    position: u32,
    value: u64,
    key_index: usize,
}

/// Chain generator state.
pub struct ChainGenerator {
    params: GeneratorParams,
    keys: KeyPool,
    rng: SmallRng,
    /// Coins scheduled to be spent, keyed by death height.
    scheduled: BTreeMap<u32, Vec<Coin>>,
    /// Never-spent coins (consumable only by consolidation).
    dormant: Vec<Coin>,
}

/// Summary statistics of a generated chain (used by tests and figures).
#[derive(Clone, Copy, Debug, Default)]
pub struct ChainStats {
    pub blocks: u32,
    pub transactions: u64,
    pub inputs: u64,
    pub outputs: u64,
}

impl ChainGenerator {
    pub fn new(params: GeneratorParams) -> ChainGenerator {
        let keys = KeyPool::new(params.seed, params.key_pool);
        let rng = SmallRng::seed_from_u64(params.seed ^ 0x9e37_79b9_7f4a_7c15);
        ChainGenerator {
            params,
            keys,
            rng,
            scheduled: BTreeMap::new(),
            dormant: Vec::new(),
        }
    }

    /// Generate the full chain, genesis included (height = index).
    pub fn generate(&mut self) -> Vec<Block> {
        let n = self.params.n_blocks;
        let mut blocks = Vec::with_capacity(n as usize + 1);

        // Genesis: coinbase pays key 0; its output is registered like any
        // other so early blocks have something to spend.
        let genesis = build_block(
            Hash256::ZERO,
            coinbase_tx(0, self.keys.entry(0).lock.clone(), Vec::new()),
            Vec::new(),
            0,
            self.params.bits,
        );
        self.register_block_outputs(&genesis, 0);
        blocks.push(genesis);

        for height in 1..=n {
            let prev_hash = blocks.last().expect("genesis present").header.hash();
            let block = self.generate_block(height, prev_hash);
            self.register_block_outputs(&block, height);
            blocks.push(block);
        }
        blocks
    }

    /// Statistics over an already generated chain.
    pub fn stats(blocks: &[Block]) -> ChainStats {
        ChainStats {
            blocks: blocks.len() as u32,
            transactions: blocks.iter().map(|b| b.transactions.len() as u64).sum(),
            inputs: blocks.iter().map(|b| b.input_count() as u64).sum(),
            outputs: blocks.iter().map(|b| b.output_count() as u64).sum(),
        }
    }

    fn generate_block(&mut self, height: u32, prev_hash: Hash256) -> Block {
        // Coins whose death height has arrived.
        let mut due: Vec<Coin> = Vec::new();
        let due_heights: Vec<u32> = self.scheduled.range(..=height).map(|(&h, _)| h).collect();
        for h in due_heights {
            due.extend(self.scheduled.remove(&h).expect("key from range"));
        }

        let target_txs = self
            .params
            .txs_per_block
            .at(height, self.params.n_blocks + 1);
        let target_txs = target_txs.round().max(0.0) as usize;

        let mut txs = Vec::new();
        // Regular spends: group due coins into transactions.
        let mut cursor = 0usize;
        while cursor < due.len() && txs.len() < target_txs {
            let take = self.rng.gen_range(1..=self.params.max_inputs_per_tx);
            let take = take.min(due.len() - cursor);
            let coins = &due[cursor..cursor + take];
            cursor += take;
            txs.push(self.build_spend(coins, height, false));
        }
        // Any leftover due coins get rescheduled a bit later rather than
        // dropped, so spend pressure is conserved.
        for coin in due.drain(cursor..) {
            let delay = 1 + self.rng.gen_range(0..4);
            self.scheduled.entry(height + delay).or_default().push(coin);
        }

        // Consolidation epoch: sweep dormant coins.
        if let Some(c) = self.params.consolidation {
            if (c.start..=c.end).contains(&height) {
                for _ in 0..c.txs_per_block {
                    if self.dormant.len() < 2 {
                        break;
                    }
                    let take = c.inputs_per_tx.min(self.dormant.len());
                    // Oldest first: consolidation targets long-dormant coins.
                    let coins: Vec<Coin> = self.dormant.drain(..take).collect();
                    txs.push(self.build_spend(&coins, height, true));
                }
            }
        }

        let miner_key = self.rng.gen_range(0..self.keys.len());
        let coinbase = coinbase_tx(height, self.keys.entry(miner_key).lock.clone(), Vec::new());
        build_block(prev_hash, coinbase, txs, height, self.params.bits)
    }

    /// Build one signed spending transaction consuming `coins`.
    fn build_spend(&mut self, coins: &[Coin], _height: u32, consolidation: bool) -> Transaction {
        let total: u64 = coins.iter().map(|c| c.value).sum();
        let n_outputs = if consolidation {
            1
        } else {
            self.rng.gen_range(1..=self.params.max_outputs_per_tx)
        };
        // Split the value evenly; remainder goes to the first output. No
        // explicit fees — fee dynamics are irrelevant to every figure.
        let share = total / n_outputs as u64;
        let outputs: Vec<TxOut> = (0..n_outputs)
            .map(|i| {
                let value = if i == 0 {
                    total - share * (n_outputs as u64 - 1)
                } else {
                    share
                };
                let key = self.rng.gen_range(0..self.keys.len());
                TxOut::new(value, self.keys.entry(key).lock.clone())
            })
            .collect();

        let coords: Vec<(u32, u32)> = coins.iter().map(|c| (c.height, c.position)).collect();
        let inputs: Vec<TxIn> = coins
            .iter()
            .enumerate()
            .map(|(idx, coin)| {
                let digest = spend_sighash(1, &coords, &outputs, 0, idx as u32);
                let entry = self.keys.entry(coin.key_index);
                let sig = {
                    let mut s = entry.sk.sign(digest.as_bytes()).to_compact().to_vec();
                    s.push(ebv_chain::SIGHASH_ALL);
                    s
                };
                TxIn::new(coin.outpoint, p2pkh_unlock(&sig, &entry.pk_bytes))
            })
            .collect();

        Transaction {
            version: 1,
            inputs,
            outputs,
            lock_time: 0,
        }
    }

    /// Register every output of a freshly built block: schedule its death
    /// or park it in the dormant set.
    fn register_block_outputs(&mut self, block: &Block, height: u32) {
        let mut position = 0u32;
        for tx in &block.transactions {
            let txid = tx.txid();
            for (vout, output) in tx.outputs.iter().enumerate() {
                // Recover the paying key by matching the locking script.
                // The generator only ever emits pool locks, so scan is
                // bounded by the (small) pool; cache via map would be
                // overkill at pool sizes used here.
                let key_index = self.key_index_of(&output.locking_script);
                let coin = Coin {
                    outpoint: OutPoint::new(txid, vout as u32),
                    height,
                    position,
                    value: output.value,
                    key_index,
                };
                position += 1;
                if self.rng.gen_bool(self.params.p_never_spent) {
                    self.dormant.push(coin);
                } else if self.rng.gen_bool(self.params.p_old_spend) {
                    // Old money: a uniformly distant future spend. These
                    // defeat an LRU cache the way mainnet's long-dormant
                    // coins do.
                    let (lo, hi) = self.params.old_age_range;
                    let age = self.rng.gen_range(lo.max(1)..=hi.max(lo.max(1)));
                    self.scheduled.entry(height + age).or_default().push(coin);
                } else {
                    // Geometric age with the configured mean, minimum 1
                    // (same-block spends are excluded by design — see
                    // DESIGN.md).
                    let p = 1.0 / self.params.mean_spend_age.max(1.0);
                    let mut age = 1u32;
                    while !self.rng.gen_bool(p) && age < 10_000 {
                        age += 1;
                    }
                    self.scheduled.entry(height + age).or_default().push(coin);
                }
            }
        }
    }

    fn key_index_of(&self, lock: &ebv_script::Script) -> usize {
        for i in 0..self.keys.len() {
            if &self.keys.entry(i).lock == lock {
                return i;
            }
        }
        unreachable!("generator only pays pool keys");
    }

    /// The total block-subsidy value injected so far (for tests).
    pub fn subsidy_per_block() -> u64 {
        BLOCK_SUBSIDY
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::GeneratorParams;

    #[test]
    fn deterministic_generation() {
        let a = ChainGenerator::new(GeneratorParams::tiny(8, 42)).generate();
        let b = ChainGenerator::new(GeneratorParams::tiny(8, 42)).generate();
        assert_eq!(a.len(), 9);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.header.hash(), y.header.hash());
        }
        // Different seed → different chain.
        let c = ChainGenerator::new(GeneratorParams::tiny(8, 43)).generate();
        assert_ne!(a[8].header.hash(), c[8].header.hash());
    }

    #[test]
    fn chain_links_and_structure() {
        let blocks = ChainGenerator::new(GeneratorParams::tiny(10, 7)).generate();
        for (h, block) in blocks.iter().enumerate() {
            block.check_structure().expect("structurally valid");
            if h > 0 {
                assert_eq!(block.header.prev_block_hash, blocks[h - 1].header.hash());
            }
        }
    }

    #[test]
    fn spends_eventually_happen() {
        let blocks = ChainGenerator::new(GeneratorParams::tiny(20, 3)).generate();
        let stats = ChainGenerator::stats(&blocks);
        assert!(stats.inputs > 0, "chain must contain real spends");
        assert!(stats.outputs > stats.inputs, "UTXO set must grow");
    }

    #[test]
    fn consolidation_adds_many_input_txs() {
        let params = GeneratorParams::tiny(30, 9).with_consolidation(20, 25);
        let with = ChainGenerator::new(params).generate();
        let max_inputs_per_tx_seen = with
            .iter()
            .flat_map(|b| b.transactions.iter().skip(1))
            .map(|tx| tx.inputs.len())
            .max()
            .unwrap_or(0);
        // tiny() caps regular txs at 2 inputs; consolidation goes beyond.
        assert!(
            max_inputs_per_tx_seen > 2,
            "expected a consolidation tx, max seen {max_inputs_per_tx_seen}"
        );
    }

    #[test]
    fn no_same_block_spends() {
        let blocks = ChainGenerator::new(GeneratorParams::tiny(15, 5)).generate();
        for block in &blocks {
            let own_txids: std::collections::HashSet<_> =
                block.transactions.iter().map(|t| t.txid()).collect();
            for tx in block.transactions.iter().skip(1) {
                for input in &tx.inputs {
                    assert!(
                        !own_txids.contains(&input.prevout.txid),
                        "same-block spend generated"
                    );
                }
            }
        }
    }
}
