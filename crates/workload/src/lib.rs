//! Deterministic synthetic mainnet-like chain generation.
//!
//! The offline environment has no Bitcoin mainnet data, so the experiments
//! run on generated chains whose per-block statistics follow the paper's
//! setting: activity ramps up over the chain, a tunable share of outputs
//! is never spent (UTXO-set growth), spend ages are geometric with a
//! short mean (old blocks' bit-vectors go sparse), and an optional
//! consolidation epoch reproduces the paper's Fig. 5 dip. Every signature
//! is real ECDSA — Script Validation cost is genuine.

mod generator;
mod keys;
mod params;
pub mod stats;

pub use generator::{ChainGenerator, ChainStats};
pub use keys::{KeyEntry, KeyPool};
pub use params::{Consolidation, GeneratorParams, Ramp};
pub use stats::{spend_age_histogram, ChainProfile};
