//! Generator parameters and presets.
//!
//! The synthetic chain mirrors the *statistics* the paper's measurements
//! depend on: transactions/block and inputs/block ramp up over the chain's
//! life (Fig. 5's rising DBO trend), a fraction of outputs is never spent
//! (Fig. 1's UTXO growth), spend ages are short-lived-biased (old blocks'
//! vectors go sparse, Fig. 14), and an optional consolidation epoch sweeps
//! up dust (the dip the paper points out in Fig. 5).

/// A value that ramps linearly across the chain.
#[derive(Clone, Copy, Debug)]
pub struct Ramp {
    pub start: f64,
    pub end: f64,
}

impl Ramp {
    pub fn flat(v: f64) -> Ramp {
        Ramp { start: v, end: v }
    }

    /// Value at `height` of `n_blocks` total.
    pub fn at(&self, height: u32, n_blocks: u32) -> f64 {
        if n_blocks <= 1 {
            return self.start;
        }
        let t = height as f64 / (n_blocks - 1) as f64;
        self.start + (self.end - self.start) * t
    }
}

/// A consolidation epoch: blocks in `[start, end]` sweep up long-dormant
/// outputs with many-input transactions.
#[derive(Clone, Copy, Debug)]
pub struct Consolidation {
    pub start: u32,
    pub end: u32,
    /// Dormant coins consumed per consolidation transaction.
    pub inputs_per_tx: usize,
    /// Consolidation transactions per block during the epoch.
    pub txs_per_block: usize,
}

/// Full parameter set for [`crate::ChainGenerator`].
#[derive(Clone, Debug)]
pub struct GeneratorParams {
    /// RNG seed; equal seeds give byte-identical chains.
    pub seed: u64,
    /// Blocks to generate after the genesis block.
    pub n_blocks: u32,
    /// Size of the deterministic key pool.
    pub key_pool: usize,
    /// Spending transactions per block (ramped).
    pub txs_per_block: Ramp,
    /// Inputs per spending transaction: uniform in `1..=max_inputs_per_tx`.
    pub max_inputs_per_tx: usize,
    /// Outputs per spending transaction: uniform in
    /// `1..=max_outputs_per_tx`.
    pub max_outputs_per_tx: usize,
    /// Probability a created output is never spent (drives UTXO growth).
    pub p_never_spent: f64,
    /// Mean spend age in blocks for outputs that do get spent (geometric).
    pub mean_spend_age: f64,
    /// Probability a spent output is "old money": its age is drawn
    /// uniformly from `old_age_range` instead of the geometric. Old spends
    /// are what defeats an LRU UTXO cache (the paper's DBO misses).
    pub p_old_spend: f64,
    /// Age range (blocks) for old-money spends.
    pub old_age_range: (u32, u32),
    /// Optional consolidation epoch.
    pub consolidation: Option<Consolidation>,
    /// PoW difficulty (leading zero bits) for generated blocks.
    pub bits: u32,
}

impl GeneratorParams {
    /// A tiny chain for unit tests (fast even with real signatures).
    pub fn tiny(n_blocks: u32, seed: u64) -> GeneratorParams {
        GeneratorParams {
            seed,
            n_blocks,
            key_pool: 8,
            txs_per_block: Ramp::flat(2.0),
            max_inputs_per_tx: 2,
            max_outputs_per_tx: 2,
            p_never_spent: 0.3,
            mean_spend_age: 3.0,
            p_old_spend: 0.0,
            old_age_range: (5, 10),
            consolidation: None,
            bits: 0,
        }
    }

    /// The scaled mainnet-like profile used by the figure binaries:
    /// activity ramps ~3× across the chain; most spends are young
    /// (geometric, mean 12 blocks) but 30 % are "old money" spent tens to
    /// hundreds of blocks later — the accesses that defeat an LRU UTXO
    /// cache and empty out old bit-vectors; ~4 % of outputs survive
    /// forever, so the UTXO set keeps growing.
    pub fn mainnet_like(n_blocks: u32, seed: u64) -> GeneratorParams {
        GeneratorParams {
            seed,
            n_blocks,
            key_pool: 128,
            txs_per_block: Ramp {
                start: 10.0,
                end: 30.0,
            },
            max_inputs_per_tx: 4,
            // Uniform 1..=6 outputs (mean 3.5) gives blocks of ~36–106
            // outputs — wide enough that old, mostly-spent bit-vectors
            // actually benefit from the 16-bit sparse encoding.
            max_outputs_per_tx: 6,
            p_never_spent: 0.03,
            mean_spend_age: 12.0,
            p_old_spend: 0.3,
            old_age_range: (30, 500),
            consolidation: None,
            bits: 0,
        }
    }

    /// Mainnet-like with a consolidation epoch over the given block range.
    /// Kept gentle (one 12-input sweep per block) so the epoch's own extra
    /// inputs don't swamp the per-period totals at laptop scale.
    pub fn with_consolidation(mut self, start: u32, end: u32) -> GeneratorParams {
        self.consolidation = Some(Consolidation {
            start,
            end,
            inputs_per_tx: 12,
            txs_per_block: 1,
        });
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ramp_interpolates() {
        let r = Ramp {
            start: 2.0,
            end: 12.0,
        };
        assert_eq!(r.at(0, 11), 2.0);
        assert_eq!(r.at(10, 11), 12.0);
        assert_eq!(r.at(5, 11), 7.0);
        assert_eq!(Ramp::flat(3.0).at(7, 100), 3.0);
        // Degenerate single-block chain.
        assert_eq!(r.at(0, 1), 2.0);
    }

    #[test]
    fn presets_are_sane() {
        let p = GeneratorParams::mainnet_like(100, 1).with_consolidation(50, 60);
        assert!(p.consolidation.is_some());
        assert!(p.p_never_spent > 0.0 && p.p_never_spent < 1.0);
    }
}
