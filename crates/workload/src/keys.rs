//! The deterministic key pool.
//!
//! Private keys are derived from `(chain seed, key index)` so a chain is
//! reproducible from its seed alone. Public keys, address hashes and
//! locking scripts are precomputed — deriving a public key costs a scalar
//! multiplication, and the generator touches keys constantly.

use ebv_primitives::ec::{PrivateKey, PublicKey};
use ebv_primitives::hash::sha256;
use ebv_script::standard::p2pkh_lock;
use ebv_script::Script;

/// One pool entry.
pub struct KeyEntry {
    pub sk: PrivateKey,
    pub pk: PublicKey,
    /// Compressed public key bytes (pushed by unlocking scripts).
    pub pk_bytes: [u8; 33],
    /// The P2PKH locking script paying this key.
    pub lock: Script,
}

/// A fixed pool of deterministic keys.
pub struct KeyPool {
    entries: Vec<KeyEntry>,
}

impl KeyPool {
    /// Derive `size` keys from `seed`.
    pub fn new(seed: u64, size: usize) -> KeyPool {
        let entries = (0..size)
            .map(|i| {
                // Mix seed and index through SHA-256 for independence.
                let mut material = [0u8; 16];
                material[..8].copy_from_slice(&seed.to_le_bytes());
                material[8..].copy_from_slice(&(i as u64).to_le_bytes());
                let mut digest = sha256(&material);
                let sk = loop {
                    if let Some(k) = PrivateKey::from_be_bytes(&digest) {
                        break k;
                    }
                    digest = sha256(&digest);
                };
                let pk = sk.public_key();
                KeyEntry {
                    sk,
                    pk,
                    pk_bytes: pk.to_compressed(),
                    lock: p2pkh_lock(&pk.address_hash()),
                }
            })
            .collect();
        KeyPool { entries }
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The entry at `index` (modulo the pool size).
    pub fn entry(&self, index: usize) -> &KeyEntry {
        &self.entries[index % self.entries.len()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_distinct() {
        let a = KeyPool::new(7, 4);
        let b = KeyPool::new(7, 4);
        for i in 0..4 {
            assert_eq!(a.entry(i).pk_bytes, b.entry(i).pk_bytes);
        }
        assert_ne!(a.entry(0).pk_bytes, a.entry(1).pk_bytes);
        // Different seed → different keys.
        let c = KeyPool::new(8, 1);
        assert_ne!(a.entry(0).pk_bytes, c.entry(0).pk_bytes);
    }

    #[test]
    fn lock_script_matches_key() {
        let pool = KeyPool::new(1, 2);
        let e = pool.entry(1);
        assert_eq!(e.lock, p2pkh_lock(&e.pk.address_hash()));
        // Index wraps.
        assert_eq!(pool.entry(3).pk_bytes, pool.entry(1).pk_bytes);
    }
}
