//! The intermediary node (paper §VI-A).
//!
//! Sits between a Bitcoin-format source chain and an EBV destination node:
//! it receives baseline blocks in order, reconstructs each input with the
//! EBV proof fields (`MBr`, `ELs`, `height`, `position`) by consulting the
//! chain it has already converted, and re-packages the result as an EBV
//! block. It maintains exactly the state the paper describes: a mapping
//! from inputs/outputs to block heights (here: outpoint → coordinates) and
//! enough per-block material to extract Merkle branches.
//!
//! No private keys are involved: the shared spend digest (see
//! `ebv_chain::transaction::spend_sighash`) commits to output coordinates,
//! so the original unlocking scripts remain valid in the converted chain.

use crate::pack::pack_ebv_block;
use crate::proofs::ProofArchive;
use crate::tidy::{EbvBlock, EbvTransaction, InputBody};
use ebv_chain::{Block, OutPoint};
use ebv_primitives::hash::Hash256;
use std::collections::HashMap;

/// Conversion failures — all indicate a malformed source chain.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ConvertError {
    /// Input references an outpoint the intermediary has never seen (or
    /// already saw spent).
    UnknownOutpoint {
        tx: usize,
        input: usize,
        outpoint: OutPoint,
    },
    /// The source block is empty or its first transaction is not coinbase.
    BadCoinbase,
}

impl std::fmt::Display for ConvertError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{self:?}")
    }
}

impl std::error::Error for ConvertError {}

/// The intermediary converter.
pub struct Intermediary {
    /// outpoint → (height, absolute position) of the created output.
    /// Entries are removed when spent (the source chain has no double
    /// spends, so this keeps the map at UTXO-set size).
    outpoint_index: HashMap<OutPoint, (u32, u32)>,
    /// Proof material for every converted block.
    archive: ProofArchive,
    /// Tip hash of the converted (EBV) chain.
    ebv_tip: Hash256,
    /// Next height to convert.
    next_height: u32,
    /// Difficulty bits used when re-mining converted blocks.
    bits: u32,
}

impl Intermediary {
    /// Create a converter; converted blocks are re-mined at `bits`
    /// difficulty (0 in experiments — mining cost is not a measured
    /// quantity).
    pub fn new(bits: u32) -> Intermediary {
        Intermediary {
            outpoint_index: HashMap::new(),
            archive: ProofArchive::new(),
            ebv_tip: Hash256::ZERO,
            next_height: 0,
            bits,
        }
    }

    /// Convert the next baseline block (must be presented in height
    /// order), producing the EBV block for the destination node.
    pub fn convert_block(&mut self, block: &Block) -> Result<EbvBlock, ConvertError> {
        if block.transactions.is_empty() || !block.transactions[0].is_coinbase() {
            return Err(ConvertError::BadCoinbase);
        }
        let height = self.next_height;

        let mut ebv_txs = Vec::with_capacity(block.transactions.len());
        for (i, tx) in block.transactions.iter().enumerate() {
            let mut bodies = Vec::with_capacity(tx.inputs.len());
            for (j, input) in tx.inputs.iter().enumerate() {
                let proof = if i == 0 {
                    // Coinbase input: no proof.
                    None
                } else {
                    let &(h, pos) = self.outpoint_index.get(&input.prevout).ok_or(
                        ConvertError::UnknownOutpoint {
                            tx: i,
                            input: j,
                            outpoint: input.prevout,
                        },
                    )?;
                    Some(
                        self.archive
                            .make_proof(h, pos)
                            .expect("indexed coordinates exist"),
                    )
                };
                bodies.push(InputBody {
                    us: input.unlocking_script.clone(),
                    proof,
                });
            }
            ebv_txs.push(EbvTransaction::from_parts(
                tx.version,
                bodies,
                tx.outputs.clone(),
                tx.lock_time,
            ));
        }

        let ebv_block = pack_ebv_block(self.ebv_tip, ebv_txs, block.header.time, self.bits);

        // Index this block's outputs and retire the spent ones.
        for tx in block.transactions.iter().skip(1) {
            for input in &tx.inputs {
                self.outpoint_index.remove(&input.prevout);
            }
        }
        let mut position = 0u32;
        for tx in &block.transactions {
            let txid = tx.txid();
            for vout in 0..tx.outputs.len() as u32 {
                self.outpoint_index
                    .insert(OutPoint::new(txid, vout), (height, position));
                position += 1;
            }
        }
        self.archive.add_block(height, &ebv_block);
        self.ebv_tip = ebv_block.header.hash();
        self.next_height += 1;
        Ok(ebv_block)
    }

    /// Convert a whole chain (blocks in height order).
    pub fn convert_chain(&mut self, blocks: &[Block]) -> Result<Vec<EbvBlock>, ConvertError> {
        blocks.iter().map(|b| self.convert_block(b)).collect()
    }

    /// Look up the EBV coordinates of a baseline outpoint (unspent only).
    pub fn coords_of(&self, outpoint: &OutPoint) -> Option<(u32, u32)> {
        self.outpoint_index.get(outpoint).copied()
    }

    /// The proof archive (doubles as the transaction-proposer's data source
    /// in the examples).
    pub fn archive(&self) -> &ProofArchive {
        &self.archive
    }

    /// Number of blocks converted so far.
    pub fn converted(&self) -> u32 {
        self.next_height
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ebv_node::{EbvConfig, EbvNode};
    use ebv_chain::transaction::{spend_sighash, Transaction, TxIn, TxOut};
    use ebv_chain::{build_block, coinbase_tx, BLOCK_SUBSIDY};
    use ebv_primitives::ec::PrivateKey;
    use ebv_script::standard::{p2pkh_lock, p2pkh_unlock};
    use ebv_script::Script;

    /// A 3-block baseline chain: genesis pays A, block 1 A→B, block 2 B→C.
    fn baseline_chain() -> Vec<Block> {
        let a = PrivateKey::from_seed(1);
        let b = PrivateKey::from_seed(2);
        let c = PrivateKey::from_seed(3);

        let genesis = build_block(
            Hash256::ZERO,
            coinbase_tx(0, p2pkh_lock(&a.public_key().address_hash()), Vec::new()),
            Vec::new(),
            0,
            0,
        );

        // Block 1: A spends genesis coinbase (coords 0,0) to B.
        let outputs1 = vec![TxOut::new(
            BLOCK_SUBSIDY,
            p2pkh_lock(&b.public_key().address_hash()),
        )];
        let d1 = spend_sighash(1, &[(0, 0)], &outputs1, 0, 0);
        let tx1 = Transaction {
            version: 1,
            inputs: vec![TxIn::new(
                OutPoint::new(genesis.transactions[0].txid(), 0),
                p2pkh_unlock(
                    &crate::sighash::sign_input(&a, &d1),
                    &a.public_key().to_compressed(),
                ),
            )],
            outputs: outputs1,
            lock_time: 0,
        };
        let block1 = build_block(
            genesis.header.hash(),
            coinbase_tx(1, Script::new(), Vec::new()),
            vec![tx1.clone()],
            1,
            0,
        );

        // Block 2: B spends tx1's output to C. tx1's output is the second
        // output of block 1 (after the coinbase): coords (1, 1).
        let outputs2 = vec![TxOut::new(
            BLOCK_SUBSIDY,
            p2pkh_lock(&c.public_key().address_hash()),
        )];
        let d2 = spend_sighash(1, &[(1, 1)], &outputs2, 0, 0);
        let tx2 = Transaction {
            version: 1,
            inputs: vec![TxIn::new(
                OutPoint::new(tx1.txid(), 0),
                p2pkh_unlock(
                    &crate::sighash::sign_input(&b, &d2),
                    &b.public_key().to_compressed(),
                ),
            )],
            outputs: outputs2,
            lock_time: 0,
        };
        let block2 = build_block(
            block1.header.hash(),
            coinbase_tx(2, Script::new(), Vec::new()),
            vec![tx2],
            2,
            0,
        );

        vec![genesis, block1, block2]
    }

    #[test]
    fn converted_chain_validates_on_ebv_node() {
        let chain = baseline_chain();
        let mut inter = Intermediary::new(0);
        let ebv_chain = inter.convert_chain(&chain).expect("conversion succeeds");
        assert_eq!(ebv_chain.len(), 3);
        assert_eq!(inter.converted(), 3);

        let mut node = EbvNode::new(&ebv_chain[0], EbvConfig::default());
        for block in &ebv_chain[1..] {
            node.process_block(block)
                .expect("converted block validates");
        }
        assert_eq!(node.tip_height(), 2);
        // Unspent: block1 coinbase, block2 coinbase, tx2's output to C.
        assert_eq!(node.total_unspent(), 3);
    }

    #[test]
    fn conversion_preserves_counts_and_scripts() {
        let chain = baseline_chain();
        let mut inter = Intermediary::new(0);
        let ebv_chain = inter.convert_chain(&chain).unwrap();
        for (base, ebv) in chain.iter().zip(&ebv_chain) {
            assert_eq!(base.transactions.len(), ebv.transactions.len());
            assert_eq!(base.output_count() as u32, ebv.output_count());
            for (bt, et) in base.transactions.iter().zip(&ebv.transactions) {
                assert_eq!(bt.outputs, et.tidy.outputs);
                for (bi, eb) in bt.inputs.iter().zip(&et.bodies) {
                    assert_eq!(bi.unlocking_script, eb.us);
                }
            }
        }
    }

    #[test]
    fn index_retires_spent_outpoints() {
        let chain = baseline_chain();
        let mut inter = Intermediary::new(0);
        inter.convert_chain(&chain).unwrap();
        // Genesis coinbase was spent in block 1.
        let spent = OutPoint::new(chain[0].transactions[0].txid(), 0);
        assert_eq!(inter.coords_of(&spent), None);
        // tx2's output (to C) is live at coords (2, 1).
        let live = OutPoint::new(chain[2].transactions[1].txid(), 0);
        assert_eq!(inter.coords_of(&live), Some((2, 1)));
    }

    #[test]
    fn unknown_outpoint_rejected() {
        let chain = baseline_chain();
        let mut inter = Intermediary::new(0);
        inter.convert_block(&chain[0]).unwrap();
        // Skip block 1 and feed block 2: its input references tx1, unknown.
        let err = inter.convert_block(&chain[2]).unwrap_err();
        assert!(matches!(
            err,
            ConvertError::UnknownOutpoint {
                tx: 1,
                input: 0,
                ..
            }
        ));
    }

    #[test]
    fn proofs_in_converted_blocks_point_at_ebv_headers() {
        let chain = baseline_chain();
        let mut inter = Intermediary::new(0);
        let ebv_chain = inter.convert_chain(&chain).unwrap();
        // Block 2's spend proof must verify against block 1's EBV header
        // (not the baseline header — the merkle roots differ).
        let proof = ebv_chain[2].transactions[1].bodies[0]
            .proof
            .as_ref()
            .unwrap();
        assert_eq!(proof.height, 1);
        assert!(proof
            .mbr
            .verify(&proof.els.leaf_hash(), &ebv_chain[1].header.merkle_root));
        assert!(!proof
            .mbr
            .verify(&proof.els.leaf_hash(), &chain[1].header.merkle_root));
    }
}
