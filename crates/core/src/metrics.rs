//! Validation-time breakdowns.
//!
//! The paper reports block-validation and IBD time split by phase: DBO /
//! SV / others for Bitcoin (Figs. 4, 5) and EV / UV / SV / others for EBV
//! (Figs. 16b, 17b). Validators fill these structs; figure binaries print
//! them.

use std::ops::AddAssign;
use std::time::Duration;

/// Phase breakdown for the Bitcoin-baseline validator.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BaselineBreakdown {
    /// Database-related operations: Fetch + Delete + Insert.
    pub dbo: Duration,
    /// Script Validation.
    pub sv: Duration,
    /// Everything else (structure checks, Merkle recompute, bookkeeping).
    pub others: Duration,
}

impl BaselineBreakdown {
    pub fn total(&self) -> Duration {
        self.dbo + self.sv + self.others
    }

    /// Fraction of total time spent in DBO (the ratio line of Fig. 5).
    pub fn dbo_ratio(&self) -> f64 {
        let total = self.total().as_secs_f64();
        if total == 0.0 {
            0.0
        } else {
            self.dbo.as_secs_f64() / total
        }
    }
}

impl AddAssign for BaselineBreakdown {
    fn add_assign(&mut self, rhs: Self) {
        self.dbo += rhs.dbo;
        self.sv += rhs.sv;
        self.others += rhs.others;
    }
}

/// Phase breakdown for the EBV validator.
///
/// `commit` was historically folded into `uv`, which skewed the Fig. 16b /
/// 17b phase split: UV is supposed to measure *probes only* (the paper's
/// point is that UV is nearly free), while committing a block mutates the
/// bit-vector set and the header chain. They are now separate buckets.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EbvBreakdown {
    /// Existence Validation: Merkle-branch folding against headers.
    pub ev: Duration,
    /// Unspent Validation: bit-vector probes and duplicate detection.
    pub uv: Duration,
    /// Script Validation.
    pub sv: Duration,
    /// Post-validation state commit: header append, bit-vector insert,
    /// spend application, undo recording.
    pub commit: Duration,
    /// Everything else (structure checks, Merkle recompute, value checks).
    pub others: Duration,
}

impl EbvBreakdown {
    pub fn total(&self) -> Duration {
        self.ev + self.uv + self.sv + self.commit + self.others
    }
}

impl AddAssign for EbvBreakdown {
    fn add_assign(&mut self, rhs: Self) {
        self.ev += rhs.ev;
        self.uv += rhs.uv;
        self.sv += rhs.sv;
        self.commit += rhs.commit;
        self.others += rhs.others;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_totals_and_ratio() {
        let b = BaselineBreakdown {
            dbo: Duration::from_millis(80),
            sv: Duration::from_millis(15),
            others: Duration::from_millis(5),
        };
        assert_eq!(b.total(), Duration::from_millis(100));
        assert!((b.dbo_ratio() - 0.8).abs() < 1e-9);
        assert_eq!(BaselineBreakdown::default().dbo_ratio(), 0.0);
    }

    #[test]
    fn accumulation() {
        let mut acc = EbvBreakdown::default();
        let one = EbvBreakdown {
            ev: Duration::from_millis(1),
            uv: Duration::from_millis(2),
            sv: Duration::from_millis(3),
            commit: Duration::from_millis(5),
            others: Duration::from_millis(4),
        };
        acc += one;
        acc += one;
        assert_eq!(acc.total(), Duration::from_millis(30));
        assert_eq!(acc.sv, Duration::from_millis(6));
        assert_eq!(acc.commit, Duration::from_millis(10));
    }
}
