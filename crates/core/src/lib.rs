//! EBV core — the paper's contribution.
//!
//! *An Efficient Block Validation Mechanism for UTXO-based Blockchains*
//! (IPDPS 2022) disassembles input checking into Existence Validation
//! (EV), Unspent Validation (UV) and Script Validation (SV), then:
//!
//! * replaces the disk-bound UTXO set with an in-memory **bit-vector set**
//!   ([`bitvec`]) — one vector per block, one bit per output, sparse
//!   vectors stored as 16-bit index arrays;
//! * attaches a **proof** to every input ([`tidy`]): a Merkle branch
//!   (*MBr*), the previous tidy transaction (*ELs*), the block *height*
//!   and the output *position*, so EV and SV need no database;
//! * avoids **transaction inflation** by hashing input bodies out of the
//!   Merkle leaves ("tidy transactions");
//! * defeats **fake positions** with miner-stamped stake positions.
//!
//! Modules: [`ebv_node`] is the EBV validator; [`baseline_node`] the
//! Bitcoin-style comparator; [`intermediary`] converts baseline chains to
//! EBV format (the paper's §VI-A testbed component); [`proofs`] builds
//! input proofs (the transaction-proposer side); [`pack`] packages and
//! mines EBV blocks; [`ibd`] replays chains for the IBD experiments;
//! [`metrics`] carries the per-phase timing breakdowns; [`sync`] is the
//! fault-tolerant multi-peer block-sync subsystem (peer scoring, capped
//! backoff, bans, reorg handling, deterministic fault injection).

pub mod baseline_node;
pub mod bitvec;
pub mod ebv_node;
pub mod ibd;
pub mod intermediary;
pub mod mempool;
pub mod metrics;
pub mod pack;
pub mod proofs;
pub mod sighash;
pub mod sync;
pub mod tidy;

pub use baseline_node::{BaselineConfig, BaselineError, BaselineNode};
pub use bitvec::{BitVectorSet, BitVectorSetSize, BitVectorSnapshot, BlockBitVector, UvError};
pub use ebv_node::{EbvConfig, EbvError, EbvNode, SnapshotError};
pub use ibd::{
    baseline_ibd, build_checkpoints, ebv_ibd, parallel_ibd, synced_ibd, BaselinePeriod,
    CheckpointError, EbvPeriod, IbdFailure, IntervalStat, ParallelIbd, ParallelIbdError, SyncedIbd,
};
pub use intermediary::{ConvertError, Intermediary};
pub use mempool::{Mempool, MempoolError};
pub use metrics::{BaselineBreakdown, EbvBreakdown};
pub use pack::{ebv_coinbase, pack_ebv_block};
pub use proofs::ProofArchive;
pub use sighash::{sign_input, sv_chunk_batched, DigestChecker, PubkeyCache, SvJob, SV_BATCH_MAX};
pub use sync::{
    reorg_to, serve_adversary, serve_blocks, spawn_source, sync_baseline, sync_ebv, sync_managed,
    sync_multi, AdversarialServer, BlockSource, DefensePolicy, Fault, FaultSchedule, FaultyPeer,
    InboundDecision, ManagedConfig, ManagedReport, PeerAddr, PeerFactory, PeerHandle, PeerManager,
    PeerManagerConfig, PeerStats, ReorgError, SyncConfig, SyncError, SyncReport, TcpPeer,
    TcpServer, Transport, ValidatingNode, WireAdversary, WireConfig, WireError,
};
pub use tidy::{EbvBlock, EbvTransaction, InputBody, InputProof, TidyTransaction};
