//! EBV block packaging (mining side).
//!
//! Assigns stake positions, computes the tidy-leaf Merkle root and mines
//! the header — the miner-side duties the paper adds in §IV-D2.

use crate::tidy::{EbvBlock, EbvTransaction, InputBody};
use ebv_chain::transaction::TxOut;
use ebv_chain::{BlockHeader, BLOCK_SUBSIDY};
use ebv_primitives::hash::Hash256;
use ebv_script::{Builder, Script};

/// Build an EBV coinbase transaction for `height`.
pub fn ebv_coinbase(height: u32, reward_script: Script) -> EbvTransaction {
    let body = InputBody {
        us: Builder::new().push_int(height as i64).into_script(),
        proof: None,
    };
    EbvTransaction::from_parts(
        1,
        vec![body],
        vec![TxOut::new(BLOCK_SUBSIDY, reward_script)],
        0,
    )
}

/// Package transactions into a mined EBV block: stamp stake positions,
/// compute the Merkle root over tidy leaves, and grind the nonce.
///
/// `transactions[0]` must be the coinbase.
pub fn pack_ebv_block(
    prev_block_hash: Hash256,
    mut transactions: Vec<EbvTransaction>,
    time: u32,
    bits: u32,
) -> EbvBlock {
    debug_assert!(!transactions.is_empty() && transactions[0].is_coinbase());
    // Stamp stake positions: cumulative output counts. Stake lives in the
    // tidy part only, so input-body hashes are unaffected.
    let mut acc = 0u32;
    for tx in &mut transactions {
        tx.tidy.stake_position = acc;
        acc += tx.tidy.outputs.len() as u32;
    }
    let mut block = EbvBlock {
        header: BlockHeader {
            version: 1,
            prev_block_hash,
            merkle_root: Hash256::ZERO,
            time,
            bits,
            nonce: 0,
        },
        transactions,
    };
    block.header.merkle_root = block.compute_merkle_root();
    while !block.header.meets_target() {
        block.header.nonce = block.header.nonce.checked_add(1).expect("nonce space");
    }
    block
}

#[cfg(test)]
mod tests {
    use super::*;

    fn output(v: u64) -> TxOut {
        TxOut::new(v, Script::new())
    }

    #[test]
    fn coinbase_shape() {
        let cb = ebv_coinbase(7, Script::new());
        assert!(cb.is_coinbase());
        cb.check_integrity().unwrap();
        assert_eq!(cb.tidy.outputs[0].value, BLOCK_SUBSIDY);
        // Height makes coinbases unique.
        assert_ne!(
            cb.tidy.leaf_hash(),
            ebv_coinbase(8, Script::new()).tidy.leaf_hash()
        );
    }

    #[test]
    fn packing_stamps_stakes_and_mines() {
        let cb = ebv_coinbase(1, Script::new());
        let tx1 = EbvTransaction::from_parts(
            1,
            vec![InputBody {
                us: Script::new(),
                proof: None,
            }],
            vec![output(1), output(2)],
            0,
        );
        let tx2 = EbvTransaction::from_parts(
            1,
            vec![InputBody {
                us: Script::new(),
                proof: None,
            }],
            vec![output(3)],
            0,
        );
        let block = pack_ebv_block(Hash256::ZERO, vec![cb, tx1, tx2], 0, 4);
        assert_eq!(
            block
                .transactions
                .iter()
                .map(|t| t.tidy.stake_position)
                .collect::<Vec<_>>(),
            vec![0, 1, 3]
        );
        assert_eq!(block.header.merkle_root, block.compute_merkle_root());
        assert!(block.header.meets_target());
        // Integrity survives the stake re-stamp (hashes cover bodies only).
        for tx in &block.transactions {
            tx.check_integrity().unwrap();
        }
    }
}
