//! Localhost TCP transport for the sync subsystem.
//!
//! Three pieces:
//!
//! * [`FramedStream`] — a `TcpStream` wrapped in the frame codec from
//!   [`super::wire`], with per-read deadlines: every socket read gets a
//!   budget, a frame that trickles past its deadline is a
//!   [`WireError::SlowRead`], and payload buffers grow only as bytes
//!   actually arrive (see [`PayloadBuf`]);
//! * [`TcpPeer`] — the driver-side [`Transport`]: lazy dial + versioned
//!   `Hello` handshake (network = genesis hash), request/response with
//!   stale-reply rejection by id, and automatic reconnect after a
//!   connection is poisoned by a protocol violation — so a misbehaving
//!   peer keeps accumulating score until the driver bans it, exactly like
//!   an address-level ban in a real node;
//! * [`serve_blocks`] / [`TcpServer`] — the serving side: one listener
//!   thread per peer, sequential connections, honest framing over any
//!   [`BlockSource`] (wrap the source in
//!   [`FaultyPeer`](super::fault::FaultyPeer) for content-level faults
//!   over a real wire).
//!
//! Clock use here is for *deadlines* (scheduling), not measurement;
//! latency histograms go through `telemetry::Stopwatch`.

use super::peer::{BlockSource, RequestOutcome, Transport};
use super::wire::{
    encode_frame, FrameHeader, PayloadBuf, WireError, WireMessage, DEFAULT_MAX_FRAME,
    FRAME_HEADER_LEN, MAX_BLOCKS_PER_FRAME,
};
use ebv_primitives::encode::varint_len;
use ebv_primitives::hash::Hash256;
use ebv_telemetry::{counter, histogram, Stopwatch};
use std::io::{ErrorKind, Read, Write};
use std::net::{Ipv4Addr, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// Transport tuning knobs, shared by both endpoints of a connection.
#[derive(Clone, Copy, Debug)]
pub struct WireConfig {
    /// Hard cap on a frame's payload length; a header claiming more is
    /// rejected before any payload byte is read.
    pub max_frame: u32,
    /// Deadline for the whole dial + `Hello` exchange.
    pub handshake_timeout: Duration,
    /// Per-write socket budget.
    pub io_timeout: Duration,
    /// How often the serving side wakes from an idle read to check for
    /// shutdown (and the deadline granularity of its request reads).
    pub idle_step: Duration,
    /// Consecutive failed dials before the peer reports itself closed.
    pub max_dial_attempts: u32,
}

impl Default for WireConfig {
    fn default() -> Self {
        WireConfig {
            max_frame: DEFAULT_MAX_FRAME,
            handshake_timeout: Duration::from_secs(2),
            io_timeout: Duration::from_millis(500),
            idle_step: Duration::from_millis(50),
            max_dial_attempts: 3,
        }
    }
}

impl WireConfig {
    /// Tight timings for unit tests, matched to `SyncConfig::fast_test()`.
    pub fn fast_test() -> WireConfig {
        WireConfig {
            handshake_timeout: Duration::from_millis(250),
            io_timeout: Duration::from_millis(100),
            idle_step: Duration::from_millis(10),
            ..WireConfig::default()
        }
    }
}

/// Labeled `net.frame.errors{class=...}` bump. The label makes the metric
/// name dynamic, so the caching `counter!` macro does not apply.
fn frame_error(slug: &str) {
    if ebv_telemetry::enabled() {
        ebv_telemetry::registry::counter(&format!("net.frame.errors{{class={slug}}}")).inc();
    }
}

/// What one deadline-bounded receive produced.
pub(crate) enum Recv {
    /// A complete, checksum-verified, decoded message.
    Msg(WireMessage),
    /// The deadline passed with *zero* bytes received — quiet, not slow.
    Idle,
}

/// A `TcpStream` speaking the frame protocol.
pub(crate) struct FramedStream {
    stream: TcpStream,
    cfg: WireConfig,
}

impl FramedStream {
    pub(crate) fn new(stream: TcpStream, cfg: WireConfig) -> FramedStream {
        let _ = stream.set_nodelay(true);
        FramedStream { stream, cfg }
    }

    /// Raw access for byte-level (adversarial) writes.
    pub(crate) fn stream_mut(&mut self) -> &mut TcpStream {
        &mut self.stream
    }

    /// Send one message as a frame, bounded by the write budget.
    pub(crate) fn send(&mut self, msg: &WireMessage) -> Result<(), WireError> {
        let frame = encode_frame(msg);
        self.stream
            .set_write_timeout(Some(self.cfg.io_timeout))
            .map_err(|e| WireError::Io(e.kind()))?;
        self.stream.write_all(&frame).map_err(|e| match e.kind() {
            ErrorKind::BrokenPipe | ErrorKind::ConnectionReset | ErrorKind::ConnectionAborted => {
                WireError::TruncatedFrame
            }
            kind => WireError::Io(kind),
        })?;
        counter!("net.frame.tx").inc();
        counter!("net.frame.tx_bytes").add(frame.len() as u64);
        Ok(())
    }

    /// Receive one frame before `deadline`.
    ///
    /// * zero bytes by the deadline → [`Recv::Idle`] (the peer is quiet,
    ///   which may be legitimate);
    /// * *some* bytes but an incomplete frame by the deadline →
    ///   [`WireError::SlowRead`] (the slow-loris signature);
    /// * EOF/reset while bytes are owed → [`WireError::TruncatedFrame`];
    /// * every header/checksum/payload violation → its [`WireError`].
    pub(crate) fn recv(&mut self, deadline: Instant) -> Result<Recv, WireError> {
        let mut hdr = [0u8; FRAME_HEADER_LEN];
        let mut filled = 0usize;
        let mut clock: Option<Stopwatch> = None;
        while filled < FRAME_HEADER_LEN {
            match self.read_step(&mut hdr[filled..], deadline, filled > 0)? {
                ReadStep::Bytes(n) => {
                    if clock.is_none() {
                        clock = Some(Stopwatch::start());
                    }
                    filled += n;
                }
                ReadStep::DeadlineQuiet => return Ok(Recv::Idle),
            }
        }
        let header = FrameHeader::parse(&hdr, self.cfg.max_frame)?;
        // The claimed length is now known ≤ max_frame, but allocation
        // still tracks received bytes, not the claim.
        let mut payload = PayloadBuf::new(header.len as usize);
        while !payload.is_complete() {
            let window = payload.window();
            let window_len = window.len();
            match read_step_inner(&mut self.stream, window, deadline, true)? {
                ReadStep::Bytes(n) => payload.advance(window_len, n),
                ReadStep::DeadlineQuiet => unreachable!("mid-frame deadline is SlowRead"),
            }
        }
        let payload = payload.into_inner();
        if super::wire::checksum(&payload) != header.checksum {
            return Err(WireError::ChecksumMismatch);
        }
        let msg = WireMessage::decode_payload(header.kind, &payload)?;
        counter!("net.frame.rx").inc();
        counter!("net.frame.rx_bytes").add((FRAME_HEADER_LEN + payload.len()) as u64);
        if let Some(clock) = clock {
            histogram!("net.frame.latency_us").record(clock.elapsed().as_micros() as u64);
        }
        Ok(Recv::Msg(msg))
    }

    fn read_step(
        &mut self,
        buf: &mut [u8],
        deadline: Instant,
        mid_frame: bool,
    ) -> Result<ReadStep, WireError> {
        read_step_inner(&mut self.stream, buf, deadline, mid_frame)
    }

    /// Best-effort polite close.
    pub(crate) fn bye(&mut self) {
        let _ = self.send(&WireMessage::Bye);
        let _ = self.stream.shutdown(std::net::Shutdown::Both);
    }
}

enum ReadStep {
    Bytes(usize),
    /// Deadline hit with nothing read and nothing mid-frame.
    DeadlineQuiet,
}

/// One deadline-bounded read. `mid_frame` decides whether a deadline is
/// quiet-idle or a slow-read violation.
fn read_step_inner(
    stream: &mut TcpStream,
    buf: &mut [u8],
    deadline: Instant,
    mid_frame: bool,
) -> Result<ReadStep, WireError> {
    loop {
        let Some(remaining) = deadline
            .checked_duration_since(Instant::now())
            .filter(|d| !d.is_zero())
        else {
            return if mid_frame {
                Err(WireError::SlowRead)
            } else {
                Ok(ReadStep::DeadlineQuiet)
            };
        };
        stream
            .set_read_timeout(Some(remaining))
            .map_err(|e| WireError::Io(e.kind()))?;
        match stream.read(buf) {
            // EOF while a response (or the rest of a frame) is owed.
            Ok(0) => return Err(WireError::TruncatedFrame),
            Ok(n) => return Ok(ReadStep::Bytes(n)),
            Err(e) => match e.kind() {
                ErrorKind::WouldBlock | ErrorKind::TimedOut | ErrorKind::Interrupted => continue,
                ErrorKind::ConnectionReset
                | ErrorKind::ConnectionAborted
                | ErrorKind::BrokenPipe
                | ErrorKind::UnexpectedEof => return Err(WireError::TruncatedFrame),
                kind => return Err(WireError::Io(kind)),
            },
        }
    }
}

/// Client half of the `Hello` exchange.
fn client_handshake(
    stream: TcpStream,
    network: Hash256,
    cfg: WireConfig,
) -> Result<FramedStream, WireError> {
    let mut fs = FramedStream::new(stream, cfg);
    fs.send(&WireMessage::Hello {
        network,
        start_height: 0,
    })?;
    let deadline = Instant::now() + cfg.handshake_timeout;
    match fs.recv(deadline) {
        Ok(Recv::Msg(WireMessage::Hello {
            network: theirs, ..
        })) => {
            if theirs != network {
                return Err(WireError::WrongNetwork);
            }
            counter!("net.conn.handshakes").inc();
            Ok(fs)
        }
        Ok(Recv::Msg(other)) => Err(WireError::UnexpectedMessage {
            expected: "hello",
            got: other.name(),
        }),
        // Quiet or trickling during the handshake both read as a peer
        // that cannot complete the protocol preamble in time.
        Ok(Recv::Idle) | Err(WireError::SlowRead) => Err(WireError::HandshakeTimeout),
        Err(e) => Err(e),
    }
}

/// Driver-side TCP peer: dial-on-demand, reconnect-after-violation.
pub struct TcpPeer {
    id: usize,
    addr: SocketAddr,
    network: Hash256,
    cfg: WireConfig,
    conn: Option<FramedStream>,
    next_id: u64,
    dial_failures: u32,
    ever_connected: bool,
    /// Set when the remote said `Bye` or dialing is hopeless.
    closed: bool,
}

impl TcpPeer {
    /// A peer for the server at `addr` on network `network` (the genesis
    /// header hash). No connection is made until the first request.
    pub fn new(id: usize, addr: SocketAddr, network: Hash256, cfg: WireConfig) -> TcpPeer {
        TcpPeer {
            id,
            addr,
            network,
            cfg,
            conn: None,
            next_id: 0,
            dial_failures: 0,
            ever_connected: false,
            closed: false,
        }
    }

    /// Dial + handshake. `Ok(())` leaves a live connection behind.
    fn ensure_connected(&mut self) -> Result<(), RequestOutcome> {
        if self.conn.is_some() {
            return Ok(());
        }
        counter!("net.conn.dials").inc();
        if self.ever_connected {
            counter!("net.conn.reconnects").inc();
        }
        let stream = match TcpStream::connect_timeout(&self.addr, self.cfg.handshake_timeout) {
            Ok(s) => s,
            Err(e) => {
                counter!("net.conn.dial_failures").inc();
                self.dial_failures += 1;
                if self.dial_failures >= self.cfg.max_dial_attempts {
                    self.closed = true;
                    return Err(RequestOutcome::Closed);
                }
                return Err(RequestOutcome::Wire(WireError::Io(e.kind())));
            }
        };
        match client_handshake(stream, self.network, self.cfg) {
            Ok(fs) => {
                self.conn = Some(fs);
                self.dial_failures = 0;
                self.ever_connected = true;
                Ok(())
            }
            Err(e) => {
                counter!("net.conn.handshake_failures").inc();
                frame_error(e.slug());
                Err(RequestOutcome::Wire(e))
            }
        }
    }
}

/// Wait for the reply to request `id`, dropping stale replies by id.
fn await_reply(
    conn: &mut FramedStream,
    id: u64,
    deadline: Instant,
) -> Result<RequestOutcome, WireError> {
    loop {
        match conn.recv(deadline)? {
            Recv::Idle => return Ok(RequestOutcome::TimedOut),
            Recv::Msg(WireMessage::Blocks { id: rid, blocks }) if rid == id => {
                return Ok(RequestOutcome::Blocks(blocks))
            }
            Recv::Msg(WireMessage::Exhausted { id: rid }) if rid == id => {
                return Ok(RequestOutcome::Exhausted)
            }
            // A reply to a request we already gave up on: drop it.
            Recv::Msg(WireMessage::Blocks { .. }) | Recv::Msg(WireMessage::Exhausted { .. }) => {
                continue
            }
            // The server is leaving; not a violation.
            Recv::Msg(WireMessage::Bye) => return Ok(RequestOutcome::Closed),
            Recv::Msg(other) => {
                return Err(WireError::UnexpectedMessage {
                    expected: "blocks or exhausted",
                    got: other.name(),
                })
            }
        }
    }
}

impl Transport for TcpPeer {
    fn id(&self) -> usize {
        self.id
    }

    fn request(&mut self, start_height: u32, count: u32, timeout: Duration) -> RequestOutcome {
        if self.closed {
            return RequestOutcome::Closed;
        }
        if let Err(outcome) = self.ensure_connected() {
            return outcome;
        }
        let deadline = Instant::now() + timeout;
        let id = self.next_id;
        self.next_id += 1;
        let Some(conn) = self.conn.as_mut() else {
            return RequestOutcome::Closed;
        };
        let sent = conn.send(&WireMessage::GetBlocks {
            id,
            start_height,
            count,
        });
        if let Err(e) = sent {
            frame_error(e.slug());
            self.conn = None;
            return RequestOutcome::Wire(e);
        }
        match await_reply(conn, id, deadline) {
            Ok(RequestOutcome::Closed) => {
                counter!("net.conn.closed").inc();
                self.conn = None;
                self.closed = true;
                RequestOutcome::Closed
            }
            Ok(outcome) => outcome,
            Err(e) => {
                // The connection is desynchronized (or dead) after any
                // wire violation; drop it and let the next request
                // re-dial. The driver's scoring decides when to stop
                // bothering.
                frame_error(e.slug());
                counter!("net.conn.closed").inc();
                self.conn = None;
                RequestOutcome::Wire(e)
            }
        }
    }

    fn finish(&mut self) {
        if let Some(mut conn) = self.conn.take() {
            conn.bye();
            counter!("net.conn.closed").inc();
        }
        self.closed = true;
    }
}

/// Handle for a serving listener; dropping it stops the thread.
pub struct TcpServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl TcpServer {
    /// The bound address (always `127.0.0.1:<ephemeral>`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting and join the serving thread.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for TcpServer {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

/// Serve `source` over localhost TCP with honest framing. Connections are
/// handled one at a time (each driver owns one connection per peer); a
/// dropped connection loops back to `accept`, so reconnects just work.
pub fn serve_blocks<S: BlockSource + 'static>(
    source: S,
    network: Hash256,
    cfg: WireConfig,
) -> std::io::Result<TcpServer> {
    let (listener, addr, stop) = bind_localhost()?;
    let stop2 = Arc::clone(&stop);
    let thread = thread::Builder::new()
        .name(format!("wire-serve-{}", addr.port()))
        .spawn(move || {
            let mut source = source;
            while let Some(stream) = next_conn(&listener, &stop2) {
                serve_conn(stream, &mut source, network, &cfg, &stop2);
            }
        })?;
    Ok(TcpServer {
        addr,
        stop,
        thread: Some(thread),
    })
}

/// Bind an ephemeral localhost listener in non-blocking accept mode.
pub(crate) fn bind_localhost() -> std::io::Result<(TcpListener, SocketAddr, Arc<AtomicBool>)> {
    let listener = TcpListener::bind((Ipv4Addr::LOCALHOST, 0))?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;
    Ok((listener, addr, Arc::new(AtomicBool::new(false))))
}

/// Poll `accept` until a connection arrives or `stop` is set. The
/// accepted stream is switched back to blocking mode (per-read deadlines
/// come from `read_step_inner`'s socket timeouts).
pub(crate) fn next_conn(listener: &TcpListener, stop: &AtomicBool) -> Option<TcpStream> {
    loop {
        if stop.load(Ordering::Relaxed) {
            return None;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                counter!("net.conn.accepted").inc();
                if stream.set_nonblocking(false).is_err() {
                    continue;
                }
                return Some(stream);
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_millis(2));
            }
            Err(_) => return None,
        }
    }
}

/// Serve one established connection until it closes or `stop` is set.
fn serve_conn<S: BlockSource>(
    stream: TcpStream,
    source: &mut S,
    network: Hash256,
    cfg: &WireConfig,
    stop: &AtomicBool,
) {
    let mut fs = FramedStream::new(stream, *cfg);
    // Handshake: exactly one Hello, right network, in time.
    match fs.recv(Instant::now() + cfg.handshake_timeout) {
        Ok(Recv::Msg(WireMessage::Hello {
            network: theirs, ..
        })) if theirs == network => {}
        _ => return,
    }
    if fs
        .send(&WireMessage::Hello {
            network,
            start_height: 0,
        })
        .is_err()
    {
        return;
    }
    loop {
        if stop.load(Ordering::Relaxed) {
            fs.bye();
            return;
        }
        match fs.recv(Instant::now() + cfg.idle_step) {
            Ok(Recv::Idle) => continue,
            Ok(Recv::Msg(WireMessage::GetBlocks {
                id,
                start_height,
                count,
            })) => {
                let count = count.min(MAX_BLOCKS_PER_FRAME as u32);
                let blocks = source.serve(start_height, count);
                let blocks = fit_frame(blocks, cfg.max_frame);
                let reply = if blocks.is_empty() {
                    WireMessage::Exhausted { id }
                } else {
                    WireMessage::Blocks { id, blocks }
                };
                if fs.send(&reply).is_err() {
                    return;
                }
            }
            Ok(Recv::Msg(WireMessage::Bye)) => return,
            // Anything else — protocol violation or a dead socket — ends
            // the connection; the client may reconnect.
            Ok(Recv::Msg(_)) | Err(_) => return,
        }
    }
}

/// Keep the longest prefix of `blocks` whose `Blocks` payload fits the
/// frame cap. (With default caps and our block sizes this is the whole
/// batch; the guard exists so an honest server can never emit a frame its
/// peer must reject.)
pub(crate) fn fit_frame(blocks: Vec<Vec<u8>>, max_frame: u32) -> Vec<Vec<u8>> {
    let mut size = 8 + varint_len(blocks.len() as u64);
    let mut keep = 0usize;
    for b in &blocks {
        let add = varint_len(b.len() as u64) + b.len();
        if size + add > max_frame as usize {
            break;
        }
        size += add;
        keep += 1;
    }
    let mut blocks = blocks;
    blocks.truncate(keep);
    blocks
}
