//! The reorg engine: unwind to a fork point and connect a better branch.
//!
//! Works over any [`ValidatingNode`], so `EbvNode` and `BaselineNode`
//! share one implementation. After every unwind step the node's
//! invariants (`check_invariants`) are asserted, so a corrupt undo path
//! surfaces immediately instead of as a mysterious validation failure a
//! thousand blocks later.
//!
//! The engine follows the longest-chain rule at the granularity this
//! repository mines at (every experiment uses `bits = 0`, where chain
//! work is proportional to length): a candidate branch must make the
//! chain strictly longer, otherwise [`ReorgError::NotBetter`].

use super::node::ValidatingNode;

/// Why a reorg attempt failed.
#[derive(Debug)]
pub enum ReorgError<E> {
    /// The requested fork point is above the current tip.
    ForkAboveTip { fork: u32, tip: u32 },
    /// The candidate branch would not make the chain longer.
    NotBetter {
        current_len: u32,
        candidate_len: u32,
    },
    /// The branch's first block does not attach at the fork point, or its
    /// internal prev-hash links are broken at the given branch offset.
    BranchDetached { offset: usize },
    /// A branch block failed validation at `height`. If `restored` the
    /// original chain was reconnected; otherwise the node sits at the
    /// fork point (the caller supplied no — or an unusable — old branch).
    InvalidBranch { height: u32, err: E, restored: bool },
    /// Disconnecting the tip failed or an invariant broke mid-unwind.
    /// The node's state is suspect; the sync driver treats this as fatal.
    Unwind(String),
}

impl<E: std::fmt::Debug> std::fmt::Display for ReorgError<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReorgError::ForkAboveTip { fork, tip } => {
                write!(f, "fork height {fork} is above the current tip {tip}")
            }
            ReorgError::NotBetter {
                current_len,
                candidate_len,
            } => write!(
                f,
                "candidate branch ({candidate_len} blocks) is not longer than the \
                 current branch ({current_len} blocks)"
            ),
            ReorgError::BranchDetached { offset } => {
                write!(f, "branch prev-hash link broken at branch offset {offset}")
            }
            ReorgError::InvalidBranch {
                height,
                err,
                restored,
            } => write!(
                f,
                "branch block at height {height} failed validation ({err:?}); original \
                 chain {}",
                if *restored {
                    "restored"
                } else {
                    "NOT restored"
                }
            ),
            ReorgError::Unwind(msg) => write!(f, "unwind failed: {msg}"),
        }
    }
}

impl<E: std::fmt::Debug> std::error::Error for ReorgError<E> {}

/// Unwind `node` back to `fork_height`, asserting invariants after every
/// step.
fn unwind_to<N: ValidatingNode>(node: &mut N, fork_height: u32) -> Result<(), String> {
    while node.tip_height() > fork_height {
        match node.disconnect_tip_block() {
            Ok(Some(_)) => {}
            Ok(None) => return Err("hit genesis before the fork point".to_string()),
            Err(e) => {
                return Err(format!("disconnect failed at height {}: {e:?}", {
                    node.tip_height()
                }))
            }
        }
        node.check_invariants().map_err(|msg| {
            format!(
                "invariant violated after unwind to {}: {msg}",
                node.tip_height()
            )
        })?;
    }
    Ok(())
}

/// Switch `node` onto `branch`, which attaches at `fork_height` (its first
/// block's `prev_block_hash` must be the header at `fork_height`).
///
/// `old_branch` holds the currently connected blocks above the fork
/// point, lowest height first; it is used to restore the original chain
/// if the candidate branch turns out to be invalid. Pass an empty slice
/// if the old blocks are unavailable — then a failed reorg leaves the
/// node at the fork point (reported via `restored: false`).
///
/// On success returns the new tip height.
pub fn reorg_to<N: ValidatingNode>(
    node: &mut N,
    fork_height: u32,
    branch: &[N::Block],
    old_branch: &[N::Block],
) -> Result<u32, ReorgError<N::Error>> {
    let tip = node.tip_height();
    if fork_height > tip {
        return Err(ReorgError::ForkAboveTip {
            fork: fork_height,
            tip,
        });
    }
    let current_len = tip - fork_height;
    let candidate_len = branch.len() as u32;
    if candidate_len <= current_len {
        return Err(ReorgError::NotBetter {
            current_len,
            candidate_len,
        });
    }
    // Check attachment and internal linkage before touching node state.
    let Some(fork_hash) = node.header_hash_at(fork_height) else {
        return Err(ReorgError::ForkAboveTip {
            fork: fork_height,
            tip,
        });
    };
    let mut prev = fork_hash;
    for (offset, block) in branch.iter().enumerate() {
        if N::block_prev_hash(block) != prev {
            return Err(ReorgError::BranchDetached { offset });
        }
        prev = N::block_hash(block);
    }

    unwind_to(node, fork_height).map_err(ReorgError::Unwind)?;

    for block in branch {
        if let Err(err) = node.connect_block(block) {
            let failed_height = node.tip_height() + 1;
            // Roll the partial branch back off and reconnect the original
            // chain, if the caller gave us its blocks.
            unwind_to(node, fork_height).map_err(ReorgError::Unwind)?;
            let mut restored = !old_branch.is_empty() || current_len == 0;
            for old in old_branch {
                if node.connect_block(old).is_err() {
                    restored = false;
                    break;
                }
            }
            return Err(ReorgError::InvalidBranch {
                height: failed_height,
                err,
                restored,
            });
        }
    }
    Ok(node.tip_height())
}
