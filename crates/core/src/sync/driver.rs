//! The multi-peer sync driver.
//!
//! One generic implementation over [`ValidatingNode`] drives any node to
//! the best tip its peers can serve, surviving peer faults:
//!
//! * per-request timeouts — a stalled peer costs one timeout, not the
//!   whole sync; its late reply is discarded by request id;
//! * capped exponential backoff with deterministic seeded jitter — a
//!   failing peer is retried, but at a falling rate;
//! * per-peer scoring — decode failures score worse than validation
//!   failures, which score worse than stalls — with automatic ban once a
//!   peer's score crosses the threshold, and failover to the next-best
//!   peer on every failure;
//! * fork handling — a batch that does not attach triggers fork
//!   resolution: walk the peer's chain back to the common ancestor and,
//!   if the candidate branch is longer, reorg onto it via
//!   [`reorg_to`](super::reorg::reorg_to).
//!
//! Sync completes when every live peer reports exhaustion at the current
//! tip; it fails only when no usable peer remains — so it succeeds as
//! long as one honest peer survives.

use super::fault::splitmix64;
use super::node::ValidatingNode;
use super::peer::{RequestOutcome, Transport};
use super::reorg::{reorg_to, ReorgError};
use super::wire::WireError;
use super::SyncError;
use ebv_telemetry::{counter, histogram, trace_event};
use std::time::{Duration, Instant};

/// Batch size used by the sync drivers (Bitcoin uses 500-block locators;
/// 128 keeps per-batch memory modest at our block sizes).
pub const SYNC_BATCH: u32 = 128;

/// Score added for a batch that fails to decode (the strongest sign of a
/// broken or malicious peer).
const DECODE_PENALTY: u32 = 40;
/// Score added for a batch whose blocks fail validation.
const VALIDATION_PENALTY: u32 = 25;
/// Score added for a rejected fork (stale or equivocating tip).
const FORK_PENALTY: u32 = 25;
/// Score added for a request timeout (could be honest congestion).
const STALL_PENALTY: u32 = 12;
/// Score subtracted after a successfully connected batch.
const SUCCESS_REWARD: u32 = 10;

/// Map a byte-level wire violation to a score penalty. Malformed bytes
/// (bad magic, oversized claims, checksum mismatches, truncation) are as
/// damning as a batch that fails to decode — three strikes and out.
/// Slowness and handshake failure could be honest congestion, so they
/// score like validation failures; plain socket errors like stalls.
fn wire_penalty(err: &WireError) -> u32 {
    match err {
        WireError::SlowRead | WireError::HandshakeTimeout => VALIDATION_PENALTY,
        WireError::Io(_) => STALL_PENALTY,
        _ => DECODE_PENALTY,
    }
}

/// Tuning knobs for the multi-peer driver.
#[derive(Clone, Copy, Debug)]
pub struct SyncConfig {
    /// Blocks per `GetBlocks` request.
    pub batch: u32,
    /// How long to wait for a peer's response before declaring a stall.
    pub request_timeout: Duration,
    /// First backoff step after a failure; doubles per consecutive
    /// failure.
    pub base_backoff: Duration,
    /// Backoff ceiling.
    pub max_backoff: Duration,
    /// Ban a peer once its score reaches this value.
    pub ban_score: u32,
    /// Deepest fork the driver will walk back looking for a common
    /// ancestor.
    pub max_reorg_depth: u32,
    /// Hard cap on driver rounds — a termination backstop against
    /// adversarial peer sets.
    pub max_rounds: u32,
    /// Seed for the deterministic backoff jitter.
    pub seed: u64,
}

impl Default for SyncConfig {
    fn default() -> Self {
        SyncConfig {
            batch: SYNC_BATCH,
            request_timeout: Duration::from_secs(1),
            base_backoff: Duration::from_millis(2),
            max_backoff: Duration::from_millis(500),
            ban_score: 100,
            max_reorg_depth: 64,
            max_rounds: 100_000,
            seed: 0xebb,
        }
    }
}

impl SyncConfig {
    /// Tight timings for unit tests: sub-millisecond backoff and a
    /// 50 ms request timeout, so injected stalls resolve quickly.
    pub fn fast_test() -> SyncConfig {
        SyncConfig {
            request_timeout: Duration::from_millis(50),
            base_backoff: Duration::from_micros(300),
            max_backoff: Duration::from_millis(5),
            ..SyncConfig::default()
        }
    }
}

/// Per-peer outcome counters, reported in [`SyncReport`].
#[derive(Clone, Copy, Debug, Default)]
pub struct PeerStats {
    pub id: usize,
    pub batches: u32,
    pub blocks_accepted: u32,
    pub decode_failures: u32,
    pub validation_failures: u32,
    pub stalls: u32,
    pub fork_rejects: u32,
    /// Byte-level wire-protocol violations (TCP transport only).
    pub wire_errors: u32,
    pub reorgs: u32,
    pub score: u32,
    pub banned: bool,
    /// Microseconds from driver start to this peer's ban, if banned —
    /// the time-to-ban the fault matrix and `BENCH_sync.json` assert on.
    pub banned_at_us: Option<u64>,
}

/// What a completed sync did.
#[derive(Clone, Debug, Default)]
pub struct SyncReport {
    /// Blocks connected (including blocks connected during reorgs).
    pub blocks_connected: u32,
    /// Blocks disconnected by reorgs.
    pub blocks_disconnected: u32,
    /// Successful chain-tip switches.
    pub reorgs: u32,
    /// Driver rounds consumed.
    pub rounds: u32,
    /// Per-peer statistics, in peer order.
    pub peers: Vec<PeerStats>,
}

/// Driver-side state for one peer.
struct PeerCtl<T: Transport> {
    handle: T,
    /// When this driver run started — the zero point for `banned_at_us`.
    started: Instant,
    score: u32,
    /// Consecutive failures — drives the exponential backoff.
    failures: u32,
    /// Lifetime request count against this peer — the trace-span key for
    /// `sync.request` spans. Deterministic per peer where driver *rounds*
    /// are not (the all-backing-off sleep path consumes rounds at a
    /// timing-dependent rate).
    requests: u64,
    banned: bool,
    closed: bool,
    ready_at: Instant,
    /// `Some(tip)` once the peer reported exhaustion while our tip was
    /// `tip`; cleared whenever the tip moves or the peer serves blocks.
    exhausted_at: Option<u32>,
    stats: PeerStats,
}

impl<T: Transport> PeerCtl<T> {
    fn new(handle: T) -> PeerCtl<T> {
        let id = handle.id();
        PeerCtl {
            handle,
            started: Instant::now(),
            score: 0,
            failures: 0,
            requests: 0,
            banned: false,
            closed: false,
            ready_at: Instant::now(),
            exhausted_at: None,
            stats: PeerStats {
                id,
                ..PeerStats::default()
            },
        }
    }

    fn usable(&self) -> bool {
        !self.banned && !self.closed
    }

    /// Record a failure of weight `penalty`: bump the score, extend the
    /// backoff (capped exponential with deterministic jitter), and ban if
    /// over threshold. Returns the consecutive-failure count.
    ///
    /// `reason` is a short slug ("decode", "validation", "stall", ...)
    /// attached to the score-change trace event — the score total alone
    /// cannot explain *why* a peer ended up banned.
    fn penalize(&mut self, penalty: u32, reason: &str, cfg: &SyncConfig) -> u32 {
        self.score = self.score.saturating_add(penalty);
        self.failures = self.failures.saturating_add(1);
        let exp = self.failures.saturating_sub(1).min(16);
        let raw = cfg
            .base_backoff
            .saturating_mul(1u32 << exp)
            .min(cfg.max_backoff);
        // Jitter in [0.75, 1.25), deterministic per (seed, peer, failure).
        let mix =
            splitmix64(cfg.seed ^ ((self.handle.id() as u64) << 32) ^ u64::from(self.failures));
        let jitter = 0.75 + (mix % 512) as f64 / 1024.0;
        let backoff = raw.mul_f64(jitter);
        self.ready_at = Instant::now() + backoff;
        peer_counter("sync.peer.retries", self.handle.id());
        trace_event!(
            "sync.peer_score",
            peer = self.handle.id(),
            delta = penalty as i64,
            score = self.score,
            reason = reason,
            failures = self.failures,
        );
        trace_event!(
            "sync.backoff",
            peer = self.handle.id(),
            failures = self.failures,
            backoff_us = backoff.as_micros() as u64,
        );
        if self.score >= cfg.ban_score && !self.banned {
            self.banned = true;
            self.stats.banned = true;
            let banned_after_us = self.started.elapsed().as_micros() as u64;
            self.stats.banned_at_us = Some(banned_after_us);
            counter!("sync.peer.bans").inc();
            peer_counter("sync.peer.bans", self.handle.id());
            // Export the time-to-ban per peer: the containment bound the
            // fault matrix asserts on becomes scrapeable.
            if ebv_telemetry::enabled() {
                ebv_telemetry::registry::gauge(&format!(
                    "sync.peer.banned_at_us{{peer={}}}",
                    self.handle.id()
                ))
                .set(banned_after_us);
            }
            trace_event!(
                "sync.peer_banned",
                peer = self.handle.id(),
                score = self.score,
                last_reason = reason,
                banned_after_us = banned_after_us,
                decode_failures = self.stats.decode_failures,
                validation_failures = self.stats.validation_failures,
                stalls = self.stats.stalls,
                fork_rejects = self.stats.fork_rejects,
                wire_errors = self.stats.wire_errors,
            );
            // Failure-time evidence: the ban's causal chain (every scored
            // event under this session's trace id) plus the banned peer's
            // final stats, bundled while the ring still holds them.
            if ebv_telemetry::enabled() {
                ebv_telemetry::flight::dump(
                    "sync.peer_banned",
                    ebv_telemetry::context::current_trace(),
                    &[("peer", peer_stats_json(&self.stats, self.score))],
                );
            }
            self.handle.finish();
        }
        self.failures
    }

    /// Record a success: clear the failure streak and decay the score.
    fn reward(&mut self) {
        self.failures = 0;
        self.score = self.score.saturating_sub(SUCCESS_REWARD);
        trace_event!(
            "sync.peer_score",
            peer = self.handle.id(),
            delta = -(SUCCESS_REWARD as i64),
            score = self.score,
            reason = "batch_connected",
        );
    }
}

/// How fork resolution against one peer ended.
enum ForkOutcome {
    /// The node switched to the peer's branch.
    Reorged { connected: u32, disconnected: u32 },
    /// The fork was rejected or could not be resolved; penalize the peer
    /// with `penalty` and remember `error` as the last failure.
    Rejected { penalty: u32, reason: String },
    /// The peer served an invalid branch — ban-worthy.
    InvalidBranch { reason: String },
    /// Node state is suspect (unwind failure); abort the sync.
    Fatal(String),
    /// Generic per-request failure during resolution.
    RequestFailed { penalty: u32, reason: String },
}

/// Synchronize `node` against `peers` until every live peer is exhausted
/// at the tip. Returns what was done, or the reason no progress is
/// possible. See the module docs for the failure-handling policy.
pub fn sync_multi<N: ValidatingNode, T: Transport>(
    node: &mut N,
    peers: Vec<T>,
    cfg: &SyncConfig,
) -> Result<SyncReport, SyncError<N::Error>> {
    let total = peers.len();
    // The session's causal root: a new trace when the caller has none, a
    // child span under `sync_managed`'s trace when it does. Seeded, so
    // same-seed runs produce identical trace trees.
    let _session_span = ebv_telemetry::context::SpanGuard::enter_root("sync.session", cfg.seed);
    // Session floor: reorgs deeper than the driver's starting tip cannot
    // be restored on failure (we never saw those blocks), so forks below
    // it are refused.
    let floor = node.tip_height();
    let mut store: Vec<N::Block> = Vec::new();
    let mut ctls: Vec<PeerCtl<T>> = peers.into_iter().map(PeerCtl::new).collect();
    let mut report = SyncReport::default();
    let mut last_failure: Option<SyncError<N::Error>> = None;

    loop {
        report.rounds += 1;
        // Liveness heartbeat: the stall watchdog distinguishes a slow
        // session (beating every round) from a hung one (silent).
        ebv_telemetry::health::heartbeat("sync.session.progress");
        if report.rounds > cfg.max_rounds {
            sync_failure_dump("round_limit", &ctls);
            finish_all(&mut ctls);
            return Err(SyncError::RoundLimit {
                height: node.tip_height(),
                rounds: report.rounds,
            });
        }
        let tip = node.tip_height();
        let live: Vec<usize> = (0..ctls.len()).filter(|&i| ctls[i].usable()).collect();
        if live.is_empty() {
            let banned = ctls.iter().filter(|c| c.banned).count();
            sync_failure_dump("all_peers_failed", &ctls);
            finish_all(&mut ctls);
            return Err(SyncError::AllPeersFailed {
                total,
                banned,
                height: tip,
                rounds: report.rounds,
                last: last_failure.map(Box::new),
            });
        }
        // `tip == u32::MAX` means the u32 height space is full: there is no
        // height left to request, so the chain is as synced as it can get.
        // Without this guard `tip + 1` below would wrap to height 0.
        if tip == u32::MAX || live.iter().all(|&i| ctls[i].exhausted_at == Some(tip)) {
            finish_all(&mut ctls);
            report.peers = ctls.iter().map(|c| c.stats).collect();
            for (c, s) in ctls.iter().zip(report.peers.iter_mut()) {
                s.score = c.score;
            }
            return Ok(report);
        }

        // Pick the best ready peer: lowest score, ties to lowest id.
        let now = Instant::now();
        let mut pick: Option<usize> = None;
        for &i in &live {
            if ctls[i].exhausted_at == Some(tip) || ctls[i].ready_at > now {
                continue;
            }
            let better = match pick {
                None => true,
                Some(j) => {
                    (ctls[i].score, ctls[i].handle.id()) < (ctls[j].score, ctls[j].handle.id())
                }
            };
            if better {
                pick = Some(i);
            }
        }
        let Some(i) = pick else {
            // Every candidate is backing off; sleep until the earliest
            // becomes ready.
            let wake = live
                .iter()
                .filter(|&&i| ctls[i].exhausted_at != Some(tip))
                .map(|&i| ctls[i].ready_at)
                .min();
            if let Some(w) = wake {
                let now = Instant::now();
                if w > now {
                    std::thread::sleep((w - now).min(cfg.max_backoff));
                }
            }
            continue;
        };

        let peer_id = ctls[i].handle.id();
        let start = tip + 1;
        // One span per request, keyed (peer, per-peer request number) so
        // ids are reproducible even though peer interleaving is
        // timing-dependent.
        ctls[i].requests += 1;
        let _req_span =
            ebv_telemetry::child_span!("sync.request", ((peer_id as u64) << 32) | ctls[i].requests);
        peer_counter("sync.peer.requests", peer_id);
        match ctls[i]
            .handle
            .request(start, cfg.batch, cfg.request_timeout)
        {
            RequestOutcome::Closed => {
                ctls[i].closed = true;
                last_failure = Some(SyncError::SourceClosed {
                    peer: peer_id,
                    height: start,
                });
            }
            RequestOutcome::TimedOut => {
                ctls[i].stats.stalls += 1;
                peer_counter("sync.peer.timeouts", peer_id);
                let attempts = ctls[i].penalize(STALL_PENALTY, "stall", cfg);
                last_failure = Some(SyncError::Stalled {
                    peer: peer_id,
                    height: start,
                    attempts,
                });
            }
            RequestOutcome::Wire(err) => {
                ctls[i].stats.wire_errors += 1;
                peer_counter("sync.peer.wire_errors", peer_id);
                wire_class_counter(peer_id, err.slug());
                // The wire error's slug is the score reason, so a ban
                // trace names the byte-level violation that earned it.
                let attempts = ctls[i].penalize(wire_penalty(&err), err.slug(), cfg);
                last_failure = Some(SyncError::Wire {
                    peer: peer_id,
                    height: start,
                    attempts,
                    err,
                });
            }
            RequestOutcome::Exhausted => {
                ctls[i].exhausted_at = Some(tip);
                ctls[i].failures = 0;
            }
            RequestOutcome::Blocks(batch_bytes) => {
                ctls[i].stats.batches += 1;
                ctls[i].exhausted_at = None;
                let mut blocks: Vec<N::Block> = Vec::with_capacity(batch_bytes.len());
                let mut decode_err = None;
                for (k, bytes) in batch_bytes.iter().enumerate() {
                    match N::decode_block(bytes) {
                        Ok(b) => blocks.push(b),
                        Err(e) => {
                            decode_err = Some((k, e));
                            break;
                        }
                    }
                }
                if let Some((k, err)) = decode_err {
                    ctls[i].stats.decode_failures += 1;
                    let attempts = ctls[i].penalize(DECODE_PENALTY, "decode", cfg);
                    last_failure = Some(SyncError::Decode {
                        peer: peer_id,
                        // Report-only coordinate; saturate rather than wrap
                        // if a near-MAX start plus the batch offset overflows.
                        height: start.saturating_add(k as u32),
                        attempts,
                        err,
                    });
                } else if blocks.is_empty() {
                    ctls[i].exhausted_at = Some(tip);
                } else if N::block_prev_hash(&blocks[0]) != node.tip_hash() {
                    match resolve_fork(node, &mut ctls[i], &mut store, floor, blocks, cfg) {
                        ForkOutcome::Reorged {
                            connected,
                            disconnected,
                        } => {
                            report.reorgs += 1;
                            report.blocks_connected += connected;
                            report.blocks_disconnected += disconnected;
                            ctls[i].stats.reorgs += 1;
                            ctls[i].stats.blocks_accepted += connected;
                            ctls[i].reward();
                        }
                        ForkOutcome::Rejected { penalty, reason } => {
                            ctls[i].stats.fork_rejects += 1;
                            let attempts = ctls[i].penalize(penalty, "fork_rejected", cfg);
                            last_failure = Some(SyncError::ForkRejected {
                                peer: peer_id,
                                height: start,
                                attempts,
                                reason,
                            });
                        }
                        ForkOutcome::InvalidBranch { reason } => {
                            ctls[i].stats.validation_failures += 1;
                            let attempts = ctls[i].penalize(cfg.ban_score, "invalid_branch", cfg);
                            last_failure = Some(SyncError::ForkRejected {
                                peer: peer_id,
                                height: start,
                                attempts,
                                reason,
                            });
                        }
                        ForkOutcome::RequestFailed { penalty, reason } => {
                            let attempts = ctls[i].penalize(penalty, "fork_request_failed", cfg);
                            last_failure = Some(SyncError::ForkRejected {
                                peer: peer_id,
                                height: start,
                                attempts,
                                reason,
                            });
                        }
                        ForkOutcome::Fatal(msg) => {
                            sync_failure_dump("internal", &ctls);
                            finish_all(&mut ctls);
                            return Err(SyncError::Internal(msg));
                        }
                    }
                } else {
                    let mut connected = 0u32;
                    let mut failure: Option<(u32, N::Error)> = None;
                    for block in blocks {
                        match node.connect_block(&block) {
                            Ok(()) => {
                                store.push(block);
                                connected += 1;
                            }
                            Err(e) => {
                                failure = Some((node.tip_height() + 1, e));
                                break;
                            }
                        }
                    }
                    report.blocks_connected += connected;
                    ctls[i].stats.blocks_accepted += connected;
                    if let Some((height, err)) = failure {
                        ctls[i].stats.validation_failures += 1;
                        let attempts = ctls[i].penalize(VALIDATION_PENALTY, "validation", cfg);
                        last_failure = Some(SyncError::Validation {
                            peer: peer_id,
                            height,
                            attempts,
                            err,
                        });
                    } else {
                        ctls[i].reward();
                    }
                }
            }
        }
    }
}

/// Bump the per-peer labeled counter `name{peer=N}`. The label makes the
/// metric name dynamic, so the per-call-site caching macro does not apply;
/// gate the format on `enabled()` instead.
fn peer_counter(name: &str, peer: usize) {
    if ebv_telemetry::enabled() {
        ebv_telemetry::registry::counter(&format!("{name}{{peer={peer}}}")).inc();
    }
}

/// Bump `sync.peer.wire_errors{peer=N,class=<slug>}` — the per-peer,
/// per-violation-class breakdown the metrics snapshot exports alongside
/// the plain per-peer total.
fn wire_class_counter(peer: usize, class: &str) {
    if ebv_telemetry::enabled() {
        ebv_telemetry::registry::counter(&format!(
            "sync.peer.wire_errors{{peer={peer},class={class}}}"
        ))
        .inc();
    }
}

fn finish_all<T: Transport>(ctls: &mut [PeerCtl<T>]) {
    for c in ctls {
        c.handle.finish();
    }
}

/// One peer's stats as a raw JSON object — the flight recorder embeds
/// these verbatim in post-mortem bundles. Hand-formatted like the rest
/// of the telemetry crate (no serde under the shims constraint).
fn peer_stats_json(stats: &PeerStats, score: u32) -> String {
    format!(
        "{{\"id\":{},\"batches\":{},\"blocks_accepted\":{},\"decode_failures\":{},\
         \"validation_failures\":{},\"stalls\":{},\"fork_rejects\":{},\"wire_errors\":{},\
         \"reorgs\":{},\"score\":{},\"banned\":{},\"banned_at_us\":{}}}",
        stats.id,
        stats.batches,
        stats.blocks_accepted,
        stats.decode_failures,
        stats.validation_failures,
        stats.stalls,
        stats.fork_rejects,
        stats.wire_errors,
        stats.reorgs,
        score,
        stats.banned,
        stats
            .banned_at_us
            .map_or_else(|| "null".to_string(), |v| v.to_string()),
    )
}

fn peers_stats_json<T: Transport>(ctls: &[PeerCtl<T>]) -> String {
    let mut out = String::from("[");
    for (i, c) in ctls.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&peer_stats_json(&c.stats, c.score));
    }
    out.push(']');
    out
}

/// Capture a post-mortem bundle as a sync session dies: the session's
/// causal chain (filtered by its trace id) plus every peer's final
/// stats. `kind` names the `SyncError` variant about to be returned.
fn sync_failure_dump<T: Transport>(kind: &str, ctls: &[PeerCtl<T>]) {
    if !ebv_telemetry::enabled() {
        return;
    }
    trace_event!("sync.session_failed", kind = kind);
    ebv_telemetry::flight::dump(
        "sync.session_failed",
        ebv_telemetry::context::current_trace(),
        &[
            ("kind", format!("\"{kind}\"")),
            ("peers", peers_stats_json(ctls)),
        ],
    );
}

/// A batch from `ctl` did not attach to the tip: walk its chain back to
/// the common ancestor, fetch its candidate branch to exhaustion, and
/// reorg if the branch is strictly longer.
fn resolve_fork<N: ValidatingNode, T: Transport>(
    node: &mut N,
    ctl: &mut PeerCtl<T>,
    store: &mut Vec<N::Block>,
    floor: u32,
    batch: Vec<N::Block>,
    cfg: &SyncConfig,
) -> ForkOutcome {
    let tip = node.tip_height();
    // Phase 1: walk down from the tip until the peer's block hash matches
    // ours — the fork point. Blocks collected on the way are the lower
    // part of the candidate branch.
    let mut below: Vec<N::Block> = Vec::new(); // heights tip, tip-1, ...
    let mut h = tip;
    let fork = loop {
        if tip - h >= cfg.max_reorg_depth {
            return ForkOutcome::Rejected {
                penalty: FORK_PENALTY,
                reason: format!(
                    "no common ancestor within {} blocks of the tip",
                    cfg.max_reorg_depth
                ),
            };
        }
        if h < floor {
            return ForkOutcome::Rejected {
                penalty: FORK_PENALTY,
                reason: format!("fork point below the session floor (height {floor})"),
            };
        }
        match ctl.handle.request(h, 1, cfg.request_timeout) {
            RequestOutcome::Blocks(bytes) => {
                let Some(first) = bytes.first() else {
                    return ForkOutcome::RequestFailed {
                        penalty: STALL_PENALTY,
                        reason: format!("empty response for single block at height {h}"),
                    };
                };
                let block = match N::decode_block(first) {
                    Ok(b) => b,
                    Err(e) => {
                        return ForkOutcome::RequestFailed {
                            penalty: DECODE_PENALTY,
                            reason: format!(
                                "block at height {h} failed to decode during fork walk: {e:?}"
                            ),
                        }
                    }
                };
                if node.header_hash_at(h) == Some(N::block_hash(&block)) {
                    break h;
                }
                below.push(block);
                if h == 0 {
                    return ForkOutcome::Rejected {
                        penalty: DECODE_PENALTY,
                        reason: "peer shares no common ancestor (different genesis)".to_string(),
                    };
                }
                h -= 1;
            }
            RequestOutcome::Exhausted => {
                return ForkOutcome::Rejected {
                    penalty: FORK_PENALTY,
                    reason: format!("peer claims exhaustion at height {h} during fork walk"),
                }
            }
            RequestOutcome::TimedOut => {
                ctl.stats.stalls += 1;
                return ForkOutcome::RequestFailed {
                    penalty: STALL_PENALTY,
                    reason: format!("timeout fetching height {h} during fork walk"),
                };
            }
            RequestOutcome::Closed => {
                ctl.closed = true;
                return ForkOutcome::RequestFailed {
                    penalty: 0,
                    reason: "peer channel closed during fork walk".to_string(),
                };
            }
            RequestOutcome::Wire(err) => {
                ctl.stats.wire_errors += 1;
                wire_class_counter(ctl.handle.id(), err.slug());
                return ForkOutcome::RequestFailed {
                    penalty: wire_penalty(&err),
                    reason: format!("wire violation fetching height {h} during fork walk: {err}"),
                };
            }
        }
    };

    // Phase 2: assemble the candidate branch — walked blocks (ascending)
    // plus the original batch — then extend it to the peer's tip.
    below.reverse();
    let mut branch = below; // heights fork+1 ..= tip
    branch.extend(batch); // heights tip+1 ..
    let mut fetch_rounds = 0u32;
    loop {
        fetch_rounds += 1;
        if fetch_rounds > 256 {
            break; // adversarially long advertisement; judge what we have
        }
        // A peer can keep feeding branch blocks until `fork + 1 + len`
        // leaves the u32 height space; checked math turns that into a
        // scored rejection instead of a wrapping request for height ~0.
        let Some(next) = fork
            .checked_add(1)
            .and_then(|h| h.checked_add(branch.len() as u32))
        else {
            return ForkOutcome::RequestFailed {
                penalty: FORK_PENALTY,
                reason: "candidate branch overflows the u32 height space".to_string(),
            };
        };
        match ctl.handle.request(next, cfg.batch, cfg.request_timeout) {
            RequestOutcome::Exhausted => break,
            RequestOutcome::Blocks(bytes) => {
                for b in &bytes {
                    match N::decode_block(b) {
                        Ok(block) => branch.push(block),
                        Err(e) => {
                            return ForkOutcome::RequestFailed {
                                penalty: DECODE_PENALTY,
                                reason: format!(
                                "candidate branch block failed to decode near height {next}: {e:?}"
                            ),
                            }
                        }
                    }
                }
            }
            RequestOutcome::TimedOut => {
                ctl.stats.stalls += 1;
                return ForkOutcome::RequestFailed {
                    penalty: STALL_PENALTY,
                    reason: format!("timeout extending candidate branch at height {next}"),
                };
            }
            RequestOutcome::Closed => {
                ctl.closed = true;
                return ForkOutcome::RequestFailed {
                    penalty: 0,
                    reason: "peer channel closed while extending candidate branch".to_string(),
                };
            }
            RequestOutcome::Wire(err) => {
                ctl.stats.wire_errors += 1;
                wire_class_counter(ctl.handle.id(), err.slug());
                return ForkOutcome::RequestFailed {
                    penalty: wire_penalty(&err),
                    reason: format!(
                        "wire violation extending candidate branch at height {next}: {err}"
                    ),
                };
            }
        }
    }

    // Phase 3: longest-chain rule, then the actual reorg.
    let old_from = (fork - floor) as usize;
    let disconnected = tip - fork;
    let connected = branch.len() as u32;
    trace_event!(
        "sync.reorg_begin",
        peer = ctl.handle.id(),
        fork = fork,
        depth = disconnected,
        candidate_len = connected,
    );
    match reorg_to(node, fork, &branch, &store[old_from..]) {
        Ok(_) => {
            store.truncate(old_from);
            store.extend(branch);
            counter!("sync.reorgs").inc();
            histogram!("sync.reorg_depth").record(u64::from(disconnected));
            trace_event!(
                "sync.reorg_end",
                peer = ctl.handle.id(),
                fork = fork,
                connected = connected,
                disconnected = disconnected,
            );
            // A reorg rewrites history — rare enough to always keep the
            // full evidence trail that led to it.
            if ebv_telemetry::enabled() {
                ebv_telemetry::flight::dump(
                    "sync.reorg_end",
                    ebv_telemetry::context::current_trace(),
                    &[(
                        "reorg",
                        format!(
                            "{{\"peer\":{},\"fork\":{fork},\"connected\":{connected},\
                             \"disconnected\":{disconnected}}}",
                            ctl.handle.id()
                        ),
                    )],
                );
            }
            ForkOutcome::Reorged {
                connected,
                disconnected,
            }
        }
        Err(ReorgError::NotBetter {
            current_len,
            candidate_len,
        }) => ForkOutcome::Rejected {
            penalty: FORK_PENALTY,
            reason: format!(
                "stale or equivocating tip: candidate branch {candidate_len} blocks vs current {current_len}"
            ),
        },
        Err(ReorgError::BranchDetached { offset }) => ForkOutcome::Rejected {
            penalty: DECODE_PENALTY,
            reason: format!("candidate branch link broken at offset {offset}"),
        },
        Err(ReorgError::ForkAboveTip { fork, tip }) => ForkOutcome::Rejected {
            penalty: FORK_PENALTY,
            reason: format!("fork point {fork} above tip {tip}"),
        },
        Err(ReorgError::InvalidBranch {
            height,
            err,
            restored,
        }) => {
            if !restored {
                // The node sits at the fork point; drop our record of the
                // old branch so the store still mirrors the chain. Honest
                // peers will re-serve the missing blocks.
                store.truncate(old_from);
            }
            ForkOutcome::InvalidBranch {
                reason: format!(
                    "candidate branch invalid at height {height}: {err:?} (old chain restored: {restored})"
                ),
            }
        }
        Err(ReorgError::Unwind(msg)) => ForkOutcome::Fatal(msg),
    }
}
