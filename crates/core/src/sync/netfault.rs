//! Byte-level adversary servers for the TCP transport.
//!
//! Where [`super::fault::FaultyPeer`] corrupts *content* (blocks, heights,
//! tips), these servers attack the *wire itself*: trickled bytes, absurd
//! length claims, mid-frame disconnects, raw garbage, truncated headers,
//! bad checksums, and pure connection churn. Each maps to exactly one
//! [`WireError`](super::wire::WireError) class on the client, and thus to
//! one reason slug in the ban trace — the fault matrix asserts that
//! mapping end to end.
//!
//! Every adversary except [`WireAdversary::Churn`] completes an honest
//! handshake first (real attackers do — the handshake is cheap), then
//! misbehaves on the first data exchange. Clock use is deadline/pacing
//! only.

use super::peer::BlockSource;
use super::tcp_peer::{bind_localhost, fit_frame, next_conn, FramedStream, Recv, WireConfig};
use super::wire::{encode_frame, WireMessage, FRAME_HEADER_LEN};
use ebv_primitives::hash::Hash256;
use std::io::Write;
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// One class of byte-level misbehavior.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WireAdversary {
    /// Answers requests with honest bytes at one byte per `interval` —
    /// the frame never completes before the deadline. Client sees
    /// `slow-read`.
    SlowLoris { interval: Duration },
    /// Answers with a header claiming a near-4 GiB payload. Client
    /// rejects at header parse: `frame-too-large`, with no allocation.
    OversizedFrame,
    /// Sends the header and half the payload of an honest reply, then
    /// drops the connection. Client sees `truncated-frame`.
    MidFrameDisconnect,
    /// Completes the handshake, then answers with bytes that are not a
    /// frame at all. Client sees `bad-magic`.
    GarbageAfterHandshake,
    /// Sends only a prefix of the 16-byte frame header, then drops.
    /// Client sees `truncated-frame` at the header boundary.
    FrameTruncation,
    /// Honest frames with the checksum field inverted. Client sees
    /// `checksum-mismatch`.
    BadChecksum,
    /// Accepts and instantly drops every connection. Client sees
    /// `truncated-frame` (or `handshake-timeout`) during the handshake,
    /// every time it re-dials.
    Churn,
}

impl WireAdversary {
    /// Stable label for benches and trace assertions.
    pub fn label(&self) -> &'static str {
        match self {
            WireAdversary::SlowLoris { .. } => "slow-loris",
            WireAdversary::OversizedFrame => "oversized-frame",
            WireAdversary::MidFrameDisconnect => "mid-frame-disconnect",
            WireAdversary::GarbageAfterHandshake => "garbage-after-handshake",
            WireAdversary::FrameTruncation => "frame-truncation",
            WireAdversary::BadChecksum => "bad-checksum",
            WireAdversary::Churn => "churn",
        }
    }

    /// The whole roster, for matrix tests and benches.
    pub fn all(loris_interval: Duration) -> Vec<WireAdversary> {
        vec![
            WireAdversary::SlowLoris {
                interval: loris_interval,
            },
            WireAdversary::OversizedFrame,
            WireAdversary::MidFrameDisconnect,
            WireAdversary::GarbageAfterHandshake,
            WireAdversary::FrameTruncation,
            WireAdversary::BadChecksum,
            WireAdversary::Churn,
        ]
    }

    /// The reason slug the client's ban trace should end with for this
    /// adversary (the error class its bytes produce).
    pub fn expected_slug(&self) -> &'static str {
        match self {
            WireAdversary::SlowLoris { .. } => "slow-read",
            WireAdversary::OversizedFrame => "frame-too-large",
            WireAdversary::MidFrameDisconnect => "truncated-frame",
            WireAdversary::GarbageAfterHandshake => "bad-magic",
            WireAdversary::FrameTruncation => "truncated-frame",
            WireAdversary::BadChecksum => "checksum-mismatch",
            WireAdversary::Churn => "truncated-frame",
        }
    }
}

/// Handle for an adversarial listener; dropping it stops the thread.
pub struct AdversarialServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl AdversarialServer {
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for AdversarialServer {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

/// Spawn a server that plays `adversary` against every connection.
/// `source` supplies the honest bytes the adversary corrupts (so its
/// frames are plausible, not trivially absurd).
pub fn serve_adversary<S: BlockSource + 'static>(
    source: S,
    network: Hash256,
    adversary: WireAdversary,
    cfg: WireConfig,
) -> std::io::Result<AdversarialServer> {
    let (listener, addr, stop) = bind_localhost()?;
    let stop2 = Arc::clone(&stop);
    let thread = thread::Builder::new()
        .name(format!("wire-adv-{}", adversary.label()))
        .spawn(move || {
            let mut source = source;
            while let Some(stream) = next_conn(&listener, &stop2) {
                adversarial_conn(stream, &mut source, network, adversary, &cfg, &stop2);
            }
        })?;
    Ok(AdversarialServer {
        addr,
        stop,
        thread: Some(thread),
    })
}

fn adversarial_conn<S: BlockSource>(
    stream: TcpStream,
    source: &mut S,
    network: Hash256,
    adversary: WireAdversary,
    cfg: &WireConfig,
    stop: &AtomicBool,
) {
    if adversary == WireAdversary::Churn {
        // Drop on the floor; the client pays a dial + handshake each time.
        return;
    }
    let mut fs = FramedStream::new(stream, *cfg);
    match fs.recv(Instant::now() + cfg.handshake_timeout) {
        Ok(Recv::Msg(WireMessage::Hello { .. })) => {}
        _ => return,
    }
    if fs
        .send(&WireMessage::Hello {
            network,
            start_height: 0,
        })
        .is_err()
    {
        return;
    }
    loop {
        if stop.load(Ordering::Relaxed) {
            return;
        }
        let (id, start_height, count) = match fs.recv(Instant::now() + cfg.idle_step) {
            Ok(Recv::Idle) => continue,
            Ok(Recv::Msg(WireMessage::GetBlocks {
                id,
                start_height,
                count,
            })) => (id, start_height, count),
            _ => return,
        };
        // The honest reply this request deserved, as raw frame bytes.
        let blocks = fit_frame(source.serve(start_height, count), cfg.max_frame);
        let reply = if blocks.is_empty() {
            WireMessage::Exhausted { id }
        } else {
            WireMessage::Blocks { id, blocks }
        };
        let frame = encode_frame(&reply);
        let keep_conn = match adversary {
            WireAdversary::SlowLoris { interval } => drip(fs.stream_mut(), &frame, interval, stop),
            WireAdversary::OversizedFrame => {
                let mut f = frame;
                f.truncate(FRAME_HEADER_LEN);
                f[8..12].copy_from_slice(&(u32::MAX - 1).to_le_bytes());
                write_raw(fs.stream_mut(), &f)
            }
            WireAdversary::MidFrameDisconnect => {
                let payload_len = frame.len() - FRAME_HEADER_LEN;
                let cut = FRAME_HEADER_LEN + payload_len / 2;
                let _ = write_raw(fs.stream_mut(), &frame[..cut]);
                false
            }
            WireAdversary::GarbageAfterHandshake => write_raw(fs.stream_mut(), &[0xA5; 64]),
            WireAdversary::FrameTruncation => {
                let _ = write_raw(fs.stream_mut(), &frame[..7]);
                false
            }
            WireAdversary::BadChecksum => {
                let mut f = frame;
                for b in &mut f[12..16] {
                    *b ^= 0xFF;
                }
                write_raw(fs.stream_mut(), &f)
            }
            WireAdversary::Churn => unreachable!("handled before the handshake"),
        };
        if !keep_conn {
            return;
        }
    }
}

/// Write bytes with a bounded budget; `false` means the connection died.
fn write_raw(stream: &mut TcpStream, bytes: &[u8]) -> bool {
    let _ = stream.set_write_timeout(Some(Duration::from_millis(500)));
    stream.write_all(bytes).and_then(|_| stream.flush()).is_ok()
}

/// One byte per `interval`. Capped at 1 KiB: the client's deadline fires
/// (and penalizes `slow-read`) long before, and an unbounded drip would
/// only stall server shutdown.
fn drip(stream: &mut TcpStream, bytes: &[u8], interval: Duration, stop: &AtomicBool) -> bool {
    let _ = stream.set_write_timeout(Some(Duration::from_millis(100)));
    for &b in bytes.iter().take(1024) {
        if stop.load(Ordering::Relaxed) {
            return false;
        }
        if stream.write_all(&[b]).and_then(|_| stream.flush()).is_err() {
            return false;
        }
        thread::sleep(interval);
    }
    false
}
