//! The wire protocol and peer plumbing.
//!
//! A [`BlockSource`] serves inventories and blocks (the Bitcoin
//! `getheaders`/`getdata` pattern, reduced to its essentials); the driver
//! talks to each peer over a pair of channels wrapped in a [`PeerHandle`].
//! Source and destination run on separate threads, so measured sync time
//! includes real hand-off, as in the paper's two-machine setup.
//!
//! Every request carries an id that the source echoes back. The driver
//! discards responses whose id does not match its outstanding request —
//! that is how a reply from a stalled peer, arriving long after the driver
//! gave up on it, is prevented from being mistaken for the answer to a
//! newer request.

use super::wire::WireError;
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use ebv_chain::Block;
use ebv_primitives::encode::Encodable;
use std::thread;
use std::time::{Duration, Instant};

/// Messages from the destination to a source peer.
#[derive(Debug)]
pub enum Request {
    /// Ask for up to `count` blocks starting at `start_height`.
    GetBlocks {
        /// Echoed back in the response; stale replies are dropped by id.
        id: u64,
        start_height: u32,
        count: u32,
    },
    /// Sync finished (or the peer was abandoned); the source may exit.
    Done,
}

/// Messages from a source peer to the destination. Blocks travel
/// serialized, as they would on a wire; the destination pays the decode
/// cost.
#[derive(Debug)]
pub enum Response {
    /// Serialized blocks, in height order.
    Blocks { id: u64, blocks: Vec<Vec<u8>> },
    /// The source has nothing at or above the requested height.
    Exhausted { id: u64 },
}

/// A source that can serve a contiguous range of blocks.
///
/// `serve` takes `&mut self` so that sources may keep per-request state —
/// the fault-injection wrapper advances its schedule on every call.
pub trait BlockSource: Send {
    /// Serialized blocks for heights `[start, start + count)`, fewer if
    /// the chain ends first, empty if `start` is past the tip.
    fn serve(&mut self, start_height: u32, count: u32) -> Vec<Vec<u8>>;
}

impl BlockSource for Vec<crate::tidy::EbvBlock> {
    fn serve(&mut self, start_height: u32, count: u32) -> Vec<Vec<u8>> {
        self.iter()
            .skip(start_height as usize)
            .take(count as usize)
            .map(Encodable::to_bytes)
            .collect()
    }
}

impl BlockSource for Vec<Block> {
    fn serve(&mut self, start_height: u32, count: u32) -> Vec<Vec<u8>> {
        self.iter()
            .skip(start_height as usize)
            .take(count as usize)
            .map(Encodable::to_bytes)
            .collect()
    }
}

/// The driver's endpoint for one serving peer: the request/response
/// channel pair plus the peer id used in scoring and error reports.
pub struct PeerHandle {
    /// Peer id (unique per driver run; appears in errors and stats).
    pub id: usize,
    req: Sender<Request>,
    resp: Receiver<Response>,
    /// Next request id to stamp.
    next_id: u64,
}

/// Outcome of one request round-trip against a peer.
#[derive(Debug)]
pub enum RequestOutcome {
    /// The peer served at least one serialized block.
    Blocks(Vec<Vec<u8>>),
    /// The peer has nothing at or above the requested height.
    Exhausted,
    /// No matching response arrived within the timeout.
    TimedOut,
    /// The peer's channel is gone (thread exited or crashed), or the
    /// remote end said goodbye / became undialable.
    Closed,
    /// The peer violated the wire protocol at the byte level — only TCP
    /// transports produce this; in-process channels cannot.
    Wire(WireError),
}

/// One peer the sync driver can talk to, whatever carries the bytes.
///
/// [`PeerHandle`] implements it over in-process channels;
/// [`TcpPeer`](super::tcp_peer::TcpPeer) over localhost TCP with the
/// framed wire protocol. `sync_multi` is generic over this trait, so the
/// whole scoring/ban/backoff/fork machinery applies to both unchanged.
pub trait Transport {
    /// Peer id (unique per driver run; appears in errors and stats).
    fn id(&self) -> usize;
    /// Issue one block request and wait up to `timeout` for the matching
    /// response (stale replies must be discarded, not surfaced).
    fn request(&mut self, start_height: u32, count: u32, timeout: Duration) -> RequestOutcome;
    /// Politely end the conversation (idempotent).
    fn finish(&mut self);
}

impl PeerHandle {
    /// Spawn a serving thread for `source` and return the driver-side
    /// handle. The thread exits on [`Request::Done`] or when the request
    /// channel closes (the handle is dropped).
    pub fn spawn<S: BlockSource + 'static>(id: usize, mut source: S) -> PeerHandle {
        let (req_tx, req_rx) = unbounded::<Request>();
        let (resp_tx, resp_rx) = unbounded::<Response>();
        thread::spawn(move || {
            while let Ok(req) = req_rx.recv() {
                match req {
                    Request::GetBlocks {
                        id,
                        start_height,
                        count,
                    } => {
                        let blocks = source.serve(start_height, count);
                        let msg = if blocks.is_empty() {
                            Response::Exhausted { id }
                        } else {
                            Response::Blocks { id, blocks }
                        };
                        if resp_tx.send(msg).is_err() {
                            return;
                        }
                    }
                    Request::Done => return,
                }
            }
        });
        PeerHandle {
            id,
            req: req_tx,
            resp: resp_rx,
            next_id: 0,
        }
    }

    /// Issue one `GetBlocks` and wait up to `timeout` for the matching
    /// response, draining any stale replies from earlier timed-out
    /// requests along the way.
    pub fn request(&mut self, start_height: u32, count: u32, timeout: Duration) -> RequestOutcome {
        let id = self.next_id;
        self.next_id += 1;
        if self
            .req
            .send(Request::GetBlocks {
                id,
                start_height,
                count,
            })
            .is_err()
        {
            return RequestOutcome::Closed;
        }
        let deadline = Instant::now() + timeout;
        loop {
            let now = Instant::now();
            let Some(remaining) = deadline
                .checked_duration_since(now)
                .filter(|d| !d.is_zero())
            else {
                return RequestOutcome::TimedOut;
            };
            match self.resp.recv_timeout(remaining) {
                Ok(Response::Blocks { id: rid, blocks }) if rid == id => {
                    return RequestOutcome::Blocks(blocks)
                }
                Ok(Response::Exhausted { id: rid }) if rid == id => {
                    return RequestOutcome::Exhausted
                }
                // Stale reply to a request we already gave up on: drop it.
                Ok(_) => continue,
                Err(RecvTimeoutError::Timeout) => return RequestOutcome::TimedOut,
                Err(RecvTimeoutError::Disconnected) => return RequestOutcome::Closed,
            }
        }
    }

    /// Politely tell the serving thread to exit.
    pub fn finish(&self) {
        let _ = self.req.send(Request::Done);
    }
}

impl Transport for PeerHandle {
    fn id(&self) -> usize {
        self.id
    }

    fn request(&mut self, start_height: u32, count: u32, timeout: Duration) -> RequestOutcome {
        PeerHandle::request(self, start_height, count, timeout)
    }

    fn finish(&mut self) {
        PeerHandle::finish(self);
    }
}

/// Spawn a serving thread for `source` with peer id 0 — the single-peer
/// convenience used by the `sync_ebv`/`sync_baseline` wrappers.
pub fn spawn_source<S: BlockSource + 'static>(source: S) -> PeerHandle {
    PeerHandle::spawn(0, source)
}
