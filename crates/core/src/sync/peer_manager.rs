//! Topology-level peer management with eclipse resistance.
//!
//! PR 4 and PR 7 hardened the *per-connection* layer — scoring, bans, and
//! byte-level wire defenses. This module hardens the *topology* layer: an
//! adversary who occupies every peer slot of a node wins without ever
//! sending a malformed byte, because the per-connection machinery only
//! judges the peers it was given. The [`PeerManager`] decides **which**
//! peers those are, borrowing the defenses Bitcoin Core's addrman grew in
//! response to the Heilman et al. eclipse attacks:
//!
//! * **`tried`/`new` tables bucketed by netgroup** — where an address may
//!   live in the tables is a seeded hash of its netgroup (and, for `new`,
//!   the netgroup of the peer that gossiped it), so an attacker flooding
//!   addresses from a handful of netgroups can poison only a bounded slice
//!   of the table no matter how many addresses it sends;
//! * **outbound netgroup diversity** — at most one outbound slot per
//!   netgroup, so controlling G netgroups caps the attacker at G outbound
//!   slots;
//! * **anchor persistence** — a restarting node reconnects to outbound
//!   peers that previously served it valid blocks, so a reboot does not
//!   reset the attacker's problem to "fill empty slots";
//! * **feeler probes** — periodic short-lived test connections move
//!   gossiped addresses into `tried` only after they actually answer,
//!   keeping the `tried` table's quality under flood;
//! * **inbound eviction protection** — when the inbound capacity is hit,
//!   long-lived and recently-useful peers are protected and the eviction
//!   victim is drawn from the most-populated netgroup, so connection churn
//!   from few netgroups evicts the attacker's own connections first.
//!
//! Every defense sits behind a [`DefensePolicy`] flag so the netsim
//! eclipse campaign can measure the attack's success probability with the
//! defenses off and on (`crates/netsim/src/eclipse.rs`).
//!
//! The manager is fully deterministic: every hash and every selection draw
//! comes from splitmix64 over the config seed, and time is a logical
//! `tick` supplied by the caller — no wall clock, no global RNG — so an
//! eclipse campaign is a reproducible function of its seed.

use super::fault::splitmix64;
use ebv_telemetry::{counter, trace_event};
use std::collections::HashMap;

/// A peer's network address. The simulator synthesizes these; real TCP
/// peers use their socket address octets.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PeerAddr {
    pub ip: [u8; 4],
    pub port: u16,
}

impl PeerAddr {
    /// Synthesize an address inside netgroup `group` with host suffix
    /// `host` — the netsim scenarios' address factory.
    pub fn synthetic(group: u16, host: u16) -> PeerAddr {
        PeerAddr {
            ip: [
                (group >> 8) as u8,
                (group & 0xff) as u8,
                (host >> 8) as u8,
                (host & 0xff) as u8,
            ],
            port: 8333,
        }
    }

    /// The address's netgroup — the /16 prefix, the granularity at which
    /// the bucketing and diversity defenses operate.
    pub fn netgroup(&self) -> u16 {
        u16::from(self.ip[0]) << 8 | u16::from(self.ip[1])
    }

    /// Stable 64-bit key for hashing.
    fn key(&self) -> u64 {
        u64::from(u32::from_be_bytes(self.ip)) << 16 | u64::from(self.port)
    }

    /// Serialized form for anchor persistence (6 bytes).
    fn encode_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.ip);
        out.extend_from_slice(&self.port.to_le_bytes());
    }

    fn decode_from(bytes: &[u8]) -> Option<(PeerAddr, &[u8])> {
        if bytes.len() < 6 {
            return None;
        }
        Some((
            PeerAddr {
                ip: [bytes[0], bytes[1], bytes[2], bytes[3]],
                port: u16::from_le_bytes([bytes[4], bytes[5]]),
            },
            &bytes[6..],
        ))
    }
}

/// Which eclipse defenses are active. The netsim campaign measures the
/// attack with [`DefensePolicy::hardened`] against
/// [`DefensePolicy::naive`]; individual flags exist so ablations can
/// attribute the win.
#[derive(Clone, Copy, Debug)]
pub struct DefensePolicy {
    /// Bucket table positions by netgroup (and gossip source) instead of
    /// by address, bounding how much table an attacker's netgroups reach.
    pub netgroup_bucketing: bool,
    /// At most one outbound connection per netgroup.
    pub outbound_diversity: bool,
    /// Protect long-lived and recently-useful inbound peers from
    /// eviction; evict from the most-populated netgroup.
    pub eviction_protection: bool,
    /// Reconnect to persisted anchor peers after a restart.
    pub anchors: bool,
}

impl DefensePolicy {
    /// All defenses on — the production posture.
    pub fn hardened() -> DefensePolicy {
        DefensePolicy {
            netgroup_bucketing: true,
            outbound_diversity: true,
            eviction_protection: true,
            anchors: true,
        }
    }

    /// All defenses off — the strawman a successful eclipse needs.
    pub fn naive() -> DefensePolicy {
        DefensePolicy {
            netgroup_bucketing: false,
            outbound_diversity: false,
            eviction_protection: false,
            anchors: false,
        }
    }
}

/// Tuning knobs. Table geometry is scaled down from Bitcoin Core's
/// (1024/256 buckets × 64 slots) to keep netsim campaigns at hundreds of
/// peers meaningful — the ratios, not the absolute sizes, carry the
/// defense.
#[derive(Clone, Copy, Debug)]
pub struct PeerManagerConfig {
    /// Buckets in the `new` table (gossiped, unverified addresses).
    pub new_buckets: usize,
    /// Buckets in the `tried` table (addresses that answered us).
    pub tried_buckets: usize,
    /// Slots per bucket.
    pub bucket_size: usize,
    /// Outbound connection target.
    pub outbound_slots: usize,
    /// Inbound connection capacity.
    pub inbound_slots: usize,
    /// Consecutive failures after which a `new` entry is dropped.
    pub max_failures: u32,
    /// Ticks between feeler probes.
    pub feeler_interval: u64,
    /// How many anchors to persist.
    pub anchor_count: usize,
    /// Inbound peers protected from eviction by longest uptime.
    pub protect_longest: usize,
    /// Inbound peers protected from eviction by most recent usefulness.
    pub protect_recent: usize,
    /// Seed for table hashing and selection draws.
    pub seed: u64,
    /// Which defenses are active.
    pub defenses: DefensePolicy,
}

impl Default for PeerManagerConfig {
    fn default() -> Self {
        PeerManagerConfig {
            new_buckets: 64,
            tried_buckets: 16,
            bucket_size: 8,
            outbound_slots: 8,
            inbound_slots: 16,
            max_failures: 4,
            feeler_interval: 4,
            anchor_count: 2,
            protect_longest: 4,
            protect_recent: 4,
            seed: 0xadd2,
            defenses: DefensePolicy::hardened(),
        }
    }
}

/// What the manager knows about one address.
#[derive(Clone, Copy, Debug)]
struct AddrInfo {
    addr: PeerAddr,
    /// Consecutive failed connection attempts.
    failures: u32,
    /// Tick of the last successful handshake, if any.
    last_success: Option<u64>,
    /// Lives in the `tried` table (else `new`).
    tried: bool,
}

/// One live connection slot.
#[derive(Clone, Copy, Debug)]
pub struct ConnectedPeer {
    pub addr: PeerAddr,
    /// Tick the connection was established.
    pub connected_at: u64,
    /// Tick this peer last did something useful (served a valid block).
    pub last_useful: u64,
}

/// Outcome of an inbound connection attempt.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum InboundDecision {
    /// A free slot was available.
    Accepted,
    /// Capacity reached and every candidate was protected; the newcomer
    /// is refused.
    Rejected,
    /// The newcomer is admitted; the returned peer was evicted.
    AcceptedEvicting(PeerAddr),
}

/// The address manager plus connection-slot book-keeping. See the module
/// docs for the defense inventory.
pub struct PeerManager {
    cfg: PeerManagerConfig,
    /// All known addresses.
    addrs: Vec<AddrInfo>,
    index: HashMap<PeerAddr, usize>,
    /// `new` table: bucket-major slot array of indices into `addrs`.
    new_table: Vec<Option<usize>>,
    /// `tried` table, same layout.
    tried_table: Vec<Option<usize>>,
    /// Live outbound connections.
    outbound: Vec<ConnectedPeer>,
    /// Live inbound connections.
    inbound: Vec<ConnectedPeer>,
    /// Persisted anchors loaded at boot, consumed by selection first.
    boot_anchors: Vec<PeerAddr>,
    /// Deterministic selection stream state.
    draws: u64,
    /// Tick of the last feeler probe.
    last_feeler: Option<u64>,
}

impl PeerManager {
    pub fn new(cfg: PeerManagerConfig) -> PeerManager {
        PeerManager {
            cfg,
            addrs: Vec::new(),
            index: HashMap::new(),
            new_table: vec![None; cfg.new_buckets * cfg.bucket_size],
            tried_table: vec![None; cfg.tried_buckets * cfg.bucket_size],
            outbound: Vec::new(),
            inbound: Vec::new(),
            boot_anchors: Vec::new(),
            draws: 0,
            last_feeler: None,
        }
    }

    /// Boot with a persisted anchor list (see [`PeerManager::anchors`] /
    /// [`PeerManager::encode_anchors`]). Anchors are also inserted as
    /// known-good `tried` addresses. No-op when the anchor defense is off.
    pub fn with_anchors(mut self, anchors: &[PeerAddr], tick: u64) -> PeerManager {
        if !self.cfg.defenses.anchors {
            return self;
        }
        for &addr in anchors.iter().take(self.cfg.anchor_count) {
            self.insert(addr);
            self.mark_good(addr, tick);
            self.boot_anchors.push(addr);
        }
        self
    }

    pub fn config(&self) -> &PeerManagerConfig {
        &self.cfg
    }

    fn next_draw(&mut self) -> u64 {
        self.draws = self.draws.wrapping_add(1);
        splitmix64(self.cfg.seed ^ 0x5e1e_c700 ^ self.draws)
    }

    /// Bucket for `group` in the `new` table, keyed by the gossip source's
    /// netgroup as well — a single source can only reach a bounded set of
    /// buckets per target group.
    fn new_bucket(&self, addr: PeerAddr, source_group: u16) -> usize {
        let h = if self.cfg.defenses.netgroup_bucketing {
            splitmix64(
                self.cfg
                    .seed
                    .wrapping_mul(0x9e37)
                    .wrapping_add(u64::from(addr.netgroup()) << 16 | u64::from(source_group)),
            )
        } else {
            splitmix64(self.cfg.seed ^ addr.key())
        };
        (h % self.cfg.new_buckets as u64) as usize
    }

    fn tried_bucket(&self, addr: PeerAddr) -> usize {
        let h = if self.cfg.defenses.netgroup_bucketing {
            splitmix64(self.cfg.seed ^ 0x7a1e_d000 ^ u64::from(addr.netgroup()))
        } else {
            splitmix64(self.cfg.seed ^ 0x7a1e_d000 ^ addr.key())
        };
        (h % self.cfg.tried_buckets as u64) as usize
    }

    /// Slot within a bucket is always keyed by the full address, so
    /// distinct addresses spread over a bucket's slots.
    fn slot_in_bucket(&self, addr: PeerAddr, salt: u64) -> usize {
        (splitmix64(self.cfg.seed ^ salt ^ addr.key()) % self.cfg.bucket_size as u64) as usize
    }

    fn insert(&mut self, addr: PeerAddr) -> usize {
        if let Some(&i) = self.index.get(&addr) {
            return i;
        }
        let i = self.addrs.len();
        self.addrs.push(AddrInfo {
            addr,
            failures: 0,
            last_success: None,
            tried: false,
        });
        self.index.insert(addr, i);
        i
    }

    /// Ingest a gossiped address from a peer in `source_group`. Returns
    /// whether the address now occupies a `new`-table slot (an address
    /// evicted by bucket collision policy does not).
    pub fn add_addr(&mut self, addr: PeerAddr, source_group: u16) -> bool {
        counter!("addrman.gossip_received").inc();
        if self.index.get(&addr).map(|&i| self.addrs[i].tried) == Some(true) {
            return true; // already vetted; gossip cannot demote it
        }
        let bucket = self.new_bucket(addr, source_group);
        let slot = self.slot_in_bucket(addr, 0x11ed);
        let pos = bucket * self.cfg.bucket_size + slot;
        match self.new_table[pos] {
            Some(i) if self.addrs[i].addr == addr => true,
            Some(i) => {
                // Collision: the slot is taken. Replace only a stale
                // incumbent (repeated failures, never answered); otherwise
                // the newcomer is dropped — flooding cannot displace
                // healthy entries.
                let incumbent = &self.addrs[i];
                let stale = incumbent.last_success.is_none() && incumbent.failures >= 1;
                counter!("addrman.new.collisions").inc();
                if stale {
                    let j = self.insert(addr);
                    self.new_table[pos] = Some(j);
                    counter!("addrman.new.replaced").inc();
                    true
                } else {
                    false
                }
            }
            None => {
                let j = self.insert(addr);
                self.new_table[pos] = Some(j);
                counter!("addrman.new.inserted").inc();
                self.refresh_table_gauges();
                true
            }
        }
    }

    /// Record a failed connection attempt (dial failure or a peer that
    /// got itself banned). After `max_failures` consecutive failures the
    /// entry is flushed from its table — `new` entries are forgotten,
    /// `tried` entries are demoted out of the table so an address that
    /// turned hostile cannot be selected forever on past merit.
    pub fn mark_failed(&mut self, addr: PeerAddr) {
        let Some(&i) = self.index.get(&addr) else {
            return;
        };
        self.addrs[i].failures = self.addrs[i].failures.saturating_add(1);
        counter!("addrman.attempt_failures").inc();
        if self.addrs[i].failures < self.cfg.max_failures {
            return;
        }
        if self.addrs[i].tried {
            for slot in self.tried_table.iter_mut() {
                if *slot == Some(i) {
                    *slot = None;
                }
            }
            self.addrs[i].tried = false;
            counter!("addrman.tried.demoted").inc();
        } else {
            for slot in self.new_table.iter_mut() {
                if *slot == Some(i) {
                    *slot = None;
                }
            }
            counter!("addrman.new.expired").inc();
        }
        self.refresh_table_gauges();
    }

    /// Record a successful handshake: promote the address into `tried`.
    /// A bucket collision keeps the healthier incumbent (test-before-evict
    /// in spirit: the newcomer stays in `new` and may try again later).
    pub fn mark_good(&mut self, addr: PeerAddr, tick: u64) {
        let i = self.insert(addr);
        self.addrs[i].failures = 0;
        self.addrs[i].last_success = Some(tick);
        if self.addrs[i].tried {
            return;
        }
        let bucket = self.tried_bucket(addr);
        let slot = self.slot_in_bucket(addr, 0x7a1e);
        let pos = bucket * self.cfg.bucket_size + slot;
        match self.tried_table[pos] {
            Some(j) if j != i => {
                let incumbent = &self.addrs[j];
                // Keep an incumbent that has answered at least as recently
                // and is not failing; otherwise displace it back to `new`.
                let keep = incumbent.failures == 0 && incumbent.last_success >= Some(tick);
                counter!("addrman.tried.collisions").inc();
                if keep {
                    return;
                }
                self.addrs[j].tried = false;
                self.tried_table[pos] = Some(i);
            }
            _ => self.tried_table[pos] = Some(i),
        }
        self.addrs[i].tried = true;
        // Drop its `new` slots — it lives in `tried` now.
        for slot in self.new_table.iter_mut() {
            if *slot == Some(i) {
                *slot = None;
            }
        }
        counter!("addrman.tried.promoted").inc();
        self.refresh_table_gauges();
    }

    fn refresh_table_gauges(&self) {
        if ebv_telemetry::enabled() {
            let new_count = self.new_table.iter().flatten().count() as u64;
            let tried_count = self.tried_table.iter().flatten().count() as u64;
            ebv_telemetry::registry::gauge("addrman.new.count").set(new_count);
            ebv_telemetry::registry::gauge("addrman.tried.count").set(tried_count);
        }
    }

    fn refresh_slot_gauges(&self) {
        if ebv_telemetry::enabled() {
            ebv_telemetry::registry::gauge("net.peer.slot.outbound")
                .set(self.outbound.len() as u64);
            ebv_telemetry::registry::gauge("net.peer.slot.inbound").set(self.inbound.len() as u64);
        }
    }

    fn is_connected(&self, addr: PeerAddr) -> bool {
        self.outbound.iter().any(|c| c.addr == addr) || self.inbound.iter().any(|c| c.addr == addr)
    }

    /// Whether connecting out to `addr` would violate the outbound
    /// netgroup-diversity limit.
    fn diversity_blocked(&self, addr: PeerAddr) -> bool {
        self.cfg.defenses.outbound_diversity
            && self
                .outbound
                .iter()
                .any(|c| c.addr.netgroup() == addr.netgroup())
    }

    /// Pick the next outbound candidate: boot anchors first, then an
    /// even-odds draw between `tried` and `new`, walking buckets from a
    /// deterministic start until a connectable address appears. Returns
    /// `None` when no table entry is eligible.
    pub fn select_outbound(&mut self) -> Option<PeerAddr> {
        if self.outbound.len() >= self.cfg.outbound_slots {
            return None;
        }
        while let Some(a) = self.boot_anchors.pop() {
            if !self.is_connected(a) && !self.diversity_blocked(a) {
                counter!("addrman.anchor_selected").inc();
                return Some(a);
            }
        }
        // Up to a full scan's worth of draws across both tables.
        let attempts = (self.new_table.len() + self.tried_table.len()).max(16);
        for _ in 0..attempts {
            let draw = self.next_draw();
            let from_tried = draw & 1 == 0;
            let (table, len) = if from_tried {
                (&self.tried_table, self.tried_table.len())
            } else {
                (&self.new_table, self.new_table.len())
            };
            if len == 0 {
                continue;
            }
            let pos = ((draw >> 1) % len as u64) as usize;
            let Some(i) = table[pos] else { continue };
            let info = &self.addrs[i];
            if self.is_connected(info.addr) || self.diversity_blocked(info.addr) {
                continue;
            }
            return Some(info.addr);
        }
        None
    }

    /// Record an established outbound connection.
    pub fn connect_outbound(&mut self, addr: PeerAddr, tick: u64) {
        if self.is_connected(addr) {
            return;
        }
        self.outbound.push(ConnectedPeer {
            addr,
            connected_at: tick,
            last_useful: tick,
        });
        counter!("net.peer.slot.outbound_opened").inc();
        self.refresh_slot_gauges();
    }

    /// An inbound connection request from `addr`. When capacity is
    /// reached the eviction policy decides who goes.
    pub fn try_accept_inbound(&mut self, addr: PeerAddr, tick: u64) -> InboundDecision {
        if self.is_connected(addr) {
            return InboundDecision::Rejected;
        }
        if self.inbound.len() < self.cfg.inbound_slots {
            self.inbound.push(ConnectedPeer {
                addr,
                connected_at: tick,
                last_useful: tick,
            });
            counter!("net.peer.slot.inbound_opened").inc();
            self.refresh_slot_gauges();
            return InboundDecision::Accepted;
        }
        let victim = if self.cfg.defenses.eviction_protection {
            self.eviction_candidate()
        } else {
            // Naive policy: the longest-connected peer goes — churn from a
            // single attacker steadily washes honest peers out.
            self.inbound
                .iter()
                .enumerate()
                .min_by_key(|(k, c)| (c.connected_at, *k))
                .map(|(k, _)| k)
        };
        match victim {
            None => {
                counter!("net.peer.slot.inbound_rejected").inc();
                InboundDecision::Rejected
            }
            Some(k) => {
                let evicted = self.inbound.remove(k);
                self.inbound.push(ConnectedPeer {
                    addr,
                    connected_at: tick,
                    last_useful: tick,
                });
                counter!("net.peer.slot.evictions").inc();
                trace_event!(
                    "net.peer.evicted",
                    group = u64::from(evicted.addr.netgroup()),
                    connected_at = evicted.connected_at,
                    last_useful = evicted.last_useful,
                );
                self.refresh_slot_gauges();
                InboundDecision::AcceptedEvicting(evicted.addr)
            }
        }
    }

    /// The protected-classes eviction policy: shield the longest-lived
    /// and the most-recently-useful inbound peers, then evict the newest
    /// connection from the most-populated netgroup.
    fn eviction_candidate(&self) -> Option<usize> {
        let mut order: Vec<usize> = (0..self.inbound.len()).collect();
        let mut protected = vec![false; self.inbound.len()];
        // Longest uptime first.
        order.sort_by_key(|&k| (self.inbound[k].connected_at, k));
        for &k in order.iter().take(self.cfg.protect_longest) {
            protected[k] = true;
        }
        // Most recently useful first.
        order.sort_by_key(|&k| (std::cmp::Reverse(self.inbound[k].last_useful), k));
        for &k in order.iter().take(self.cfg.protect_recent) {
            protected[k] = true;
        }
        // Most-populated netgroup among the unprotected.
        let mut group_counts: HashMap<u16, usize> = HashMap::new();
        for (k, c) in self.inbound.iter().enumerate() {
            if !protected[k] {
                *group_counts.entry(c.addr.netgroup()).or_default() += 1;
            }
        }
        let (&target_group, _) = group_counts
            .iter()
            .max_by_key(|(&g, &n)| (n, std::cmp::Reverse(g)))?;
        // Newest connection in that group goes.
        (0..self.inbound.len())
            .filter(|&k| !protected[k] && self.inbound[k].addr.netgroup() == target_group)
            .max_by_key(|&k| (self.inbound[k].connected_at, k))
    }

    /// Drop a connection (either direction).
    pub fn disconnect(&mut self, addr: PeerAddr) {
        self.outbound.retain(|c| c.addr != addr);
        self.inbound.retain(|c| c.addr != addr);
        counter!("net.peer.slot.closed").inc();
        self.refresh_slot_gauges();
    }

    /// Record that a connected peer did something useful (served a valid
    /// batch) — feeds the recently-useful eviction protection.
    pub fn mark_useful(&mut self, addr: PeerAddr, tick: u64) {
        for c in self.outbound.iter_mut().chain(self.inbound.iter_mut()) {
            if c.addr == addr {
                c.last_useful = tick;
            }
        }
    }

    /// If a feeler probe is due, return a `new`-table candidate to test.
    /// The caller reports the result via [`mark_good`] / [`mark_failed`];
    /// a successful feeler is how gossiped addresses earn `tried` slots
    /// without waiting for an outbound rotation.
    ///
    /// [`mark_good`]: PeerManager::mark_good
    /// [`mark_failed`]: PeerManager::mark_failed
    pub fn feeler_candidate(&mut self, tick: u64) -> Option<PeerAddr> {
        if let Some(last) = self.last_feeler {
            if tick.saturating_sub(last) < self.cfg.feeler_interval {
                return None;
            }
        }
        self.last_feeler = Some(tick);
        let len = self.new_table.len();
        for _ in 0..len.max(16) {
            let draw = self.next_draw();
            let pos = (draw % len.max(1) as u64) as usize;
            if let Some(i) = self.new_table.get(pos).copied().flatten() {
                let addr = self.addrs[i].addr;
                if !self.is_connected(addr) {
                    counter!("addrman.feelers").inc();
                    return Some(addr);
                }
            }
        }
        None
    }

    /// The current anchor set: the longest-lived outbound peers that have
    /// actually answered us, up to `anchor_count`. Persist across restarts
    /// with [`encode_anchors`](PeerManager::encode_anchors).
    pub fn anchors(&self) -> Vec<PeerAddr> {
        let mut out: Vec<&ConnectedPeer> = self
            .outbound
            .iter()
            .filter(|c| {
                self.index
                    .get(&c.addr)
                    .is_some_and(|&i| self.addrs[i].last_success.is_some())
            })
            .collect();
        out.sort_by_key(|c| (c.connected_at, c.addr));
        out.iter()
            .take(self.cfg.anchor_count)
            .map(|c| c.addr)
            .collect()
    }

    /// Serialize an anchor list (versioned, length-prefixed).
    pub fn encode_anchors(anchors: &[PeerAddr]) -> Vec<u8> {
        let mut out = vec![b'A', b'N', b'C', 1u8, anchors.len().min(255) as u8];
        for a in anchors.iter().take(255) {
            a.encode_into(&mut out);
        }
        out
    }

    /// Decode a persisted anchor list; `None` on any structural problem
    /// (anchors are an optimization — a corrupt file means an empty list,
    /// never a crash).
    pub fn decode_anchors(bytes: &[u8]) -> Option<Vec<PeerAddr>> {
        let rest = bytes.strip_prefix(&[b'A', b'N', b'C', 1u8])?;
        let (&n, mut rest) = rest.split_first()?;
        let mut out = Vec::with_capacity(n as usize);
        for _ in 0..n {
            let (a, r) = PeerAddr::decode_from(rest)?;
            out.push(a);
            rest = r;
        }
        if !rest.is_empty() {
            return None;
        }
        Some(out)
    }

    /// Live outbound connections.
    pub fn outbound(&self) -> &[ConnectedPeer] {
        &self.outbound
    }

    /// Live inbound connections.
    pub fn inbound(&self) -> &[ConnectedPeer] {
        &self.inbound
    }

    /// Occupied slots in the `new` table.
    pub fn new_count(&self) -> usize {
        self.new_table.iter().flatten().count()
    }

    /// Occupied slots in the `tried` table.
    pub fn tried_count(&self) -> usize {
        self.tried_table.iter().flatten().count()
    }

    /// Fraction of occupied table slots (both tables) whose address
    /// satisfies `pred` — the eclipse campaign's table-poisoning metric.
    pub fn table_fraction(&self, pred: impl Fn(PeerAddr) -> bool) -> f64 {
        let mut total = 0usize;
        let mut hits = 0usize;
        for &slot in self.new_table.iter().chain(self.tried_table.iter()) {
            if let Some(i) = slot {
                total += 1;
                if pred(self.addrs[i].addr) {
                    hits += 1;
                }
            }
        }
        if total == 0 {
            0.0
        } else {
            hits as f64 / total as f64
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    fn mgr(defenses: DefensePolicy) -> PeerManager {
        PeerManager::new(PeerManagerConfig {
            defenses,
            ..PeerManagerConfig::default()
        })
    }

    #[test]
    fn netgroup_is_the_slash_16() {
        let a = PeerAddr::synthetic(0x1234, 7);
        assert_eq!(a.ip[0], 0x12);
        assert_eq!(a.ip[1], 0x34);
        assert_eq!(a.netgroup(), 0x1234);
    }

    #[test]
    fn bucketing_bounds_single_group_flood() {
        let mut m = mgr(DefensePolicy::hardened());
        // 10_000 distinct addresses, all from one netgroup, gossiped by
        // one source: they can reach at most bucket_size slots of the one
        // (group, source) bucket.
        for host in 0..10_000u16 {
            m.add_addr(PeerAddr::synthetic(42, host), 42);
        }
        assert!(
            m.new_count() <= m.config().bucket_size,
            "one group × one source must stay inside one bucket, got {}",
            m.new_count()
        );
    }

    #[test]
    fn naive_table_has_no_flood_bound() {
        let mut m = mgr(DefensePolicy::naive());
        for host in 0..10_000u16 {
            m.add_addr(PeerAddr::synthetic(42, host), 42);
        }
        // Without bucketing the same flood spreads over the whole table.
        assert!(
            m.new_count() > m.config().bucket_size * 8,
            "flood should fill the naive table, got {}",
            m.new_count()
        );
    }

    #[test]
    fn outbound_diversity_limits_one_per_group() {
        let mut m = mgr(DefensePolicy::hardened());
        for host in 0..4u16 {
            let a = PeerAddr::synthetic(9, host);
            m.add_addr(a, 1000 + host);
            m.mark_good(a, 0);
        }
        let first = PeerAddr::synthetic(9, 0);
        m.connect_outbound(first, 0);
        // Everything else shares netgroup 9 and there is nothing else, so
        // selection must refuse.
        for _ in 0..4 {
            if let Some(next) = m.select_outbound() {
                assert_ne!(
                    next.netgroup(),
                    first.netgroup(),
                    "second outbound in the same netgroup"
                );
            }
        }
    }

    #[test]
    fn selection_is_deterministic_per_seed() {
        let run = |seed: u64| {
            let mut m = PeerManager::new(PeerManagerConfig {
                seed,
                ..PeerManagerConfig::default()
            });
            for g in 0..32u16 {
                for h in 0..4u16 {
                    m.add_addr(PeerAddr::synthetic(g, h), 500 + g);
                }
            }
            let mut picks = Vec::new();
            for t in 0..6u64 {
                if let Some(a) = m.select_outbound() {
                    m.connect_outbound(a, t);
                    picks.push(a);
                }
            }
            picks
        };
        assert_eq!(run(7), run(7), "same seed, same selection");
        assert_ne!(run(7), run(8), "different seed, different selection");
    }

    #[test]
    fn mark_good_promotes_to_tried_and_clears_new() {
        let mut m = mgr(DefensePolicy::hardened());
        let a = PeerAddr::synthetic(3, 1);
        assert!(m.add_addr(a, 77));
        assert_eq!(m.new_count(), 1);
        assert_eq!(m.tried_count(), 0);
        m.mark_good(a, 5);
        assert_eq!(m.new_count(), 0);
        assert_eq!(m.tried_count(), 1);
        // Gossip cannot demote a tried entry.
        assert!(m.add_addr(a, 99));
        assert_eq!(m.tried_count(), 1);
        assert_eq!(m.new_count(), 0);
    }

    #[test]
    fn repeated_failures_expire_new_entries() {
        let mut m = mgr(DefensePolicy::hardened());
        let a = PeerAddr::synthetic(4, 1);
        m.add_addr(a, 77);
        for _ in 0..m.config().max_failures {
            m.mark_failed(a);
        }
        assert_eq!(m.new_count(), 0, "failed-out entry must leave the table");
    }

    #[test]
    fn eviction_protects_long_lived_and_recently_useful() {
        let mut m = mgr(DefensePolicy::hardened());
        // Fill inbound: 8 honest from distinct groups (old, useful), then
        // attacker connections from one group.
        for h in 0..8u16 {
            let a = PeerAddr::synthetic(100 + h, 0);
            assert_eq!(
                m.try_accept_inbound(a, u64::from(h)),
                InboundDecision::Accepted
            );
        }
        for h in 0..8u16 {
            let a = PeerAddr::synthetic(7, h);
            assert_eq!(
                m.try_accept_inbound(a, 50 + u64::from(h)),
                InboundDecision::Accepted
            );
        }
        // Honest peers keep being useful.
        for h in 0..8u16 {
            m.mark_useful(PeerAddr::synthetic(100 + h, 0), 100);
        }
        // Capacity reached; further attacker churn must evict attacker
        // connections (group 7 is the most populated unprotected group).
        for h in 8..40u16 {
            match m.try_accept_inbound(PeerAddr::synthetic(7, h), 200 + u64::from(h)) {
                InboundDecision::AcceptedEvicting(victim) => {
                    assert_eq!(victim.netgroup(), 7, "honest peer evicted by churn");
                }
                InboundDecision::Rejected => {}
                InboundDecision::Accepted => panic!("inbound was full"),
            }
        }
        let honest_left = m
            .inbound()
            .iter()
            .filter(|c| c.addr.netgroup() >= 100)
            .count();
        assert_eq!(honest_left, 8, "all honest inbound survived the churn");
    }

    #[test]
    fn naive_eviction_washes_out_old_peers() {
        let mut m = mgr(DefensePolicy::naive());
        for h in 0..16u16 {
            let group = if h < 8 { 100 + h } else { 7 };
            m.try_accept_inbound(PeerAddr::synthetic(group, h), u64::from(h));
        }
        for h in 100..200u16 {
            m.try_accept_inbound(PeerAddr::synthetic(7, h), u64::from(h));
        }
        let honest_left = m
            .inbound()
            .iter()
            .filter(|c| c.addr.netgroup() >= 100)
            .count();
        assert_eq!(honest_left, 0, "naive eviction should wash honest out");
    }

    #[test]
    fn anchors_round_trip_and_seed_selection() {
        let mut m = mgr(DefensePolicy::hardened());
        let a = PeerAddr::synthetic(1, 1);
        let b = PeerAddr::synthetic(2, 1);
        for (t, &x) in [a, b].iter().enumerate() {
            m.add_addr(x, x.netgroup());
            m.mark_good(x, t as u64);
            m.connect_outbound(x, t as u64);
        }
        let anchors = m.anchors();
        assert_eq!(anchors, vec![a, b]);
        let bytes = PeerManager::encode_anchors(&anchors);
        assert_eq!(PeerManager::decode_anchors(&bytes).unwrap(), anchors);
        assert_eq!(PeerManager::decode_anchors(&bytes[..3]), None);
        let mut corrupt = bytes.clone();
        corrupt[3] = 9; // unknown version
        assert_eq!(PeerManager::decode_anchors(&corrupt), None);

        // A restarted manager selects the anchors first.
        let mut m2 = mgr(DefensePolicy::hardened()).with_anchors(&anchors, 0);
        let first = m2.select_outbound().unwrap();
        m2.connect_outbound(first, 0);
        let second = m2.select_outbound().unwrap();
        let mut picked = vec![first, second];
        picked.sort();
        assert_eq!(picked, vec![a, b], "anchors selected before table draws");
    }

    #[test]
    fn feeler_cadence_respects_interval() {
        let mut m = mgr(DefensePolicy::hardened());
        for g in 0..8u16 {
            m.add_addr(PeerAddr::synthetic(g, 0), 900);
        }
        assert!(m.feeler_candidate(0).is_some());
        assert!(m.feeler_candidate(1).is_none(), "interval not elapsed");
        assert!(m.feeler_candidate(m.config().feeler_interval).is_some());
    }

    #[test]
    fn table_fraction_reports_poisoning() {
        let mut m = mgr(DefensePolicy::hardened());
        for g in 0..10u16 {
            m.add_addr(PeerAddr::synthetic(g, 0), g);
        }
        let f = m.table_fraction(|a| a.netgroup() < 5);
        assert!(f > 0.0 && f < 1.0);
    }
}
