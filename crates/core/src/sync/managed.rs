//! Managed sync: peer selection through the [`PeerManager`] instead of a
//! fixed peer list.
//!
//! [`sync_multi`](super::sync_multi) takes whatever peers it is handed and
//! judges them per-connection. [`sync_managed`] closes the loop at the
//! topology layer: each *session* asks the [`PeerManager`] for an outbound
//! set (anchors first, netgroup-diverse, tried/new mix), dials it through
//! a [`PeerFactory`], runs the unchanged driver over the connections, and
//! feeds the per-peer verdicts back into the manager — banned peers are
//! marked failed and disconnected, contributing peers are promoted to
//! `tried` and become anchor candidates. When an entire session fails
//! (every selected peer banned — the eclipse case mid-attack), the
//! manager re-selects and the next session runs against a fresh set, so a
//! single poisoned selection round is survivable as long as the tables
//! still hold an honest address.

use super::driver::{sync_multi, SyncConfig, SyncReport};
use super::node::ValidatingNode;
use super::peer::Transport;
use super::peer_manager::{PeerAddr, PeerManager};
use super::SyncError;
use ebv_telemetry::{counter, trace_event};

/// Dials transports for addresses the [`PeerManager`] selects. The `id`
/// is the driver-facing peer id the transport must report from
/// [`Transport::id`]. Returning `None` means the dial failed (node down,
/// fictitious address from an addr flood) — the manager records the
/// failure.
pub trait PeerFactory {
    type Peer: Transport;
    fn connect(&mut self, addr: PeerAddr, id: usize) -> Option<Self::Peer>;
}

impl<P: Transport, F: FnMut(PeerAddr, usize) -> Option<P>> PeerFactory for F {
    type Peer = P;
    fn connect(&mut self, addr: PeerAddr, id: usize) -> Option<P> {
        self(addr, id)
    }
}

/// Knobs for the managed driver.
#[derive(Clone, Copy, Debug)]
pub struct ManagedConfig {
    /// Per-session driver configuration.
    pub sync: SyncConfig,
    /// How many selection→sync sessions to attempt before giving up.
    pub max_sessions: u32,
}

impl Default for ManagedConfig {
    fn default() -> Self {
        ManagedConfig {
            sync: SyncConfig::default(),
            max_sessions: 4,
        }
    }
}

impl ManagedConfig {
    /// Test timings (sub-millisecond backoff, 50 ms request timeout).
    pub fn fast_test() -> ManagedConfig {
        ManagedConfig {
            sync: SyncConfig::fast_test(),
            ..ManagedConfig::default()
        }
    }
}

/// What a managed sync did, beyond the final session's [`SyncReport`].
#[derive(Clone, Debug)]
pub struct ManagedReport {
    /// The successful session's driver report.
    pub sync: SyncReport,
    /// Sessions attempted (1 = first selection succeeded).
    pub sessions: u32,
    /// Address dialed for each peer id of the final session.
    pub peer_addrs: Vec<PeerAddr>,
    /// Anchor set as of completion — persist with
    /// [`PeerManager::encode_anchors`] and feed to
    /// [`PeerManager::with_anchors`] on restart.
    pub anchors: Vec<PeerAddr>,
}

/// Sync `node` using peers selected by `manager` and dialed by `factory`.
/// `tick` is the manager's logical clock at session start; each session
/// advances it by one.
pub fn sync_managed<N, F>(
    node: &mut N,
    manager: &mut PeerManager,
    factory: &mut F,
    cfg: &ManagedConfig,
    mut tick: u64,
) -> Result<ManagedReport, SyncError<N::Error>>
where
    N: ValidatingNode,
    F: PeerFactory,
{
    // Root of the managed-sync trace: each session (and the sync.session
    // span inside it) nests under this, so a whole multi-session run
    // reads as one tree in `ebv-cli trace-tree`.
    let _root_span = ebv_telemetry::context::SpanGuard::enter_root("sync.managed", cfg.sync.seed);
    let mut last_failure: Option<SyncError<N::Error>> = None;
    for session in 1..=cfg.max_sessions {
        tick += 1;
        let _session_span = ebv_telemetry::child_span!("sync.managed_session", session);
        // Feeler probe: test one gossiped address per session so `tried`
        // keeps filling with addresses that actually answer.
        if let Some(addr) = manager.feeler_candidate(tick) {
            match factory.connect(addr, usize::MAX) {
                Some(mut peer) => {
                    peer.finish();
                    manager.mark_good(addr, tick);
                }
                None => manager.mark_failed(addr),
            }
        }
        // Fill the outbound set for this session.
        let mut peers: Vec<F::Peer> = Vec::new();
        let mut addrs: Vec<PeerAddr> = Vec::new();
        while manager.outbound().len() < manager.config().outbound_slots {
            let Some(addr) = manager.select_outbound() else {
                break;
            };
            match factory.connect(addr, peers.len()) {
                Some(peer) => {
                    manager.connect_outbound(addr, tick);
                    peers.push(peer);
                    addrs.push(addr);
                }
                None => manager.mark_failed(addr),
            }
        }
        if peers.is_empty() {
            counter!("net.peer.slot.select_empty").inc();
            return Err(last_failure.unwrap_or_else(|| {
                SyncError::Internal("peer manager selected no connectable address".to_string())
            }));
        }
        counter!("sync.managed.sessions").inc();
        trace_event!(
            "sync.managed_session",
            session = session,
            peers = addrs.len(),
        );
        let outcome = sync_multi(node, peers, &cfg.sync);
        tick += 1;
        match outcome {
            Ok(sync) => {
                for stats in &sync.peers {
                    let addr = addrs[stats.id];
                    if stats.banned {
                        manager.mark_failed(addr);
                        manager.disconnect(addr);
                    } else if stats.blocks_accepted > 0 {
                        manager.mark_good(addr, tick);
                        manager.mark_useful(addr, tick);
                    }
                }
                return Ok(ManagedReport {
                    sync,
                    sessions: session,
                    peer_addrs: addrs,
                    anchors: manager.anchors(),
                });
            }
            Err(SyncError::AllPeersFailed { last, .. }) => {
                // The whole selection failed; every dialed peer is suspect.
                // Record the failures and let the next session re-select.
                for &addr in &addrs {
                    manager.mark_failed(addr);
                    manager.disconnect(addr);
                }
                counter!("sync.managed.session_failures").inc();
                last_failure = last.map(|b| *b);
            }
            Err(e) => {
                for &addr in &addrs {
                    manager.disconnect(addr);
                }
                return Err(e);
            }
        }
    }
    Err(last_failure
        .unwrap_or_else(|| SyncError::Internal("managed sync exhausted sessions".to_string())))
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::super::peer::{BlockSource, PeerHandle};
    use super::super::peer_manager::{DefensePolicy, PeerManagerConfig};
    use super::*;
    use crate::ebv_node::{EbvConfig, EbvNode};
    use crate::intermediary::Intermediary;
    use crate::tidy::EbvBlock;
    use ebv_workload::{ChainGenerator, GeneratorParams};

    fn chain() -> Vec<EbvBlock> {
        let blocks = ChainGenerator::new(GeneratorParams::tiny(10, 77)).generate();
        Intermediary::new(0)
            .convert_chain(&blocks)
            .expect("conversion")
    }

    /// Serves garbage for every request.
    struct Garbage;
    impl BlockSource for Garbage {
        fn serve(&mut self, _start: u32, _count: u32) -> Vec<Vec<u8>> {
            vec![vec![0xff; 10]]
        }
    }

    #[test]
    fn managed_sync_reaches_tip_and_promotes_contributors() {
        let blocks = chain();
        let genesis = blocks[0].clone();
        let tip = blocks.len() as u32 - 1;
        let honest = PeerAddr::synthetic(1, 1);
        let mut manager = PeerManager::new(PeerManagerConfig {
            outbound_slots: 2,
            ..PeerManagerConfig::default()
        });
        manager.add_addr(honest, 1);
        let mut factory = |addr: PeerAddr, id: usize| {
            (addr == honest).then(|| PeerHandle::spawn(id, blocks.clone()))
        };
        let mut node = EbvNode::new(&genesis, EbvConfig::default());
        let report = sync_managed(
            &mut node,
            &mut manager,
            &mut factory,
            &ManagedConfig::fast_test(),
            0,
        )
        .expect("managed sync");
        assert_eq!(node.tip_height(), tip);
        assert_eq!(report.sessions, 1);
        assert_eq!(report.peer_addrs, vec![honest]);
        assert_eq!(manager.tried_count(), 1, "contributor promoted to tried");
        assert_eq!(report.anchors, vec![honest]);
    }

    #[test]
    fn failed_session_reselects_and_recovers() {
        let blocks = chain();
        let genesis = blocks[0].clone();
        let tip = blocks.len() as u32 - 1;
        // One garbage address in `tried` (it "answered" before), one honest
        // address only reachable via the new table. Diversity forces
        // distinct netgroups.
        let bad = PeerAddr::synthetic(10, 1);
        let honest = PeerAddr::synthetic(20, 1);
        let mut manager = PeerManager::new(PeerManagerConfig {
            outbound_slots: 1,
            feeler_interval: u64::MAX, // keep feelers out of this test
            ..PeerManagerConfig::default()
        });
        manager.add_addr(bad, 10);
        manager.mark_good(bad, 0);
        manager.add_addr(honest, 20);
        let blocks2 = blocks.clone();
        let mut factory = move |addr: PeerAddr, id: usize| {
            if addr == honest {
                Some(PeerHandle::spawn(id, blocks2.clone()))
            } else {
                Some(PeerHandle::spawn(id, Garbage))
            }
        };
        let mut node = EbvNode::new(&genesis, EbvConfig::default());
        let report = sync_managed(
            &mut node,
            &mut manager,
            &mut factory,
            &ManagedConfig {
                max_sessions: 8,
                ..ManagedConfig::fast_test()
            },
            0,
        )
        .expect("recovers through re-selection");
        assert_eq!(node.tip_height(), tip);
        assert!(report.sessions >= 1);
        assert_eq!(report.peer_addrs.last(), Some(&honest));
    }

    #[test]
    fn no_connectable_address_is_an_error_not_a_hang() {
        let genesis = chain()[0].clone();
        let mut manager = PeerManager::new(PeerManagerConfig::default());
        let mut factory = |_addr: PeerAddr, _id: usize| -> Option<PeerHandle> { None };
        let mut node = EbvNode::new(&genesis, EbvConfig::default());
        let err = sync_managed(
            &mut node,
            &mut manager,
            &mut factory,
            &ManagedConfig::fast_test(),
            0,
        )
        .expect_err("empty manager cannot sync");
        assert!(matches!(err, SyncError::Internal(_)), "got {err:?}");
    }
}
