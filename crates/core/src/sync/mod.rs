//! Fault-tolerant block synchronization — the paper's §VI-A measurement
//! path ("the synchronization process from the intermediary node to a
//! destination node is exactly the one we make measurements"), hardened
//! for hostile peer sets.
//!
//! The module splits into:
//!
//! * [`peer`] — the wire protocol ([`Request`]/[`Response`] with echoed
//!   request ids), the [`BlockSource`] trait, and the threaded
//!   [`PeerHandle`] plumbing;
//! * [`node`] — the [`ValidatingNode`] abstraction `EbvNode` and
//!   `BaselineNode` both implement, so every driver here has exactly one
//!   implementation instead of per-node copy-paste twins;
//! * [`driver`] — the multi-peer [`sync_multi`] driver: timeouts, scoring,
//!   capped exponential backoff with deterministic jitter, bans, failover,
//!   and fork resolution;
//! * [`reorg`] — the invariant-checked unwind/rewind engine ([`reorg_to`]);
//! * [`fault`] — the deterministic fault-injection harness
//!   ([`FaultyPeer`], [`FaultSchedule`]) that makes every failure mode a
//!   reproducible test case;
//! * [`wire`] — the byte-level frame codec (length-prefixed, checksummed,
//!   versioned; untrusted lengths never drive allocation);
//! * [`tcp_peer`] — the localhost-TCP [`Transport`]: framed streams with
//!   per-read deadlines, handshake, reconnect, and the [`serve_blocks`]
//!   server for any [`BlockSource`];
//! * [`netfault`] — byte-level adversary servers (slow-loris, oversized
//!   frames, mid-frame disconnects, garbage, truncation, churn).
//!
//! The driver is generic over [`Transport`], so the same scoring, ban,
//! backoff, and fork machinery runs over in-process channels
//! ([`PeerHandle`]) and real TCP ([`TcpPeer`]) unchanged.
//!
//! The single-peer [`sync_ebv`] / [`sync_baseline`] entry points used by
//! the experiments are thin wrappers over the same driver.
#![deny(clippy::unwrap_used)]

pub mod driver;
pub mod fault;
pub mod managed;
pub mod netfault;
pub mod node;
pub mod peer;
pub mod peer_manager;
pub mod reorg;
pub mod tcp_peer;
pub mod wire;

pub use driver::{sync_multi, PeerStats, SyncConfig, SyncReport, SYNC_BATCH};
pub use fault::{Fault, FaultSchedule, FaultyPeer};
pub use managed::{sync_managed, ManagedConfig, ManagedReport, PeerFactory};
pub use netfault::{serve_adversary, AdversarialServer, WireAdversary};
pub use node::ValidatingNode;
pub use peer::{
    spawn_source, BlockSource, PeerHandle, Request, RequestOutcome, Response, Transport,
};
pub use peer_manager::{
    ConnectedPeer, DefensePolicy, InboundDecision, PeerAddr, PeerManager, PeerManagerConfig,
};
pub use reorg::{reorg_to, ReorgError};
pub use tcp_peer::{serve_blocks, TcpPeer, TcpServer, WireConfig};
pub use wire::{WireError, WireMessage, DEFAULT_MAX_FRAME, MAX_BLOCKS_PER_FRAME};

use crate::baseline_node::{BaselineError, BaselineNode};
use crate::ebv_node::{EbvError, EbvNode};
use ebv_primitives::encode::DecodeError;

/// Why a sync run gave up. `E` is the destination node's validation error
/// type.
#[derive(Debug)]
pub enum SyncError<E> {
    /// A peer's channel closed mid-request (its thread exited).
    SourceClosed { peer: usize, height: u32 },
    /// A served block failed to decode.
    Decode {
        peer: usize,
        height: u32,
        /// The peer's consecutive-failure count when this happened.
        attempts: u32,
        err: DecodeError,
    },
    /// A served block failed validation.
    Validation {
        peer: usize,
        height: u32,
        attempts: u32,
        err: E,
    },
    /// A request timed out.
    Stalled {
        peer: usize,
        height: u32,
        attempts: u32,
    },
    /// The peer violated the wire protocol at the byte level (TCP
    /// transport only): malformed frames, oversized claims, checksum
    /// mismatches, trickled reads, failed handshakes.
    Wire {
        peer: usize,
        height: u32,
        attempts: u32,
        err: WireError,
    },
    /// A peer served a branch that did not win: stale tip, equivocation,
    /// broken linkage, or an invalid block mid-branch.
    ForkRejected {
        peer: usize,
        height: u32,
        attempts: u32,
        reason: String,
    },
    /// Every peer is banned or closed; sync cannot progress. `last` is
    /// the failure that eliminated the final peer.
    AllPeersFailed {
        total: usize,
        banned: usize,
        height: u32,
        rounds: u32,
        last: Option<Box<SyncError<E>>>,
    },
    /// The driver's round backstop tripped (adversarial peer set).
    RoundLimit { height: u32, rounds: u32 },
    /// Node state became suspect (failed unwind); nothing sane to do.
    Internal(String),
}

impl<E: std::fmt::Debug> std::fmt::Display for SyncError<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SyncError::SourceClosed { peer, height } => write!(
                f,
                "peer {peer}: channel closed while requesting height {height}"
            ),
            SyncError::Decode {
                peer,
                height,
                attempts,
                err,
            } => write!(
                f,
                "peer {peer}: block at height {height} failed to decode \
                 (failure {attempts} in a row): {err:?}"
            ),
            SyncError::Validation {
                peer,
                height,
                attempts,
                err,
            } => write!(
                f,
                "peer {peer}: block at height {height} failed validation \
                 (failure {attempts} in a row): {err:?}"
            ),
            SyncError::Stalled {
                peer,
                height,
                attempts,
            } => write!(
                f,
                "peer {peer}: request for height {height} timed out \
                 (failure {attempts} in a row)"
            ),
            SyncError::Wire {
                peer,
                height,
                attempts,
                err,
            } => write!(
                f,
                "peer {peer}: wire protocol violation requesting height {height} \
                 (failure {attempts} in a row): {err} [{}]",
                err.slug()
            ),
            SyncError::ForkRejected {
                peer,
                height,
                attempts,
                reason,
            } => write!(
                f,
                "peer {peer}: branch offered near height {height} rejected \
                 (failure {attempts} in a row): {reason}"
            ),
            SyncError::AllPeersFailed {
                total,
                banned,
                height,
                rounds,
                last,
            } => {
                write!(
                    f,
                    "sync stuck at height {height} after {rounds} rounds: all \
                     {total} peer(s) unusable ({banned} banned)"
                )?;
                if let Some(last) = last {
                    write!(f, "; last failure: {last}")?;
                }
                Ok(())
            }
            SyncError::RoundLimit { height, rounds } => write!(
                f,
                "sync aborted at height {height}: round backstop ({rounds} rounds) tripped"
            ),
            SyncError::Internal(msg) => write!(f, "internal sync error: {msg}"),
        }
    }
}

impl<E: std::fmt::Debug> std::error::Error for SyncError<E> {}

/// Sync an [`EbvNode`] from a single peer with default settings. Returns
/// the number of blocks connected.
pub fn sync_ebv(node: &mut EbvNode, peer: PeerHandle) -> Result<u32, SyncError<EbvError>> {
    sync_multi(node, vec![peer], &SyncConfig::default()).map(|r| r.blocks_connected)
}

/// Sync a [`BaselineNode`] from a single peer with default settings.
/// Returns the number of blocks connected.
pub fn sync_baseline(
    node: &mut BaselineNode,
    peer: PeerHandle,
) -> Result<u32, SyncError<BaselineError>> {
    sync_multi(node, vec![peer], &SyncConfig::default()).map(|r| r.blocks_connected)
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::baseline_node::BaselineConfig;
    use crate::ebv_node::EbvConfig;
    use crate::intermediary::Intermediary;
    use crate::tidy::EbvBlock;
    use ebv_chain::Block;
    use ebv_store::{KvStore, StoreConfig, UtxoSet};
    use ebv_workload::{ChainGenerator, GeneratorParams};
    use std::time::Duration;

    fn chains() -> (Vec<Block>, Vec<EbvBlock>) {
        let blocks = ChainGenerator::new(GeneratorParams::tiny(10, 77)).generate();
        let ebv = Intermediary::new(0)
            .convert_chain(&blocks)
            .expect("conversion");
        (blocks, ebv)
    }

    fn new_baseline(genesis: &Block) -> BaselineNode {
        let utxos = UtxoSet::new(KvStore::open(StoreConfig::with_budget(4 << 20)).expect("store"));
        BaselineNode::new(genesis, utxos, BaselineConfig::default()).expect("boot")
    }

    #[test]
    fn ebv_node_syncs_from_threaded_source() {
        let (_, ebv_blocks) = chains();
        let genesis = ebv_blocks[0].clone();
        let tip = ebv_blocks.len() as u32 - 1;
        let peer = spawn_source(ebv_blocks);
        let mut node = EbvNode::new(&genesis, EbvConfig::default());
        let synced = sync_ebv(&mut node, peer).expect("sync completes");
        assert_eq!(synced, tip);
        assert_eq!(node.tip_height(), tip);
    }

    #[test]
    fn baseline_node_syncs_from_threaded_source() {
        let (blocks, _) = chains();
        let genesis = blocks[0].clone();
        let tip = blocks.len() as u32 - 1;
        let peer = spawn_source(blocks);
        let mut node = new_baseline(&genesis);
        let synced = sync_baseline(&mut node, peer).expect("sync completes");
        assert_eq!(synced, tip);
        assert_eq!(node.tip_height(), tip);
    }

    /// A peer that serves garbage for every request.
    struct Garbage;
    impl BlockSource for Garbage {
        fn serve(&mut self, _start: u32, _count: u32) -> Vec<Vec<u8>> {
            vec![vec![0xff; 10]]
        }
    }

    #[test]
    fn corrupt_single_source_gets_banned() {
        let (_, ebv_blocks) = chains();
        let genesis = ebv_blocks[0].clone();
        let peer = spawn_source(Garbage);
        let mut node = EbvNode::new(&genesis, EbvConfig::default());
        match sync_ebv(&mut node, peer) {
            Err(SyncError::AllPeersFailed {
                banned: 1, last, ..
            }) => {
                assert!(
                    matches!(last.as_deref(), Some(SyncError::Decode { peer: 0, .. })),
                    "last failure should be a decode error, got {last:?}"
                );
            }
            other => panic!("expected all-peers-failed, got {other:?}"),
        }
    }

    #[test]
    fn invalid_block_bans_peer_but_keeps_valid_prefix() {
        let (_, mut ebv_blocks) = chains();
        let genesis = ebv_blocks[0].clone();
        // Corrupt block 3's merkle root: decodes fine, fails validation.
        ebv_blocks[3].header.merkle_root = ebv_primitives::hash::sha256d(b"evil");
        let peer = spawn_source(ebv_blocks);
        let mut node = EbvNode::new(&genesis, EbvConfig::default());
        match sync_ebv(&mut node, peer) {
            Err(SyncError::AllPeersFailed { last, .. }) => {
                assert!(
                    matches!(
                        last.as_deref(),
                        Some(SyncError::Validation {
                            peer: 0,
                            height: 3,
                            err: EbvError::MerkleMismatch,
                            ..
                        })
                    ),
                    "unexpected last failure: {last:?}"
                );
            }
            other => panic!("expected all-peers-failed, got {other:?}"),
        }
        assert_eq!(node.tip_height(), 2, "synced up to the corruption");
    }

    #[test]
    fn batching_covers_long_chains() {
        // More blocks than one batch.
        let blocks = ChainGenerator::new(GeneratorParams {
            txs_per_block: ebv_workload::Ramp::flat(0.0),
            ..GeneratorParams::tiny(2 * SYNC_BATCH, 5)
        })
        .generate();
        let ebv_blocks = Intermediary::new(0)
            .convert_chain(&blocks)
            .expect("conversion");
        let genesis = ebv_blocks[0].clone();
        let tip = ebv_blocks.len() as u32 - 1;
        let peer = spawn_source(ebv_blocks);
        let mut node = EbvNode::new(&genesis, EbvConfig::default());
        assert_eq!(sync_ebv(&mut node, peer).expect("sync"), tip);
    }

    #[test]
    fn honest_minority_carries_sync() {
        // Three garbage peers and one honest peer: the driver must ban the
        // garbage and finish from the honest one.
        let (_, ebv_blocks) = chains();
        let genesis = ebv_blocks[0].clone();
        let tip = ebv_blocks.len() as u32 - 1;
        let peers = vec![
            PeerHandle::spawn(0, Garbage),
            PeerHandle::spawn(1, Garbage),
            PeerHandle::spawn(2, Garbage),
            PeerHandle::spawn(3, ebv_blocks),
        ];
        let mut node = EbvNode::new(&genesis, EbvConfig::default());
        let report = sync_multi(&mut node, peers, &SyncConfig::fast_test()).expect("sync");
        assert_eq!(node.tip_height(), tip);
        assert_eq!(report.blocks_connected, tip);
        assert!(report.peers[0].banned && report.peers[1].banned && report.peers[2].banned);
        assert!(!report.peers[3].banned);
        assert_eq!(report.peers[3].blocks_accepted, tip);
    }

    #[test]
    fn stalled_peer_fails_over_to_honest_one() {
        let (_, ebv_blocks) = chains();
        let genesis = ebv_blocks[0].clone();
        let tip = ebv_blocks.len() as u32 - 1;
        let staller = FaultyPeer::new(ebv_blocks.clone(), FaultSchedule::cycle(vec![Fault::Stall]))
            .with_stall(Duration::from_millis(120));
        let peers = vec![
            PeerHandle::spawn(0, staller),
            PeerHandle::spawn(1, ebv_blocks),
        ];
        let mut node = EbvNode::new(&genesis, EbvConfig::default());
        let report = sync_multi(&mut node, peers, &SyncConfig::fast_test()).expect("sync");
        assert_eq!(node.tip_height(), tip);
        assert!(report.peers[0].stalls >= 1, "the stall must be recorded");
    }

    #[test]
    fn error_messages_name_peer_height_and_attempts() {
        let err: SyncError<EbvError> = SyncError::Stalled {
            peer: 7,
            height: 42,
            attempts: 3,
        };
        let msg = err.to_string();
        assert!(msg.contains("peer 7"), "{msg}");
        assert!(msg.contains("height 42"), "{msg}");
        assert!(msg.contains("failure 3"), "{msg}");

        let outer: SyncError<EbvError> = SyncError::AllPeersFailed {
            total: 4,
            banned: 4,
            height: 10,
            rounds: 55,
            last: Some(Box::new(err)),
        };
        let msg = outer.to_string();
        assert!(msg.contains("all 4 peer(s)"), "{msg}");
        assert!(msg.contains("last failure: peer 7"), "{msg}");
    }

    #[test]
    fn fault_schedules_are_deterministic() {
        let draw = |seed| {
            let mut s = FaultSchedule::seeded(seed, 40, vec![Fault::Corrupt, Fault::Stall]);
            (0..64).map(|_| s.next_fault()).collect::<Vec<_>>()
        };
        assert_eq!(draw(9), draw(9), "same seed, same schedule");
        assert_ne!(draw(9), draw(10), "different seed, different schedule");
        let faults = draw(9).iter().filter(|f| !matches!(f, Fault::None)).count();
        assert!(
            faults > 10 && faults < 50,
            "rate should be near 40%: {faults}"
        );
    }
}
