//! The byte-level wire protocol: length-prefixed, checksummed, versioned
//! frames.
//!
//! Every message travels as one frame:
//!
//! ```text
//! offset  size  field
//! 0       4     magic        "EBW1" — catches cross-protocol garbage
//! 4       2     version      little-endian; this codec speaks version 1
//! 6       1     kind         message discriminant (see [`WireMessage`])
//! 7       1     reserved     must be zero
//! 8       4     length       payload bytes, little-endian, ≤ max_frame
//! 12      4     checksum     first 4 bytes of sha256d(payload)
//! 16      —     payload      `length` bytes, per-kind encoding
//! ```
//!
//! The header is fixed-size, so a reader always knows exactly how many
//! bytes it needs next, and the length field is validated against the
//! configured frame cap *before* any payload byte is read — an untrusted
//! length prefix never drives an allocation. Payload assembly itself is
//! incremental ([`PayloadBuf`]): the buffer starts at a small constant and
//! grows only as verified bytes actually arrive, so a peer that *claims*
//! megabytes but trickles (or disconnects) never pins more memory than it
//! has sent.
//!
//! This module is pure codec — no sockets, no clocks — so every parsing
//! decision is unit-testable byte by byte. The socket plumbing (deadlines,
//! handshakes, reconnection) lives in [`super::tcp_peer`].

use ebv_primitives::encode::{write_var_bytes, write_varint, DecodeError, Reader};
use ebv_primitives::hash::{sha256d, Hash256};

/// Frame magic: rejects peers speaking a different protocol outright.
pub const WIRE_MAGIC: [u8; 4] = *b"EBW1";
/// Protocol version spoken (and required) by this codec.
pub const WIRE_VERSION: u16 = 1;
/// Fixed frame-header size in bytes.
pub const FRAME_HEADER_LEN: usize = 16;
/// Default hard cap on a frame's payload length. Far above any batch the
/// sync driver requests, far below anything that could hurt.
pub const DEFAULT_MAX_FRAME: u32 = 8 << 20;
/// Hard cap on blocks per [`WireMessage::Blocks`] frame, independent of
/// the byte cap.
pub const MAX_BLOCKS_PER_FRAME: u64 = 4096;
/// Payload buffers start at (and grow by) this much; a claimed length
/// never pre-allocates more. See [`PayloadBuf`].
pub const PAYLOAD_CHUNK: usize = 64 << 10;

/// Why a frame (or a handshake) was rejected. Each variant maps to a
/// stable reason slug — the same string appears in peer-score trace
/// events, ban explanations, and the `net.frame.errors` counter labels.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The first four bytes were not [`WIRE_MAGIC`].
    BadMagic,
    /// The peer speaks a protocol version we do not.
    Version(u16),
    /// Unknown message discriminant.
    UnknownKind(u8),
    /// The reserved header byte was non-zero.
    ReservedBits,
    /// The claimed payload length exceeds the configured cap.
    FrameTooLarge { claimed: u32, max: u32 },
    /// The payload does not hash to the header's checksum.
    ChecksumMismatch,
    /// The payload failed its per-kind decode (truncated, non-canonical,
    /// trailing bytes, over-count).
    Payload(DecodeError),
    /// A syntactically valid message arrived where the protocol state
    /// machine does not allow it (e.g. no `Hello` during the handshake).
    UnexpectedMessage {
        expected: &'static str,
        got: &'static str,
    },
    /// The peer's `Hello` names a different network (genesis mismatch).
    WrongNetwork,
    /// The connection ended mid-frame (or mid-exchange): EOF or reset
    /// while bytes were still owed.
    TruncatedFrame,
    /// Bytes arrived, but too slowly: the frame deadline expired with the
    /// frame still incomplete (the slow-loris signature).
    SlowRead,
    /// The handshake did not complete within its deadline.
    HandshakeTimeout,
    /// Any other socket-level failure.
    Io(std::io::ErrorKind),
}

impl WireError {
    /// Stable slug for scoring/telemetry/ban traces.
    pub fn slug(&self) -> &'static str {
        match self {
            WireError::BadMagic => "bad-magic",
            WireError::Version(_) => "bad-version",
            WireError::UnknownKind(_) => "unknown-kind",
            WireError::ReservedBits => "reserved-bits",
            WireError::FrameTooLarge { .. } => "frame-too-large",
            WireError::ChecksumMismatch => "checksum-mismatch",
            WireError::Payload(_) => "payload-decode",
            WireError::UnexpectedMessage { .. } => "unexpected-message",
            WireError::WrongNetwork => "wrong-network",
            WireError::TruncatedFrame => "truncated-frame",
            WireError::SlowRead => "slow-read",
            WireError::HandshakeTimeout => "handshake-timeout",
            WireError::Io(_) => "io-error",
        }
    }
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::BadMagic => write!(f, "bad frame magic"),
            WireError::Version(v) => write!(f, "unsupported wire version {v}"),
            WireError::UnknownKind(k) => write!(f, "unknown message kind {k:#04x}"),
            WireError::ReservedBits => write!(f, "non-zero reserved header byte"),
            WireError::FrameTooLarge { claimed, max } => {
                write!(f, "claimed frame length {claimed} exceeds cap {max}")
            }
            WireError::ChecksumMismatch => write!(f, "payload checksum mismatch"),
            WireError::Payload(e) => write!(f, "payload decode failed: {e}"),
            WireError::UnexpectedMessage { expected, got } => {
                write!(f, "expected {expected}, got {got}")
            }
            WireError::WrongNetwork => write!(f, "peer is on a different network"),
            WireError::TruncatedFrame => write!(f, "connection ended mid-frame"),
            WireError::SlowRead => write!(f, "frame deadline expired mid-frame (slow read)"),
            WireError::HandshakeTimeout => write!(f, "handshake timed out"),
            WireError::Io(kind) => write!(f, "socket error: {kind:?}"),
        }
    }
}

impl std::error::Error for WireError {}

/// First 4 bytes of sha256d over the payload.
pub fn checksum(payload: &[u8]) -> [u8; 4] {
    let h = sha256d(payload);
    [h.0[0], h.0[1], h.0[2], h.0[3]]
}

/// One protocol message. The `kind` byte in the frame header selects the
/// payload encoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireMessage {
    /// Handshake: each side sends exactly one `Hello` first. `network` is
    /// the genesis header hash — peers on different chains part ways here.
    Hello { network: Hash256, start_height: u32 },
    /// Ask for up to `count` blocks starting at `start_height`. `id` is
    /// echoed back so stale replies are discarded.
    GetBlocks {
        id: u64,
        start_height: u32,
        count: u32,
    },
    /// Serialized blocks, in height order.
    Blocks { id: u64, blocks: Vec<Vec<u8>> },
    /// Nothing at or above the requested height.
    Exhausted { id: u64 },
    /// Polite close.
    Bye,
}

const KIND_HELLO: u8 = 0x01;
const KIND_GET_BLOCKS: u8 = 0x02;
const KIND_BLOCKS: u8 = 0x03;
const KIND_EXHAUSTED: u8 = 0x04;
const KIND_BYE: u8 = 0x05;

impl WireMessage {
    /// The frame-header discriminant for this message.
    pub fn kind(&self) -> u8 {
        match self {
            WireMessage::Hello { .. } => KIND_HELLO,
            WireMessage::GetBlocks { .. } => KIND_GET_BLOCKS,
            WireMessage::Blocks { .. } => KIND_BLOCKS,
            WireMessage::Exhausted { .. } => KIND_EXHAUSTED,
            WireMessage::Bye => KIND_BYE,
        }
    }

    /// Human name (for `UnexpectedMessage` diagnostics).
    pub fn name(&self) -> &'static str {
        match self {
            WireMessage::Hello { .. } => "hello",
            WireMessage::GetBlocks { .. } => "get-blocks",
            WireMessage::Blocks { .. } => "blocks",
            WireMessage::Exhausted { .. } => "exhausted",
            WireMessage::Bye => "bye",
        }
    }

    fn encode_payload(&self, out: &mut Vec<u8>) {
        match self {
            WireMessage::Hello {
                network,
                start_height,
            } => {
                out.extend_from_slice(&network.0);
                out.extend_from_slice(&start_height.to_le_bytes());
            }
            WireMessage::GetBlocks {
                id,
                start_height,
                count,
            } => {
                out.extend_from_slice(&id.to_le_bytes());
                out.extend_from_slice(&start_height.to_le_bytes());
                out.extend_from_slice(&count.to_le_bytes());
            }
            WireMessage::Blocks { id, blocks } => {
                out.extend_from_slice(&id.to_le_bytes());
                write_varint(out, blocks.len() as u64);
                for b in blocks {
                    write_var_bytes(out, b);
                }
            }
            WireMessage::Exhausted { id } => out.extend_from_slice(&id.to_le_bytes()),
            WireMessage::Bye => {}
        }
    }

    /// Decode a payload for `kind`, requiring every byte to be consumed.
    /// Preallocation is clamped to constants; counts are bounded.
    pub fn decode_payload(kind: u8, payload: &[u8]) -> Result<WireMessage, WireError> {
        let mut r = Reader::new(payload);
        let msg = match kind {
            KIND_HELLO => WireMessage::Hello {
                network: Hash256(
                    r.read_bytes(32)
                        .map_err(WireError::Payload)?
                        .try_into()
                        .map_err(|_| WireError::Payload(DecodeError::UnexpectedEnd))?,
                ),
                start_height: r.read_u32().map_err(WireError::Payload)?,
            },
            KIND_GET_BLOCKS => WireMessage::GetBlocks {
                id: r.read_u64().map_err(WireError::Payload)?,
                start_height: r.read_u32().map_err(WireError::Payload)?,
                count: r.read_u32().map_err(WireError::Payload)?,
            },
            KIND_BLOCKS => {
                let id = r.read_u64().map_err(WireError::Payload)?;
                let count = r.read_len().map_err(WireError::Payload)?;
                if count as u64 > MAX_BLOCKS_PER_FRAME {
                    return Err(WireError::Payload(DecodeError::OversizedLength(
                        count as u64,
                    )));
                }
                // Clamp preallocation: the claimed count is untrusted until
                // the bytes backing each entry have actually been read.
                let mut blocks = Vec::with_capacity(count.min(64));
                for _ in 0..count {
                    blocks.push(r.read_var_bytes().map_err(WireError::Payload)?);
                }
                WireMessage::Blocks { id, blocks }
            }
            KIND_EXHAUSTED => WireMessage::Exhausted {
                id: r.read_u64().map_err(WireError::Payload)?,
            },
            KIND_BYE => WireMessage::Bye,
            other => return Err(WireError::UnknownKind(other)),
        };
        if r.remaining() != 0 {
            return Err(WireError::Payload(DecodeError::TrailingBytes(
                r.remaining(),
            )));
        }
        Ok(msg)
    }
}

/// A parsed frame header. [`FrameHeader::parse`] enforces every header
/// invariant — including the length cap — before a single payload byte is
/// read.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameHeader {
    pub kind: u8,
    pub len: u32,
    pub checksum: [u8; 4],
}

impl FrameHeader {
    /// Validate and parse a raw header against `max_frame`.
    pub fn parse(bytes: &[u8; FRAME_HEADER_LEN], max_frame: u32) -> Result<FrameHeader, WireError> {
        if bytes[0..4] != WIRE_MAGIC {
            return Err(WireError::BadMagic);
        }
        let version = u16::from_le_bytes([bytes[4], bytes[5]]);
        if version != WIRE_VERSION {
            return Err(WireError::Version(version));
        }
        let kind = bytes[6];
        if !(KIND_HELLO..=KIND_BYE).contains(&kind) {
            return Err(WireError::UnknownKind(kind));
        }
        if bytes[7] != 0 {
            return Err(WireError::ReservedBits);
        }
        let len = u32::from_le_bytes([bytes[8], bytes[9], bytes[10], bytes[11]]);
        if len > max_frame {
            return Err(WireError::FrameTooLarge {
                claimed: len,
                max: max_frame,
            });
        }
        Ok(FrameHeader {
            kind,
            len,
            checksum: [bytes[12], bytes[13], bytes[14], bytes[15]],
        })
    }
}

/// Serialize `msg` into one complete frame (header + payload).
pub fn encode_frame(msg: &WireMessage) -> Vec<u8> {
    let mut payload = Vec::new();
    msg.encode_payload(&mut payload);
    let mut out = Vec::with_capacity(FRAME_HEADER_LEN + payload.len());
    out.extend_from_slice(&WIRE_MAGIC);
    out.extend_from_slice(&WIRE_VERSION.to_le_bytes());
    out.push(msg.kind());
    out.push(0); // reserved
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&checksum(&payload));
    out.extend_from_slice(&payload);
    out
}

/// Decode one complete frame from the front of `buf`; returns the message
/// and the bytes consumed. A buffer shorter than the frame it announces is
/// [`WireError::TruncatedFrame`] — the streaming reader would keep
/// waiting, a buffer decode cannot.
pub fn decode_frame(buf: &[u8], max_frame: u32) -> Result<(WireMessage, usize), WireError> {
    if buf.len() < FRAME_HEADER_LEN {
        return Err(WireError::TruncatedFrame);
    }
    let mut hdr = [0u8; FRAME_HEADER_LEN];
    hdr.copy_from_slice(&buf[..FRAME_HEADER_LEN]);
    let header = FrameHeader::parse(&hdr, max_frame)?;
    let total = FRAME_HEADER_LEN + header.len as usize;
    if buf.len() < total {
        return Err(WireError::TruncatedFrame);
    }
    let payload = &buf[FRAME_HEADER_LEN..total];
    if checksum(payload) != header.checksum {
        return Err(WireError::ChecksumMismatch);
    }
    let msg = WireMessage::decode_payload(header.kind, payload)?;
    Ok((msg, total))
}

/// Incrementally assembled payload whose allocation tracks *received*
/// bytes, not claimed length: capacity starts at [`PAYLOAD_CHUNK`] (or the
/// claimed length, whichever is smaller) and grows chunk by chunk as bytes
/// land. [`PayloadBuf::capacity`] is observable so tests can assert the
/// bound.
pub struct PayloadBuf {
    buf: Vec<u8>,
    /// Total bytes the frame header promised.
    expected: usize,
}

impl PayloadBuf {
    /// Start assembling a payload of `expected` bytes (already validated
    /// against the frame cap by [`FrameHeader::parse`]).
    pub fn new(expected: usize) -> PayloadBuf {
        PayloadBuf {
            buf: Vec::with_capacity(expected.min(PAYLOAD_CHUNK)),
            expected,
        }
    }

    /// Bytes still owed by the peer.
    pub fn remaining(&self) -> usize {
        self.expected - self.buf.len()
    }

    /// Whether every promised byte has arrived.
    pub fn is_complete(&self) -> bool {
        self.remaining() == 0
    }

    /// Whether any byte has arrived.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Hand out the next writable window (at most one chunk), to be filled
    /// by a socket read; commit with [`PayloadBuf::advance`].
    pub fn window(&mut self) -> &mut [u8] {
        let want = self.remaining().min(PAYLOAD_CHUNK);
        let start = self.buf.len();
        self.buf.resize(start + want, 0);
        &mut self.buf[start..]
    }

    /// Keep only `n` bytes of the window just filled.
    pub fn advance(&mut self, filled_window_len: usize, n: usize) {
        debug_assert!(n <= filled_window_len);
        let keep = self.buf.len() - (filled_window_len - n);
        self.buf.truncate(keep);
    }

    /// The completed payload.
    pub fn into_inner(self) -> Vec<u8> {
        debug_assert!(self.is_complete());
        self.buf
    }

    /// Current buffer capacity — bounded by received bytes + one chunk.
    pub fn capacity(&self) -> usize {
        self.buf.capacity()
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    fn all_messages() -> Vec<WireMessage> {
        vec![
            WireMessage::Hello {
                network: sha256d(b"net"),
                start_height: 9,
            },
            WireMessage::GetBlocks {
                id: 7,
                start_height: 100,
                count: 128,
            },
            WireMessage::Blocks {
                id: 8,
                blocks: vec![vec![1, 2, 3], vec![], vec![0xff; 300]],
            },
            WireMessage::Exhausted { id: 9 },
            WireMessage::Bye,
        ]
    }

    #[test]
    fn frames_round_trip() {
        for msg in all_messages() {
            let frame = encode_frame(&msg);
            let (decoded, used) = decode_frame(&frame, DEFAULT_MAX_FRAME).unwrap();
            assert_eq!(decoded, msg);
            assert_eq!(used, frame.len());
        }
    }

    #[test]
    fn truncation_at_every_boundary_is_detected() {
        for msg in all_messages() {
            let frame = encode_frame(&msg);
            for cut in 0..frame.len() {
                let err = decode_frame(&frame[..cut], DEFAULT_MAX_FRAME).unwrap_err();
                // Short buffers are truncation; a cut can never panic or
                // succeed.
                assert!(
                    matches!(err, WireError::TruncatedFrame),
                    "cut at {cut}: {err:?}"
                );
            }
        }
    }

    #[test]
    fn oversized_claim_rejected_before_payload() {
        let mut frame = encode_frame(&WireMessage::Bye);
        frame[8..12].copy_from_slice(&(DEFAULT_MAX_FRAME + 1).to_le_bytes());
        assert!(matches!(
            decode_frame(&frame, DEFAULT_MAX_FRAME),
            Err(WireError::FrameTooLarge { .. })
        ));
        // And the header parse alone — what the streaming reader does —
        // needs no payload bytes at all to reject it.
        let mut hdr = [0u8; FRAME_HEADER_LEN];
        hdr.copy_from_slice(&frame[..FRAME_HEADER_LEN]);
        assert!(matches!(
            FrameHeader::parse(&hdr, DEFAULT_MAX_FRAME),
            Err(WireError::FrameTooLarge { .. })
        ));
    }

    #[test]
    fn checksum_flip_detected() {
        let msg = WireMessage::Exhausted { id: 3 };
        let mut frame = encode_frame(&msg);
        frame[13] ^= 0x40;
        assert_eq!(
            decode_frame(&frame, DEFAULT_MAX_FRAME).unwrap_err(),
            WireError::ChecksumMismatch
        );
    }

    #[test]
    fn payload_bit_flip_detected_by_checksum() {
        let msg = WireMessage::Blocks {
            id: 1,
            blocks: vec![vec![7; 40]],
        };
        let mut frame = encode_frame(&msg);
        let n = frame.len();
        frame[n - 1] ^= 0x01;
        assert_eq!(
            decode_frame(&frame, DEFAULT_MAX_FRAME).unwrap_err(),
            WireError::ChecksumMismatch
        );
    }

    #[test]
    fn blocks_over_count_rejected() {
        // Hand-build a Blocks payload claiming more entries than the cap.
        let mut payload = Vec::new();
        payload.extend_from_slice(&1u64.to_le_bytes());
        write_varint(&mut payload, MAX_BLOCKS_PER_FRAME + 1);
        let err = WireMessage::decode_payload(KIND_BLOCKS, &payload).unwrap_err();
        assert!(matches!(
            err,
            WireError::Payload(DecodeError::OversizedLength(_))
        ));
    }

    #[test]
    fn payload_buf_caps_allocation_under_huge_claims() {
        // A peer claims the full frame cap but sends only a trickle: the
        // buffer must never balloon to the claim.
        let mut p = PayloadBuf::new(DEFAULT_MAX_FRAME as usize);
        assert!(p.capacity() <= PAYLOAD_CHUNK);
        let w = p.window().len();
        p.advance(w, 10); // 10 bytes arrived
        assert_eq!(p.remaining(), DEFAULT_MAX_FRAME as usize - 10);
        assert!(p.capacity() <= 2 * PAYLOAD_CHUNK, "cap {}", p.capacity());
    }

    #[test]
    fn payload_buf_assembles_exact_bytes() {
        let data: Vec<u8> = (0..200_000u32).map(|i| i as u8).collect();
        let mut p = PayloadBuf::new(data.len());
        let mut fed = 0;
        while !p.is_complete() {
            let w = p.window();
            let n = w.len().min(1_733); // odd-sized "reads"
            w[..n].copy_from_slice(&data[fed..fed + n]);
            let wlen = w.len();
            p.advance(wlen, n);
            fed += n;
        }
        assert_eq!(p.into_inner(), data);
    }
}
