//! The [`ValidatingNode`] abstraction the sync drivers operate over.
//!
//! `EbvNode` and `BaselineNode` expose the same chain-manipulation surface
//! — connect a block to the tip, disconnect the tip, look up a header hash
//! — differing only in block format and error type. The trait captures
//! exactly that surface, so the multi-peer driver and the reorg engine
//! have a single implementation instead of the copy-paste twins the old
//! flat `sync.rs` carried.

use crate::baseline_node::{BaselineError, BaselineNode};
use crate::ebv_node::{EbvError, EbvNode};
use crate::tidy::EbvBlock;
use ebv_chain::Block;
use ebv_primitives::encode::{Decodable, DecodeError};
use ebv_primitives::hash::Hash256;

/// A chain-state machine the sync drivers can push blocks into and, when a
/// better fork appears, unwind.
pub trait ValidatingNode {
    /// The block format this node validates.
    type Block;
    /// The node's validation error type.
    type Error: std::fmt::Debug;

    /// Decode one block from its wire bytes.
    fn decode_block(bytes: &[u8]) -> Result<Self::Block, DecodeError>;
    /// The block's header hash.
    fn block_hash(block: &Self::Block) -> Hash256;
    /// The block's `prev_block_hash` link.
    fn block_prev_hash(block: &Self::Block) -> Hash256;

    /// Height of the best block.
    fn tip_height(&self) -> u32;
    /// Hash of the best block's header.
    fn tip_hash(&self) -> Hash256;
    /// Header hash at `height`, if within the chain.
    fn header_hash_at(&self, height: u32) -> Option<Hash256>;

    /// Validate `block` and, if valid, connect it to the tip.
    fn connect_block(&mut self, block: &Self::Block) -> Result<(), Self::Error>;
    /// Disconnect the tip block, restoring the previous state. `Ok(None)`
    /// means only genesis remains; `Err` is an internal-consistency
    /// failure (corrupt undo data, store I/O).
    fn disconnect_tip_block(&mut self) -> Result<Option<u32>, Self::Error>;
    /// Whether `err` means "the block does not extend the tip" — the
    /// signal the driver uses to tell a competing fork from an invalid
    /// block.
    fn is_not_on_tip(err: &Self::Error) -> bool;
    /// Cheap internal-consistency check, asserted by the reorg engine
    /// after every unwind step.
    fn check_invariants(&self) -> Result<(), String>;
}

impl ValidatingNode for EbvNode {
    type Block = EbvBlock;
    type Error = EbvError;

    fn decode_block(bytes: &[u8]) -> Result<EbvBlock, DecodeError> {
        EbvBlock::from_bytes(bytes)
    }

    fn block_hash(block: &EbvBlock) -> Hash256 {
        block.header.hash()
    }

    fn block_prev_hash(block: &EbvBlock) -> Hash256 {
        block.header.prev_block_hash
    }

    fn tip_height(&self) -> u32 {
        EbvNode::tip_height(self)
    }

    fn tip_hash(&self) -> Hash256 {
        EbvNode::tip_hash(self)
    }

    fn header_hash_at(&self, height: u32) -> Option<Hash256> {
        self.header_at(height).map(|h| h.hash())
    }

    fn connect_block(&mut self, block: &EbvBlock) -> Result<(), EbvError> {
        self.process_block(block).map(|_| ())
    }

    fn disconnect_tip_block(&mut self) -> Result<Option<u32>, EbvError> {
        self.disconnect_tip()
    }

    fn is_not_on_tip(err: &EbvError) -> bool {
        matches!(err, EbvError::NotOnTip)
    }

    fn check_invariants(&self) -> Result<(), String> {
        EbvNode::check_invariants(self)
    }
}

impl ValidatingNode for BaselineNode {
    type Block = Block;
    type Error = BaselineError;

    fn decode_block(bytes: &[u8]) -> Result<Block, DecodeError> {
        Block::from_bytes(bytes)
    }

    fn block_hash(block: &Block) -> Hash256 {
        block.header.hash()
    }

    fn block_prev_hash(block: &Block) -> Hash256 {
        block.header.prev_block_hash
    }

    fn tip_height(&self) -> u32 {
        BaselineNode::tip_height(self)
    }

    fn tip_hash(&self) -> Hash256 {
        BaselineNode::tip_hash(self)
    }

    fn header_hash_at(&self, height: u32) -> Option<Hash256> {
        self.header_at(height).map(|h| h.hash())
    }

    fn connect_block(&mut self, block: &Block) -> Result<(), BaselineError> {
        self.process_block(block).map(|_| ())
    }

    fn disconnect_tip_block(&mut self) -> Result<Option<u32>, BaselineError> {
        self.disconnect_tip()
    }

    fn is_not_on_tip(err: &BaselineError) -> bool {
        matches!(err, BaselineError::NotOnTip)
    }

    fn check_invariants(&self) -> Result<(), String> {
        BaselineNode::check_invariants(self)
    }
}
