//! Deterministic fault injection for sync testing.
//!
//! [`FaultyPeer`] wraps any [`BlockSource`] and perturbs its responses
//! according to a [`FaultSchedule`] — either a fixed cyclic pattern or a
//! seeded pseudo-random draw — so every failure mode the multi-peer
//! driver must survive is a reproducible test case, not a flake. The
//! schedule advances once per request, whatever the fault.

use super::peer::BlockSource;
use std::time::Duration;

/// One injected failure mode.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Fault {
    /// Serve honestly.
    None,
    /// Flip bytes inside the first served block (decode failure).
    Corrupt,
    /// Cut the first served block short and drop the rest of the batch
    /// (truncated payload — also a decode failure, different shape).
    Truncate,
    /// Sleep before responding, long enough to trip the driver's request
    /// timeout (the reply then arrives stale and is dropped by id).
    Stall,
    /// Serve blocks from `offset` heights above the requested start — the
    /// batch will not attach and fork resolution will find no fork.
    WrongHeight { offset: u32 },
    /// Serve from the alternative chain (equivocating tip). Falls back to
    /// claiming exhaustion if the peer has no fork chain configured.
    Equivocate,
    /// Claim there is nothing at or above the requested height (stale
    /// tip) regardless of the real chain.
    StaleTip,
}

enum ScheduleKind {
    /// Repeat a fixed pattern, one entry per request.
    Cycle(Vec<Fault>),
    /// Seeded draw per request: with probability `rate_percent`% pick
    /// uniformly from `faults`, otherwise serve honestly.
    Seeded {
        seed: u64,
        rate_percent: u64,
        faults: Vec<Fault>,
    },
}

/// A deterministic per-request fault plan.
pub struct FaultSchedule {
    kind: ScheduleKind,
    /// Requests answered so far — the schedule position.
    counter: u64,
}

/// SplitMix64 — a tiny, dependency-free deterministic mixer.
pub(crate) fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl FaultSchedule {
    /// Always serve honestly.
    pub fn honest() -> FaultSchedule {
        FaultSchedule::cycle(vec![Fault::None])
    }

    /// Repeat `pattern` forever, one entry per request. Empty patterns
    /// degrade to honest service.
    pub fn cycle(pattern: Vec<Fault>) -> FaultSchedule {
        FaultSchedule {
            kind: ScheduleKind::Cycle(if pattern.is_empty() {
                vec![Fault::None]
            } else {
                pattern
            }),
            counter: 0,
        }
    }

    /// Per-request seeded draw: with probability `rate_percent`% inject a
    /// fault picked uniformly from `faults`, otherwise serve honestly.
    /// The same seed always yields the same request-indexed schedule.
    pub fn seeded(seed: u64, rate_percent: u64, faults: Vec<Fault>) -> FaultSchedule {
        FaultSchedule {
            kind: ScheduleKind::Seeded {
                seed,
                rate_percent: rate_percent.min(100),
                faults: if faults.is_empty() {
                    vec![Fault::None]
                } else {
                    faults
                },
            },
            counter: 0,
        }
    }

    /// The fault for the next request; advances the schedule.
    pub fn next_fault(&mut self) -> Fault {
        let i = self.counter;
        self.counter += 1;
        match &self.kind {
            ScheduleKind::Cycle(pattern) => pattern[(i % pattern.len() as u64) as usize],
            ScheduleKind::Seeded {
                seed,
                rate_percent,
                faults,
            } => {
                let draw = splitmix64(seed ^ i.wrapping_mul(0x2545_f491_4f6c_dd1d));
                if draw % 100 < *rate_percent {
                    faults[(splitmix64(draw) % faults.len() as u64) as usize]
                } else {
                    Fault::None
                }
            }
        }
    }
}

/// A [`BlockSource`] wrapper injecting faults per a deterministic
/// schedule.
pub struct FaultyPeer<S> {
    inner: S,
    /// The competing chain served under [`Fault::Equivocate`].
    fork: Option<S>,
    schedule: FaultSchedule,
    /// How long a [`Fault::Stall`] sleeps before answering. Configure it
    /// comfortably above the driver's request timeout.
    stall: Duration,
    /// Seed for deterministic corruption byte positions.
    corrupt_seed: u64,
}

impl<S: BlockSource> FaultyPeer<S> {
    pub fn new(inner: S, schedule: FaultSchedule) -> FaultyPeer<S> {
        FaultyPeer {
            inner,
            fork: None,
            schedule,
            stall: Duration::from_millis(200),
            corrupt_seed: 0xebb,
        }
    }

    /// Provide the competing chain served under [`Fault::Equivocate`].
    pub fn with_fork(mut self, fork: S) -> FaultyPeer<S> {
        self.fork = Some(fork);
        self
    }

    /// Override the stall duration.
    pub fn with_stall(mut self, stall: Duration) -> FaultyPeer<S> {
        self.stall = stall;
        self
    }
}

impl<S: BlockSource> BlockSource for FaultyPeer<S> {
    fn serve(&mut self, start_height: u32, count: u32) -> Vec<Vec<u8>> {
        match self.schedule.next_fault() {
            Fault::None => self.inner.serve(start_height, count),
            Fault::Corrupt => {
                let mut batch = self.inner.serve(start_height, count);
                if let Some(first) = batch.first_mut() {
                    if !first.is_empty() {
                        // Deterministic flip positions: never the same byte
                        // twice, always inside the block.
                        let len = first.len() as u64;
                        for k in 0..3u64 {
                            let pos = (splitmix64(self.corrupt_seed ^ start_height as u64 ^ k)
                                % len) as usize;
                            first[pos] ^= 0xa5;
                        }
                    }
                }
                batch
            }
            Fault::Truncate => {
                let mut batch = self.inner.serve(start_height, count);
                batch.truncate(1);
                if let Some(first) = batch.first_mut() {
                    let half = first.len() / 2;
                    first.truncate(half.max(1));
                }
                batch
            }
            Fault::Stall => {
                std::thread::sleep(self.stall);
                self.inner.serve(start_height, count)
            }
            Fault::WrongHeight { offset } => {
                self.inner.serve(start_height.saturating_add(offset), count)
            }
            Fault::Equivocate => match self.fork.as_mut() {
                Some(fork) => fork.serve(start_height, count),
                None => Vec::new(),
            },
            Fault::StaleTip => Vec::new(),
        }
    }
}
