//! Initial Block Download (IBD) drivers.
//!
//! Replays a chain through a validator node, recording per-period phase
//! breakdowns — the measurement loop behind the paper's Figs. 5 and 17.

use crate::baseline_node::{BaselineError, BaselineNode};
use crate::ebv_node::{EbvError, EbvNode};
use crate::metrics::{BaselineBreakdown, EbvBreakdown};
use crate::sync::{sync_multi, PeerHandle, SyncConfig, SyncError, SyncReport, ValidatingNode};
use crate::tidy::EbvBlock;
use ebv_chain::Block;
use ebv_telemetry::Stopwatch;
use std::time::Duration;

/// Stats for one IBD period of the baseline node.
#[derive(Clone, Copy, Debug, Default)]
pub struct BaselinePeriod {
    /// First block height in the period (inclusive).
    pub start_height: u32,
    /// Last block height in the period (inclusive).
    pub end_height: u32,
    /// Summed validation breakdown over the period.
    pub breakdown: BaselineBreakdown,
    /// Wall-clock time for the period (includes block decode/apply glue).
    pub wall: Duration,
}

/// Stats for one IBD period of the EBV node.
#[derive(Clone, Copy, Debug, Default)]
pub struct EbvPeriod {
    pub start_height: u32,
    pub end_height: u32,
    pub breakdown: EbvBreakdown,
    pub wall: Duration,
}

/// Replay `blocks` (heights `1..`) into a freshly booted baseline node,
/// reporting one entry per `period_len` blocks.
pub fn baseline_ibd(
    node: &mut BaselineNode,
    blocks: &[Block],
    period_len: usize,
) -> Result<Vec<BaselinePeriod>, BaselineError> {
    assert!(period_len > 0);
    let mut periods = Vec::new();
    for chunk in blocks.chunks(period_len) {
        let start_height = node.tip_height() + 1;
        let wall_start = Stopwatch::start();
        let mut breakdown = BaselineBreakdown::default();
        for block in chunk {
            breakdown += node.process_block(block)?;
        }
        periods.push(BaselinePeriod {
            start_height,
            end_height: node.tip_height(),
            breakdown,
            wall: wall_start.elapsed(),
        });
    }
    Ok(periods)
}

/// Replay `blocks` (heights `1..`) into a freshly booted EBV node.
pub fn ebv_ibd(
    node: &mut EbvNode,
    blocks: &[EbvBlock],
    period_len: usize,
) -> Result<Vec<EbvPeriod>, EbvError> {
    assert!(period_len > 0);
    let mut periods = Vec::new();
    for chunk in blocks.chunks(period_len) {
        let start_height = node.tip_height() + 1;
        let wall_start = Stopwatch::start();
        let mut breakdown = EbvBreakdown::default();
        for block in chunk {
            breakdown += node.process_block(block)?;
        }
        periods.push(EbvPeriod {
            start_height,
            end_height: node.tip_height(),
            breakdown,
            wall: wall_start.elapsed(),
        });
    }
    Ok(periods)
}

/// What a sync-driven IBD run did and cost.
#[derive(Debug)]
pub struct SyncedIbd {
    /// Blocks connected (reorg reconnects included).
    pub blocks_connected: u32,
    /// Wall-clock time for the whole download, decode and validation
    /// included — the paper's two-machine measurement, with peer hand-off
    /// on real threads.
    pub wall: Duration,
    /// The driver's accounting: per-peer stats, reorgs, rounds.
    pub report: SyncReport,
}

/// Run IBD through the fault-tolerant sync subsystem instead of the
/// in-process replay loop: blocks arrive serialized over peer channels
/// from one or more (possibly faulty) peers, and the driver's scoring,
/// failover and reorg machinery is on the measured path. Works for either
/// node type via [`ValidatingNode`].
pub fn synced_ibd<N: ValidatingNode>(
    node: &mut N,
    peers: Vec<PeerHandle>,
    cfg: &SyncConfig,
) -> Result<SyncedIbd, SyncError<N::Error>> {
    let wall_start = Stopwatch::start();
    let report = sync_multi(node, peers, cfg)?;
    Ok(SyncedIbd {
        blocks_connected: report.blocks_connected,
        wall: wall_start.elapsed(),
        report,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline_node::BaselineConfig;
    use crate::ebv_node::EbvConfig;
    use crate::intermediary::Intermediary;
    use ebv_chain::{build_block, coinbase_tx};
    use ebv_primitives::hash::Hash256;
    use ebv_script::Script;
    use ebv_store::{KvStore, StoreConfig, UtxoSet};

    fn empty_chain(n: usize) -> Vec<Block> {
        let genesis = build_block(
            Hash256::ZERO,
            coinbase_tx(0, Script::new(), Vec::new()),
            Vec::new(),
            0,
            0,
        );
        let mut blocks = vec![genesis];
        for h in 1..=n as u32 {
            let prev = blocks.last().expect("genesis").header.hash();
            blocks.push(build_block(
                prev,
                coinbase_tx(h, Script::new(), Vec::new()),
                Vec::new(),
                h,
                0,
            ));
        }
        blocks
    }

    #[test]
    fn baseline_ibd_periods() {
        let chain = empty_chain(10);
        let utxos = UtxoSet::new(KvStore::open(StoreConfig::with_budget(1 << 20)).unwrap());
        let mut node = BaselineNode::new(&chain[0], utxos, BaselineConfig::default()).unwrap();
        let periods = baseline_ibd(&mut node, &chain[1..], 4).unwrap();
        assert_eq!(periods.len(), 3); // 4 + 4 + 2
        assert_eq!(periods[0].start_height, 1);
        assert_eq!(periods[0].end_height, 4);
        assert_eq!(periods[2].end_height, 10);
        assert_eq!(node.tip_height(), 10);
    }

    #[test]
    fn synced_ibd_reaches_tip_and_reports() {
        let chain = empty_chain(8);
        let mut inter = Intermediary::new(0);
        let ebv_chain = inter.convert_chain(&chain).unwrap();
        let tip = ebv_chain.len() as u32 - 1;
        let mut node = EbvNode::new(&ebv_chain[0], EbvConfig::default());
        let peers = vec![crate::sync::spawn_source(ebv_chain)];
        let run = synced_ibd(&mut node, peers, &SyncConfig::default()).unwrap();
        assert_eq!(run.blocks_connected, tip);
        assert_eq!(node.tip_height(), tip);
        assert!(run.wall > Duration::ZERO);
        assert_eq!(run.report.peers[0].blocks_accepted, tip);
    }

    #[test]
    fn ebv_ibd_periods() {
        let chain = empty_chain(6);
        let mut inter = Intermediary::new(0);
        let ebv_chain = inter.convert_chain(&chain).unwrap();
        let mut node = EbvNode::new(&ebv_chain[0], EbvConfig::default());
        let periods = ebv_ibd(&mut node, &ebv_chain[1..], 3).unwrap();
        assert_eq!(periods.len(), 2);
        assert_eq!(node.tip_height(), 6);
        let total: Duration = periods.iter().map(|p| p.wall).sum();
        assert!(total > Duration::ZERO);
    }
}
