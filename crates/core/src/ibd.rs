//! Initial Block Download (IBD) drivers.
//!
//! Replays a chain through a validator node, recording per-period phase
//! breakdowns — the measurement loop behind the paper's Figs. 5 and 17 —
//! and the snapshot-parallel out-of-order variant: checkpoints every K
//! blocks ([`build_checkpoints`]), contiguous intervals replayed on worker
//! threads from their starting checkpoint, and a stitcher that accepts the
//! assembled chain only where each interval's final state is byte-identical
//! to its successor's starting snapshot ([`parallel_ibd`]).

use crate::baseline_node::{BaselineError, BaselineNode};
use crate::bitvec::{BitVectorSet, BitVectorSnapshot, UvError};
use crate::ebv_node::{EbvConfig, EbvError, EbvNode, SnapshotError};
use crate::metrics::{BaselineBreakdown, EbvBreakdown};
use crate::sync::{sync_multi, PeerHandle, SyncConfig, SyncError, SyncReport, ValidatingNode};
use crate::tidy::EbvBlock;
use ebv_chain::Block;
use ebv_primitives::encode::Encodable;
use ebv_telemetry::{counter, histogram, trace_event, Stopwatch};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// A failed IBD run with everything measured before the failure.
///
/// The replay loops used to discard all completed periods on a mid-chunk
/// error, leaving a multi-hour run undiagnosable; now the periods gathered
/// so far (including the partially filled one the failing block fell in)
/// ride along with the error.
#[derive(Clone, Debug)]
pub struct IbdFailure<P, E> {
    /// Periods completed before the failure, the in-progress one last.
    pub completed: Vec<P>,
    /// Height of the block that failed validation.
    pub failed_at: u32,
    /// The underlying validation error.
    pub error: E,
}

impl<P, E: std::fmt::Display> std::fmt::Display for IbdFailure<P, E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "IBD failed at height {} after {} completed periods: {}",
            self.failed_at,
            self.completed.len(),
            self.error
        )
    }
}

impl<P, E> std::error::Error for IbdFailure<P, E>
where
    P: std::fmt::Debug,
    E: std::error::Error + 'static,
{
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.error)
    }
}

/// Stats for one IBD period of the baseline node.
#[derive(Clone, Copy, Debug, Default)]
pub struct BaselinePeriod {
    /// First block height in the period (inclusive).
    pub start_height: u32,
    /// Last block height in the period (inclusive).
    pub end_height: u32,
    /// Summed validation breakdown over the period.
    pub breakdown: BaselineBreakdown,
    /// Wall-clock time for the period (includes block decode/apply glue).
    pub wall: Duration,
}

/// Stats for one IBD period of the EBV node.
#[derive(Clone, Copy, Debug, Default)]
pub struct EbvPeriod {
    pub start_height: u32,
    pub end_height: u32,
    pub breakdown: EbvBreakdown,
    pub wall: Duration,
}

/// Replay `blocks` (heights `1..`) into a freshly booted baseline node,
/// reporting one entry per `period_len` blocks. On a validation failure
/// the periods measured so far are returned inside the error.
pub fn baseline_ibd(
    node: &mut BaselineNode,
    blocks: &[Block],
    period_len: usize,
) -> Result<Vec<BaselinePeriod>, IbdFailure<BaselinePeriod, BaselineError>> {
    assert!(period_len > 0);
    let mut periods = Vec::new();
    for chunk in blocks.chunks(period_len) {
        let start_height = node.tip_height() + 1;
        let wall_start = Stopwatch::start();
        let mut breakdown = BaselineBreakdown::default();
        for block in chunk {
            match node.process_block(block) {
                Ok(b) => breakdown += b,
                Err(error) => {
                    let failed_at = node.tip_height() + 1;
                    if node.tip_height() + 1 > start_height {
                        periods.push(BaselinePeriod {
                            start_height,
                            end_height: node.tip_height(),
                            breakdown,
                            wall: wall_start.elapsed(),
                        });
                    }
                    return Err(IbdFailure {
                        completed: periods,
                        failed_at,
                        error,
                    });
                }
            }
        }
        periods.push(BaselinePeriod {
            start_height,
            end_height: node.tip_height(),
            breakdown,
            wall: wall_start.elapsed(),
        });
        ebv_telemetry::health::heartbeat("ibd.period.progress");
    }
    Ok(periods)
}

/// Replay `blocks` (heights `1..`) into a freshly booted EBV node. On a
/// validation failure the periods measured so far are returned inside the
/// error.
pub fn ebv_ibd(
    node: &mut EbvNode,
    blocks: &[EbvBlock],
    period_len: usize,
) -> Result<Vec<EbvPeriod>, IbdFailure<EbvPeriod, EbvError>> {
    assert!(period_len > 0);
    let mut periods = Vec::new();
    for chunk in blocks.chunks(period_len) {
        let start_height = node.tip_height() + 1;
        let wall_start = Stopwatch::start();
        let mut breakdown = EbvBreakdown::default();
        for block in chunk {
            match node.process_block(block) {
                Ok(b) => breakdown += b,
                Err(error) => {
                    let failed_at = node.tip_height() + 1;
                    if node.tip_height() + 1 > start_height {
                        periods.push(EbvPeriod {
                            start_height,
                            end_height: node.tip_height(),
                            breakdown,
                            wall: wall_start.elapsed(),
                        });
                    }
                    return Err(IbdFailure {
                        completed: periods,
                        failed_at,
                        error,
                    });
                }
            }
        }
        periods.push(EbvPeriod {
            start_height,
            end_height: node.tip_height(),
            breakdown,
            wall: wall_start.elapsed(),
        });
        ebv_telemetry::health::heartbeat("ibd.period.progress");
    }
    Ok(periods)
}

/// What a sync-driven IBD run did and cost.
#[derive(Debug)]
pub struct SyncedIbd {
    /// Blocks connected (reorg reconnects included).
    pub blocks_connected: u32,
    /// Wall-clock time for the whole download, decode and validation
    /// included — the paper's two-machine measurement, with peer hand-off
    /// on real threads.
    pub wall: Duration,
    /// The driver's accounting: per-peer stats, reorgs, rounds.
    pub report: SyncReport,
}

/// Run IBD through the fault-tolerant sync subsystem instead of the
/// in-process replay loop: blocks arrive serialized over peer channels
/// from one or more (possibly faulty) peers, and the driver's scoring,
/// failover and reorg machinery is on the measured path. Works for either
/// node type via [`ValidatingNode`].
pub fn synced_ibd<N: ValidatingNode>(
    node: &mut N,
    peers: Vec<PeerHandle>,
    cfg: &SyncConfig,
) -> Result<SyncedIbd, SyncError<N::Error>> {
    let wall_start = Stopwatch::start();
    let report = sync_multi(node, peers, cfg)?;
    Ok(SyncedIbd {
        blocks_connected: report.blocks_connected,
        wall: wall_start.elapsed(),
        report,
    })
}

// ---------------------------------------------------------------------
// Snapshot-parallel out-of-order IBD
// ---------------------------------------------------------------------

/// Why [`build_checkpoints`] could not walk the chain.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CheckpointError {
    /// A block's output count is outside what a bit vector can hold
    /// (`1..=65536`).
    Malformed { height: u32, outputs: u32 },
    /// A spend coordinate was already spent or out of range — the chain
    /// is not internally consistent even structurally.
    Inconsistent { height: u32, err: UvError },
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{self:?}")
    }
}

impl std::error::Error for CheckpointError {}

/// Walk the chain *structurally* — insert each block's vector, apply each
/// input's claimed spend coordinate — and emit a [`BitVectorSnapshot`]
/// every `every` blocks (at heights `every`, `2*every`, …, excluding the
/// tip, where no interval would start).
///
/// No EV/UV/SV runs here: this is the cheap pass that mirrors what an
/// untrusted snapshot provider (a peer, a cache) would hand us. The
/// checkpoints are *candidate* states; [`parallel_ibd`]'s stitcher is what
/// proves each one equals the fully validated state at that height.
pub fn build_checkpoints(
    genesis: &EbvBlock,
    blocks: &[EbvBlock],
    every: usize,
) -> Result<Vec<BitVectorSnapshot>, CheckpointError> {
    assert!(every > 0);
    let mut set = BitVectorSet::new();
    set.insert_block(0, genesis.output_count());
    let mut checkpoints = Vec::new();
    for (i, block) in blocks.iter().enumerate() {
        let height = i as u32 + 1;
        let outputs = block.output_count();
        if outputs == 0 || outputs > 1 << 16 {
            return Err(CheckpointError::Malformed { height, outputs });
        }
        set.insert_block(height, outputs);
        for tx in &block.transactions {
            for body in &tx.bodies {
                if let Some(proof) = &body.proof {
                    set.spend(proof.height, proof.absolute_position())
                        .map_err(|err| CheckpointError::Inconsistent { height, err })?;
                }
            }
        }
        if (height as usize).is_multiple_of(every) && (i + 1) < blocks.len() {
            checkpoints.push(set.snapshot(height, block.header.hash()));
        }
    }
    Ok(checkpoints)
}

/// Wall-clock accounting for one replayed interval.
#[derive(Clone, Copy, Debug)]
pub struct IntervalStat {
    /// Interval index in checkpoint order (the sequential-fallback tail
    /// after a stitch mismatch appears as one extra entry).
    pub index: usize,
    /// First block height replayed (exclusive of the boot state).
    pub start_height: u32,
    /// Last block height replayed (inclusive).
    pub end_height: u32,
    /// Wall-clock time for boot + replay of this interval.
    pub wall: Duration,
}

/// Result of a snapshot-parallel IBD run.
pub struct ParallelIbd {
    /// The assembled node at the chain tip. Its undo stack covers only the
    /// final interval (blocks at or below its boot height cannot be
    /// disconnected), which IBD never needs.
    pub node: EbvNode,
    /// Per-interval wall-clock stats, in interval order.
    pub intervals: Vec<IntervalStat>,
    /// `Some(i)` if interval `i`'s final state differed from checkpoint
    /// `i` and the run fell back to sequential replay from interval `i`'s
    /// verified end state.
    pub stitch_mismatch: Option<usize>,
    /// Wall-clock time of the whole run (scheduling + stitching included).
    pub wall: Duration,
}

/// Why [`parallel_ibd`] gave up (a stitch mismatch alone is *not* fatal —
/// it degrades to sequential replay and is reported in [`ParallelIbd`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ParallelIbdError {
    /// The checkpoint list is unusable: heights not strictly ascending or
    /// outside `1..tip`.
    BadCheckpoints(&'static str),
    /// A checkpoint's header chain failed verification at boot.
    Snapshot {
        interval: usize,
        error: SnapshotError,
    },
    /// A block failed full validation against verified prior state.
    Validation {
        interval: usize,
        height: u32,
        error: EbvError,
    },
}

impl std::fmt::Display for ParallelIbdError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{self:?}")
    }
}

impl std::error::Error for ParallelIbdError {}

/// Replay `blocks` (heights `1..`) out of order: `checkpoints` split the
/// chain into contiguous intervals, `workers` threads each boot an
/// [`EbvNode`] from their interval's starting snapshot and replay to the
/// interval end, and the stitcher walks the intervals in order asserting
/// each one's final state is **byte-identical** to its successor's
/// starting snapshot.
///
/// Trust works by induction along that walk: interval 0 boots from the
/// (trusted) genesis block, and once stitches `0..i` have all matched,
/// interval `i`'s boot state — checkpoint `i-1` — is exactly the state a
/// sequential replay would have reached, so its blocks were validated
/// against verified state. A mismatch at stitch `i` therefore convicts
/// checkpoint `i` (interval `i`'s *end* is fully verified); the run falls
/// back to sequential replay from that verified end state, reports the
/// offending interval in `stitch_mismatch`, and still finishes with a
/// correct node. Validation failures inside a verified interval are
/// genuine and abort the run.
///
/// Workers run with `persistent_pubkey_cache` on: interval replay is
/// finite, and reusing prepared keys across the interval's blocks is where
/// the single-core speedup comes from (thread fan-out adds the rest on
/// multicore hosts).
pub fn parallel_ibd(
    genesis: &EbvBlock,
    blocks: &[EbvBlock],
    checkpoints: &[BitVectorSnapshot],
    workers: usize,
    config: EbvConfig,
) -> Result<ParallelIbd, ParallelIbdError> {
    let total_wall = Stopwatch::start();
    let tip = blocks.len() as u32;
    // Causal root for the run, seeded by the workload shape so same-input
    // runs produce identical trace trees; interval spans nest under it
    // via an explicit parent handoff (worker threads don't inherit the
    // spawning thread's context stack).
    let _ibd_span =
        ebv_telemetry::context::SpanGuard::enter_root("ibd.parallel", 0x1bd ^ u64::from(tip));
    let parent_ctx = ebv_telemetry::context::current();

    // Interval boundaries: genesis, each checkpoint height, the tip.
    // Interval i replays blocks (bounds[i], bounds[i+1]].
    let mut bounds = Vec::with_capacity(checkpoints.len() + 2);
    bounds.push(0u32);
    for cp in checkpoints {
        let h = cp.height();
        if h == 0 || h >= tip {
            return Err(ParallelIbdError::BadCheckpoints(
                "checkpoint height outside 1..tip",
            ));
        }
        if h <= *bounds.last().expect("non-empty") {
            return Err(ParallelIbdError::BadCheckpoints(
                "checkpoint heights not strictly ascending",
            ));
        }
        bounds.push(h);
    }
    bounds.push(tip);
    let n_intervals = bounds.len() - 1;

    // Full header chain: snapshot boots verify it, EV folds against it.
    let mut headers = Vec::with_capacity(blocks.len() + 1);
    headers.push(genesis.header);
    headers.extend(blocks.iter().map(|b| b.header));

    let worker_config = EbvConfig {
        persistent_pubkey_cache: true,
        ..config
    };

    type IntervalOutcome = Result<(EbvNode, IntervalStat), ParallelIbdError>;
    let run_interval = |i: usize| -> IntervalOutcome {
        let _interval_span = match parent_ctx {
            Some(ctx) => {
                ebv_telemetry::context::SpanGuard::enter_under(ctx, "ibd.interval", i as u64)
            }
            None => ebv_telemetry::context::SpanGuard::inert(),
        };
        let wall = Stopwatch::start();
        let mut node = if i == 0 {
            EbvNode::new(genesis, worker_config)
        } else {
            let cp = &checkpoints[i - 1];
            EbvNode::from_snapshot(cp, headers[..=cp.height() as usize].to_vec(), worker_config)
                .map_err(|error| ParallelIbdError::Snapshot { interval: i, error })?
        };
        for block in &blocks[bounds[i] as usize..bounds[i + 1] as usize] {
            node.process_block(block)
                .map_err(|error| ParallelIbdError::Validation {
                    interval: i,
                    height: node.tip_height() + 1,
                    error,
                })?;
        }
        let stat = IntervalStat {
            index: i,
            start_height: bounds[i] + 1,
            end_height: bounds[i + 1],
            wall: wall.elapsed(),
        };
        histogram!("ibd.interval.wall").record(stat.wall.as_nanos() as u64);
        // Liveness heartbeat: each finished interval proves the fan-out is
        // making progress; the stall watchdog flags a hung worker pool.
        ebv_telemetry::health::heartbeat("ibd.interval.progress");
        Ok((node, stat))
    };

    // Fan the intervals out: an atomic claim counter over scoped threads.
    // Slots are per-interval mutexes so completion order doesn't matter.
    let slots: Vec<Mutex<Option<IntervalOutcome>>> =
        (0..n_intervals).map(|_| Mutex::new(None)).collect();
    let threads = workers.clamp(1, n_intervals);
    if threads == 1 {
        for (i, slot) in slots.iter().enumerate() {
            *slot.lock().expect("unshared") = Some(run_interval(i));
        }
    } else {
        let next = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n_intervals {
                        break;
                    }
                    let outcome = run_interval(i);
                    *slots[i].lock().expect("one writer per slot") = Some(outcome);
                });
            }
        });
    }

    // Stitch in interval order. When this loop reaches interval i, every
    // earlier stitch has matched, so interval i's boot state is verified.
    let mut intervals = Vec::with_capacity(n_intervals);
    let mut stitch_mismatch = None;
    let mut assembled: Option<EbvNode> = None;
    for (i, slot) in slots.into_iter().enumerate() {
        let outcome = slot
            .into_inner()
            .expect("scope joined all workers")
            .expect("every interval was claimed");
        let (node, stat) = outcome?;
        intervals.push(stat);
        if i + 1 < n_intervals && node.snapshot().to_bytes() != checkpoints[i].to_bytes() {
            // Checkpoint i lied. Interval i's end state is the last
            // verified truth; everything booted from checkpoint i on is
            // void. Degrade to sequential replay from here.
            counter!("ibd.interval.stitch_mismatch").inc();
            trace_event!(
                "ibd.interval.stitch_mismatch",
                interval = i,
                boundary_height = bounds[i + 1],
            );
            // A lying checkpoint is exactly what the flight recorder
            // exists for: capture the run's causal chain and the mismatch
            // coordinates before degrading to sequential replay.
            if ebv_telemetry::enabled() {
                ebv_telemetry::flight::dump(
                    "ibd.interval.stitch_mismatch",
                    ebv_telemetry::context::current_trace(),
                    &[(
                        "stitch",
                        format!("{{\"interval\":{i},\"boundary_height\":{}}}", bounds[i + 1]),
                    )],
                );
            }
            stitch_mismatch = Some(i);
            let wall = Stopwatch::start();
            let mut node = node;
            for block in &blocks[bounds[i + 1] as usize..] {
                node.process_block(block).map_err(|error| {
                    let height = node.tip_height() + 1;
                    let interval = bounds
                        .windows(2)
                        .position(|w| w[0] < height && height <= w[1])
                        .unwrap_or(i);
                    ParallelIbdError::Validation {
                        interval,
                        height,
                        error,
                    }
                })?;
            }
            let stat = IntervalStat {
                index: i + 1,
                start_height: bounds[i + 1] + 1,
                end_height: tip,
                wall: wall.elapsed(),
            };
            histogram!("ibd.interval.wall").record(stat.wall.as_nanos() as u64);
            intervals.push(stat);
            assembled = Some(node);
            break;
        }
        assembled = Some(node);
    }

    Ok(ParallelIbd {
        node: assembled.expect("at least one interval"),
        intervals,
        stitch_mismatch,
        wall: total_wall.elapsed(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline_node::BaselineConfig;
    use crate::ebv_node::EbvConfig;
    use crate::intermediary::Intermediary;
    use ebv_chain::{build_block, coinbase_tx};
    use ebv_primitives::hash::Hash256;
    use ebv_script::Script;
    use ebv_store::{KvStore, StoreConfig, UtxoSet};

    fn empty_chain(n: usize) -> Vec<Block> {
        let genesis = build_block(
            Hash256::ZERO,
            coinbase_tx(0, Script::new(), Vec::new()),
            Vec::new(),
            0,
            0,
        );
        let mut blocks = vec![genesis];
        for h in 1..=n as u32 {
            let prev = blocks.last().expect("genesis").header.hash();
            blocks.push(build_block(
                prev,
                coinbase_tx(h, Script::new(), Vec::new()),
                Vec::new(),
                h,
                0,
            ));
        }
        blocks
    }

    #[test]
    fn baseline_ibd_periods() {
        let chain = empty_chain(10);
        let utxos = UtxoSet::new(KvStore::open(StoreConfig::with_budget(1 << 20)).unwrap());
        let mut node = BaselineNode::new(&chain[0], utxos, BaselineConfig::default()).unwrap();
        let periods = baseline_ibd(&mut node, &chain[1..], 4).unwrap();
        assert_eq!(periods.len(), 3); // 4 + 4 + 2
        assert_eq!(periods[0].start_height, 1);
        assert_eq!(periods[0].end_height, 4);
        assert_eq!(periods[2].end_height, 10);
        assert_eq!(node.tip_height(), 10);
    }

    #[test]
    fn synced_ibd_reaches_tip_and_reports() {
        let chain = empty_chain(8);
        let mut inter = Intermediary::new(0);
        let ebv_chain = inter.convert_chain(&chain).unwrap();
        let tip = ebv_chain.len() as u32 - 1;
        let mut node = EbvNode::new(&ebv_chain[0], EbvConfig::default());
        let peers = vec![crate::sync::spawn_source(ebv_chain)];
        let run = synced_ibd(&mut node, peers, &SyncConfig::default()).unwrap();
        assert_eq!(run.blocks_connected, tip);
        assert_eq!(node.tip_height(), tip);
        assert!(run.wall > Duration::ZERO);
        assert_eq!(run.report.peers[0].blocks_accepted, tip);
    }

    #[test]
    fn ebv_ibd_periods() {
        let chain = empty_chain(6);
        let mut inter = Intermediary::new(0);
        let ebv_chain = inter.convert_chain(&chain).unwrap();
        let mut node = EbvNode::new(&ebv_chain[0], EbvConfig::default());
        let periods = ebv_ibd(&mut node, &ebv_chain[1..], 3).unwrap();
        assert_eq!(periods.len(), 2);
        assert_eq!(node.tip_height(), 6);
        let total: Duration = periods.iter().map(|p| p.wall).sum();
        assert!(total > Duration::ZERO);
    }
}
