//! Proof construction — the transaction-proposer side of EBV (§IV-C).
//!
//! A proposer (or the intermediary node) needs, for each output it wants
//! to spend, the previous tidy transaction (*ELs*) and a Merkle branch
//! (*MBr*) into the block that packaged it. [`ProofArchive`] keeps exactly
//! the data needed to serve those: per block, the tidy transactions and
//! their leaf hashes.

use crate::tidy::{EbvBlock, InputProof, TidyTransaction};
use ebv_chain::merkle::MerkleBranch;
use ebv_primitives::hash::Hash256;

struct ArchiveBlock {
    tidies: Vec<TidyTransaction>,
    leaves: Vec<Hash256>,
    /// `stakes[k]` = stake position of transaction `k` (ascending).
    stakes: Vec<u32>,
    total_outputs: u32,
}

/// Per-block proof material, indexed by height.
#[derive(Default)]
pub struct ProofArchive {
    blocks: Vec<ArchiveBlock>,
}

impl ProofArchive {
    pub fn new() -> ProofArchive {
        ProofArchive::default()
    }

    /// Number of archived blocks.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// Archive `block`, which must be the next height in order.
    ///
    /// # Panics
    /// If blocks are added out of order.
    pub fn add_block(&mut self, height: u32, block: &EbvBlock) {
        assert_eq!(
            height as usize,
            self.blocks.len(),
            "blocks must be archived in order"
        );
        let tidies: Vec<TidyTransaction> = block
            .transactions
            .iter()
            .map(|tx| tx.tidy.clone())
            .collect();
        let leaves: Vec<Hash256> = tidies.iter().map(TidyTransaction::leaf_hash).collect();
        let stakes: Vec<u32> = tidies.iter().map(|t| t.stake_position).collect();
        let total_outputs = block.output_count();
        self.blocks.push(ArchiveBlock {
            tidies,
            leaves,
            stakes,
            total_outputs,
        });
    }

    /// Build the [`InputProof`] for the output at `(height,
    /// absolute_position)`, or `None` if the coordinates don't exist.
    pub fn make_proof(&self, height: u32, absolute_position: u32) -> Option<InputProof> {
        let block = self.blocks.get(height as usize)?;
        if absolute_position >= block.total_outputs {
            return None;
        }
        // Largest stake ≤ absolute_position locates the owning transaction.
        let tx_index = match block.stakes.binary_search(&absolute_position) {
            Ok(i) => i,
            Err(0) => return None, // before the first stake — impossible if stakes[0]=0
            Err(i) => i - 1,
        };
        let els = &block.tidies[tx_index];
        let relative = absolute_position - els.stake_position;
        if relative as usize >= els.outputs.len() {
            return None; // gap: position belongs to no transaction
        }
        let mbr = MerkleBranch::extract(&block.leaves, tx_index);
        Some(InputProof {
            mbr,
            els: els.clone(),
            height,
            relative_position: relative as u16,
        })
    }

    /// The tidy transaction at `(height, tx_index)` (for tests/tools).
    pub fn tidy_at(&self, height: u32, tx_index: usize) -> Option<&TidyTransaction> {
        self.blocks.get(height as usize)?.tidies.get(tx_index)
    }

    /// Total archive footprint in serialized bytes — this is proposer-side
    /// state, not validator status data (contrast with Edrax, §VII-B).
    pub fn archive_size(&self) -> usize {
        use ebv_primitives::encode::Encodable;
        self.blocks
            .iter()
            .map(|b| {
                b.tidies.iter().map(Encodable::encoded_len).sum::<usize>() + b.leaves.len() * 32
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pack::{ebv_coinbase, pack_ebv_block};
    use crate::tidy::{EbvTransaction, InputBody};
    use ebv_chain::transaction::TxOut;
    use ebv_script::Script;

    fn mk_tx(n_outputs: usize, tag: u8) -> EbvTransaction {
        EbvTransaction::from_parts(
            1,
            vec![InputBody {
                us: ebv_script::Builder::new().push_data(&[tag]).into_script(),
                proof: None,
            }],
            (0..n_outputs)
                .map(|i| TxOut::new(100 + i as u64, Script::new()))
                .collect(),
            0,
        )
    }

    fn archive_with_block() -> (ProofArchive, EbvBlock) {
        // Block 0: coinbase (1 out), tx (2 outs), tx (3 outs).
        let block = pack_ebv_block(
            Hash256::ZERO,
            vec![ebv_coinbase(0, Script::new()), mk_tx(2, 1), mk_tx(3, 2)],
            0,
            0,
        );
        let mut archive = ProofArchive::new();
        archive.add_block(0, &block);
        (archive, block)
    }

    #[test]
    fn proofs_verify_against_header() {
        let (archive, block) = archive_with_block();
        for pos in 0..6u32 {
            let proof = archive
                .make_proof(0, pos)
                .unwrap_or_else(|| panic!("pos {pos}"));
            assert_eq!(proof.absolute_position(), pos);
            assert!(
                proof
                    .mbr
                    .verify(&proof.els.leaf_hash(), &block.header.merkle_root),
                "pos {pos}"
            );
            assert!(proof.spent_output().is_some());
        }
    }

    #[test]
    fn proof_locates_correct_transaction() {
        let (archive, _) = archive_with_block();
        // pos 0 → coinbase, 1..=2 → tx1, 3..=5 → tx2.
        assert_eq!(archive.make_proof(0, 0).unwrap().els.stake_position, 0);
        assert_eq!(archive.make_proof(0, 1).unwrap().els.stake_position, 1);
        assert_eq!(archive.make_proof(0, 2).unwrap().els.stake_position, 1);
        assert_eq!(archive.make_proof(0, 3).unwrap().els.stake_position, 3);
        assert_eq!(archive.make_proof(0, 5).unwrap().els.stake_position, 3);
        // Values confirm the relative indexing.
        assert_eq!(
            archive
                .make_proof(0, 2)
                .unwrap()
                .spent_output()
                .unwrap()
                .value,
            101
        );
        assert_eq!(
            archive
                .make_proof(0, 4)
                .unwrap()
                .spent_output()
                .unwrap()
                .value,
            101
        );
    }

    #[test]
    fn out_of_range_positions_rejected() {
        let (archive, _) = archive_with_block();
        assert!(archive.make_proof(0, 6).is_none());
        assert!(archive.make_proof(1, 0).is_none());
    }

    #[test]
    #[should_panic(expected = "archived in order")]
    fn out_of_order_add_panics() {
        let (_, block) = archive_with_block();
        let mut archive = ProofArchive::new();
        archive.add_block(5, &block);
    }

    #[test]
    fn archive_size_grows() {
        let (archive, block) = archive_with_block();
        let s1 = archive.archive_size();
        assert!(s1 > 0);
        let mut archive2 = ProofArchive::new();
        archive2.add_block(0, &block);
        let block1 = pack_ebv_block(
            block.header.hash(),
            vec![ebv_coinbase(1, Script::new())],
            1,
            0,
        );
        archive2.add_block(1, &block1);
        assert!(archive2.archive_size() > s1);
    }
}
