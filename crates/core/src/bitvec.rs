//! The bit-vector status set — EBV's replacement for the UTXO set.
//!
//! One vector per block; bit `i` says whether the block's `i`-th output
//! (in absolute, whole-block numbering) is still unspent. A fully-spent
//! block's vector is removed. Serialization uses the paper's §IV-E2
//! optimization: a leading flag byte selects between the dense bitmap and
//! a 16-bit index array listing the remaining 1-bits, whichever is
//! smaller; "EBV w/o optimization" sizes are also reported for Fig. 14.

use ebv_primitives::encode::{Decodable, DecodeError, Encodable, Reader};
use std::collections::HashMap;

/// Dense in-memory bit vector for one block's outputs.
///
/// Kept dense in memory for O(1) `spend`/`is_unspent`; the sparse form is a
/// *serialization* choice, exactly as in the paper's implementation note.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct BlockBitVector {
    words: Vec<u64>,
    /// Number of outputs (bits).
    len: u32,
    /// Number of bits still set.
    ones: u32,
}

/// Flag byte: dense bitmap follows.
const FLAG_DENSE: u8 = 0;
/// Flag byte: 16-bit index array follows.
const FLAG_SPARSE: u8 = 1;

impl BlockBitVector {
    /// A fresh vector with all `len` outputs unspent.
    ///
    /// # Panics
    /// If `len` is 0 or exceeds 65 536 (the paper: "the number of outputs
    /// in a block is less than 65536, 16 bits are enough").
    pub fn new_all_unspent(len: u32) -> BlockBitVector {
        assert!(len > 0, "a block has at least the coinbase output");
        assert!(len <= 1 << 16, "output count must fit 16-bit indices");
        let words = vec![u64::MAX; (len as usize).div_ceil(64)];
        let mut v = BlockBitVector {
            words,
            len,
            ones: len,
        };
        // Clear padding bits in the last word.
        let tail = len % 64;
        if tail != 0 {
            *v.words.last_mut().expect("nonempty") &= (1u64 << tail) - 1;
        }
        v
    }

    /// Number of outputs tracked.
    pub fn len(&self) -> u32 {
        self.len
    }

    /// Whether the vector tracks zero outputs. `new_all_unspent` enforces
    /// `len >= 1`, so this is only `true` for a decoded zero-length vector;
    /// it must still answer from `len` rather than hardcode `false` so the
    /// `len()`/`is_empty()` contract holds for every constructible value.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of unspent outputs remaining.
    pub fn ones(&self) -> u32 {
        self.ones
    }

    /// Whether every output is spent (vector eligible for deletion).
    pub fn all_spent(&self) -> bool {
        self.ones == 0
    }

    /// Test bit `pos`; `None` if out of range.
    pub fn is_unspent(&self, pos: u32) -> Option<bool> {
        if pos >= self.len {
            return None;
        }
        Some(self.words[(pos / 64) as usize] >> (pos % 64) & 1 == 1)
    }

    /// Clear bit `pos`. Returns `false` if out of range or already spent.
    pub fn spend(&mut self, pos: u32) -> bool {
        if self.is_unspent(pos) != Some(true) {
            return false;
        }
        self.words[(pos / 64) as usize] &= !(1u64 << (pos % 64));
        self.ones -= 1;
        true
    }

    /// Re-set bit `pos` (used only by tests and rollback tooling).
    pub fn unspend(&mut self, pos: u32) -> bool {
        if self.is_unspent(pos) != Some(false) {
            return false;
        }
        self.words[(pos / 64) as usize] |= 1u64 << (pos % 64);
        self.ones += 1;
        true
    }

    /// Iterate the positions of remaining 1-bits in ascending order.
    pub fn iter_unspent(&self) -> impl Iterator<Item = u32> + '_ {
        self.words.iter().enumerate().flat_map(move |(wi, &w)| {
            let mut w = w;
            std::iter::from_fn(move || {
                if w == 0 {
                    return None;
                }
                let bit = w.trailing_zeros();
                w &= w - 1;
                Some(wi as u32 * 64 + bit)
            })
        })
    }

    /// Size of the dense encoding: flag + 2-byte length + bitmap. The
    /// output count is at most 65 536 (paper §IV-E2), so the length is
    /// stored as `len - 1` in a `u16`.
    pub fn dense_size(&self) -> usize {
        1 + 2 + (self.len as usize).div_ceil(8)
    }

    /// Size of the sparse encoding: flag + 2-byte length + 2-byte count +
    /// 16-bit indices.
    pub fn sparse_size(&self) -> usize {
        1 + 2 + 2 + 2 * self.ones as usize
    }

    /// Size of the optimized encoding — the smaller of the two, which is
    /// what [`Encodable::encode`] emits.
    pub fn optimized_size(&self) -> usize {
        self.dense_size().min(self.sparse_size())
    }
}

impl Encodable for BlockBitVector {
    fn encode(&self, out: &mut Vec<u8>) {
        let len_m1 = (self.len - 1) as u16;
        if self.sparse_size() < self.dense_size() {
            out.push(FLAG_SPARSE);
            len_m1.encode(out);
            // Sparse is only chosen when 2·ones < len/8, so ones < 2^13
            // and always fits the u16 count.
            (self.ones as u16).encode(out);
            for pos in self.iter_unspent() {
                (pos as u16).encode(out);
            }
        } else {
            out.push(FLAG_DENSE);
            len_m1.encode(out);
            let mut byte = 0u8;
            for i in 0..self.len {
                if self.is_unspent(i) == Some(true) {
                    byte |= 1 << (i % 8);
                }
                if i % 8 == 7 {
                    out.push(byte);
                    byte = 0;
                }
            }
            if !self.len.is_multiple_of(8) {
                out.push(byte);
            }
        }
    }

    fn encoded_len(&self) -> usize {
        self.optimized_size()
    }
}

impl Decodable for BlockBitVector {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let flag = r.read_u8()?;
        let len = r.read_u16()? as u32 + 1;
        match flag {
            FLAG_DENSE => {
                let n_bytes = (len as usize).div_ceil(8);
                let bytes = r.read_bytes(n_bytes)?;
                let mut v = BlockBitVector::new_all_unspent(len);
                // Start from all-unspent and clear zeros.
                for i in 0..len {
                    if bytes[(i / 8) as usize] >> (i % 8) & 1 == 0 {
                        v.spend(i);
                    }
                }
                Ok(v)
            }
            FLAG_SPARSE => {
                let count = r.read_u16()? as u32;
                // Start fully spent and re-set the listed survivors.
                let mut v = BlockBitVector::new_all_unspent(len);
                for i in 0..len {
                    v.spend(i);
                }
                for _ in 0..count {
                    let idx = r.read_u16()? as u32;
                    if idx >= len || !v.unspend(idx) {
                        return Err(DecodeError::Invalid("sparse index"));
                    }
                }
                Ok(v)
            }
            _ => Err(DecodeError::Invalid("bit-vector flag")),
        }
    }
}

/// Memory-requirement breakdown of the whole set (Fig. 14's three series
/// come from `optimized` vs `unoptimized`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BitVectorSetSize {
    /// Number of live vectors (blocks with ≥1 unspent output).
    pub vectors: u64,
    /// Bytes with the sparse optimization (flag + best encoding + key).
    pub optimized: u64,
    /// Bytes storing every vector densely ("EBV w/o optimization").
    pub unoptimized: u64,
    /// Vectors whose optimized encoding is the sparse index array.
    pub sparse_vectors: u64,
    /// Vectors whose optimized encoding is the dense bitmap.
    pub dense_vectors: u64,
}

/// The bit-vector set: block height → [`BlockBitVector`].
///
/// Small enough to live entirely in memory (the paper measures ~303 MB at
/// Bitcoin height ~690k vs 4.3 GB for the UTXO set).
#[derive(Default)]
pub struct BitVectorSet {
    vectors: HashMap<u32, BlockBitVector>,
}

/// Unspent-validation failures.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum UvError {
    /// No vector for the height (whole block fully spent, or never seen).
    UnknownHeight(u32),
    /// Position beyond the block's output count.
    PositionOutOfRange { height: u32, position: u32 },
    /// The bit is 0 — output already spent.
    AlreadySpent { height: u32, position: u32 },
}

impl std::fmt::Display for UvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            UvError::UnknownHeight(h) => write!(f, "no bit-vector for height {h}"),
            UvError::PositionOutOfRange { height, position } => {
                write!(f, "position {position} out of range in block {height}")
            }
            UvError::AlreadySpent { height, position } => {
                write!(f, "output {position} of block {height} already spent")
            }
        }
    }
}

impl std::error::Error for UvError {}

impl BitVectorSet {
    pub fn new() -> BitVectorSet {
        BitVectorSet::default()
    }

    /// Number of live vectors.
    pub fn len(&self) -> usize {
        self.vectors.len()
    }

    pub fn is_empty(&self) -> bool {
        self.vectors.is_empty()
    }

    /// Insert the vector for a newly stored block with `n_outputs` outputs.
    pub fn insert_block(&mut self, height: u32, n_outputs: u32) {
        let prev = self
            .vectors
            .insert(height, BlockBitVector::new_all_unspent(n_outputs));
        debug_assert!(prev.is_none(), "duplicate bit-vector for height {height}");
    }

    /// Check bit `(height, position)` without modifying it — the UV probe.
    pub fn check_unspent(&self, height: u32, position: u32) -> Result<(), UvError> {
        let v = self
            .vectors
            .get(&height)
            .ok_or(UvError::UnknownHeight(height))?;
        match v.is_unspent(position) {
            None => Err(UvError::PositionOutOfRange { height, position }),
            Some(false) => Err(UvError::AlreadySpent { height, position }),
            Some(true) => Ok(()),
        }
    }

    /// Clear bit `(height, position)`; deletes the vector when it becomes
    /// all-zero (the paper's memory-reclaim rule). Returns the length of
    /// the vector if this spend deleted it (`None` otherwise) — undo data
    /// needs it to restore the vector on disconnect.
    pub fn spend(&mut self, height: u32, position: u32) -> Result<Option<u32>, UvError> {
        let v = self
            .vectors
            .get_mut(&height)
            .ok_or(UvError::UnknownHeight(height))?;
        match v.is_unspent(position) {
            None => return Err(UvError::PositionOutOfRange { height, position }),
            Some(false) => return Err(UvError::AlreadySpent { height, position }),
            Some(true) => {
                v.spend(position);
            }
        }
        if v.all_spent() {
            let len = v.len();
            self.vectors.remove(&height);
            Ok(Some(len))
        } else {
            Ok(None)
        }
    }

    /// Re-set bit `(height, position)` — the reverse of [`spend`], used by
    /// block disconnection. The vector must exist (restore deleted vectors
    /// with [`BitVectorSet::insert_all_spent`] first) and the bit must be 0.
    ///
    /// [`spend`]: BitVectorSet::spend
    pub fn unspend(&mut self, height: u32, position: u32) -> Result<(), UvError> {
        let v = self
            .vectors
            .get_mut(&height)
            .ok_or(UvError::UnknownHeight(height))?;
        match v.is_unspent(position) {
            None => Err(UvError::PositionOutOfRange { height, position }),
            Some(true) => Err(UvError::AlreadySpent { height, position }), // already 1
            Some(false) => {
                v.unspend(position);
                Ok(())
            }
        }
    }

    /// Restore a previously deleted (fully spent) vector as all-zero, so
    /// its bits can be re-set during disconnection.
    pub fn insert_all_spent(&mut self, height: u32, n_outputs: u32) {
        let mut v = BlockBitVector::new_all_unspent(n_outputs);
        for i in 0..n_outputs {
            v.spend(i);
        }
        let prev = self.vectors.insert(height, v);
        debug_assert!(
            prev.is_none(),
            "restoring over a live vector at height {height}"
        );
    }

    /// Remove the vector for `height` entirely (disconnecting the block
    /// that created it). Returns whether a vector was present.
    pub fn remove_block(&mut self, height: u32) -> bool {
        self.vectors.remove(&height).is_some()
    }

    /// Access a block's vector (e.g. to count survivors).
    pub fn vector(&self, height: u32) -> Option<&BlockBitVector> {
        self.vectors.get(&height)
    }

    /// Heights with a live vector, in no particular order (invariant
    /// checks and figures).
    pub fn heights(&self) -> impl Iterator<Item = u32> + '_ {
        self.vectors.keys().copied()
    }

    /// Total unspent outputs across all blocks.
    pub fn total_unspent(&self) -> u64 {
        self.vectors.values().map(|v| v.ones() as u64).sum()
    }

    /// Memory requirement in both representations. Each entry is charged
    /// its serialized size plus the 4-byte height key.
    pub fn memory(&self) -> BitVectorSetSize {
        let mut size = BitVectorSetSize {
            vectors: self.vectors.len() as u64,
            ..Default::default()
        };
        for v in self.vectors.values() {
            size.optimized += 4 + v.optimized_size() as u64;
            size.unoptimized += 4 + v.dense_size() as u64;
            // Same tiebreak as `Encodable::encode`: dense wins ties.
            if v.sparse_size() < v.dense_size() {
                size.sparse_vectors += 1;
            } else {
                size.dense_vectors += 1;
            }
        }
        size
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_vector_all_unspent() {
        let v = BlockBitVector::new_all_unspent(100);
        assert_eq!(v.len(), 100);
        assert_eq!(v.ones(), 100);
        for i in 0..100 {
            assert_eq!(v.is_unspent(i), Some(true));
        }
        assert_eq!(v.is_unspent(100), None);
    }

    #[test]
    fn padding_bits_are_clear() {
        // len not a multiple of 64: the ones count must equal len exactly.
        for len in [1u32, 63, 64, 65, 100, 127, 128, 129] {
            let v = BlockBitVector::new_all_unspent(len);
            assert_eq!(v.iter_unspent().count() as u32, len, "len={len}");
        }
    }

    #[test]
    fn spend_and_double_spend() {
        let mut v = BlockBitVector::new_all_unspent(10);
        assert!(v.spend(3));
        assert_eq!(v.is_unspent(3), Some(false));
        assert_eq!(v.ones(), 9);
        assert!(!v.spend(3), "double spend must fail");
        assert!(!v.spend(10), "out of range must fail");
        assert!(v.unspend(3));
        assert!(!v.unspend(3));
    }

    #[test]
    fn iter_unspent_matches_bits() {
        let mut v = BlockBitVector::new_all_unspent(200);
        for i in (0..200).step_by(3) {
            v.spend(i);
        }
        let expected: Vec<u32> = (0..200).filter(|i| i % 3 != 0).collect();
        assert_eq!(v.iter_unspent().collect::<Vec<_>>(), expected);
    }

    #[test]
    fn sparse_beats_dense_when_few_ones() {
        let mut v = BlockBitVector::new_all_unspent(1000);
        for i in 1..1000 {
            v.spend(i);
        }
        // One survivor: sparse = 1+2+2+2 = 7 bytes, dense = 1+2+125 = 128.
        assert_eq!(v.sparse_size(), 7);
        assert_eq!(v.dense_size(), 128);
        assert_eq!(v.optimized_size(), 7);
        assert_eq!(v.to_bytes().len(), 7);
    }

    #[test]
    fn dense_chosen_when_full() {
        let v = BlockBitVector::new_all_unspent(1000);
        assert_eq!(v.optimized_size(), v.dense_size());
        assert_eq!(v.to_bytes().len(), v.dense_size());
    }

    #[test]
    fn paper_example_sparse_representation() {
        // The paper's Fig. 13 idea — a vector with one surviving bit at
        // index 3 is stored as the index array {3} — scaled up to where the
        // byte-granular sparse form actually wins (at 5 bits the dense
        // bitmap is already a single byte, so dense is chosen there).
        let mut v = BlockBitVector::new_all_unspent(100);
        for i in (0..100).filter(|&i| i != 3) {
            v.spend(i);
        }
        let bytes = v.to_bytes();
        assert_eq!(bytes[0], FLAG_SPARSE);
        assert_eq!(&bytes[1..3], &99u16.to_le_bytes()); // len - 1
        assert_eq!(&bytes[3..5], &1u16.to_le_bytes()); // one survivor
        assert_eq!(&bytes[5..], &3u16.to_le_bytes()); // at index 3

        // The tiny paper-scale vector picks dense — and is smaller still.
        let mut tiny = BlockBitVector::new_all_unspent(5);
        for i in [0, 1, 2, 4] {
            tiny.spend(i);
        }
        assert_eq!(tiny.to_bytes()[0], FLAG_DENSE);
        assert!(tiny.optimized_size() < tiny.sparse_size());
    }

    #[test]
    fn encode_round_trip_dense_and_sparse() {
        for spend_every in [1usize, 2, 3, 10, 200] {
            let mut v = BlockBitVector::new_all_unspent(500);
            for i in (0..500).step_by(spend_every) {
                v.spend(i);
            }
            let got = BlockBitVector::from_bytes(&v.to_bytes()).unwrap();
            assert_eq!(got, v, "spend_every={spend_every}");
        }
    }

    #[test]
    fn decode_rejects_garbage() {
        // Unknown flag byte.
        assert!(BlockBitVector::from_bytes(&[9, 1, 0, 0, 0]).is_err());
        // Dense with trailing junk.
        assert!(BlockBitVector::from_bytes(&[FLAG_DENSE, 0, 0, 1, 0]).is_err());
        // Truncated dense bitmap.
        assert!(BlockBitVector::from_bytes(&[FLAG_DENSE, 20, 0, 1]).is_err());
        // Sparse with out-of-range index (len 5 → stored 4).
        let mut buf = vec![FLAG_SPARSE];
        buf.extend_from_slice(&4u16.to_le_bytes());
        buf.extend_from_slice(&1u16.to_le_bytes()); // count
        buf.extend_from_slice(&9u16.to_le_bytes()); // index ≥ len
        assert!(BlockBitVector::from_bytes(&buf).is_err());
        // Sparse with duplicate index.
        let mut buf = vec![FLAG_SPARSE];
        buf.extend_from_slice(&4u16.to_le_bytes());
        buf.extend_from_slice(&2u16.to_le_bytes());
        buf.extend_from_slice(&3u16.to_le_bytes());
        buf.extend_from_slice(&3u16.to_le_bytes());
        assert!(BlockBitVector::from_bytes(&buf).is_err());
    }

    #[test]
    fn set_spend_flow() {
        let mut s = BitVectorSet::new();
        s.insert_block(0, 3);
        s.insert_block(1, 2);
        assert_eq!(s.total_unspent(), 5);
        assert!(s.check_unspent(0, 2).is_ok());
        s.spend(0, 2).unwrap();
        assert_eq!(
            s.check_unspent(0, 2),
            Err(UvError::AlreadySpent {
                height: 0,
                position: 2
            })
        );
        assert_eq!(
            s.spend(0, 2),
            Err(UvError::AlreadySpent {
                height: 0,
                position: 2
            })
        );
        assert_eq!(
            s.spend(0, 9),
            Err(UvError::PositionOutOfRange {
                height: 0,
                position: 9
            })
        );
        assert_eq!(s.spend(7, 0), Err(UvError::UnknownHeight(7)));
    }

    #[test]
    fn fully_spent_vector_is_deleted() {
        let mut s = BitVectorSet::new();
        s.insert_block(5, 2);
        s.spend(5, 0).unwrap();
        assert_eq!(s.len(), 1);
        s.spend(5, 1).unwrap();
        assert_eq!(s.len(), 0);
        // Height is now unknown, as the paper specifies.
        assert_eq!(s.check_unspent(5, 0), Err(UvError::UnknownHeight(5)));
    }

    #[test]
    fn memory_accounting() {
        let mut s = BitVectorSet::new();
        s.insert_block(0, 1000);
        let full = s.memory();
        assert_eq!(full.vectors, 1);
        assert_eq!(full.optimized, full.unoptimized);
        // Spend all but one output: optimized collapses, unoptimized stays.
        for i in 1..1000 {
            s.spend(0, i).unwrap();
        }
        let sparse = s.memory();
        assert_eq!(sparse.unoptimized, full.unoptimized);
        assert!(sparse.optimized < sparse.unoptimized);
        assert_eq!(sparse.optimized, 4 + 7);
    }
}
