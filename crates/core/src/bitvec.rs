//! The bit-vector status set — EBV's replacement for the UTXO set.
//!
//! One vector per block; bit `i` says whether the block's `i`-th output
//! (in absolute, whole-block numbering) is still unspent. A fully-spent
//! block's vector is removed. Serialization uses the paper's §IV-E2
//! optimization: a leading flag byte selects between the dense bitmap and
//! a 16-bit index array listing the remaining 1-bits, whichever is
//! smaller; "EBV w/o optimization" sizes are also reported for Fig. 14.

use ebv_primitives::encode::{varint_len, write_varint, Decodable, DecodeError, Encodable, Reader};
use ebv_primitives::hash::{sha256d, Hash256};
use std::collections::HashMap;

/// Dense in-memory bit vector for one block's outputs.
///
/// Kept dense in memory for O(1) `spend`/`is_unspent`; the sparse form is a
/// *serialization* choice, exactly as in the paper's implementation note.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct BlockBitVector {
    words: Vec<u64>,
    /// Number of outputs (bits).
    len: u32,
    /// Number of bits still set.
    ones: u32,
}

/// Flag byte: dense bitmap follows.
const FLAG_DENSE: u8 = 0;
/// Flag byte: 16-bit index array follows.
const FLAG_SPARSE: u8 = 1;

impl BlockBitVector {
    /// A fresh vector with all `len` outputs unspent.
    ///
    /// # Panics
    /// If `len` is 0 or exceeds 65 536 (the paper: "the number of outputs
    /// in a block is less than 65536, 16 bits are enough").
    pub fn new_all_unspent(len: u32) -> BlockBitVector {
        assert!(len > 0, "a block has at least the coinbase output");
        assert!(len <= 1 << 16, "output count must fit 16-bit indices");
        let words = vec![u64::MAX; (len as usize).div_ceil(64)];
        let mut v = BlockBitVector {
            words,
            len,
            ones: len,
        };
        // Clear padding bits in the last word.
        let tail = len % 64;
        if tail != 0 {
            *v.words.last_mut().expect("nonempty") &= (1u64 << tail) - 1;
        }
        v
    }

    /// Number of outputs tracked.
    pub fn len(&self) -> u32 {
        self.len
    }

    /// Whether the vector tracks zero outputs. `new_all_unspent` enforces
    /// `len >= 1` and the wire format stores `len - 1` in a `u16`, so no
    /// constructible *or* decodable value is empty; it still answers from
    /// `len` rather than hardcode `false` so the `len()`/`is_empty()`
    /// contract holds for every value the type can represent.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of unspent outputs remaining.
    pub fn ones(&self) -> u32 {
        self.ones
    }

    /// Whether every output is spent (vector eligible for deletion).
    pub fn all_spent(&self) -> bool {
        self.ones == 0
    }

    /// Test bit `pos`; `None` if out of range.
    pub fn is_unspent(&self, pos: u32) -> Option<bool> {
        if pos >= self.len {
            return None;
        }
        Some(self.words[(pos / 64) as usize] >> (pos % 64) & 1 == 1)
    }

    /// Clear bit `pos`. Returns `false` if out of range or already spent.
    pub fn spend(&mut self, pos: u32) -> bool {
        if self.is_unspent(pos) != Some(true) {
            return false;
        }
        self.words[(pos / 64) as usize] &= !(1u64 << (pos % 64));
        self.ones -= 1;
        true
    }

    /// Re-set bit `pos` (used only by tests and rollback tooling).
    pub fn unspend(&mut self, pos: u32) -> bool {
        if self.is_unspent(pos) != Some(false) {
            return false;
        }
        self.words[(pos / 64) as usize] |= 1u64 << (pos % 64);
        self.ones += 1;
        true
    }

    /// Iterate the positions of remaining 1-bits in ascending order.
    pub fn iter_unspent(&self) -> impl Iterator<Item = u32> + '_ {
        self.words.iter().enumerate().flat_map(move |(wi, &w)| {
            let mut w = w;
            std::iter::from_fn(move || {
                if w == 0 {
                    return None;
                }
                let bit = w.trailing_zeros();
                w &= w - 1;
                Some(wi as u32 * 64 + bit)
            })
        })
    }

    /// Size of the dense encoding: flag + 2-byte length + bitmap. The
    /// output count is at most 65 536 (paper §IV-E2), so the length is
    /// stored as `len - 1` in a `u16`.
    pub fn dense_size(&self) -> usize {
        1 + 2 + (self.len as usize).div_ceil(8)
    }

    /// Size of the sparse encoding: flag + 2-byte length + 2-byte count +
    /// 16-bit indices.
    pub fn sparse_size(&self) -> usize {
        1 + 2 + 2 + 2 * self.ones as usize
    }

    /// Size of the optimized encoding — the smaller of the two, which is
    /// what [`Encodable::encode`] emits.
    pub fn optimized_size(&self) -> usize {
        self.dense_size().min(self.sparse_size())
    }
}

impl Encodable for BlockBitVector {
    fn encode(&self, out: &mut Vec<u8>) {
        let len_m1 = (self.len - 1) as u16;
        if self.sparse_size() < self.dense_size() {
            out.push(FLAG_SPARSE);
            len_m1.encode(out);
            // Sparse is only chosen when 2·ones < len/8, so ones < 2^13
            // and always fits the u16 count.
            (self.ones as u16).encode(out);
            for pos in self.iter_unspent() {
                (pos as u16).encode(out);
            }
        } else {
            out.push(FLAG_DENSE);
            len_m1.encode(out);
            let mut byte = 0u8;
            for i in 0..self.len {
                if self.is_unspent(i) == Some(true) {
                    byte |= 1 << (i % 8);
                }
                if i % 8 == 7 {
                    out.push(byte);
                    byte = 0;
                }
            }
            if !self.len.is_multiple_of(8) {
                out.push(byte);
            }
        }
    }

    fn encoded_len(&self) -> usize {
        self.optimized_size()
    }
}

impl Decodable for BlockBitVector {
    /// Decode is a trust boundary: snapshots cross worker (and eventually
    /// peer) boundaries, so every byte string that no encoder emits is
    /// rejected. Beyond the structural checks (unknown flag, truncation),
    /// that means: set padding bits in the dense bitmap's last byte,
    /// all-spent vectors (the set deletes those instead of storing them),
    /// out-of-range / duplicate / non-ascending sparse indices, and the
    /// representation the encoder would not have chosen (the codec is a
    /// bijection, so re-encoding a decoded vector reproduces the input).
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let flag = r.read_u8()?;
        let len = r.read_u16()? as u32 + 1;
        match flag {
            FLAG_DENSE => {
                let n_bytes = (len as usize).div_ceil(8);
                let bytes = r.read_bytes(n_bytes)?;
                let tail = (len % 8) as usize;
                if tail != 0 && bytes[n_bytes - 1] >> tail != 0 {
                    return Err(DecodeError::Invalid("set padding bits in dense bitmap"));
                }
                let mut v = BlockBitVector::new_all_unspent(len);
                // Start from all-unspent and clear zeros.
                for i in 0..len {
                    if bytes[(i / 8) as usize] >> (i % 8) & 1 == 0 {
                        v.spend(i);
                    }
                }
                if v.all_spent() {
                    return Err(DecodeError::Invalid("all-spent vector"));
                }
                if v.sparse_size() < v.dense_size() {
                    return Err(DecodeError::Invalid("non-canonical dense encoding"));
                }
                Ok(v)
            }
            FLAG_SPARSE => {
                let count = r.read_u16()? as u32;
                if count == 0 {
                    return Err(DecodeError::Invalid("all-spent vector"));
                }
                // Start fully spent and re-set the listed survivors.
                let mut v = BlockBitVector::new_all_unspent(len);
                for i in 0..len {
                    v.spend(i);
                }
                let mut prev: Option<u32> = None;
                for _ in 0..count {
                    let idx = r.read_u16()? as u32;
                    if idx >= len {
                        return Err(DecodeError::Invalid("sparse index out of range"));
                    }
                    // Strictly ascending covers duplicates too.
                    if prev.is_some_and(|p| idx <= p) {
                        return Err(DecodeError::Invalid("sparse indices not ascending"));
                    }
                    prev = Some(idx);
                    v.unspend(idx);
                }
                if v.sparse_size() >= v.dense_size() {
                    return Err(DecodeError::Invalid("non-canonical sparse encoding"));
                }
                Ok(v)
            }
            _ => Err(DecodeError::Invalid("bit-vector flag")),
        }
    }
}

/// Memory-requirement breakdown of the whole set (Fig. 14's three series
/// come from `optimized` vs `unoptimized`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BitVectorSetSize {
    /// Number of live vectors (blocks with ≥1 unspent output).
    pub vectors: u64,
    /// Bytes with the sparse optimization (flag + best encoding + key).
    pub optimized: u64,
    /// Bytes storing every vector densely ("EBV w/o optimization").
    pub unoptimized: u64,
    /// Vectors whose optimized encoding is the sparse index array.
    pub sparse_vectors: u64,
    /// Vectors whose optimized encoding is the dense bitmap.
    pub dense_vectors: u64,
}

/// The bit-vector set: block height → [`BlockBitVector`].
///
/// Small enough to live entirely in memory (the paper measures ~303 MB at
/// Bitcoin height ~690k vs 4.3 GB for the UTXO set).
#[derive(Default)]
pub struct BitVectorSet {
    vectors: HashMap<u32, BlockBitVector>,
}

/// Unspent-validation failures.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum UvError {
    /// No vector for the height (whole block fully spent, or never seen).
    UnknownHeight(u32),
    /// Position beyond the block's output count.
    PositionOutOfRange { height: u32, position: u32 },
    /// The bit is 0 — output already spent.
    AlreadySpent { height: u32, position: u32 },
}

impl std::fmt::Display for UvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            UvError::UnknownHeight(h) => write!(f, "no bit-vector for height {h}"),
            UvError::PositionOutOfRange { height, position } => {
                write!(f, "position {position} out of range in block {height}")
            }
            UvError::AlreadySpent { height, position } => {
                write!(f, "output {position} of block {height} already spent")
            }
        }
    }
}

impl std::error::Error for UvError {}

impl BitVectorSet {
    pub fn new() -> BitVectorSet {
        BitVectorSet::default()
    }

    /// Number of live vectors.
    pub fn len(&self) -> usize {
        self.vectors.len()
    }

    pub fn is_empty(&self) -> bool {
        self.vectors.is_empty()
    }

    /// Insert the vector for a newly stored block with `n_outputs` outputs.
    pub fn insert_block(&mut self, height: u32, n_outputs: u32) {
        let prev = self
            .vectors
            .insert(height, BlockBitVector::new_all_unspent(n_outputs));
        debug_assert!(prev.is_none(), "duplicate bit-vector for height {height}");
    }

    /// Check bit `(height, position)` without modifying it — the UV probe.
    pub fn check_unspent(&self, height: u32, position: u32) -> Result<(), UvError> {
        let v = self
            .vectors
            .get(&height)
            .ok_or(UvError::UnknownHeight(height))?;
        match v.is_unspent(position) {
            None => Err(UvError::PositionOutOfRange { height, position }),
            Some(false) => Err(UvError::AlreadySpent { height, position }),
            Some(true) => Ok(()),
        }
    }

    /// Clear bit `(height, position)`; deletes the vector when it becomes
    /// all-zero (the paper's memory-reclaim rule). Returns the length of
    /// the vector if this spend deleted it (`None` otherwise) — undo data
    /// needs it to restore the vector on disconnect.
    pub fn spend(&mut self, height: u32, position: u32) -> Result<Option<u32>, UvError> {
        let v = self
            .vectors
            .get_mut(&height)
            .ok_or(UvError::UnknownHeight(height))?;
        match v.is_unspent(position) {
            None => return Err(UvError::PositionOutOfRange { height, position }),
            Some(false) => return Err(UvError::AlreadySpent { height, position }),
            Some(true) => {
                v.spend(position);
            }
        }
        if v.all_spent() {
            let len = v.len();
            self.vectors.remove(&height);
            Ok(Some(len))
        } else {
            Ok(None)
        }
    }

    /// Re-set bit `(height, position)` — the reverse of [`spend`], used by
    /// block disconnection. The vector must exist (restore deleted vectors
    /// with [`BitVectorSet::insert_all_spent`] first) and the bit must be 0.
    ///
    /// [`spend`]: BitVectorSet::spend
    pub fn unspend(&mut self, height: u32, position: u32) -> Result<(), UvError> {
        let v = self
            .vectors
            .get_mut(&height)
            .ok_or(UvError::UnknownHeight(height))?;
        match v.is_unspent(position) {
            None => Err(UvError::PositionOutOfRange { height, position }),
            Some(true) => Err(UvError::AlreadySpent { height, position }), // already 1
            Some(false) => {
                v.unspend(position);
                Ok(())
            }
        }
    }

    /// Restore a previously deleted (fully spent) vector as all-zero, so
    /// its bits can be re-set during disconnection.
    pub fn insert_all_spent(&mut self, height: u32, n_outputs: u32) {
        let mut v = BlockBitVector::new_all_unspent(n_outputs);
        for i in 0..n_outputs {
            v.spend(i);
        }
        let prev = self.vectors.insert(height, v);
        debug_assert!(
            prev.is_none(),
            "restoring over a live vector at height {height}"
        );
    }

    /// Remove the vector for `height` entirely (disconnecting the block
    /// that created it). Returns whether a vector was present.
    pub fn remove_block(&mut self, height: u32) -> bool {
        self.vectors.remove(&height).is_some()
    }

    /// Access a block's vector (e.g. to count survivors).
    pub fn vector(&self, height: u32) -> Option<&BlockBitVector> {
        self.vectors.get(&height)
    }

    /// Heights with a live vector, in no particular order (invariant
    /// checks and figures).
    pub fn heights(&self) -> impl Iterator<Item = u32> + '_ {
        self.vectors.keys().copied()
    }

    /// Total unspent outputs across all blocks.
    pub fn total_unspent(&self) -> u64 {
        self.vectors.values().map(|v| v.ones() as u64).sum()
    }

    /// Capture the whole set as a [`BitVectorSnapshot`] anchored at
    /// `(height, tip_hash)`. EBV's point: this is the *entire* UTXO state,
    /// and it is a few hundred bytes per thousand blocks, not gigabytes.
    ///
    /// # Panics
    /// If the set holds a vector above `height`, an all-spent vector, or no
    /// vector at `height` itself — states no connected chain produces.
    pub fn snapshot(&self, height: u32, tip_hash: Hash256) -> BitVectorSnapshot {
        let mut vectors: Vec<(u32, BlockBitVector)> =
            self.vectors.iter().map(|(&h, v)| (h, v.clone())).collect();
        vectors.sort_unstable_by_key(|&(h, _)| h);
        let snap = BitVectorSnapshot {
            height,
            tip_hash,
            total_unspent: self.total_unspent(),
            vectors,
        };
        snap.validate()
            .expect("live set satisfies snapshot invariants");
        snap
    }

    /// Memory requirement in both representations. Each entry is charged
    /// its serialized size plus the 4-byte height key.
    pub fn memory(&self) -> BitVectorSetSize {
        let mut size = BitVectorSetSize {
            vectors: self.vectors.len() as u64,
            ..Default::default()
        };
        for v in self.vectors.values() {
            size.optimized += 4 + v.optimized_size() as u64;
            size.unoptimized += 4 + v.dense_size() as u64;
            // Same tiebreak as `Encodable::encode`: dense wins ties.
            if v.sparse_size() < v.dense_size() {
                size.sparse_vectors += 1;
            } else {
                size.dense_vectors += 1;
            }
        }
        size
    }
}

/// A serializable checkpoint of the full validation state at one height:
/// the complete bit-vector set plus the tip it was taken at and the
/// total-unspent count. This is what makes out-of-order IBD cheap for EBV —
/// where Bitcoin would have to ship a multi-gigabyte UTXO set per
/// checkpoint, the bit-vector set serializes in kilobytes.
///
/// The encoding is canonical (heights strictly ascending, each vector in
/// its optimized form), so two snapshots of equal state are byte-identical
/// — the property the parallel-IBD stitcher relies on. Decode enforces
/// every invariant a connected chain guarantees; a snapshot is data from an
/// untrusted worker or peer.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct BitVectorSnapshot {
    height: u32,
    tip_hash: Hash256,
    total_unspent: u64,
    /// `(height, vector)`, heights strictly ascending.
    vectors: Vec<(u32, BlockBitVector)>,
}

impl BitVectorSnapshot {
    /// Height of the chain tip this snapshot captures.
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Hash of the tip block's header.
    pub fn tip_hash(&self) -> Hash256 {
        self.tip_hash
    }

    /// Total unspent outputs across all vectors.
    pub fn total_unspent(&self) -> u64 {
        self.total_unspent
    }

    /// Number of live vectors captured.
    pub fn vector_count(&self) -> usize {
        self.vectors.len()
    }

    /// `sha256d` over the canonical encoding — a compact state commitment
    /// two parties can compare instead of whole snapshots.
    pub fn digest(&self) -> Hash256 {
        sha256d(&self.to_bytes())
    }

    /// Rebuild the in-memory set this snapshot captures.
    pub fn restore(&self) -> BitVectorSet {
        BitVectorSet {
            vectors: self.vectors.iter().cloned().collect(),
        }
    }

    /// The invariants every snapshot of a connected chain satisfies;
    /// enforced on decode and asserted on construction.
    fn validate(&self) -> Result<(), DecodeError> {
        let mut prev: Option<u32> = None;
        let mut total = 0u64;
        for (h, v) in &self.vectors {
            if prev.is_some_and(|p| *h <= p) {
                return Err(DecodeError::Invalid("snapshot heights not ascending"));
            }
            prev = Some(*h);
            if *h > self.height {
                return Err(DecodeError::Invalid("snapshot vector above tip height"));
            }
            if v.all_spent() {
                return Err(DecodeError::Invalid("all-spent vector"));
            }
            total += u64::from(v.ones());
        }
        if total != self.total_unspent {
            return Err(DecodeError::Invalid("snapshot total-unspent mismatch"));
        }
        // The tip's own vector always survives: no block above the tip
        // exists to have spent from it, and it has at least the coinbase.
        if self.vectors.last().map(|(h, _)| *h) != Some(self.height) {
            return Err(DecodeError::Invalid("snapshot tip vector missing"));
        }
        Ok(())
    }
}

impl Encodable for BitVectorSnapshot {
    fn encode(&self, out: &mut Vec<u8>) {
        self.height.encode(out);
        self.tip_hash.encode(out);
        self.total_unspent.encode(out);
        write_varint(out, self.vectors.len() as u64);
        for (h, v) in &self.vectors {
            h.encode(out);
            v.encode(out);
        }
    }

    fn encoded_len(&self) -> usize {
        4 + 32
            + 8
            + varint_len(self.vectors.len() as u64)
            + self
                .vectors
                .iter()
                .map(|(_, v)| 4 + v.optimized_size())
                .sum::<usize>()
    }
}

impl Decodable for BitVectorSnapshot {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let height = u32::decode(r)?;
        let tip_hash = Hash256::decode(r)?;
        let total_unspent = u64::decode(r)?;
        let count = r.read_len()?;
        let mut vectors =
            Vec::with_capacity(count.min(ebv_primitives::encode::MAX_DECODE_PREALLOC));
        for _ in 0..count {
            let h = u32::decode(r)?;
            let v = BlockBitVector::decode(r)?;
            vectors.push((h, v));
        }
        let snap = BitVectorSnapshot {
            height,
            tip_hash,
            total_unspent,
            vectors,
        };
        snap.validate()?;
        Ok(snap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_vector_all_unspent() {
        let v = BlockBitVector::new_all_unspent(100);
        assert_eq!(v.len(), 100);
        assert_eq!(v.ones(), 100);
        for i in 0..100 {
            assert_eq!(v.is_unspent(i), Some(true));
        }
        assert_eq!(v.is_unspent(100), None);
    }

    #[test]
    fn padding_bits_are_clear() {
        // len not a multiple of 64: the ones count must equal len exactly.
        for len in [1u32, 63, 64, 65, 100, 127, 128, 129] {
            let v = BlockBitVector::new_all_unspent(len);
            assert_eq!(v.iter_unspent().count() as u32, len, "len={len}");
        }
    }

    #[test]
    fn spend_and_double_spend() {
        let mut v = BlockBitVector::new_all_unspent(10);
        assert!(v.spend(3));
        assert_eq!(v.is_unspent(3), Some(false));
        assert_eq!(v.ones(), 9);
        assert!(!v.spend(3), "double spend must fail");
        assert!(!v.spend(10), "out of range must fail");
        assert!(v.unspend(3));
        assert!(!v.unspend(3));
    }

    #[test]
    fn iter_unspent_matches_bits() {
        let mut v = BlockBitVector::new_all_unspent(200);
        for i in (0..200).step_by(3) {
            v.spend(i);
        }
        let expected: Vec<u32> = (0..200).filter(|i| i % 3 != 0).collect();
        assert_eq!(v.iter_unspent().collect::<Vec<_>>(), expected);
    }

    #[test]
    fn sparse_beats_dense_when_few_ones() {
        let mut v = BlockBitVector::new_all_unspent(1000);
        for i in 1..1000 {
            v.spend(i);
        }
        // One survivor: sparse = 1+2+2+2 = 7 bytes, dense = 1+2+125 = 128.
        assert_eq!(v.sparse_size(), 7);
        assert_eq!(v.dense_size(), 128);
        assert_eq!(v.optimized_size(), 7);
        assert_eq!(v.to_bytes().len(), 7);
    }

    #[test]
    fn dense_chosen_when_full() {
        let v = BlockBitVector::new_all_unspent(1000);
        assert_eq!(v.optimized_size(), v.dense_size());
        assert_eq!(v.to_bytes().len(), v.dense_size());
    }

    #[test]
    fn paper_example_sparse_representation() {
        // The paper's Fig. 13 idea — a vector with one surviving bit at
        // index 3 is stored as the index array {3} — scaled up to where the
        // byte-granular sparse form actually wins (at 5 bits the dense
        // bitmap is already a single byte, so dense is chosen there).
        let mut v = BlockBitVector::new_all_unspent(100);
        for i in (0..100).filter(|&i| i != 3) {
            v.spend(i);
        }
        let bytes = v.to_bytes();
        assert_eq!(bytes[0], FLAG_SPARSE);
        assert_eq!(&bytes[1..3], &99u16.to_le_bytes()); // len - 1
        assert_eq!(&bytes[3..5], &1u16.to_le_bytes()); // one survivor
        assert_eq!(&bytes[5..], &3u16.to_le_bytes()); // at index 3

        // The tiny paper-scale vector picks dense — and is smaller still.
        let mut tiny = BlockBitVector::new_all_unspent(5);
        for i in [0, 1, 2, 4] {
            tiny.spend(i);
        }
        assert_eq!(tiny.to_bytes()[0], FLAG_DENSE);
        assert!(tiny.optimized_size() < tiny.sparse_size());
    }

    #[test]
    fn encode_round_trip_dense_and_sparse() {
        // Start at 1 so the vector is never all-spent: the set deletes
        // fully-spent vectors, and decode rejects them accordingly.
        for spend_every in [1usize, 2, 3, 10, 200] {
            let mut v = BlockBitVector::new_all_unspent(500);
            for i in (1..500).step_by(spend_every) {
                v.spend(i);
            }
            let got = BlockBitVector::from_bytes(&v.to_bytes()).unwrap();
            assert_eq!(got, v, "spend_every={spend_every}");
        }
    }

    #[test]
    fn decode_rejects_garbage() {
        // Unknown flag byte.
        assert!(BlockBitVector::from_bytes(&[9, 1, 0, 0, 0]).is_err());
        // Dense with trailing junk.
        assert!(BlockBitVector::from_bytes(&[FLAG_DENSE, 0, 0, 1, 0]).is_err());
        // Truncated dense bitmap.
        assert!(BlockBitVector::from_bytes(&[FLAG_DENSE, 20, 0, 1]).is_err());
        // Sparse with out-of-range index (len 5 → stored 4).
        let mut buf = vec![FLAG_SPARSE];
        buf.extend_from_slice(&4u16.to_le_bytes());
        buf.extend_from_slice(&1u16.to_le_bytes()); // count
        buf.extend_from_slice(&9u16.to_le_bytes()); // index ≥ len
        assert!(BlockBitVector::from_bytes(&buf).is_err());
        // Sparse with duplicate index.
        let mut buf = vec![FLAG_SPARSE];
        buf.extend_from_slice(&4u16.to_le_bytes());
        buf.extend_from_slice(&2u16.to_le_bytes());
        buf.extend_from_slice(&3u16.to_le_bytes());
        buf.extend_from_slice(&3u16.to_le_bytes());
        assert!(BlockBitVector::from_bytes(&buf).is_err());
    }

    #[test]
    fn set_spend_flow() {
        let mut s = BitVectorSet::new();
        s.insert_block(0, 3);
        s.insert_block(1, 2);
        assert_eq!(s.total_unspent(), 5);
        assert!(s.check_unspent(0, 2).is_ok());
        s.spend(0, 2).unwrap();
        assert_eq!(
            s.check_unspent(0, 2),
            Err(UvError::AlreadySpent {
                height: 0,
                position: 2
            })
        );
        assert_eq!(
            s.spend(0, 2),
            Err(UvError::AlreadySpent {
                height: 0,
                position: 2
            })
        );
        assert_eq!(
            s.spend(0, 9),
            Err(UvError::PositionOutOfRange {
                height: 0,
                position: 9
            })
        );
        assert_eq!(s.spend(7, 0), Err(UvError::UnknownHeight(7)));
    }

    #[test]
    fn fully_spent_vector_is_deleted() {
        let mut s = BitVectorSet::new();
        s.insert_block(5, 2);
        s.spend(5, 0).unwrap();
        assert_eq!(s.len(), 1);
        s.spend(5, 1).unwrap();
        assert_eq!(s.len(), 0);
        // Height is now unknown, as the paper specifies.
        assert_eq!(s.check_unspent(5, 0), Err(UvError::UnknownHeight(5)));
    }

    #[test]
    fn memory_accounting() {
        let mut s = BitVectorSet::new();
        s.insert_block(0, 1000);
        let full = s.memory();
        assert_eq!(full.vectors, 1);
        assert_eq!(full.optimized, full.unoptimized);
        // Spend all but one output: optimized collapses, unoptimized stays.
        for i in 1..1000 {
            s.spend(0, i).unwrap();
        }
        let sparse = s.memory();
        assert_eq!(sparse.unoptimized, full.unoptimized);
        assert!(sparse.optimized < sparse.unoptimized);
        assert_eq!(sparse.optimized, 4 + 7);
    }

    /// Build the sparse wire form by hand: `len` outputs, the given
    /// surviving indices in the given order.
    fn sparse_bytes(len: u16, indices: &[u16]) -> Vec<u8> {
        let mut buf = vec![FLAG_SPARSE];
        buf.extend_from_slice(&(len - 1).to_le_bytes());
        buf.extend_from_slice(&(indices.len() as u16).to_le_bytes());
        for i in indices {
            buf.extend_from_slice(&i.to_le_bytes());
        }
        buf
    }

    #[test]
    fn decode_rejects_set_padding_bits() {
        // len 5 → one dense byte, bits 5..8 are padding. All five real
        // bits set plus one padding bit: same vector as 0b0001_1111 but a
        // different byte string — must be rejected, not silently accepted.
        let good = [FLAG_DENSE, 4, 0, 0b0001_1111];
        assert!(BlockBitVector::from_bytes(&good).is_ok());
        let bad = [FLAG_DENSE, 4, 0, 0b0011_1111];
        assert_eq!(
            BlockBitVector::from_bytes(&bad),
            Err(DecodeError::Invalid("set padding bits in dense bitmap"))
        );
    }

    #[test]
    fn decode_rejects_all_spent_vectors() {
        // Dense all-zero: the set deletes fully-spent vectors, so no
        // encoder produces this.
        assert_eq!(
            BlockBitVector::from_bytes(&[FLAG_DENSE, 4, 0, 0]),
            Err(DecodeError::Invalid("all-spent vector"))
        );
        // Sparse with zero survivors, same story.
        assert_eq!(
            BlockBitVector::from_bytes(&sparse_bytes(100, &[])),
            Err(DecodeError::Invalid("all-spent vector"))
        );
    }

    #[test]
    fn decode_rejects_non_ascending_sparse_indices() {
        assert_eq!(
            BlockBitVector::from_bytes(&sparse_bytes(1000, &[5, 3])),
            Err(DecodeError::Invalid("sparse indices not ascending"))
        );
        // Duplicates are a special case of non-ascending.
        assert_eq!(
            BlockBitVector::from_bytes(&sparse_bytes(1000, &[3, 3])),
            Err(DecodeError::Invalid("sparse indices not ascending"))
        );
        assert!(BlockBitVector::from_bytes(&sparse_bytes(1000, &[3, 5])).is_ok());
    }

    #[test]
    fn decode_rejects_out_of_range_sparse_index() {
        assert_eq!(
            BlockBitVector::from_bytes(&sparse_bytes(100, &[100])),
            Err(DecodeError::Invalid("sparse index out of range"))
        );
    }

    #[test]
    fn decode_rejects_non_canonical_representation() {
        // One survivor in 1000 outputs: the encoder picks sparse (7 bytes
        // vs 128); a dense encoding of the same vector must be rejected.
        let mut dense = vec![FLAG_DENSE];
        dense.extend_from_slice(&999u16.to_le_bytes());
        let mut bitmap = vec![0u8; 125];
        bitmap[0] = 1; // only index 0 survives
        dense.extend_from_slice(&bitmap);
        assert_eq!(
            BlockBitVector::from_bytes(&dense),
            Err(DecodeError::Invalid("non-canonical dense encoding"))
        );
        // Conversely, a mostly-full vector in sparse form (dense is
        // smaller) is also rejected.
        let indices: Vec<u16> = (0..100).collect();
        assert_eq!(
            BlockBitVector::from_bytes(&sparse_bytes(100, &indices)),
            Err(DecodeError::Invalid("non-canonical sparse encoding"))
        );
    }

    #[test]
    fn decode_encode_is_identity_on_valid_buffers() {
        // The codec is a bijection: every accepted byte string re-encodes
        // to itself.
        for spend_every in [1usize, 2, 3, 10, 50, 200] {
            let mut v = BlockBitVector::new_all_unspent(500);
            for i in (1..500).step_by(spend_every) {
                v.spend(i);
            }
            let bytes = v.to_bytes();
            let decoded = BlockBitVector::from_bytes(&bytes).unwrap();
            assert_eq!(decoded.to_bytes(), bytes, "spend_every={spend_every}");
        }
    }

    /// A small but non-trivial set: three blocks, some spends.
    fn sample_set() -> BitVectorSet {
        let mut s = BitVectorSet::new();
        s.insert_block(0, 10);
        s.insert_block(3, 300);
        s.insert_block(7, 4);
        s.spend(0, 2).unwrap();
        for i in 5..290 {
            s.spend(3, i).unwrap();
        }
        s
    }

    #[test]
    fn snapshot_round_trip_and_digest() {
        let s = sample_set();
        let snap = s.snapshot(7, sha256d(b"tip"));
        assert_eq!(snap.height(), 7);
        assert_eq!(snap.total_unspent(), s.total_unspent());
        assert_eq!(snap.vector_count(), 3);
        let bytes = snap.to_bytes();
        assert_eq!(bytes.len(), snap.encoded_len());
        let back = BitVectorSnapshot::from_bytes(&bytes).unwrap();
        assert_eq!(back, snap);
        assert_eq!(back.digest(), snap.digest());
        // Restore reproduces the set exactly (snapshot again, compare).
        let restored = snap.restore();
        assert_eq!(restored.snapshot(7, sha256d(b"tip")), snap);
        // Equal state from a different construction order is byte-identical.
        let mut s2 = BitVectorSet::new();
        s2.insert_block(7, 4);
        s2.insert_block(3, 300);
        s2.insert_block(0, 10);
        for i in 5..290 {
            s2.spend(3, i).unwrap();
        }
        s2.spend(0, 2).unwrap();
        assert_eq!(s2.snapshot(7, sha256d(b"tip")).to_bytes(), bytes);
    }

    #[test]
    fn snapshot_decode_rejects_malformed() {
        let snap = sample_set().snapshot(7, sha256d(b"tip"));
        let bytes = snap.to_bytes();

        // Wrong total-unspent (flip the low byte of the u64 at offset 36).
        let mut bad = bytes.clone();
        bad[36] ^= 1;
        assert_eq!(
            BitVectorSnapshot::from_bytes(&bad),
            Err(DecodeError::Invalid("snapshot total-unspent mismatch"))
        );

        // Truncation anywhere is an error.
        for cut in [0, 10, 36, bytes.len() - 1] {
            assert!(BitVectorSnapshot::from_bytes(&bytes[..cut]).is_err());
        }
        // Trailing garbage is an error.
        let mut long = bytes.clone();
        long.push(0);
        assert_eq!(
            BitVectorSnapshot::from_bytes(&long),
            Err(DecodeError::TrailingBytes(1))
        );

        // Tip vector missing: snapshot claims height 9 but last vector is
        // at 7 (adjust total stays right, so only the tip check fires).
        let mut s = sample_set();
        s.insert_block(9, 5);
        let good9 = s.snapshot(9, sha256d(b"tip"));
        let mut bad9 = good9.to_bytes();
        bad9[0] = 10; // height 9 → 10, vectors untouched
        assert_eq!(
            BitVectorSnapshot::from_bytes(&bad9),
            Err(DecodeError::Invalid("snapshot tip vector missing"))
        );
    }

    #[test]
    fn snapshot_decode_rejects_unordered_heights() {
        // Hand-build an encoding with descending heights.
        let v = BlockBitVector::new_all_unspent(4);
        let mut buf = Vec::new();
        5u32.encode(&mut buf); // height
        sha256d(b"t").encode(&mut buf);
        8u64.encode(&mut buf); // total: 2 vectors × 4 ones
        write_varint(&mut buf, 2);
        5u32.encode(&mut buf);
        v.encode(&mut buf);
        3u32.encode(&mut buf);
        v.encode(&mut buf);
        assert_eq!(
            BitVectorSnapshot::from_bytes(&buf),
            Err(DecodeError::Invalid("snapshot heights not ascending"))
        );
        // Vector above the claimed tip height.
        let mut buf = Vec::new();
        5u32.encode(&mut buf);
        sha256d(b"t").encode(&mut buf);
        8u64.encode(&mut buf);
        write_varint(&mut buf, 2);
        5u32.encode(&mut buf);
        v.encode(&mut buf);
        9u32.encode(&mut buf);
        v.encode(&mut buf);
        assert_eq!(
            BitVectorSnapshot::from_bytes(&buf),
            Err(DecodeError::Invalid("snapshot vector above tip height"))
        );
    }
}
