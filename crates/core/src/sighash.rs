//! Signature checking shared by the two validators.
//!
//! Both validators run the same script engine (SV is unchanged in EBV);
//! the only difference is where the locking script and the spent-output
//! coordinates come from — the database in the baseline, the input proof
//! in EBV.
//!
//! Beyond the strict per-input path ([`DigestChecker`]) this module hosts
//! the batched SV pipeline: [`sv_chunk_batched`] runs a chunk of script
//! jobs with an optimistic [`CollectingChecker`] that defers ECDSA checks
//! into one [`BatchVerifier`] equation, then strictly re-runs any job the
//! batch could not certify. The final verdict for every job is byte-
//! identical to what [`DigestChecker`] would have produced, so callers can
//! keep their error-selection logic unchanged.

use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::{Arc, RwLock, TryLockError};

use ebv_primitives::ec::{BatchVerifier, PreparedPublicKey, PublicKey, Signature};
use ebv_primitives::hash::Hash256;
use ebv_script::{verify_spend, Script, ScriptError, SignatureChecker};

/// Length of a signature push: 64-byte compact signature + 1 sighash-type
/// byte.
pub const SIG_PUSH_LEN: usize = 65;

/// Maximum number of script jobs fed to one [`sv_chunk_batched`] call.
///
/// Bounds both the bisection depth on a failed batch and the size of the
/// shared multi-scalar ladder (whose stream count grows linearly with the
/// batch). 64 keeps the ladder's working set in cache while amortizing the
/// per-batch fixed costs (transcript hashing, Montgomery inversions) well.
pub const SV_BATCH_MAX: usize = 64;

/// Number of shards in [`PubkeyCache`]; must be a power of two.
const PUBKEY_CACHE_SHARDS: usize = 16;

/// Per-block cache of parsed-and-prepared public keys, keyed by the 33-byte
/// SEC compressed encoding.
///
/// Workloads reuse signer keys heavily across a block's inputs, so without
/// a cache every input re-parses its pubkey (a field `sqrt` for `lift_x`)
/// and rebuilds the odd-multiples table. `None` entries memoize parse
/// *failures* so malformed keys are also rejected at HashMap speed on
/// repeat sightings.
///
/// The map is sharded [`PUBKEY_CACHE_SHARDS`] ways by an FNV-1a hash of the
/// key bytes, each shard behind its own `RwLock`, so rayon verification
/// workers hitting distinct keys never serialize on one lock. Lock
/// acquisition first tries the non-blocking path and counts a
/// `cache.pubkey.shard_contention` event before falling back to the
/// blocking one, making contention observable instead of silent. First
/// insert wins on a write race, which is harmless because both racers
/// computed the same value.
pub struct PubkeyCache {
    shards: [RwLock<PubkeyShard>; PUBKEY_CACHE_SHARDS],
}

/// One shard's map: compressed key bytes → prepared key, or `None` for a
/// memoized parse failure.
type PubkeyShard = HashMap<[u8; 33], Option<Arc<PreparedPublicKey>>>;

impl Default for PubkeyCache {
    fn default() -> PubkeyCache {
        PubkeyCache {
            shards: std::array::from_fn(|_| RwLock::new(HashMap::new())),
        }
    }
}

/// FNV-1a over the 33 key bytes, folded to a shard index. The compressed
/// encoding starts with a near-constant parity byte, so the hash has to mix
/// the whole encoding rather than sample a prefix.
fn shard_of(key: &[u8; 33]) -> usize {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in key {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    ((h ^ (h >> 32)) as usize) & (PUBKEY_CACHE_SHARDS - 1)
}

impl PubkeyCache {
    pub fn new() -> PubkeyCache {
        PubkeyCache::default()
    }

    /// Parse and prepare `pubkey`, consulting the cache first. Returns
    /// `None` for keys that fail SEC decoding (wrong length/prefix or not
    /// on the curve).
    pub fn get_or_prepare(&self, pubkey: &[u8]) -> Option<Arc<PreparedPublicKey>> {
        let key: [u8; 33] = pubkey.try_into().ok()?;
        let shard = &self.shards[shard_of(&key)];
        let guard = match shard.try_read() {
            Ok(guard) => guard,
            Err(TryLockError::WouldBlock) => {
                ebv_telemetry::counter!("cache.pubkey.shard_contention").inc();
                shard.read().expect("cache lock")
            }
            Err(TryLockError::Poisoned(e)) => panic!("cache lock poisoned: {e}"),
        };
        if let Some(cached) = guard.get(&key) {
            ebv_telemetry::counter!("ebv.pubkey_cache.hits").inc();
            return cached.clone();
        }
        drop(guard);
        ebv_telemetry::counter!("ebv.pubkey_cache.misses").inc();
        let prepared = PublicKey::from_compressed(&key)
            .ok()
            .map(|pk| Arc::new(pk.prepare()));
        let mut map = match shard.try_write() {
            Ok(guard) => guard,
            Err(TryLockError::WouldBlock) => {
                ebv_telemetry::counter!("cache.pubkey.shard_contention").inc();
                shard.write().expect("cache lock")
            }
            Err(TryLockError::Poisoned(e)) => panic!("cache lock poisoned: {e}"),
        };
        map.entry(key).or_insert_with(|| prepared.clone());
        map.get(&key).expect("just inserted").clone()
    }

    /// Number of distinct pubkey encodings seen (tests/diagnostics).
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.read().expect("cache lock").len())
            .sum()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Per-shard entry counts, for balance diagnostics.
    pub fn shard_sizes(&self) -> Vec<usize> {
        self.shards
            .iter()
            .map(|s| s.read().expect("cache lock").len())
            .collect()
    }
}

/// A [`SignatureChecker`] bound to one spend digest (and, for
/// `OP_CHECKLOCKTIMEVERIFY`, the spending transaction's lock time),
/// optionally sharing a per-block [`PubkeyCache`].
pub struct DigestChecker<'a> {
    digest: [u8; 32],
    lock_time: u32,
    cache: Option<&'a PubkeyCache>,
}

impl<'a> DigestChecker<'a> {
    /// Checker with no lock-time context (CLTV scripts fail closed).
    pub fn new(digest: Hash256) -> DigestChecker<'a> {
        DigestChecker {
            digest: *digest.as_bytes(),
            lock_time: 0,
            cache: None,
        }
    }

    /// Checker carrying the spending transaction's lock time.
    pub fn with_lock_time(digest: Hash256, lock_time: u32) -> DigestChecker<'a> {
        DigestChecker {
            digest: *digest.as_bytes(),
            lock_time,
            cache: None,
        }
    }

    /// Checker carrying lock time and a shared per-block pubkey cache.
    pub fn with_context(
        digest: Hash256,
        lock_time: u32,
        cache: &'a PubkeyCache,
    ) -> DigestChecker<'a> {
        DigestChecker {
            digest: *digest.as_bytes(),
            lock_time,
            cache: Some(cache),
        }
    }
}

impl SignatureChecker for DigestChecker<'_> {
    fn check_sig(&self, sig: &[u8], pubkey: &[u8]) -> bool {
        if sig.len() != SIG_PUSH_LEN || sig[SIG_PUSH_LEN - 1] != ebv_chain::SIGHASH_ALL {
            return false;
        }
        if let Some(cache) = self.cache {
            let Some(prepared) = cache.get_or_prepare(pubkey) else {
                return false;
            };
            return prepared
                .verify_compact(&self.digest, &sig[..64])
                .unwrap_or(false);
        }
        let Ok(pk) = PublicKey::from_compressed(pubkey) else {
            return false;
        };
        pk.verify_compact(&self.digest, &sig[..64]).unwrap_or(false)
    }

    fn check_lock_time(&self, required: i64) -> bool {
        required >= 0 && required <= self.lock_time as i64
    }
}

/// One ECDSA check deferred by a [`CollectingChecker`] for batch
/// settlement.
struct DeferredSig {
    digest: [u8; 32],
    sig: Signature,
    key: Arc<PreparedPublicKey>,
}

/// A [`SignatureChecker`] that *defers* ECDSA instead of evaluating it.
///
/// Structural checks (push length, sighash-type byte, pubkey decoding,
/// signature component ranges) run inline and fail exactly where the strict
/// [`DigestChecker`] would fail. Only when everything parses does the
/// checker record the (digest, signature, key) triple and answer `true`
/// optimistically.
///
/// The optimistic `true` can steer script control flow differently from the
/// strict run (e.g. `OP_CHECKSIG OP_NOT` branches), so a deferring run is
/// *never* authoritative on its own: [`sv_chunk_batched`] only trusts it
/// when the batch later certifies every deferred check, and strictly
/// re-runs the job otherwise.
struct CollectingChecker<'a> {
    digest: [u8; 32],
    lock_time: u32,
    cache: &'a PubkeyCache,
    deferred: RefCell<Vec<DeferredSig>>,
}

impl<'a> CollectingChecker<'a> {
    fn new(digest: Hash256, lock_time: u32, cache: &'a PubkeyCache) -> CollectingChecker<'a> {
        CollectingChecker {
            digest: *digest.as_bytes(),
            lock_time,
            cache,
            deferred: RefCell::new(Vec::new()),
        }
    }

    fn into_deferred(self) -> Vec<DeferredSig> {
        self.deferred.into_inner()
    }
}

impl SignatureChecker for CollectingChecker<'_> {
    fn check_sig(&self, sig: &[u8], pubkey: &[u8]) -> bool {
        if sig.len() != SIG_PUSH_LEN || sig[SIG_PUSH_LEN - 1] != ebv_chain::SIGHASH_ALL {
            return false;
        }
        let Some(key) = self.cache.get_or_prepare(pubkey) else {
            return false;
        };
        let compact: &[u8; 64] = sig[..64].try_into().expect("length checked");
        let Ok(parsed) = Signature::from_compact(compact) else {
            return false;
        };
        self.deferred.borrow_mut().push(DeferredSig {
            digest: self.digest,
            sig: parsed,
            key,
        });
        true
    }

    fn check_lock_time(&self, required: i64) -> bool {
        required >= 0 && required <= self.lock_time as i64
    }
}

/// One script-verification job: everything [`sv_chunk_batched`] needs to
/// run a spend through the engine.
pub struct SvJob<'b> {
    pub digest: Hash256,
    pub lock_time: u32,
    pub unlocking: &'b Script,
    pub locking: &'b Script,
}

/// Run a chunk of SV jobs, settling their ECDSA checks through one batch
/// equation, and return each job's verdict — guaranteed identical to what a
/// per-job strict run with [`DigestChecker::with_context`] returns.
///
/// Three passes:
///
/// 1. **Optimistic collect.** Each job runs with a [`CollectingChecker`].
///    A job that deferred nothing got a fully authoritative run (no ECDSA
///    was reached, so optimism never fired) and its result is final.
/// 2. **Batch settle.** All signatures deferred by jobs that *passed* the
///    optimistic run go into one [`BatchVerifier`]. A job whose deferred
///    checks all certify keeps its `Ok`: the optimistic `true`s were the
///    truth, so control flow matched the strict run.
/// 3. **Strict rerun.** Jobs that failed optimistically, or had any
///    deferred check rejected by the batch, re-run with the strict
///    [`DigestChecker`] for their authoritative verdict (the rerun also
///    regenerates the exact [`ScriptError`] the strict path reports).
pub fn sv_chunk_batched(jobs: &[SvJob<'_>], cache: &PubkeyCache) -> Vec<Result<(), ScriptError>> {
    // Pass 1: optimistic run, collecting deferred ECDSA checks per job.
    let mut optimistic: Vec<Result<(), ScriptError>> = Vec::with_capacity(jobs.len());
    let mut deferred: Vec<Vec<DeferredSig>> = Vec::with_capacity(jobs.len());
    for job in jobs {
        let checker = CollectingChecker::new(job.digest, job.lock_time, cache);
        let result = verify_spend(job.unlocking, job.locking, &checker);
        optimistic.push(result);
        deferred.push(checker.into_deferred());
    }

    // Pass 2: one batch over every signature deferred by optimistically-Ok
    // jobs. Failed jobs rerun strictly regardless, so batching their
    // signatures would only waste equation work.
    let mut batch = BatchVerifier::new();
    let mut spans: Vec<std::ops::Range<usize>> = Vec::with_capacity(jobs.len());
    for (result, sigs) in optimistic.iter().zip(&deferred) {
        let start = batch.len();
        if result.is_ok() {
            for d in sigs {
                batch.push(d.digest, d.sig, &d.key);
            }
        }
        spans.push(start..batch.len());
    }
    let verdicts = if batch.is_empty() {
        Vec::new()
    } else {
        ebv_telemetry::counter!("sv.batch.batches").inc();
        ebv_telemetry::counter!("sv.batch.sigs").add(batch.len() as u64);
        let outcome = batch.verify();
        ebv_telemetry::counter!("sv.batch.equation_checks")
            .add(outcome.stats.equation_checks as u64);
        ebv_telemetry::counter!("sv.batch.individual_fallbacks")
            .add(outcome.stats.individual_checks as u64);
        outcome.verdicts
    };

    // Pass 3: strict rerun for jobs the batch could not certify.
    jobs.iter()
        .enumerate()
        .map(|(i, job)| {
            let certified = optimistic[i].is_ok() && verdicts[spans[i].clone()].iter().all(|&v| v);
            if certified {
                Ok(())
            } else if optimistic[i].is_err() && deferred[i].is_empty() {
                // No ECDSA was deferred, so the optimistic run *was* the
                // strict run; its error is authoritative.
                optimistic[i]
            } else {
                ebv_telemetry::counter!("sv.batch.strict_reruns").inc();
                let checker = DigestChecker::with_context(job.digest, job.lock_time, cache);
                verify_spend(job.unlocking, job.locking, &checker)
            }
        })
        .collect()
}

/// Build the signature push for `digest` with private key `sk`.
pub fn sign_input(sk: &ebv_primitives::ec::PrivateKey, digest: &Hash256) -> Vec<u8> {
    let mut out = sk.sign(digest.as_bytes()).to_compact().to_vec();
    out.push(ebv_chain::SIGHASH_ALL);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ebv_primitives::ec::PrivateKey;
    use ebv_primitives::hash::sha256d;
    use ebv_script::Builder;

    #[test]
    fn sign_then_check() {
        let sk = PrivateKey::from_seed(11);
        let digest = sha256d(b"spend");
        let sig = sign_input(&sk, &digest);
        let checker = DigestChecker::new(digest);
        assert!(checker.check_sig(&sig, &sk.public_key().to_compressed()));
    }

    #[test]
    fn rejects_wrong_digest_key_or_format() {
        let sk = PrivateKey::from_seed(11);
        let digest = sha256d(b"spend");
        let sig = sign_input(&sk, &digest);

        let wrong_digest = DigestChecker::new(sha256d(b"other"));
        assert!(!wrong_digest.check_sig(&sig, &sk.public_key().to_compressed()));

        let checker = DigestChecker::new(digest);
        let other = PrivateKey::from_seed(12).public_key();
        assert!(!checker.check_sig(&sig, &other.to_compressed()));

        // Truncated signature and bad sighash byte.
        assert!(!checker.check_sig(&sig[..64], &sk.public_key().to_compressed()));
        let mut bad_type = sig.clone();
        bad_type[64] = 0x03;
        assert!(!checker.check_sig(&bad_type, &sk.public_key().to_compressed()));
        // Garbage pubkey.
        assert!(!checker.check_sig(&sig, &[0u8; 33]));
    }

    #[test]
    fn cached_checker_matches_uncached() {
        let sk = PrivateKey::from_seed(11);
        let digest = sha256d(b"spend");
        let sig = sign_input(&sk, &digest);
        let pk = sk.public_key().to_compressed();

        let cache = PubkeyCache::new();
        let cached = DigestChecker::with_context(digest, 0, &cache);
        assert!(cached.check_sig(&sig, &pk));
        // Second check hits the cache; still one distinct key.
        assert!(cached.check_sig(&sig, &pk));
        assert_eq!(cache.len(), 1);

        // Wrong key still rejected through the cache.
        let other = PrivateKey::from_seed(12).public_key().to_compressed();
        assert!(!cached.check_sig(&sig, &other));
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn cache_memoizes_parse_failures() {
        let cache = PubkeyCache::new();
        // Bad prefix byte: parse fails, and the failure is cached.
        assert!(cache.get_or_prepare(&[0u8; 33]).is_none());
        assert!(cache.get_or_prepare(&[0u8; 33]).is_none());
        assert_eq!(cache.len(), 1);
        // Wrong length never enters the cache.
        assert!(cache.get_or_prepare(&[2u8; 10]).is_none());
        assert_eq!(cache.len(), 1);
        // A good key round-trips.
        let pk = PrivateKey::from_seed(3).public_key();
        let prepared = cache.get_or_prepare(&pk.to_compressed()).unwrap();
        assert_eq!(prepared.public_key(), &pk);
    }

    #[test]
    fn cache_shards_spread_keys() {
        let cache = PubkeyCache::new();
        for seed in 0..64u64 {
            let pk = PrivateKey::from_seed(seed).public_key();
            assert!(cache.get_or_prepare(&pk.to_compressed()).is_some());
        }
        assert_eq!(cache.len(), 64);
        let sizes = cache.shard_sizes();
        assert_eq!(sizes.len(), PUBKEY_CACHE_SHARDS);
        assert_eq!(sizes.iter().sum::<usize>(), 64);
        // FNV-1a should touch well more than a couple of shards with 64
        // distinct keys (probability of ≤ 4 occupied is negligible).
        assert!(sizes.iter().filter(|&&s| s > 0).count() > 4);
    }

    #[test]
    fn cltv_respects_lock_time() {
        let digest = sha256d(b"cltv");
        let cache = PubkeyCache::new();
        let checker = DigestChecker::with_context(digest, 500, &cache);
        assert!(checker.check_lock_time(500));
        assert!(!checker.check_lock_time(501));
        assert!(!checker.check_lock_time(-1));
    }

    /// A standard P2PKH-style spend pair for `sk` over `digest`.
    fn spend_pair(sk: &PrivateKey, digest: Hash256, tamper: bool) -> (Script, Script) {
        let pk = sk.public_key();
        let mut sig = sign_input(sk, &digest);
        if tamper {
            sig[5] ^= 0x40;
        }
        let unlocking = ebv_script::standard::p2pkh_unlock(&sig, &pk.to_compressed());
        let locking = ebv_script::standard::p2pkh_lock(&pk.address_hash());
        (unlocking, locking)
    }

    #[test]
    fn batched_chunk_matches_strict_per_job() {
        let cache = PubkeyCache::new();
        let mut scripts = Vec::new();
        for i in 0..12u64 {
            let sk = PrivateKey::from_seed(i % 3);
            let digest = sha256d(format!("job {i}").as_bytes());
            // Tamper jobs 4 and 9.
            let pair = spend_pair(&sk, digest, i == 4 || i == 9);
            scripts.push((digest, pair));
        }
        let jobs: Vec<SvJob<'_>> = scripts
            .iter()
            .map(|(digest, (unlocking, locking))| SvJob {
                digest: *digest,
                lock_time: 0,
                unlocking,
                locking,
            })
            .collect();
        let batched = sv_chunk_batched(&jobs, &cache);

        let strict_cache = PubkeyCache::new();
        for (i, job) in jobs.iter().enumerate() {
            let checker = DigestChecker::with_context(job.digest, job.lock_time, &strict_cache);
            let strict = verify_spend(job.unlocking, job.locking, &checker);
            assert_eq!(batched[i], strict, "job {i}");
            assert_eq!(batched[i].is_ok(), i != 4 && i != 9, "job {i}");
        }
    }

    #[test]
    fn batched_chunk_handles_structural_failures() {
        let cache = PubkeyCache::new();
        let sk = PrivateKey::from_seed(1);
        let digest = sha256d(b"structural");
        let (unlocking, locking) = spend_pair(&sk, digest, false);
        // A job that fails before any ECDSA is reached: empty unlocking
        // script leaves the stack short.
        let empty = Builder::new().into_script();
        let jobs = [
            SvJob {
                digest,
                lock_time: 0,
                unlocking: &unlocking,
                locking: &locking,
            },
            SvJob {
                digest,
                lock_time: 0,
                unlocking: &empty,
                locking: &locking,
            },
        ];
        let batched = sv_chunk_batched(&jobs, &cache);
        assert!(batched[0].is_ok());
        let strict = verify_spend(
            &empty,
            &locking,
            &DigestChecker::with_context(digest, 0, &cache),
        );
        assert_eq!(batched[1], strict);
        assert!(batched[1].is_err());
    }
}
