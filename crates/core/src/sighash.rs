//! Signature checking shared by the two validators.
//!
//! Both validators run the same script engine (SV is unchanged in EBV);
//! the only difference is where the locking script and the spent-output
//! coordinates come from — the database in the baseline, the input proof
//! in EBV.

use ebv_primitives::ec::PublicKey;
use ebv_primitives::hash::Hash256;
use ebv_script::SignatureChecker;

/// Length of a signature push: 64-byte compact signature + 1 sighash-type
/// byte.
pub const SIG_PUSH_LEN: usize = 65;

/// A [`SignatureChecker`] bound to one spend digest (and, for
/// `OP_CHECKLOCKTIMEVERIFY`, the spending transaction's lock time).
pub struct DigestChecker {
    digest: [u8; 32],
    lock_time: u32,
}

impl DigestChecker {
    /// Checker with no lock-time context (CLTV scripts fail closed).
    pub fn new(digest: Hash256) -> DigestChecker {
        DigestChecker {
            digest: *digest.as_bytes(),
            lock_time: 0,
        }
    }

    /// Checker carrying the spending transaction's lock time.
    pub fn with_lock_time(digest: Hash256, lock_time: u32) -> DigestChecker {
        DigestChecker {
            digest: *digest.as_bytes(),
            lock_time,
        }
    }
}

impl SignatureChecker for DigestChecker {
    fn check_sig(&self, sig: &[u8], pubkey: &[u8]) -> bool {
        if sig.len() != SIG_PUSH_LEN || sig[SIG_PUSH_LEN - 1] != ebv_chain::SIGHASH_ALL {
            return false;
        }
        let Ok(pk) = PublicKey::from_compressed(pubkey) else {
            return false;
        };
        pk.verify_compact(&self.digest, &sig[..64]).unwrap_or(false)
    }

    fn check_lock_time(&self, required: i64) -> bool {
        required >= 0 && required <= self.lock_time as i64
    }
}

/// Build the signature push for `digest` with private key `sk`.
pub fn sign_input(sk: &ebv_primitives::ec::PrivateKey, digest: &Hash256) -> Vec<u8> {
    let mut out = sk.sign(digest.as_bytes()).to_compact().to_vec();
    out.push(ebv_chain::SIGHASH_ALL);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ebv_primitives::ec::PrivateKey;
    use ebv_primitives::hash::sha256d;

    #[test]
    fn sign_then_check() {
        let sk = PrivateKey::from_seed(11);
        let digest = sha256d(b"spend");
        let sig = sign_input(&sk, &digest);
        let checker = DigestChecker::new(digest);
        assert!(checker.check_sig(&sig, &sk.public_key().to_compressed()));
    }

    #[test]
    fn rejects_wrong_digest_key_or_format() {
        let sk = PrivateKey::from_seed(11);
        let digest = sha256d(b"spend");
        let sig = sign_input(&sk, &digest);

        let wrong_digest = DigestChecker::new(sha256d(b"other"));
        assert!(!wrong_digest.check_sig(&sig, &sk.public_key().to_compressed()));

        let checker = DigestChecker::new(digest);
        let other = PrivateKey::from_seed(12).public_key();
        assert!(!checker.check_sig(&sig, &other.to_compressed()));

        // Truncated signature and bad sighash byte.
        assert!(!checker.check_sig(&sig[..64], &sk.public_key().to_compressed()));
        let mut bad_type = sig.clone();
        bad_type[64] = 0x03;
        assert!(!checker.check_sig(&bad_type, &sk.public_key().to_compressed()));
        // Garbage pubkey.
        assert!(!checker.check_sig(&sig, &[0u8; 33]));
    }
}
