//! Signature checking shared by the two validators.
//!
//! Both validators run the same script engine (SV is unchanged in EBV);
//! the only difference is where the locking script and the spent-output
//! coordinates come from — the database in the baseline, the input proof
//! in EBV.

use std::collections::HashMap;
use std::sync::{Arc, RwLock};

use ebv_primitives::ec::{PreparedPublicKey, PublicKey};
use ebv_primitives::hash::Hash256;
use ebv_script::SignatureChecker;

/// Length of a signature push: 64-byte compact signature + 1 sighash-type
/// byte.
pub const SIG_PUSH_LEN: usize = 65;

/// Per-block cache of parsed-and-prepared public keys, keyed by the 33-byte
/// SEC compressed encoding.
///
/// Workloads reuse signer keys heavily across a block's inputs, so without
/// a cache every input re-parses its pubkey (a field `sqrt` for `lift_x`)
/// and rebuilds the odd-multiples table. `None` entries memoize parse
/// *failures* so malformed keys are also rejected at HashMap speed on
/// repeat sightings. Shared read-mostly across the rayon verification
/// workers; first insert wins on a race, which is harmless because both
/// racers computed the same value.
#[derive(Default)]
pub struct PubkeyCache {
    map: RwLock<HashMap<[u8; 33], Option<Arc<PreparedPublicKey>>>>,
}

impl PubkeyCache {
    pub fn new() -> PubkeyCache {
        PubkeyCache::default()
    }

    /// Parse and prepare `pubkey`, consulting the cache first. Returns
    /// `None` for keys that fail SEC decoding (wrong length/prefix or not
    /// on the curve).
    pub fn get_or_prepare(&self, pubkey: &[u8]) -> Option<Arc<PreparedPublicKey>> {
        let key: [u8; 33] = pubkey.try_into().ok()?;
        if let Some(cached) = self.map.read().expect("cache lock").get(&key) {
            ebv_telemetry::counter!("ebv.pubkey_cache.hits").inc();
            return cached.clone();
        }
        ebv_telemetry::counter!("ebv.pubkey_cache.misses").inc();
        let prepared = PublicKey::from_compressed(&key)
            .ok()
            .map(|pk| Arc::new(pk.prepare()));
        let mut map = self.map.write().expect("cache lock");
        map.entry(key).or_insert_with(|| prepared.clone());
        map.get(&key).expect("just inserted").clone()
    }

    /// Number of distinct pubkey encodings seen (tests/diagnostics).
    pub fn len(&self) -> usize {
        self.map.read().expect("cache lock").len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A [`SignatureChecker`] bound to one spend digest (and, for
/// `OP_CHECKLOCKTIMEVERIFY`, the spending transaction's lock time),
/// optionally sharing a per-block [`PubkeyCache`].
pub struct DigestChecker<'a> {
    digest: [u8; 32],
    lock_time: u32,
    cache: Option<&'a PubkeyCache>,
}

impl<'a> DigestChecker<'a> {
    /// Checker with no lock-time context (CLTV scripts fail closed).
    pub fn new(digest: Hash256) -> DigestChecker<'a> {
        DigestChecker {
            digest: *digest.as_bytes(),
            lock_time: 0,
            cache: None,
        }
    }

    /// Checker carrying the spending transaction's lock time.
    pub fn with_lock_time(digest: Hash256, lock_time: u32) -> DigestChecker<'a> {
        DigestChecker {
            digest: *digest.as_bytes(),
            lock_time,
            cache: None,
        }
    }

    /// Checker carrying lock time and a shared per-block pubkey cache.
    pub fn with_context(
        digest: Hash256,
        lock_time: u32,
        cache: &'a PubkeyCache,
    ) -> DigestChecker<'a> {
        DigestChecker {
            digest: *digest.as_bytes(),
            lock_time,
            cache: Some(cache),
        }
    }
}

impl SignatureChecker for DigestChecker<'_> {
    fn check_sig(&self, sig: &[u8], pubkey: &[u8]) -> bool {
        if sig.len() != SIG_PUSH_LEN || sig[SIG_PUSH_LEN - 1] != ebv_chain::SIGHASH_ALL {
            return false;
        }
        if let Some(cache) = self.cache {
            let Some(prepared) = cache.get_or_prepare(pubkey) else {
                return false;
            };
            return prepared
                .verify_compact(&self.digest, &sig[..64])
                .unwrap_or(false);
        }
        let Ok(pk) = PublicKey::from_compressed(pubkey) else {
            return false;
        };
        pk.verify_compact(&self.digest, &sig[..64]).unwrap_or(false)
    }

    fn check_lock_time(&self, required: i64) -> bool {
        required >= 0 && required <= self.lock_time as i64
    }
}

/// Build the signature push for `digest` with private key `sk`.
pub fn sign_input(sk: &ebv_primitives::ec::PrivateKey, digest: &Hash256) -> Vec<u8> {
    let mut out = sk.sign(digest.as_bytes()).to_compact().to_vec();
    out.push(ebv_chain::SIGHASH_ALL);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ebv_primitives::ec::PrivateKey;
    use ebv_primitives::hash::sha256d;

    #[test]
    fn sign_then_check() {
        let sk = PrivateKey::from_seed(11);
        let digest = sha256d(b"spend");
        let sig = sign_input(&sk, &digest);
        let checker = DigestChecker::new(digest);
        assert!(checker.check_sig(&sig, &sk.public_key().to_compressed()));
    }

    #[test]
    fn rejects_wrong_digest_key_or_format() {
        let sk = PrivateKey::from_seed(11);
        let digest = sha256d(b"spend");
        let sig = sign_input(&sk, &digest);

        let wrong_digest = DigestChecker::new(sha256d(b"other"));
        assert!(!wrong_digest.check_sig(&sig, &sk.public_key().to_compressed()));

        let checker = DigestChecker::new(digest);
        let other = PrivateKey::from_seed(12).public_key();
        assert!(!checker.check_sig(&sig, &other.to_compressed()));

        // Truncated signature and bad sighash byte.
        assert!(!checker.check_sig(&sig[..64], &sk.public_key().to_compressed()));
        let mut bad_type = sig.clone();
        bad_type[64] = 0x03;
        assert!(!checker.check_sig(&bad_type, &sk.public_key().to_compressed()));
        // Garbage pubkey.
        assert!(!checker.check_sig(&sig, &[0u8; 33]));
    }

    #[test]
    fn cached_checker_matches_uncached() {
        let sk = PrivateKey::from_seed(11);
        let digest = sha256d(b"spend");
        let sig = sign_input(&sk, &digest);
        let pk = sk.public_key().to_compressed();

        let cache = PubkeyCache::new();
        let cached = DigestChecker::with_context(digest, 0, &cache);
        assert!(cached.check_sig(&sig, &pk));
        // Second check hits the cache; still one distinct key.
        assert!(cached.check_sig(&sig, &pk));
        assert_eq!(cache.len(), 1);

        // Wrong key still rejected through the cache.
        let other = PrivateKey::from_seed(12).public_key().to_compressed();
        assert!(!cached.check_sig(&sig, &other));
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn cache_memoizes_parse_failures() {
        let cache = PubkeyCache::new();
        // Bad prefix byte: parse fails, and the failure is cached.
        assert!(cache.get_or_prepare(&[0u8; 33]).is_none());
        assert!(cache.get_or_prepare(&[0u8; 33]).is_none());
        assert_eq!(cache.len(), 1);
        // Wrong length never enters the cache.
        assert!(cache.get_or_prepare(&[2u8; 10]).is_none());
        assert_eq!(cache.len(), 1);
        // A good key round-trips.
        let pk = PrivateKey::from_seed(3).public_key();
        let prepared = cache.get_or_prepare(&pk.to_compressed()).unwrap();
        assert_eq!(prepared.public_key(), &pk);
    }

    #[test]
    fn cltv_respects_lock_time() {
        let digest = sha256d(b"cltv");
        let cache = PubkeyCache::new();
        let checker = DigestChecker::with_context(digest, 500, &cache);
        assert!(checker.check_lock_time(500));
        assert!(!checker.check_lock_time(501));
        assert!(!checker.check_lock_time(-1));
    }
}
