//! Block synchronization between nodes — the paper's §VI-A measurement
//! path ("the synchronization process from the intermediary node to a
//! destination node is exactly the one we make measurements").
//!
//! A [`BlockSource`] serves inventories and blocks (the Bitcoin
//! `getheaders`/`getdata` pattern, reduced to its essentials); a
//! destination node drives [`sync_ebv`] / [`sync_baseline`], requesting
//! batches, validating each block, and appending. Source and destination
//! run on separate threads connected by crossbeam channels, so the
//! measured time includes real hand-off, as in the paper's two-machine
//! setup (network latency itself is the business of `ebv-netsim`).

use crate::baseline_node::{BaselineError, BaselineNode};
use crate::ebv_node::{EbvError, EbvNode};
use crate::tidy::EbvBlock;
use crossbeam::channel::{bounded, Receiver, Sender};
use ebv_chain::Block;
use ebv_primitives::encode::{Decodable, Encodable};
use std::thread;

/// Messages from the destination to the source.
#[derive(Debug)]
pub enum Request {
    /// Ask for up to `count` blocks starting at `start_height`.
    GetBlocks { start_height: u32, count: u32 },
    /// Sync finished (or aborted); the source thread may exit.
    Done,
}

/// Messages from the source to the destination. Blocks travel serialized,
/// as they would on a wire; the destination pays the decode cost.
#[derive(Debug)]
pub enum Response {
    /// Serialized blocks, in height order.
    Blocks(Vec<Vec<u8>>),
    /// The source has nothing at or above the requested height.
    Exhausted,
}

/// A source that can serve a contiguous range of blocks.
pub trait BlockSource: Send {
    /// Serialized blocks for heights `[start, start + count)`, fewer if
    /// the chain ends first, empty if `start` is past the tip.
    fn serve(&self, start_height: u32, count: u32) -> Vec<Vec<u8>>;
}

impl BlockSource for Vec<EbvBlock> {
    fn serve(&self, start_height: u32, count: u32) -> Vec<Vec<u8>> {
        self.iter()
            .skip(start_height as usize)
            .take(count as usize)
            .map(Encodable::to_bytes)
            .collect()
    }
}

impl BlockSource for Vec<Block> {
    fn serve(&self, start_height: u32, count: u32) -> Vec<Vec<u8>> {
        self.iter()
            .skip(start_height as usize)
            .take(count as usize)
            .map(Encodable::to_bytes)
            .collect()
    }
}

/// Spawn a serving thread for `source`. Returns the channel endpoints the
/// destination uses. The thread exits on [`Request::Done`] or when the
/// request channel closes.
pub fn spawn_source<S: BlockSource + 'static>(source: S) -> (Sender<Request>, Receiver<Response>) {
    let (req_tx, req_rx) = bounded::<Request>(1);
    let (resp_tx, resp_rx) = bounded::<Response>(1);
    thread::spawn(move || {
        while let Ok(req) = req_rx.recv() {
            match req {
                Request::GetBlocks {
                    start_height,
                    count,
                } => {
                    let blocks = source.serve(start_height, count);
                    let msg = if blocks.is_empty() {
                        Response::Exhausted
                    } else {
                        Response::Blocks(blocks)
                    };
                    if resp_tx.send(msg).is_err() {
                        return;
                    }
                }
                Request::Done => return,
            }
        }
    });
    (req_tx, resp_rx)
}

/// Errors during synchronization.
#[derive(Debug)]
pub enum SyncError<E> {
    /// The source hung up mid-sync.
    SourceClosed,
    /// A served block failed to decode.
    Decode(ebv_primitives::encode::DecodeError),
    /// A served block failed validation.
    Validation(E),
}

impl<E: std::fmt::Debug> std::fmt::Display for SyncError<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{self:?}")
    }
}

impl<E: std::fmt::Debug> std::error::Error for SyncError<E> {}

/// Batch size used by the sync drivers (Bitcoin uses 500-block locators;
/// 128 keeps per-batch memory modest at our block sizes).
pub const SYNC_BATCH: u32 = 128;

/// Drive an EBV node to the source's tip. Returns blocks synced.
pub fn sync_ebv(
    node: &mut EbvNode,
    req: &Sender<Request>,
    resp: &Receiver<Response>,
) -> Result<u32, SyncError<EbvError>> {
    let mut synced = 0u32;
    loop {
        let start_height = node.tip_height() + 1;
        req.send(Request::GetBlocks {
            start_height,
            count: SYNC_BATCH,
        })
        .map_err(|_| SyncError::SourceClosed)?;
        match resp.recv().map_err(|_| SyncError::SourceClosed)? {
            Response::Exhausted => {
                let _ = req.send(Request::Done);
                return Ok(synced);
            }
            Response::Blocks(batch) => {
                for bytes in batch {
                    let block = EbvBlock::from_bytes(&bytes).map_err(SyncError::Decode)?;
                    node.process_block(&block).map_err(SyncError::Validation)?;
                    synced += 1;
                }
            }
        }
    }
}

/// Drive a baseline node to the source's tip. Returns blocks synced.
pub fn sync_baseline(
    node: &mut BaselineNode,
    req: &Sender<Request>,
    resp: &Receiver<Response>,
) -> Result<u32, SyncError<BaselineError>> {
    let mut synced = 0u32;
    loop {
        let start_height = node.tip_height() + 1;
        req.send(Request::GetBlocks {
            start_height,
            count: SYNC_BATCH,
        })
        .map_err(|_| SyncError::SourceClosed)?;
        match resp.recv().map_err(|_| SyncError::SourceClosed)? {
            Response::Exhausted => {
                let _ = req.send(Request::Done);
                return Ok(synced);
            }
            Response::Blocks(batch) => {
                for bytes in batch {
                    let block = Block::from_bytes(&bytes).map_err(SyncError::Decode)?;
                    node.process_block(&block).map_err(SyncError::Validation)?;
                    synced += 1;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline_node::BaselineConfig;
    use crate::ebv_node::EbvConfig;
    use crate::intermediary::Intermediary;
    use ebv_store::{KvStore, StoreConfig, UtxoSet};
    use ebv_workload::{ChainGenerator, GeneratorParams};

    fn chains() -> (Vec<Block>, Vec<EbvBlock>) {
        let blocks = ChainGenerator::new(GeneratorParams::tiny(10, 77)).generate();
        let ebv = Intermediary::new(0)
            .convert_chain(&blocks)
            .expect("conversion");
        (blocks, ebv)
    }

    #[test]
    fn ebv_node_syncs_from_threaded_source() {
        let (_, ebv_blocks) = chains();
        let genesis = ebv_blocks[0].clone();
        let tip = ebv_blocks.len() as u32 - 1;
        let (req, resp) = spawn_source(ebv_blocks);
        let mut node = EbvNode::new(&genesis, EbvConfig::default());
        let synced = sync_ebv(&mut node, &req, &resp).expect("sync completes");
        assert_eq!(synced, tip);
        assert_eq!(node.tip_height(), tip);
    }

    #[test]
    fn baseline_node_syncs_from_threaded_source() {
        let (blocks, _) = chains();
        let genesis = blocks[0].clone();
        let tip = blocks.len() as u32 - 1;
        let (req, resp) = spawn_source(blocks);
        let utxos = UtxoSet::new(KvStore::open(StoreConfig::with_budget(4 << 20)).expect("store"));
        let mut node = BaselineNode::new(&genesis, utxos, BaselineConfig::default()).expect("boot");
        let synced = sync_baseline(&mut node, &req, &resp).expect("sync completes");
        assert_eq!(synced, tip);
        assert_eq!(node.tip_height(), tip);
    }

    #[test]
    fn corrupt_block_aborts_sync() {
        let (_, ebv_blocks) = chains();
        let genesis = ebv_blocks[0].clone();
        // Source that serves garbage for every request.
        struct Garbage;
        impl BlockSource for Garbage {
            fn serve(&self, _start: u32, _count: u32) -> Vec<Vec<u8>> {
                vec![vec![0xff; 10]]
            }
        }
        let (req, resp) = spawn_source(Garbage);
        let mut node = EbvNode::new(&genesis, EbvConfig::default());
        match sync_ebv(&mut node, &req, &resp) {
            Err(SyncError::Decode(_)) => {}
            other => panic!("expected decode failure, got {other:?}"),
        }
        let _ = req.send(Request::Done);
    }

    #[test]
    fn invalid_block_aborts_sync() {
        let (_, mut ebv_blocks) = chains();
        let genesis = ebv_blocks[0].clone();
        // Corrupt block 3's merkle root.
        ebv_blocks[3].header.merkle_root = ebv_primitives::hash::sha256d(b"evil");
        let (req, resp) = spawn_source(ebv_blocks);
        let mut node = EbvNode::new(&genesis, EbvConfig::default());
        match sync_ebv(&mut node, &req, &resp) {
            Err(SyncError::Validation(EbvError::MerkleMismatch)) => {}
            other => panic!("expected validation failure, got {other:?}"),
        }
        assert_eq!(node.tip_height(), 2, "synced up to the corruption");
        let _ = req.send(Request::Done);
    }

    #[test]
    fn batching_covers_long_chains() {
        // More blocks than one batch.
        let blocks = ChainGenerator::new(GeneratorParams {
            txs_per_block: ebv_workload::Ramp::flat(0.0),
            ..GeneratorParams::tiny(2 * SYNC_BATCH, 5)
        })
        .generate();
        let ebv_blocks = Intermediary::new(0)
            .convert_chain(&blocks)
            .expect("conversion");
        let genesis = ebv_blocks[0].clone();
        let tip = ebv_blocks.len() as u32 - 1;
        let (req, resp) = spawn_source(ebv_blocks);
        let mut node = EbvNode::new(&genesis, EbvConfig::default());
        assert_eq!(sync_ebv(&mut node, &req, &resp).expect("sync"), tip);
    }
}
