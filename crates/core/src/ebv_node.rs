//! The EBV validator node (paper §IV).
//!
//! State kept in memory: the header chain (80 bytes/block) and the
//! bit-vector set. Block validation never touches a database. After the
//! structural checks, every non-coinbase input is flattened into one job
//! list that the per-input phases share:
//!
//! * **EV** — fold each input's Merkle branch from its `ELs` leaf and
//!   compare against the stored header of the claimed height; parallel
//!   across inputs (`parallel_ev`);
//! * **UV** — probe the bit at `(height, stake + relative)`; sequential,
//!   because intra-block duplicate detection is order-dependent;
//! * value + midstates — per transaction, sum values and build the shared
//!   sighash midstate; parallel across transactions (`parallel_sv`);
//! * **SV** — run `Us` against the locking script found in `ELs`, with the
//!   digest finished from the transaction's midstate; parallel across
//!   inputs (`parallel_sv`);
//! * stake positions of the incoming block are recomputed and compared,
//!   defeating fake-position attacks at packaging time.
//!
//! Every parallel phase reports the minimum-`(tx, input)` failure, so a
//! parallel run returns byte-identical results to a sequential one.

use crate::bitvec::{BitVectorSet, BitVectorSetSize, UvError};
use crate::metrics::EbvBreakdown;
use crate::sighash::{sv_chunk_batched, DigestChecker, PubkeyCache, SvJob, SV_BATCH_MAX};
use crate::tidy::{EbvBlock, EbvTransaction, InputProof, TxIntegrityError};
use ebv_chain::transaction::SpendSighashMidstate;
use ebv_chain::{BlockHeader, BLOCK_SUBSIDY};
use ebv_primitives::hash::Hash256;
use ebv_script::{verify_spend, Script, ScriptError};
use ebv_telemetry::{counter, gauge, histogram, span, trace_event};
use rayon::prelude::*;

/// Why an EBV block was rejected.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EbvError {
    /// `prev_block_hash` does not extend the tip.
    NotOnTip,
    /// Header fails its own PoW claim.
    InsufficientWork,
    /// Merkle root does not match the tidy leaves.
    MerkleMismatch,
    /// Block has no transactions or a malformed coinbase position.
    BadCoinbase,
    /// A transaction's stake position differs from the recomputed value.
    StakeMismatch { tx: usize, expected: u32, got: u32 },
    /// Body/hash integrity failure.
    Integrity { tx: usize, err: TxIntegrityError },
    /// An input spends an output from a non-existent or future block.
    BadHeight {
        tx: usize,
        input: usize,
        height: u32,
    },
    /// Existence Validation failed: branch does not fold to the header
    /// root.
    EvFailed { tx: usize, input: usize },
    /// The claimed relative position is outside `ELs`'s outputs.
    PositionOutOfEls { tx: usize, input: usize },
    /// Unspent Validation failed.
    UvFailed {
        tx: usize,
        input: usize,
        err: UvError,
    },
    /// Two inputs of this block spend the same output.
    DuplicateSpend { height: u32, position: u32 },
    /// Script Validation failed.
    SvFailed {
        tx: usize,
        input: usize,
        err: ScriptError,
    },
    /// Inputs are worth less than outputs.
    ValueImbalance { tx: usize },
    /// Coinbase claims more than subsidy + fees.
    ExcessiveCoinbase,
    /// Internal consistency failure in the commit or disconnect path —
    /// state that earlier phases guaranteed was absent. Formerly a panic;
    /// typed so sync and reorg callers can abort cleanly.
    Internal(&'static str),
}

impl std::fmt::Display for EbvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{self:?}")
    }
}

impl std::error::Error for EbvError {}

/// Tuning knobs (ablations).
#[derive(Clone, Copy, Debug)]
pub struct EbvConfig {
    /// Fold Merkle branches (EV) across inputs in parallel.
    pub parallel_ev: bool,
    /// Verify scripts (SV) — and build the per-transaction sighash
    /// midstates and value sums feeding it — across inputs in parallel.
    pub parallel_sv: bool,
    /// Worker-thread override for the parallel phases; `None` uses every
    /// available core.
    pub workers: Option<usize>,
    /// Check the header PoW (disabled in some microbenches).
    pub check_pow: bool,
    /// Keep one [`PubkeyCache`] for the node's lifetime instead of one per
    /// block. A prepared key (point decompression + wNAF odd-multiples
    /// table) depends only on the key bytes, so this is always sound; the
    /// per-block default merely bounds memory for open-ended network
    /// operation. Interval replay during snapshot-parallel IBD turns it on:
    /// there the block range is finite and wallets reuse keys heavily.
    pub persistent_pubkey_cache: bool,
    /// Settle SV's ECDSA checks through block-wide batch verification
    /// ([`crate::sighash::sv_chunk_batched`]): inputs are chunked, each
    /// chunk's signatures are certified by one random-linear-combination
    /// equation over a shared multi-scalar ladder, and any chunk the batch
    /// cannot certify re-runs strictly. Accept/reject results and the
    /// reported minimum-`(tx, input)` error are identical with the flag on
    /// or off.
    pub batch_verify: bool,
}

impl Default for EbvConfig {
    fn default() -> Self {
        EbvConfig {
            parallel_ev: true,
            parallel_sv: true,
            workers: None,
            check_pow: true,
            persistent_pubkey_cache: false,
            batch_verify: false,
        }
    }
}

impl EbvConfig {
    /// Fully sequential pipeline (the ablation baseline).
    pub fn sequential() -> EbvConfig {
        EbvConfig {
            parallel_ev: false,
            parallel_sv: false,
            ..EbvConfig::default()
        }
    }
}

/// Run `op` with `workers` governing rayon's fan-out (`None` = default).
fn with_workers<R>(workers: Option<usize>, op: impl FnOnce() -> R) -> R {
    match workers {
        Some(n) => rayon::ThreadPoolBuilder::new()
            .num_threads(n)
            .build()
            .expect("thread pool construction is infallible")
            .install(op),
        None => op(),
    }
}

/// One non-coinbase input flattened out of the block: the unit of work for
/// the per-input validation phases. `tx`/`input` are the coordinates error
/// reports use; jobs are built in `(tx, input)` lexicographic order, so
/// "lowest job index" and "minimum `(tx, input)`" coincide.
struct InputJob<'b> {
    tx: usize,
    input: usize,
    us: &'b Script,
    proof: &'b InputProof,
}

/// Undo data for one connected block: everything needed to disconnect it
/// again (the EBV analogue of Bitcoin's undo files, kept in memory here).
#[derive(Clone, Debug, Default)]
pub struct BlockUndo {
    /// Coordinates this block spent, in application order.
    spends: Vec<(u32, u32)>,
    /// Vectors deleted because this block's spends emptied them:
    /// `(height, output count)`.
    deleted_vectors: Vec<(u32, u32)>,
    /// Output count of the block itself (its own vector's width).
    outputs: u32,
}

/// Why [`EbvNode::from_snapshot`] refused to boot.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SnapshotError {
    /// Header chain length does not cover `0..=snapshot.height()`.
    HeaderCount { expected: usize, got: usize },
    /// `headers[height]` does not link to its predecessor's hash.
    BrokenHeaderLink { height: u32 },
    /// A header fails its own PoW claim (only with `check_pow`).
    InsufficientWork { height: u32 },
    /// The snapshot's tip hash is not the hash of the last header.
    TipHashMismatch,
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{self:?}")
    }
}

impl std::error::Error for SnapshotError {}

/// Record a snapshot rejection before returning it: the event goes into
/// the trace (carrying the caller's trace context — e.g. the parallel-IBD
/// interval that tried to boot) and the flight recorder bundles the
/// causal chain. A refused checkpoint is a trust decision worth evidence.
fn reject_snapshot(snapshot_height: u32, err: SnapshotError) -> SnapshotError {
    if ebv_telemetry::enabled() {
        trace_event!(
            "ebv.snapshot_rejected",
            snapshot_height = snapshot_height,
            reason = format!("{err:?}"),
        );
        ebv_telemetry::flight::dump(
            "ebv.snapshot_rejected",
            ebv_telemetry::context::current_trace(),
            &[(
                "snapshot",
                format!("{{\"height\":{snapshot_height},\"reason\":\"{err:?}\"}}"),
            )],
        );
    }
    err
}

/// The EBV node: headers + bit-vector set, nothing else.
pub struct EbvNode {
    headers: Vec<BlockHeader>,
    bitvecs: BitVectorSet,
    config: EbvConfig,
    /// Undo records, one per connected block above `base_height`.
    undo_stack: Vec<BlockUndo>,
    /// Height this node booted at: 0 for a genesis boot, the checkpoint
    /// height for a snapshot boot. Blocks at or below it carry no undo
    /// records and cannot be disconnected.
    base_height: u32,
    /// Node-lifetime pubkey cache (`persistent_pubkey_cache`); `None`
    /// means SV builds a fresh per-block cache.
    pubkey_cache: Option<PubkeyCache>,
    /// Cumulative validation-time breakdown across all processed blocks.
    cumulative: EbvBreakdown,
}

impl EbvNode {
    /// Boot from a genesis block (validated structurally only).
    pub fn new(genesis: &EbvBlock, config: EbvConfig) -> EbvNode {
        let mut node = EbvNode {
            headers: vec![genesis.header],
            bitvecs: BitVectorSet::new(),
            config,
            undo_stack: Vec::new(),
            base_height: 0,
            pubkey_cache: config.persistent_pubkey_cache.then(PubkeyCache::new),
            cumulative: EbvBreakdown::default(),
        };
        node.bitvecs.insert_block(0, genesis.output_count());
        node
    }

    /// Boot from a state checkpoint instead of replaying from genesis.
    ///
    /// `headers` must be the full header chain `0..=snapshot.height()` —
    /// EV needs every historical Merkle root, so snapshot boot trades only
    /// the *replay*, not the (cheap, 80 bytes/block) header download. The
    /// chain is verified here: linkage, PoW (under `check_pow`), and that
    /// its tip hashes to the snapshot's claimed tip. The bit-vector set
    /// itself is taken on trust — snapshot-parallel IBD discharges that
    /// trust at the stitch, where a predecessor interval must reproduce
    /// these exact bytes.
    pub fn from_snapshot(
        snapshot: &crate::bitvec::BitVectorSnapshot,
        headers: Vec<BlockHeader>,
        config: EbvConfig,
    ) -> Result<EbvNode, SnapshotError> {
        let expected = snapshot.height() as usize + 1;
        if headers.len() != expected {
            return Err(reject_snapshot(
                snapshot.height(),
                SnapshotError::HeaderCount {
                    expected,
                    got: headers.len(),
                },
            ));
        }
        let mut prev_hash = None;
        for (h, header) in headers.iter().enumerate() {
            if let Some(prev) = prev_hash {
                if header.prev_block_hash != prev {
                    return Err(reject_snapshot(
                        snapshot.height(),
                        SnapshotError::BrokenHeaderLink { height: h as u32 },
                    ));
                }
            }
            if config.check_pow && !header.meets_target() {
                return Err(reject_snapshot(
                    snapshot.height(),
                    SnapshotError::InsufficientWork { height: h as u32 },
                ));
            }
            prev_hash = Some(header.hash());
        }
        if prev_hash != Some(snapshot.tip_hash()) {
            return Err(reject_snapshot(
                snapshot.height(),
                SnapshotError::TipHashMismatch,
            ));
        }
        Ok(EbvNode {
            headers,
            bitvecs: snapshot.restore(),
            config,
            undo_stack: Vec::new(),
            base_height: snapshot.height(),
            pubkey_cache: config.persistent_pubkey_cache.then(PubkeyCache::new),
            cumulative: EbvBreakdown::default(),
        })
    }

    /// Serialize the node's full validation state at the current tip.
    pub fn snapshot(&self) -> crate::bitvec::BitVectorSnapshot {
        self.bitvecs.snapshot(self.tip_height(), self.tip_hash())
    }

    /// Digest of the canonical snapshot encoding: two nodes at the same
    /// state — however they got there — produce the same digest.
    pub fn state_digest(&self) -> Hash256 {
        self.snapshot().digest()
    }

    /// Height this node booted at (0 unless booted from a snapshot).
    pub fn base_height(&self) -> u32 {
        self.base_height
    }

    /// Height of the best block.
    pub fn tip_height(&self) -> u32 {
        (self.headers.len() - 1) as u32
    }

    /// Hash of the best block's header.
    pub fn tip_hash(&self) -> Hash256 {
        self.headers.last().expect("genesis present").hash()
    }

    /// The stored header at `height`, if within the chain.
    pub fn header_at(&self, height: u32) -> Option<&BlockHeader> {
        self.headers.get(height as usize)
    }

    /// Memory requirement of the status data (bit-vector set).
    pub fn status_memory(&self) -> BitVectorSetSize {
        self.bitvecs.memory()
    }

    /// Outputs still unspent across all blocks.
    pub fn total_unspent(&self) -> u64 {
        self.bitvecs.total_unspent()
    }

    /// Direct bit-vector access (tests, figures).
    pub fn bitvecs(&self) -> &BitVectorSet {
        &self.bitvecs
    }

    /// Total validation time spent, by phase, since boot.
    pub fn cumulative_breakdown(&self) -> EbvBreakdown {
        self.cumulative
    }

    /// Validate `block` and, if valid, append it (storing the header and
    /// updating the bit-vector set). Returns the per-phase timing.
    ///
    /// Per-input work is flattened into one job list and driven through the
    /// phases in order: EV (parallel), UV (sequential — the duplicate-spend
    /// scan is order-dependent), per-transaction value + sighash-midstate
    /// construction (parallel), SV (parallel). Each parallel phase reports
    /// the failure with the minimum `(tx, input)` coordinate — exactly the
    /// error a sequential scan in job order would hit first — so parallel
    /// and sequential configurations are observationally identical.
    pub fn process_block(&mut self, block: &EbvBlock) -> Result<EbvBreakdown, EbvError> {
        let mut breakdown = EbvBreakdown::default();
        let new_height = self.headers.len() as u32;
        let config = self.config;
        // Per-block trace span, keyed by height: inert (one thread-local
        // peek) unless a caller entered a trace context.
        let _block_span = ebv_telemetry::child_span!("ebv.block", new_height);

        // ---- "others": structural checks ------------------------------
        let span_structure = span!("ebv.structure", &mut breakdown.others);
        if block.header.prev_block_hash != self.tip_hash() {
            return Err(EbvError::NotOnTip);
        }
        if config.check_pow && !block.header.meets_target() {
            return Err(EbvError::InsufficientWork);
        }
        if block.transactions.is_empty() || !block.transactions[0].is_coinbase() {
            return Err(EbvError::BadCoinbase);
        }
        if block.transactions[1..]
            .iter()
            .any(EbvTransaction::is_coinbase)
        {
            return Err(EbvError::BadCoinbase);
        }
        let stakes = block.expected_stake_positions();
        for (i, tx) in block.transactions.iter().enumerate() {
            if tx.tidy.stake_position != stakes[i] {
                return Err(EbvError::StakeMismatch {
                    tx: i,
                    expected: stakes[i],
                    got: tx.tidy.stake_position,
                });
            }
            tx.check_integrity()
                .map_err(|err| EbvError::Integrity { tx: i, err })?;
        }
        if block.compute_merkle_root() != block.header.merkle_root {
            return Err(EbvError::MerkleMismatch);
        }
        // Flatten every non-coinbase input into the job list the per-input
        // phases share. Order is (tx, input) lexicographic.
        let jobs: Vec<InputJob<'_>> = block
            .transactions
            .iter()
            .enumerate()
            .skip(1)
            .flat_map(|(i, tx)| {
                tx.bodies.iter().enumerate().map(move |(j, body)| InputJob {
                    tx: i,
                    input: j,
                    us: &body.us,
                    proof: body
                        .proof
                        .as_ref()
                        .expect("non-coinbase checked in integrity"),
                })
            })
            .collect();
        drop(span_structure);

        // ---- EV: Merkle branches against stored headers ----------------
        // `header_at` already rejects any height >= new_height (the header
        // chain holds exactly the blocks below the new one), so a
        // same-block or future reference fails here with `BadHeight`.
        let span_ev = span!("ebv.ev", &mut breakdown.ev);
        let headers = &self.headers;
        let ev_one = |job: &InputJob<'_>| -> Result<(), EbvError> {
            let proof = job.proof;
            let Some(header) = headers.get(proof.height as usize) else {
                return Err(EbvError::BadHeight {
                    tx: job.tx,
                    input: job.input,
                    height: proof.height,
                });
            };
            // The leaf hash is computed once here and folded straight into
            // the branch; no other phase rehashes `ELs`.
            if !proof
                .mbr
                .verify(&proof.els.leaf_hash(), &header.merkle_root)
            {
                return Err(EbvError::EvFailed {
                    tx: job.tx,
                    input: job.input,
                });
            }
            if proof.spent_output().is_none() {
                return Err(EbvError::PositionOutOfEls {
                    tx: job.tx,
                    input: job.input,
                });
            }
            Ok(())
        };
        let ev_result: Result<(), EbvError> = if config.parallel_ev {
            with_workers(config.workers, || jobs.par_iter().map(ev_one).collect())
        } else {
            jobs.iter().try_for_each(ev_one)
        };
        ev_result?;
        drop(span_ev);

        // ---- UV: bit probes + intra-block duplicate detection ----------
        // Sequential by design: duplicate detection must see spends in job
        // order for the first-duplicate error to be deterministic, and a
        // bit probe is orders of magnitude cheaper than a branch fold.
        let span_uv = span!("ebv.uv", &mut breakdown.uv);
        let mut spends: Vec<(u32, u32)> = Vec::with_capacity(jobs.len());
        {
            let mut seen = std::collections::HashSet::with_capacity(jobs.len());
            for job in &jobs {
                let coord = (job.proof.height, job.proof.absolute_position());
                self.bitvecs
                    .check_unspent(coord.0, coord.1)
                    .map_err(|err| EbvError::UvFailed {
                        tx: job.tx,
                        input: job.input,
                        err,
                    })?;
                if !seen.insert(coord) {
                    return Err(EbvError::DuplicateSpend {
                        height: coord.0,
                        position: coord.1,
                    });
                }
                spends.push(coord);
            }
        }
        drop(span_uv);

        // ---- value conservation + sighash midstates (part of "others") --
        // One pass per transaction: sum input/output values and serialize
        // the sighash prefix every input of that transaction shares. The
        // midstate is what lets SV below avoid re-serializing the outputs
        // (O(outputs) work) once per input.
        let span_val = span!("ebv.value_midstate", &mut breakdown.others);
        let spending_txs: Vec<(usize, &EbvTransaction)> =
            block.transactions.iter().enumerate().skip(1).collect();
        let tx_one =
            |&(i, tx): &(usize, &EbvTransaction)| -> Result<(SpendSighashMidstate, u64), EbvError> {
                let in_value: u64 = tx
                    .bodies
                    .iter()
                    .map(|b| {
                        b.proof
                            .as_ref()
                            .expect("checked")
                            .spent_output()
                            .expect("checked")
                            .value
                    })
                    .fold(0u64, u64::saturating_add);
                let out_value = tx.tidy.total_output_value();
                if in_value < out_value {
                    return Err(EbvError::ValueImbalance { tx: i });
                }
                let coords = tx.spent_coords().expect("non-coinbase");
                let midstate = SpendSighashMidstate::new(
                    tx.tidy.version,
                    &coords,
                    &tx.tidy.outputs,
                    tx.tidy.lock_time,
                );
                Ok((midstate, in_value - out_value))
            };
        let per_tx: Result<Vec<(SpendSighashMidstate, u64)>, EbvError> = if config.parallel_sv {
            with_workers(config.workers, || {
                spending_txs.par_iter().map(tx_one).collect()
            })
        } else {
            spending_txs.iter().map(tx_one).collect()
        };
        let per_tx = per_tx?;
        let total_fees = per_tx
            .iter()
            .fold(0u64, |acc, (_, fee)| acc.saturating_add(*fee));
        let coinbase_out = block.transactions[0].tidy.total_output_value();
        if coinbase_out > BLOCK_SUBSIDY.saturating_add(total_fees) {
            return Err(EbvError::ExcessiveCoinbase);
        }
        drop(span_val);

        // ---- SV: scripts, parallel across inputs ------------------------
        let span_sv = span!("ebv.sv", &mut breakdown.sv);
        // One pubkey cache per block (or per node, under
        // `persistent_pubkey_cache`): inputs signed by the same key share a
        // single parse + odd-multiples table across all SV workers.
        let block_cache;
        let pubkey_cache = match &self.pubkey_cache {
            Some(cache) => cache,
            None => {
                block_cache = PubkeyCache::new();
                &block_cache
            }
        };
        let sv_one = |job: &InputJob<'_>| -> Result<(), EbvError> {
            let _input_span = span!("ebv.sv_input");
            // Spending transactions start at index 1; midstates are stored
            // densely from 0.
            let digest = per_tx[job.tx - 1].0.input_digest(job.input as u32);
            let lock = &job.proof.spent_output().expect("checked").locking_script;
            let lock_time = block.transactions[job.tx].tidy.lock_time;
            verify_spend(
                job.us,
                lock,
                &DigestChecker::with_context(digest, lock_time, pubkey_cache),
            )
            .map_err(|err| EbvError::SvFailed {
                tx: job.tx,
                input: job.input,
                err,
            })
        };
        // Batched path: chunk the job list, settle each chunk's ECDSA
        // through one batch equation, and report the chunk's first failure.
        // Jobs are in `(tx, input)` order, so the minimum failure across
        // chunks is the same error the sequential strict path reports.
        let chunk_failure = |chunk: &[InputJob<'_>]| -> Option<EbvError> {
            let sv_jobs: Vec<SvJob<'_>> = chunk
                .iter()
                .map(|job| SvJob {
                    digest: per_tx[job.tx - 1].0.input_digest(job.input as u32),
                    lock_time: block.transactions[job.tx].tidy.lock_time,
                    unlocking: job.us,
                    locking: &job.proof.spent_output().expect("checked").locking_script,
                })
                .collect();
            sv_chunk_batched(&sv_jobs, pubkey_cache)
                .into_iter()
                .zip(chunk)
                .find_map(|(result, job)| {
                    result.err().map(|err| EbvError::SvFailed {
                        tx: job.tx,
                        input: job.input,
                        err,
                    })
                })
        };
        let sv_coords = |e: &EbvError| -> (usize, usize) {
            match e {
                EbvError::SvFailed { tx, input, .. } => (*tx, *input),
                _ => unreachable!("chunk_failure only yields SvFailed"),
            }
        };
        let sv_result: Result<(), EbvError> = match (config.batch_verify, config.parallel_sv) {
            (true, true) => with_workers(config.workers, || {
                jobs.as_slice()
                    .par_chunks(SV_BATCH_MAX)
                    .filter_map(chunk_failure)
                    .min_by_key(sv_coords)
                    .map_or(Ok(()), Err)
            }),
            // Sequentially, the first failing chunk holds the global
            // minimum because chunks partition the ordered job list.
            (true, false) => jobs
                .chunks(SV_BATCH_MAX)
                .find_map(chunk_failure)
                .map_or(Ok(()), Err),
            (false, true) => with_workers(config.workers, || jobs.par_iter().map(sv_one).collect()),
            (false, false) => jobs.iter().try_for_each(sv_one),
        };
        sv_result?;
        drop(span_sv);

        // ---- commit: store header, new vector, apply spends -------------
        let span_commit = span!("ebv.commit", &mut breakdown.commit);
        self.headers.push(block.header);
        let outputs = block.output_count();
        self.bitvecs.insert_block(new_height, outputs);
        let mut undo = BlockUndo {
            spends: Vec::with_capacity(spends.len()),
            deleted_vectors: Vec::new(),
            outputs,
        };
        for (height, position) in spends {
            // UV probed each coordinate unspent and rejected duplicates, so
            // a failure here means the bit-vector set itself is corrupt.
            let deleted = self.bitvecs.spend(height, position).map_err(|_| {
                EbvError::Internal("commit: spend failed for a coordinate UV probed unspent")
            })?;
            undo.spends.push((height, position));
            if let Some(len) = deleted {
                undo.deleted_vectors.push((height, len));
            }
        }
        self.undo_stack.push(undo);
        drop(span_commit);

        counter!("ebv.blocks_connected").inc();
        histogram!("ebv.block_total").record(breakdown.total().as_nanos() as u64);
        if ebv_telemetry::enabled() {
            // `memory()` walks every vector; only refresh the gauges when
            // someone is collecting them.
            let size = self.bitvecs.memory();
            gauge!("ebv.bitvec.resident_bytes").set(size.optimized);
            gauge!("ebv.bitvec.vectors").set(size.vectors);
            gauge!("ebv.bitvec.sparse_vectors").set(size.sparse_vectors);
            gauge!("ebv.bitvec.dense_vectors").set(size.dense_vectors);
            trace_event!(
                "ebv.block_connected",
                height = new_height,
                txs = block.transactions.len(),
                unspent = self.bitvecs.total_unspent(),
            );
        }

        self.cumulative += breakdown;
        Ok(breakdown)
    }

    /// Disconnect the tip block, restoring the previous state (the reorg
    /// primitive, driven by `sync::reorg`). Returns the new tip height,
    /// `Ok(None)` if the tip is already the boot height (genesis, or the
    /// checkpoint for a snapshot-booted node), or a typed error if
    /// the undo data does not mirror the applied spends (corrupt state —
    /// formerly a panic).
    pub fn disconnect_tip(&mut self) -> Result<Option<u32>, EbvError> {
        let Some(undo) = self.undo_stack.pop() else {
            return Ok(None);
        };
        let tip_height = self.tip_height();
        self.headers.pop();
        // The tip's own vector always exists: no later block can have
        // spent from it, and it has at least the coinbase output.
        debug_assert_eq!(
            self.bitvecs.vector(tip_height).map(|v| v.len()),
            Some(undo.outputs),
            "tip vector must be intact at disconnect"
        );
        self.bitvecs.remove_block(tip_height);
        // Restore fully-spent vectors this block deleted, then re-set all
        // of its spends (reverse order for symmetry; operations commute).
        for &(height, len) in &undo.deleted_vectors {
            self.bitvecs.insert_all_spent(height, len);
        }
        for &(height, position) in undo.spends.iter().rev() {
            self.bitvecs.unspend(height, position).map_err(|_| {
                EbvError::Internal("disconnect: undo data does not mirror applied spends")
            })?;
        }
        counter!("ebv.blocks_disconnected").inc();
        trace_event!("ebv.block_disconnected", height = tip_height);
        Ok(Some(self.tip_height()))
    }

    /// Cheap internal-consistency check, asserted by the reorg engine
    /// after every unwind step: the undo stack must pair one record per
    /// non-genesis block, and every bit vector must sit at a height the
    /// header chain covers.
    pub fn check_invariants(&self) -> Result<(), String> {
        if self.headers.is_empty() {
            return Err("header chain is empty (genesis missing)".to_string());
        }
        let tip = self.tip_height();
        if tip < self.base_height {
            return Err(format!(
                "tip {tip} fell below the boot height {}",
                self.base_height
            ));
        }
        if self.undo_stack.len() as u32 != tip - self.base_height {
            return Err(format!(
                "undo stack holds {} records but {} blocks sit above the boot height",
                self.undo_stack.len(),
                tip - self.base_height
            ));
        }
        if let Some(bad) = self.bitvecs.heights().find(|&h| h > tip) {
            return Err(format!(
                "bit vector exists at height {bad} above the tip {tip}"
            ));
        }
        // The tip's own vector must exist: nothing above it could have
        // spent it empty.
        if self.bitvecs.vector(tip).is_none() {
            return Err(format!("tip vector missing at height {tip}"));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pack::{ebv_coinbase, pack_ebv_block};
    use crate::proofs::ProofArchive;
    use crate::tidy::InputBody;
    use ebv_chain::transaction::{spend_sighash, TxOut};
    use ebv_primitives::ec::PrivateKey;
    use ebv_script::standard::{p2pkh_lock, p2pkh_unlock};

    /// Build a 2-block chain: genesis pays the miner, block 1 spends the
    /// genesis coinbase output. Returns (node pre-block-1, block 1).
    fn two_block_fixture() -> (EbvNode, EbvBlock, ProofArchive) {
        let sk = PrivateKey::from_seed(100);
        let pk = sk.public_key();
        let genesis_cb = ebv_coinbase(0, p2pkh_lock(&pk.address_hash()));
        let genesis = pack_ebv_block(Hash256::ZERO, vec![genesis_cb], 0, 0);
        let mut archive = ProofArchive::new();
        archive.add_block(0, &genesis);

        let node = EbvNode::new(&genesis, EbvConfig::default());

        // Spend genesis coinbase output (height 0, abs position 0).
        let proof = archive.make_proof(0, 0).expect("genesis output exists");
        let recipient = PrivateKey::from_seed(101).public_key();
        let outputs = vec![TxOut::new(
            BLOCK_SUBSIDY - 1000,
            p2pkh_lock(&recipient.address_hash()),
        )];
        let digest = spend_sighash(1, &[(0, 0)], &outputs, 0, 0);
        let us = p2pkh_unlock(
            &crate::sighash::sign_input(&sk, &digest),
            &pk.to_compressed(),
        );
        let spend = EbvTransaction::from_parts(
            1,
            vec![InputBody {
                us,
                proof: Some(proof),
            }],
            outputs,
            0,
        );
        let cb1 = ebv_coinbase(1, p2pkh_lock(&pk.address_hash()));
        let block1 = pack_ebv_block(genesis.header.hash(), vec![cb1, spend], 1, 0);
        (node, block1, archive)
    }

    #[test]
    fn valid_block_accepted_and_state_updated() {
        let (mut node, block1, _) = two_block_fixture();
        let breakdown = node.process_block(&block1).expect("valid block");
        assert!(breakdown.total() > std::time::Duration::ZERO);
        assert_eq!(node.tip_height(), 1);
        // Genesis had 1 output, now spent → its vector is gone; block 1 has
        // 2 outputs (coinbase + spend change).
        assert_eq!(node.bitvecs().len(), 1);
        assert_eq!(node.total_unspent(), 2);
    }

    #[test]
    fn rejects_double_spend_across_blocks() {
        let (mut node, block1, archive) = two_block_fixture();
        node.process_block(&block1).unwrap();

        // A second spend of the same genesis output.
        let sk = PrivateKey::from_seed(100);
        let proof = archive.make_proof(0, 0).unwrap();
        let outputs = vec![TxOut::new(1000, Script::new())];
        let digest = spend_sighash(1, &[(0, 0)], &outputs, 0, 0);
        let us = p2pkh_unlock(
            &crate::sighash::sign_input(&sk, &digest),
            &sk.public_key().to_compressed(),
        );
        let double = EbvTransaction::from_parts(
            1,
            vec![InputBody {
                us,
                proof: Some(proof),
            }],
            outputs,
            0,
        );
        let cb2 = ebv_coinbase(2, Script::new());
        let block2 = pack_ebv_block(block1.header.hash(), vec![cb2, double], 2, 0);
        match node.process_block(&block2) {
            Err(EbvError::UvFailed {
                err: UvError::UnknownHeight(0),
                ..
            }) => {}
            other => panic!("expected UV failure, got {other:?}"),
        }
    }

    #[test]
    fn rejects_duplicate_spend_within_block() {
        let (mut node, block1, archive) = two_block_fixture();
        // Two copies of the same spending tx in one block (distinct outputs
        // so the txs differ, same spent coordinate).
        let sk = PrivateKey::from_seed(100);
        let mk_spend = |amount: u64| {
            let proof = archive.make_proof(0, 0).unwrap();
            let outputs = vec![TxOut::new(amount, Script::new())];
            let digest = spend_sighash(1, &[(0, 0)], &outputs, 0, 0);
            let us = p2pkh_unlock(
                &crate::sighash::sign_input(&sk, &digest),
                &sk.public_key().to_compressed(),
            );
            EbvTransaction::from_parts(
                1,
                vec![InputBody {
                    us,
                    proof: Some(proof),
                }],
                outputs,
                0,
            )
        };
        let cb1 = ebv_coinbase(1, Script::new());
        let block = pack_ebv_block(
            block1.header.prev_block_hash,
            vec![cb1, mk_spend(100), mk_spend(200)],
            1,
            0,
        );
        match node.process_block(&block) {
            Err(EbvError::DuplicateSpend {
                height: 0,
                position: 0,
            }) => {}
            other => panic!("expected duplicate-spend rejection, got {other:?}"),
        }
    }

    #[test]
    fn rejects_fake_stake_position() {
        let (mut node, mut block1, _) = two_block_fixture();
        // Tamper with the spend tx's stake position (as a lying miner
        // would); Merkle root is recomputed so only the stake check fires.
        block1.transactions[1].tidy.stake_position += 1;
        block1.header.merkle_root = block1.compute_merkle_root();
        // Re-mine not needed at bits=0.
        match node.process_block(&block1) {
            Err(EbvError::StakeMismatch { tx: 1, .. }) => {}
            other => panic!("expected stake mismatch, got {other:?}"),
        }
    }

    #[test]
    fn rejects_forged_els() {
        let (mut node, mut block1, _) = two_block_fixture();
        // Inflate the spent output's value inside ELs: EV must catch the
        // forged leaf.
        {
            let body = &mut block1.transactions[1].bodies[0];
            let proof = body.proof.as_mut().unwrap();
            proof.els.outputs[0].value *= 2;
        }
        // Re-link body hashes + merkle so only EV can catch it.
        let bodies = block1.transactions[1].bodies.clone();
        block1.transactions[1].tidy.input_hashes = bodies.iter().map(InputBody::hash).collect();
        block1.header.merkle_root = block1.compute_merkle_root();
        match node.process_block(&block1) {
            Err(EbvError::EvFailed { tx: 1, input: 0 }) => {}
            other => panic!("expected EV failure, got {other:?}"),
        }
    }

    #[test]
    fn rejects_future_height_reference() {
        let (mut node, mut block1, _) = two_block_fixture();
        {
            let body = &mut block1.transactions[1].bodies[0];
            body.proof.as_mut().unwrap().height = 999;
        }
        let bodies = block1.transactions[1].bodies.clone();
        block1.transactions[1].tidy.input_hashes = bodies.iter().map(InputBody::hash).collect();
        block1.header.merkle_root = block1.compute_merkle_root();
        match node.process_block(&block1) {
            Err(EbvError::BadHeight { height: 999, .. }) => {}
            other => panic!("expected bad-height rejection, got {other:?}"),
        }
    }

    #[test]
    fn rejects_bad_signature() {
        let (mut node, mut block1, _) = two_block_fixture();
        // Replace the unlocking script with one signed by the wrong key.
        let wrong = PrivateKey::from_seed(999);
        let outputs = block1.transactions[1].tidy.outputs.clone();
        let digest = spend_sighash(1, &[(0, 0)], &outputs, 0, 0);
        block1.transactions[1].bodies[0].us = p2pkh_unlock(
            &crate::sighash::sign_input(&wrong, &digest),
            &wrong.public_key().to_compressed(),
        );
        let bodies = block1.transactions[1].bodies.clone();
        block1.transactions[1].tidy.input_hashes = bodies.iter().map(InputBody::hash).collect();
        block1.header.merkle_root = block1.compute_merkle_root();
        match node.process_block(&block1) {
            Err(EbvError::SvFailed {
                tx: 1, input: 0, ..
            }) => {}
            other => panic!("expected SV failure, got {other:?}"),
        }
    }

    #[test]
    fn rejects_value_inflation() {
        let (mut node, mut block1, _) = two_block_fixture();
        // Outputs exceed the spent input's value.
        block1.transactions[1].tidy.outputs[0].value = BLOCK_SUBSIDY * 2;
        block1.header.merkle_root = block1.compute_merkle_root();
        // Signature is now stale too, but value check runs before SV.
        match node.process_block(&block1) {
            Err(EbvError::ValueImbalance { tx: 1 }) => {}
            other => panic!("expected value imbalance, got {other:?}"),
        }
    }

    #[test]
    fn rejects_wrong_prev_hash_and_merkle() {
        let (mut node, block1, _) = two_block_fixture();
        let mut wrong_prev = block1.clone();
        wrong_prev.header.prev_block_hash = Hash256::ZERO;
        assert_eq!(node.process_block(&wrong_prev), Err(EbvError::NotOnTip));

        let mut wrong_merkle = block1.clone();
        wrong_merkle.header.merkle_root = Hash256::ZERO;
        assert_eq!(
            node.process_block(&wrong_merkle),
            Err(EbvError::MerkleMismatch)
        );
    }

    #[test]
    fn rejects_same_block_height_reference() {
        // A proof claiming the spent output was created *in this very
        // block* (height == new tip height) must be rejected: the header
        // chain only holds blocks strictly below the one being validated.
        // Regression test for a removed redundant `height >= new_height`
        // guard — `header_at` alone must catch this.
        let (mut node, mut block1, _) = two_block_fixture();
        {
            let body = &mut block1.transactions[1].bodies[0];
            body.proof.as_mut().unwrap().height = 1; // block1's own height
        }
        let bodies = block1.transactions[1].bodies.clone();
        block1.transactions[1].tidy.input_hashes = bodies.iter().map(InputBody::hash).collect();
        block1.header.merkle_root = block1.compute_merkle_root();
        match node.process_block(&block1) {
            Err(EbvError::BadHeight {
                tx: 1,
                input: 0,
                height: 1,
            }) => {}
            other => panic!("expected same-block height rejection, got {other:?}"),
        }
    }

    #[test]
    fn sequential_sv_matches_parallel() {
        let (_, block1, _) = two_block_fixture();
        let sk = PrivateKey::from_seed(100);
        let pk = sk.public_key();
        let genesis_cb = ebv_coinbase(0, p2pkh_lock(&pk.address_hash()));
        let genesis = pack_ebv_block(Hash256::ZERO, vec![genesis_cb], 0, 0);
        let mut seq_node = EbvNode::new(&genesis, EbvConfig::sequential());
        seq_node
            .process_block(&block1)
            .expect("sequential pipeline accepts the same block");
        assert_eq!(seq_node.tip_height(), 1);
    }

    #[test]
    fn worker_override_accepts_block() {
        let (_, block1, _) = two_block_fixture();
        let sk = PrivateKey::from_seed(100);
        let pk = sk.public_key();
        let genesis_cb = ebv_coinbase(0, p2pkh_lock(&pk.address_hash()));
        let genesis = pack_ebv_block(Hash256::ZERO, vec![genesis_cb], 0, 0);
        let config = EbvConfig {
            workers: Some(2),
            ..EbvConfig::default()
        };
        let mut node = EbvNode::new(&genesis, config);
        node.process_block(&block1)
            .expect("worker override accepts the same block");
        assert_eq!(node.tip_height(), 1);
        let breakdown = node.cumulative_breakdown();
        assert!(breakdown.commit > std::time::Duration::ZERO);
    }

    #[test]
    fn snapshot_boot_matches_genesis_boot() {
        let (mut node, block1, _) = two_block_fixture();
        node.process_block(&block1).expect("valid block");

        // Boot a second node from the first node's snapshot.
        let snap = node.snapshot();
        let headers = vec![*node.header_at(0).unwrap(), *node.header_at(1).unwrap()];
        let booted = EbvNode::from_snapshot(&snap, headers, EbvConfig::default())
            .expect("snapshot boot succeeds");
        assert_eq!(booted.tip_height(), 1);
        assert_eq!(booted.tip_hash(), node.tip_hash());
        assert_eq!(booted.base_height(), 1);
        assert_eq!(booted.total_unspent(), node.total_unspent());
        assert_eq!(booted.state_digest(), node.state_digest());
        booted.check_invariants().expect("invariants hold at boot");
        // Nothing above the boot height has been connected yet, so there
        // is nothing to disconnect.
        let mut booted = booted;
        assert_eq!(booted.disconnect_tip(), Ok(None));
    }

    #[test]
    fn snapshot_boot_rejects_bad_headers() {
        let (mut node, block1, _) = two_block_fixture();
        node.process_block(&block1).expect("valid block");
        let snap = node.snapshot();
        let h0 = *node.header_at(0).unwrap();
        let h1 = *node.header_at(1).unwrap();

        // Too few headers.
        assert_eq!(
            EbvNode::from_snapshot(&snap, vec![h0], EbvConfig::default()),
            Err(SnapshotError::HeaderCount {
                expected: 2,
                got: 1
            })
        );
        // Broken linkage.
        let mut unlinked = h1;
        unlinked.prev_block_hash = Hash256::ZERO;
        assert_eq!(
            EbvNode::from_snapshot(&snap, vec![h0, unlinked], EbvConfig::default()),
            Err(SnapshotError::BrokenHeaderLink { height: 1 })
        );
        // Right chain, wrong snapshot tip: mutate the tip header's nonce so
        // linkage still holds but the tip hash differs.
        let mut wrong_tip = h1;
        wrong_tip.nonce ^= 1;
        assert_eq!(
            EbvNode::from_snapshot(&snap, vec![h0, wrong_tip], EbvConfig::default()),
            Err(SnapshotError::TipHashMismatch)
        );
    }

    impl PartialEq for EbvNode {
        fn eq(&self, other: &EbvNode) -> bool {
            self.tip_hash() == other.tip_hash() && self.state_digest() == other.state_digest()
        }
    }

    impl std::fmt::Debug for EbvNode {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.debug_struct("EbvNode")
                .field("tip_height", &self.tip_height())
                .field("tip_hash", &self.tip_hash())
                .finish()
        }
    }
}
