//! EBV transaction and block formats.
//!
//! The paper's §IV-C: a transaction's Merkle leaf covers only *input
//! hashes* and outputs (the "tidy transaction"), while the input *bodies*
//! — unlocking script plus proof (`MBr`, `ELs`, `height`, `position`) —
//! travel alongside. Embedding a previous transaction as `ELs` therefore
//! embeds only its tidy form, which contains no proofs of its own: the
//! *transaction inflation* problem (Fig. 8) cannot arise because nesting
//! stops at depth one (Fig. 9b).
//!
//! The *stake position* field (§IV-D2, Fig. 11) is stamped into each tidy
//! transaction by the miner at packaging time; because it is inside the
//! Merkle leaf it is covered by the block's root, so a proposer cannot lie
//! about absolute output positions derived from it.

use ebv_chain::merkle::MerkleBranch;
use ebv_chain::transaction::TxOut;
use ebv_chain::BlockHeader;
use ebv_primitives::encode::{Decodable, DecodeError, Encodable, Reader};
use ebv_primitives::hash::{sha256d, Hash256};
use ebv_script::Script;

/// The Merkle-committed part of an EBV transaction.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct TidyTransaction {
    pub version: u32,
    /// One hash per input, `sha256d` of the corresponding [`InputBody`].
    pub input_hashes: Vec<Hash256>,
    pub outputs: Vec<TxOut>,
    /// Absolute position of this transaction's first output within its
    /// block; assigned by the miner when packaging.
    pub stake_position: u32,
    pub lock_time: u32,
}

impl TidyTransaction {
    /// The Merkle leaf hash: `sha256d` of the tidy serialization.
    pub fn leaf_hash(&self) -> Hash256 {
        sha256d(&self.to_bytes())
    }

    /// Absolute position of output `relative` (the paper's
    /// `absolute = stake + relative`).
    pub fn absolute_position(&self, relative: u16) -> u32 {
        self.stake_position + relative as u32
    }

    /// Total output value, saturating (callers compare, never trust).
    pub fn total_output_value(&self) -> u64 {
        self.outputs
            .iter()
            .fold(0u64, |acc, o| acc.saturating_add(o.value))
    }
}

impl Encodable for TidyTransaction {
    fn encode(&self, out: &mut Vec<u8>) {
        self.version.encode(out);
        self.input_hashes.encode(out);
        self.outputs.encode(out);
        self.stake_position.encode(out);
        self.lock_time.encode(out);
    }
    fn encoded_len(&self) -> usize {
        4 + self.input_hashes.encoded_len() + self.outputs.encoded_len() + 4 + 4
    }
}

impl Decodable for TidyTransaction {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(TidyTransaction {
            version: u32::decode(r)?,
            input_hashes: Vec::decode(r)?,
            outputs: Vec::decode(r)?,
            stake_position: u32::decode(r)?,
            lock_time: u32::decode(r)?,
        })
    }
}

/// The proof attached to a (non-coinbase) input: everything the validator
/// needs for EV, UV positioning and SV without touching a database.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct InputProof {
    /// Merkle branch from the `els` leaf to the root of block `height`.
    pub mbr: MerkleBranch,
    /// Enhanced locking script: the previous tidy transaction containing
    /// the spent output.
    pub els: TidyTransaction,
    /// Height of the block containing the spent output.
    pub height: u32,
    /// Index of the spent output within `els`.
    pub relative_position: u16,
}

impl InputProof {
    /// The spent output's absolute position in its block.
    pub fn absolute_position(&self) -> u32 {
        self.els.absolute_position(self.relative_position)
    }

    /// The spent output itself, if `relative_position` is in range.
    pub fn spent_output(&self) -> Option<&TxOut> {
        self.els.outputs.get(self.relative_position as usize)
    }

    /// Serialized proof size in bytes (network/storage overhead of EBV).
    pub fn proof_size(&self) -> usize {
        self.encoded_len()
    }
}

impl Encodable for InputProof {
    fn encode(&self, out: &mut Vec<u8>) {
        self.mbr.encode(out);
        self.els.encode(out);
        self.height.encode(out);
        self.relative_position.encode(out);
    }
    fn encoded_len(&self) -> usize {
        self.mbr.encoded_len() + self.els.encoded_len() + 4 + 2
    }
}

impl Decodable for InputProof {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(InputProof {
            mbr: MerkleBranch::decode(r)?,
            els: TidyTransaction::decode(r)?,
            height: u32::decode(r)?,
            relative_position: u16::decode(r)?,
        })
    }
}

/// An input body: the data referenced by a tidy transaction's input hash.
/// The coinbase input carries no proof.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct InputBody {
    /// The unlocking script (*Us*), same as Bitcoin.
    pub us: Script,
    /// The proof; `None` only for the coinbase input.
    pub proof: Option<InputProof>,
}

impl InputBody {
    /// The hash stored in the tidy transaction.
    pub fn hash(&self) -> Hash256 {
        sha256d(&self.to_bytes())
    }
}

impl Encodable for InputBody {
    fn encode(&self, out: &mut Vec<u8>) {
        self.us.encode(out);
        match &self.proof {
            None => out.push(0),
            Some(p) => {
                out.push(1);
                p.encode(out);
            }
        }
    }
    fn encoded_len(&self) -> usize {
        self.us.encoded_len() + 1 + self.proof.as_ref().map_or(0, Encodable::encoded_len)
    }
}

impl Decodable for InputBody {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let us = Script::decode(r)?;
        let proof = match r.read_u8()? {
            0 => None,
            1 => Some(InputProof::decode(r)?),
            _ => return Err(DecodeError::Invalid("input proof flag")),
        };
        Ok(InputBody { us, proof })
    }
}

/// A full EBV transaction: the tidy part plus its input bodies.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct EbvTransaction {
    pub tidy: TidyTransaction,
    /// `bodies[i]` hashes to `tidy.input_hashes[i]`.
    pub bodies: Vec<InputBody>,
}

/// Structural failures of an EBV transaction.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TxIntegrityError {
    /// Body count differs from input-hash count.
    BodyCountMismatch,
    /// `bodies[i]` does not hash to `input_hashes[i]`.
    BodyHashMismatch(usize),
    /// No inputs at all.
    NoInputs,
    /// No outputs.
    NoOutputs,
}

impl std::fmt::Display for TxIntegrityError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{self:?}")
    }
}

impl std::error::Error for TxIntegrityError {}

impl EbvTransaction {
    /// Construct, computing input hashes from the bodies.
    pub fn from_parts(
        version: u32,
        bodies: Vec<InputBody>,
        outputs: Vec<TxOut>,
        lock_time: u32,
    ) -> EbvTransaction {
        let input_hashes = bodies.iter().map(InputBody::hash).collect();
        EbvTransaction {
            tidy: TidyTransaction {
                version,
                input_hashes,
                outputs,
                stake_position: 0,
                lock_time,
            },
            bodies,
        }
    }

    /// Whether this is a coinbase (single proof-less input).
    pub fn is_coinbase(&self) -> bool {
        self.bodies.len() == 1 && self.bodies[0].proof.is_none()
    }

    /// Check body/hash correspondence and basic shape.
    pub fn check_integrity(&self) -> Result<(), TxIntegrityError> {
        if self.tidy.input_hashes.is_empty() || self.bodies.is_empty() {
            return Err(TxIntegrityError::NoInputs);
        }
        if self.tidy.outputs.is_empty() {
            return Err(TxIntegrityError::NoOutputs);
        }
        if self.bodies.len() != self.tidy.input_hashes.len() {
            return Err(TxIntegrityError::BodyCountMismatch);
        }
        for (i, body) in self.bodies.iter().enumerate() {
            if body.hash() != self.tidy.input_hashes[i] {
                return Err(TxIntegrityError::BodyHashMismatch(i));
            }
        }
        Ok(())
    }

    /// Coordinates `(height, absolute position)` of every spent output, in
    /// input order — the data the shared signing digest commits to.
    /// `None` if any input lacks a proof (coinbase inputs have no coords).
    pub fn spent_coords(&self) -> Option<Vec<(u32, u32)>> {
        self.bodies
            .iter()
            .map(|b| b.proof.as_ref().map(|p| (p.height, p.absolute_position())))
            .collect()
    }

    /// Serialized size of the whole transaction (tidy + bodies) — what the
    /// transaction-inflation discussion is about.
    pub fn total_size(&self) -> usize {
        self.tidy.encoded_len() + self.bodies.encoded_len()
    }
}

impl Encodable for EbvTransaction {
    fn encode(&self, out: &mut Vec<u8>) {
        self.tidy.encode(out);
        self.bodies.encode(out);
    }
    fn encoded_len(&self) -> usize {
        self.total_size()
    }
}

impl Decodable for EbvTransaction {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(EbvTransaction {
            tidy: TidyTransaction::decode(r)?,
            bodies: Vec::decode(r)?,
        })
    }
}

/// An EBV-format block: the header's Merkle root is over tidy leaf hashes.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct EbvBlock {
    pub header: BlockHeader,
    pub transactions: Vec<EbvTransaction>,
}

impl EbvBlock {
    /// The Merkle leaves (tidy leaf hashes) in transaction order.
    pub fn leaves(&self) -> Vec<Hash256> {
        self.transactions
            .iter()
            .map(|tx| tx.tidy.leaf_hash())
            .collect()
    }

    /// Recompute the Merkle root from the tidy transactions.
    pub fn compute_merkle_root(&self) -> Hash256 {
        ebv_chain::merkle::merkle_root(&self.leaves())
    }

    /// The stake position each transaction must carry: cumulative output
    /// count of all preceding transactions.
    pub fn expected_stake_positions(&self) -> Vec<u32> {
        let mut stakes = Vec::with_capacity(self.transactions.len());
        let mut acc = 0u32;
        for tx in &self.transactions {
            stakes.push(acc);
            acc += tx.tidy.outputs.len() as u32;
        }
        stakes
    }

    /// Total outputs in the block (the new bit-vector's width).
    pub fn output_count(&self) -> u32 {
        self.transactions
            .iter()
            .map(|tx| tx.tidy.outputs.len() as u32)
            .sum()
    }

    /// Total non-coinbase inputs.
    pub fn input_count(&self) -> usize {
        self.transactions
            .iter()
            .skip(1)
            .map(|tx| tx.bodies.len())
            .sum()
    }

    /// Serialized block size.
    pub fn total_size(&self) -> usize {
        self.encoded_len()
    }
}

impl Encodable for EbvBlock {
    fn encode(&self, out: &mut Vec<u8>) {
        self.header.encode(out);
        self.transactions.encode(out);
    }
    fn encoded_len(&self) -> usize {
        80 + self.transactions.encoded_len()
    }
}

impl Decodable for EbvBlock {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(EbvBlock {
            header: BlockHeader::decode(r)?,
            transactions: Vec::decode(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ebv_script::Builder;

    fn output(v: u64) -> TxOut {
        TxOut::new(v, Builder::new().push_data(&[0xaa; 25]).into_script())
    }

    fn tidy(n_outputs: usize, stake: u32) -> TidyTransaction {
        TidyTransaction {
            version: 1,
            input_hashes: vec![sha256d(b"body")],
            outputs: (0..n_outputs).map(|i| output(i as u64 + 1)).collect(),
            stake_position: stake,
            lock_time: 0,
        }
    }

    fn proof() -> InputProof {
        InputProof {
            mbr: MerkleBranch {
                leaf_index: 2,
                siblings: vec![sha256d(b"s0"), sha256d(b"s1")],
            },
            els: tidy(3, 7),
            height: 42,
            relative_position: 1,
        }
    }

    #[test]
    fn absolute_position_is_stake_plus_relative() {
        // The paper's Fig. 11 example: stake 3, relative 1 → absolute 4.
        let t = tidy(2, 3);
        assert_eq!(t.absolute_position(1), 4);
        let p = proof();
        assert_eq!(p.absolute_position(), 8);
        assert_eq!(p.spent_output().unwrap().value, 2);
    }

    #[test]
    fn leaf_hash_covers_stake_position() {
        let a = tidy(2, 0);
        let mut b = a.clone();
        b.stake_position = 5;
        assert_ne!(
            a.leaf_hash(),
            b.leaf_hash(),
            "stake must be Merkle-committed"
        );
    }

    #[test]
    fn tidy_round_trip() {
        let t = tidy(3, 9);
        assert_eq!(TidyTransaction::from_bytes(&t.to_bytes()).unwrap(), t);
        assert_eq!(t.to_bytes().len(), t.encoded_len());
    }

    #[test]
    fn proof_round_trip() {
        let p = proof();
        assert_eq!(InputProof::from_bytes(&p.to_bytes()).unwrap(), p);
        assert_eq!(p.proof_size(), p.to_bytes().len());
    }

    #[test]
    fn body_round_trip_with_and_without_proof() {
        let with = InputBody {
            us: Builder::new().push_data(b"sig").into_script(),
            proof: Some(proof()),
        };
        assert_eq!(InputBody::from_bytes(&with.to_bytes()).unwrap(), with);
        let without = InputBody {
            us: Builder::new().push_int(1).into_script(),
            proof: None,
        };
        assert_eq!(InputBody::from_bytes(&without.to_bytes()).unwrap(), without);
        assert_ne!(with.hash(), without.hash());
    }

    #[test]
    fn from_parts_links_hashes() {
        let body = InputBody {
            us: Builder::new().push_data(b"sig").into_script(),
            proof: Some(proof()),
        };
        let tx = EbvTransaction::from_parts(1, vec![body.clone()], vec![output(5)], 0);
        assert_eq!(tx.tidy.input_hashes, vec![body.hash()]);
        tx.check_integrity().unwrap();
    }

    #[test]
    fn integrity_detects_tampered_body() {
        let body = InputBody {
            us: Builder::new().push_data(b"sig").into_script(),
            proof: Some(proof()),
        };
        let mut tx = EbvTransaction::from_parts(1, vec![body], vec![output(5)], 0);
        tx.bodies[0].us = Builder::new().push_data(b"forged").into_script();
        assert_eq!(
            tx.check_integrity(),
            Err(TxIntegrityError::BodyHashMismatch(0))
        );
    }

    #[test]
    fn integrity_detects_count_mismatch() {
        let body = InputBody {
            us: Builder::new().push_data(b"sig").into_script(),
            proof: Some(proof()),
        };
        let mut tx = EbvTransaction::from_parts(1, vec![body.clone()], vec![output(5)], 0);
        tx.bodies.push(body);
        assert_eq!(
            tx.check_integrity(),
            Err(TxIntegrityError::BodyCountMismatch)
        );
        tx.bodies.clear();
        assert_eq!(tx.check_integrity(), Err(TxIntegrityError::NoInputs));
    }

    #[test]
    fn spent_coords_in_input_order() {
        let mut p1 = proof();
        p1.height = 10;
        p1.relative_position = 0;
        let mut p2 = proof();
        p2.height = 20;
        p2.relative_position = 2;
        let tx = EbvTransaction::from_parts(
            1,
            vec![
                InputBody {
                    us: Script::new(),
                    proof: Some(p1),
                },
                InputBody {
                    us: Script::new(),
                    proof: Some(p2),
                },
            ],
            vec![output(1)],
            0,
        );
        assert_eq!(tx.spent_coords().unwrap(), vec![(10, 7), (20, 9)]);
        // Coinbase-style body yields None.
        let cb = EbvTransaction::from_parts(
            1,
            vec![InputBody {
                us: Script::new(),
                proof: None,
            }],
            vec![output(1)],
            0,
        );
        assert!(cb.spent_coords().is_none());
        assert!(cb.is_coinbase());
    }

    #[test]
    fn no_inflation_els_carries_no_bodies() {
        // Embedding a previous transaction as ELs embeds only its tidy
        // form. A chain of K spends therefore grows by one tidy size per
        // level — not exponentially.
        let tx_k = EbvTransaction::from_parts(
            1,
            vec![InputBody {
                us: Builder::new().push_data(&[1; 64]).into_script(),
                proof: Some(proof()),
            }],
            vec![output(1)],
            0,
        );
        // tx_j spends tx_k's output: its proof embeds tx_k.tidy only.
        let p_j = InputProof {
            mbr: MerkleBranch {
                leaf_index: 0,
                siblings: vec![],
            },
            els: tx_k.tidy.clone(),
            height: 50,
            relative_position: 0,
        };
        let tx_j = EbvTransaction::from_parts(
            1,
            vec![InputBody {
                us: Builder::new().push_data(&[2; 64]).into_script(),
                proof: Some(p_j),
            }],
            vec![output(1)],
            0,
        );
        let p_i = InputProof {
            mbr: MerkleBranch {
                leaf_index: 0,
                siblings: vec![],
            },
            els: tx_j.tidy.clone(),
            height: 51,
            relative_position: 0,
        };
        let tx_i = EbvTransaction::from_parts(
            1,
            vec![InputBody {
                us: Builder::new().push_data(&[3; 64]).into_script(),
                proof: Some(p_i),
            }],
            vec![output(1)],
            0,
        );
        // tx_i's size does not include tx_k at all: tidy sizes are equal,
        // so total sizes stay flat across the chain.
        assert_eq!(tx_i.tidy.encoded_len(), tx_j.tidy.encoded_len());
        assert!(
            tx_i.total_size() <= tx_j.total_size() + 8,
            "no inflation across nesting"
        );
    }

    #[test]
    fn block_stake_positions_and_counts() {
        let mk_tx = |n_out: usize| {
            EbvTransaction::from_parts(
                1,
                vec![InputBody {
                    us: Script::new(),
                    proof: Some(proof()),
                }],
                (0..n_out).map(|i| output(i as u64 + 1)).collect(),
                0,
            )
        };
        let cb = EbvTransaction::from_parts(
            1,
            vec![InputBody {
                us: Builder::new().push_int(1).into_script(),
                proof: None,
            }],
            vec![output(50)],
            0,
        );
        let block = EbvBlock {
            header: BlockHeader {
                version: 1,
                prev_block_hash: Hash256::ZERO,
                merkle_root: Hash256::ZERO,
                time: 0,
                bits: 0,
                nonce: 0,
            },
            transactions: vec![cb, mk_tx(2), mk_tx(3)],
        };
        assert_eq!(block.expected_stake_positions(), vec![0, 1, 3]);
        assert_eq!(block.output_count(), 6);
        assert_eq!(block.input_count(), 2);
    }

    #[test]
    fn ebv_block_round_trip() {
        let cb = EbvTransaction::from_parts(
            1,
            vec![InputBody {
                us: Builder::new().push_int(1).into_script(),
                proof: None,
            }],
            vec![output(50)],
            0,
        );
        let block = EbvBlock {
            header: BlockHeader {
                version: 1,
                prev_block_hash: sha256d(b"prev"),
                merkle_root: sha256d(b"root"),
                time: 5,
                bits: 0,
                nonce: 9,
            },
            transactions: vec![cb],
        };
        assert_eq!(EbvBlock::from_bytes(&block.to_bytes()).unwrap(), block);
    }
}
