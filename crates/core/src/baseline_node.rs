//! The Bitcoin-baseline validator node (paper §II-B, Fig. 3).
//!
//! Input checking fetches each input's outpoint from the UTXO set (EV+UV
//! in one database probe), runs SV with the fetched locking script, then
//! deletes spent entries and inserts the new outputs — the Fetch / Delete
//! / Insert DBO cycle whose cost dominates Figs. 4 and 5 once the set
//! outgrows the cache budget.

use crate::metrics::BaselineBreakdown;
use crate::sighash::{sv_chunk_batched, DigestChecker, PubkeyCache, SvJob, SV_BATCH_MAX};
use ebv_chain::transaction::SpendSighashMidstate;
use ebv_chain::{Block, BlockHeader, BlockStructureError, OutPoint, BLOCK_SUBSIDY};
use ebv_primitives::hash::Hash256;
use ebv_script::{verify_spend, Script, ScriptError};
use ebv_store::{UtxoEntry, UtxoError, UtxoSet};
use ebv_telemetry::{counter, histogram, span, trace_event};
use rayon::prelude::*;

/// Why a baseline block was rejected.
#[derive(Debug)]
pub enum BaselineError {
    /// `prev_block_hash` does not extend the tip.
    NotOnTip,
    /// Context-free structure failure.
    Structure(BlockStructureError),
    /// An input's outpoint is not in the UTXO set (nonexistent or spent —
    /// indistinguishable here, as the paper notes).
    MissingUtxo {
        tx: usize,
        input: usize,
        outpoint: OutPoint,
    },
    /// Two inputs of the block spend the same outpoint.
    DuplicateSpend(OutPoint),
    /// Script Validation failed.
    SvFailed {
        tx: usize,
        input: usize,
        err: ScriptError,
    },
    /// Inputs worth less than outputs.
    ValueImbalance { tx: usize },
    /// Coinbase claims more than subsidy + fees.
    ExcessiveCoinbase,
    /// Database failure.
    Store(UtxoError),
}

impl From<UtxoError> for BaselineError {
    fn from(e: UtxoError) -> Self {
        BaselineError::Store(e)
    }
}

impl std::fmt::Display for BaselineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{self:?}")
    }
}

impl std::error::Error for BaselineError {}

/// Tuning knobs.
#[derive(Clone, Copy, Debug)]
pub struct BaselineConfig {
    /// Verify scripts in parallel (DBO stays serial, as in Btcd).
    pub parallel_sv: bool,
    /// Check header PoW.
    pub check_pow: bool,
    /// Settle SV's ECDSA checks through batched verification (same
    /// machinery as the EBV node; see
    /// [`crate::sighash::sv_chunk_batched`]). Results and the reported
    /// minimum-`(tx, input)` error are identical with the flag on or off.
    pub batch_verify: bool,
}

impl Default for BaselineConfig {
    fn default() -> Self {
        BaselineConfig {
            parallel_sv: true,
            check_pow: true,
            batch_verify: false,
        }
    }
}

/// Undo data for one connected baseline block — the in-memory analogue of
/// Bitcoin's undo (`rev*.dat`) files.
#[derive(Clone, Debug, Default)]
pub struct BaselineUndo {
    /// Entries this block deleted (spent), with their outpoints.
    spent: Vec<(OutPoint, UtxoEntry)>,
    /// Outpoints (and entries) this block created.
    created: Vec<(OutPoint, UtxoEntry)>,
}

/// The baseline node: headers in memory, UTXO set in the status database.
pub struct BaselineNode {
    headers: Vec<BlockHeader>,
    utxos: UtxoSet,
    config: BaselineConfig,
    undo_stack: Vec<BaselineUndo>,
    cumulative: BaselineBreakdown,
}

impl BaselineNode {
    /// Boot from a genesis block, inserting its outputs into the UTXO set.
    pub fn new(
        genesis: &Block,
        utxos: UtxoSet,
        config: BaselineConfig,
    ) -> Result<BaselineNode, BaselineError> {
        let mut node = BaselineNode {
            headers: vec![genesis.header],
            utxos,
            config,
            undo_stack: Vec::new(),
            cumulative: BaselineBreakdown::default(),
        };
        node.insert_outputs(genesis, 0)?;
        Ok(node)
    }

    fn insert_outputs(
        &mut self,
        block: &Block,
        height: u32,
    ) -> Result<Vec<(OutPoint, UtxoEntry)>, BaselineError> {
        let mut created = Vec::with_capacity(block.output_count());
        let mut position = 0u32;
        for tx in &block.transactions {
            let txid = tx.txid();
            let coinbase = tx.is_coinbase();
            for (vout, output) in tx.outputs.iter().enumerate() {
                let entry = UtxoEntry {
                    value: output.value,
                    locking_script: output.locking_script.clone(),
                    height,
                    position,
                    coinbase,
                };
                let outpoint = OutPoint::new(txid, vout as u32);
                self.utxos.insert(&outpoint, &entry)?;
                created.push((outpoint, entry));
                position += 1;
            }
        }
        Ok(created)
    }

    /// Height of the best block.
    pub fn tip_height(&self) -> u32 {
        (self.headers.len() - 1) as u32
    }

    /// Hash of the best header.
    pub fn tip_hash(&self) -> Hash256 {
        self.headers.last().expect("genesis present").hash()
    }

    /// The UTXO set (size and DBO statistics).
    pub fn utxos(&self) -> &UtxoSet {
        &self.utxos
    }

    /// Total validation time spent, by phase, since boot.
    pub fn cumulative_breakdown(&self) -> BaselineBreakdown {
        self.cumulative
    }

    /// Validate `block` and, if valid, apply it. Returns per-phase timing.
    ///
    /// Failure before the commit phase leaves the UTXO set untouched; a
    /// store-level I/O error mid-commit is fatal (as in real nodes).
    pub fn process_block(&mut self, block: &Block) -> Result<BaselineBreakdown, BaselineError> {
        let mut breakdown = BaselineBreakdown::default();
        let new_height = self.headers.len() as u32;
        // Per-block trace span, keyed by height: inert (one thread-local
        // peek) unless a caller entered a trace context.
        let _block_span = ebv_telemetry::child_span!("baseline.block", new_height);

        // ---- others: structure ----------------------------------------
        let span_structure = span!("baseline.structure", &mut breakdown.others);
        if block.header.prev_block_hash != self.tip_hash() {
            return Err(BaselineError::NotOnTip);
        }
        match block.check_structure() {
            Err(BlockStructureError::InsufficientWork) if !self.config.check_pow => {}
            Err(e) => return Err(BaselineError::Structure(e)),
            Ok(()) => {}
        }
        drop(span_structure);

        // ---- DBO: fetch every input's UTXO entry (EV+UV) ----------------
        let span_fetch = span!("baseline.dbo_fetch", &mut breakdown.dbo);
        let mut fetched: Vec<Vec<UtxoEntry>> = Vec::with_capacity(block.transactions.len());
        {
            let mut seen = std::collections::HashSet::with_capacity(block.input_count());
            for (i, tx) in block.transactions.iter().enumerate().skip(1) {
                let mut entries = Vec::with_capacity(tx.inputs.len());
                for (j, input) in tx.inputs.iter().enumerate() {
                    if !seen.insert(input.prevout) {
                        return Err(BaselineError::DuplicateSpend(input.prevout));
                    }
                    match self.utxos.fetch(&input.prevout)? {
                        Some(entry) => entries.push(entry),
                        None => {
                            return Err(BaselineError::MissingUtxo {
                                tx: i,
                                input: j,
                                outpoint: input.prevout,
                            })
                        }
                    }
                }
                fetched.push(entries);
            }
        }
        drop(span_fetch);

        // ---- value conservation (others) --------------------------------
        let span_val = span!("baseline.value", &mut breakdown.others);
        let mut total_fees = 0u64;
        for (idx, (tx, entries)) in block.transactions.iter().skip(1).zip(&fetched).enumerate() {
            let in_value: u64 = entries
                .iter()
                .map(|e| e.value)
                .fold(0u64, u64::saturating_add);
            let out_value = tx.total_output_value();
            if in_value < out_value {
                return Err(BaselineError::ValueImbalance { tx: idx + 1 });
            }
            total_fees = total_fees.saturating_add(in_value - out_value);
        }
        let coinbase_out = block.transactions[0].total_output_value();
        if coinbase_out > BLOCK_SUBSIDY.saturating_add(total_fees) {
            return Err(BaselineError::ExcessiveCoinbase);
        }
        drop(span_val);

        // ---- SV ----------------------------------------------------------
        let span_sv = span!("baseline.sv", &mut breakdown.sv);
        let jobs: Vec<(usize, usize, &Script, &Script, Hash256, u32)> = block
            .transactions
            .iter()
            .enumerate()
            .skip(1)
            .zip(&fetched)
            .flat_map(|((i, tx), entries)| {
                let coords: Vec<(u32, u32)> =
                    entries.iter().map(|e| (e.height, e.position)).collect();
                // Serialize the per-transaction sighash prefix once; each
                // input only appends its index.
                let midstate =
                    SpendSighashMidstate::new(tx.version, &coords, &tx.outputs, tx.lock_time);
                tx.inputs.iter().enumerate().map(move |(j, input)| {
                    let digest = midstate.input_digest(j as u32);
                    (
                        i,
                        j,
                        &input.unlocking_script,
                        &entries[j].locking_script,
                        digest,
                        tx.lock_time,
                    )
                })
            })
            .collect();
        // One pubkey cache per block: inputs signed by the same key share a
        // single parse + odd-multiples table across all SV workers.
        let pubkey_cache = PubkeyCache::new();
        let run_one =
            |&(i, j, us, lock, digest, lt): &(usize, usize, &Script, &Script, Hash256, u32)| {
                let _input_span = span!("baseline.sv_input");
                verify_spend(
                    us,
                    lock,
                    &DigestChecker::with_context(digest, lt, &pubkey_cache),
                )
                .map_err(|err| BaselineError::SvFailed {
                    tx: i,
                    input: j,
                    err,
                })
            };
        // Batched path: same chunking and minimum-`(tx, input)` failure
        // selection as the EBV node (jobs are already in that order).
        type Job<'b> = (usize, usize, &'b Script, &'b Script, Hash256, u32);
        let chunk_failure = |chunk: &[Job<'_>]| -> Option<BaselineError> {
            let sv_jobs: Vec<SvJob<'_>> = chunk
                .iter()
                .map(|&(_, _, us, lock, digest, lt)| SvJob {
                    digest,
                    lock_time: lt,
                    unlocking: us,
                    locking: lock,
                })
                .collect();
            sv_chunk_batched(&sv_jobs, &pubkey_cache)
                .into_iter()
                .zip(chunk)
                .find_map(|(result, &(i, j, ..))| {
                    result.err().map(|err| BaselineError::SvFailed {
                        tx: i,
                        input: j,
                        err,
                    })
                })
        };
        let sv_coords = |e: &BaselineError| -> (usize, usize) {
            match e {
                BaselineError::SvFailed { tx, input, .. } => (*tx, *input),
                _ => unreachable!("chunk_failure only yields SvFailed"),
            }
        };
        let sv_result: Result<(), BaselineError> =
            match (self.config.batch_verify, self.config.parallel_sv) {
                (true, true) => jobs
                    .as_slice()
                    .par_chunks(SV_BATCH_MAX)
                    .filter_map(chunk_failure)
                    .min_by_key(sv_coords)
                    .map_or(Ok(()), Err),
                (true, false) => jobs
                    .chunks(SV_BATCH_MAX)
                    .find_map(chunk_failure)
                    .map_or(Ok(()), Err),
                (false, true) => jobs.par_iter().map(run_one).collect(),
                (false, false) => jobs.iter().try_for_each(run_one),
            };
        sv_result?;
        drop(span_sv);

        // ---- DBO: delete spent entries, insert new outputs --------------
        let span_commit = span!("baseline.dbo_commit", &mut breakdown.dbo);
        let mut undo = BaselineUndo::default();
        for (tx, entries) in block.transactions.iter().skip(1).zip(&fetched) {
            for (input, entry) in tx.inputs.iter().zip(entries) {
                self.utxos.delete(&input.prevout, entry)?;
                undo.spent.push((input.prevout, entry.clone()));
            }
        }
        undo.created = self.insert_outputs(block, new_height)?;
        self.undo_stack.push(undo);
        self.headers.push(block.header);
        drop(span_commit);

        counter!("baseline.blocks_connected").inc();
        histogram!("baseline.block_total").record(breakdown.total().as_nanos() as u64);
        trace_event!(
            "baseline.block_connected",
            height = new_height,
            txs = block.transactions.len(),
        );

        self.cumulative += breakdown;
        Ok(breakdown)
    }

    /// Disconnect the tip block, restoring the previous UTXO set (the
    /// reorg primitive, driven by `sync::reorg`). Returns the new tip
    /// height, `Ok(None)` if only genesis remains, or the store error if
    /// the undo data no longer matches the database (formerly a panic).
    pub fn disconnect_tip(&mut self) -> Result<Option<u32>, BaselineError> {
        let Some(undo) = self.undo_stack.pop() else {
            return Ok(None);
        };
        self.headers.pop();
        for (outpoint, entry) in &undo.created {
            self.utxos.delete(outpoint, entry)?;
        }
        for (outpoint, entry) in undo.spent.iter().rev() {
            self.utxos.insert(outpoint, entry)?;
        }
        counter!("baseline.blocks_disconnected").inc();
        trace_event!(
            "baseline.block_disconnected",
            height = self.tip_height() + 1
        );
        Ok(Some(self.tip_height()))
    }

    /// The stored header at `height`, if within the chain.
    pub fn header_at(&self, height: u32) -> Option<&BlockHeader> {
        self.headers.get(height as usize)
    }

    /// Cheap internal-consistency check, asserted by the reorg engine
    /// after every unwind step: one undo record per non-genesis block,
    /// and a non-empty UTXO set (genesis outputs can never be spent out
    /// from under us — nothing below genesis exists to spend them).
    pub fn check_invariants(&self) -> Result<(), String> {
        if self.headers.is_empty() {
            return Err("header chain is empty (genesis missing)".to_string());
        }
        let tip = self.tip_height();
        if self.undo_stack.len() as u32 != tip {
            return Err(format!(
                "undo stack holds {} records but the tip height is {tip}",
                self.undo_stack.len()
            ));
        }
        if self.utxos.size().count == 0 {
            return Err("UTXO set is empty below a live tip".to_string());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ebv_chain::transaction::{spend_sighash, Transaction, TxIn, TxOut};
    use ebv_chain::{build_block, coinbase_tx, genesis_block};
    use ebv_primitives::ec::PrivateKey;
    use ebv_script::standard::{p2pkh_lock, p2pkh_unlock};
    use ebv_store::{KvStore, StoreConfig};

    fn fresh_utxos() -> UtxoSet {
        UtxoSet::new(KvStore::open(StoreConfig::with_budget(4 << 20)).unwrap())
    }

    /// Genesis pays sk(100); block 1 spends that coinbase output.
    fn fixture() -> (BaselineNode, Block) {
        let sk = PrivateKey::from_seed(100);
        let pk = sk.public_key();
        let genesis = build_block(
            Hash256::ZERO,
            coinbase_tx(0, p2pkh_lock(&pk.address_hash()), Vec::new()),
            Vec::new(),
            0,
            0,
        );
        let node = BaselineNode::new(&genesis, fresh_utxos(), BaselineConfig::default()).unwrap();

        let genesis_cb_txid = genesis.transactions[0].txid();
        let recipient = PrivateKey::from_seed(101).public_key();
        let outputs = vec![TxOut::new(
            BLOCK_SUBSIDY - 500,
            p2pkh_lock(&recipient.address_hash()),
        )];
        // Genesis coinbase output is at (height 0, position 0).
        let digest = spend_sighash(1, &[(0, 0)], &outputs, 0, 0);
        let us = p2pkh_unlock(
            &crate::sighash::sign_input(&sk, &digest),
            &pk.to_compressed(),
        );
        let spend = Transaction {
            version: 1,
            inputs: vec![TxIn::new(OutPoint::new(genesis_cb_txid, 0), us)],
            outputs,
            lock_time: 0,
        };
        let block1 = build_block(
            genesis.header.hash(),
            coinbase_tx(1, p2pkh_lock(&pk.address_hash()), Vec::new()),
            vec![spend],
            1,
            0,
        );
        (node, block1)
    }

    #[test]
    fn valid_block_accepted() {
        let (mut node, block1) = fixture();
        let breakdown = node.process_block(&block1).expect("valid block");
        assert!(breakdown.total() > std::time::Duration::ZERO);
        assert_eq!(node.tip_height(), 1);
        // Genesis coinbase spent; block 1 added 2 outputs.
        assert_eq!(node.utxos().size().count, 2);
    }

    #[test]
    fn rejects_double_spend() {
        let (mut node, block1) = fixture();
        node.process_block(&block1).unwrap();
        // Same spend again on top.
        let sk = PrivateKey::from_seed(100);
        let pk = sk.public_key();
        let spend = block1.transactions[1].clone();
        let block2 = build_block(
            block1.header.hash(),
            coinbase_tx(2, p2pkh_lock(&pk.address_hash()), Vec::new()),
            vec![spend],
            2,
            0,
        );
        match node.process_block(&block2) {
            Err(BaselineError::MissingUtxo {
                tx: 1, input: 0, ..
            }) => {}
            other => panic!("expected missing UTXO, got {other:?}"),
        }
    }

    #[test]
    fn rejects_duplicate_spend_within_block() {
        let (mut node, block1) = fixture();
        let spend_a = block1.transactions[1].clone();
        let mut spend_b = spend_a.clone();
        spend_b.outputs[0].value -= 1; // distinct txid, same prevout
        let block = build_block(
            block1.header.prev_block_hash,
            coinbase_tx(1, Script::new(), Vec::new()),
            vec![spend_a, spend_b],
            1,
            0,
        );
        match node.process_block(&block) {
            Err(BaselineError::DuplicateSpend(_)) => {}
            other => panic!("expected duplicate spend, got {other:?}"),
        }
    }

    #[test]
    fn rejects_bad_signature() {
        let (mut node, mut block1) = fixture();
        let wrong = PrivateKey::from_seed(999);
        let outputs = block1.transactions[1].outputs.clone();
        let digest = spend_sighash(1, &[(0, 0)], &outputs, 0, 0);
        block1.transactions[1].inputs[0].unlocking_script = p2pkh_unlock(
            &crate::sighash::sign_input(&wrong, &digest),
            &wrong.public_key().to_compressed(),
        );
        // Fix the merkle root after mutating the tx.
        block1.header.merkle_root = block1.compute_merkle_root();
        match node.process_block(&block1) {
            Err(BaselineError::SvFailed {
                tx: 1, input: 0, ..
            }) => {}
            other => panic!("expected SV failure, got {other:?}"),
        }
    }

    #[test]
    fn rejects_value_inflation() {
        let (mut node, mut block1) = fixture();
        block1.transactions[1].outputs[0].value = BLOCK_SUBSIDY * 3;
        block1.header.merkle_root = block1.compute_merkle_root();
        match node.process_block(&block1) {
            Err(BaselineError::ValueImbalance { tx: 1 }) => {}
            other => panic!("expected value imbalance, got {other:?}"),
        }
    }

    #[test]
    fn rejects_excessive_coinbase() {
        let (mut node, block1) = fixture();
        let spend = block1.transactions[1].clone();
        // Coinbase pays itself more than subsidy + fee (fee = 500).
        let cb = coinbase_tx(1, Script::new(), vec![TxOut::new(501, Script::new())]);
        let block = build_block(block1.header.prev_block_hash, cb, vec![spend], 1, 0);
        match node.process_block(&block) {
            Err(BaselineError::ExcessiveCoinbase) => {}
            other => panic!("expected excessive coinbase, got {other:?}"),
        }
    }

    #[test]
    fn fee_exactly_claimable() {
        let (mut node, block1) = fixture();
        let spend = block1.transactions[1].clone();
        // Claim exactly the 500 fee: allowed.
        let cb = coinbase_tx(1, Script::new(), vec![TxOut::new(500, Script::new())]);
        let block = build_block(block1.header.prev_block_hash, cb, vec![spend], 1, 0);
        node.process_block(&block)
            .expect("fee-inclusive coinbase is valid");
    }

    #[test]
    fn rejects_not_on_tip_and_bad_structure() {
        let (mut node, block1) = fixture();
        let mut off_tip = block1.clone();
        off_tip.header.prev_block_hash = Hash256::ZERO;
        assert!(matches!(
            node.process_block(&off_tip),
            Err(BaselineError::NotOnTip)
        ));

        let mut bad_merkle = block1.clone();
        bad_merkle.header.merkle_root = Hash256::ZERO;
        assert!(matches!(
            node.process_block(&bad_merkle),
            Err(BaselineError::Structure(
                BlockStructureError::MerkleMismatch
            ))
        ));
    }

    #[test]
    fn genesis_outputs_enter_utxo_set() {
        let genesis = genesis_block();
        let node = BaselineNode::new(&genesis, fresh_utxos(), BaselineConfig::default()).unwrap();
        assert_eq!(node.utxos().size().count, 1);
        assert_eq!(node.tip_height(), 0);
    }
}
