//! Transaction validation outside blocks — the mempool.
//!
//! The paper's §IV-D describes validating a *transaction* on receipt:
//! EV against stored headers, UV against the bit-vector set, SV against
//! the scripts in `ELs`. This module applies exactly those checks to
//! unconfirmed transactions, tracks which coordinates pending
//! transactions consume (so conflicting spends are rejected at admission),
//! and hands miners a ready-to-package batch.

use crate::ebv_node::EbvNode;
use crate::sighash::DigestChecker;
use crate::tidy::{EbvBlock, EbvTransaction, TxIntegrityError};
use ebv_chain::transaction::spend_sighash;
use ebv_primitives::hash::Hash256;
use ebv_script::{verify_spend, ScriptError};
use std::collections::HashMap;

/// Why a transaction was refused admission.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MempoolError {
    /// Already pooled (same tidy leaf hash).
    Duplicate,
    /// Coinbase transactions cannot be relayed.
    Coinbase,
    /// Body/hash integrity failure.
    Integrity(TxIntegrityError),
    /// Input references an unknown or future block.
    BadHeight { input: usize, height: u32 },
    /// Merkle branch does not fold to the stored header root.
    EvFailed { input: usize },
    /// Claimed position outside `ELs`.
    PositionOutOfEls { input: usize },
    /// The output is spent on-chain.
    SpentOnChain { input: usize },
    /// Another pooled transaction already spends this output.
    ConflictsWithPool { input: usize, other: Hash256 },
    /// Script validation failed.
    SvFailed { input: usize, err: ScriptError },
    /// Outputs exceed inputs.
    ValueImbalance,
}

impl std::fmt::Display for MempoolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{self:?}")
    }
}

impl std::error::Error for MempoolError {}

/// A pool of validated, unconfirmed EBV transactions.
#[derive(Default)]
pub struct Mempool {
    /// tidy leaf hash → transaction.
    txs: HashMap<Hash256, EbvTransaction>,
    /// Coordinates consumed by pooled transactions → consuming tx.
    spent: HashMap<(u32, u32), Hash256>,
    /// Admission order (miners package FIFO).
    order: Vec<Hash256>,
}

impl Mempool {
    pub fn new() -> Mempool {
        Mempool::default()
    }

    pub fn len(&self) -> usize {
        self.txs.len()
    }

    pub fn is_empty(&self) -> bool {
        self.txs.is_empty()
    }

    /// Whether the pool holds a transaction with this tidy leaf hash.
    pub fn contains(&self, id: &Hash256) -> bool {
        self.txs.contains_key(id)
    }

    /// Validate `tx` against the node's current state and admit it.
    /// Returns the pool id (tidy leaf hash).
    ///
    /// Note: admission uses the transaction's *current* tidy form (stake
    /// position as proposed, normally 0); miners re-stamp stake positions
    /// at packaging, which changes the leaf hash — ids are pool-local.
    pub fn accept(&mut self, node: &EbvNode, tx: EbvTransaction) -> Result<Hash256, MempoolError> {
        if tx.is_coinbase() {
            return Err(MempoolError::Coinbase);
        }
        tx.check_integrity().map_err(MempoolError::Integrity)?;
        let id = tx.tidy.leaf_hash();
        if self.txs.contains_key(&id) {
            return Err(MempoolError::Duplicate);
        }

        let mut coords = Vec::with_capacity(tx.bodies.len());
        let mut in_value = 0u64;
        for (j, body) in tx.bodies.iter().enumerate() {
            let proof = body.proof.as_ref().expect("non-coinbase integrity checked");
            // EV.
            let Some(header) = node.header_at(proof.height) else {
                return Err(MempoolError::BadHeight {
                    input: j,
                    height: proof.height,
                });
            };
            if !proof
                .mbr
                .verify(&proof.els.leaf_hash(), &header.merkle_root)
            {
                return Err(MempoolError::EvFailed { input: j });
            }
            let Some(output) = proof.spent_output() else {
                return Err(MempoolError::PositionOutOfEls { input: j });
            };
            // UV against chain state…
            let coord = (proof.height, proof.absolute_position());
            if node.bitvecs().check_unspent(coord.0, coord.1).is_err() {
                return Err(MempoolError::SpentOnChain { input: j });
            }
            // …and against other pooled transactions.
            if let Some(other) = self.spent.get(&coord) {
                return Err(MempoolError::ConflictsWithPool {
                    input: j,
                    other: *other,
                });
            }
            in_value = in_value.saturating_add(output.value);
            coords.push(coord);
        }
        if in_value < tx.tidy.total_output_value() {
            return Err(MempoolError::ValueImbalance);
        }

        // SV.
        for (j, body) in tx.bodies.iter().enumerate() {
            let proof = body.proof.as_ref().expect("checked");
            let digest = spend_sighash(
                tx.tidy.version,
                &coords,
                &tx.tidy.outputs,
                tx.tidy.lock_time,
                j as u32,
            );
            let lock = &proof.spent_output().expect("checked").locking_script;
            verify_spend(
                &body.us,
                lock,
                &DigestChecker::with_lock_time(digest, tx.tidy.lock_time),
            )
            .map_err(|err| MempoolError::SvFailed { input: j, err })?;
        }

        for coord in coords {
            self.spent.insert(coord, id);
        }
        self.order.push(id);
        self.txs.insert(id, tx);
        Ok(id)
    }

    /// Pop up to `max` transactions in admission order for packaging.
    pub fn take_for_block(&mut self, max: usize) -> Vec<EbvTransaction> {
        let ids: Vec<Hash256> = self.order.iter().take(max).copied().collect();
        let mut out = Vec::with_capacity(ids.len());
        for id in ids {
            if let Some(tx) = self.remove(&id) {
                out.push(tx);
            }
        }
        out
    }

    /// Drop pooled transactions that conflict with (or are included in) a
    /// newly connected block.
    pub fn remove_confirmed(&mut self, block: &EbvBlock) {
        let block_coords: Vec<(u32, u32)> = block
            .transactions
            .iter()
            .skip(1)
            .flat_map(|tx| {
                tx.bodies
                    .iter()
                    .filter_map(|b| b.proof.as_ref().map(|p| (p.height, p.absolute_position())))
            })
            .collect();
        let victims: Vec<Hash256> = block_coords
            .iter()
            .filter_map(|c| self.spent.get(c).copied())
            .collect();
        for id in victims {
            self.remove(&id);
        }
    }

    fn remove(&mut self, id: &Hash256) -> Option<EbvTransaction> {
        let tx = self.txs.remove(id)?;
        self.spent.retain(|_, v| v != id);
        self.order.retain(|o| o != id);
        Some(tx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ebv_node::EbvConfig;
    use crate::pack::{ebv_coinbase, pack_ebv_block};
    use crate::proofs::ProofArchive;
    use crate::sighash::sign_input;
    use crate::tidy::InputBody;
    use ebv_chain::transaction::TxOut;
    use ebv_chain::BLOCK_SUBSIDY;
    use ebv_primitives::ec::PrivateKey;
    use ebv_script::standard::{p2pkh_lock, p2pkh_unlock};

    fn world() -> (EbvNode, ProofArchive, PrivateKey) {
        let alice = PrivateKey::from_seed(5);
        let genesis = pack_ebv_block(
            Hash256::ZERO,
            vec![ebv_coinbase(
                0,
                p2pkh_lock(&alice.public_key().address_hash()),
            )],
            0,
            0,
        );
        let node = EbvNode::new(&genesis, EbvConfig::default());
        let mut archive = ProofArchive::new();
        archive.add_block(0, &genesis);
        (node, archive, alice)
    }

    fn spend(archive: &ProofArchive, signer: &PrivateKey, value: u64) -> EbvTransaction {
        let proof = archive.make_proof(0, 0).expect("coin");
        let outputs = vec![TxOut::new(
            value,
            p2pkh_lock(&signer.public_key().address_hash()),
        )];
        let digest = spend_sighash(1, &[(0, 0)], &outputs, 0, 0);
        let us = p2pkh_unlock(
            &sign_input(signer, &digest),
            &signer.public_key().to_compressed(),
        );
        EbvTransaction::from_parts(
            1,
            vec![InputBody {
                us,
                proof: Some(proof),
            }],
            outputs,
            0,
        )
    }

    #[test]
    fn accepts_valid_transaction() {
        let (node, archive, alice) = world();
        let mut pool = Mempool::new();
        let id = pool
            .accept(&node, spend(&archive, &alice, 1000))
            .expect("valid");
        assert!(pool.contains(&id));
        assert_eq!(pool.len(), 1);
    }

    #[test]
    fn rejects_duplicate_and_conflict() {
        let (node, archive, alice) = world();
        let mut pool = Mempool::new();
        let tx = spend(&archive, &alice, 1000);
        pool.accept(&node, tx.clone()).expect("valid");
        assert_eq!(pool.accept(&node, tx), Err(MempoolError::Duplicate));
        // Different outputs, same coin → conflict.
        let other = spend(&archive, &alice, 2000);
        assert!(matches!(
            pool.accept(&node, other),
            Err(MempoolError::ConflictsWithPool { input: 0, .. })
        ));
    }

    #[test]
    fn rejects_bad_signature_and_value() {
        let (node, archive, alice) = world();
        let mallory = PrivateKey::from_seed(99);
        let mut pool = Mempool::new();
        assert!(matches!(
            pool.accept(&node, spend(&archive, &mallory, 1000)),
            Err(MempoolError::SvFailed { .. })
        ));
        assert_eq!(
            pool.accept(&node, spend(&archive, &alice, BLOCK_SUBSIDY + 1)),
            Err(MempoolError::ValueImbalance)
        );
    }

    #[test]
    fn rejects_coinbase_and_spent_on_chain() {
        let (mut node, mut archive, alice) = world();
        let mut pool = Mempool::new();
        assert_eq!(
            pool.accept(
                &node,
                ebv_coinbase(1, p2pkh_lock(&alice.public_key().address_hash()))
            ),
            Err(MempoolError::Coinbase)
        );
        // Confirm a spend of (0,0) on-chain, then try pooling another.
        let tx = spend(&archive, &alice, BLOCK_SUBSIDY);
        let b1 = pack_ebv_block(
            node.tip_hash(),
            vec![
                ebv_coinbase(1, p2pkh_lock(&alice.public_key().address_hash())),
                tx,
            ],
            1,
            0,
        );
        node.process_block(&b1).expect("valid");
        archive.add_block(1, &b1);
        assert!(matches!(
            pool.accept(&node, spend(&archive, &alice, 500)),
            Err(MempoolError::SpentOnChain { input: 0 })
        ));
    }

    #[test]
    fn packaged_pool_transactions_form_a_valid_block() {
        let (mut node, archive, alice) = world();
        let mut pool = Mempool::new();
        pool.accept(&node, spend(&archive, &alice, BLOCK_SUBSIDY))
            .expect("valid");
        let txs = pool.take_for_block(10);
        assert_eq!(txs.len(), 1);
        assert!(pool.is_empty());

        let mut block_txs = vec![ebv_coinbase(
            1,
            p2pkh_lock(&alice.public_key().address_hash()),
        )];
        block_txs.extend(txs);
        let b1 = pack_ebv_block(node.tip_hash(), block_txs, 1, 0);
        node.process_block(&b1)
            .expect("pool transaction packages cleanly");
    }

    #[test]
    fn remove_confirmed_evicts_conflicts() {
        let (mut node, archive, alice) = world();
        let mut pool = Mempool::new();
        let id = pool
            .accept(&node, spend(&archive, &alice, 1234))
            .expect("valid");

        // A different spend of the same coin is confirmed in a block.
        let confirmed = spend(&archive, &alice, BLOCK_SUBSIDY);
        let b1 = pack_ebv_block(
            node.tip_hash(),
            vec![
                ebv_coinbase(1, p2pkh_lock(&alice.public_key().address_hash())),
                confirmed,
            ],
            1,
            0,
        );
        node.process_block(&b1).expect("valid");
        pool.remove_confirmed(&b1);
        assert!(!pool.contains(&id));
        assert!(pool.is_empty());
    }
}
