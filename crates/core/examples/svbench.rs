//! SV settlement decomposition: strict per-signature checking vs the
//! batched three-pass chunk, next to the raw crypto floor of each, with
//! all four arms interleaved per repetition so machine drift cancels.

use ebv_core::{sv_chunk_batched, DigestChecker, PubkeyCache, SvJob};
use ebv_primitives::ec::{BatchVerifier, PrivateKey};
use ebv_primitives::hash::{hash160, sha256, Hash256};
use ebv_script::standard::{p2pkh_lock, p2pkh_unlock};
use ebv_script::{verify_spend, Script};
use std::time::{Duration, Instant};

fn main() {
    let n = 70usize;
    let reps = 50u32;
    let keys: Vec<PrivateKey> = (0..128u64).map(PrivateKey::from_seed).collect();
    let jobs: Vec<(Hash256, Script, Script)> = (0..n)
        .map(|i| {
            let k = (i * 2654435761) % keys.len();
            let digest = sha256(format!("job {i}").as_bytes());
            let sig = keys[k].sign(&digest);
            let pk = keys[k].public_key().to_compressed();
            let mut sig_push = sig.to_compact().to_vec();
            sig_push.push(0x01); // SIGHASH_ALL
            (
                Hash256(digest),
                p2pkh_unlock(&sig_push, &pk),
                p2pkh_lock(&hash160(&pk)),
            )
        })
        .collect();
    let cache = PubkeyCache::new();
    for (digest, us, ls) in &jobs {
        verify_spend(us, ls, &DigestChecker::with_context(*digest, 0, &cache)).unwrap();
    }
    let sv_jobs: Vec<SvJob<'_>> = jobs
        .iter()
        .map(|(digest, us, ls)| SvJob {
            digest: *digest,
            lock_time: 0,
            unlocking: us,
            locking: ls,
        })
        .collect();
    let prepared: Vec<_> = keys.iter().map(|k| k.public_key().prepare()).collect();
    let raw: Vec<([u8; 32], _, usize)> = (0..n)
        .map(|i| {
            let k = (i * 2654435761) % keys.len();
            let z = sha256(format!("job {i}").as_bytes());
            (z, keys[k].sign(&z), k)
        })
        .collect();

    let mut t_strict = Duration::ZERO;
    let mut t_batched = Duration::ZERO;
    let mut t_indiv = Duration::ZERO;
    let mut t_bcrypt = Duration::ZERO;
    for _ in 0..reps {
        let t = Instant::now();
        for (digest, us, ls) in &jobs {
            verify_spend(us, ls, &DigestChecker::with_context(*digest, 0, &cache)).unwrap();
        }
        t_strict += t.elapsed();
        let t = Instant::now();
        assert!(sv_chunk_batched(&sv_jobs, &cache).iter().all(|r| r.is_ok()));
        t_batched += t.elapsed();
        let t = Instant::now();
        for (z, sig, k) in &raw {
            assert!(prepared[*k].verify(z, sig));
        }
        t_indiv += t.elapsed();
        let t = Instant::now();
        let mut b = BatchVerifier::new();
        for (z, sig, k) in &raw {
            b.push(*z, *sig, &prepared[*k]);
        }
        assert!(b.verify().all_valid);
        t_bcrypt += t.elapsed();
    }
    let per = |d: Duration| d / reps;
    println!(
        "{n} jobs: strict {:?} batched {:?} ({:.2}x) | crypto indiv {:?} batch {:?} ({:.2}x)",
        per(t_strict),
        per(t_batched),
        t_strict.as_secs_f64() / t_batched.as_secs_f64(),
        per(t_indiv),
        per(t_bcrypt),
        t_indiv.as_secs_f64() / t_bcrypt.as_secs_f64(),
    );
    println!(
        "script overhead: strict {:?} batched {:?}",
        per(t_strict.saturating_sub(t_indiv)),
        per(t_batched.saturating_sub(t_bcrypt)),
    );
}
