//! Scenario construction: generated chain + converted EBV chain + nodes.

use crate::args::CommonArgs;
use ebv_chain::Block;
use ebv_core::{BaselineConfig, BaselineNode, EbvBlock, EbvConfig, EbvNode, Intermediary};
use ebv_store::{KvStore, LatencyModel, StoreConfig, UtxoSet};
use ebv_workload::{ChainGenerator, GeneratorParams};

/// A fully materialized experiment input: one logical ledger in both
/// formats.
pub struct Scenario {
    pub blocks: Vec<Block>,
    pub ebv_blocks: Vec<EbvBlock>,
}

impl Scenario {
    /// Generate the chain and convert it through the intermediary.
    pub fn build(params: GeneratorParams) -> Scenario {
        let blocks = ChainGenerator::new(params).generate();
        let mut intermediary = Intermediary::new(0);
        let ebv_blocks = intermediary
            .convert_chain(&blocks)
            .expect("generated chains always convert");
        Scenario { blocks, ebv_blocks }
    }

    /// The default mainnet-like scenario for `args` (consolidation epoch
    /// placed at ~80 % of the chain, mirroring the paper's Fig. 5 dip in
    /// the 500k–550k period of 650k blocks).
    pub fn mainnet_like(args: &CommonArgs) -> Scenario {
        let n = args.blocks;
        let params = GeneratorParams::mainnet_like(n, args.seed)
            .with_consolidation(n * 10 / 13, n * 11 / 13);
        Scenario::build(params)
    }

    /// A freshly booted baseline node over this scenario's genesis with
    /// the given cache budget and injected latency.
    pub fn baseline_node(&self, args: &CommonArgs) -> BaselineNode {
        let store = KvStore::open(StoreConfig {
            cache_budget: args.budget,
            latency: LatencyModel::scaled_hdd(args.latency_us, args.latency_us / 4),
            path: None,
        })
        .expect("temp store opens");
        BaselineNode::new(
            &self.blocks[0],
            UtxoSet::new(store),
            BaselineConfig {
                batch_verify: args.batch_verify,
                ..BaselineConfig::default()
            },
        )
        .expect("genesis applies")
    }

    /// A freshly booted EBV node over this scenario's genesis.
    pub fn ebv_node(&self) -> EbvNode {
        self.ebv_node_with(EbvConfig::default())
    }

    /// Same, with an explicit validator configuration (parallelism knobs).
    pub fn ebv_node_with(&self, config: EbvConfig) -> EbvNode {
        EbvNode::new(&self.ebv_blocks[0], config)
    }
}
