//! Shared harness for the figure-regeneration binaries.
//!
//! Every binary regenerates one table/figure of the paper (see DESIGN.md
//! §3 for the index) and accepts the same CLI knobs:
//!
//! ```text
//! --blocks N        chain length (default per figure)
//! --seed S          generator seed (default 1)
//! --budget BYTES    status-database cache budget (baseline node)
//! --latency-us US   injected disk latency per random access
//! --runs R          repetitions for boxplot-style figures
//! ```
//!
//! Scale note: the paper runs Bitcoin mainnet (650k blocks, 4.3 GB UTXO
//! set, HDD). This harness runs generated chains scaled down ~250×, with
//! the cache budget scaled to a similar fraction of the final set size
//! and the latency knob standing in for HDD seeks. Shapes, not absolute
//! numbers, are the reproduction target (EXPERIMENTS.md).

pub mod apply;
pub mod args;
pub mod scenario;
pub mod table;

pub use args::CommonArgs;
pub use scenario::Scenario;
