//! Fixed-width table printing for figure output.

/// Print a header row followed by a rule.
pub fn header(cols: &[(&str, usize)]) {
    let mut line = String::new();
    for (name, width) in cols {
        line.push_str(&format!("{name:>width$}  "));
    }
    println!("{}", line.trim_end());
    println!("{}", "-".repeat(line.trim_end().len()));
}

/// Print one row of already formatted cells with the same widths.
pub fn row(cells: &[(String, usize)]) {
    let mut line = String::new();
    for (cell, width) in cells {
        line.push_str(&format!("{cell:>width$}  "));
    }
    println!("{}", line.trim_end());
}

/// Format a byte count as MB with two decimals.
pub fn mb(bytes: u64) -> String {
    format!("{:.2}", bytes as f64 / (1024.0 * 1024.0))
}

/// Format a duration as milliseconds with one decimal.
pub fn ms(d: std::time::Duration) -> String {
    format!("{:.1}", d.as_secs_f64() * 1000.0)
}

/// Format a duration as seconds with two decimals.
pub fn secs(d: std::time::Duration) -> String {
    format!("{:.2}", d.as_secs_f64())
}

/// Percentage reduction from `from` to `to` (positive = improvement).
pub fn reduction_pct(from: f64, to: f64) -> String {
    if from <= 0.0 {
        return "n/a".to_string();
    }
    format!("{:.1}%", (1.0 - to / from) * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatting() {
        assert_eq!(mb(1024 * 1024), "1.00");
        assert_eq!(mb(1536 * 1024), "1.50");
        assert_eq!(ms(std::time::Duration::from_micros(12_345)), "12.3");
        assert_eq!(secs(std::time::Duration::from_millis(2500)), "2.50");
        assert_eq!(reduction_pct(100.0, 6.5), "93.5%");
        assert_eq!(reduction_pct(0.0, 5.0), "n/a");
    }
}
