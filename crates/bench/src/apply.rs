//! Status-only chain application.
//!
//! For the growth figures (Figs. 1 and 14) the quantity of interest is the
//! *size* of the status data over time, not validation speed, so this
//! module applies blocks to the status representations without signatures
//! or proofs: the UTXO set (baseline) and the bit-vector set (EBV) are
//! updated directly from the chain's own contents.

use ebv_chain::{Block, OutPoint};
use ebv_core::bitvec::BitVectorSet;
use ebv_store::{UtxoEntry, UtxoSet};
use std::collections::HashMap;

/// Tracks both status representations in lockstep over a baseline chain.
pub struct StatusTracker {
    pub utxos: UtxoSet,
    pub bitvecs: BitVectorSet,
    /// outpoint → (height, absolute position), retired when spent.
    coords: HashMap<OutPoint, (u32, u32)>,
    next_height: u32,
}

impl StatusTracker {
    pub fn new(utxos: UtxoSet) -> StatusTracker {
        StatusTracker {
            utxos,
            bitvecs: BitVectorSet::new(),
            coords: HashMap::new(),
            next_height: 0,
        }
    }

    /// Apply the next block (heights must be presented in order).
    pub fn apply(&mut self, block: &Block) {
        let height = self.next_height;
        self.next_height += 1;

        // Spends first (a block never spends its own outputs here).
        for tx in block.transactions.iter().skip(1) {
            for input in &tx.inputs {
                let (h, pos) = self
                    .coords
                    .remove(&input.prevout)
                    .expect("generated chains never double-spend");
                self.bitvecs
                    .spend(h, pos)
                    .expect("tracked coordinate is unspent");
                // The UTXO delete needs the entry for exact size tracking.
                let entry = self
                    .utxos
                    .fetch(&input.prevout)
                    .expect("store io")
                    .expect("tracked outpoint present");
                self.utxos.delete(&input.prevout, &entry).expect("store io");
            }
        }

        // Then inserts.
        self.bitvecs
            .insert_block(height, block.output_count() as u32);
        let mut position = 0u32;
        for tx in &block.transactions {
            let txid = tx.txid();
            let coinbase = tx.is_coinbase();
            for (vout, output) in tx.outputs.iter().enumerate() {
                let outpoint = OutPoint::new(txid, vout as u32);
                self.coords.insert(outpoint, (height, position));
                self.utxos
                    .insert(
                        &outpoint,
                        &UtxoEntry {
                            value: output.value,
                            locking_script: output.locking_script.clone(),
                            height,
                            position,
                            coinbase,
                        },
                    )
                    .expect("store io");
                position += 1;
            }
        }
    }

    /// Heights applied so far.
    pub fn height(&self) -> u32 {
        self.next_height
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ebv_store::{KvStore, StoreConfig};
    use ebv_workload::{ChainGenerator, GeneratorParams};

    #[test]
    fn both_representations_agree_on_unspent_count() {
        let blocks = ChainGenerator::new(GeneratorParams::tiny(12, 3)).generate();
        let utxos = UtxoSet::new(KvStore::open(StoreConfig::with_budget(8 << 20)).unwrap());
        let mut tracker = StatusTracker::new(utxos);
        for block in &blocks {
            tracker.apply(block);
        }
        assert_eq!(tracker.height(), 13);
        assert_eq!(tracker.utxos.size().count, tracker.bitvecs.total_unspent());
        assert!(tracker.bitvecs.total_unspent() > 0);
        // The optimized representation never exceeds the dense one.
        let m = tracker.bitvecs.memory();
        assert!(m.optimized <= m.unoptimized);
        // And the bit-vector set is far smaller than the UTXO set.
        assert!(m.unoptimized < tracker.utxos.size().bytes);
    }
}
