//! Minimal CLI parsing shared by the figure binaries (no external deps).

use ebv_core::EbvConfig;

/// Common knobs; each binary overrides the defaults that matter to it.
#[derive(Clone, Debug)]
pub struct CommonArgs {
    pub blocks: u32,
    pub seed: u64,
    /// Cache budget in bytes for the baseline status database.
    pub budget: usize,
    /// Injected disk latency per random access, microseconds.
    pub latency_us: u64,
    /// Repetitions for multi-run figures.
    pub runs: usize,
    /// Fold Merkle branches (EV) in parallel on the EBV node.
    pub parallel_ev: bool,
    /// Verify scripts (SV) in parallel on the EBV node.
    pub parallel_sv: bool,
    /// Worker-thread override for the parallel phases (`None` = all cores).
    pub workers: Option<usize>,
    /// Settle SV's ECDSA checks through batched verification on both
    /// nodes.
    pub batch_verify: bool,
    /// Worker counts to sweep (figures that support it; fig16 re-runs its
    /// comparison once per count).
    pub sweep_workers: Option<Vec<usize>>,
    /// Also run snapshot-parallel IBD with this many interval workers
    /// (figures that support it; fig17).
    pub parallel_ibd: Option<usize>,
    /// Write machine-readable results (per-phase ns, verifies/sec) to this
    /// path, for figures that support it.
    pub json: Option<String>,
    /// Compare this run against a committed benchmark JSON and exit
    /// nonzero on regression (figures that support it; syncbench gates
    /// time-to-ban).
    pub gate: Option<String>,
    /// Write a telemetry export after the run: Prometheus text to this
    /// path and a JSON snapshot to `<path>.json`.
    pub metrics_out: Option<String>,
    /// Record a JSONL time series of interval metric deltas to this path
    /// (one line per phase the figure ticks). Implies telemetry on.
    pub timeseries_out: Option<String>,
}

impl CommonArgs {
    /// Parse `std::env::args`, starting from figure-specific defaults.
    ///
    /// Exits with a usage message on `--help` or a malformed flag.
    pub fn parse(defaults: CommonArgs) -> CommonArgs {
        let mut out = defaults.clone();
        let args: Vec<String> = std::env::args().skip(1).collect();
        let mut i = 0;
        while i < args.len() {
            let flag = args[i].as_str();
            let value = |i: usize| -> &str {
                args.get(i + 1).map(String::as_str).unwrap_or_else(|| {
                    eprintln!("missing value for {flag}");
                    std::process::exit(2);
                })
            };
            match flag {
                "--blocks" => {
                    out.blocks = parse_num(value(i), flag);
                    i += 2;
                }
                "--seed" => {
                    out.seed = parse_num(value(i), flag);
                    i += 2;
                }
                "--budget" => {
                    out.budget = parse_num::<u64>(value(i), flag) as usize;
                    i += 2;
                }
                "--latency-us" => {
                    out.latency_us = parse_num(value(i), flag);
                    i += 2;
                }
                "--runs" => {
                    out.runs = parse_num::<u64>(value(i), flag) as usize;
                    i += 2;
                }
                "--seq-ev" => {
                    out.parallel_ev = false;
                    i += 1;
                }
                "--seq-sv" => {
                    out.parallel_sv = false;
                    i += 1;
                }
                "--workers" => {
                    out.workers = Some(parse_num::<u64>(value(i), flag) as usize);
                    i += 2;
                }
                "--batch-verify" => {
                    out.batch_verify = true;
                    i += 1;
                }
                "--sweep-workers" => {
                    let counts: Vec<usize> = value(i)
                        .split(',')
                        .map(|part| parse_num::<u64>(part.trim(), flag) as usize)
                        .collect();
                    if counts.is_empty() || counts.contains(&0) {
                        eprintln!("--sweep-workers wants a comma-separated list of counts ≥ 1");
                        std::process::exit(2);
                    }
                    out.sweep_workers = Some(counts);
                    i += 2;
                }
                "--parallel-ibd" => {
                    out.parallel_ibd = Some(parse_num::<u64>(value(i), flag) as usize);
                    i += 2;
                }
                "--json" => {
                    out.json = Some(value(i).to_string());
                    i += 2;
                }
                "--gate" => {
                    out.gate = Some(value(i).to_string());
                    i += 2;
                }
                "--metrics-out" => {
                    out.metrics_out = Some(value(i).to_string());
                    i += 2;
                }
                "--timeseries-out" => {
                    out.timeseries_out = Some(value(i).to_string());
                    i += 2;
                }
                "--help" | "-h" => {
                    eprintln!(
                        "flags: --blocks N --seed S --budget BYTES --latency-us US --runs R \
                         --seq-ev --seq-sv --workers W --batch-verify --sweep-workers W1,W2,… \
                         --parallel-ibd N --json PATH --gate PATH --metrics-out PATH \
                         --timeseries-out JSONL\n\
                         (--metrics-out writes Prometheus text to PATH and a JSON \
                         snapshot to PATH.json; --timeseries-out records per-phase \
                         metric deltas as JSONL)\n\
                         defaults: {defaults:?}"
                    );
                    std::process::exit(0);
                }
                other => {
                    eprintln!("unknown flag {other} (try --help)");
                    std::process::exit(2);
                }
            }
        }
        out
    }
}

fn parse_num<T: std::str::FromStr>(s: &str, flag: &str) -> T {
    s.parse().unwrap_or_else(|_| {
        eprintln!("bad numeric value {s:?} for {flag}");
        std::process::exit(2);
    })
}

impl Default for CommonArgs {
    fn default() -> Self {
        // Scaled to the paper's regime: the cache budget is ~15 % of the
        // final UTXO-set size (paper: 500 MB limit vs 4.3 GB set) and the
        // injected latency is a ~5×-scaled-down HDD random access (paper:
        // LevelDB on a 2 TB HDD).
        CommonArgs {
            blocks: 1040, // 26 quarters × 40, 13 periods × 80
            seed: 1,
            budget: 24 << 10,
            latency_us: 1000,
            runs: 5,
            parallel_ev: true,
            parallel_sv: true,
            workers: None,
            batch_verify: false,
            sweep_workers: None,
            parallel_ibd: None,
            json: None,
            gate: None,
            metrics_out: None,
            timeseries_out: None,
        }
    }
}

impl CommonArgs {
    /// The EBV validator configuration these flags select.
    pub fn ebv_config(&self) -> EbvConfig {
        EbvConfig {
            parallel_ev: self.parallel_ev,
            parallel_sv: self.parallel_sv,
            workers: self.workers,
            batch_verify: self.batch_verify,
            ..EbvConfig::default()
        }
    }

    /// Enable telemetry collection when `--metrics-out` or
    /// `--timeseries-out` was given. Call at the top of a figure binary's
    /// `main`, before validation starts.
    pub fn enable_telemetry(&self) {
        if self.metrics_out.is_some() || self.timeseries_out.is_some() {
            ebv_telemetry::set_enabled(true);
        }
    }

    /// Open the time-series recorder requested by `--timeseries-out`
    /// (`None` when the flag is absent). Call `tick(label)` on it at each
    /// phase boundary; it writes one delta line per tick.
    pub fn timeseries(&self) -> Option<ebv_telemetry::TimeseriesRecorder> {
        let path = self.timeseries_out.as_deref()?;
        match ebv_telemetry::TimeseriesRecorder::create(std::path::Path::new(path)) {
            Ok(rec) => Some(rec),
            Err(e) => {
                eprintln!("error opening timeseries output {path}: {e}");
                std::process::exit(1);
            }
        }
    }

    /// Write the telemetry export requested by `--metrics-out`: Prometheus
    /// text at the given path, JSON snapshot at `<path>.json`.
    pub fn write_metrics(&self) {
        let Some(path) = &self.metrics_out else {
            return;
        };
        let json_path = format!("{path}.json");
        ebv_telemetry::write_metrics_files(
            Some(std::path::Path::new(path)),
            Some(std::path::Path::new(&json_path)),
        )
        .unwrap_or_else(|e| {
            eprintln!("error writing metrics to {path}: {e}");
            std::process::exit(1);
        });
        println!("\nwrote metrics to {path} and {json_path}");
    }
}
