//! Proof overhead — the cost side of EBV that §VII contrasts with
//! Utreexo/Edrax: every input carries `MBr + ELs + height + position`.
//! This table reports serialized block sizes in both formats, the per-input
//! proof size, and how branch length scales with block size (logarithmic,
//! unlike Utreexo's UTXO-count-dependent proofs).

use ebv_bench::{table, CommonArgs, Scenario};
use ebv_primitives::encode::Encodable;

fn main() {
    let args = CommonArgs::parse(CommonArgs {
        blocks: 400,
        ..Default::default()
    });
    println!(
        "# Proof overhead — baseline vs EBV serialized sizes ({} blocks, seed {})",
        args.blocks, args.seed
    );
    let scenario = Scenario::mainnet_like(&args);

    let cols = [
        ("span", 12),
        ("base_kib", 10),
        ("ebv_kib", 10),
        ("overhead", 10),
        ("proof_b/input", 14),
        ("avg_siblings", 13),
    ];
    table::header(&cols);

    let span = (scenario.blocks.len() / 8).max(1);
    let mut grand = (0u64, 0u64, 0u64, 0u64, 0u64); // base, ebv, proof bytes, inputs, siblings
    for (chunk_base, chunk_ebv) in scenario
        .blocks
        .chunks(span)
        .zip(scenario.ebv_blocks.chunks(span))
    {
        let base_bytes: u64 = chunk_base.iter().map(|b| b.encoded_len() as u64).sum();
        let ebv_bytes: u64 = chunk_ebv.iter().map(|b| b.encoded_len() as u64).sum();
        let mut proof_bytes = 0u64;
        let mut inputs = 0u64;
        let mut siblings = 0u64;
        for block in chunk_ebv {
            for tx in block.transactions.iter().skip(1) {
                for body in &tx.bodies {
                    let proof = body.proof.as_ref().expect("spend proof");
                    proof_bytes += proof.proof_size() as u64;
                    siblings += proof.mbr.siblings.len() as u64;
                    inputs += 1;
                }
            }
        }
        grand.0 += base_bytes;
        grand.1 += ebv_bytes;
        grand.2 += proof_bytes;
        grand.3 += inputs;
        grand.4 += siblings;
        let first = chunk_base[0].header.time;
        let last = first + chunk_base.len() as u32 - 1;
        table::row(&[
            (format!("{first}-{last}"), 12),
            (format!("{:.1}", base_bytes as f64 / 1024.0), 10),
            (format!("{:.1}", ebv_bytes as f64 / 1024.0), 10),
            (format!("{:.2}x", ebv_bytes as f64 / base_bytes as f64), 10),
            (
                proof_bytes
                    .checked_div(inputs)
                    .map_or_else(|| "-".into(), |v| format!("{v}")),
                14,
            ),
            (
                if inputs > 0 {
                    format!("{:.1}", siblings as f64 / inputs as f64)
                } else {
                    "-".into()
                },
                13,
            ),
        ]);
    }

    println!(
        "\ntotals: baseline {:.1} KiB, EBV {:.1} KiB ({:.2}×); {} inputs, {} proof bytes/input",
        grand.0 as f64 / 1024.0,
        grand.1 as f64 / 1024.0,
        grand.1 as f64 / grand.0 as f64,
        grand.3,
        grand.2.checked_div(grand.3).unwrap_or(0),
    );
    println!(
        "EBV trades block size for validation locality; branch length grows with log2(txs/block), \
         not with the UTXO count (contrast Utreexo, §VII-B)"
    );
}
