//! Fig. 15 — EBV: input count vs block-validation time.
//!
//! The paper: with all status data in memory, EBV's validation time
//! tracks the input count (no database-state outliers, unlike Fig. 4b).

use ebv_bench::{table, CommonArgs, Scenario};
use ebv_core::ebv_ibd;

fn main() {
    let args = CommonArgs::parse(CommonArgs::default());
    println!(
        "# Fig. 15 — EBV input count vs validation time over the last 10 blocks ({} blocks, seed {})",
        args.blocks, args.seed
    );

    let scenario = Scenario::mainnet_like(&args);
    let mut node = scenario.ebv_node();
    let tail = 10usize.min(scenario.ebv_blocks.len() - 1);
    let split = scenario.ebv_blocks.len() - tail;
    ebv_ibd(&mut node, &scenario.ebv_blocks[1..split], 1 << 20).expect("warmup IBD");

    let cols = [("height", 8), ("inputs", 8), ("validation_ms", 14)];
    table::header(&cols);
    let mut rows: Vec<(usize, f64)> = Vec::new();
    for block in &scenario.ebv_blocks[split..] {
        let b = node.process_block(block).expect("tail block validates");
        let total_ms = b.total().as_secs_f64() * 1000.0;
        rows.push((block.input_count(), total_ms));
        table::row(&[
            (format!("{}", node.tip_height()), 8),
            (format!("{}", block.input_count()), 8),
            (format!("{total_ms:.2}"), 14),
        ]);
    }

    // Pearson correlation between inputs and time — the "consistent
    // variation" claim, quantified.
    let n = rows.len() as f64;
    let mean_x = rows.iter().map(|r| r.0 as f64).sum::<f64>() / n;
    let mean_y = rows.iter().map(|r| r.1).sum::<f64>() / n;
    let cov: f64 = rows
        .iter()
        .map(|r| (r.0 as f64 - mean_x) * (r.1 - mean_y))
        .sum::<f64>();
    let var_x: f64 = rows
        .iter()
        .map(|r| (r.0 as f64 - mean_x).powi(2))
        .sum::<f64>();
    let var_y: f64 = rows.iter().map(|r| (r.1 - mean_y).powi(2)).sum::<f64>();
    if var_x > 0.0 && var_y > 0.0 {
        println!(
            "\ncorrelation(inputs, time) = {:.3}  (paper shape: validation time tracks input count)",
            cov / (var_x.sqrt() * var_y.sqrt())
        );
    }
}
