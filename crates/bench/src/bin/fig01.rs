//! Fig. 1 — growth of the UTXO count and UTXO-set size over time.
//!
//! The paper plots Bitcoin mainnet by quarters (15-Q1 → 21-Q2): the UTXO
//! count grows 4.4× and the set size 7.6×. Here the generated chain is
//! divided into 26 "quarters" and the same two series are measured from
//! the baseline status database.

use ebv_bench::apply::StatusTracker;
use ebv_bench::{table, CommonArgs};
use ebv_store::{KvStore, StoreConfig, UtxoSet};
use ebv_workload::{ChainGenerator, GeneratorParams};

fn main() {
    let args = CommonArgs::parse(CommonArgs::default());
    let n_quarters = 26u32;
    // The paper's window (15-Q1 → 21-Q2) starts six years into Bitcoin's
    // life; analogously the first quarter of the generated chain is history
    // that predates Q1.
    let warmup = args.blocks / 4;
    let blocks_per_quarter = ((args.blocks - warmup) / n_quarters).max(1);

    println!(
        "# Fig. 1 — UTXO count and UTXO-set size by quarter ({} blocks, {} warmup, {} per quarter, seed {})",
        args.blocks, warmup, blocks_per_quarter, args.seed
    );
    let chain =
        ChainGenerator::new(GeneratorParams::mainnet_like(args.blocks, args.seed)).generate();

    // Growth measurement wants no cache pressure: big budget, no latency.
    let utxos = UtxoSet::new(KvStore::open(StoreConfig::with_budget(1 << 30)).expect("store"));
    let mut tracker = StatusTracker::new(utxos);

    let cols = [
        ("quarter", 8),
        ("height", 8),
        ("utxo_count", 12),
        ("utxo_size_mb", 14),
    ];
    table::header(&cols);
    let mut first: Option<(u64, u64)> = None;
    let mut last = (0u64, 0u64);
    for (i, block) in chain.iter().enumerate() {
        tracker.apply(block);
        if (i as u32) < warmup {
            continue;
        }
        let past_warmup = i as u32 + 1 - warmup;
        let boundary = past_warmup.is_multiple_of(blocks_per_quarter);
        if boundary || i + 1 == chain.len() {
            let quarter = past_warmup / blocks_per_quarter;
            let size = tracker.utxos.size();
            last = (size.count, size.bytes);
            first.get_or_insert(last);
            table::row(&[
                (format!("Q{quarter}"), 8),
                (format!("{}", i), 8),
                (format!("{}", size.count), 12),
                (table::mb(size.bytes), 14),
            ]);
        }
    }
    let (c0, b0) = first.expect("at least one quarter");
    println!(
        "\ngrowth: utxo count ×{:.1}, set size ×{:.1}  (paper: ×4.4 and ×7.6 over 2015–2021)",
        last.0 as f64 / c0 as f64,
        last.1 as f64 / b0 as f64
    );
}
