//! Ablation sweeps for the design choices called out in DESIGN.md §5:
//! cache-budget sweep and disk-latency sweep for the baseline (how the
//! DBO bottleneck develops), and the sparse-vector optimization's effect
//! over chain age for EBV.

use ebv_bench::apply::StatusTracker;
use ebv_bench::{table, CommonArgs, Scenario};
use ebv_core::{baseline_ibd, ebv_ibd, EbvConfig};
use ebv_store::{KvStore, StoreConfig, UtxoSet};
use ebv_workload::{ChainGenerator, GeneratorParams};

fn main() {
    let args = CommonArgs::parse(CommonArgs {
        blocks: 260,
        latency_us: 200,
        ..Default::default()
    });
    args.enable_telemetry();
    let scenario = Scenario::mainnet_like(&args);

    println!(
        "# Ablation 1 — cache-budget sweep (baseline IBD, latency {} µs)",
        args.latency_us
    );
    let cols = [
        ("budget_kib", 12),
        ("ibd_s", 9),
        ("dbo_s", 9),
        ("hit_ratio", 10),
    ];
    table::header(&cols);
    for shift in [3usize, 4, 5, 6, 8, 10] {
        let budget = 1usize << (shift + 10);
        let run_args = CommonArgs {
            budget,
            ..args.clone()
        };
        let mut node = scenario.baseline_node(&run_args);
        let periods = baseline_ibd(&mut node, &scenario.blocks[1..], 1 << 20).expect("ibd");
        let total: f64 = periods.iter().map(|p| p.wall.as_secs_f64()).sum();
        let b = node.cumulative_breakdown();
        table::row(&[
            (format!("{}", budget / 1024), 12),
            (format!("{total:.2}"), 9),
            (table::secs(b.dbo), 9),
            (
                format!("{:.1}%", node.utxos().stats().hit_ratio() * 100.0),
                10,
            ),
        ]);
    }

    println!(
        "\n# Ablation 2 — disk-latency sweep (baseline IBD, budget {} KiB)",
        args.budget / 1024
    );
    let cols = [
        ("latency_us", 12),
        ("ibd_s", 9),
        ("dbo_s", 9),
        ("dbo_ratio", 10),
    ];
    table::header(&cols);
    for latency_us in [0u64, 50, 200, 500, 1000] {
        let run_args = CommonArgs {
            latency_us,
            ..args.clone()
        };
        let mut node = scenario.baseline_node(&run_args);
        let periods = baseline_ibd(&mut node, &scenario.blocks[1..], 1 << 20).expect("ibd");
        let total: f64 = periods.iter().map(|p| p.wall.as_secs_f64()).sum();
        let b = node.cumulative_breakdown();
        table::row(&[
            (format!("{latency_us}"), 12),
            (format!("{total:.2}"), 9),
            (table::secs(b.dbo), 9),
            (format!("{:.1}%", b.dbo_ratio() * 100.0), 10),
        ]);
    }

    println!("\n# Ablation 3 — sparse-vector optimization effect by chain age");
    // Status-only application is cheap, so this sweep uses a much longer
    // chain than the IBD sweeps: vectors only go sparse once the old-money
    // spend window (up to 500 blocks) has fully passed over them.
    let sweep3_blocks = args.blocks.max(1300);
    let chain =
        ChainGenerator::new(GeneratorParams::mainnet_like(sweep3_blocks, args.seed)).generate();
    let utxos = UtxoSet::new(KvStore::open(StoreConfig::with_budget(1 << 30)).expect("store"));
    let mut tracker = StatusTracker::new(utxos);
    let cols = [
        ("height", 8),
        ("opt_kib", 10),
        ("noopt_kib", 10),
        ("gain", 8),
    ];
    table::header(&cols);
    let step = (chain.len() / 8).max(1);
    for (i, block) in chain.iter().enumerate() {
        tracker.apply(block);
        if (i + 1) % step == 0 || i + 1 == chain.len() {
            let m = tracker.bitvecs.memory();
            table::row(&[
                (format!("{i}"), 8),
                (format!("{:.1}", m.optimized as f64 / 1024.0), 10),
                (format!("{:.1}", m.unoptimized as f64 / 1024.0), 10),
                (
                    table::reduction_pct(m.unoptimized as f64, m.optimized as f64),
                    8,
                ),
            ]);
        }
    }
    println!("\npaper shape: optimization gain grows with age as old vectors go sparse (42.6% at the tip)");

    println!("\n# Ablation 4 — EBV pipeline parallelism (EV/SV knobs, full IBD)");
    // Every configuration returns byte-identical accept/reject decisions;
    // only the wall time moves. `--workers` (if given) caps each run.
    let cols = [
        ("config", 12),
        ("ibd_s", 9),
        ("ev_s", 9),
        ("sv_s", 9),
        ("commit_s", 9),
        ("others_s", 10),
    ];
    table::header(&cols);
    let sweeps: [(&str, bool, bool); 4] = [
        ("seq", false, false),
        ("par_ev", true, false),
        ("par_sv", false, true),
        ("par_both", true, true),
    ];
    for (label, parallel_ev, parallel_sv) in sweeps {
        let config = EbvConfig {
            parallel_ev,
            parallel_sv,
            workers: args.workers,
            ..EbvConfig::default()
        };
        let mut node = scenario.ebv_node_with(config);
        let periods = ebv_ibd(&mut node, &scenario.ebv_blocks[1..], 1 << 20).expect("ibd");
        let total: f64 = periods.iter().map(|p| p.wall.as_secs_f64()).sum();
        let b = node.cumulative_breakdown();
        table::row(&[
            (label.to_string(), 12),
            (format!("{total:.2}"), 9),
            (table::secs(b.ev), 9),
            (table::secs(b.sv), 9),
            (table::secs(b.commit), 9),
            (table::secs(b.others), 10),
        ]);
    }
    args.write_metrics();
}
