//! Sync-under-faults benchmark: wall time and time-to-ban per adversary
//! class, over real localhost TCP.
//!
//! For every byte-level adversary class the netfault harness can mount,
//! run the multi-peer driver against three adversarial servers plus one
//! honest server and record (a) the wall-clock time to reach the tip with
//! one honest peer of four, and (b) the driver-reported time-to-ban for
//! each adversarial peer — the two numbers the graceful-degradation
//! deliverable is stated in. A clean all-honest TCP run and the
//! in-process (channel transport) equivalent anchor the comparison.
//!
//! Writes `BENCH_sync.json` with `--json PATH` (the committed full-scale
//! file comes from `--blocks 40 --runs 3`; CI runs a smoke size into
//! `target/`).

use ebv_bench::CommonArgs;
use ebv_core::sync::WireAdversary;
use ebv_netsim::{sync_under_faults, sync_under_wire_faults, ValidationModel};
use ebv_workload::{ChainGenerator, GeneratorParams};
use std::time::{Duration, Instant};

/// Per-class aggregate over the configured runs.
struct ClassResult {
    label: &'static str,
    expected_slug: &'static str,
    wall_us: Vec<u64>,
    ban_us: Vec<u64>,
}

fn mean(v: &[u64]) -> u64 {
    if v.is_empty() {
        0
    } else {
        v.iter().sum::<u64>() / v.len() as u64
    }
}

/// Time-to-ban regression gate against a committed `BENCH_sync.json`:
/// every adversary class the committed run banned must still be present,
/// still map to the same violation slug, and its mean time-to-ban in this
/// run must stay within an order of magnitude of the committed mean. The
/// factor is deliberately generous — CI machines are noisy and the smoke
/// run is smaller than the committed full-scale run — so the gate catches
/// "banning stopped working or got pathologically slow", not
/// single-digit-percent drift.
fn gate_against(path: &str, classes: &[ClassResult]) {
    use ebv_telemetry::json::{self, Value};
    const MAX_REGRESSION_FACTOR: f64 = 10.0;

    let text = std::fs::read_to_string(path).unwrap_or_else(|e| panic!("--gate {path}: {e}"));
    let v = json::parse(&text).unwrap_or_else(|e| panic!("--gate {path}: bad JSON: {e}"));
    let committed = match v.get("classes") {
        Some(Value::Array(items)) => items,
        _ => panic!("--gate {path}: no \"classes\" array"),
    };
    println!("\n## time-to-ban gate vs {path}");
    let mut failed = false;
    for item in committed {
        let name = item
            .get("adversary")
            .and_then(Value::as_str)
            .unwrap_or_else(|| panic!("--gate {path}: class without \"adversary\""));
        let slug = item.get("expected_slug").and_then(Value::as_str);
        let committed_ban = item
            .get("ban_us_mean")
            .and_then(Value::as_f64)
            .unwrap_or_else(|| panic!("--gate {path}: {name} without \"ban_us_mean\""));
        let Some(current) = classes.iter().find(|c| c.label == name) else {
            println!("FAIL {name:<24} class disappeared from the bench");
            failed = true;
            continue;
        };
        if slug.is_some_and(|s| s != current.expected_slug) {
            println!(
                "FAIL {name:<24} slug changed: committed {:?}, now {:?}",
                slug.unwrap_or(""),
                current.expected_slug
            );
            failed = true;
            continue;
        }
        let current_ban = mean(&current.ban_us) as f64;
        let bound = committed_ban * MAX_REGRESSION_FACTOR;
        if current_ban > bound {
            println!(
                "FAIL {name:<24} time-to-ban {current_ban:.0} us > {MAX_REGRESSION_FACTOR}x \
                 committed mean {committed_ban:.0} us"
            );
            failed = true;
        } else {
            println!(
                "ok   {name:<24} time-to-ban {current_ban:.0} us (committed {committed_ban:.0} \
                 us, bound {bound:.0} us)"
            );
        }
    }
    if failed {
        eprintln!("time-to-ban gate FAILED against {path}");
        std::process::exit(1);
    }
    println!("time-to-ban gate passed ({} classes)", committed.len());
}

fn main() {
    let args = CommonArgs::parse(CommonArgs {
        blocks: 40,
        runs: 3,
        ..Default::default()
    });
    args.enable_telemetry();
    let mut timeseries = args.timeseries();
    let blocks = ChainGenerator::new(GeneratorParams::tiny(args.blocks, args.seed)).generate();
    let tip = blocks.len() as u32 - 1;
    println!(
        "# syncbench — {} blocks, {} runs, 3 adversaries + 1 honest peer per class",
        args.blocks, args.runs
    );

    // Anchors: all-honest TCP, and the in-process channel transport under
    // the content-fault soup (the pre-wire fault matrix's regime).
    let mut clean_us: Vec<u64> = Vec::new();
    let mut inproc_us: Vec<u64> = Vec::new();
    for run in 0..args.runs as u64 {
        let t = Instant::now();
        let r = sync_under_wire_faults(&blocks, ValidationModel::Constant(10), 4, &[], run)
            .expect("clean TCP sync");
        assert_eq!(r.tip_height, tip);
        clean_us.push(t.elapsed().as_micros() as u64);

        let t = Instant::now();
        let r = sync_under_faults(&blocks, ValidationModel::Constant(10), 3, run, 40)
            .expect("in-process sync");
        assert_eq!(r.tip_height, tip);
        inproc_us.push(t.elapsed().as_micros() as u64);
    }
    println!(
        "clean TCP (4 honest):      {:>8} us mean wall",
        mean(&clean_us)
    );
    println!(
        "in-process content faults: {:>8} us mean wall",
        mean(&inproc_us)
    );
    if let Some(ts) = &mut timeseries {
        ts.tick("anchors");
    }

    let mut classes: Vec<ClassResult> = Vec::new();
    for adversary in WireAdversary::all(Duration::from_millis(5)) {
        let mut result = ClassResult {
            label: adversary.label(),
            expected_slug: adversary.expected_slug(),
            wall_us: Vec::new(),
            ban_us: Vec::new(),
        };
        for run in 0..args.runs as u64 {
            let lineup = [adversary; 3];
            let t = Instant::now();
            let r = sync_under_wire_faults(&blocks, ValidationModel::Constant(10), 1, &lineup, run)
                .unwrap_or_else(|e| panic!("{}: sync must survive: {e}", adversary.label()));
            result.wall_us.push(t.elapsed().as_micros() as u64);
            assert_eq!(r.tip_height, tip, "{}: tip", adversary.label());
            for stats in &r.report.peers[..3] {
                let banned_at = stats.banned_at_us.unwrap_or_else(|| {
                    panic!("{}: peer {} not banned", adversary.label(), stats.id)
                });
                result.ban_us.push(banned_at);
            }
        }
        println!(
            "{:<24} {:>8} us mean wall, time-to-ban {:>7}..{:>7} us (mean {:>7})",
            result.label,
            mean(&result.wall_us),
            result.ban_us.iter().min().copied().unwrap_or(0),
            result.ban_us.iter().max().copied().unwrap_or(0),
            mean(&result.ban_us),
        );
        if let Some(ts) = &mut timeseries {
            ts.tick(result.label);
        }
        classes.push(result);
    }
    if let Some(ts) = timeseries.take() {
        ts.finish().expect("timeseries");
        println!("wrote {}", args.timeseries_out.as_deref().unwrap_or(""));
    }

    if let Some(gate_path) = &args.gate {
        gate_against(gate_path, &classes);
    }

    if let Some(path) = &args.json {
        let class_json: Vec<String> = classes
            .iter()
            .map(|c| {
                format!(
                    "    {{\"adversary\": \"{}\", \"expected_slug\": \"{}\", \
                     \"wall_us_mean\": {}, \"ban_us_min\": {}, \"ban_us_max\": {}, \
                     \"ban_us_mean\": {}}}",
                    c.label,
                    c.expected_slug,
                    mean(&c.wall_us),
                    c.ban_us.iter().min().copied().unwrap_or(0),
                    c.ban_us.iter().max().copied().unwrap_or(0),
                    mean(&c.ban_us),
                )
            })
            .collect();
        let json = format!(
            "{{\n  \"bench\": \"syncbench\",\n  \"blocks\": {},\n  \"runs\": {},\n  \
             \"seed\": {},\n  \
             \"peers_per_class\": {{\"adversarial\": 3, \"honest\": 1}},\n  \
             \"clean_tcp_wall_us_mean\": {},\n  \"in_process_faults_wall_us_mean\": {},\n  \
             \"classes\": [\n{}\n  ]\n}}\n",
            args.blocks,
            args.runs,
            args.seed,
            mean(&clean_us),
            mean(&inproc_us),
            class_json.join(",\n"),
        );
        std::fs::write(path, json).expect("write json");
        println!("\nwrote {path}");
    }
}
