//! Netsim-scale robustness benchmark: propagation at n ≥ 1000, eclipse
//! resistance on/off, and partition-recovery convergence.
//!
//! Three figures in one binary, all driven by the seeded netsim stack so
//! every number is reproducible from the JSON-embedded seed:
//!
//! 1. **Propagation at scale** — the Fig. 18 gossip experiment lifted
//!    from 20 nodes to a guaranteed-connected random graph of `--prop-nodes`
//!    (default 1000), EBV vs baseline validation models.
//! 2. **Eclipse campaigns** — the adversary cohort of
//!    [`ebv_netsim::eclipse`] against a naive address manager and against
//!    the hardened [`PeerManager`] defenses, reported as eclipse-success
//!    probability over `--seeds` campaigns.
//! 3. **Partition-and-heal** — `--nodes` (default 500) nodes split,
//!    extend their own branches, heal, and converge through the real
//!    `reorg_to` engine; convergence rounds and reorg-depth distribution
//!    per validation model.
//!
//! The committed full-scale file is `BENCH_netsim.json` (defaults, `--json
//! BENCH_netsim.json`); CI runs a smoke size into `target/`.

use ebv_core::sync::DefensePolicy;
use ebv_netsim::{
    run_eclipse_campaign, run_partition_heal, EclipseParams, GossipSim, PartitionParams, SimParams,
    SimResult, Topology, ValidationModel,
};
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Validation-time means for the scale experiments, fixed in the regime
/// fig18 measures (baseline ~10× EBV; fig18's subject is calibration,
/// this binary's is scale).
const BASELINE_MEAN_US: u64 = 800_000;
const EBV_MEAN_US: u64 = 80_000;

struct Args {
    prop_nodes: usize,
    prop_degree: usize,
    prop_runs: usize,
    nodes: usize,
    seeds: u64,
    seed: u64,
    json: Option<String>,
    timeseries_out: Option<String>,
}

fn parse_args() -> Args {
    let mut out = Args {
        prop_nodes: 1000,
        prop_degree: 4,
        prop_runs: 5,
        nodes: 500,
        seeds: 24,
        seed: 1,
        json: None,
        timeseries_out: None,
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        let value = |i: usize| -> &str {
            args.get(i + 1).map(String::as_str).unwrap_or_else(|| {
                eprintln!("missing value for {flag}");
                std::process::exit(2);
            })
        };
        fn num<T: std::str::FromStr>(s: &str, flag: &str) -> T {
            s.parse().unwrap_or_else(|_| {
                eprintln!("bad numeric value {s:?} for {flag}");
                std::process::exit(2);
            })
        }
        match flag {
            "--prop-nodes" => {
                out.prop_nodes = num(value(i), flag);
                i += 2;
            }
            "--prop-degree" => {
                out.prop_degree = num(value(i), flag);
                i += 2;
            }
            "--prop-runs" => {
                out.prop_runs = num(value(i), flag);
                i += 2;
            }
            "--nodes" => {
                out.nodes = num(value(i), flag);
                i += 2;
            }
            "--seeds" => {
                out.seeds = num(value(i), flag);
                i += 2;
            }
            "--seed" => {
                out.seed = num(value(i), flag);
                i += 2;
            }
            "--json" => {
                out.json = Some(value(i).to_string());
                i += 2;
            }
            "--timeseries-out" => {
                out.timeseries_out = Some(value(i).to_string());
                i += 2;
            }
            "--help" | "-h" => {
                eprintln!(
                    "flags: --prop-nodes N --prop-degree K --prop-runs R --nodes N \
                     --seeds S --seed S --json PATH --timeseries-out JSONL\n\
                     defaults: propagation 1000 nodes × 5 runs, partition 500 nodes, \
                     eclipse 24 seeds"
                );
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown flag {other} (try --help)");
                std::process::exit(2);
            }
        }
    }
    out
}

fn mean(v: &[f64]) -> f64 {
    if v.is_empty() {
        0.0
    } else {
        v.iter().sum::<f64>() / v.len() as f64
    }
}

/// Propagation summary over runs on the fixed large topology.
struct PropStats {
    p50_ms: f64,
    p90_ms: f64,
    last_ms: f64,
}

fn propagation(args: &Args, model: ValidationModel, label: &str) -> PropStats {
    let sim = GossipSim::new(SimParams {
        n_nodes: args.prop_nodes,
        validation: model,
        ..Default::default()
    });
    let mut p50 = Vec::new();
    let mut p90 = Vec::new();
    let mut last = Vec::new();
    for run in 0..args.prop_runs as u64 {
        // Fresh connected topology per run; the generator (not
        // `Topology::random`) is what guarantees reachability at n ≥ 1000.
        let mut rng = SmallRng::seed_from_u64(args.seed ^ (run.wrapping_mul(7919)));
        let topo = Topology::random_connected(args.prop_nodes, args.prop_degree, &mut rng);
        let result: SimResult = sim.run_on(&topo, 0, &mut rng);
        assert!(
            result.fully_propagated(),
            "{label} run {run}: unreached nodes"
        );
        p50.push(result.percentile_ms(0.5));
        p90.push(result.percentile_ms(0.9));
        last.push(result.last_receive_ms());
    }
    let stats = PropStats {
        p50_ms: mean(&p50),
        p90_ms: mean(&p90),
        last_ms: mean(&last),
    };
    println!(
        "{label:<10} p50 {:>9.0} ms, p90 {:>9.0} ms, full {:>9.0} ms",
        stats.p50_ms, stats.p90_ms, stats.last_ms
    );
    stats
}

/// Aggregate over one eclipse arm's campaigns.
struct EclipseStats {
    probability: f64,
    mean_adversary_outbound: f64,
    mean_honest_outbound: f64,
    mean_table_poison: f64,
}

fn eclipse_arm(params: &EclipseParams, defenses: DefensePolicy, seeds: u64) -> EclipseStats {
    let mut wins = 0u64;
    let mut adv = Vec::new();
    let mut honest = Vec::new();
    let mut poison = Vec::new();
    for seed in 0..seeds {
        let (outcome, _) = run_eclipse_campaign(params, defenses, seed);
        if outcome.eclipsed {
            wins += 1;
        }
        adv.push(outcome.adversary_outbound as f64);
        honest.push(outcome.honest_outbound as f64);
        poison.push(outcome.table_poison_fraction);
    }
    EclipseStats {
        probability: wins as f64 / seeds as f64,
        mean_adversary_outbound: mean(&adv),
        mean_honest_outbound: mean(&honest),
        mean_table_poison: mean(&poison),
    }
}

/// One partition-heal run's JSON-ready summary.
struct PartitionStats {
    converged: bool,
    converged_nodes: usize,
    heal_rounds: u32,
    reorgs: usize,
    depth_max: u32,
    depth_mean: f64,
    refused: usize,
    total_modeled_us: u64,
    heavy_tip: String,
}

fn partition_arm(params: &PartitionParams, model: ValidationModel, label: &str) -> PartitionStats {
    let out = run_partition_heal(params, model);
    let depth_mean = mean(
        &out.reorg_depths
            .iter()
            .map(|&d| d as f64)
            .collect::<Vec<_>>(),
    );
    let stats = PartitionStats {
        converged: out.converged,
        converged_nodes: out.converged_nodes,
        heal_rounds: out.heal_rounds,
        reorgs: out.reorg_depths.len(),
        depth_max: out.reorg_depths.iter().max().copied().unwrap_or(0),
        depth_mean,
        refused: out.refused,
        total_modeled_us: out.total_modeled_us,
        heavy_tip: format!("{}", out.heavy_tip),
    };
    println!(
        "{label:<10} converged {}/{} in {} rounds, {} reorgs (depth mean {:.1}, max {}), \
         modeled {} ms",
        stats.converged_nodes,
        out.nodes,
        stats.heal_rounds,
        stats.reorgs,
        stats.depth_mean,
        stats.depth_max,
        stats.total_modeled_us / 1000,
    );
    stats
}

fn prop_json(s: &PropStats) -> String {
    format!(
        "{{\"p50_ms\": {:.1}, \"p90_ms\": {:.1}, \"full_ms\": {:.1}}}",
        s.p50_ms, s.p90_ms, s.last_ms
    )
}

fn eclipse_json(s: &EclipseStats) -> String {
    format!(
        "{{\"probability\": {:.4}, \"mean_adversary_outbound\": {:.2}, \
         \"mean_honest_outbound\": {:.2}, \"mean_table_poison_fraction\": {:.4}}}",
        s.probability, s.mean_adversary_outbound, s.mean_honest_outbound, s.mean_table_poison
    )
}

fn partition_json(s: &PartitionStats) -> String {
    format!(
        "{{\"converged\": {}, \"converged_nodes\": {}, \"heal_rounds\": {}, \
         \"reorgs\": {}, \"reorg_depth_mean\": {:.2}, \"reorg_depth_max\": {}, \
         \"refused\": {}, \"total_modeled_us\": {}, \"heavy_tip\": \"{}\"}}",
        s.converged,
        s.converged_nodes,
        s.heal_rounds,
        s.reorgs,
        s.depth_mean,
        s.depth_max,
        s.refused,
        s.total_modeled_us,
        s.heavy_tip,
    )
}

fn main() {
    let args = parse_args();
    let mut timeseries = args.timeseries_out.as_deref().map(|path| {
        ebv_telemetry::set_enabled(true);
        ebv_telemetry::TimeseriesRecorder::create(std::path::Path::new(path)).unwrap_or_else(|e| {
            eprintln!("error opening timeseries output {path}: {e}");
            std::process::exit(1);
        })
    });
    println!(
        "# netsimbench — propagation {} nodes × {} runs, eclipse {} seeds, partition {} nodes \
         (seed {})",
        args.prop_nodes, args.prop_runs, args.seeds, args.nodes, args.seed
    );

    println!(
        "\n## propagation at scale ({}-regular-ish connected graph)",
        args.prop_degree
    );
    let prop_base = propagation(
        &args,
        ValidationModel::baseline_from_mean_us(BASELINE_MEAN_US),
        "bitcoin",
    );
    let prop_ebv = propagation(&args, ValidationModel::ebv_from_mean_us(EBV_MEAN_US), "ebv");
    if let Some(ts) = &mut timeseries {
        ts.tick("propagation");
    }

    println!("\n## eclipse-success probability over {} seeds", args.seeds);
    let ecl_params = EclipseParams::default();
    let naive = eclipse_arm(&ecl_params, DefensePolicy::naive(), args.seeds);
    let hardened = eclipse_arm(&ecl_params, DefensePolicy::hardened(), args.seeds);
    println!(
        "naive      P(eclipse) {:.2}, outbound adv {:.1} / honest {:.1}, table poison {:.2}",
        naive.probability,
        naive.mean_adversary_outbound,
        naive.mean_honest_outbound,
        naive.mean_table_poison
    );
    println!(
        "hardened   P(eclipse) {:.2}, outbound adv {:.1} / honest {:.1}, table poison {:.2}",
        hardened.probability,
        hardened.mean_adversary_outbound,
        hardened.mean_honest_outbound,
        hardened.mean_table_poison
    );
    if let Some(ts) = &mut timeseries {
        ts.tick("eclipse");
    }

    println!("\n## partition-and-heal, {} nodes", args.nodes);
    let part_params = PartitionParams {
        nodes: args.nodes,
        seed: args.seed ^ 0x9a27,
        ..PartitionParams::default()
    };
    let part_ebv = partition_arm(
        &part_params,
        ValidationModel::ebv_from_mean_us(1_000),
        "ebv",
    );
    let part_base = partition_arm(
        &part_params,
        ValidationModel::baseline_from_mean_us(10_000),
        "bitcoin",
    );
    let tips_match = part_ebv.heavy_tip == part_base.heavy_tip
        && part_ebv.converged_nodes == part_base.converged_nodes;
    println!(
        "post-heal state identical across models: {}",
        if tips_match { "yes" } else { "NO" }
    );
    if let Some(mut ts) = timeseries.take() {
        // Final tick covers the partition phase, then close out the file.
        ts.tick("partition");
        ts.finish().expect("timeseries");
        println!("wrote {}", args.timeseries_out.as_deref().unwrap_or(""));
    }

    if let Some(path) = &args.json {
        let json = format!(
            "{{\n  \"bench\": \"netsimbench\",\n  \"seed\": {},\n  \
             \"propagation\": {{\n    \"nodes\": {}, \"degree\": {}, \"runs\": {},\n    \
             \"baseline_mean_us\": {BASELINE_MEAN_US}, \"ebv_mean_us\": {EBV_MEAN_US},\n    \
             \"bitcoin\": {},\n    \"ebv\": {}\n  }},\n  \
             \"eclipse\": {{\n    \"seeds\": {},\n    \
             \"params\": {{\"honest\": {}, \"adversary_groups\": {}, \"flood_per_round\": {}, \
             \"rounds\": {}}},\n    \
             \"naive\": {},\n    \"hardened\": {}\n  }},\n  \
             \"partition\": {{\n    \"nodes\": {}, \"seed\": {}, \"prefix\": {}, \
             \"branch_a\": {}, \"branch_b\": {}, \"max_reorg_depth\": {},\n    \
             \"ebv\": {},\n    \"bitcoin\": {},\n    \"post_heal_state_identical\": {}\n  }}\n}}\n",
            args.seed,
            args.prop_nodes,
            args.prop_degree,
            args.prop_runs,
            prop_json(&prop_base),
            prop_json(&prop_ebv),
            args.seeds,
            ecl_params.honest,
            ecl_params.adversary_groups,
            ecl_params.flood_per_round,
            ecl_params.rounds,
            eclipse_json(&naive),
            eclipse_json(&hardened),
            part_params.nodes,
            part_params.seed,
            part_params.prefix,
            part_params.branch_a,
            part_params.branch_b,
            part_params.max_reorg_depth,
            partition_json(&part_ebv),
            partition_json(&part_base),
            tips_match,
        );
        std::fs::write(path, json).expect("write json");
        println!("\nwrote {path}");
    }
}
