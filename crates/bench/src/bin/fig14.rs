//! Fig. 14 — memory requirement: UTXO set vs EBV bit-vectors (±
//! optimization).
//!
//! The paper: 4.3 GB (Bitcoin) vs 303.4 MB (EBV) at the 2021 tip — a
//! 93.1 % reduction — with the sparse-vector optimization contributing
//! 42.6 %, and growing in effect over time as old vectors go sparse.

use ebv_bench::apply::StatusTracker;
use ebv_bench::{table, CommonArgs};
use ebv_store::{KvStore, StoreConfig, UtxoSet};
use ebv_workload::{ChainGenerator, GeneratorParams};

fn main() {
    let args = CommonArgs::parse(CommonArgs::default());
    let n_quarters = 26u32;
    let warmup = args.blocks / 4; // pre-window history, as in fig01
    let blocks_per_quarter = ((args.blocks - warmup) / n_quarters).max(1);
    println!(
        "# Fig. 14 — status-data memory requirement by quarter ({} blocks, {} warmup, seed {})",
        args.blocks, warmup, args.seed
    );

    let chain =
        ChainGenerator::new(GeneratorParams::mainnet_like(args.blocks, args.seed)).generate();
    let utxos = UtxoSet::new(KvStore::open(StoreConfig::with_budget(1 << 30)).expect("store"));
    let mut tracker = StatusTracker::new(utxos);

    let cols = [
        ("quarter", 8),
        ("bitcoin_mb", 12),
        ("ebv_mb", 10),
        ("ebv_noopt_mb", 13),
        ("reduction", 10),
        ("opt_gain", 10),
    ];
    table::header(&cols);
    let mut final_row = (0f64, 0f64, 0f64);
    for (i, block) in chain.iter().enumerate() {
        tracker.apply(block);
        if (i as u32) < warmup {
            continue;
        }
        let past_warmup = i as u32 + 1 - warmup;
        if past_warmup.is_multiple_of(blocks_per_quarter) || i + 1 == chain.len() {
            let quarter = past_warmup / blocks_per_quarter;
            let utxo_bytes = tracker.utxos.size().bytes as f64;
            let m = tracker.bitvecs.memory();
            final_row = (utxo_bytes, m.optimized as f64, m.unoptimized as f64);
            table::row(&[
                (format!("Q{quarter}"), 8),
                (table::mb(utxo_bytes as u64), 12),
                (table::mb(m.optimized), 10),
                (table::mb(m.unoptimized), 13),
                (table::reduction_pct(utxo_bytes, m.optimized as f64), 10),
                (
                    table::reduction_pct(m.unoptimized as f64, m.optimized as f64),
                    10,
                ),
            ]);
        }
    }
    let (utxo, opt, noopt) = final_row;
    println!(
        "\nfinal: EBV reduces status memory by {} (paper: 93.1%); optimization contributes {} (paper: 42.6%)",
        table::reduction_pct(utxo, opt),
        table::reduction_pct(noopt, opt)
    );
}
