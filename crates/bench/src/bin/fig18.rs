//! Fig. 18 — block propagation delay: Bitcoin vs EBV.
//!
//! The paper deploys 20 nodes on AWS across 5 regions, 2 gossip neighbors
//! each, releases a seed block and measures when each node receives it
//! (5 repetitions): EBV cuts full-network propagation by 66.4 % and shows
//! lower variance. Here the deployment is simulated; each system's
//! per-hop validation delay is first *measured* by validating tail blocks
//! of a generated chain on the corresponding node, then plugged into the
//! discrete-event gossip simulator.

use ebv_bench::{table, CommonArgs, Scenario};
use ebv_core::{baseline_ibd, ebv_ibd};
use ebv_netsim::{GossipSim, SimParams, SimResult, ValidationModel};

fn main() {
    let args = CommonArgs::parse(CommonArgs {
        blocks: 600,
        ..Default::default()
    });
    println!(
        "# Fig. 18 — propagation delay, 20 nodes / 5 regions / 2 gossip neighbors, {} runs",
        args.runs
    );

    // --- Phase 1: measure per-block validation time on both systems ----
    let scenario = Scenario::mainnet_like(&args);
    let tail = 10usize.min(scenario.blocks.len() - 1);
    let split = scenario.blocks.len() - tail;

    let mut baseline = scenario.baseline_node(&args);
    baseline_ibd(&mut baseline, &scenario.blocks[1..split], 1 << 20).expect("warmup");
    let mut base_us: u64 = 0;
    let mut base_inputs: u64 = 0;
    let mut base_bytes: u64 = 0;
    for block in &scenario.blocks[split..] {
        base_inputs += block.input_count() as u64;
        base_bytes += ebv_primitives::encode::Encodable::encoded_len(block) as u64;
        base_us += baseline
            .process_block(block)
            .expect("validates")
            .total()
            .as_micros() as u64;
    }

    let mut ebv = scenario.ebv_node();
    ebv_ibd(&mut ebv, &scenario.ebv_blocks[1..split], 1 << 20).expect("warmup");
    let mut ebv_us: u64 = 0;
    let mut ebv_bytes: u64 = 0;
    for block in &scenario.ebv_blocks[split..] {
        ebv_bytes += ebv_primitives::encode::Encodable::encoded_len(block) as u64;
        ebv_us += ebv
            .process_block(block)
            .expect("validates")
            .total()
            .as_micros() as u64;
    }

    // Scale the measured *per-input* costs to the paper's block
    // composition (~5000 inputs at heights 590k), so validation time sits
    // in the same regime relative to the inter-region link latencies as on
    // the paper's testbed — a few seconds per block for Bitcoin (Fig. 4a).
    const MAINNET_INPUTS_PER_BLOCK: u64 = 5000;
    let scale = |v: u64| v * MAINNET_INPUTS_PER_BLOCK / base_inputs.max(1);
    let (base_us, ebv_us) = (scale(base_us), scale(ebv_us));
    // Block sizes scale with the same composition factor; transmission
    // cost penalizes EBV's proof-carrying blocks fairly.
    let (base_block_bytes, ebv_block_bytes) = (scale(base_bytes), scale(ebv_bytes));

    println!(
        "\nscaled to {MAINNET_INPUTS_PER_BLOCK} inputs/block (measured over {} tail inputs):\n\
         \x20 validation: bitcoin {:.0} ms, ebv {:.0} ms\n\
         \x20 block size: bitcoin {:.2} MB, ebv {:.2} MB ({:.2}× — proof overhead)",
        base_inputs,
        base_us as f64 / 1000.0,
        ebv_us as f64 / 1000.0,
        base_block_bytes as f64 / 1e6,
        ebv_block_bytes as f64 / 1e6,
        ebv_block_bytes as f64 / base_block_bytes as f64,
    );

    // --- Phase 2: plug the measured means into the gossip simulator ----
    let bitcoin_sim = GossipSim::new(SimParams {
        validation: ValidationModel::baseline_from_mean_us(base_us),
        block_bytes: base_block_bytes,
        ..Default::default()
    });
    let ebv_sim = GossipSim::new(SimParams {
        validation: ValidationModel::ebv_from_mean_us(ebv_us),
        block_bytes: ebv_block_bytes,
        ..Default::default()
    });

    let b_runs = bitcoin_sim.run_many(args.seed, args.runs);
    let e_runs = ebv_sim.run_many(args.seed, args.runs);

    println!("\n## receive time (ms) of the i-th node, mean [min–max] over runs");
    let cols = [("node", 6), ("bitcoin_ms", 26), ("ebv_ms", 26)];
    table::header(&cols);
    let n_nodes = b_runs[0].receive_us.len();
    for i in 0..n_nodes {
        let b = rank_stats(&b_runs, i);
        let e = rank_stats(&e_runs, i);
        table::row(&[
            (format!("{}", i + 1), 6),
            (format!("{:.0} [{:.0}-{:.0}]", b.0, b.1, b.2), 26),
            (format!("{:.0} [{:.0}-{:.0}]", e.0, e.1, e.2), 26),
        ]);
    }

    let b_last: f64 =
        b_runs.iter().map(SimResult::last_receive_ms).sum::<f64>() / b_runs.len() as f64;
    let e_last: f64 =
        e_runs.iter().map(SimResult::last_receive_ms).sum::<f64>() / e_runs.len() as f64;
    println!(
        "\nfull-propagation time: bitcoin {:.0} ms, ebv {:.0} ms → reduction {}  (paper: 66.4%)",
        b_last,
        e_last,
        table::reduction_pct(b_last, e_last)
    );
    let b_spread = spread(&b_runs);
    let e_spread = spread(&e_runs);
    println!(
        "run-to-run spread of full propagation: bitcoin {b_spread:.0} ms, ebv {e_spread:.0} ms \
         (paper shape: EBV has lower variance)"
    );
}

/// (mean, min, max) of the receive time at sorted rank `i` across runs.
fn rank_stats(runs: &[SimResult], i: usize) -> (f64, f64, f64) {
    let at: Vec<f64> = runs.iter().map(|r| r.sorted_ms()[i]).collect();
    let mean = at.iter().sum::<f64>() / at.len() as f64;
    let min = at.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = at.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    (mean, min, max)
}

fn spread(runs: &[SimResult]) -> f64 {
    let last: Vec<f64> = runs.iter().map(SimResult::last_receive_ms).collect();
    let max = last.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let min = last.iter().cloned().fold(f64::INFINITY, f64::min);
    max - min
}
