//! Fig. 5 — Bitcoin IBD time by period, split DBO / SV / others.
//!
//! The paper divides IBD of 650k blocks into 13 periods of 50k: DBO time
//! rises with chain age, exceeds 50 % of period time in the last five
//! periods, and dips in the 500k–550k period thanks to UTXO
//! consolidation. The generated chain reproduces this with 13 periods and
//! a consolidation epoch placed in period 11.

use ebv_bench::{table, CommonArgs, Scenario};
use ebv_core::baseline_ibd;

fn main() {
    let args = CommonArgs::parse(CommonArgs::default());
    args.enable_telemetry();
    let n_periods = 13usize;
    let period_len = (args.blocks as usize / n_periods).max(1);
    println!(
        "# Fig. 5 — baseline IBD by period ({} blocks, {} per period, budget {} KiB, latency {} µs)",
        args.blocks,
        period_len,
        args.budget / 1024,
        args.latency_us
    );

    let scenario = Scenario::mainnet_like(&args);
    let mut node = scenario.baseline_node(&args);
    let periods =
        baseline_ibd(&mut node, &scenario.blocks[1..], period_len).expect("chain validates");

    let cols = [
        ("period", 8),
        ("heights", 12),
        ("dbo_s", 9),
        ("sv_s", 9),
        ("others_s", 9),
        ("total_s", 9),
        ("dbo_ratio", 10),
    ];
    table::header(&cols);
    for (i, p) in periods.iter().enumerate() {
        table::row(&[
            (format!("{}", i + 1), 8),
            (format!("{}-{}", p.start_height, p.end_height), 12),
            (table::secs(p.breakdown.dbo), 9),
            (table::secs(p.breakdown.sv), 9),
            (table::secs(p.breakdown.others), 9),
            (table::secs(p.breakdown.total()), 9),
            (format!("{:.1}%", p.breakdown.dbo_ratio() * 100.0), 10),
        ]);
    }
    println!(
        "\npaper shape: DBO time rises over periods and its ratio exceeds 50% late; the \
         consolidation epoch (period ~11) shrinks the UTXO set, flattening DBO in the periods after it"
    );
    args.write_metrics();
}
