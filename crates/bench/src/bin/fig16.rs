//! Fig. 16 — block-validation time: Bitcoin vs EBV, and EBV's EV/UV/SV
//! breakdown.
//!
//! The paper: under the same memory limit, EBV cuts per-block validation
//! by up to 93.5 % (block 590004); inside EBV, EV and UV are negligible
//! and SV dominates. This binary additionally reports the sequential
//! pipeline next to the parallel one (Fig. 16c), exposing what the
//! `parallel_ev`/`parallel_sv` knobs buy.

use ebv_bench::{table, CommonArgs, Scenario};
use ebv_core::{baseline_ibd, ebv_ibd, EbvConfig};

fn main() {
    let args = CommonArgs::parse(CommonArgs::default());
    args.enable_telemetry();
    println!(
        "# Fig. 16 — validation time comparison over the last 10 blocks \
         ({} blocks, budget {} KiB, latency {} µs, seed {}, ebv {:?})",
        args.blocks,
        args.budget / 1024,
        args.latency_us,
        args.seed,
        args.ebv_config()
    );

    let scenario = Scenario::mainnet_like(&args);
    let tail = 10usize.min(scenario.blocks.len() - 1);
    let split = scenario.blocks.len() - tail;

    // Baseline node, warmed to the split point.
    let mut baseline = scenario.baseline_node(&args);
    baseline_ibd(&mut baseline, &scenario.blocks[1..split], 1 << 20).expect("warmup");
    // EBV node with the configured pipeline, warmed identically; plus a
    // fully sequential twin for the Fig. 16c comparison.
    let mut ebv = scenario.ebv_node_with(args.ebv_config());
    ebv_ibd(&mut ebv, &scenario.ebv_blocks[1..split], 1 << 20).expect("warmup");
    let mut ebv_seq = scenario.ebv_node_with(EbvConfig::sequential());
    ebv_ibd(&mut ebv_seq, &scenario.ebv_blocks[1..split], 1 << 20).expect("warmup");

    println!("\n## Fig. 16a — per-block totals");
    let cols = [
        ("height", 8),
        ("inputs", 8),
        ("bitcoin_ms", 11),
        ("ebv_ms", 9),
        ("reduction", 10),
    ];
    table::header(&cols);
    let mut worst = (0.0f64, 0.0f64, 0.0f64); // (reduction, bitcoin, ebv)
    let mut ebv_breakdowns = Vec::new();
    let mut seq_breakdowns = Vec::new();
    let mut baseline_totals = Vec::new();
    for (base_block, ebv_block) in scenario.blocks[split..]
        .iter()
        .zip(&scenario.ebv_blocks[split..])
    {
        let bb = baseline
            .process_block(base_block)
            .expect("baseline validates");
        let eb = ebv.process_block(ebv_block).expect("ebv validates");
        let sb = ebv_seq
            .process_block(ebv_block)
            .expect("sequential ebv validates");
        ebv_breakdowns.push((ebv.tip_height(), ebv_block.input_count(), eb));
        seq_breakdowns.push(sb);
        baseline_totals.push(bb.total());
        let b_ms = bb.total().as_secs_f64() * 1000.0;
        let e_ms = eb.total().as_secs_f64() * 1000.0;
        let red = (1.0 - e_ms / b_ms) * 100.0;
        if red > worst.0 {
            worst = (red, b_ms, e_ms);
        }
        table::row(&[
            (format!("{}", baseline.tip_height()), 8),
            (format!("{}", base_block.input_count()), 8),
            (format!("{b_ms:.1}"), 11),
            (format!("{e_ms:.1}"), 9),
            (format!("{red:.1}%"), 10),
        ]);
    }
    println!(
        "\nbest per-block reduction: {:.1}% ({:.1} ms → {:.1} ms); paper: 93.5% on its worst block",
        worst.0, worst.1, worst.2
    );

    println!("\n## Fig. 16b — EBV validation-time breakdown");
    let cols = [
        ("height", 8),
        ("inputs", 8),
        ("ev_ms", 9),
        ("uv_ms", 9),
        ("sv_ms", 9),
        ("commit_ms", 10),
        ("others_ms", 10),
    ];
    table::header(&cols);
    for (height, inputs, b) in &ebv_breakdowns {
        table::row(&[
            (format!("{height}"), 8),
            (format!("{inputs}"), 8),
            (table::ms(b.ev), 9),
            (table::ms(b.uv), 9),
            (table::ms(b.sv), 9),
            (table::ms(b.commit), 10),
            (table::ms(b.others), 10),
        ]);
    }
    println!("\npaper shape: EV and UV take little time; SV dominates EBV validation");

    println!("\n## Fig. 16c — parallel vs sequential EBV pipeline");
    let cols = [
        ("height", 8),
        ("par_ms", 9),
        ("seq_ms", 9),
        ("par_ev_ms", 10),
        ("seq_ev_ms", 10),
        ("par_sv_ms", 10),
        ("seq_sv_ms", 10),
    ];
    table::header(&cols);
    for ((height, _, pb), sb) in ebv_breakdowns.iter().zip(&seq_breakdowns) {
        table::row(&[
            (format!("{height}"), 8),
            (table::ms(pb.total()), 9),
            (table::ms(sb.total()), 9),
            (table::ms(pb.ev), 10),
            (table::ms(sb.ev), 10),
            (table::ms(pb.sv), 10),
            (table::ms(sb.sv), 10),
        ]);
    }
    println!(
        "\nboth pipelines return identical accept/reject decisions; only the wall time differs"
    );

    if let Some(path) = &args.json {
        // Machine-readable SV record: per-block phase times in nanoseconds
        // plus the aggregate signature-verification throughput (the tail
        // blocks are single-input-per-tx P2PKH spends, so inputs ≈
        // signature checks).
        let mut blocks = String::new();
        let mut sv_ns_total = 0u128;
        let mut inputs_total = 0usize;
        for (((height, inputs, b), sb), base_total) in ebv_breakdowns
            .iter()
            .zip(&seq_breakdowns)
            .zip(&baseline_totals)
        {
            sv_ns_total += b.sv.as_nanos();
            inputs_total += inputs;
            if !blocks.is_empty() {
                blocks.push(',');
            }
            blocks.push_str(&format!(
                "\n    {{\"height\": {height}, \"inputs\": {inputs}, \
                 \"ev_ns\": {}, \"uv_ns\": {}, \"sv_ns\": {}, \
                 \"commit_ns\": {}, \"others_ns\": {}, \"total_ns\": {}, \
                 \"seq_total_ns\": {}, \"baseline_total_ns\": {}}}",
                b.ev.as_nanos(),
                b.uv.as_nanos(),
                b.sv.as_nanos(),
                b.commit.as_nanos(),
                b.others.as_nanos(),
                b.total().as_nanos(),
                sb.total().as_nanos(),
                base_total.as_nanos(),
            ));
        }
        let verifies_per_sec = if sv_ns_total > 0 {
            inputs_total as f64 / (sv_ns_total as f64 / 1e9)
        } else {
            0.0
        };
        let telemetry = ebv_telemetry::json_snapshot(&ebv_telemetry::global().snapshot());
        let json = format!(
            "{{\n  \"figure\": \"fig16\",\n  \"seed\": {},\n  \"blocks\": [{blocks}\n  ],\n  \
             \"sv_ns_total\": {sv_ns_total},\n  \"inputs_total\": {inputs_total},\n  \
             \"verifies_per_sec\": {verifies_per_sec:.1},\n  \"telemetry\": {telemetry}\n}}\n",
            args.seed
        );
        std::fs::write(path, json).expect("write json");
        println!("\nwrote {path}");
    }
    args.write_metrics();
}
