//! Fig. 16 — block-validation time: Bitcoin vs EBV, and EBV's EV/UV/SV
//! breakdown.
//!
//! The paper: under the same memory limit, EBV cuts per-block validation
//! by up to 93.5 % (block 590004); inside EBV, EV and UV are negligible
//! and SV dominates.

use ebv_bench::{table, CommonArgs, Scenario};
use ebv_core::{baseline_ibd, ebv_ibd};

fn main() {
    let args = CommonArgs::parse(CommonArgs::default());
    println!(
        "# Fig. 16 — validation time comparison over the last 10 blocks \
         ({} blocks, budget {} KiB, latency {} µs, seed {})",
        args.blocks,
        args.budget / 1024,
        args.latency_us,
        args.seed
    );

    let scenario = Scenario::mainnet_like(&args);
    let tail = 10usize.min(scenario.blocks.len() - 1);
    let split = scenario.blocks.len() - tail;

    // Baseline node, warmed to the split point.
    let mut baseline = scenario.baseline_node(&args);
    baseline_ibd(&mut baseline, &scenario.blocks[1..split], 1 << 20).expect("warmup");
    // EBV node, warmed identically.
    let mut ebv = scenario.ebv_node();
    ebv_ibd(&mut ebv, &scenario.ebv_blocks[1..split], 1 << 20).expect("warmup");

    println!("\n## Fig. 16a — per-block totals");
    let cols =
        [("height", 8), ("inputs", 8), ("bitcoin_ms", 11), ("ebv_ms", 9), ("reduction", 10)];
    table::header(&cols);
    let mut worst = (0.0f64, 0.0f64, 0.0f64); // (reduction, bitcoin, ebv)
    let mut ebv_breakdowns = Vec::new();
    for (base_block, ebv_block) in scenario.blocks[split..].iter().zip(&scenario.ebv_blocks[split..]) {
        let bb = baseline.process_block(base_block).expect("baseline validates");
        let eb = ebv.process_block(ebv_block).expect("ebv validates");
        ebv_breakdowns.push((ebv.tip_height(), ebv_block.input_count(), eb));
        let b_ms = bb.total().as_secs_f64() * 1000.0;
        let e_ms = eb.total().as_secs_f64() * 1000.0;
        let red = (1.0 - e_ms / b_ms) * 100.0;
        if red > worst.0 {
            worst = (red, b_ms, e_ms);
        }
        table::row(&[
            (format!("{}", baseline.tip_height()), 8),
            (format!("{}", base_block.input_count()), 8),
            (format!("{b_ms:.1}"), 11),
            (format!("{e_ms:.1}"), 9),
            (format!("{red:.1}%"), 10),
        ]);
    }
    println!(
        "\nbest per-block reduction: {:.1}% ({:.1} ms → {:.1} ms); paper: 93.5% on its worst block",
        worst.0, worst.1, worst.2
    );

    println!("\n## Fig. 16b — EBV validation-time breakdown");
    let cols = [
        ("height", 8),
        ("inputs", 8),
        ("ev_ms", 9),
        ("uv_ms", 9),
        ("sv_ms", 9),
        ("others_ms", 10),
    ];
    table::header(&cols);
    for (height, inputs, b) in &ebv_breakdowns {
        table::row(&[
            (format!("{height}"), 8),
            (format!("{inputs}"), 8),
            (table::ms(b.ev), 9),
            (table::ms(b.uv), 9),
            (table::ms(b.sv), 9),
            (table::ms(b.others), 10),
        ]);
    }
    println!("\npaper shape: EV and UV take little time; SV dominates EBV validation");
}
