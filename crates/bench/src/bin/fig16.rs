//! Fig. 16 — block-validation time: Bitcoin vs EBV, and EBV's EV/UV/SV
//! breakdown.
//!
//! The paper: under the same memory limit, EBV cuts per-block validation
//! by up to 93.5 % (block 590004); inside EBV, EV and UV are negligible
//! and SV dominates. This binary additionally reports the sequential
//! pipeline next to the parallel one (Fig. 16c), exposing what the
//! `parallel_ev`/`parallel_sv` knobs buy.

use std::time::Duration;

use ebv_bench::{table, CommonArgs, Scenario};
use ebv_core::{baseline_ibd, ebv_ibd, EbvConfig, EbvNode};

fn main() {
    let args = CommonArgs::parse(CommonArgs::default());
    args.enable_telemetry();
    println!(
        "# Fig. 16 — validation time comparison over the last 10 blocks \
         ({} blocks, budget {} KiB, latency {} µs, seed {}, ebv {:?})",
        args.blocks,
        args.budget / 1024,
        args.latency_us,
        args.seed,
        args.ebv_config()
    );

    let scenario = Scenario::mainnet_like(&args);
    let tail = 10usize.min(scenario.blocks.len() - 1);
    let split = scenario.blocks.len() - tail;

    // Baseline node, warmed to the split point.
    let mut baseline = scenario.baseline_node(&args);
    baseline_ibd(&mut baseline, &scenario.blocks[1..split], 1 << 20).expect("warmup");
    // EBV node with the configured pipeline, warmed identically; plus a
    // fully sequential twin for the Fig. 16c comparison.
    let mut ebv = scenario.ebv_node_with(args.ebv_config());
    ebv_ibd(&mut ebv, &scenario.ebv_blocks[1..split], 1 << 20).expect("warmup");
    let mut ebv_seq = scenario.ebv_node_with(EbvConfig::sequential());
    ebv_ibd(&mut ebv_seq, &scenario.ebv_blocks[1..split], 1 << 20).expect("warmup");
    // Snapshot the warmed state once; the Fig. 16d configurations below
    // each boot from it instead of replaying the warmup chain again.
    let snapshot = ebv.snapshot();
    let snap_headers: Vec<_> = (0..=ebv.tip_height())
        .map(|h| *ebv.header_at(h).expect("warmed chain"))
        .collect();

    println!("\n## Fig. 16a — per-block totals");
    let cols = [
        ("height", 8),
        ("inputs", 8),
        ("bitcoin_ms", 11),
        ("ebv_ms", 9),
        ("reduction", 10),
    ];
    table::header(&cols);
    let mut worst = (0.0f64, 0.0f64, 0.0f64); // (reduction, bitcoin, ebv)
    let mut ebv_breakdowns = Vec::new();
    let mut seq_breakdowns = Vec::new();
    let mut baseline_totals = Vec::new();
    for (base_block, ebv_block) in scenario.blocks[split..]
        .iter()
        .zip(&scenario.ebv_blocks[split..])
    {
        let bb = baseline
            .process_block(base_block)
            .expect("baseline validates");
        let eb = ebv.process_block(ebv_block).expect("ebv validates");
        let sb = ebv_seq
            .process_block(ebv_block)
            .expect("sequential ebv validates");
        ebv_breakdowns.push((ebv.tip_height(), ebv_block.input_count(), eb));
        seq_breakdowns.push(sb);
        baseline_totals.push(bb.total());
        let b_ms = bb.total().as_secs_f64() * 1000.0;
        let e_ms = eb.total().as_secs_f64() * 1000.0;
        let red = (1.0 - e_ms / b_ms) * 100.0;
        if red > worst.0 {
            worst = (red, b_ms, e_ms);
        }
        table::row(&[
            (format!("{}", baseline.tip_height()), 8),
            (format!("{}", base_block.input_count()), 8),
            (format!("{b_ms:.1}"), 11),
            (format!("{e_ms:.1}"), 9),
            (format!("{red:.1}%"), 10),
        ]);
    }
    println!(
        "\nbest per-block reduction: {:.1}% ({:.1} ms → {:.1} ms); paper: 93.5% on its worst block",
        worst.0, worst.1, worst.2
    );

    println!("\n## Fig. 16b — EBV validation-time breakdown");
    let cols = [
        ("height", 8),
        ("inputs", 8),
        ("ev_ms", 9),
        ("uv_ms", 9),
        ("sv_ms", 9),
        ("commit_ms", 10),
        ("others_ms", 10),
    ];
    table::header(&cols);
    for (height, inputs, b) in &ebv_breakdowns {
        table::row(&[
            (format!("{height}"), 8),
            (format!("{inputs}"), 8),
            (table::ms(b.ev), 9),
            (table::ms(b.uv), 9),
            (table::ms(b.sv), 9),
            (table::ms(b.commit), 10),
            (table::ms(b.others), 10),
        ]);
    }
    println!("\npaper shape: EV and UV take little time; SV dominates EBV validation");

    println!("\n## Fig. 16c — parallel vs sequential EBV pipeline");
    let cols = [
        ("height", 8),
        ("par_ms", 9),
        ("seq_ms", 9),
        ("par_ev_ms", 10),
        ("seq_ev_ms", 10),
        ("par_sv_ms", 10),
        ("seq_sv_ms", 10),
    ];
    table::header(&cols);
    for ((height, _, pb), sb) in ebv_breakdowns.iter().zip(&seq_breakdowns) {
        table::row(&[
            (format!("{height}"), 8),
            (table::ms(pb.total()), 9),
            (table::ms(sb.total()), 9),
            (table::ms(pb.ev), 10),
            (table::ms(sb.ev), 10),
            (table::ms(pb.sv), 10),
            (table::ms(sb.sv), 10),
        ]);
    }
    println!(
        "\nboth pipelines return identical accept/reject decisions; only the wall time differs"
    );

    // ---- Fig. 16d — batched vs individual ECDSA settlement -------------
    // Each configuration boots a fresh node from the warmed snapshot and
    // replays the same tail, so the only variable is the SV settlement
    // strategy (and, when sweeping, the worker count).
    println!("\n## Fig. 16d — batched vs individual ECDSA settlement over the tail");
    let replay_tail = |batch: bool, workers: Option<usize>| -> Vec<(Duration, Duration)> {
        let config = EbvConfig {
            batch_verify: batch,
            workers,
            parallel_ev: args.parallel_ev,
            parallel_sv: args.parallel_sv,
            // Node-lifetime pubkey cache on both arms: the 128-key pool
            // re-signs every block, so per-block caches spend most of SV
            // rebuilding odd-multiple tables, drowning the settlement
            // difference this figure isolates.
            persistent_pubkey_cache: true,
            ..EbvConfig::default()
        };
        let mut node = EbvNode::from_snapshot(&snapshot, snap_headers.clone(), config)
            .expect("snapshot boots");
        scenario.ebv_blocks[split..]
            .iter()
            .map(|block| {
                let b = node.process_block(block).expect("tail validates");
                (b.sv, b.total())
            })
            .collect::<Vec<_>>()
    };
    // Interleave the two arms and keep each arm's per-block minima: CPU
    // steal on a shared single-core host spikes on sub-second timescales,
    // so back-to-back arm runs measure the drift, not the settlement
    // strategy. The per-block minimum over interleaved repetitions is the
    // standard noise-floor estimator for a deterministic workload.
    const TAIL_REPS: usize = 5;
    let run_pair = |workers: Option<usize>| -> ((Duration, Duration), (Duration, Duration)) {
        let floor = |acc: &mut Vec<(Duration, Duration)>, rep: Vec<(Duration, Duration)>| {
            if acc.is_empty() {
                *acc = rep;
            } else {
                for (a, r) in acc.iter_mut().zip(rep) {
                    a.0 = a.0.min(r.0);
                    a.1 = a.1.min(r.1);
                }
            }
        };
        let sum = |acc: &[(Duration, Duration)]| -> (Duration, Duration) {
            acc.iter()
                .fold((Duration::ZERO, Duration::ZERO), |(sv, total), b| {
                    (sv + b.0, total + b.1)
                })
        };
        let mut off = Vec::new();
        let mut on = Vec::new();
        for _ in 0..TAIL_REPS {
            floor(&mut off, replay_tail(false, workers));
            floor(&mut on, replay_tail(true, workers));
        }
        (sum(&off), sum(&on))
    };
    let mut worker_settings: Vec<Option<usize>> = vec![args.workers];
    if let Some(sweep) = &args.sweep_workers {
        worker_settings.extend(sweep.iter().map(|&w| Some(w)));
    }
    let cols = [
        ("workers", 8),
        ("indiv_sv_ms", 12),
        ("batch_sv_ms", 12),
        ("sv_speedup", 11),
        ("indiv_tot_ms", 13),
        ("batch_tot_ms", 13),
    ];
    table::header(&cols);
    let mut batch_rows = Vec::new();
    for &workers in &worker_settings {
        let ((off_sv, off_total), (on_sv, on_total)) = run_pair(workers);
        let speedup = off_sv.as_secs_f64() / on_sv.as_secs_f64().max(1e-12);
        table::row(&[
            (workers.map_or("default".to_string(), |w| w.to_string()), 8),
            (table::ms(off_sv), 12),
            (table::ms(on_sv), 12),
            (format!("{speedup:.2}x"), 11),
            (table::ms(off_total), 13),
            (table::ms(on_total), 13),
        ]);
        batch_rows.push((workers, off_sv, on_sv, speedup, off_total, on_total));
    }
    println!(
        "\nbatch settlement certifies a whole chunk's signatures with one shared \
         multi-scalar ladder; verdicts are identical either way"
    );

    if let Some(path) = &args.json {
        // Machine-readable SV record: per-block phase times in nanoseconds
        // plus the aggregate signature-verification throughput (the tail
        // blocks are single-input-per-tx P2PKH spends, so inputs ≈
        // signature checks).
        let mut blocks = String::new();
        let mut sv_ns_total = 0u128;
        let mut inputs_total = 0usize;
        for (((height, inputs, b), sb), base_total) in ebv_breakdowns
            .iter()
            .zip(&seq_breakdowns)
            .zip(&baseline_totals)
        {
            sv_ns_total += b.sv.as_nanos();
            inputs_total += inputs;
            if !blocks.is_empty() {
                blocks.push(',');
            }
            blocks.push_str(&format!(
                "\n    {{\"height\": {height}, \"inputs\": {inputs}, \
                 \"ev_ns\": {}, \"uv_ns\": {}, \"sv_ns\": {}, \
                 \"commit_ns\": {}, \"others_ns\": {}, \"total_ns\": {}, \
                 \"seq_total_ns\": {}, \"baseline_total_ns\": {}}}",
                b.ev.as_nanos(),
                b.uv.as_nanos(),
                b.sv.as_nanos(),
                b.commit.as_nanos(),
                b.others.as_nanos(),
                b.total().as_nanos(),
                sb.total().as_nanos(),
                base_total.as_nanos(),
            ));
        }
        let verifies_per_sec = if sv_ns_total > 0 {
            inputs_total as f64 / (sv_ns_total as f64 / 1e9)
        } else {
            0.0
        };
        let mut batch_json = String::new();
        for (workers, off_sv, on_sv, speedup, off_total, on_total) in &batch_rows {
            if !batch_json.is_empty() {
                batch_json.push(',');
            }
            batch_json.push_str(&format!(
                "\n    {{\"workers\": {}, \"individual_sv_ns\": {}, \"batch_sv_ns\": {}, \
                 \"sv_speedup\": {speedup:.3}, \"individual_total_ns\": {}, \
                 \"batch_total_ns\": {}}}",
                workers.map_or("null".to_string(), |w| w.to_string()),
                off_sv.as_nanos(),
                on_sv.as_nanos(),
                off_total.as_nanos(),
                on_total.as_nanos(),
            ));
        }
        // The first row is always the default-workers configuration: the
        // acceptance gate for the batched path reads this field.
        let default_speedup = batch_rows[0].3;
        let telemetry = ebv_telemetry::json_snapshot(&ebv_telemetry::global().snapshot());
        let json = format!(
            "{{\n  \"figure\": \"fig16\",\n  \"seed\": {},\n  \"blocks\": [{blocks}\n  ],\n  \
             \"sv_ns_total\": {sv_ns_total},\n  \"inputs_total\": {inputs_total},\n  \
             \"verifies_per_sec\": {verifies_per_sec:.1},\n  \
             \"batch\": [{batch_json}\n  ],\n  \
             \"batch_sv_speedup_default_workers\": {default_speedup:.3},\n  \
             \"telemetry\": {telemetry}\n}}\n",
            args.seed
        );
        std::fs::write(path, json).expect("write json");
        println!("\nwrote {path}");
    }
    args.write_metrics();
}
