//! Fig. 4 — Bitcoin block-validation time and its DBO / SV / others split.
//!
//! The paper validates ten mainnet blocks (590000–590009) on a
//! memory-limited Btcd node: DBO dominates (>83 % on the worst block), and
//! 4(b) shows SV time tracking the input count while DBO time has
//! cache-state outliers. Here: IBD up to the last ten blocks of the
//! generated chain under the configured cache budget + disk latency, then
//! per-block timing of those ten.

use ebv_bench::{table, CommonArgs, Scenario};
use ebv_core::baseline_ibd;

fn main() {
    let args = CommonArgs::parse(CommonArgs::default());
    println!(
        "# Fig. 4 — baseline validation breakdown over the last 10 blocks \
         ({} blocks, budget {} KiB, disk latency {} µs, seed {})",
        args.blocks,
        args.budget / 1024,
        args.latency_us,
        args.seed
    );

    let scenario = Scenario::mainnet_like(&args);
    let mut node = scenario.baseline_node(&args);

    let tail = 10usize.min(scenario.blocks.len() - 1);
    let split = scenario.blocks.len() - tail;
    baseline_ibd(&mut node, &scenario.blocks[1..split], 1 << 20).expect("warmup IBD validates");

    println!("\n## Fig. 4a/4b rows (one per block)");
    let cols = [
        ("height", 8),
        ("inputs", 8),
        ("dbo_ms", 10),
        ("sv_ms", 10),
        ("others_ms", 10),
        ("total_ms", 10),
        ("dbo_share", 10),
        ("cache_miss", 10),
    ];
    table::header(&cols);
    for block in &scenario.blocks[split..] {
        let misses_before = node.utxos().stats().cache_misses;
        let b = node.process_block(block).expect("tail block validates");
        let misses = node.utxos().stats().cache_misses - misses_before;
        table::row(&[
            (format!("{}", node.tip_height()), 8),
            (format!("{}", block.input_count()), 8),
            (table::ms(b.dbo), 10),
            (table::ms(b.sv), 10),
            (table::ms(b.others), 10),
            (table::ms(b.total()), 10),
            (format!("{:.1}%", b.dbo_ratio() * 100.0), 10),
            (format!("{misses}"), 10),
        ]);
    }
    let st = node.utxos().stats();
    println!(
        "\ncache hit ratio over run: {:.1}%  (fetches {}, misses {})",
        st.hit_ratio() * 100.0,
        st.fetches,
        st.cache_misses
    );
    println!("paper shape: DBO dominates total time; DBO outliers are database-state, not input-count, effects");
}
