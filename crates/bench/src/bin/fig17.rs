//! Fig. 17 — IBD time: Bitcoin vs EBV, cumulative by period, over
//! multiple runs; plus EBV's per-period EV/UV/SV breakdown.
//!
//! The paper: EBV cuts total IBD time by 38.5 % at block 650k, the gap
//! widening with chain length; run-to-run variation is small; inside EBV,
//! EV+UV are a tiny fraction and SV dominates.

use ebv_bench::{table, CommonArgs, Scenario};
use ebv_core::{baseline_ibd, build_checkpoints, ebv_ibd, parallel_ibd, EbvBreakdown};
use std::time::Duration;

fn main() {
    let args = CommonArgs::parse(CommonArgs::default());
    args.enable_telemetry();
    let n_periods = 13usize;
    let period_len = (args.blocks as usize / n_periods).max(1);
    println!(
        "# Fig. 17 — IBD comparison ({} blocks, {} per period, budget {} KiB, latency {} µs, {} runs)",
        args.blocks,
        period_len,
        args.budget / 1024,
        args.latency_us,
        args.runs
    );

    // Per run: cumulative wall time at each period boundary for both
    // systems. The chain differs per seed (like separate experiment runs).
    let mut base_cum: Vec<Vec<f64>> = Vec::new();
    let mut ebv_cum: Vec<Vec<f64>> = Vec::new();
    let mut ebv_break = EbvBreakdown::default();
    let mut ebv_periods_acc: Vec<EbvBreakdown> = Vec::new();
    let mut inputs_total = 0usize;
    // Snapshot-parallel comparison (`--parallel-ibd N`): per-run
    // (sequential, parallel) wall seconds and the chosen interval length.
    let mut par_runs: Vec<(f64, f64)> = Vec::new();
    let mut par_setup: Option<(usize, usize)> = None;
    let mut timeseries = args.timeseries();

    for run in 0..args.runs {
        let run_args = CommonArgs {
            seed: args.seed + run as u64,
            ..args.clone()
        };
        let scenario = Scenario::mainnet_like(&run_args);

        let mut baseline = scenario.baseline_node(&run_args);
        let periods = baseline_ibd(&mut baseline, &scenario.blocks[1..], period_len).expect("ibd");
        base_cum.push(cumulative(periods.iter().map(|p| p.wall)));
        if let Some(ts) = &mut timeseries {
            ts.tick(&format!("run{run}.baseline"));
        }

        let mut ebv = scenario.ebv_node_with(run_args.ebv_config());
        inputs_total += scenario.ebv_blocks[1..]
            .iter()
            .map(|b| b.input_count())
            .sum::<usize>();
        let periods = ebv_ibd(&mut ebv, &scenario.ebv_blocks[1..], period_len).expect("ibd");
        ebv_cum.push(cumulative(periods.iter().map(|p| p.wall)));
        if ebv_periods_acc.is_empty() {
            ebv_periods_acc = vec![EbvBreakdown::default(); periods.len()];
        }
        for (acc, p) in ebv_periods_acc.iter_mut().zip(&periods) {
            *acc += p.breakdown;
        }
        ebv_break += ebv.cumulative_breakdown();
        if let Some(ts) = &mut timeseries {
            ts.tick(&format!("run{run}.ebv"));
        }

        if let Some(workers) = args.parallel_ibd {
            // Two intervals per worker keeps the claim queue busy when
            // interval costs are uneven.
            let every = (run_args.blocks as usize)
                .div_ceil(2 * workers.max(1))
                .max(1);
            let checkpoints =
                build_checkpoints(&scenario.ebv_blocks[0], &scenario.ebv_blocks[1..], every)
                    .expect("generated chains are structurally consistent");
            let par = parallel_ibd(
                &scenario.ebv_blocks[0],
                &scenario.ebv_blocks[1..],
                &checkpoints,
                workers,
                run_args.ebv_config(),
            )
            .expect("valid chain replays in parallel");
            assert_eq!(par.stitch_mismatch, None, "honest checkpoints must stitch");
            assert_eq!(
                par.node.tip_hash(),
                ebv.tip_hash(),
                "parallel IBD must reach the sequential tip"
            );
            assert_eq!(
                par.node.state_digest(),
                ebv.state_digest(),
                "parallel IBD must reach the sequential state"
            );
            let seq_s = *ebv_cum
                .last()
                .and_then(|r| r.last())
                .expect("at least one period");
            par_runs.push((seq_s, par.wall.as_secs_f64()));
            par_setup = Some((workers, every));
            if let Some(ts) = &mut timeseries {
                ts.tick(&format!("run{run}.parallel"));
            }
        }
    }
    if let Some(ts) = timeseries.take() {
        ts.finish().expect("timeseries");
        println!("wrote {}", args.timeseries_out.as_deref().unwrap_or(""));
    }

    println!(
        "\n## Fig. 17a — cumulative IBD seconds at each period boundary (mean [min–max] over runs)"
    );
    let cols = [
        ("period", 8),
        ("bitcoin_s", 24),
        ("ebv_s", 24),
        ("reduction", 10),
    ];
    table::header(&cols);
    let n_rows = base_cum[0].len();
    let mut final_red = 0.0;
    for i in 0..n_rows {
        let b = stats(base_cum.iter().map(|r| r[i]));
        let e = stats(ebv_cum.iter().map(|r| r[i]));
        final_red = (1.0 - e.0 / b.0) * 100.0;
        table::row(&[
            (format!("{}", i + 1), 8),
            (format!("{:.2} [{:.2}-{:.2}]", b.0, b.1, b.2), 24),
            (format!("{:.2} [{:.2}-{:.2}]", e.0, e.1, e.2), 24),
            (format!("{final_red:.1}%"), 10),
        ]);
    }
    println!("\nfinal IBD reduction: {final_red:.1}%  (paper: 38.5% at block 650k)");

    println!("\n## Fig. 17b — EBV IBD breakdown per period (summed over runs)");
    let cols = [
        ("period", 8),
        ("ev_s", 9),
        ("uv_s", 9),
        ("sv_s", 9),
        ("commit_s", 9),
        ("others_s", 10),
    ];
    table::header(&cols);
    for (i, b) in ebv_periods_acc.iter().enumerate() {
        table::row(&[
            (format!("{}", i + 1), 8),
            (table::secs(b.ev), 9),
            (table::secs(b.uv), 9),
            (table::secs(b.sv), 9),
            (table::secs(b.commit), 9),
            (table::secs(b.others), 10),
        ]);
    }
    let total = ebv_break.total().as_secs_f64();
    if total > 0.0 {
        println!(
            "\nEV+UV share of EBV IBD: {:.1}%  (paper shape: a very small fraction; SV dominates)",
            (ebv_break.ev + ebv_break.uv).as_secs_f64() / total * 100.0
        );
    }

    if let Some((workers, every)) = par_setup {
        println!(
            "\n## Fig. 17c — sequential vs snapshot-parallel EBV IBD \
             ({workers} workers, checkpoint every {every} blocks)"
        );
        let cols = [
            ("run", 6),
            ("seq_s", 10),
            ("parallel_s", 11),
            ("speedup", 9),
        ];
        table::header(&cols);
        for (i, (seq_s, par_s)) in par_runs.iter().enumerate() {
            table::row(&[
                (format!("{}", i + 1), 6),
                (format!("{seq_s:.2}"), 10),
                (format!("{par_s:.2}"), 11),
                (format!("{:.2}x", seq_s / par_s), 9),
            ]);
        }
        let (seq_mean, par_mean) = (
            stats(par_runs.iter().map(|r| r.0)).0,
            stats(par_runs.iter().map(|r| r.1)).0,
        );
        println!(
            "\nmean speedup: {:.2}x  (every interval's final state stitched \
             byte-identical to its successor's checkpoint)",
            seq_mean / par_mean
        );
    }

    if let Some(path) = &args.json {
        // Machine-readable SV record: per-period phase times (summed over
        // runs) in nanoseconds plus aggregate verification throughput.
        let mut periods = String::new();
        for (i, b) in ebv_periods_acc.iter().enumerate() {
            if !periods.is_empty() {
                periods.push(',');
            }
            periods.push_str(&format!(
                "\n    {{\"period\": {}, \"ev_ns\": {}, \"uv_ns\": {}, \"sv_ns\": {}, \
                 \"commit_ns\": {}, \"others_ns\": {}}}",
                i + 1,
                b.ev.as_nanos(),
                b.uv.as_nanos(),
                b.sv.as_nanos(),
                b.commit.as_nanos(),
                b.others.as_nanos(),
            ));
        }
        let sv_ns_total = ebv_break.sv.as_nanos();
        let verifies_per_sec = if sv_ns_total > 0 {
            inputs_total as f64 / (sv_ns_total as f64 / 1e9)
        } else {
            0.0
        };
        let parallel = match par_setup {
            Some((workers, every)) => {
                let runs: Vec<String> = par_runs
                    .iter()
                    .enumerate()
                    .map(|(i, (seq_s, par_s))| {
                        format!(
                            "\n      {{\"run\": {}, \"seq_wall_s\": {seq_s:.4}, \
                             \"parallel_wall_s\": {par_s:.4}}}",
                            i + 1
                        )
                    })
                    .collect();
                let seq_mean = stats(par_runs.iter().map(|r| r.0)).0;
                let par_mean = stats(par_runs.iter().map(|r| r.1)).0;
                format!(
                    ",\n  \"parallel_ibd\": {{\n    \"workers\": {workers}, \
                     \"checkpoint_every\": {every},\n    \"seq_wall_s_mean\": {seq_mean:.4}, \
                     \"parallel_wall_s_mean\": {par_mean:.4}, \
                     \"speedup\": {:.4},\n    \"runs\": [{}\n    ]\n  }}",
                    seq_mean / par_mean,
                    runs.join(",")
                )
            }
            None => String::new(),
        };
        let telemetry = ebv_telemetry::json_snapshot(&ebv_telemetry::global().snapshot());
        let json = format!(
            "{{\n  \"figure\": \"fig17\",\n  \"runs\": {},\n  \"periods\": [{periods}\n  ],\n  \
             \"sv_ns_total\": {sv_ns_total},\n  \"inputs_total\": {inputs_total},\n  \
             \"verifies_per_sec\": {verifies_per_sec:.1}{parallel},\n  \"telemetry\": {telemetry}\n}}\n",
            args.runs
        );
        std::fs::write(path, json).expect("write json");
        println!("\nwrote {path}");
    }
    args.write_metrics();
}

fn cumulative(walls: impl Iterator<Item = Duration>) -> Vec<f64> {
    let mut acc = 0.0;
    walls
        .map(|w| {
            acc += w.as_secs_f64();
            acc
        })
        .collect()
}

/// (mean, min, max)
fn stats(values: impl Iterator<Item = f64>) -> (f64, f64, f64) {
    let v: Vec<f64> = values.collect();
    let mean = v.iter().sum::<f64>() / v.len() as f64;
    let min = v.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = v.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    (mean, min, max)
}
