//! Dependency-chained latency probe for the field/scalar substrate.
//!
//! Criterion's `ecdsa/*` benches report end-to-end cost; when those move,
//! this probe answers *which primitive* moved. Each loop feeds the previous
//! result into the next operation, so it measures serial latency — the
//! regime the doubling ladder actually runs in — rather than throughput.
//! Run with `cargo run --release -p ebv-bench --bin fe_probe`.

use std::time::Instant;

use ebv_primitives::ec::field::Fe;
use ebv_primitives::ec::scalar::Scalar;
use ebv_primitives::hash::sha256;

fn fe_from_hash(tag: &[u8]) -> Fe {
    let mut b = sha256(tag);
    b[0] &= 0x7f; // keep it below p
    Fe::from_be_bytes(&b).expect("masked hash is a valid field element")
}

fn main() {
    let a = fe_from_hash(b"a");
    let b = fe_from_hash(b"b");
    const N: u32 = 3_000_000;

    // The `is_zero`/`acc` prints keep the chains observable so the loops
    // cannot be optimized away.
    let t = Instant::now();
    let mut x = a;
    for _ in 0..N {
        x = x.mul(&b);
    }
    println!(
        "fe mul:     {:>7.1} ns  (zero: {:?})",
        t.elapsed().as_nanos() as f64 / N as f64,
        x.is_zero()
    );

    let t = Instant::now();
    let mut x = a;
    for _ in 0..N {
        x = x.square();
    }
    println!(
        "fe sqr:     {:>7.1} ns  (zero: {:?})",
        t.elapsed().as_nanos() as f64 / N as f64,
        x.is_zero()
    );

    let t = Instant::now();
    let mut x = a;
    for _ in 0..N {
        x = x.add(&b);
    }
    println!(
        "fe add:     {:>7.1} ns  (zero: {:?})",
        t.elapsed().as_nanos() as f64 / N as f64,
        x.is_zero()
    );

    const INVS: u32 = 20_000;
    let t = Instant::now();
    let mut acc = 0u64;
    let s = Scalar::from_be_bytes_reduced(&sha256(b"s"));
    for _ in 0..INVS {
        acc ^= s.invert().expect("nonzero").0.limbs[0];
    }
    println!(
        "scalar inv: {:>7.1} ns  (acc: {acc:#x})",
        t.elapsed().as_nanos() as f64 / INVS as f64
    );
}
