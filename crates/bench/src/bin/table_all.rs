//! Run every figure binary's logic at smoke scale — a one-shot check that
//! the whole harness works end to end. For full-scale runs use the
//! individual `figNN` binaries (see DESIGN.md §3 for the index).

use std::process::Command;

fn main() {
    let figs = [
        "fig01", "fig04", "fig05", "fig14", "fig15", "fig16", "fig17", "fig18", "ablation",
        "overhead",
    ];
    // Smoke-scale knobs keep the whole suite to a few minutes on a laptop
    // core: short chain, small budget, light latency, 2 runs.
    let flags: &[&str] = &[
        "--blocks",
        "130",
        "--budget",
        "16384",
        "--latency-us",
        "200",
        "--runs",
        "2",
    ];
    let exe_dir = std::env::current_exe()
        .expect("current exe path")
        .parent()
        .expect("exe has a directory")
        .to_path_buf();

    for fig in figs {
        println!("\n=============================== {fig} ===============================");
        let status = Command::new(exe_dir.join(fig))
            .args(flags)
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {fig}: {e}"));
        assert!(status.success(), "{fig} exited with {status}");
    }
    println!("\nall figures regenerated at smoke scale");
}
