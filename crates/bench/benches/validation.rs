//! Criterion benches of whole-block validation: baseline vs EBV, and the
//! parallel-vs-sequential SV ablation called out in DESIGN.md §5.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use ebv_bench::{CommonArgs, Scenario};
use ebv_core::{baseline_ibd, ebv_ibd, EbvConfig, EbvNode};

fn args() -> CommonArgs {
    CommonArgs {
        blocks: 60,
        seed: 3,
        budget: 64 << 10,
        latency_us: 20,
        runs: 1,
        ..CommonArgs::default()
    }
}

fn bench_block_validation(c: &mut Criterion) {
    let a = args();
    let scenario = Scenario::mainnet_like(&a);
    let last_base = scenario.blocks.last().expect("nonempty").clone();
    let last_ebv = scenario.ebv_blocks.last().expect("nonempty").clone();
    let split = scenario.blocks.len() - 1;

    c.bench_function("validate/baseline_tip_block", |b| {
        b.iter_batched(
            || {
                let mut node = scenario.baseline_node(&a);
                baseline_ibd(&mut node, &scenario.blocks[1..split], 1 << 20).expect("warmup");
                node
            },
            |mut node| node.process_block(&last_base).expect("validates"),
            BatchSize::PerIteration,
        )
    });

    c.bench_function("validate/ebv_tip_block", |b| {
        b.iter_batched(
            || {
                let mut node = scenario.ebv_node();
                ebv_ibd(&mut node, &scenario.ebv_blocks[1..split], 1 << 20).expect("warmup");
                node
            },
            |mut node| node.process_block(&last_ebv).expect("validates"),
            BatchSize::PerIteration,
        )
    });

    // Ablation: fully sequential pipeline (no parallel EV or SV).
    c.bench_function("validate/ebv_tip_block_sequential", |b| {
        b.iter_batched(
            || {
                let mut node = EbvNode::new(&scenario.ebv_blocks[0], EbvConfig::sequential());
                ebv_ibd(&mut node, &scenario.ebv_blocks[1..split], 1 << 20).expect("warmup");
                node
            },
            |mut node| node.process_block(&last_ebv).expect("validates"),
            BatchSize::PerIteration,
        )
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_block_validation
}
criterion_main!(benches);
