//! Criterion microbenches for the cryptographic substrate: the per-input
//! costs every figure is built from.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use ebv_chain::merkle::{merkle_root, MerkleBranch};
use ebv_core::sighash::{sign_input, DigestChecker};
use ebv_primitives::ec::{ecdsa, lincomb_gen, Affine, PointTable, PrivateKey};
use ebv_primitives::hash::{sha256, sha256d, Hash256};
use ebv_script::standard::{p2pkh_lock, p2pkh_unlock};
use ebv_script::{verify_spend, Builder, RejectAllChecker};

fn bench_hashing(c: &mut Criterion) {
    let data_1k = vec![0xabu8; 1024];
    c.bench_function("sha256/1KiB", |b| b.iter(|| sha256(black_box(&data_1k))));
    c.bench_function("sha256d/80B_header", |b| {
        let header = [0x77u8; 80];
        b.iter(|| sha256d(black_box(&header)))
    });
}

fn bench_ecdsa(c: &mut Criterion) {
    let sk = PrivateKey::from_seed(1);
    let pk = sk.public_key();
    let digest = sha256(b"bench digest");
    let sig = sk.sign(&digest);
    c.bench_function("ecdsa/sign", |b| b.iter(|| sk.sign(black_box(&digest))));
    c.bench_function("ecdsa/verify", |b| {
        b.iter(|| assert!(pk.verify(black_box(&digest), black_box(&sig))))
    });
    // The pre-fast-path ladder, kept as the correctness oracle; the gap to
    // ecdsa/verify is the tentpole speedup this crate's PR chain tracks.
    c.bench_function("ecdsa/verify_reference", |b| {
        b.iter(|| {
            assert!(ecdsa::verify_reference(
                black_box(&digest),
                black_box(&sig),
                black_box(pk.point()),
            ))
        })
    });
    // Amortized path: the per-key table is built once (what the per-block
    // pubkey cache does for repeated signers).
    let prepared = pk.prepare();
    c.bench_function("ecdsa/verify_prepared", |b| {
        b.iter(|| assert!(prepared.verify(black_box(&digest), black_box(&sig))))
    });
}

fn bench_ec_ops(c: &mut Criterion) {
    let k = *PrivateKey::from_seed(3).scalar();
    let u1 = *PrivateKey::from_seed(4).scalar();
    let u2 = *PrivateKey::from_seed(5).scalar();
    let q = *PrivateKey::from_seed(6).public_key().point();
    c.bench_function("ec/mul_gen", |b| {
        b.iter(|| Affine::mul_gen(black_box(&k)).to_affine())
    });
    c.bench_function("ec/mul_reference", |b| {
        b.iter(|| Affine::generator().mul(black_box(&k)))
    });
    c.bench_function("ec/point_table_build", |b| {
        b.iter(|| PointTable::new(black_box(&q)))
    });
    let table = PointTable::new(&q);
    c.bench_function("ec/lincomb_gen", |b| {
        b.iter(|| lincomb_gen(black_box(&u1), black_box(&table), black_box(&u2)).to_affine())
    });
    let qj = q.to_jacobian();
    let gj = Affine::generator().to_jacobian();
    c.bench_function("ec/shamir_reference", |b| {
        b.iter(|| {
            gj.shamir_mul(black_box(&u1), black_box(&qj), black_box(&u2))
                .to_affine()
        })
    });
}

fn bench_merkle(c: &mut Criterion) {
    let leaves: Vec<Hash256> = (0..1024u64).map(|i| sha256d(&i.to_le_bytes())).collect();
    c.bench_function("merkle/root_1024", |b| {
        b.iter(|| merkle_root(black_box(&leaves)))
    });
    c.bench_function("merkle/extract_branch_1024", |b| {
        b.iter(|| MerkleBranch::extract(black_box(&leaves), 700))
    });
    let branch = MerkleBranch::extract(&leaves, 700);
    let root = merkle_root(&leaves);
    // The EV hot path: fold a 10-sibling branch.
    c.bench_function("merkle/fold_branch_1024", |b| {
        b.iter(|| assert!(branch.verify(black_box(&leaves[700]), black_box(&root))))
    });
}

fn bench_script(c: &mut Criterion) {
    // The SV hot path: a full P2PKH spend (hashing + one ECDSA verify).
    let sk = PrivateKey::from_seed(9);
    let pk = sk.public_key();
    let digest = sha256d(b"spend digest");
    let lock = p2pkh_lock(&pk.address_hash());
    let unlock = p2pkh_unlock(&sign_input(&sk, &digest), &pk.to_compressed());
    let checker = DigestChecker::new(digest);
    c.bench_function("script/p2pkh_verify_spend", |b| {
        b.iter(|| verify_spend(black_box(&unlock), black_box(&lock), &checker).expect("valid"))
    });

    // Pure stack work, no crypto: 50 arithmetic ops.
    let mut builder = Builder::new().push_int(0);
    for i in 0..50 {
        builder = builder.push_int(i).push_op(ebv_script::opcodes::OP_ADD);
    }
    let arith = builder.into_script();
    c.bench_function("script/arith_50_ops", |b| {
        b.iter(|| {
            let mut e = ebv_script::Engine::new(&RejectAllChecker);
            e.execute(black_box(&arith)).expect("valid")
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_hashing, bench_ecdsa, bench_ec_ops, bench_merkle, bench_script
}
criterion_main!(benches);
