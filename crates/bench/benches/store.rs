//! Criterion benches for the status database and the bit-vector set —
//! the UV/DBO cost gap the paper's design exploits.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use ebv_core::bitvec::BitVectorSet;
use ebv_primitives::encode::Encodable;
use ebv_store::{KvStore, LatencyModel, StoreConfig};

fn bench_kv(c: &mut Criterion) {
    // Cache-hit fetch: everything resident.
    let mut hot = KvStore::open(StoreConfig::with_budget(64 << 20)).expect("store");
    for i in 0..10_000u32 {
        hot.put(&i.to_le_bytes(), vec![0xab; 60]).expect("put");
    }
    let mut i = 0u32;
    c.bench_function("kv/fetch_cache_hit", |b| {
        b.iter(|| {
            i = (i + 1) % 10_000;
            black_box(hot.get(&i.to_le_bytes()).expect("io"))
        })
    });

    // Cache-miss fetch with injected latency: the baseline's pain.
    let mut cold = KvStore::open(StoreConfig {
        cache_budget: 4 << 10,
        latency: LatencyModel::scaled_hdd(50, 10),
        path: None,
    })
    .expect("store");
    for i in 0..10_000u32 {
        cold.put(&i.to_le_bytes(), vec![0xab; 60]).expect("put");
    }
    cold.flush().expect("flush");
    let mut j = 0u32;
    c.bench_function("kv/fetch_cache_miss_50us_disk", |b| {
        b.iter(|| {
            j = (j + 4099) % 10_000; // stride defeats the tiny cache
            black_box(cold.get(&j.to_le_bytes()).expect("io"))
        })
    });
}

fn bench_bitvec(c: &mut Criterion) {
    // The UV probe: O(1) bit test in memory.
    let mut set = BitVectorSet::new();
    for h in 0..1000u32 {
        set.insert_block(h, 64);
    }
    let mut h = 0u32;
    c.bench_function("bitvec/uv_probe", |b| {
        b.iter(|| {
            h = (h + 1) % 1000;
            black_box(set.check_unspent(h, 13).expect("unspent"))
        })
    });

    // Serialization cost of dense vs sparse vectors (flush-time work).
    let dense = ebv_core::bitvec::BlockBitVector::new_all_unspent(4096);
    let mut sparse = ebv_core::bitvec::BlockBitVector::new_all_unspent(4096);
    for i in 0..4090 {
        sparse.spend(i);
    }
    c.bench_function("bitvec/encode_dense_4096", |b| {
        b.iter(|| black_box(dense.to_bytes()))
    });
    c.bench_function("bitvec/encode_sparse_4096", |b| {
        b.iter(|| black_box(sparse.to_bytes()))
    });

    // Memory accounting sweep (figure-time work).
    c.bench_function("bitvec/memory_scan_1000_vectors", |b| {
        b.iter(|| black_box(set.memory()))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_kv, bench_bitvec
}
criterion_main!(benches);
