//! Byte-budgeted LRU cache.
//!
//! Models the memory-limited UTXO cache of a Btcd-style node: entries are
//! charged by key+value size, and inserting past the budget evicts the
//! least-recently-used entries. Evicted dirty entries are returned to the
//! caller so the store can flush them to disk — the flush traffic is
//! exactly the DBO cost the paper's baseline suffers from.

use std::collections::{BTreeMap, HashMap};

/// Cache entry state. A `Deleted` tombstone shadows any on-disk value until
/// it is flushed.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum CacheValue {
    Present(Vec<u8>),
    Deleted,
}

impl CacheValue {
    fn charge(&self, key_len: usize) -> usize {
        // Per-entry overhead approximates the bookkeeping of a real cache
        // (hash bucket, order node); keeps budgets honest for tiny values.
        const ENTRY_OVERHEAD: usize = 48;
        let val_len = match self {
            CacheValue::Present(v) => v.len(),
            CacheValue::Deleted => 0,
        };
        ENTRY_OVERHEAD + key_len + val_len
    }
}

struct Slot {
    value: CacheValue,
    dirty: bool,
    tick: u64,
    charge: usize,
}

/// An LRU cache with a byte budget.
pub struct LruCache {
    budget: usize,
    used: usize,
    next_tick: u64,
    slots: HashMap<Vec<u8>, Slot>,
    order: BTreeMap<u64, Vec<u8>>,
}

/// An entry evicted because of budget pressure.
pub struct Evicted {
    pub key: Vec<u8>,
    pub value: CacheValue,
    /// Whether the entry had unflushed changes.
    pub dirty: bool,
}

impl LruCache {
    /// Create a cache holding at most `budget` bytes of charged entries.
    pub fn new(budget: usize) -> LruCache {
        LruCache {
            budget,
            used: 0,
            next_tick: 0,
            slots: HashMap::new(),
            order: BTreeMap::new(),
        }
    }

    /// Bytes currently charged.
    pub fn used_bytes(&self) -> usize {
        self.used
    }

    /// Configured budget in bytes.
    pub fn budget(&self) -> usize {
        self.budget
    }

    /// Number of resident entries (including tombstones).
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    fn touch(&mut self, key: &[u8]) {
        let tick = self.next_tick;
        self.next_tick += 1;
        if let Some(slot) = self.slots.get_mut(key) {
            self.order.remove(&slot.tick);
            slot.tick = tick;
            self.order.insert(tick, key.to_vec());
        }
    }

    /// Look up `key`, refreshing its recency.
    pub fn get(&mut self, key: &[u8]) -> Option<CacheValue> {
        if !self.slots.contains_key(key) {
            return None;
        }
        self.touch(key);
        Some(self.slots[key].value.clone())
    }

    /// Insert or replace `key`, returning any entries evicted to make room.
    /// `dirty` marks the entry as needing a disk flush on eviction.
    pub fn put(&mut self, key: Vec<u8>, value: CacheValue, dirty: bool) -> Vec<Evicted> {
        let charge = value.charge(key.len());
        let tick = self.next_tick;
        self.next_tick += 1;
        if let Some(old) = self.slots.remove(&key) {
            self.order.remove(&old.tick);
            self.used -= old.charge;
        }
        self.used += charge;
        self.order.insert(tick, key.clone());
        // A re-dirtied entry stays dirty even if the new write is clean.
        self.slots.insert(
            key,
            Slot {
                value,
                dirty,
                tick,
                charge,
            },
        );
        self.evict_to_budget()
    }

    /// Remove `key` from the cache without flushing (caller handles disk).
    pub fn remove(&mut self, key: &[u8]) -> Option<(CacheValue, bool)> {
        let slot = self.slots.remove(key)?;
        self.order.remove(&slot.tick);
        self.used -= slot.charge;
        Some((slot.value, slot.dirty))
    }

    fn evict_to_budget(&mut self) -> Vec<Evicted> {
        let mut evicted = Vec::new();
        while self.used > self.budget && self.slots.len() > 1 {
            let (&tick, _) = self.order.iter().next().expect("nonempty when over budget");
            let key = self.order.remove(&tick).expect("tick present");
            let slot = self.slots.remove(&key).expect("slot present");
            self.used -= slot.charge;
            evicted.push(Evicted {
                key,
                value: slot.value,
                dirty: slot.dirty,
            });
        }
        evicted
    }

    /// Drain every dirty entry (for a full flush), leaving entries resident
    /// but clean.
    pub fn drain_dirty(&mut self) -> Vec<(Vec<u8>, CacheValue)> {
        let mut out = Vec::new();
        for (key, slot) in self.slots.iter_mut() {
            if slot.dirty {
                slot.dirty = false;
                out.push((key.clone(), slot.value.clone()));
            }
        }
        out
    }

    /// Remove everything, returning dirty entries for flushing.
    pub fn clear(&mut self) -> Vec<(Vec<u8>, CacheValue)> {
        let dirty = self.drain_dirty();
        self.slots.clear();
        self.order.clear();
        self.used = 0;
        dirty
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k(i: u32) -> Vec<u8> {
        i.to_le_bytes().to_vec()
    }

    fn v(len: usize) -> CacheValue {
        CacheValue::Present(vec![0xab; len])
    }

    #[test]
    fn get_put_round_trip() {
        let mut c = LruCache::new(10_000);
        assert!(c.get(&k(1)).is_none());
        c.put(k(1), v(10), false);
        assert_eq!(c.get(&k(1)), Some(v(10)));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn lru_eviction_order() {
        // Each entry charges 48 + 4 + 10 = 62 bytes; budget fits 3.
        let mut c = LruCache::new(3 * 62);
        for i in 0..3 {
            assert!(c.put(k(i), v(10), false).is_empty());
        }
        // Touch key 0 so key 1 becomes LRU.
        c.get(&k(0));
        let evicted = c.put(k(3), v(10), false);
        assert_eq!(evicted.len(), 1);
        assert_eq!(evicted[0].key, k(1));
        assert!(c.get(&k(0)).is_some());
        assert!(c.get(&k(1)).is_none());
    }

    #[test]
    fn eviction_reports_dirty_flag() {
        let mut c = LruCache::new(62);
        c.put(k(1), v(10), true);
        let evicted = c.put(k(2), v(10), false);
        assert_eq!(evicted.len(), 1);
        assert!(evicted[0].dirty);
        assert_eq!(evicted[0].value, v(10));
    }

    #[test]
    fn replacing_updates_charge() {
        let mut c = LruCache::new(1000);
        c.put(k(1), v(100), false);
        let used_large = c.used_bytes();
        c.put(k(1), v(10), false);
        assert!(c.used_bytes() < used_large);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn tombstones_are_resident() {
        let mut c = LruCache::new(1000);
        c.put(k(1), CacheValue::Deleted, true);
        assert_eq!(c.get(&k(1)), Some(CacheValue::Deleted));
    }

    #[test]
    fn remove_returns_state() {
        let mut c = LruCache::new(1000);
        c.put(k(1), v(5), true);
        let (value, dirty) = c.remove(&k(1)).unwrap();
        assert_eq!(value, v(5));
        assert!(dirty);
        assert!(c.remove(&k(1)).is_none());
        assert_eq!(c.used_bytes(), 0);
    }

    #[test]
    fn drain_dirty_cleans_entries() {
        let mut c = LruCache::new(10_000);
        c.put(k(1), v(5), true);
        c.put(k(2), v(5), false);
        c.put(k(3), CacheValue::Deleted, true);
        let mut dirty = c.drain_dirty();
        dirty.sort_by(|a, b| a.0.cmp(&b.0));
        assert_eq!(dirty.len(), 2);
        // Draining again yields nothing.
        assert!(c.drain_dirty().is_empty());
        // Entries are still resident.
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn at_least_one_entry_survives_tiny_budget() {
        // Budget smaller than a single entry: the newest entry stays (a
        // cache that evicted its only entry on every put would thrash).
        let mut c = LruCache::new(1);
        c.put(k(1), v(100), false);
        assert_eq!(c.len(), 1);
        let evicted = c.put(k(2), v(100), false);
        assert_eq!(evicted.len(), 1);
        assert_eq!(c.len(), 1);
        assert!(c.get(&k(2)).is_some());
    }

    #[test]
    fn used_bytes_tracks_all_mutations() {
        let mut c = LruCache::new(100_000);
        for i in 0..100 {
            c.put(k(i), v(i as usize), false);
        }
        for i in 0..50 {
            c.remove(&k(i));
        }
        let expected: usize = (50..100).map(|i| 48 + 4 + i as usize).sum();
        assert_eq!(c.used_bytes(), expected);
    }
}
