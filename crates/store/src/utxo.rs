//! The baseline UTXO set, layered on the status database.
//!
//! Entries are keyed by outpoint (`txid || vout`, 36 bytes) and carry the
//! data input checking needs: amount, locking script, creation height and
//! a coinbase flag — mirroring Bitcoin Core's `CCoin`. The paper's Fig. 3
//! operations map to [`UtxoSet::fetch`] (❶, EV+UV), [`UtxoSet::delete`]
//! (❸) and [`UtxoSet::insert`] (❹); ❷ SV happens in the validator.

use crate::disk::DiskError;
use crate::kv::KvStore;
use ebv_chain::OutPoint;
use ebv_primitives::encode::{Decodable, DecodeError, Encodable, Reader};
use ebv_script::Script;

/// One unspent transaction output as stored in the status database.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct UtxoEntry {
    /// Amount in base units.
    pub value: u64,
    /// The locking script (*Ls*) needed for SV.
    pub locking_script: Script,
    /// Height of the block that created the output.
    pub height: u32,
    /// Absolute position of the output within its block (whole-block output
    /// numbering). Together with `height` these are the coordinates the
    /// shared signing digest commits to.
    pub position: u32,
    /// Whether the creating transaction was a coinbase.
    pub coinbase: bool,
}

impl Encodable for UtxoEntry {
    fn encode(&self, out: &mut Vec<u8>) {
        self.value.encode(out);
        self.locking_script.encode(out);
        self.height.encode(out);
        self.position.encode(out);
        (self.coinbase as u8).encode(out);
    }
    fn encoded_len(&self) -> usize {
        8 + self.locking_script.encoded_len() + 4 + 4 + 1
    }
}

impl Decodable for UtxoEntry {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(UtxoEntry {
            value: u64::decode(r)?,
            locking_script: Script::decode(r)?,
            height: u32::decode(r)?,
            position: u32::decode(r)?,
            coinbase: match u8::decode(r)? {
                0 => false,
                1 => true,
                _ => return Err(DecodeError::Invalid("coinbase flag")),
            },
        })
    }
}

/// Aggregate size statistics — what Figs. 1 and 14 plot for the baseline.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct UtxoSetSize {
    /// Number of unspent outputs.
    pub count: u64,
    /// Serialized bytes of all entries plus their 36-byte keys.
    pub bytes: u64,
}

/// The UTXO set: outpoint → [`UtxoEntry`].
pub struct UtxoSet {
    kv: KvStore,
    size: UtxoSetSize,
}

/// Failures of UTXO-set operations.
#[derive(Debug)]
pub enum UtxoError {
    Disk(DiskError),
    /// Stored bytes failed to decode — database corruption.
    Corrupt(DecodeError),
    /// Delete of an outpoint that is not in the set.
    MissingEntry(OutPoint),
}

impl From<DiskError> for UtxoError {
    fn from(e: DiskError) -> Self {
        UtxoError::Disk(e)
    }
}

impl std::fmt::Display for UtxoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            UtxoError::Disk(e) => write!(f, "utxo store: {e}"),
            UtxoError::Corrupt(e) => write!(f, "utxo entry corrupt: {e}"),
            UtxoError::MissingEntry(op) => write!(f, "missing utxo entry {op:?}"),
        }
    }
}

impl std::error::Error for UtxoError {}

impl UtxoSet {
    /// Wrap a status database.
    pub fn new(kv: KvStore) -> UtxoSet {
        UtxoSet {
            kv,
            size: UtxoSetSize::default(),
        }
    }

    /// Fetch the entry for `outpoint` — the combined EV+UV lookup. `None`
    /// means the output either never existed or was already spent (the
    /// baseline cannot distinguish the two, as the paper notes).
    pub fn fetch(&mut self, outpoint: &OutPoint) -> Result<Option<UtxoEntry>, UtxoError> {
        let Some(bytes) = self.kv.get(&outpoint.to_key())? else {
            return Ok(None);
        };
        UtxoEntry::from_bytes(&bytes)
            .map(Some)
            .map_err(UtxoError::Corrupt)
    }

    /// Insert a new unspent output.
    pub fn insert(&mut self, outpoint: &OutPoint, entry: &UtxoEntry) -> Result<(), UtxoError> {
        let bytes = entry.to_bytes();
        self.size.count += 1;
        self.size.bytes += 36 + bytes.len() as u64;
        self.kv.put(&outpoint.to_key(), bytes)?;
        Ok(())
    }

    /// Delete a spent output. The caller must have fetched it (validation
    /// does); the entry size is needed to keep [`UtxoSet::size`] exact.
    pub fn delete(&mut self, outpoint: &OutPoint, entry: &UtxoEntry) -> Result<(), UtxoError> {
        self.size.count = self.size.count.saturating_sub(1);
        self.size.bytes = self
            .size
            .bytes
            .saturating_sub(36 + entry.encoded_len() as u64);
        self.kv.delete(&outpoint.to_key())?;
        Ok(())
    }

    /// Current logical size of the set.
    pub fn size(&self) -> UtxoSetSize {
        self.size
    }

    /// DBO statistics of the underlying store.
    pub fn stats(&self) -> crate::stats::DboStats {
        self.kv.stats()
    }

    /// Flush dirty cache state to disk.
    pub fn flush(&mut self) -> Result<(), UtxoError> {
        self.kv.flush()?;
        Ok(())
    }

    /// Access the underlying store (for cache-usage introspection).
    pub fn kv(&self) -> &KvStore {
        &self.kv
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kv::StoreConfig;
    use ebv_primitives::hash::sha256d;
    use ebv_script::Builder;

    fn entry(value: u64) -> UtxoEntry {
        UtxoEntry {
            value,
            locking_script: Builder::new().push_data(&[0xaa; 25]).into_script(),
            height: 7,
            position: 3,
            coinbase: false,
        }
    }

    fn outpoint(i: u64) -> OutPoint {
        OutPoint::new(sha256d(&i.to_le_bytes()), (i % 4) as u32)
    }

    fn set() -> UtxoSet {
        UtxoSet::new(KvStore::open(StoreConfig::with_budget(1 << 20)).unwrap())
    }

    #[test]
    fn entry_round_trip() {
        let e = entry(12345);
        let bytes = e.to_bytes();
        assert_eq!(bytes.len(), e.encoded_len());
        assert_eq!(UtxoEntry::from_bytes(&bytes).unwrap(), e);
    }

    #[test]
    fn entry_rejects_bad_coinbase_flag() {
        let mut bytes = entry(1).to_bytes();
        let last = bytes.len() - 1;
        bytes[last] = 7;
        assert!(matches!(
            UtxoEntry::from_bytes(&bytes),
            Err(DecodeError::Invalid("coinbase flag"))
        ));
    }

    #[test]
    fn insert_fetch_delete() {
        let mut s = set();
        let op = outpoint(1);
        assert!(s.fetch(&op).unwrap().is_none());
        s.insert(&op, &entry(10)).unwrap();
        assert_eq!(s.fetch(&op).unwrap().unwrap().value, 10);
        s.delete(&op, &entry(10)).unwrap();
        assert!(s.fetch(&op).unwrap().is_none());
    }

    #[test]
    fn size_tracking_is_exact() {
        let mut s = set();
        assert_eq!(s.size(), UtxoSetSize::default());
        let e = entry(5);
        let per_entry = 36 + e.encoded_len() as u64;
        for i in 0..10 {
            s.insert(&outpoint(i), &e).unwrap();
        }
        assert_eq!(s.size().count, 10);
        assert_eq!(s.size().bytes, 10 * per_entry);
        for i in 0..4 {
            s.delete(&outpoint(i), &e).unwrap();
        }
        assert_eq!(s.size().count, 6);
        assert_eq!(s.size().bytes, 6 * per_entry);
    }

    #[test]
    fn distinct_vouts_are_distinct_entries() {
        let mut s = set();
        let txid = sha256d(b"tx");
        s.insert(&OutPoint::new(txid, 0), &entry(1)).unwrap();
        s.insert(&OutPoint::new(txid, 1), &entry(2)).unwrap();
        assert_eq!(s.fetch(&OutPoint::new(txid, 0)).unwrap().unwrap().value, 1);
        assert_eq!(s.fetch(&OutPoint::new(txid, 1)).unwrap().unwrap().value, 2);
    }

    #[test]
    fn stats_flow_through() {
        let mut s = set();
        s.insert(&outpoint(0), &entry(1)).unwrap();
        s.fetch(&outpoint(0)).unwrap();
        let st = s.stats();
        assert_eq!(st.inserts, 1);
        assert_eq!(st.fetches, 1);
    }
}
