//! Status-database substrate: the memory-limited store behind the
//! baseline's UTXO set.
//!
//! Layering (bottom up):
//!
//! * [`disk`] — an append-only log with offset index and an injectable
//!   latency model, standing in for LevelDB-on-HDD;
//! * [`cache`] — a byte-budgeted LRU cache, standing in for Btcd's
//!   memory-limited UTXO cache;
//! * [`kv`] — the combined store: cache-first reads, write-back dirty
//!   entries, flush at block boundaries; DBO statistics throughout;
//! * [`utxo`] — the baseline UTXO set (outpoint → amount/script/height),
//!   with exact logical-size accounting for the growth experiments.
//!
//! The EBV node replaces [`utxo::UtxoSet`] with the bit-vector set in
//! `ebv-core`; both are measured by the same experiments.

pub mod cache;
pub mod disk;
pub mod kv;
pub mod stats;
pub mod utxo;

pub use disk::{DiskError, LatencyModel};
pub use kv::{KvStore, StoreConfig};
pub use stats::DboStats;
pub use utxo::{UtxoEntry, UtxoError, UtxoSet, UtxoSetSize};
