//! Log-structured disk backend.
//!
//! An append-only record log with an in-memory offset index, playing the
//! role LevelDB plays under Btcd. Records are `(key, value-or-tombstone)`;
//! the newest record for a key wins. [`DiskLog::compact`] rewrites the log
//! dropping shadowed records and tombstones.
//!
//! A configurable [`LatencyModel`] spins for a fixed duration per read and
//! per write, emulating the random-access cost of the paper's HDD testbed
//! on fast CI storage (the knob every figure binary exposes).

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

/// Injected per-operation latencies.
#[derive(Clone, Copy, Debug, Default)]
pub struct LatencyModel {
    pub read: Duration,
    pub write: Duration,
}

impl LatencyModel {
    /// No injected latency (unit tests).
    pub fn none() -> LatencyModel {
        LatencyModel::default()
    }

    /// A scaled-HDD model: `read_us` microseconds per random read,
    /// `write_us` per write.
    pub fn scaled_hdd(read_us: u64, write_us: u64) -> LatencyModel {
        LatencyModel {
            read: Duration::from_micros(read_us),
            write: Duration::from_micros(write_us),
        }
    }

    fn spin(d: Duration) {
        if d.is_zero() {
            return;
        }
        let start = Instant::now();
        while start.elapsed() < d {
            std::hint::spin_loop();
        }
    }
}

/// I/O failures surfaced by the log.
#[derive(Debug)]
pub enum DiskError {
    Io(std::io::Error),
    /// The log file is structurally corrupt at the given offset.
    Corrupt(u64),
    /// The in-memory index references a record the log cannot serve — the
    /// index and the file have diverged (formerly a panic in `compact`).
    InconsistentIndex,
}

impl From<std::io::Error> for DiskError {
    fn from(e: std::io::Error) -> Self {
        DiskError::Io(e)
    }
}

impl std::fmt::Display for DiskError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DiskError::Io(e) => write!(f, "disk i/o error: {e}"),
            DiskError::Corrupt(off) => write!(f, "log corrupt at offset {off}"),
            DiskError::InconsistentIndex => {
                write!(f, "index references a record the log cannot serve")
            }
        }
    }
}

impl std::error::Error for DiskError {}

const TAG_PUT: u8 = 1;
const TAG_DELETE: u8 = 2;

/// Little-endian u32 at `pos`, or `None` if the buffer ends first — replay
/// must never panic on a malformed log, whatever its length arithmetic
/// says.
fn read_u32_le(buf: &[u8], pos: usize) -> Option<u32> {
    let bytes = buf.get(pos..pos + 4)?;
    Some(u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]))
}

/// Append-only key/value log with offset index.
pub struct DiskLog {
    path: PathBuf,
    file: File,
    /// Byte offset where the next record will be appended.
    end: u64,
    /// key → offset of its newest PUT record's value bytes (len stored too).
    /// Tombstoned keys are absent.
    index: std::collections::HashMap<Vec<u8>, (u64, u32)>,
    latency: LatencyModel,
    /// Bytes occupied by live (indexed) values — drives compaction
    /// heuristics in callers.
    live_bytes: u64,
}

impl DiskLog {
    /// Open or create the log at `path`, replaying it to rebuild the index.
    pub fn open(path: &Path, latency: LatencyModel) -> Result<DiskLog, DiskError> {
        let mut file = OpenOptions::new()
            .read(true)
            .append(true)
            .create(true)
            .open(path)?;
        let mut log = DiskLog {
            path: path.to_path_buf(),
            end: 0,
            index: std::collections::HashMap::new(),
            latency,
            live_bytes: 0,
            file: file.try_clone()?,
        };
        log.replay(&mut file)?;
        Ok(log)
    }

    /// Rebuild the index from the log. A *truncated* trailing record — the
    /// signature of a crash mid-append — is discarded by truncating the
    /// file back to the last complete record, as production stores do.
    /// Structural corruption (an unknown tag) is still a hard error.
    fn replay(&mut self, file: &mut File) -> Result<(), DiskError> {
        let mut buf = Vec::new();
        file.seek(SeekFrom::Start(0))?;
        file.read_to_end(&mut buf)?;
        let mut pos = 0usize;
        let mut truncated_at: Option<u64> = None;
        while pos < buf.len() {
            let start = pos as u64;
            if buf.len() - pos < 5 {
                truncated_at = Some(start);
                break;
            }
            let tag = buf[pos];
            let Some(key_len) = read_u32_le(&buf, pos + 1).map(|n| n as usize) else {
                truncated_at = Some(start);
                break;
            };
            pos += 5;
            if buf.len() - pos < key_len {
                truncated_at = Some(start);
                break;
            }
            let key = buf[pos..pos + key_len].to_vec();
            pos += key_len;
            match tag {
                TAG_PUT => {
                    if buf.len() - pos < 4 {
                        truncated_at = Some(start);
                        break;
                    }
                    let Some(val_len) = read_u32_le(&buf, pos).map(|n| n as usize) else {
                        truncated_at = Some(start);
                        break;
                    };
                    pos += 4;
                    if buf.len() - pos < val_len {
                        truncated_at = Some(start);
                        break;
                    }
                    if let Some((_, old_len)) = self.index.get(&key) {
                        self.live_bytes -= *old_len as u64;
                    }
                    self.live_bytes += val_len as u64;
                    self.index.insert(key, (pos as u64, val_len as u32));
                    pos += val_len;
                }
                TAG_DELETE => {
                    if let Some((_, old_len)) = self.index.remove(&key) {
                        self.live_bytes -= old_len as u64;
                    }
                }
                _ => return Err(DiskError::Corrupt(start)),
            }
        }
        if let Some(at) = truncated_at {
            file.set_len(at)?;
            self.end = at;
        } else {
            self.end = buf.len() as u64;
        }
        Ok(())
    }

    /// Number of live keys.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Total file size (live + shadowed records).
    pub fn file_size(&self) -> u64 {
        self.end
    }

    /// Bytes of live values.
    pub fn live_bytes(&self) -> u64 {
        self.live_bytes
    }

    /// Whether `key` has a live value (no disk access needed).
    pub fn contains(&self, key: &[u8]) -> bool {
        self.index.contains_key(key)
    }

    /// Read the value for `key` (one simulated-latency random read).
    pub fn get(&mut self, key: &[u8]) -> Result<Option<Vec<u8>>, DiskError> {
        let Some(&(offset, len)) = self.index.get(key) else {
            // A miss still costs a disk probe in a real LSM store.
            LatencyModel::spin(self.latency.read);
            return Ok(None);
        };
        LatencyModel::spin(self.latency.read);
        let mut out = vec![0u8; len as usize];
        self.file.seek(SeekFrom::Start(offset))?;
        self.file.read_exact(&mut out)?;
        Ok(Some(out))
    }

    /// Append a PUT record.
    pub fn put(&mut self, key: &[u8], value: &[u8]) -> Result<(), DiskError> {
        LatencyModel::spin(self.latency.write);
        let mut rec = Vec::with_capacity(9 + key.len() + value.len());
        rec.push(TAG_PUT);
        rec.extend_from_slice(&(key.len() as u32).to_le_bytes());
        rec.extend_from_slice(key);
        rec.extend_from_slice(&(value.len() as u32).to_le_bytes());
        rec.extend_from_slice(value);
        self.file.seek(SeekFrom::End(0))?;
        self.file.write_all(&rec)?;
        let value_offset = self.end + 9 + key.len() as u64;
        if let Some((_, old_len)) = self.index.get(key) {
            self.live_bytes -= *old_len as u64;
        }
        self.live_bytes += value.len() as u64;
        self.index
            .insert(key.to_vec(), (value_offset, value.len() as u32));
        self.end += rec.len() as u64;
        Ok(())
    }

    /// Append a DELETE tombstone.
    pub fn delete(&mut self, key: &[u8]) -> Result<(), DiskError> {
        LatencyModel::spin(self.latency.write);
        let mut rec = Vec::with_capacity(5 + key.len());
        rec.push(TAG_DELETE);
        rec.extend_from_slice(&(key.len() as u32).to_le_bytes());
        rec.extend_from_slice(key);
        self.file.seek(SeekFrom::End(0))?;
        self.file.write_all(&rec)?;
        if let Some((_, old_len)) = self.index.remove(key) {
            self.live_bytes -= old_len as u64;
        }
        self.end += rec.len() as u64;
        Ok(())
    }

    /// Rewrite the log keeping only live records. Returns bytes reclaimed.
    pub fn compact(&mut self) -> Result<u64, DiskError> {
        let old_size = self.end;
        let tmp_path = self.path.with_extension("compact");
        {
            let mut tmp = OpenOptions::new()
                .write(true)
                .create(true)
                .truncate(true)
                .open(&tmp_path)?;
            // Stream live records into the new log, rebuilding the index.
            let mut new_index = std::collections::HashMap::new();
            let mut new_end = 0u64;
            let keys: Vec<Vec<u8>> = self.index.keys().cloned().collect();
            for key in keys {
                let value = self.get(&key)?.ok_or(DiskError::InconsistentIndex)?;
                let mut rec = Vec::with_capacity(9 + key.len() + value.len());
                rec.push(TAG_PUT);
                rec.extend_from_slice(&(key.len() as u32).to_le_bytes());
                rec.extend_from_slice(&key);
                rec.extend_from_slice(&(value.len() as u32).to_le_bytes());
                rec.extend_from_slice(&value);
                tmp.write_all(&rec)?;
                let value_offset = new_end + 9 + key.len() as u64;
                new_index.insert(key, (value_offset, value.len() as u32));
                new_end += rec.len() as u64;
            }
            tmp.sync_all()?;
            self.index = new_index;
            self.end = new_end;
        }
        std::fs::rename(&tmp_path, &self.path)?;
        self.file = OpenOptions::new()
            .read(true)
            .append(true)
            .open(&self.path)?;
        Ok(old_size.saturating_sub(self.end))
    }

    /// Iterate live keys (index order is unspecified).
    pub fn keys(&self) -> impl Iterator<Item = &Vec<u8>> {
        self.index.keys()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!(
            "ebv-disklog-{}-{}-{name}.log",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .as_nanos()
        ));
        p
    }

    struct Cleanup(PathBuf);
    impl Drop for Cleanup {
        fn drop(&mut self) {
            let _ = std::fs::remove_file(&self.0);
        }
    }

    #[test]
    fn put_get_delete() {
        let path = temp_path("pgd");
        let _c = Cleanup(path.clone());
        let mut log = DiskLog::open(&path, LatencyModel::none()).unwrap();
        assert!(log.get(b"a").unwrap().is_none());
        log.put(b"a", b"value-a").unwrap();
        log.put(b"b", b"value-b").unwrap();
        assert_eq!(log.get(b"a").unwrap().unwrap(), b"value-a");
        assert_eq!(log.len(), 2);
        log.delete(b"a").unwrap();
        assert!(log.get(b"a").unwrap().is_none());
        assert_eq!(log.len(), 1);
    }

    #[test]
    fn overwrite_takes_latest() {
        let path = temp_path("ow");
        let _c = Cleanup(path.clone());
        let mut log = DiskLog::open(&path, LatencyModel::none()).unwrap();
        log.put(b"k", b"v1").unwrap();
        log.put(b"k", b"v2-longer").unwrap();
        assert_eq!(log.get(b"k").unwrap().unwrap(), b"v2-longer");
        assert_eq!(log.live_bytes(), 9);
    }

    #[test]
    fn replay_rebuilds_index() {
        let path = temp_path("replay");
        let _c = Cleanup(path.clone());
        {
            let mut log = DiskLog::open(&path, LatencyModel::none()).unwrap();
            log.put(b"a", b"1").unwrap();
            log.put(b"b", b"2").unwrap();
            log.put(b"a", b"3").unwrap();
            log.delete(b"b").unwrap();
        }
        let mut log = DiskLog::open(&path, LatencyModel::none()).unwrap();
        assert_eq!(log.get(b"a").unwrap().unwrap(), b"3");
        assert!(log.get(b"b").unwrap().is_none());
        assert_eq!(log.len(), 1);
    }

    #[test]
    fn compact_reclaims_space() {
        let path = temp_path("compact");
        let _c = Cleanup(path.clone());
        let mut log = DiskLog::open(&path, LatencyModel::none()).unwrap();
        for i in 0..100u32 {
            log.put(&i.to_le_bytes(), &[0u8; 100]).unwrap();
        }
        for i in 0..90u32 {
            log.delete(&i.to_le_bytes()).unwrap();
        }
        let before = log.file_size();
        let reclaimed = log.compact().unwrap();
        assert!(reclaimed > 0);
        assert_eq!(log.file_size(), before - reclaimed);
        assert_eq!(log.len(), 10);
        for i in 90..100u32 {
            assert_eq!(log.get(&i.to_le_bytes()).unwrap().unwrap(), vec![0u8; 100]);
        }
        // Reopen after compaction still works.
        drop(log);
        let mut log = DiskLog::open(&path, LatencyModel::none()).unwrap();
        assert_eq!(log.len(), 10);
        assert_eq!(
            log.get(&95u32.to_le_bytes()).unwrap().unwrap(),
            vec![0u8; 100]
        );
    }

    #[test]
    fn corrupt_log_detected() {
        let path = temp_path("corrupt");
        let _c = Cleanup(path.clone());
        // A structurally complete record with an unknown tag.
        std::fs::write(&path, [9u8, 1, 0, 0, 0, b'k']).unwrap();
        assert!(matches!(
            DiskLog::open(&path, LatencyModel::none()),
            Err(DiskError::Corrupt(0))
        ));
    }

    #[test]
    fn truncated_tail_recovered() {
        let path = temp_path("crash");
        let _c = Cleanup(path.clone());
        {
            let mut log = DiskLog::open(&path, LatencyModel::none()).unwrap();
            log.put(b"a", b"alpha").unwrap();
            log.put(b"b", b"beta").unwrap();
        }
        // Simulate a crash mid-append: half a record at the end.
        {
            use std::io::Write;
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(&[TAG_PUT, 200, 0, 0]).unwrap(); // incomplete header
        }
        let size_before = std::fs::metadata(&path).unwrap().len();
        let mut log = DiskLog::open(&path, LatencyModel::none()).unwrap();
        // The partial record is dropped; complete records survive.
        assert_eq!(log.get(b"a").unwrap().unwrap(), b"alpha");
        assert_eq!(log.get(b"b").unwrap().unwrap(), b"beta");
        assert_eq!(log.len(), 2);
        assert!(log.file_size() < size_before);
        // New appends land after the truncation point and replay cleanly.
        log.put(b"c", b"gamma").unwrap();
        drop(log);
        let mut log = DiskLog::open(&path, LatencyModel::none()).unwrap();
        assert_eq!(log.get(b"c").unwrap().unwrap(), b"gamma");
        assert_eq!(log.len(), 3);
    }

    #[test]
    fn injected_latency_slows_reads() {
        let path = temp_path("latency");
        let _c = Cleanup(path.clone());
        let mut log = DiskLog::open(&path, LatencyModel::scaled_hdd(500, 0)).unwrap();
        log.put(b"k", b"v").unwrap();
        let start = Instant::now();
        for _ in 0..20 {
            log.get(b"k").unwrap();
        }
        assert!(start.elapsed() >= Duration::from_micros(20 * 500));
    }
}
