//! The status database: a byte-budgeted cache over the disk log.
//!
//! This is the component whose behaviour the paper's §II-B describes: "the
//! memory will firstly be accessed to fetch the corresponding UTXOs. If not
//! found, the disk will be further accessed." Reads check the
//! [`LruCache`]; misses go to the [`DiskLog`] and are promoted into the
//! cache, evicting (and flushing) least-recently-used entries.

use crate::cache::{CacheValue, LruCache};
use crate::disk::{DiskError, DiskLog, LatencyModel};
use crate::stats::DboStats;
use ebv_telemetry::{counter, span, trace_event};
use std::path::{Path, PathBuf};

/// Configuration for a [`KvStore`].
#[derive(Clone, Debug)]
pub struct StoreConfig {
    /// Cache byte budget — the "memory limit" knob of the experiments
    /// (Btcd hard-codes 100 MB; the paper evaluates both systems at
    /// 500 MB).
    pub cache_budget: usize,
    /// Injected disk latency model.
    pub latency: LatencyModel,
    /// Path for the disk log. `None` creates a unique file in the system
    /// temp directory, removed on drop.
    pub path: Option<PathBuf>,
}

impl Default for StoreConfig {
    fn default() -> Self {
        StoreConfig {
            cache_budget: 64 << 20,
            latency: LatencyModel::none(),
            path: None,
        }
    }
}

impl StoreConfig {
    /// Budget-only config with no injected latency.
    pub fn with_budget(cache_budget: usize) -> StoreConfig {
        StoreConfig {
            cache_budget,
            ..Default::default()
        }
    }
}

/// A key-value status database with memory-limited caching.
pub struct KvStore {
    cache: LruCache,
    disk: DiskLog,
    stats: DboStats,
    /// Present only for auto-created temp files: removed on drop.
    temp_path: Option<PathBuf>,
}

impl KvStore {
    /// Open a store with the given configuration.
    pub fn open(config: StoreConfig) -> Result<KvStore, DiskError> {
        let (path, temp_path) = match config.path {
            Some(p) => (p, None),
            None => {
                let p = unique_temp_path();
                (p.clone(), Some(p))
            }
        };
        Ok(KvStore {
            cache: LruCache::new(config.cache_budget),
            disk: DiskLog::open(&path, config.latency)?,
            stats: DboStats::default(),
            temp_path,
        })
    }

    /// Open with default config at a specific path.
    pub fn open_at(
        path: &Path,
        cache_budget: usize,
        latency: LatencyModel,
    ) -> Result<KvStore, DiskError> {
        KvStore::open(StoreConfig {
            cache_budget,
            latency,
            path: Some(path.to_path_buf()),
        })
    }

    /// Fetch a value. This is the paper's `Fetch` DBO: cache first, disk on
    /// miss, promoting the result into the cache.
    pub fn get(&mut self, key: &[u8]) -> Result<Option<Vec<u8>>, DiskError> {
        let KvStore {
            cache, disk, stats, ..
        } = self;
        let _span = span!("store.get", &mut stats.time);
        stats.fetches += 1;
        counter!("store.fetches").inc();
        let result = match cache.get(key) {
            Some(CacheValue::Present(v)) => {
                stats.cache_hits += 1;
                counter!("store.cache.hits").inc();
                Some(v)
            }
            Some(CacheValue::Deleted) => {
                stats.cache_hits += 1;
                counter!("store.cache.hits").inc();
                None
            }
            None => {
                stats.cache_misses += 1;
                stats.disk_reads += 1;
                counter!("store.cache.misses").inc();
                counter!("store.disk.reads").inc();
                let from_disk = disk.get(key)?;
                if let Some(v) = &from_disk {
                    let evicted = cache.put(key.to_vec(), CacheValue::Present(v.clone()), false);
                    flush_evicted(disk, &mut stats.disk_writes, evicted)?;
                }
                from_disk
            }
        };
        Ok(result)
    }

    /// Insert or overwrite a value (the `Insert` DBO). Writes land in the
    /// cache and reach disk on eviction or flush.
    pub fn put(&mut self, key: &[u8], value: Vec<u8>) -> Result<(), DiskError> {
        let KvStore {
            cache, disk, stats, ..
        } = self;
        let _span = span!("store.put", &mut stats.time);
        stats.inserts += 1;
        counter!("store.inserts").inc();
        let evicted = cache.put(key.to_vec(), CacheValue::Present(value), true);
        flush_evicted(disk, &mut stats.disk_writes, evicted)?;
        Ok(())
    }

    /// Delete a key (the `Delete` DBO), via a cached tombstone.
    pub fn delete(&mut self, key: &[u8]) -> Result<(), DiskError> {
        let KvStore {
            cache, disk, stats, ..
        } = self;
        let _span = span!("store.delete", &mut stats.time);
        stats.deletes += 1;
        counter!("store.deletes").inc();
        // If the key only ever lived in the cache (never flushed), the
        // tombstone is still needed in case an older value is on disk.
        let evicted = cache.put(key.to_vec(), CacheValue::Deleted, true);
        flush_evicted(disk, &mut stats.disk_writes, evicted)?;
        Ok(())
    }

    /// Flush all dirty cache entries to disk (block-commit boundary).
    pub fn flush(&mut self) -> Result<(), DiskError> {
        let KvStore {
            cache, disk, stats, ..
        } = self;
        let _span = span!("store.flush", &mut stats.time);
        for (key, value) in cache.drain_dirty() {
            stats.disk_writes += 1;
            counter!("store.disk.writes").inc();
            match value {
                CacheValue::Present(v) => disk.put(&key, &v)?,
                CacheValue::Deleted => disk.delete(&key)?,
            }
        }
        Ok(())
    }

    /// Accumulated DBO statistics.
    pub fn stats(&self) -> DboStats {
        self.stats
    }

    /// Bytes currently charged against the cache budget.
    pub fn cache_used(&self) -> usize {
        self.cache.used_bytes()
    }

    /// Live keys on disk plus resident dirty inserts. Exact when flushed.
    pub fn disk_len(&self) -> usize {
        self.disk.len()
    }

    /// Live value bytes on disk (exact after [`KvStore::flush`]).
    pub fn disk_live_bytes(&self) -> u64 {
        self.disk.live_bytes()
    }

    /// Compact the disk log, returning reclaimed bytes.
    pub fn compact(&mut self) -> Result<u64, DiskError> {
        self.disk.compact()
    }
}

/// Write dirty evictees through to the disk log. A free function (not a
/// method) so callers can hold a span borrow on `stats.time` while the
/// write count is bumped through a disjoint field borrow.
fn flush_evicted(
    disk: &mut DiskLog,
    disk_writes: &mut u64,
    evicted: Vec<crate::cache::Evicted>,
) -> Result<(), DiskError> {
    let mut flushed = 0u64;
    for e in evicted {
        if !e.dirty {
            continue;
        }
        *disk_writes += 1;
        flushed += 1;
        match e.value {
            CacheValue::Present(v) => disk.put(&e.key, &v)?,
            CacheValue::Deleted => disk.delete(&e.key)?,
        }
    }
    if flushed > 0 {
        counter!("store.disk.writes").add(flushed);
        counter!("store.cache.evictions").add(flushed);
        trace_event!("store.cache_evicted", flushed = flushed);
    }
    Ok(())
}

impl Drop for KvStore {
    fn drop(&mut self) {
        if let Some(p) = &self.temp_path {
            let _ = std::fs::remove_file(p);
        }
    }
}

fn unique_temp_path() -> PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let mut p = std::env::temp_dir();
    p.push(format!(
        "ebv-kv-{}-{}-{}.log",
        std::process::id(),
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .expect("clock after epoch")
            .as_nanos(),
        COUNTER.fetch_add(1, Ordering::Relaxed),
    ));
    p
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store(budget: usize) -> KvStore {
        KvStore::open(StoreConfig::with_budget(budget)).unwrap()
    }

    #[test]
    fn get_put_delete_round_trip() {
        let mut s = store(1 << 20);
        assert!(s.get(b"a").unwrap().is_none());
        s.put(b"a", b"1".to_vec()).unwrap();
        assert_eq!(s.get(b"a").unwrap().unwrap(), b"1");
        s.delete(b"a").unwrap();
        assert!(s.get(b"a").unwrap().is_none());
    }

    #[test]
    fn eviction_spills_to_disk_and_reloads() {
        // Tiny budget: almost every entry spills.
        let mut s = store(200);
        for i in 0..100u32 {
            s.put(&i.to_le_bytes(), vec![i as u8; 50]).unwrap();
        }
        // All values must still be readable (via disk).
        for i in 0..100u32 {
            assert_eq!(
                s.get(&i.to_le_bytes()).unwrap().unwrap(),
                vec![i as u8; 50],
                "i={i}"
            );
        }
        let st = s.stats();
        assert!(st.cache_misses > 0, "expected misses with tiny budget");
        assert!(st.disk_writes > 0);
    }

    #[test]
    fn tombstone_shadows_disk_value() {
        let mut s = store(200);
        // Write enough to force "old" onto disk.
        s.put(b"old", vec![1; 50]).unwrap();
        for i in 0..50u32 {
            s.put(&i.to_le_bytes(), vec![0; 50]).unwrap();
        }
        // Delete while the value lives on disk; tombstone may itself be
        // evicted later — the delete must still win.
        s.delete(b"old").unwrap();
        for i in 50..100u32 {
            s.put(&i.to_le_bytes(), vec![0; 50]).unwrap();
        }
        assert!(s.get(b"old").unwrap().is_none());
    }

    #[test]
    fn flush_persists_everything() {
        let dir = std::env::temp_dir().join(format!("ebv-kvtest-{}", std::process::id()));
        let _ = std::fs::remove_file(&dir);
        {
            let mut s = KvStore::open_at(&dir, 1 << 20, LatencyModel::none()).unwrap();
            for i in 0..20u32 {
                s.put(&i.to_le_bytes(), vec![i as u8; 10]).unwrap();
            }
            s.delete(&3u32.to_le_bytes()).unwrap();
            s.flush().unwrap();
        }
        let mut s = KvStore::open_at(&dir, 1 << 20, LatencyModel::none()).unwrap();
        assert_eq!(s.get(&5u32.to_le_bytes()).unwrap().unwrap(), vec![5; 10]);
        assert!(s.get(&3u32.to_le_bytes()).unwrap().is_none());
        assert_eq!(s.disk_len(), 19);
        let _ = std::fs::remove_file(&dir);
    }

    #[test]
    fn stats_track_operations() {
        let mut s = store(1 << 20);
        s.put(b"a", vec![1]).unwrap();
        s.get(b"a").unwrap();
        s.get(b"missing").unwrap();
        s.delete(b"a").unwrap();
        let st = s.stats();
        assert_eq!(st.inserts, 1);
        assert_eq!(st.deletes, 1);
        assert_eq!(st.fetches, 2);
        assert_eq!(st.cache_hits, 1);
        assert_eq!(st.cache_misses, 1);
        assert!(st.time > std::time::Duration::ZERO);
    }

    #[test]
    fn high_budget_stays_in_memory() {
        let mut s = store(10 << 20);
        for i in 0..1000u32 {
            s.put(&i.to_le_bytes(), vec![0; 40]).unwrap();
        }
        for i in 0..1000u32 {
            s.get(&i.to_le_bytes()).unwrap();
        }
        let st = s.stats();
        assert_eq!(st.cache_misses, 0);
        assert_eq!(st.disk_writes, 0);
    }

    #[test]
    fn overwrite_then_read() {
        let mut s = store(1 << 20);
        s.put(b"k", b"v1".to_vec()).unwrap();
        s.put(b"k", b"v2".to_vec()).unwrap();
        assert_eq!(s.get(b"k").unwrap().unwrap(), b"v2");
    }
}
