//! DBO (database-related operation) accounting.
//!
//! The paper's problem analysis (§III) breaks block-validation and IBD time
//! into DBO / SV / others; these counters and timers are what the figure
//! binaries read out.

use std::time::Duration;

/// Counters and accumulated wall-clock time for database operations.
#[derive(Clone, Copy, Debug, Default)]
pub struct DboStats {
    /// `Fetch` operations (the EV+UV lookup of the baseline).
    pub fetches: u64,
    /// Fetches served from the in-memory cache.
    pub cache_hits: u64,
    /// Fetches that had to touch the disk log.
    pub cache_misses: u64,
    /// `Insert` operations (new outputs).
    pub inserts: u64,
    /// `Delete` operations (spent outputs).
    pub deletes: u64,
    /// Disk-log reads (misses plus flush-induced reads).
    pub disk_reads: u64,
    /// Disk-log writes (evictions and flushes).
    pub disk_writes: u64,
    /// Total wall-clock time spent inside DBO calls.
    pub time: Duration,
}

impl DboStats {
    /// Cache hit ratio in `[0, 1]`; 1.0 when there were no fetches.
    ///
    /// A convenience for display call sites. Exporters and reports must use
    /// [`DboStats::hit_ratio_opt`] instead: rendering an idle cache as a
    /// perfect 1.0 is misleading in machine-read output.
    pub fn hit_ratio(&self) -> f64 {
        self.hit_ratio_opt().unwrap_or(1.0)
    }

    /// Cache hit ratio, or `None` when there were no fetches to take a
    /// ratio of. Exporters render `None` as `null`/absent.
    pub fn hit_ratio_opt(&self) -> Option<f64> {
        if self.fetches == 0 {
            None
        } else {
            Some(self.cache_hits as f64 / self.fetches as f64)
        }
    }

    /// Difference since an earlier snapshot.
    pub fn since(&self, earlier: &DboStats) -> DboStats {
        DboStats {
            fetches: self.fetches - earlier.fetches,
            cache_hits: self.cache_hits - earlier.cache_hits,
            cache_misses: self.cache_misses - earlier.cache_misses,
            inserts: self.inserts - earlier.inserts,
            deletes: self.deletes - earlier.deletes,
            disk_reads: self.disk_reads - earlier.disk_reads,
            disk_writes: self.disk_writes - earlier.disk_writes,
            time: self.time - earlier.time,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_ratio_handles_zero() {
        assert_eq!(DboStats::default().hit_ratio(), 1.0);
        let s = DboStats {
            fetches: 4,
            cache_hits: 3,
            ..Default::default()
        };
        assert!((s.hit_ratio() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn hit_ratio_opt_is_none_without_fetches() {
        // An idle cache has no meaningful ratio — exporters render this as
        // null/absent rather than a perfect 1.0.
        assert_eq!(DboStats::default().hit_ratio_opt(), None);
        let s = DboStats {
            fetches: 4,
            cache_hits: 3,
            ..Default::default()
        };
        assert_eq!(s.hit_ratio_opt(), Some(0.75));
    }

    #[test]
    fn since_subtracts() {
        let early = DboStats {
            fetches: 10,
            time: Duration::from_millis(5),
            ..Default::default()
        };
        let late = DboStats {
            fetches: 25,
            time: Duration::from_millis(9),
            ..Default::default()
        };
        let d = late.since(&early);
        assert_eq!(d.fetches, 15);
        assert_eq!(d.time, Duration::from_millis(4));
    }
}
