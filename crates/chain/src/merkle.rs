//! Merkle trees with branch extraction — the *MBr* machinery of EBV.
//!
//! The tree follows Bitcoin's construction: leaves are 32-byte hashes,
//! parents are `sha256d(left || right)`, and an odd node at any level is
//! paired with itself. [`MerkleBranch`] is the authentication path EBV
//! attaches to each input; folding it from a leaf reproduces the root
//! (Existence Validation).
//!
//! Tree construction is data-parallel with rayon above a size threshold;
//! per the paper's model the miner builds the tree once per block while
//! every validator folds 10-ish-hash branches, so build cost matters for
//! the workload generator and intermediary.

use ebv_primitives::encode::{Decodable, DecodeError, Encodable, Reader};
use ebv_primitives::hash::Hash256;
use rayon::prelude::*;

/// Below this leaf count a sequential build is faster than forking.
const PAR_THRESHOLD: usize = 256;

/// Compute the Merkle root of `leaves` (Bitcoin rule: empty list is
/// disallowed; a single leaf is its own root; odd levels duplicate the last
/// node).
///
/// # Panics
/// If `leaves` is empty — blocks always contain a coinbase.
pub fn merkle_root(leaves: &[Hash256]) -> Hash256 {
    assert!(!leaves.is_empty(), "merkle tree of zero leaves");
    let mut level: Vec<Hash256> = leaves.to_vec();
    while level.len() > 1 {
        level = next_level(&level);
    }
    level[0]
}

fn next_level(level: &[Hash256]) -> Vec<Hash256> {
    let pair = |i: usize| {
        let left = &level[2 * i];
        let right = level.get(2 * i + 1).unwrap_or(left);
        Hash256::merkle_parent(left, right)
    };
    let n = level.len().div_ceil(2);
    if level.len() >= PAR_THRESHOLD {
        (0..n).into_par_iter().map(pair).collect()
    } else {
        (0..n).map(pair).collect()
    }
}

/// An authentication path from a leaf to the root.
///
/// `siblings[0]` is the sibling at the leaf level; bit `k` of `leaf_index`
/// says whether the path node at level `k` is a right child (bit set) or a
/// left child.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct MerkleBranch {
    pub leaf_index: u32,
    pub siblings: Vec<Hash256>,
}

impl MerkleBranch {
    /// Extract the branch for `leaf_index` from the full leaf set.
    ///
    /// # Panics
    /// If `leaf_index` is out of range or `leaves` is empty.
    pub fn extract(leaves: &[Hash256], leaf_index: usize) -> MerkleBranch {
        assert!(leaf_index < leaves.len(), "leaf index in range");
        let mut siblings = Vec::new();
        let mut level: Vec<Hash256> = leaves.to_vec();
        let mut idx = leaf_index;
        while level.len() > 1 {
            let sib_idx = idx ^ 1;
            let sibling = *level.get(sib_idx).unwrap_or(&level[idx]);
            siblings.push(sibling);
            level = next_level(&level);
            idx /= 2;
        }
        MerkleBranch {
            leaf_index: leaf_index as u32,
            siblings,
        }
    }

    /// Fold the branch upward from `leaf`, producing the root it implies.
    pub fn fold(&self, leaf: &Hash256) -> Hash256 {
        let mut acc = *leaf;
        let mut idx = self.leaf_index;
        for sibling in &self.siblings {
            acc = if idx & 1 == 1 {
                Hash256::merkle_parent(sibling, &acc)
            } else {
                Hash256::merkle_parent(&acc, sibling)
            };
            idx >>= 1;
        }
        acc
    }

    /// Verify that `leaf` is committed to by `root`.
    pub fn verify(&self, leaf: &Hash256, root: &Hash256) -> bool {
        self.fold(leaf) == *root
    }

    /// Serialized size in bytes (what the paper's proof-overhead concern is
    /// about: ~`32·log2(n)` per input).
    pub fn proof_size(&self) -> usize {
        self.encoded_len()
    }
}

impl Encodable for MerkleBranch {
    fn encode(&self, out: &mut Vec<u8>) {
        self.leaf_index.encode(out);
        self.siblings.encode(out);
    }
    fn encoded_len(&self) -> usize {
        4 + self.siblings.encoded_len()
    }
}

impl Decodable for MerkleBranch {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(MerkleBranch {
            leaf_index: u32::decode(r)?,
            siblings: Vec::decode(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ebv_primitives::hash::sha256d;

    fn leaves(n: usize) -> Vec<Hash256> {
        (0..n).map(|i| sha256d(&(i as u64).to_le_bytes())).collect()
    }

    #[test]
    fn single_leaf_is_root() {
        let l = leaves(1);
        assert_eq!(merkle_root(&l), l[0]);
        let b = MerkleBranch::extract(&l, 0);
        assert!(b.siblings.is_empty());
        assert!(b.verify(&l[0], &l[0]));
    }

    #[test]
    fn two_leaves() {
        let l = leaves(2);
        let root = merkle_root(&l);
        assert_eq!(root, Hash256::merkle_parent(&l[0], &l[1]));
    }

    #[test]
    fn odd_level_duplicates_last() {
        let l = leaves(3);
        let root = merkle_root(&l);
        let h01 = Hash256::merkle_parent(&l[0], &l[1]);
        let h22 = Hash256::merkle_parent(&l[2], &l[2]);
        assert_eq!(root, Hash256::merkle_parent(&h01, &h22));
    }

    #[test]
    fn branches_verify_for_all_sizes_and_positions() {
        for n in [1usize, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 33, 100] {
            let l = leaves(n);
            let root = merkle_root(&l);
            for i in 0..n {
                let b = MerkleBranch::extract(&l, i);
                assert!(b.verify(&l[i], &root), "n={n} i={i}");
                assert_eq!(b.siblings.len(), tree_height(n), "n={n} i={i}");
            }
        }
    }

    fn tree_height(n: usize) -> usize {
        if n <= 1 {
            0
        } else {
            (n - 1).ilog2() as usize + 1
        }
    }

    #[test]
    fn branch_rejects_wrong_leaf() {
        let l = leaves(8);
        let root = merkle_root(&l);
        let b = MerkleBranch::extract(&l, 3);
        assert!(!b.verify(&l[4], &root));
        assert!(!b.verify(&sha256d(b"forged"), &root));
    }

    #[test]
    fn branch_rejects_wrong_root() {
        let l = leaves(8);
        let b = MerkleBranch::extract(&l, 3);
        assert!(!b.verify(&l[3], &sha256d(b"other root")));
    }

    #[test]
    fn branch_rejects_tampered_sibling() {
        let l = leaves(16);
        let root = merkle_root(&l);
        let mut b = MerkleBranch::extract(&l, 5);
        b.siblings[2] = sha256d(b"tampered");
        assert!(!b.verify(&l[5], &root));
    }

    #[test]
    fn branch_rejects_wrong_index() {
        // Moving the leaf to a different claimed position must fail (this is
        // what makes fake `position` values detectable via the MBr).
        let l = leaves(8);
        let root = merkle_root(&l);
        let mut b = MerkleBranch::extract(&l, 3);
        b.leaf_index = 2;
        assert!(!b.verify(&l[3], &root));
    }

    #[test]
    fn parallel_build_matches_sequential() {
        // Cross the PAR_THRESHOLD and compare against a from-scratch fold.
        let l = leaves(1000);
        let root = merkle_root(&l);
        let mut level = l.clone();
        while level.len() > 1 {
            let mut next = Vec::new();
            for pair in level.chunks(2) {
                let right = pair.get(1).unwrap_or(&pair[0]);
                next.push(Hash256::merkle_parent(&pair[0], right));
            }
            level = next;
        }
        assert_eq!(root, level[0]);
    }

    #[test]
    fn encode_round_trip() {
        let l = leaves(20);
        let b = MerkleBranch::extract(&l, 11);
        let bytes = b.to_bytes();
        assert_eq!(bytes.len(), b.proof_size());
        assert_eq!(MerkleBranch::from_bytes(&bytes).unwrap(), b);
    }
}
