//! Block assembly and mining ("packaging" in the paper's terms).

use crate::block::{Block, BlockHeader};
use crate::merkle::merkle_root;
use crate::transaction::{OutPoint, Transaction, TxIn, TxOut};
use ebv_primitives::hash::Hash256;
use ebv_script::{Builder as ScriptBuilder, Script};

/// Coinbase subsidy paid to the miner in generated chains (fees are
/// ignored; they don't affect any measured quantity).
pub const BLOCK_SUBSIDY: u64 = 50_0000_0000;

/// Build the coinbase transaction for `height`. The height is pushed into
/// the unlocking script so coinbase txids are unique (BIP 34's fix for
/// duplicate coinbases).
pub fn coinbase_tx(height: u32, reward_script: Script, extra_outputs: Vec<TxOut>) -> Transaction {
    let mut outputs = vec![TxOut::new(BLOCK_SUBSIDY, reward_script)];
    outputs.extend(extra_outputs);
    Transaction {
        version: 1,
        inputs: vec![TxIn::new(
            OutPoint::NULL,
            ScriptBuilder::new().push_int(height as i64).into_script(),
        )],
        outputs,
        lock_time: 0,
    }
}

/// Assemble and mine a block on `prev_block_hash` containing `coinbase`
/// followed by `transactions`.
///
/// `bits` is the leading-zero-bits difficulty; generated chains use a small
/// value so mining is a handful of hash attempts.
pub fn build_block(
    prev_block_hash: Hash256,
    coinbase: Transaction,
    transactions: Vec<Transaction>,
    time: u32,
    bits: u32,
) -> Block {
    debug_assert!(coinbase.is_coinbase());
    let mut txs = Vec::with_capacity(1 + transactions.len());
    txs.push(coinbase);
    txs.extend(transactions);
    let leaves: Vec<Hash256> = txs.iter().map(Transaction::txid).collect();
    let mut header = BlockHeader {
        version: 1,
        prev_block_hash,
        merkle_root: merkle_root(&leaves),
        time,
        bits,
        nonce: 0,
    };
    while !header.meets_target() {
        header.nonce = header.nonce.checked_add(1).expect("nonce space sufficient");
    }
    Block {
        header,
        transactions: txs,
    }
}

/// The deterministic genesis block shared by all generated chains.
pub fn genesis_block() -> Block {
    let coinbase = coinbase_tx(0, Script::new(), Vec::new());
    build_block(Hash256::ZERO, coinbase, Vec::new(), 1231006505, 0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn genesis_is_deterministic_and_valid() {
        let g1 = genesis_block();
        let g2 = genesis_block();
        assert_eq!(g1.header.hash(), g2.header.hash());
        assert!(g1.check_structure().is_ok());
        assert_eq!(g1.transactions.len(), 1);
    }

    #[test]
    fn built_block_passes_structure_checks() {
        let g = genesis_block();
        let cb = coinbase_tx(1, Script::new(), Vec::new());
        let b = build_block(g.header.hash(), cb, Vec::new(), 1000, 4);
        assert!(b.check_structure().is_ok());
        assert_eq!(b.header.prev_block_hash, g.header.hash());
    }

    #[test]
    fn coinbase_txids_differ_by_height() {
        let a = coinbase_tx(1, Script::new(), Vec::new());
        let b = coinbase_tx(2, Script::new(), Vec::new());
        assert_ne!(a.txid(), b.txid());
    }

    #[test]
    fn extra_outputs_are_appended() {
        let cb = coinbase_tx(5, Script::new(), vec![TxOut::new(7, Script::new())]);
        assert_eq!(cb.outputs.len(), 2);
        assert_eq!(cb.outputs[0].value, BLOCK_SUBSIDY);
        assert_eq!(cb.outputs[1].value, 7);
    }
}
