//! In-memory chain storage: the append-only block file plus the header
//! index every node keeps.
//!
//! Headers (80 bytes each) are always memory-resident — in EBV they are the
//! trust anchor for Existence Validation. Full blocks are kept too; block
//! *bodies* are not part of the status data whose memory footprint the
//! paper measures (they live in block files on disk in real deployments,
//! identical for Bitcoin and EBV).

use crate::block::{Block, BlockHeader};
use ebv_primitives::hash::Hash256;
use std::collections::HashMap;

/// Errors when appending to the chain.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ChainError {
    /// The block's `prev_block_hash` does not match the current tip.
    NotOnTip,
    /// Queried height is beyond the tip.
    UnknownHeight(u32),
}

impl std::fmt::Display for ChainError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ChainError::NotOnTip => write!(f, "block does not extend the tip"),
            ChainError::UnknownHeight(h) => write!(f, "no block at height {h}"),
        }
    }
}

impl std::error::Error for ChainError {}

/// Linear main-chain storage (no reorg support — the experiments replay
/// fixed chains, matching the paper's IBD setting).
pub struct ChainStore {
    blocks: Vec<Block>,
    by_hash: HashMap<Hash256, u32>,
}

impl ChainStore {
    /// Start a chain from its genesis block.
    pub fn new(genesis: Block) -> ChainStore {
        let mut store = ChainStore {
            blocks: Vec::new(),
            by_hash: HashMap::new(),
        };
        store.by_hash.insert(genesis.header.hash(), 0);
        store.blocks.push(genesis);
        store
    }

    /// Number of blocks (tip height + 1).
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    pub fn is_empty(&self) -> bool {
        false // a chain always has its genesis
    }

    /// Height of the tip.
    pub fn tip_height(&self) -> u32 {
        (self.blocks.len() - 1) as u32
    }

    /// Hash of the tip block.
    pub fn tip_hash(&self) -> Hash256 {
        self.blocks
            .last()
            .expect("genesis always present")
            .header
            .hash()
    }

    /// Append a block that must extend the tip.
    pub fn append(&mut self, block: Block) -> Result<u32, ChainError> {
        if block.header.prev_block_hash != self.tip_hash() {
            return Err(ChainError::NotOnTip);
        }
        let height = self.blocks.len() as u32;
        self.by_hash.insert(block.header.hash(), height);
        self.blocks.push(block);
        Ok(height)
    }

    /// The block at `height`.
    pub fn block_at(&self, height: u32) -> Result<&Block, ChainError> {
        self.blocks
            .get(height as usize)
            .ok_or(ChainError::UnknownHeight(height))
    }

    /// The header at `height` (the EV lookup).
    pub fn header_at(&self, height: u32) -> Result<&BlockHeader, ChainError> {
        Ok(&self.block_at(height)?.header)
    }

    /// Look up a block's height by hash.
    pub fn height_of(&self, hash: &Hash256) -> Option<u32> {
        self.by_hash.get(hash).copied()
    }

    /// Iterate blocks in height order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &Block)> {
        self.blocks.iter().enumerate().map(|(h, b)| (h as u32, b))
    }

    /// Total serialized size of all headers — part of the (shared) memory
    /// baseline both systems carry.
    pub fn headers_size(&self) -> usize {
        self.blocks.len() * 80
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{build_block, coinbase_tx, genesis_block};
    use ebv_script::Script;

    fn extend(store: &mut ChainStore, n: usize) {
        for _ in 0..n {
            let h = store.tip_height() + 1;
            let cb = coinbase_tx(h, Script::new(), Vec::new());
            let b = build_block(store.tip_hash(), cb, Vec::new(), h, 0);
            store.append(b).unwrap();
        }
    }

    #[test]
    fn genesis_chain() {
        let store = ChainStore::new(genesis_block());
        assert_eq!(store.len(), 1);
        assert_eq!(store.tip_height(), 0);
        assert_eq!(store.height_of(&store.tip_hash()), Some(0));
    }

    #[test]
    fn append_and_lookup() {
        let mut store = ChainStore::new(genesis_block());
        extend(&mut store, 5);
        assert_eq!(store.tip_height(), 5);
        for h in 0..=5u32 {
            let block = store.block_at(h).unwrap();
            assert_eq!(store.height_of(&block.header.hash()), Some(h));
            assert_eq!(store.header_at(h).unwrap(), &block.header);
        }
        assert_eq!(store.headers_size(), 6 * 80);
    }

    #[test]
    fn rejects_non_tip_block() {
        let mut store = ChainStore::new(genesis_block());
        extend(&mut store, 2);
        // A block pointing at genesis, not the tip.
        let cb = coinbase_tx(99, Script::new(), Vec::new());
        let orphan = build_block(
            store.block_at(0).unwrap().header.hash(),
            cb,
            Vec::new(),
            9,
            0,
        );
        assert_eq!(store.append(orphan), Err(ChainError::NotOnTip));
    }

    #[test]
    fn unknown_height_errors() {
        let store = ChainStore::new(genesis_block());
        assert_eq!(store.block_at(3).unwrap_err(), ChainError::UnknownHeight(3));
    }
}
