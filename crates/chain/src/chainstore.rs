//! In-memory chain storage: the append-only block file plus the header
//! index every node keeps.
//!
//! Headers (80 bytes each) are always memory-resident — in EBV they are the
//! trust anchor for Existence Validation. Full blocks are kept too; block
//! *bodies* are not part of the status data whose memory footprint the
//! paper measures (they live in block files on disk in real deployments,
//! identical for Bitcoin and EBV).

use crate::block::{Block, BlockHeader};
use ebv_primitives::hash::Hash256;
use std::collections::HashMap;

/// Errors when appending to the chain.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ChainError {
    /// The block's `prev_block_hash` does not match the current tip.
    NotOnTip,
    /// Queried height is beyond the tip.
    UnknownHeight(u32),
    /// No stored block (main or side) with this hash.
    UnknownBlock(Hash256),
    /// A side block's ancestry never reaches the main chain.
    Detached(Hash256),
    /// The candidate branch would not make the chain longer.
    NotBetter { current: u32, candidate: u32 },
}

impl std::fmt::Display for ChainError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ChainError::NotOnTip => write!(f, "block does not extend the tip"),
            ChainError::UnknownHeight(h) => write!(f, "no block at height {h}"),
            ChainError::UnknownBlock(h) => write!(f, "no stored block with hash {h}"),
            ChainError::Detached(h) => {
                write!(f, "side branch ending at {h} never reaches the main chain")
            }
            ChainError::NotBetter { current, candidate } => write!(
                f,
                "candidate branch ({candidate} blocks past the fork) is not longer \
                 than the current one ({current})"
            ),
        }
    }
}

impl std::error::Error for ChainError {}

/// Main-chain storage plus a side-block pool for fork tracking.
///
/// The main chain stays a dense vector (the EV lookup path is an array
/// index); competing blocks live in `side`, keyed by their own hash, until
/// [`reorg_to_side`](ChainStore::reorg_to_side) promotes a branch.
pub struct ChainStore {
    blocks: Vec<Block>,
    by_hash: HashMap<Hash256, u32>,
    /// Off-chain blocks by their header hash (fork candidates, and main
    /// blocks demoted by a reorg).
    side: HashMap<Hash256, Block>,
}

impl ChainStore {
    /// Start a chain from its genesis block.
    pub fn new(genesis: Block) -> ChainStore {
        let mut store = ChainStore {
            blocks: Vec::new(),
            by_hash: HashMap::new(),
            side: HashMap::new(),
        };
        store.by_hash.insert(genesis.header.hash(), 0);
        store.blocks.push(genesis);
        store
    }

    /// Number of main-chain blocks (tip height + 1).
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty() // never true: construction requires genesis
    }

    /// Height of the tip.
    pub fn tip_height(&self) -> u32 {
        (self.blocks.len() - 1) as u32
    }

    /// Hash of the tip block.
    pub fn tip_hash(&self) -> Hash256 {
        self.blocks
            .last()
            .expect("genesis always present")
            .header
            .hash()
    }

    /// Append a block that must extend the tip.
    pub fn append(&mut self, block: Block) -> Result<u32, ChainError> {
        if block.header.prev_block_hash != self.tip_hash() {
            return Err(ChainError::NotOnTip);
        }
        let height = self.blocks.len() as u32;
        self.by_hash.insert(block.header.hash(), height);
        self.blocks.push(block);
        Ok(height)
    }

    /// The block at `height`.
    pub fn block_at(&self, height: u32) -> Result<&Block, ChainError> {
        self.blocks
            .get(height as usize)
            .ok_or(ChainError::UnknownHeight(height))
    }

    /// The header at `height` (the EV lookup).
    pub fn header_at(&self, height: u32) -> Result<&BlockHeader, ChainError> {
        Ok(&self.block_at(height)?.header)
    }

    /// Look up a block's height by hash.
    pub fn height_of(&self, hash: &Hash256) -> Option<u32> {
        self.by_hash.get(hash).copied()
    }

    /// Iterate blocks in height order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &Block)> {
        self.blocks.iter().enumerate().map(|(h, b)| (h as u32, b))
    }

    /// Total serialized size of all headers — part of the (shared) memory
    /// baseline both systems carry.
    pub fn headers_size(&self) -> usize {
        self.blocks.len() * 80
    }

    /// Pop the tip block off the main chain into the side pool. Returns
    /// its hash, or `None` if only genesis remains.
    pub fn disconnect_tip(&mut self) -> Option<Hash256> {
        if self.blocks.len() <= 1 {
            return None;
        }
        let block = self.blocks.pop()?;
        let hash = block.header.hash();
        self.by_hash.remove(&hash);
        self.side.insert(hash, block);
        Some(hash)
    }

    /// Store a block that does not (currently) extend the tip. It becomes
    /// reorg material for [`reorg_to_side`](ChainStore::reorg_to_side).
    /// A block already on the main chain is ignored.
    pub fn add_side_block(&mut self, block: Block) {
        let hash = block.header.hash();
        if self.by_hash.contains_key(&hash) {
            return;
        }
        self.side.insert(hash, block);
    }

    /// A stored side block, by hash.
    pub fn side_block(&self, hash: &Hash256) -> Option<&Block> {
        self.side.get(hash)
    }

    /// Number of side blocks currently held.
    pub fn side_count(&self) -> usize {
        self.side.len()
    }

    /// Walk side blocks back from `tip` until the ancestry reaches the
    /// main chain. Returns the fork height and the branch hashes in
    /// ascending height order (fork+1 first, `tip` last).
    pub fn fork_path(&self, tip: &Hash256) -> Result<(u32, Vec<Hash256>), ChainError> {
        let mut path = Vec::new();
        let mut cursor = *tip;
        loop {
            let Some(block) = self.side.get(&cursor) else {
                return if path.is_empty() {
                    Err(ChainError::UnknownBlock(cursor))
                } else {
                    Err(ChainError::Detached(*tip))
                };
            };
            path.push(cursor);
            let parent = block.header.prev_block_hash;
            if let Some(height) = self.by_hash.get(&parent) {
                path.reverse();
                return Ok((*height, path));
            }
            cursor = parent;
        }
    }

    /// Switch the main chain onto the side branch ending at `tip`,
    /// demoting the displaced main blocks to the side pool. The branch
    /// must be strictly longer than what it replaces (longest-chain rule
    /// at `bits = 0`, where work is proportional to length). Returns the
    /// new tip height.
    ///
    /// This is pure storage bookkeeping: *validation* of the branch is the
    /// business of the node driving the store.
    pub fn reorg_to_side(&mut self, tip: &Hash256) -> Result<u32, ChainError> {
        let (fork, path) = self.fork_path(tip)?;
        let current = self.tip_height() - fork;
        let candidate = path.len() as u32;
        if candidate <= current {
            return Err(ChainError::NotBetter { current, candidate });
        }
        while self.tip_height() > fork {
            self.disconnect_tip();
        }
        for hash in &path {
            let block = self
                .side
                .remove(hash)
                .ok_or(ChainError::UnknownBlock(*hash))?;
            let height = self.blocks.len() as u32;
            self.by_hash.insert(*hash, height);
            self.blocks.push(block);
        }
        Ok(self.tip_height())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{build_block, coinbase_tx, genesis_block};
    use ebv_script::Script;

    fn extend(store: &mut ChainStore, n: usize) {
        for _ in 0..n {
            let h = store.tip_height() + 1;
            let cb = coinbase_tx(h, Script::new(), Vec::new());
            let b = build_block(store.tip_hash(), cb, Vec::new(), h, 0);
            store.append(b).unwrap();
        }
    }

    #[test]
    fn genesis_chain() {
        let store = ChainStore::new(genesis_block());
        assert_eq!(store.len(), 1);
        assert_eq!(store.tip_height(), 0);
        assert_eq!(store.height_of(&store.tip_hash()), Some(0));
    }

    #[test]
    fn append_and_lookup() {
        let mut store = ChainStore::new(genesis_block());
        extend(&mut store, 5);
        assert_eq!(store.tip_height(), 5);
        for h in 0..=5u32 {
            let block = store.block_at(h).unwrap();
            assert_eq!(store.height_of(&block.header.hash()), Some(h));
            assert_eq!(store.header_at(h).unwrap(), &block.header);
        }
        assert_eq!(store.headers_size(), 6 * 80);
    }

    #[test]
    fn rejects_non_tip_block() {
        let mut store = ChainStore::new(genesis_block());
        extend(&mut store, 2);
        // A block pointing at genesis, not the tip.
        let cb = coinbase_tx(99, Script::new(), Vec::new());
        let orphan = build_block(
            store.block_at(0).unwrap().header.hash(),
            cb,
            Vec::new(),
            9,
            0,
        );
        assert_eq!(store.append(orphan), Err(ChainError::NotOnTip));
    }

    #[test]
    fn unknown_height_errors() {
        let store = ChainStore::new(genesis_block());
        assert_eq!(store.block_at(3).unwrap_err(), ChainError::UnknownHeight(3));
    }

    #[test]
    fn disconnect_demotes_tip_to_side_pool() {
        let mut store = ChainStore::new(genesis_block());
        extend(&mut store, 3);
        let old_tip = store.tip_hash();
        assert_eq!(store.disconnect_tip(), Some(old_tip));
        assert_eq!(store.tip_height(), 2);
        assert!(store.side_block(&old_tip).is_some());
        assert_eq!(store.height_of(&old_tip), None);
        // Genesis is untouchable.
        store.disconnect_tip();
        store.disconnect_tip();
        assert_eq!(store.disconnect_tip(), None);
        assert_eq!(store.tip_height(), 0);
    }

    #[test]
    fn fork_path_and_reorg_switch_branches() {
        let mut store = ChainStore::new(genesis_block());
        extend(&mut store, 3); // main: 0..=3
        let displaced = [
            store.block_at(2).unwrap().header.hash(),
            store.block_at(3).unwrap().header.hash(),
        ];

        // Side branch of 4 blocks forking at height 1.
        let mut prev = store.block_at(1).unwrap().header.hash();
        let mut side = Vec::new();
        for k in 0..4u32 {
            let cb = coinbase_tx(2 + k, Script::new(), Vec::new());
            let b = build_block(prev, cb, Vec::new(), 99, 0);
            prev = b.header.hash();
            side.push(prev);
            store.add_side_block(b);
        }

        let (fork, path) = store.fork_path(&side[3]).unwrap();
        assert_eq!(fork, 1);
        assert_eq!(path, side);

        assert_eq!(store.reorg_to_side(&side[3]), Ok(5));
        assert_eq!(store.tip_hash(), side[3]);
        for (k, hash) in side.iter().enumerate() {
            assert_eq!(store.height_of(hash), Some(2 + k as u32));
        }
        // The displaced main blocks wait in the side pool for a reorg back.
        for hash in &displaced {
            assert!(store.side_block(hash).is_some());
        }

        // Reorging back onto the (now shorter) old branch is refused.
        assert_eq!(
            store.reorg_to_side(&displaced[1]),
            Err(ChainError::NotBetter {
                current: 4,
                candidate: 2
            })
        );
    }

    #[test]
    fn fork_path_rejects_unknown_and_detached() {
        let mut store = ChainStore::new(genesis_block());
        extend(&mut store, 2);
        assert_eq!(
            store.fork_path(&Hash256::ZERO),
            Err(ChainError::UnknownBlock(Hash256::ZERO))
        );
        // A side block whose ancestry never reaches the main chain.
        let cb = coinbase_tx(9, Script::new(), Vec::new());
        let orphan = build_block(Hash256::from_bytes([7; 32]), cb, Vec::new(), 1, 0);
        let orphan_hash = orphan.header.hash();
        store.add_side_block(orphan);
        assert_eq!(
            store.fork_path(&orphan_hash),
            Err(ChainError::Detached(orphan_hash))
        );
    }
}
