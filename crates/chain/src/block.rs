//! Block headers, blocks and proof-of-work.
//!
//! Headers are the only chain data an EBV validator needs on hand for
//! Existence Validation, so they are deliberately small (80 bytes, as in
//! Bitcoin). Proof-of-work uses a leading-zero-bits target; the workload
//! generator mines at trivial difficulty, but validation checks the
//! committed difficulty for real.

use crate::merkle::merkle_root;
use crate::transaction::Transaction;
use ebv_primitives::encode::{Decodable, DecodeError, Encodable, Reader};
use ebv_primitives::hash::{sha256d, Hash256};

/// A block header.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct BlockHeader {
    pub version: u32,
    pub prev_block_hash: Hash256,
    pub merkle_root: Hash256,
    /// Seconds since epoch (synthetic time in generated chains).
    pub time: u32,
    /// Required number of leading zero bits in the block hash.
    pub bits: u32,
    pub nonce: u32,
}

impl BlockHeader {
    /// The block hash: double-SHA256 of the 80-byte header serialization.
    pub fn hash(&self) -> Hash256 {
        sha256d(&self.to_bytes())
    }

    /// Check the proof-of-work claim: the hash must have at least `bits`
    /// leading zero bits.
    pub fn meets_target(&self) -> bool {
        leading_zero_bits(&self.hash()) >= self.bits
    }
}

/// Count leading zero bits of a hash (big-endian byte order).
pub fn leading_zero_bits(h: &Hash256) -> u32 {
    let mut count = 0u32;
    for &b in h.as_bytes() {
        if b == 0 {
            count += 8;
        } else {
            count += b.leading_zeros();
            break;
        }
    }
    count
}

impl Encodable for BlockHeader {
    fn encode(&self, out: &mut Vec<u8>) {
        self.version.encode(out);
        self.prev_block_hash.encode(out);
        self.merkle_root.encode(out);
        self.time.encode(out);
        self.bits.encode(out);
        self.nonce.encode(out);
    }
    fn encoded_len(&self) -> usize {
        80
    }
}

impl Decodable for BlockHeader {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(BlockHeader {
            version: u32::decode(r)?,
            prev_block_hash: Hash256::decode(r)?,
            merkle_root: Hash256::decode(r)?,
            time: u32::decode(r)?,
            bits: u32::decode(r)?,
            nonce: u32::decode(r)?,
        })
    }
}

/// A baseline-format block.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Block {
    pub header: BlockHeader,
    pub transactions: Vec<Transaction>,
}

impl Block {
    /// The Merkle root implied by the transactions (leaves are txids).
    pub fn compute_merkle_root(&self) -> Hash256 {
        let leaves: Vec<Hash256> = self.transactions.iter().map(Transaction::txid).collect();
        merkle_root(&leaves)
    }

    /// Structural checks that do not need any chain context: non-empty,
    /// first (and only first) transaction is coinbase, Merkle root matches,
    /// PoW target met.
    pub fn check_structure(&self) -> Result<(), BlockStructureError> {
        if self.transactions.is_empty() {
            return Err(BlockStructureError::Empty);
        }
        if !self.transactions[0].is_coinbase() {
            return Err(BlockStructureError::FirstNotCoinbase);
        }
        if self.transactions[1..].iter().any(Transaction::is_coinbase) {
            return Err(BlockStructureError::ExtraCoinbase);
        }
        if self.compute_merkle_root() != self.header.merkle_root {
            return Err(BlockStructureError::MerkleMismatch);
        }
        if !self.header.meets_target() {
            return Err(BlockStructureError::InsufficientWork);
        }
        Ok(())
    }

    /// Total number of inputs, excluding the coinbase input — the quantity
    /// the paper plots against validation time (Figs. 4b, 15).
    pub fn input_count(&self) -> usize {
        self.transactions
            .iter()
            .skip(1)
            .map(|tx| tx.inputs.len())
            .sum()
    }

    /// Total number of outputs across all transactions (bit-vector width).
    pub fn output_count(&self) -> usize {
        self.transactions.iter().map(|tx| tx.outputs.len()).sum()
    }
}

impl Encodable for Block {
    fn encode(&self, out: &mut Vec<u8>) {
        self.header.encode(out);
        self.transactions.encode(out);
    }
    fn encoded_len(&self) -> usize {
        80 + self.transactions.encoded_len()
    }
}

impl Decodable for Block {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(Block {
            header: BlockHeader::decode(r)?,
            transactions: Vec::decode(r)?,
        })
    }
}

/// Context-free block validity failures.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum BlockStructureError {
    Empty,
    FirstNotCoinbase,
    ExtraCoinbase,
    MerkleMismatch,
    InsufficientWork,
}

impl std::fmt::Display for BlockStructureError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{self:?}")
    }
}

impl std::error::Error for BlockStructureError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transaction::{OutPoint, TxIn, TxOut};
    use ebv_script::{Builder, Script};

    fn coinbase(height: u32) -> Transaction {
        Transaction {
            version: 1,
            inputs: vec![TxIn::new(
                OutPoint::NULL,
                Builder::new().push_int(height as i64).into_script(),
            )],
            outputs: vec![TxOut::new(50_0000_0000, Script::new())],
            lock_time: 0,
        }
    }

    fn spend_tx() -> Transaction {
        Transaction {
            version: 1,
            inputs: vec![TxIn::new(OutPoint::new(sha256d(b"prev"), 0), Script::new())],
            outputs: vec![TxOut::new(1, Script::new()), TxOut::new(2, Script::new())],
            lock_time: 0,
        }
    }

    fn mined_block(txs: Vec<Transaction>, bits: u32) -> Block {
        let leaves: Vec<Hash256> = txs.iter().map(Transaction::txid).collect();
        let mut header = BlockHeader {
            version: 1,
            prev_block_hash: Hash256::ZERO,
            merkle_root: merkle_root(&leaves),
            time: 0,
            bits,
            nonce: 0,
        };
        while !header.meets_target() {
            header.nonce += 1;
        }
        Block {
            header,
            transactions: txs,
        }
    }

    #[test]
    fn header_is_80_bytes() {
        let b = mined_block(vec![coinbase(0)], 0);
        assert_eq!(b.header.to_bytes().len(), 80);
        assert_eq!(b.header.encoded_len(), 80);
    }

    #[test]
    fn header_round_trip() {
        let b = mined_block(vec![coinbase(0)], 4);
        let h2 = BlockHeader::from_bytes(&b.header.to_bytes()).unwrap();
        assert_eq!(h2, b.header);
        assert_eq!(h2.hash(), b.header.hash());
    }

    #[test]
    fn block_round_trip() {
        let b = mined_block(vec![coinbase(1), spend_tx()], 4);
        assert_eq!(Block::from_bytes(&b.to_bytes()).unwrap(), b);
    }

    #[test]
    fn structure_ok() {
        let b = mined_block(vec![coinbase(1), spend_tx()], 4);
        assert!(b.check_structure().is_ok());
        assert_eq!(b.input_count(), 1);
        assert_eq!(b.output_count(), 3);
    }

    #[test]
    fn structure_rejects_missing_coinbase() {
        let b = mined_block(vec![spend_tx()], 0);
        assert_eq!(
            b.check_structure(),
            Err(BlockStructureError::FirstNotCoinbase)
        );
    }

    #[test]
    fn structure_rejects_extra_coinbase() {
        let b = mined_block(vec![coinbase(1), coinbase(2)], 0);
        assert_eq!(b.check_structure(), Err(BlockStructureError::ExtraCoinbase));
    }

    #[test]
    fn structure_rejects_merkle_mismatch() {
        let mut b = mined_block(vec![coinbase(1), spend_tx()], 0);
        b.header.merkle_root = sha256d(b"wrong");
        // Re-mining not needed at bits=0; the merkle check fires first.
        assert_eq!(
            b.check_structure(),
            Err(BlockStructureError::MerkleMismatch)
        );
    }

    #[test]
    fn structure_rejects_insufficient_work() {
        let mut b = mined_block(vec![coinbase(1)], 0);
        // Demand far more work than the found nonce provides.
        b.header.bits = 200;
        // Keep merkle valid; only PoW fails (hash has < 200 zero bits with
        // overwhelming probability).
        assert_eq!(
            b.check_structure(),
            Err(BlockStructureError::InsufficientWork)
        );
    }

    #[test]
    fn leading_zero_bits_counts() {
        assert_eq!(leading_zero_bits(&Hash256::ZERO), 256);
        let mut h = [0u8; 32];
        h[0] = 0x01;
        assert_eq!(leading_zero_bits(&Hash256::from_bytes(h)), 7);
        h[0] = 0x80;
        assert_eq!(leading_zero_bits(&Hash256::from_bytes(h)), 0);
        h[0] = 0;
        h[1] = 0x10;
        assert_eq!(leading_zero_bits(&Hash256::from_bytes(h)), 11);
    }

    #[test]
    fn mining_finds_target() {
        let b = mined_block(vec![coinbase(9)], 8);
        assert!(leading_zero_bits(&b.header.hash()) >= 8);
    }
}
