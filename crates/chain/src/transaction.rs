//! Baseline (Bitcoin-format) transactions.
//!
//! A transaction spends previous outputs by `(txid, vout)` outpoint and
//! creates new outputs, each locked by a script. The legacy SIGHASH_ALL
//! digest algorithm binds signatures to the transaction.

use ebv_primitives::encode::{write_varint, Decodable, DecodeError, Encodable, Reader};
use ebv_primitives::hash::{sha256, sha256d, Hash256, Sha256};
use ebv_script::Script;

/// Reference to a previous transaction output.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct OutPoint {
    /// Txid of the transaction that created the output.
    pub txid: Hash256,
    /// Index of the output within that transaction.
    pub vout: u32,
}

impl OutPoint {
    /// The null outpoint used by coinbase inputs.
    pub const NULL: OutPoint = OutPoint {
        txid: Hash256::ZERO,
        vout: u32::MAX,
    };

    pub fn new(txid: Hash256, vout: u32) -> OutPoint {
        OutPoint { txid, vout }
    }

    /// Whether this is the coinbase null outpoint.
    pub fn is_null(&self) -> bool {
        *self == OutPoint::NULL
    }

    /// The 36-byte database key used by the baseline UTXO set.
    pub fn to_key(&self) -> [u8; 36] {
        let mut out = [0u8; 36];
        out[..32].copy_from_slice(self.txid.as_bytes());
        out[32..].copy_from_slice(&self.vout.to_le_bytes());
        out
    }
}

impl Encodable for OutPoint {
    fn encode(&self, out: &mut Vec<u8>) {
        self.txid.encode(out);
        self.vout.encode(out);
    }
    fn encoded_len(&self) -> usize {
        36
    }
}

impl Decodable for OutPoint {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(OutPoint {
            txid: Hash256::decode(r)?,
            vout: u32::decode(r)?,
        })
    }
}

/// A transaction input: outpoint plus unlocking script (*Us*).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct TxIn {
    pub prevout: OutPoint,
    pub unlocking_script: Script,
    pub sequence: u32,
}

impl TxIn {
    pub fn new(prevout: OutPoint, unlocking_script: Script) -> TxIn {
        TxIn {
            prevout,
            unlocking_script,
            sequence: u32::MAX,
        }
    }
}

impl Encodable for TxIn {
    fn encode(&self, out: &mut Vec<u8>) {
        self.prevout.encode(out);
        self.unlocking_script.encode(out);
        self.sequence.encode(out);
    }
    fn encoded_len(&self) -> usize {
        36 + self.unlocking_script.encoded_len() + 4
    }
}

impl Decodable for TxIn {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(TxIn {
            prevout: OutPoint::decode(r)?,
            unlocking_script: Script::decode(r)?,
            sequence: u32::decode(r)?,
        })
    }
}

/// A transaction output: amount plus locking script (*Ls*).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct TxOut {
    /// Amount in base units ("satoshis").
    pub value: u64,
    pub locking_script: Script,
}

impl TxOut {
    pub fn new(value: u64, locking_script: Script) -> TxOut {
        TxOut {
            value,
            locking_script,
        }
    }
}

impl Encodable for TxOut {
    fn encode(&self, out: &mut Vec<u8>) {
        self.value.encode(out);
        self.locking_script.encode(out);
    }
    fn encoded_len(&self) -> usize {
        8 + self.locking_script.encoded_len()
    }
}

impl Decodable for TxOut {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(TxOut {
            value: u64::decode(r)?,
            locking_script: Script::decode(r)?,
        })
    }
}

/// A baseline transaction.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Transaction {
    pub version: u32,
    pub inputs: Vec<TxIn>,
    pub outputs: Vec<TxOut>,
    pub lock_time: u32,
}

/// The only sighash type this chain uses.
pub const SIGHASH_ALL: u8 = 0x01;

impl Transaction {
    /// The transaction id: double-SHA256 of the full serialization.
    pub fn txid(&self) -> Hash256 {
        sha256d(&self.to_bytes())
    }

    /// Whether this is a coinbase transaction (single null-outpoint input).
    pub fn is_coinbase(&self) -> bool {
        self.inputs.len() == 1 && self.inputs[0].prevout.is_null()
    }

    /// Total output value. Saturates on (invalid) overflowing totals so the
    /// caller's `sum(in) >= sum(out)` check fails safely.
    pub fn total_output_value(&self) -> u64 {
        self.outputs
            .iter()
            .fold(0u64, |acc, o| acc.saturating_add(o.value))
    }

    /// Legacy SIGHASH_ALL digest for signing `input_index`, which spends an
    /// output locked by `lock_script`: every input's script is cleared
    /// except the signed input, which carries the locking script; the
    /// 4-byte sighash type is appended.
    pub fn sighash(&self, input_index: usize, lock_script: &Script) -> Hash256 {
        assert!(input_index < self.inputs.len(), "input index in range");
        let mut buf = Vec::with_capacity(self.encoded_len() + lock_script.len() + 8);
        self.version.encode(&mut buf);
        write_varint(&mut buf, self.inputs.len() as u64);
        for (i, input) in self.inputs.iter().enumerate() {
            input.prevout.encode(&mut buf);
            if i == input_index {
                lock_script.encode(&mut buf);
            } else {
                Script::new().encode(&mut buf);
            }
            input.sequence.encode(&mut buf);
        }
        self.outputs.encode(&mut buf);
        self.lock_time.encode(&mut buf);
        (SIGHASH_ALL as u32).encode(&mut buf);
        sha256d(&buf)
    }
}

/// The signing digest shared by the baseline and EBV transaction formats.
///
/// It commits to the coordinates of every spent output — `(creation
/// height, absolute position in that block)` — plus the new outputs, the
/// lock time and the signed input's index. Committing to coordinates
/// rather than `(txid, vout)` outpoints makes one signature valid in both
/// representations of the same logical transaction, which is what lets the
/// intermediary node reconstruct EBV blocks from baseline blocks without
/// holding any private keys (the paper's §VI-A setup; see DESIGN.md §4).
pub fn spend_sighash(
    version: u32,
    spent_coords: &[(u32, u32)],
    outputs: &[TxOut],
    lock_time: u32,
    input_index: u32,
) -> Hash256 {
    SpendSighashMidstate::new(version, spent_coords, outputs, lock_time).input_digest(input_index)
}

/// Per-transaction midstate for [`spend_sighash`].
///
/// Everything the digest commits to except the signed input's index is
/// identical for every input of a transaction, so the serialized prefix —
/// version, spent coordinates, outputs, lock time — is built and **hashed**
/// once here; each input clones the SHA-256 state and absorbs only its 8
/// trailing bytes. Validators that previously called `spend_sighash` per
/// input were re-serializing and re-hashing the whole prefix (O(outputs)
/// work) once per input; with the midstate that cost is paid once per
/// transaction.
#[derive(Clone)]
pub struct SpendSighashMidstate {
    /// SHA-256 state with every committed field up to and including
    /// `lock_time` already absorbed; `input_digest` clones it and appends
    /// `input_index` and the sighash type, leaving this state untouched so
    /// the midstate is reusable.
    hasher: Sha256,
}

impl SpendSighashMidstate {
    pub fn new(
        version: u32,
        spent_coords: &[(u32, u32)],
        outputs: &[TxOut],
        lock_time: u32,
    ) -> SpendSighashMidstate {
        let mut prefix = Vec::with_capacity(16 + spent_coords.len() * 8 + outputs.len() * 40);
        version.encode(&mut prefix);
        write_varint(&mut prefix, spent_coords.len() as u64);
        for &(height, position) in spent_coords {
            height.encode(&mut prefix);
            position.encode(&mut prefix);
        }
        write_varint(&mut prefix, outputs.len() as u64);
        for output in outputs {
            output.encode(&mut prefix);
        }
        lock_time.encode(&mut prefix);
        let mut hasher = Sha256::new();
        hasher.update(&prefix);
        SpendSighashMidstate { hasher }
    }

    /// The digest signing `input_index`. Byte-identical to
    /// [`spend_sighash`] with the same fields.
    pub fn input_digest(&self, input_index: u32) -> Hash256 {
        let mut tail = Vec::with_capacity(8);
        input_index.encode(&mut tail);
        (SIGHASH_ALL as u32).encode(&mut tail);
        let mut h = self.hasher.clone();
        h.update(&tail);
        Hash256(sha256(&h.finalize()))
    }
}

impl Encodable for Transaction {
    fn encode(&self, out: &mut Vec<u8>) {
        self.version.encode(out);
        self.inputs.encode(out);
        self.outputs.encode(out);
        self.lock_time.encode(out);
    }
    fn encoded_len(&self) -> usize {
        4 + self.inputs.encoded_len() + self.outputs.encoded_len() + 4
    }
}

impl Decodable for Transaction {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(Transaction {
            version: u32::decode(r)?,
            inputs: Vec::decode(r)?,
            outputs: Vec::decode(r)?,
            lock_time: u32::decode(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ebv_script::Builder;

    fn sample_tx() -> Transaction {
        Transaction {
            version: 1,
            inputs: vec![TxIn::new(
                OutPoint::new(sha256d(b"prev"), 3),
                Builder::new().push_data(b"sig").into_script(),
            )],
            outputs: vec![
                TxOut::new(50_000, Builder::new().push_data(b"lock0").into_script()),
                TxOut::new(1_000, Builder::new().push_data(b"lock1").into_script()),
            ],
            lock_time: 0,
        }
    }

    #[test]
    fn round_trip() {
        let tx = sample_tx();
        let bytes = tx.to_bytes();
        assert_eq!(bytes.len(), tx.encoded_len());
        assert_eq!(Transaction::from_bytes(&bytes).unwrap(), tx);
    }

    #[test]
    fn txid_changes_with_content() {
        let tx = sample_tx();
        let mut tx2 = tx.clone();
        tx2.outputs[0].value += 1;
        assert_ne!(tx.txid(), tx2.txid());
    }

    #[test]
    fn coinbase_detection() {
        let mut tx = sample_tx();
        assert!(!tx.is_coinbase());
        tx.inputs = vec![TxIn::new(OutPoint::NULL, Script::new())];
        assert!(tx.is_coinbase());
        // Two inputs, one null: not a coinbase.
        tx.inputs
            .push(TxIn::new(OutPoint::new(sha256d(b"x"), 0), Script::new()));
        assert!(!tx.is_coinbase());
    }

    #[test]
    fn outpoint_key_is_injective_on_vout() {
        let a = OutPoint::new(sha256d(b"t"), 0).to_key();
        let b = OutPoint::new(sha256d(b"t"), 1).to_key();
        assert_ne!(a, b);
        assert_eq!(a[..32], b[..32]);
    }

    #[test]
    fn sighash_independent_of_other_input_scripts() {
        let lock = Builder::new().push_data(b"lock").into_script();
        let mut tx = sample_tx();
        tx.inputs.push(TxIn::new(
            OutPoint::new(sha256d(b"other"), 0),
            Builder::new().push_data(b"sig-a").into_script(),
        ));
        let h1 = tx.sighash(0, &lock);
        // Mutate the *other* input's unlocking script: digest unchanged.
        tx.inputs[1].unlocking_script = Builder::new().push_data(b"sig-b").into_script();
        assert_eq!(tx.sighash(0, &lock), h1);
        // Mutating an output changes it.
        tx.outputs[0].value += 1;
        assert_ne!(tx.sighash(0, &lock), h1);
    }

    #[test]
    fn sighash_depends_on_index_and_lock() {
        let lock_a = Builder::new().push_data(b"a").into_script();
        let lock_b = Builder::new().push_data(b"b").into_script();
        let mut tx = sample_tx();
        tx.inputs.push(TxIn::new(
            OutPoint::new(sha256d(b"other"), 0),
            Script::new(),
        ));
        assert_ne!(tx.sighash(0, &lock_a), tx.sighash(1, &lock_a));
        assert_ne!(tx.sighash(0, &lock_a), tx.sighash(0, &lock_b));
    }

    #[test]
    fn spend_sighash_commits_to_everything() {
        let outputs = vec![TxOut::new(10, Builder::new().push_data(b"l").into_script())];
        let base = spend_sighash(1, &[(5, 2)], &outputs, 0, 0);
        // Any field change alters the digest.
        assert_ne!(spend_sighash(2, &[(5, 2)], &outputs, 0, 0), base);
        assert_ne!(spend_sighash(1, &[(6, 2)], &outputs, 0, 0), base);
        assert_ne!(spend_sighash(1, &[(5, 3)], &outputs, 0, 0), base);
        assert_ne!(spend_sighash(1, &[(5, 2), (5, 3)], &outputs, 0, 0), base);
        assert_ne!(spend_sighash(1, &[(5, 2)], &[], 0, 0), base);
        assert_ne!(spend_sighash(1, &[(5, 2)], &outputs, 1, 0), base);
        assert_ne!(spend_sighash(1, &[(5, 2)], &outputs, 0, 1), base);
        // And it is deterministic.
        assert_eq!(spend_sighash(1, &[(5, 2)], &outputs, 0, 0), base);
    }

    #[test]
    fn midstate_matches_direct_digest() {
        let outputs = vec![
            TxOut::new(10, Builder::new().push_data(b"l").into_script()),
            TxOut::new(7, Builder::new().push_data(b"m").into_script()),
        ];
        let coords = [(5, 2), (9, 0)];
        let mid = SpendSighashMidstate::new(1, &coords, &outputs, 3);
        for input_index in 0..4 {
            assert_eq!(
                mid.input_digest(input_index),
                spend_sighash(1, &coords, &outputs, 3, input_index),
                "input {input_index}"
            );
        }
    }

    #[test]
    fn total_output_value_saturates() {
        let mut tx = sample_tx();
        tx.outputs[0].value = u64::MAX;
        tx.outputs[1].value = 5;
        assert_eq!(tx.total_output_value(), u64::MAX);
    }

    #[test]
    fn decode_rejects_truncation() {
        let bytes = sample_tx().to_bytes();
        for cut in [0, 1, 10, bytes.len() - 1] {
            assert!(
                Transaction::from_bytes(&bytes[..cut]).is_err(),
                "cut at {cut}"
            );
        }
    }
}
