//! Ledger substrate: transactions, blocks, Merkle trees and chain storage.
//!
//! This crate defines the *baseline* (Bitcoin-format) data model the paper
//! compares against. The EBV-format structures (tidy transactions, input
//! proofs) live in `ebv-core` and are built on the same blocks, Merkle
//! machinery and script types defined here.

pub mod block;
pub mod builder;
pub mod chainstore;
pub mod merkle;
pub mod transaction;

pub use block::{Block, BlockHeader, BlockStructureError};
pub use builder::{build_block, coinbase_tx, genesis_block, BLOCK_SUBSIDY};
pub use chainstore::{ChainError, ChainStore};
pub use merkle::{merkle_root, MerkleBranch};
pub use transaction::{OutPoint, Transaction, TxIn, TxOut, SIGHASH_ALL};
