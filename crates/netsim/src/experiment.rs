//! Paired propagation experiments — run two systems over the same seeds
//! and summarize, the way the paper's Fig. 18 compares Bitcoin and EBV.

use crate::sim::{GossipSim, SimResult};

/// Aggregate outcome of a paired experiment.
#[derive(Clone, Debug)]
pub struct Comparison {
    /// Mean full-propagation time of system A (ms).
    pub a_last_ms: f64,
    /// Mean full-propagation time of system B (ms).
    pub b_last_ms: f64,
    /// Max − min of full-propagation time across runs, per system.
    pub a_spread_ms: f64,
    pub b_spread_ms: f64,
    /// Per-rank mean receive times: `per_rank[i] = (a_ms, b_ms)` for the
    /// i-th node to receive the block.
    pub per_rank: Vec<(f64, f64)>,
}

impl Comparison {
    /// Percentage by which B beats A on full propagation (positive = B
    /// faster), the paper's −66.4 % headline.
    pub fn reduction_pct(&self) -> f64 {
        if self.a_last_ms <= 0.0 {
            return 0.0;
        }
        (1.0 - self.b_last_ms / self.a_last_ms) * 100.0
    }
}

fn mean(values: impl Iterator<Item = f64>, n: usize) -> f64 {
    values.sum::<f64>() / n as f64
}

fn spread(runs: &[SimResult]) -> f64 {
    let last: Vec<f64> = runs.iter().map(SimResult::last_receive_ms).collect();
    let max = last.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let min = last.iter().cloned().fold(f64::INFINITY, f64::min);
    max - min
}

/// Run both simulators `repeats` times from the same base seed (so
/// topologies pair up) and summarize.
pub fn compare(a: &GossipSim, b: &GossipSim, base_seed: u64, repeats: usize) -> Comparison {
    assert!(repeats > 0, "need at least one run");
    let a_runs = a.run_many(base_seed, repeats);
    let b_runs = b.run_many(base_seed, repeats);
    let n_nodes = a_runs[0].receive_us.len();
    let per_rank = (0..n_nodes)
        .map(|i| {
            (
                mean(a_runs.iter().map(|r| r.sorted_ms()[i]), repeats),
                mean(b_runs.iter().map(|r| r.sorted_ms()[i]), repeats),
            )
        })
        .collect();
    Comparison {
        a_last_ms: mean(a_runs.iter().map(SimResult::last_receive_ms), repeats),
        b_last_ms: mean(b_runs.iter().map(SimResult::last_receive_ms), repeats),
        a_spread_ms: spread(&a_runs),
        b_spread_ms: spread(&b_runs),
        per_rank,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::SimParams;
    use crate::validation::ValidationModel;

    fn sim(validation_us: u64) -> GossipSim {
        GossipSim::new(SimParams {
            validation: ValidationModel::Constant(validation_us),
            ..Default::default()
        })
    }

    #[test]
    fn slower_system_loses() {
        let fast = sim(2_000);
        let slow = sim(100_000);
        let c = compare(&slow, &fast, 3, 5);
        assert!(c.reduction_pct() > 20.0, "fast system must win: {c:?}");
        assert_eq!(c.per_rank.len(), 20);
        // Ranks are monotone for both systems.
        for w in c.per_rank.windows(2) {
            assert!(w[0].0 <= w[1].0 && w[0].1 <= w[1].1);
        }
    }

    #[test]
    fn identical_systems_tie() {
        let a = sim(10_000);
        let b = sim(10_000);
        let c = compare(&a, &b, 9, 5);
        assert!(
            c.reduction_pct().abs() < 1e-9,
            "same params, same seeds → tie"
        );
        assert_eq!(c.a_spread_ms, c.b_spread_ms);
    }
}
