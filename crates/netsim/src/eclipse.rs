//! Eclipse campaigns: an adversary cohort tries to monopolize every peer
//! slot of a victim node.
//!
//! The scenario reproduces the Heilman-style attack at the level the
//! [`PeerManager`] defends: the adversary controls every address in a
//! small number of netgroups, floods the victim's addr gossip with
//! thousands of addresses from those groups, hammers the victim's inbound
//! capacity with connection churn, and waits for natural outbound churn
//! (and one victim restart) to hand it the remaining slots. The honest
//! population is spread over many netgroups but is only intermittently
//! dialable — the attacker is meanwhile saturating *their* inbound slots
//! too, which is what makes the attack converge against a naive address
//! manager.
//!
//! A campaign is a pure function of its seed: the same
//! [`EclipseParams`] and seed replay the identical attack, so
//! [`eclipse_probability`] measures the defense as a reproducible number
//! — the fraction of seeds in which the victim ends fully eclipsed.
//! With [`DefensePolicy::naive`] the attack should win most seeds; with
//! [`DefensePolicy::hardened`] it should win none (asserted in
//! `tests/eclipse.rs`, recorded in `BENCH_netsim.json`).

use ebv_core::sync::{DefensePolicy, PeerAddr, PeerManager, PeerManagerConfig};
use ebv_telemetry::{counter, histogram, trace_event};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Netgroups `1..=adversary_groups` belong to the attacker; honest nodes
/// live at `HONEST_GROUP_BASE + i`, one per netgroup.
pub const HONEST_GROUP_BASE: u16 = 1000;

/// Campaign shape. Defaults model a serious but realistically-resourced
/// attacker: many addresses, few netgroups.
#[derive(Clone, Copy, Debug)]
pub struct EclipseParams {
    /// Honest nodes, each in its own netgroup (`HONEST_GROUP_BASE + i`).
    pub honest: usize,
    /// Netgroups the adversary controls (the defense's lever: keep this
    /// below `outbound_slots` and diversity caps the attacker).
    pub adversary_groups: u16,
    /// Addresses the adversary floods per round.
    pub flood_per_round: usize,
    /// Adversary inbound connection attempts per round (slot churn).
    pub inbound_churn: usize,
    /// Honest addresses gossiped to the victim per round.
    pub honest_gossip: usize,
    /// Percent chance per round that one honest node dials the victim
    /// (honest inbound is occasional — most honest nodes have their
    /// outbound slots pointed elsewhere).
    pub honest_inbound_percent: u32,
    /// Percent chance each victim outbound link drops per round.
    pub churn_percent: u32,
    /// Percent chance a dial to an honest node succeeds (the attacker is
    /// saturating honest inbound capacity too).
    pub honest_dial_percent: u32,
    /// Campaign length in rounds.
    pub rounds: u32,
    /// Round at which the victim restarts (connections drop; tables and,
    /// if the defense is on, anchors persist).
    pub restart_at: Option<u32>,
    /// Bootstrap honest addresses the victim starts with ("DNS seeds").
    pub bootstrap: usize,
}

impl Default for EclipseParams {
    fn default() -> Self {
        EclipseParams {
            honest: 64,
            adversary_groups: 4,
            flood_per_round: 256,
            inbound_churn: 8,
            honest_gossip: 4,
            honest_inbound_percent: 20,
            churn_percent: 20,
            honest_dial_percent: 60,
            rounds: 48,
            restart_at: Some(24),
            bootstrap: 8,
        }
    }
}

/// How one campaign ended.
#[derive(Clone, Copy, Debug)]
pub struct EclipseOutcome {
    /// Every live connection (and at least one existed) was adversarial
    /// at campaign end.
    pub eclipsed: bool,
    /// First round at which the victim was fully eclipsed, if ever.
    pub first_eclipsed_round: Option<u32>,
    /// Adversary-held outbound slots at campaign end.
    pub adversary_outbound: usize,
    /// Honest outbound slots at campaign end.
    pub honest_outbound: usize,
    /// Fraction of occupied table slots holding adversary addresses.
    pub table_poison_fraction: f64,
}

/// Whether `addr` belongs to the attacker cohort under `params`.
pub fn is_adversary(addr: PeerAddr, params: &EclipseParams) -> bool {
    (1..=params.adversary_groups).contains(&addr.netgroup())
}

/// The honest node `i`'s address.
pub fn honest_addr(i: usize) -> PeerAddr {
    PeerAddr::synthetic(HONEST_GROUP_BASE + i as u16, 0)
}

/// Run one seeded campaign against a victim using `defenses`. Returns the
/// outcome plus the victim's [`PeerManager`] so callers can continue the
/// story (e.g. drive `sync_managed` through the post-campaign tables).
pub fn run_eclipse_campaign(
    params: &EclipseParams,
    defenses: DefensePolicy,
    seed: u64,
) -> (EclipseOutcome, PeerManager) {
    counter!("eclipse.campaigns").inc();
    // One trace per campaign, keyed by the campaign seed so replays of the
    // same seed produce byte-identical span trees.
    let _campaign_span =
        ebv_telemetry::context::SpanGuard::enter_root("eclipse.campaign", seed ^ 0xec11_95e0);
    let mut rng = SmallRng::seed_from_u64(seed ^ 0xec11_95e0);
    let cfg = PeerManagerConfig {
        defenses,
        seed,
        ..PeerManagerConfig::default()
    };
    let mut manager = PeerManager::new(cfg);
    for i in 0..params.bootstrap.min(params.honest) {
        let a = honest_addr(i);
        manager.add_addr(a, a.netgroup());
    }

    let mut flood_host = 0u16;
    let mut inbound_host = 10_000u16;
    let mut first_eclipsed: Option<u32> = None;
    let mut anchors: Vec<PeerAddr> = Vec::new();

    // The dial model: adversary addresses always answer (they are real
    // attacker daemons); honest addresses answer `honest_dial_percent` of
    // the time (their slots are under attack as well); anything else —
    // fabricated addresses — never answers.
    let dialable = |addr: PeerAddr, rng: &mut SmallRng, params: &EclipseParams| {
        if is_adversary(addr, params) {
            true
        } else if addr.netgroup() >= HONEST_GROUP_BASE
            && usize::from(addr.netgroup() - HONEST_GROUP_BASE) < params.honest
            && addr.ip[2] == 0
            && addr.ip[3] == 0
        {
            rng.gen_range(0..100) < params.honest_dial_percent
        } else {
            false
        }
    };

    for round in 0..params.rounds {
        let tick = u64::from(round) + 1;

        // 1. Addr gossip: the adversary floods from each of its groups,
        // rotating source groups so every (group, source) bucket it can
        // reach fills; honest gossip trickles in from honest sources.
        for _ in 0..params.flood_per_round {
            let group = 1 + (flood_host % params.adversary_groups);
            let source = 1 + ((flood_host / 7) % params.adversary_groups);
            manager.add_addr(PeerAddr::synthetic(group, 1 + flood_host / 4), source);
            flood_host = flood_host.wrapping_add(1);
        }
        for _ in 0..params.honest_gossip {
            let i = rng.gen_range(0..params.honest);
            let source = HONEST_GROUP_BASE + rng.gen_range(0..params.honest) as u16;
            manager.add_addr(honest_addr(i), source);
        }

        // 2. Natural outbound churn.
        let out_now: Vec<PeerAddr> = manager.outbound().iter().map(|c| c.addr).collect();
        for addr in out_now {
            if rng.gen_range(0..100) < params.churn_percent {
                manager.disconnect(addr);
            }
        }

        // 3. Victim restart: connections drop; the address tables (and,
        // with the defense on, the persisted anchor file) survive.
        if params.restart_at == Some(round) {
            let bytes = PeerManager::encode_anchors(&anchors);
            let restored = PeerManager::decode_anchors(&bytes).unwrap_or_default();
            let out_now: Vec<PeerAddr> = manager.outbound().iter().map(|c| c.addr).collect();
            for addr in out_now {
                manager.disconnect(addr);
            }
            let in_now: Vec<PeerAddr> = manager.inbound().iter().map(|c| c.addr).collect();
            for addr in in_now {
                manager.disconnect(addr);
            }
            for addr in restored {
                if dialable(addr, &mut rng, params) {
                    manager.connect_outbound(addr, tick);
                    manager.mark_good(addr, tick);
                }
            }
            counter!("eclipse.restarts").inc();
        }

        // 4. Refill outbound slots from the tables.
        let slots = manager.config().outbound_slots;
        let mut stuck = 0;
        while manager.outbound().len() < slots && stuck < 2 * slots {
            let Some(addr) = manager.select_outbound() else {
                break;
            };
            if dialable(addr, &mut rng, params) {
                manager.connect_outbound(addr, tick);
                manager.mark_good(addr, tick);
            } else {
                manager.mark_failed(addr);
                stuck += 1;
            }
        }

        // 5. Feeler probe.
        if let Some(addr) = manager.feeler_candidate(tick) {
            if dialable(addr, &mut rng, params) {
                manager.mark_good(addr, tick);
            } else {
                manager.mark_failed(addr);
            }
        }

        // 6. Inbound pressure: the adversary churns fresh connections at
        // the victim's inbound capacity; a trickle of honest inbound
        // arrives and keeps being useful (it relays real blocks).
        for _ in 0..params.inbound_churn {
            let group = 1 + rng.gen_range(0..u32::from(params.adversary_groups)) as u16;
            let addr = PeerAddr::synthetic(group, inbound_host);
            inbound_host = inbound_host.wrapping_add(1);
            let _ = manager.try_accept_inbound(addr, tick);
        }
        if rng.gen_range(0..100) < params.honest_inbound_percent {
            let i = rng.gen_range(0..params.honest);
            let addr = PeerAddr::synthetic(HONEST_GROUP_BASE + i as u16, 1);
            let _ = manager.try_accept_inbound(addr, tick);
        }
        let honest_in: Vec<PeerAddr> = manager
            .inbound()
            .iter()
            .map(|c| c.addr)
            .filter(|a| a.netgroup() >= HONEST_GROUP_BASE)
            .collect();
        for addr in honest_in {
            manager.mark_useful(addr, tick);
        }

        // 7. Anchor bookkeeping (what the victim would persist to disk).
        anchors = manager.anchors();

        // 8. Eclipse check.
        let total = manager.outbound().len() + manager.inbound().len();
        let adversarial = manager
            .outbound()
            .iter()
            .chain(manager.inbound().iter())
            .filter(|c| is_adversary(c.addr, params))
            .count();
        if total > 0 && adversarial == total && first_eclipsed.is_none() {
            first_eclipsed = Some(round);
        }
    }

    let adversary_outbound = manager
        .outbound()
        .iter()
        .filter(|c| is_adversary(c.addr, params))
        .count();
    let honest_outbound = manager.outbound().len() - adversary_outbound;
    let total = manager.outbound().len() + manager.inbound().len();
    let adversarial = manager
        .outbound()
        .iter()
        .chain(manager.inbound().iter())
        .filter(|c| is_adversary(c.addr, params))
        .count();
    let eclipsed = total > 0 && adversarial == total;
    let table_poison_fraction =
        manager.table_fraction(|a| (1..=params.adversary_groups).contains(&a.netgroup()));
    if eclipsed {
        counter!("eclipse.successes").inc();
        if let Some(r) = first_eclipsed {
            histogram!("eclipse.first_round").record(u64::from(r));
        }
    }
    trace_event!(
        "eclipse.campaign_end",
        seed = seed,
        eclipsed = eclipsed,
        adversary_outbound = adversary_outbound,
        honest_outbound = honest_outbound,
    );
    (
        EclipseOutcome {
            eclipsed,
            first_eclipsed_round: first_eclipsed,
            adversary_outbound,
            honest_outbound,
            table_poison_fraction,
        },
        manager,
    )
}

/// Eclipse-success probability across `seeds` campaigns (seeds
/// `0..seeds`).
pub fn eclipse_probability(params: &EclipseParams, defenses: DefensePolicy, seeds: u64) -> f64 {
    let mut wins = 0u64;
    for seed in 0..seeds {
        let (outcome, _) = run_eclipse_campaign(params, defenses, seed);
        if outcome.eclipsed {
            wins += 1;
        }
    }
    wins as f64 / seeds as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn campaign_is_deterministic_per_seed() {
        let p = EclipseParams::default();
        let (a, _) = run_eclipse_campaign(&p, DefensePolicy::naive(), 5);
        let (b, _) = run_eclipse_campaign(&p, DefensePolicy::naive(), 5);
        assert_eq!(a.eclipsed, b.eclipsed);
        assert_eq!(a.first_eclipsed_round, b.first_eclipsed_round);
        assert_eq!(a.adversary_outbound, b.adversary_outbound);
        assert!((a.table_poison_fraction - b.table_poison_fraction).abs() < f64::EPSILON);
    }

    #[test]
    fn hardened_tables_stay_mostly_clean() {
        let p = EclipseParams::default();
        let (hard, _) = run_eclipse_campaign(&p, DefensePolicy::hardened(), 1);
        let (naive, _) = run_eclipse_campaign(&p, DefensePolicy::naive(), 1);
        assert!(
            hard.table_poison_fraction < naive.table_poison_fraction,
            "bucketing must bound poisoning: hardened {} vs naive {}",
            hard.table_poison_fraction,
            naive.table_poison_fraction
        );
    }

    #[test]
    fn diversity_caps_adversary_outbound() {
        let p = EclipseParams::default();
        for seed in 0..5 {
            let (outcome, _) = run_eclipse_campaign(&p, DefensePolicy::hardened(), seed);
            assert!(
                outcome.adversary_outbound <= usize::from(p.adversary_groups),
                "seed {seed}: adversary got {} outbound from {} groups",
                outcome.adversary_outbound,
                p.adversary_groups
            );
        }
    }
}
