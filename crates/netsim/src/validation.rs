//! Per-node block-validation-time models.
//!
//! The simulator plugs in a distribution per system. The shapes mirror the
//! measurements of §VI-C: the baseline's validation time is
//! cache-state-dependent — a base cost plus occasional large DB-miss
//! spikes (the paper's Fig. 18 notes Bitcoin's *higher variance* because
//! "Bitcoin may maintain different parts of the status data in the memory
//! at different times") — while EBV is tight around its (much smaller)
//! mean. The figure binary calibrates the means from actual measured
//! validation runs; the unit tests pin the shapes.

use rand::rngs::SmallRng;
use rand::Rng;

/// A sampled validation-time model (all times in microseconds).
#[derive(Clone, Copy, Debug)]
pub enum ValidationModel {
    /// Fixed time (degenerate; useful in tests).
    Constant(u64),
    /// Baseline-shaped: `base` µs, uniform ±`spread` fraction, plus with
    /// probability `spike_p` a spike multiplying the draw by `spike_mul`
    /// (a cold cache forcing disk reads).
    CacheDependent {
        base_us: u64,
        spread: f64,
        spike_p: f64,
        spike_mul: f64,
    },
    /// EBV-shaped: `base` µs with small uniform ±`spread` fraction.
    Tight { base_us: u64, spread: f64 },
}

impl ValidationModel {
    /// Sample one validation duration in microseconds.
    pub fn sample_us(&self, rng: &mut SmallRng) -> u64 {
        match *self {
            ValidationModel::Constant(us) => us,
            ValidationModel::CacheDependent {
                base_us,
                spread,
                spike_p,
                spike_mul,
            } => {
                let v = base_us as f64 * (1.0 + spread * (rng.gen::<f64>() * 2.0 - 1.0));
                let v = if rng.gen_bool(spike_p) {
                    v * spike_mul
                } else {
                    v
                };
                v.max(1.0) as u64
            }
            ValidationModel::Tight { base_us, spread } => {
                let v = base_us as f64 * (1.0 + spread * (rng.gen::<f64>() * 2.0 - 1.0));
                v.max(1.0) as u64
            }
        }
    }

    /// The paper-shaped baseline model around a measured mean.
    pub fn baseline_from_mean_us(mean_us: u64) -> ValidationModel {
        // With a 10 % spike probability at 4× the base, the mean is
        // base·(0.9 + 0.1·4) = 1.3·base.
        ValidationModel::CacheDependent {
            base_us: (mean_us as f64 / 1.3) as u64,
            spread: 0.25,
            spike_p: 0.1,
            spike_mul: 4.0,
        }
    }

    /// The paper-shaped EBV model around a measured mean.
    pub fn ebv_from_mean_us(mean_us: u64) -> ValidationModel {
        ValidationModel::Tight {
            base_us: mean_us,
            spread: 0.1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn stats(model: ValidationModel, n: usize) -> (f64, f64) {
        let mut rng = SmallRng::seed_from_u64(7);
        let samples: Vec<f64> = (0..n).map(|_| model.sample_us(&mut rng) as f64).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / n as f64;
        (mean, var.sqrt())
    }

    #[test]
    fn constant_is_constant() {
        let (mean, sd) = stats(ValidationModel::Constant(500), 100);
        assert_eq!(mean, 500.0);
        assert_eq!(sd, 0.0);
    }

    #[test]
    fn calibrated_means_land_near_target() {
        let (mean, _) = stats(ValidationModel::baseline_from_mean_us(100_000), 20_000);
        assert!(
            (mean - 100_000.0).abs() / 100_000.0 < 0.1,
            "baseline mean {mean}"
        );
        let (mean, _) = stats(ValidationModel::ebv_from_mean_us(10_000), 20_000);
        assert!((mean - 10_000.0).abs() / 10_000.0 < 0.05, "ebv mean {mean}");
    }

    #[test]
    fn baseline_has_higher_relative_variance_than_ebv() {
        let (b_mean, b_sd) = stats(ValidationModel::baseline_from_mean_us(100_000), 20_000);
        let (e_mean, e_sd) = stats(ValidationModel::ebv_from_mean_us(100_000), 20_000);
        assert!(
            b_sd / b_mean > 3.0 * (e_sd / e_mean),
            "baseline CV {} vs ebv CV {}",
            b_sd / b_mean,
            e_sd / e_mean
        );
    }
}
