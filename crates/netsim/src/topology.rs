//! Network topology: regions, link latencies and gossip neighbor graphs.

use rand::rngs::SmallRng;
use rand::Rng;

/// The five simulated regions (us-east, us-west, eu-west, ap-southeast,
/// ap-northeast — the dispersion pattern of the paper's AWS deployment).
pub const N_REGIONS: usize = 5;

/// One-way inter-region latencies in milliseconds (≈ half typical AWS
/// RTTs). Symmetric; the diagonal is intra-region.
pub const REGION_RTT_MS: [[f64; N_REGIONS]; N_REGIONS] = [
    [1.0, 32.0, 40.0, 110.0, 80.0], // us-east
    [32.0, 1.0, 70.0, 85.0, 55.0],  // us-west
    [40.0, 70.0, 1.0, 90.0, 120.0], // eu-west
    [110.0, 85.0, 90.0, 1.0, 35.0], // ap-southeast
    [80.0, 55.0, 120.0, 35.0, 1.0], // ap-northeast
];

/// Link-latency model between nodes.
#[derive(Clone, Copy, Debug)]
pub struct LatencyMatrix {
    /// Multiplier over [`REGION_RTT_MS`] (1.0 = calibrated values).
    pub scale: f64,
    /// Max uniform jitter fraction added per message (e.g. 0.2 = ±20 %).
    pub jitter: f64,
}

impl Default for LatencyMatrix {
    fn default() -> Self {
        LatencyMatrix {
            scale: 1.0,
            jitter: 0.2,
        }
    }
}

impl LatencyMatrix {
    /// Sample the one-way delay in microseconds between two regions.
    pub fn sample_us(&self, from: usize, to: usize, rng: &mut SmallRng) -> u64 {
        let base = REGION_RTT_MS[from % N_REGIONS][to % N_REGIONS] * self.scale;
        let jitter = 1.0 + self.jitter * (rng.gen::<f64>() * 2.0 - 1.0);
        (base * jitter * 1000.0).max(1.0) as u64
    }
}

/// A static gossip topology.
#[derive(Clone, Debug)]
pub struct Topology {
    /// Region of each node (round-robin assignment).
    pub regions: Vec<usize>,
    /// Gossip neighbors of each node. Connections are bidirectional (they
    /// model persistent P2P links), so a node may end up with more than
    /// `k` neighbors when others selected it.
    pub neighbors: Vec<Vec<usize>>,
}

impl Topology {
    /// Build a random gossip graph over `n` nodes where each node opens
    /// `k` connections (the paper: 20 nodes, 5 regions, 2 neighbors).
    /// Links are bidirectional; if the union graph is disconnected the
    /// components are stitched with one extra link each, so a block always
    /// reaches every node.
    pub fn random(n: usize, k: usize, rng: &mut SmallRng) -> Topology {
        assert!(n >= 2, "need at least two nodes");
        assert!(k >= 1 && k < n, "need 1 ≤ k < n");
        let regions = (0..n).map(|i| i % N_REGIONS).collect();
        let mut neighbors: Vec<Vec<usize>> = vec![Vec::new(); n];
        let add_edge = |neighbors: &mut Vec<Vec<usize>>, a: usize, b: usize| {
            if a != b && !neighbors[a].contains(&b) {
                neighbors[a].push(b);
                neighbors[b].push(a);
            }
        };
        for i in 0..n {
            let mut opened = 0;
            let mut attempts = 0;
            while opened < k && attempts < 100 {
                attempts += 1;
                let cand = rng.gen_range(0..n);
                if cand != i && !neighbors[i].contains(&cand) {
                    add_edge(&mut neighbors, i, cand);
                    opened += 1;
                }
            }
        }
        // Stitch disconnected components (rare at n=20, k=2).
        let mut seen = vec![false; n];
        let mut stack = vec![0usize];
        let mut last_seen = 0usize;
        while let Some(v) = stack.pop() {
            if seen[v] {
                continue;
            }
            seen[v] = true;
            last_seen = v;
            stack.extend(neighbors[v].iter().copied());
        }
        for i in 0..n {
            if !seen[i] {
                add_edge(&mut neighbors, last_seen, i);
                // Re-flood from the newly attached node.
                let mut stack = vec![i];
                while let Some(v) = stack.pop() {
                    if seen[v] {
                        continue;
                    }
                    seen[v] = true;
                    last_seen = v;
                    stack.extend(neighbors[v].iter().copied());
                }
            }
        }
        Topology { regions, neighbors }
    }

    /// Build a gossip graph over `n` nodes that is connected **by
    /// construction**, at any scale: a ring over a seeded permutation of
    /// the nodes forms the backbone (connectivity is structural, not
    /// checked after the fact like [`Topology::random`]'s stitch pass),
    /// and each node then opens up to `k.saturating_sub(2)` random chords
    /// for realistic gossip fan-out. Deterministic per `rng` seed; built
    /// for the n ≥ 1000 campaign scenarios where `random`'s
    /// attempt-bounded loop and O(n)-per-miss stitch get slow and had
    /// only ever been exercised at n = 20.
    pub fn random_connected(n: usize, k: usize, rng: &mut SmallRng) -> Topology {
        assert!(n >= 3, "ring backbone needs at least three nodes");
        assert!(k >= 2 && k < n, "need 2 ≤ k < n");
        let regions = (0..n).map(|i| i % N_REGIONS).collect();
        // Seeded Fisher–Yates permutation (the rand shim has no shuffle).
        let mut perm: Vec<usize> = (0..n).collect();
        for i in (1..n).rev() {
            let j = rng.gen_range(0..=i);
            perm.swap(i, j);
        }
        let mut neighbors: Vec<Vec<usize>> = vec![Vec::new(); n];
        let add_edge = |neighbors: &mut Vec<Vec<usize>>, a: usize, b: usize| {
            if a != b && !neighbors[a].contains(&b) {
                neighbors[a].push(b);
                neighbors[b].push(a);
            }
        };
        for w in 0..n {
            add_edge(&mut neighbors, perm[w], perm[(w + 1) % n]);
        }
        let chords = k.saturating_sub(2);
        for i in 0..n {
            let mut opened = 0;
            let mut attempts = 0;
            while opened < chords && attempts < 32 {
                attempts += 1;
                let cand = rng.gen_range(0..n);
                if cand != i && !neighbors[i].contains(&cand) {
                    add_edge(&mut neighbors, i, cand);
                    opened += 1;
                }
            }
        }
        Topology { regions, neighbors }
    }

    /// Whether every node is reachable from node 0 (BFS).
    pub fn is_connected(&self) -> bool {
        if self.is_empty() {
            return true;
        }
        let mut seen = vec![false; self.len()];
        let mut stack = vec![0usize];
        let mut count = 0usize;
        while let Some(v) = stack.pop() {
            if seen[v] {
                continue;
            }
            seen[v] = true;
            count += 1;
            stack.extend(self.neighbors[v].iter().copied());
        }
        count == self.len()
    }

    pub fn len(&self) -> usize {
        self.regions.len()
    }

    pub fn is_empty(&self) -> bool {
        self.regions.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn topology_shape() {
        let mut rng = SmallRng::seed_from_u64(1);
        let t = Topology::random(20, 2, &mut rng);
        assert_eq!(t.len(), 20);
        for (i, neigh) in t.neighbors.iter().enumerate() {
            assert!(neigh.len() >= 2, "node {i} has {} neighbors", neigh.len());
            assert!(!neigh.contains(&i), "no self-loop");
            let set: std::collections::HashSet<_> = neigh.iter().collect();
            assert_eq!(set.len(), neigh.len(), "no duplicate neighbor");
        }
        // Links are bidirectional.
        for (i, neigh) in t.neighbors.iter().enumerate() {
            for &j in neigh {
                assert!(t.neighbors[j].contains(&i), "{i}↔{j} must be mutual");
            }
        }
        // Regions round-robin over 5.
        assert_eq!(t.regions[0], 0);
        assert_eq!(t.regions[7], 2);
    }

    #[test]
    fn topology_always_connected() {
        for seed in 0..50 {
            let mut rng = SmallRng::seed_from_u64(seed);
            let t = Topology::random(20, 2, &mut rng);
            // BFS from 0 must reach all.
            let mut seen = vec![false; t.len()];
            let mut stack = vec![0usize];
            while let Some(v) = stack.pop() {
                if seen[v] {
                    continue;
                }
                seen[v] = true;
                stack.extend(t.neighbors[v].iter().copied());
            }
            assert!(
                seen.iter().all(|&s| s),
                "seed {seed} gave disconnected topology"
            );
        }
    }

    #[test]
    fn random_connected_holds_at_scale() {
        for &n in &[3usize, 20, 500, 1000, 2000] {
            let mut rng = SmallRng::seed_from_u64(n as u64);
            let t = Topology::random_connected(n, 4.min(n - 1), &mut rng);
            assert_eq!(t.len(), n);
            assert!(t.is_connected(), "n={n} must be connected");
            for (i, neigh) in t.neighbors.iter().enumerate() {
                assert!(neigh.len() >= 2, "node {i} below ring degree");
                assert!(!neigh.contains(&i), "no self-loop");
                let set: std::collections::HashSet<_> = neigh.iter().collect();
                assert_eq!(set.len(), neigh.len(), "no duplicate neighbor");
                for &j in neigh {
                    assert!(t.neighbors[j].contains(&i), "{i}↔{j} must be mutual");
                }
            }
        }
    }

    #[test]
    fn random_connected_is_seed_deterministic() {
        let build = |seed: u64| {
            let mut rng = SmallRng::seed_from_u64(seed);
            Topology::random_connected(1000, 4, &mut rng).neighbors
        };
        assert_eq!(build(9), build(9), "same seed, same graph");
        assert_ne!(build(9), build(10), "different seed, different graph");
    }

    #[test]
    fn latency_sampling_bounds() {
        let mut rng = SmallRng::seed_from_u64(2);
        let m = LatencyMatrix {
            scale: 1.0,
            jitter: 0.2,
        };
        for _ in 0..100 {
            let us = m.sample_us(0, 3, &mut rng);
            // base 110 ms ± 20 %.
            assert!((88_000..=132_000).contains(&us), "got {us}");
        }
        // Intra-region is ~1 ms.
        let us = m.sample_us(2, 2, &mut rng);
        assert!(us <= 1_300);
    }

    #[test]
    fn matrix_is_symmetric() {
        for i in 0..N_REGIONS {
            for j in 0..N_REGIONS {
                assert_eq!(REGION_RTT_MS[i][j], REGION_RTT_MS[j][i]);
            }
        }
    }
}
