//! Discrete-event gossip network simulator.
//!
//! Reproduces the paper's propagation-delay experiment (§VI-E, Fig. 18):
//! twenty nodes spread over five regions, each forwarding a newly
//! *validated* block to two gossip neighbors. A block must pass validation
//! before it is relayed — that coupling is why faster validation shortens
//! propagation — so each node's validation time is sampled from a
//! per-system model and inserted between receipt and relay.
//!
//! The paper ran this on AWS `t2.medium` instances in five regions; here
//! the deployment is simulated with an inter-region RTT matrix calibrated
//! to typical AWS inter-region latencies (see [`topology::REGION_RTT_MS`]).

pub mod eclipse;
pub mod experiment;
pub mod partition;
pub mod sim;
pub mod syncsim;
pub mod topology;
pub mod validation;

pub use eclipse::{
    eclipse_probability, run_eclipse_campaign, EclipseOutcome, EclipseParams, HONEST_GROUP_BASE,
};
pub use experiment::{compare, Comparison};
pub use partition::{run_partition_heal, PartitionOutcome, PartitionParams};
pub use sim::{GossipSim, SimParams, SimResult};
pub use syncsim::{sync_under_faults, sync_under_wire_faults, ModelNode, SyncSimResult};
pub use topology::{LatencyMatrix, Topology};
pub use validation::ValidationModel;
