//! Partition-and-heal: a split gossip graph extends two branches, heals,
//! and every node must converge onto the heavier branch through the real
//! `reorg_to` engine.
//!
//! The graph is two guaranteed-connected random components (each built by
//! [`Topology::random_connected`]) joined by sparse cross links — the
//! edges the partition severs and the heal restores. While the partition
//! holds, each component mines its own branch on the shared prefix — one
//! block per round at a designated miner, spreading one hop per round by
//! neighbor adoption, so at heal time nodes sit at *different* heights
//! depending on their gossip distance from the miner. When the partition
//! heals, the cross links come back and every node that sees a
//! strictly-longer foreign branch reorgs onto it via
//! [`reorg_to`](ebv_core::sync::reorg_to) — the same invariant-checked
//! unwind/rewind the sync driver uses, run on [`ModelNode`]s so the
//! validation cost stays a model knob and the scenario scales to
//! thousands of nodes.
//!
//! Two properties are measured (and asserted in `tests/partition_heal.rs`):
//!
//! * **convergence** — within a bounded number of heal rounds, 100 % of
//!   nodes report the heavier branch's tip hash; rounds-to-convergence
//!   and the reorg-depth distribution are exported via
//!   `partition.heal.*` telemetry;
//! * **fail-closed depth bounds** — a node whose branch is deeper than
//!   `max_reorg_depth` refuses the reorg (counted under
//!   `partition.heal.refused`, slug `reorg_depth_exceeded`) instead of
//!   stalling or wrapping; the outcome reports the refusal so a
//!   too-deep partition is a *visible* liveness failure.

use crate::syncsim::ModelNode;
use crate::topology::Topology;
use crate::validation::ValidationModel;
use ebv_chain::{build_block, coinbase_tx, genesis_block, Block};
use ebv_core::sync::{reorg_to, ReorgError, ValidatingNode};
use ebv_primitives::hash::Hash256;
use ebv_script::Script;
use ebv_telemetry::{counter, histogram, trace_event};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Scenario shape.
#[derive(Clone, Copy, Debug)]
pub struct PartitionParams {
    /// Total nodes (the acceptance run uses ≥ 500).
    pub nodes: usize,
    /// Gossip degree for [`Topology::random_connected`].
    pub degree: usize,
    /// Shared chain prefix length (blocks above genesis).
    pub prefix: u32,
    /// Blocks the minority component mines during the partition.
    pub branch_a: u32,
    /// Blocks the majority component mines (must exceed `branch_a` — the
    /// heavier branch everyone must converge to).
    pub branch_b: u32,
    /// Fraction of nodes in the minority component, in percent.
    pub minority_percent: u32,
    /// Deepest reorg a node will perform (the driver's bound).
    pub max_reorg_depth: u32,
    /// Hard cap on heal rounds (a convergence backstop).
    pub max_heal_rounds: u32,
    /// Seed for topology and validation-time draws.
    pub seed: u64,
}

impl Default for PartitionParams {
    fn default() -> Self {
        PartitionParams {
            nodes: 500,
            degree: 3,
            prefix: 12,
            branch_a: 8,
            branch_b: 9,
            minority_percent: 40,
            max_reorg_depth: 64,
            max_heal_rounds: 200,
            seed: 0x9a27,
        }
    }
}

/// How a partition-and-heal run ended.
#[derive(Clone, Debug)]
pub struct PartitionOutcome {
    /// Every node converged to the heavy branch's tip.
    pub converged: bool,
    /// Nodes on the heavy tip at the end.
    pub converged_nodes: usize,
    /// Total nodes.
    pub nodes: usize,
    /// Heal rounds until convergence (or `max_heal_rounds` if never).
    pub heal_rounds: u32,
    /// Reorg depth per node that switched branches (minority nodes near
    /// the miner reorg deep; stragglers shallow or not at all).
    pub reorg_depths: Vec<u32>,
    /// Nodes that refused a reorg deeper than `max_reorg_depth`.
    pub refused: usize,
    /// The heavy branch's tip hash (what everyone must converge to).
    pub heavy_tip: Hash256,
    /// Modeled validation time summed over all nodes, µs.
    pub total_modeled_us: u64,
    /// The seed that reproduces this run.
    pub seed: u64,
}

/// Which chain a node is currently extending.
#[derive(Clone, Copy, PartialEq, Eq)]
enum OnBranch {
    /// At or below the shared prefix.
    Prefix,
    A,
    B,
}

/// One simulated node: the model node plus its position in branch space.
struct SimPeer {
    node: ModelNode,
    on: OnBranch,
    height: u32,
    refused: bool,
}

/// Mine `ext` empty blocks on top of `base`'s tip; `time_base` keeps the
/// two branches' hashes distinct.
fn extend(base: &[Block], ext: u32, time_base: u32) -> Vec<Block> {
    let mut chain = base.to_vec();
    for k in 0..ext {
        let h = base.len() as u32 + k;
        let prev = chain.last().expect("nonempty base").header.hash();
        chain.push(build_block(
            prev,
            coinbase_tx(h, Script::new(), Vec::new()),
            Vec::new(),
            time_base + h,
            0,
        ));
    }
    chain
}

/// Connect `chain[from+1..=to]` onto `peer`, keeping its position fields
/// in sync.
fn advance(peer: &mut SimPeer, chain: &[Block], to: u32, on: OnBranch, prefix: u32) {
    for h in (peer.height + 1)..=to {
        peer.node
            .connect_block(&chain[h as usize])
            .expect("same-branch extension must connect");
    }
    peer.height = to;
    peer.on = if to > prefix { on } else { OnBranch::Prefix };
}

/// Run one seeded partition-and-heal scenario with validation cost drawn
/// from `model`.
pub fn run_partition_heal(params: &PartitionParams, model: ValidationModel) -> PartitionOutcome {
    assert!(params.nodes >= 8, "need at least eight nodes");
    assert!(
        params.branch_b > params.branch_a,
        "branch B must be the heavier branch"
    );
    counter!("partition.heal.runs").inc();
    // One trace per heal run, keyed by the scenario seed.
    let _heal_span = ebv_telemetry::context::SpanGuard::enter_root("partition.heal", params.seed);

    // The shared prefix and the two branches. Heights are absolute:
    // chain_a[h] and chain_b[h] agree for h ≤ prefix.
    let genesis = genesis_block();
    let prefix_chain = extend(&[genesis], params.prefix, 2_000_000);
    let chain_a = extend(&prefix_chain, params.branch_a, 3_000_000);
    let chain_b = extend(&prefix_chain, params.branch_b, 4_000_000);
    let heavy_tip = chain_b.last().expect("branch B nonempty").header.hash();
    let tip_b = params.prefix + params.branch_b;

    // The partitioned graph: each component is its own guaranteed-
    // connected random graph (a real partition severs the cut edges, it
    // does not disconnect component interiors), joined by a sparse set of
    // cross links — the edges the partition severs and the heal restores.
    let mut rng = SmallRng::seed_from_u64(params.seed);
    let minority = (params.nodes * params.minority_percent as usize / 100).max(3);
    let majority = params.nodes - minority;
    assert!(majority >= 3, "majority component too small");
    let topo_a =
        Topology::random_connected(minority, params.degree.clamp(2, minority - 1), &mut rng);
    let topo_b =
        Topology::random_connected(majority, params.degree.clamp(2, majority - 1), &mut rng);
    let mut neighbors: Vec<Vec<usize>> = topo_a.neighbors.clone();
    for adj in &topo_b.neighbors {
        neighbors.push(adj.iter().map(|&x| x + minority).collect());
    }
    let cross_links = (params.nodes / 10).max(2);
    for _ in 0..cross_links {
        let i = rng.gen_range(0..minority);
        let j = minority + rng.gen_range(0..majority);
        if !neighbors[i].contains(&j) {
            neighbors[i].push(j);
            neighbors[j].push(i);
        }
    }
    let in_a = |i: usize| i < minority;

    // Boot every node at the shared prefix.
    let mut peers: Vec<SimPeer> = (0..params.nodes)
        .map(|i| {
            let mut peer = SimPeer {
                node: ModelNode::new(
                    &prefix_chain[0],
                    model,
                    params.seed ^ (i as u64).wrapping_mul(0x9e3779b97f4a7c15),
                ),
                on: OnBranch::Prefix,
                height: 0,
                refused: false,
            };
            advance(
                &mut peer,
                &prefix_chain,
                params.prefix,
                OnBranch::Prefix,
                params.prefix,
            );
            peer
        })
        .collect();

    // Miners: node 0 mines branch A, the first majority node branch B.
    let miner_a = 0usize;
    let miner_b = minority;

    // One gossip sweep: every node adopts the best *compatible* neighbor
    // chain it can see through active links. Sweeps are synchronous —
    // every node reads the *previous* round's state — so rounds measure
    // real propagation distance instead of collapsing to one pass.
    // Returns whether anything changed. `heal` enables cross-branch
    // reorgs.
    let mut depths: Vec<u32> = Vec::new();
    let mut refused_events = 0usize;
    let mut sweep = |peers: &mut Vec<SimPeer>, heal: bool, depths: &mut Vec<u32>| -> bool {
        let view: Vec<(OnBranch, u32)> = peers.iter().map(|p| (p.on, p.height)).collect();
        let mut changed = false;
        for i in 0..peers.len() {
            let active: Vec<usize> = neighbors[i]
                .iter()
                .copied()
                .filter(|&j| heal || in_a(i) == in_a(j))
                .collect();
            // Best same-branch target and best foreign target visible.
            let mut best_same: Option<(OnBranch, u32)> = None;
            let mut best_foreign: Option<(OnBranch, u32)> = None;
            for &j in &active {
                let (on_j, h_j) = view[j];
                if h_j <= peers[i].height || on_j == OnBranch::Prefix {
                    continue;
                }
                let same = peers[i].on == OnBranch::Prefix || peers[i].on == on_j;
                let slot = if same {
                    &mut best_same
                } else {
                    &mut best_foreign
                };
                if slot.is_none_or(|(_, h)| h_j > h) {
                    *slot = Some((on_j, h_j));
                }
            }
            // Longest-chain rule: the strictly tallest visible target
            // wins, foreign or not; ties stay on the current branch (no
            // gratuitous reorg).
            let foreign_wins = match (best_same, best_foreign) {
                (Some((_, hs)), Some((_, hf))) => hf > hs,
                (None, Some(_)) => true,
                _ => false,
            };
            if !foreign_wins {
                if let Some((on, h)) = best_same {
                    // Same-branch blocks arrive one per hop-round, so a
                    // node's height reflects its gossip distance from the
                    // miner — that in-flight spread is what varies the
                    // reorg depths when the heal wave reaches it.
                    let chain = if on == OnBranch::A {
                        &chain_a
                    } else {
                        &chain_b
                    };
                    let step = (peers[i].height + 1).min(h);
                    advance(&mut peers[i], chain, step, on, params.prefix);
                    changed = true;
                }
            } else if let Some((on, h)) = best_foreign {
                // Cross-branch: only a strictly longer chain wins, and
                // only within the reorg-depth bound.
                if h <= peers[i].height {
                    continue;
                }
                let depth = peers[i].height - params.prefix;
                if depth > params.max_reorg_depth {
                    if !peers[i].refused {
                        peers[i].refused = true;
                        refused_events += 1;
                        counter!("partition.heal.refused").inc();
                        trace_event!(
                            "partition.heal.reorg_refused",
                            node = i,
                            depth = depth,
                            max_depth = params.max_reorg_depth,
                            reason = "reorg_depth_exceeded",
                        );
                        if ebv_telemetry::enabled() {
                            ebv_telemetry::flight::dump(
                                "partition.heal.reorg_refused",
                                ebv_telemetry::context::current_trace(),
                                &[(
                                    "refusal",
                                    format!(
                                        "{{\"node\":{i},\"depth\":{depth},\"max_depth\":{}}}",
                                        params.max_reorg_depth
                                    ),
                                )],
                            );
                        }
                    }
                    continue;
                }
                let (chain, old_chain) = if on == OnBranch::A {
                    (&chain_a, &chain_b)
                } else {
                    (&chain_b, &chain_a)
                };
                let branch = &chain[(params.prefix + 1) as usize..=h as usize];
                let old = &old_chain[(params.prefix + 1) as usize..=peers[i].height as usize];
                match reorg_to(&mut peers[i].node, params.prefix, branch, old) {
                    Ok(_) => {
                        peers[i].height = h;
                        peers[i].on = on;
                        depths.push(depth);
                        counter!("partition.heal.reorgs").inc();
                        histogram!("partition.heal.reorg_depth").record(u64::from(depth));
                        changed = true;
                    }
                    Err(ReorgError::NotBetter { .. }) => {}
                    Err(e) => panic!("node {i}: heal reorg failed: {e:?}"),
                }
            }
        }
        changed
    };

    // Partition phase: each component mines one block per round and
    // gossips it internally. The heal begins the moment mining completes
    // — intra-component propagation is still in flight — so at heal time
    // nodes sit at heights that vary with their gossip distance from the
    // miner, which is what spreads the reorg-depth histogram.
    let mut mined_a = 0u32;
    let mut mined_b = 0u32;
    while mined_a < params.branch_a || mined_b < params.branch_b {
        if mined_a < params.branch_a {
            mined_a += 1;
            let target = params.prefix + mined_a;
            advance(
                &mut peers[miner_a],
                &chain_a,
                target,
                OnBranch::A,
                params.prefix,
            );
        }
        if mined_b < params.branch_b {
            mined_b += 1;
            let target = params.prefix + mined_b;
            advance(
                &mut peers[miner_b],
                &chain_b,
                target,
                OnBranch::B,
                params.prefix,
            );
        }
        sweep(&mut peers, false, &mut depths);
    }
    assert!(depths.is_empty(), "no reorg may happen while partitioned");

    // Heal phase: all links restored; sweep until everyone sits on the
    // heavy tip or the round cap trips.
    let mut heal_rounds = 0u32;
    while heal_rounds < params.max_heal_rounds {
        heal_rounds += 1;
        sweep(&mut peers, true, &mut depths);
        if peers
            .iter()
            .all(|p| p.on == OnBranch::B && p.height == tip_b)
        {
            break;
        }
    }

    let converged_nodes = peers
        .iter()
        .filter(|p| p.node.tip_hash() == heavy_tip)
        .count();
    let converged = converged_nodes == params.nodes;
    let total_modeled_us = peers.iter().map(|p| p.node.modeled_us).sum();
    if ebv_telemetry::enabled() {
        ebv_telemetry::registry::gauge("partition.heal.rounds").set(u64::from(heal_rounds));
    }
    trace_event!(
        "partition.heal.end",
        seed = params.seed,
        nodes = params.nodes,
        converged = converged,
        heal_rounds = heal_rounds,
        reorgs = depths.len(),
        refused = refused_events,
    );
    PartitionOutcome {
        converged,
        converged_nodes,
        nodes: params.nodes,
        heal_rounds,
        reorg_depths: depths,
        refused: refused_events,
        heavy_tip,
        total_modeled_us,
        seed: params.seed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> PartitionParams {
        PartitionParams {
            nodes: 40,
            ..PartitionParams::default()
        }
    }

    #[test]
    fn heals_to_the_heavy_branch() {
        let out = run_partition_heal(&small(), ValidationModel::Constant(10));
        assert!(
            out.converged,
            "{}/{} converged",
            out.converged_nodes, out.nodes
        );
        assert_eq!(out.refused, 0);
        assert!(!out.reorg_depths.is_empty(), "minority must reorg");
        assert!(
            out.reorg_depths.iter().all(|&d| d <= 8),
            "depth cannot exceed branch A: {:?}",
            out.reorg_depths
        );
        assert!(out.heal_rounds <= 40, "took {} rounds", out.heal_rounds);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = run_partition_heal(&small(), ValidationModel::Constant(10));
        let b = run_partition_heal(&small(), ValidationModel::Constant(10));
        assert_eq!(a.heal_rounds, b.heal_rounds);
        assert_eq!(a.reorg_depths, b.reorg_depths);
        assert_eq!(a.heavy_tip, b.heavy_tip);
    }

    #[test]
    fn too_deep_partition_fails_closed() {
        let params = PartitionParams {
            nodes: 40,
            branch_a: 10,
            branch_b: 16,
            max_reorg_depth: 4,
            max_heal_rounds: 30,
            ..PartitionParams::default()
        };
        let out = run_partition_heal(&params, ValidationModel::Constant(10));
        assert!(!out.converged, "deep minority must refuse the reorg");
        assert!(out.refused > 0, "refusals must be counted, not silent");
        // Every node that did reorg stayed within the bound.
        assert!(out.reorg_depths.iter().all(|&d| d <= 4));
    }
}
