//! The discrete-event gossip simulation.
//!
//! Event loop over a binary heap of `(time, node)` block arrivals. On its
//! first arrival at a node the block's receive time is recorded; the node
//! then validates (sampled delay) and relays to its gossip neighbors with
//! sampled link latency — the validate-before-relay pipeline whose total
//! the paper measures.

use crate::topology::{LatencyMatrix, Topology};
use crate::validation::ValidationModel;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Simulation parameters (defaults = the paper's deployment).
#[derive(Clone, Copy, Debug)]
pub struct SimParams {
    /// Number of nodes (paper: 20).
    pub n_nodes: usize,
    /// Gossip fan-out per node (paper: 2).
    pub gossip_neighbors: usize,
    /// Link latency model.
    pub latency: LatencyMatrix,
    /// Validation-time model applied at every node.
    pub validation: ValidationModel,
    /// Serialized block size in bytes; adds a per-hop transmission delay.
    /// EBV blocks carry input proofs and are larger than baseline blocks —
    /// this is how that cost enters the propagation comparison.
    pub block_bytes: u64,
    /// Access bandwidth per node in Mbit/s (`t2.medium`-ish). Ignored when
    /// `block_bytes` is 0.
    pub bandwidth_mbps: f64,
}

impl Default for SimParams {
    fn default() -> Self {
        SimParams {
            n_nodes: 20,
            gossip_neighbors: 2,
            latency: LatencyMatrix::default(),
            validation: ValidationModel::Constant(1000),
            block_bytes: 0,
            bandwidth_mbps: 250.0,
        }
    }
}

impl SimParams {
    /// Per-hop transmission delay in microseconds.
    pub fn transmission_us(&self) -> u64 {
        if self.block_bytes == 0 || self.bandwidth_mbps <= 0.0 {
            return 0;
        }
        (self.block_bytes as f64 * 8.0 / (self.bandwidth_mbps * 1e6) * 1e6) as u64
    }
}

/// Result of one propagation run.
#[derive(Clone, Debug)]
pub struct SimResult {
    /// Per-node first-receipt time in microseconds, unsorted (index =
    /// node id; the seed node has time 0). `u64::MAX` marks unreached
    /// nodes (possible only in degenerate topologies).
    pub receive_us: Vec<u64>,
}

impl SimResult {
    /// Receive times sorted ascending — the x-axis of Fig. 18 is "the
    /// i-th node to receive the block".
    pub fn sorted_ms(&self) -> Vec<f64> {
        let mut v: Vec<f64> = self
            .receive_us
            .iter()
            .map(|&us| us as f64 / 1000.0)
            .collect();
        v.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
        v
    }

    /// Time until every node has the block (the paper's −66.4 % metric).
    pub fn last_receive_ms(&self) -> f64 {
        *self.sorted_ms().last().expect("nonempty")
    }

    /// Receive time below which `p` (0..=1) of nodes got the block —
    /// e.g. `percentile_ms(0.5)` is the median propagation delay.
    pub fn percentile_ms(&self, p: f64) -> f64 {
        let sorted = self.sorted_ms();
        let idx = ((sorted.len() as f64 - 1.0) * p.clamp(0.0, 1.0)).round() as usize;
        sorted[idx]
    }

    /// Whether every node received the block.
    pub fn fully_propagated(&self) -> bool {
        self.receive_us.iter().all(|&us| us != u64::MAX)
    }
}

/// The gossip simulator.
pub struct GossipSim {
    params: SimParams,
}

impl GossipSim {
    pub fn new(params: SimParams) -> GossipSim {
        GossipSim { params }
    }

    /// Run one propagation: build a fresh random topology from `seed`,
    /// release the block from a random node at t = 0, and return per-node
    /// receive times.
    pub fn run(&self, seed: u64) -> SimResult {
        let p = &self.params;
        let mut rng = SmallRng::seed_from_u64(seed);
        let topology = Topology::random(p.n_nodes, p.gossip_neighbors, &mut rng);
        let origin = rng.gen_range(0..p.n_nodes);
        self.run_on(&topology, origin, &mut rng)
    }

    /// Run on a fixed topology and origin (tests and ablations).
    pub fn run_on(&self, topology: &Topology, origin: usize, rng: &mut SmallRng) -> SimResult {
        let p = &self.params;
        let n = topology.len();
        let mut receive_us = vec![u64::MAX; n];
        // Heap of (time, node) block arrivals, min-first.
        let mut events: BinaryHeap<Reverse<(u64, usize)>> = BinaryHeap::new();
        events.push(Reverse((0, origin)));

        while let Some(Reverse((t, node))) = events.pop() {
            if receive_us[node] != u64::MAX {
                continue; // duplicate arrival
            }
            receive_us[node] = t;
            // Validate before relaying.
            let ready = t + p.validation.sample_us(rng);
            let transmission = p.transmission_us();
            for &next in &topology.neighbors[node] {
                if receive_us[next] == u64::MAX {
                    let delay =
                        p.latency
                            .sample_us(topology.regions[node], topology.regions[next], rng);
                    events.push(Reverse((ready + delay + transmission, next)));
                }
            }
        }
        if ebv_telemetry::enabled() {
            let hist = ebv_telemetry::histogram!("netsim.propagation_us");
            for &us in receive_us.iter().filter(|&&us| us != u64::MAX) {
                hist.record(us);
            }
        }
        SimResult { receive_us }
    }

    /// Run `repeats` independent propagations (fresh topology each run, as
    /// the paper repeats five times) and return all results.
    pub fn run_many(&self, base_seed: u64, repeats: usize) -> Vec<SimResult> {
        (0..repeats)
            .map(|i| self.run(base_seed.wrapping_add(i as u64 * 7919)))
            .collect()
    }

    /// The configured per-hop transmission delay (µs) — exposed for tests
    /// and reporting.
    pub fn params_transmission_us(&self) -> u64 {
        self.params.transmission_us()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sim(validation: ValidationModel) -> GossipSim {
        GossipSim::new(SimParams {
            validation,
            ..Default::default()
        })
    }

    #[test]
    fn block_reaches_every_node() {
        let s = sim(ValidationModel::Constant(1000));
        for seed in 0..10 {
            let r = s.run(seed);
            assert!(r.fully_propagated(), "seed {seed}");
            assert_eq!(
                r.receive_us.iter().filter(|&&t| t == 0).count(),
                1,
                "one origin"
            );
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let s = sim(ValidationModel::Constant(1000));
        assert_eq!(s.run(42).receive_us, s.run(42).receive_us);
    }

    #[test]
    fn receive_times_monotone_sorted() {
        let s = sim(ValidationModel::Constant(500));
        let r = s.run(3);
        let sorted = r.sorted_ms();
        assert_eq!(sorted[0], 0.0);
        for w in sorted.windows(2) {
            assert!(w[0] <= w[1]);
        }
        assert_eq!(r.last_receive_ms(), *sorted.last().unwrap());
    }

    #[test]
    fn slower_validation_slows_propagation() {
        // Same seeds; validation 50 ms vs 2 ms. Averages over runs must
        // order strictly.
        let slow = sim(ValidationModel::Constant(50_000));
        let fast = sim(ValidationModel::Constant(2_000));
        let slow_avg: f64 = slow
            .run_many(1, 5)
            .iter()
            .map(SimResult::last_receive_ms)
            .sum::<f64>()
            / 5.0;
        let fast_avg: f64 = fast
            .run_many(1, 5)
            .iter()
            .map(SimResult::last_receive_ms)
            .sum::<f64>()
            / 5.0;
        assert!(
            slow_avg > fast_avg + 40.0,
            "slow {slow_avg} ms should exceed fast {fast_avg} ms by ≫ validation gap"
        );
    }

    #[test]
    fn transmission_delay_slows_propagation() {
        let small = GossipSim::new(SimParams {
            validation: ValidationModel::Constant(1000),
            block_bytes: 0,
            ..Default::default()
        });
        let big = GossipSim::new(SimParams {
            validation: ValidationModel::Constant(1000),
            block_bytes: 4_000_000, // 4 MB at 250 Mbit/s → 128 ms/hop
            ..Default::default()
        });
        assert_eq!(big.params_transmission_us(), 128_000);
        let small_avg: f64 = small
            .run_many(2, 5)
            .iter()
            .map(SimResult::last_receive_ms)
            .sum::<f64>()
            / 5.0;
        let big_avg: f64 = big
            .run_many(2, 5)
            .iter()
            .map(SimResult::last_receive_ms)
            .sum::<f64>()
            / 5.0;
        assert!(
            big_avg > small_avg + 100.0,
            "transmission cost must show: {small_avg} vs {big_avg}"
        );
    }

    #[test]
    fn percentiles_are_monotone() {
        let s = sim(ValidationModel::Constant(1000));
        let r = s.run(11);
        assert_eq!(r.percentile_ms(0.0), 0.0);
        assert!(r.percentile_ms(0.5) <= r.percentile_ms(0.9));
        assert_eq!(r.percentile_ms(1.0), r.last_receive_ms());
    }

    #[test]
    fn origin_validates_before_first_relay() {
        // With huge validation and tiny latency, the second receiver's
        // time is at least the validation delay.
        let s = GossipSim::new(SimParams {
            validation: ValidationModel::Constant(100_000),
            latency: LatencyMatrix {
                scale: 0.001,
                jitter: 0.0,
            },
            ..Default::default()
        });
        let r = s.run(9);
        let sorted = r.sorted_ms();
        assert!(sorted[1] >= 100.0, "second receipt at {} ms", sorted[1]);
    }
}
