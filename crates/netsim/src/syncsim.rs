//! Sync-under-faults simulation: the real multi-peer driver, modeled
//! validation cost.
//!
//! The gossip simulator ([`crate::sim`]) models *propagation*; this module
//! models *synchronization*. A [`ModelNode`] implements the sync
//! subsystem's `ValidatingNode` with structural checking only, charging
//! each connected block a validation time drawn from a per-system
//! [`ValidationModel`] — so the actual `ebv-core` driver (scoring, backoff,
//! bans, fork resolution) runs unchanged, while validation cost stays a
//! model knob. [`sync_under_faults`] then asks: with the same peers
//! misbehaving the same deterministic way, how much modeled validation
//! time does each system pay to reach the tip?
//!
//! Because the baseline's cache-dependent model has heavy spikes and EBV's
//! is tight, the EBV node pays both less time and less *variance* for the
//! identical fault schedule — the sync-layer analogue of Fig. 18.

use crate::validation::ValidationModel;
use ebv_chain::{Block, BlockHeader};
use ebv_core::sync::{
    serve_adversary, serve_blocks, sync_multi, AdversarialServer, Fault, FaultSchedule, FaultyPeer,
    PeerHandle, SyncConfig, SyncError, SyncReport, TcpPeer, TcpServer, ValidatingNode,
    WireAdversary, WireConfig,
};
use ebv_primitives::encode::{Decodable, DecodeError};
use ebv_primitives::hash::Hash256;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Why a [`ModelNode`] rejected a block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModelError {
    /// `prev_block_hash` does not extend the tip.
    NotOnTip,
    /// Context-free structure failure (merkle root, coinbase shape, PoW).
    BadStructure,
}

/// A header-chain node that charges modeled validation time per block
/// instead of running EV/UV/SV for real.
pub struct ModelNode {
    headers: Vec<BlockHeader>,
    model: ValidationModel,
    rng: SmallRng,
    /// Modeled validation time accumulated across connected blocks, µs.
    pub modeled_us: u64,
    /// Blocks accepted (reorg reconnects included).
    pub blocks_validated: u64,
}

impl ModelNode {
    /// Boot from a genesis block; `seed` fixes the validation-time draws.
    pub fn new(genesis: &Block, model: ValidationModel, seed: u64) -> ModelNode {
        ModelNode {
            headers: vec![genesis.header],
            model,
            rng: SmallRng::seed_from_u64(seed),
            modeled_us: 0,
            blocks_validated: 0,
        }
    }
}

impl ValidatingNode for ModelNode {
    type Block = Block;
    type Error = ModelError;

    fn decode_block(bytes: &[u8]) -> Result<Block, DecodeError> {
        Block::from_bytes(bytes)
    }

    fn block_hash(block: &Block) -> Hash256 {
        block.header.hash()
    }

    fn block_prev_hash(block: &Block) -> Hash256 {
        block.header.prev_block_hash
    }

    fn tip_height(&self) -> u32 {
        (self.headers.len() - 1) as u32
    }

    fn tip_hash(&self) -> Hash256 {
        self.headers[self.headers.len() - 1].hash()
    }

    fn header_hash_at(&self, height: u32) -> Option<Hash256> {
        self.headers.get(height as usize).map(BlockHeader::hash)
    }

    fn connect_block(&mut self, block: &Block) -> Result<(), ModelError> {
        if block.header.prev_block_hash != self.tip_hash() {
            return Err(ModelError::NotOnTip);
        }
        if block.check_structure().is_err() {
            return Err(ModelError::BadStructure);
        }
        self.modeled_us += self.model.sample_us(&mut self.rng);
        self.blocks_validated += 1;
        self.headers.push(block.header);
        Ok(())
    }

    fn disconnect_tip_block(&mut self) -> Result<Option<u32>, ModelError> {
        if self.headers.len() <= 1 {
            return Ok(None);
        }
        self.headers.pop();
        Ok(Some(self.tip_height()))
    }

    fn is_not_on_tip(err: &ModelError) -> bool {
        matches!(err, ModelError::NotOnTip)
    }

    fn check_invariants(&self) -> Result<(), String> {
        if self.headers.is_empty() {
            return Err("header chain is empty".to_string());
        }
        Ok(())
    }
}

/// What one modeled sync run cost.
#[derive(Debug)]
pub struct SyncSimResult {
    /// Modeled validation time spent by the destination node, µs.
    pub modeled_validation_us: u64,
    /// Final tip height.
    pub tip_height: u32,
    /// The driver's own accounting (per-peer stats, reorgs, rounds).
    pub report: SyncReport,
}

/// Drive a [`ModelNode`] to the tip of `chain` through one honest peer and
/// `faulty` additional peers, each injecting faults from a seeded schedule
/// (`fault_seed` + peer index; `rate_percent` of requests misbehave).
///
/// Everything that matters is deterministic per seed: the fault schedule,
/// the validation-time draws, and the converged final state.
pub fn sync_under_faults(
    chain: &[Block],
    model: ValidationModel,
    faulty: usize,
    fault_seed: u64,
    rate_percent: u64,
) -> Result<SyncSimResult, SyncError<ModelError>> {
    let mut node = ModelNode::new(&chain[0], model, fault_seed ^ 0x5eed);
    let mut peers = Vec::with_capacity(faulty + 1);
    for p in 0..faulty {
        let schedule = FaultSchedule::seeded(
            fault_seed.wrapping_add(p as u64),
            rate_percent,
            vec![
                Fault::Corrupt,
                Fault::Truncate,
                Fault::WrongHeight { offset: 3 },
                Fault::StaleTip,
            ],
        );
        peers.push(PeerHandle::spawn(
            p,
            FaultyPeer::new(chain.to_vec(), schedule),
        ));
    }
    peers.push(PeerHandle::spawn(faulty, chain.to_vec()));
    let report = sync_multi(&mut node, peers, &SyncConfig::fast_test())?;
    Ok(SyncSimResult {
        modeled_validation_us: node.modeled_us,
        tip_height: node.tip_height(),
        report,
    })
}

/// [`sync_under_faults`], but over real localhost TCP: `honest` honest
/// servers plus one byte-level adversary server per entry in
/// `adversaries`, all driven by `TcpPeer` transports through the same
/// driver. Because a `ModelNode` validates structurally (no EV/UV/SV
/// cost), this scales to dozens-to-hundreds of peers cheaply — the
/// netsim-scale churn/partition scenarios run through here.
///
/// Servers live until the run completes; the result is deterministic in
/// everything but wall-clock (peer choice depends only on scores/ids).
pub fn sync_under_wire_faults(
    chain: &[Block],
    model: ValidationModel,
    honest: usize,
    adversaries: &[WireAdversary],
    seed: u64,
) -> Result<SyncSimResult, SyncError<ModelError>> {
    let network = chain[0].header.hash();
    let wire = WireConfig::fast_test();
    let mut node = ModelNode::new(&chain[0], model, seed ^ 0x5eed);
    let mut adv_servers: Vec<AdversarialServer> = Vec::with_capacity(adversaries.len());
    let mut servers: Vec<TcpServer> = Vec::with_capacity(honest);
    let mut peers = Vec::with_capacity(adversaries.len() + honest);
    for (p, adv) in adversaries.iter().enumerate() {
        let server = serve_adversary(chain.to_vec(), network, *adv, wire)
            .unwrap_or_else(|e| panic!("bind adversary {}: {e}", adv.label()));
        peers.push(TcpPeer::new(p, server.addr(), network, wire));
        adv_servers.push(server);
    }
    for h in 0..honest {
        let server = serve_blocks(chain.to_vec(), network, wire)
            .unwrap_or_else(|e| panic!("bind honest server {h}: {e}"));
        peers.push(TcpPeer::new(
            adversaries.len() + h,
            server.addr(),
            network,
            wire,
        ));
        servers.push(server);
    }
    let report = sync_multi(&mut node, peers, &SyncConfig::fast_test())?;
    Ok(SyncSimResult {
        modeled_validation_us: node.modeled_us,
        tip_height: node.tip_height(),
        report,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ebv_workload::{ChainGenerator, GeneratorParams};

    fn chain() -> Vec<Block> {
        ChainGenerator::new(GeneratorParams::tiny(20, 11)).generate()
    }

    #[test]
    fn model_node_reaches_tip_through_faulty_peers() {
        let blocks = chain();
        let tip = blocks.len() as u32 - 1;
        let result =
            sync_under_faults(&blocks, ValidationModel::Constant(100), 3, 42, 40).expect("sync");
        assert_eq!(result.tip_height, tip);
        assert_eq!(result.modeled_validation_us, 100 * u64::from(tip));
        assert_eq!(result.report.blocks_connected, tip);
    }

    #[test]
    fn ebv_model_pays_less_than_baseline_for_same_faults() {
        let blocks = chain();
        let ebv = sync_under_faults(&blocks, ValidationModel::ebv_from_mean_us(1_000), 2, 7, 30)
            .expect("ebv sync");
        let baseline = sync_under_faults(
            &blocks,
            ValidationModel::baseline_from_mean_us(100_000),
            2,
            7,
            30,
        )
        .expect("baseline sync");
        assert_eq!(ebv.tip_height, baseline.tip_height);
        assert!(
            ebv.modeled_validation_us < baseline.modeled_validation_us / 10,
            "ebv {} vs baseline {}",
            ebv.modeled_validation_us,
            baseline.modeled_validation_us
        );
    }

    #[test]
    fn model_node_syncs_over_tcp_against_every_wire_adversary() {
        let blocks = chain();
        let tip = blocks.len() as u32 - 1;
        let advs = WireAdversary::all(std::time::Duration::from_millis(5));
        let n_advs = advs.len();
        let result = sync_under_wire_faults(&blocks, ValidationModel::Constant(10), 1, &advs, 3)
            .expect("one honest TCP peer must carry the sync");
        assert_eq!(result.tip_height, tip);
        for (p, adv) in advs.iter().enumerate() {
            let stats = &result.report.peers[p];
            assert!(
                stats.banned,
                "adversary {} (peer {p}) not banned",
                adv.label()
            );
            assert!(
                stats.banned_at_us.is_some(),
                "ban time missing for {}",
                adv.label()
            );
        }
        assert!(!result.report.peers[n_advs].banned, "honest peer banned");
    }

    #[test]
    fn rejects_structurally_bad_block() {
        let blocks = chain();
        let mut node = ModelNode::new(&blocks[0], ValidationModel::Constant(1), 0);
        let mut bad = blocks[1].clone();
        bad.header.merkle_root = Hash256::ZERO;
        assert_eq!(node.connect_block(&bad), Err(ModelError::BadStructure));
        let mut off_tip = blocks[2].clone();
        off_tip.header.prev_block_hash = Hash256::ZERO;
        assert_eq!(node.connect_block(&off_tip), Err(ModelError::NotOnTip));
    }
}
