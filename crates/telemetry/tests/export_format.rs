//! Exporter format guarantees:
//!
//! * the Prometheus text output for a fixed registry matches a committed
//!   golden file line by line, and every line obeys the exposition format;
//! * the JSON snapshot round-trips through this crate's own parser with
//!   the values intact;
//! * histogram quantiles over a known distribution stay inside the
//!   log-linear bucketing's 12.5% error bound.

use ebv_telemetry::{json, json_snapshot, prometheus_text, Registry, Snapshot};

/// A fixed registry exercising every metric kind, labels included.
/// Metrics only accept updates while the process-global switch is on.
fn sample_snapshot() -> Snapshot {
    ebv_telemetry::set_enabled(true);
    let r = Registry::new();
    r.counter("ebv.blocks_connected").add(60);
    r.counter("ebv.pubkey_cache.hits").add(30);
    r.counter("ebv.pubkey_cache.misses").add(10);
    r.counter("store.fetches").add(200);
    r.counter("store.cache.hits").add(150);
    r.counter("sync.peer.requests{peer=3}").add(17);
    r.counter("sync.peer.wire_errors{peer=3}").add(5);
    r.counter("sync.peer.wire_errors{peer=3,class=bad_magic}")
        .add(3);
    r.counter("sync.peer.wire_errors{peer=3,class=oversized_frame}")
        .add(2);
    r.gauge("sync.peer.banned_at_us{peer=3}").set(8_214);
    r.gauge("ebv.bitvec.resident_bytes").set(4096);
    let h = r.histogram("ebv.sv");
    for v in [5u64, 100, 100, 250_000] {
        h.record(v);
    }
    r.snapshot()
}

/// Regenerate the golden file after an intentional format change:
///
/// ```text
/// cargo test -p ebv-telemetry --test export_format -- --ignored regenerate
/// ```
#[test]
#[ignore = "writes the golden file; run explicitly after intentional format changes"]
fn regenerate_golden_file() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/metrics.prom");
    std::fs::write(path, prometheus_text(&sample_snapshot())).expect("write golden");
}

#[test]
fn prometheus_output_matches_golden_file() {
    let got = prometheus_text(&sample_snapshot());
    let want = include_str!("golden/metrics.prom");
    for (i, (g, w)) in got.lines().zip(want.lines()).enumerate() {
        assert_eq!(g, w, "line {} differs", i + 1);
    }
    assert_eq!(
        got.lines().count(),
        want.lines().count(),
        "line count differs from golden file"
    );
}

#[test]
fn prometheus_lines_obey_the_exposition_format() {
    let text = prometheus_text(&sample_snapshot());
    assert!(!text.is_empty());
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split(' ');
            let name = parts.next().expect("metric name");
            let kind = parts.next().expect("metric kind");
            assert!(parts.next().is_none(), "trailing tokens: {line}");
            assert!(is_prom_name(name), "bad metric name {name:?}");
            assert!(
                matches!(kind, "counter" | "gauge" | "histogram"),
                "bad kind in {line:?}"
            );
            continue;
        }
        // A sample line: name[{labels}] value
        let (series, value) = line.rsplit_once(' ').expect("sample line has a value");
        value
            .parse::<f64>()
            .unwrap_or_else(|_| panic!("bad value in {line:?}"));
        let name = match series.split_once('{') {
            Some((name, labels)) => {
                let body = labels.strip_suffix('}').expect("closed label set");
                for pair in body.split(',') {
                    let (k, v) = pair.split_once('=').expect("label k=v");
                    assert!(is_prom_name(k), "bad label name {k:?}");
                    assert!(
                        v.starts_with('"') && v.ends_with('"'),
                        "unquoted label value in {line:?}"
                    );
                }
                name
            }
            None => series,
        };
        assert!(is_prom_name(name), "bad series name {name:?}");
    }
}

fn is_prom_name(s: &str) -> bool {
    !s.is_empty()
        && !s.starts_with(|c: char| c.is_ascii_digit())
        && s.chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

#[test]
fn json_snapshot_round_trips_through_own_parser() {
    let snap = sample_snapshot();
    let text = json_snapshot(&snap);
    let v = json::parse(&text).expect("exporter output is valid JSON");

    let counters = v.get("counters").expect("counters object");
    assert_eq!(
        counters
            .get("ebv.blocks_connected")
            .and_then(json::Value::as_f64),
        Some(60.0)
    );
    assert_eq!(
        counters
            .get("sync.peer.requests{peer=3}")
            .and_then(json::Value::as_f64),
        Some(17.0)
    );
    // Per-peer wire violations: the plain total and the class breakdown
    // must both survive export.
    assert_eq!(
        counters
            .get("sync.peer.wire_errors{peer=3}")
            .and_then(json::Value::as_f64),
        Some(5.0)
    );
    assert_eq!(
        counters
            .get("sync.peer.wire_errors{peer=3,class=bad_magic}")
            .and_then(json::Value::as_f64),
        Some(3.0)
    );
    assert_eq!(
        v.get("gauges")
            .and_then(|g| g.get("sync.peer.banned_at_us{peer=3}"))
            .and_then(json::Value::as_f64),
        Some(8_214.0)
    );
    assert_eq!(
        v.get("gauges")
            .and_then(|g| g.get("ebv.bitvec.resident_bytes"))
            .and_then(json::Value::as_f64),
        Some(4096.0)
    );
    let sv = v
        .get("histograms")
        .and_then(|h| h.get("ebv.sv"))
        .expect("ebv.sv histogram");
    assert_eq!(sv.get("count").and_then(json::Value::as_f64), Some(4.0));
    assert_eq!(sv.get("sum").and_then(json::Value::as_f64), Some(250_205.0));
    assert_eq!(
        sv.get("min").and_then(json::Value::as_f64),
        Some(5.0),
        "exact observed minimum survives export"
    );
    assert_eq!(sv.get("max").and_then(json::Value::as_f64), Some(250_000.0));
    // 150 hits over 200 fetches.
    assert_eq!(
        v.get("derived")
            .and_then(|d| d.get("store.cache.hit_ratio"))
            .and_then(json::Value::as_f64),
        Some(0.75)
    );

    // Serializing the parsed value parses back to the same tree.
    let reserialized = json::serialize(&v);
    assert_eq!(json::parse(&reserialized).expect("still valid"), v);
}

#[test]
fn quantiles_stay_inside_the_bucketing_error_bound() {
    ebv_telemetry::set_enabled(true);
    let r = Registry::new();
    let h = r.histogram("q");
    for v in 1..=1000u64 {
        h.record(v);
    }
    let s = h.snapshot();
    assert_eq!(s.count, 1000);
    assert_eq!(s.sum, 500_500);
    assert_eq!(s.min, 1, "min is tracked exactly, not bucketed");
    assert_eq!(s.max, 1000);

    // Log-linear buckets with 8 sub-buckets per octave bound the relative
    // error at 12.5%; quantiles report a bucket's inclusive upper bound,
    // so the estimate can only overshoot.
    for (q, exact) in [(0.50, 500u64), (0.90, 900), (0.99, 990)] {
        let est = s.quantile(q);
        assert!(est >= exact, "q={q}: estimate {est} below exact {exact}");
        assert!(
            (est - exact) as f64 <= exact as f64 * 0.125 + 1.0,
            "q={q}: estimate {est} beyond the 12.5% bound of exact {exact}"
        );
    }
    assert_eq!(s.quantile(1.0), 1000, "p100 is the observed max");
    assert_eq!(s.quantile(0.0), 1, "p0 is the exact observed min");

    // A single-sample histogram has no bucket slack at the extremes:
    // every quantile is the sample, exactly.
    let one = r.histogram("q.single");
    one.record(777);
    let s = one.snapshot();
    assert_eq!((s.min, s.max), (777, 777));
    for q in [0.0, 0.5, 0.99, 1.0] {
        assert_eq!(s.quantile(q), 777, "q={q} must clamp to [min, max]");
    }
}

#[test]
fn hostile_label_values_are_escaped_in_prometheus_output() {
    // A peer slug / error class carrying every character the exposition
    // format treats specially: backslash, double quote, newline.
    let snap = Snapshot {
        counters: vec![("sync.peer.wire_errors{peer=3,class=a\\b\"c\nd}".into(), 1)],
        ..Default::default()
    };
    let text = prometheus_text(&snap);
    // The raw newline must not split the sample line.
    let samples: Vec<&str> = text.lines().filter(|l| !l.starts_with('#')).collect();
    assert_eq!(samples.len(), 1, "hostile label split the line: {text:?}");
    assert!(
        samples[0].contains("class=\"a\\\\b\\\"c\\nd\""),
        "bad escaping in {:?}",
        samples[0]
    );
}
