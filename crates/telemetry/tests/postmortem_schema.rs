//! Post-mortem bundle schema guarantees:
//!
//! * a bundle rendered from fixed inputs matches a committed golden file
//!   byte for byte (the schema is an interface — `ebv-cli postmortem`
//!   and external tooling parse it);
//! * the bundle parses with this crate's own JSON parser and exposes the
//!   documented fields.

use ebv_telemetry::flight::{render_bundle, BUNDLE_SCHEMA};
use ebv_telemetry::json;

/// Fixed inputs exercising every bundle field: a trace-filtered causal
/// chain, per-subsystem drop counts, ring-overflow count, an embedded
/// metrics snapshot, and caller extras (per-peer stats).
fn sample_bundle() -> String {
    let events = vec![
        r#"{"seq":40,"ts_us":100,"event":"sync.peer_score","trace":"00000000deadbeef","span":"0000000000000a01","parent":"00000000deadbeef","peer":9,"score":40,"reason":"decode"}"#.to_string(),
        r#"{"seq":41,"ts_us":180,"event":"sync.backoff","trace":"00000000deadbeef","span":"0000000000000a01","parent":"00000000deadbeef","peer":9,"delay_us":500}"#.to_string(),
        r#"{"seq":57,"ts_us":420,"event":"sync.peer_banned","trace":"00000000deadbeef","span":"0000000000000a02","parent":"00000000deadbeef","peer":9,"score":120,"last_reason":"decode"}"#.to_string(),
    ];
    let dropped = vec![("ebv".to_string(), 0u64), ("sync".to_string(), 12u64)];
    let metrics = r#"{"counters":{"sync.peer.bans":1},"gauges":{},"histograms":{},"derived":{}}"#;
    let extra = vec![(
        "peers",
        r#"[{"id":9,"batches":3,"decode_failures":3,"score":120,"banned":true}]"#.to_string(),
    )];
    render_bundle(
        "sync.peer_banned",
        Some("00000000deadbeef"),
        7,
        &events,
        &dropped,
        12,
        metrics,
        &extra,
    )
}

/// Regenerate the golden file after an intentional schema change:
///
/// ```text
/// cargo test -p ebv-telemetry --test postmortem_schema -- --ignored regenerate
/// ```
#[test]
#[ignore = "writes the golden file; run explicitly after intentional schema changes"]
fn regenerate_golden_file() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/postmortem.json");
    let mut text = sample_bundle();
    text.push('\n');
    std::fs::write(path, text).expect("write golden");
}

#[test]
fn bundle_matches_golden_file() {
    let got = sample_bundle();
    let want = include_str!("golden/postmortem.json");
    assert_eq!(got, want.trim_end(), "bundle schema drifted from golden");
}

#[test]
fn bundle_parses_and_exposes_documented_fields() {
    let v = json::parse(&sample_bundle()).expect("bundle is valid JSON");
    assert_eq!(
        v.get("schema").and_then(json::Value::as_str),
        Some(BUNDLE_SCHEMA)
    );
    assert_eq!(v.get("seq").and_then(json::Value::as_f64), Some(7.0));
    assert_eq!(
        v.get("trigger").and_then(json::Value::as_str),
        Some("sync.peer_banned")
    );
    assert_eq!(
        v.get("trace").and_then(json::Value::as_str),
        Some("00000000deadbeef")
    );
    let events = match v.get("events") {
        Some(json::Value::Array(a)) => a,
        other => panic!("events array missing: {other:?}"),
    };
    assert_eq!(events.len(), 3);
    // Every event in the causal chain carries the bundle's trace id —
    // the chain is reconstructible from ids alone.
    for e in events {
        assert_eq!(
            e.get("trace").and_then(json::Value::as_str),
            Some("00000000deadbeef")
        );
    }
    assert_eq!(
        v.get("dropped")
            .and_then(|d| d.get("sync"))
            .and_then(json::Value::as_f64),
        Some(12.0),
        "per-subsystem drop counts label truncated evidence"
    );
    assert_eq!(
        v.get("trace_dropped").and_then(json::Value::as_f64),
        Some(12.0)
    );
    assert_eq!(
        v.get("metrics")
            .and_then(|m| m.get("counters"))
            .and_then(|c| c.get("sync.peer.bans"))
            .and_then(json::Value::as_f64),
        Some(1.0)
    );
    let peers = match v.get("peers") {
        Some(json::Value::Array(a)) => a,
        other => panic!("peers extra missing: {other:?}"),
    };
    assert_eq!(peers[0].get("id").and_then(json::Value::as_f64), Some(9.0));
}

#[test]
fn bundle_without_trace_renders_null_not_missing() {
    let bundle = render_bundle(
        "ibd.stitch_mismatch",
        None,
        1,
        &[],
        &[],
        0,
        r#"{"counters":{},"gauges":{},"histograms":{},"derived":{}}"#,
        &[],
    );
    let v = json::parse(&bundle).expect("valid JSON");
    assert!(
        v.get("trace").is_some_and(json::Value::is_null),
        "trace field present and null"
    );
    assert!(matches!(
        v.get("events"),
        Some(json::Value::Array(a)) if a.is_empty()
    ));
}
