//! Telemetry for the EBV reproduction.
//!
//! The paper's argument is a measurement claim, so measurement is core
//! infrastructure here, not an afterthought. This crate provides — with no
//! external dependencies, matching the `shims/` convention —
//!
//! * a process-global, sharded [`Registry`] of named [`Counter`]s,
//!   [`Gauge`]s and log-linear-bucket [`Histogram`]s whose update paths are
//!   single atomic RMWs, cheap enough for the per-input SV loop;
//! * a [`span!`] macro producing a RAII [`Span`] guard that times a scope,
//!   feeds an optional `&mut Duration` accumulator (the existing
//!   `EbvBreakdown`/`BaselineBreakdown`/`DboStats` fields, so the figure
//!   binaries' output is unchanged) and records the elapsed nanoseconds
//!   into a histogram;
//! * a structured event trace ([`trace_event!`]): a bounded ring buffer of
//!   timestamped JSONL lines that can tee to a file ([`trace_tee_to_file`]);
//! * causal identity ([`context`]): seeded, deterministic 64-bit
//!   trace/span ids with parent links that every trace line carries while
//!   a [`child_span!`] guard is live;
//! * a flight recorder ([`flight`]): per-subsystem evidence rings dumped
//!   as self-contained post-mortem bundles at failure time;
//! * health ([`health`]): progress heartbeats, a stall [`Watchdog`], and
//!   an SLO evaluator for CI gating;
//! * a time-series recorder ([`timeseries`]): periodic delta snapshots to
//!   JSONL for long-run trajectories;
//! * exporters: Prometheus text format ([`export::prometheus_text`]) and a
//!   JSON snapshot ([`export::json_snapshot`]).
//!
//! Everything is gated on a process-global runtime switch ([`set_enabled`]):
//! when disabled, spans skip the clock reads entirely (except when an
//! accumulator needs the duration) and counters/histograms are single
//! predictable branches. The overhead guard test in the root crate holds
//! this to < 5% on a 1k-block validation run.
//!
//! Metric naming scheme: `ebv.*` for the EBV validator, `baseline.*` for the
//! comparator, `store.*` for the status database, `sync.*` for the peer
//! driver, `netsim.*` for the gossip simulator. Labels ride in the name as
//! `name{key=value,...}`; exporters split them back out.

pub mod context;
pub mod export;
pub mod flight;
pub mod health;
pub mod json;
pub mod metrics;
pub mod registry;
pub mod span;
pub mod timeseries;
pub mod trace;

pub use context::{SpanGuard, TraceCtx};
pub use export::{json_snapshot, prometheus_text, write_metrics_files, Snapshot};
pub use health::{evaluate_slo, heartbeat, SloViolation, Watchdog};
pub use metrics::{Counter, Gauge, Histogram, HistogramSnapshot};
pub use registry::{counter, gauge, global, histogram, Registry};
pub use span::Span;
pub use timeseries::TimeseriesRecorder;
pub use trace::{
    trace_clear, trace_event, trace_snapshot, trace_tee_to_file, trace_untee, TraceValue,
};

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

/// Process-global telemetry switch. Off by default: library users opt in.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Is telemetry recording enabled?
///
/// Instrumentation call sites use this to skip work that is more than one
/// atomic update (e.g. walking the bit-vector set to refresh gauges).
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turn telemetry recording on or off process-wide.
///
/// This is a runtime switch rather than a cargo feature so a single test
/// process can compare enabled-vs-disabled wall clock (the overhead guard).
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// A thin `Instant` wrapper for legitimate wall-clock measurement outside
/// the telemetry crate (figure binaries, IBD period walls).
///
/// CI greps the workspace for bare `Instant::now()` outside this crate and
/// `crates/bench` to keep instrumentation centralized; code that genuinely
/// needs a wall clock uses `Stopwatch` instead.
#[derive(Clone, Copy, Debug)]
pub struct Stopwatch {
    start: Instant,
}

impl Stopwatch {
    /// Start the clock.
    #[inline]
    pub fn start() -> Self {
        Stopwatch {
            start: Instant::now(),
        }
    }

    /// Elapsed time since `start()`.
    #[inline]
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }
}

impl Default for Stopwatch {
    fn default() -> Self {
        Stopwatch::start()
    }
}
