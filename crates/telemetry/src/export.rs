//! Exporters: Prometheus text format and JSON snapshot.
//!
//! Metric names use dots (`ebv.sv`) with optional embedded labels
//! (`sync.peer.requests{peer=3}`). Prometheus output maps dots to
//! underscores and re-emits the labels as proper label sets; the JSON
//! snapshot keeps the registry names verbatim as object keys.
//!
//! The JSON snapshot carries a `derived` section for ratios computed at
//! export time. A cache hit ratio with zero fetches is rendered as `null`
//! (JSON) or omitted (Prometheus) rather than a misleading 1.0 — see
//! `DboStats::hit_ratio_opt` in `ebv-store`.

use crate::metrics::HistogramSnapshot;
use std::fmt::Write as _;
use std::path::Path;

/// Point-in-time copy of a [`Registry`](crate::Registry), sorted by name.
#[derive(Clone, Debug, Default)]
pub struct Snapshot {
    pub counters: Vec<(String, u64)>,
    pub gauges: Vec<(String, u64)>,
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

impl Snapshot {
    /// Value of the named counter, if registered.
    pub fn counter_value(&self, name: &str) -> Option<u64> {
        self.counters
            .binary_search_by(|(n, _)| n.as_str().cmp(name))
            .ok()
            .map(|i| self.counters[i].1)
    }

    /// `hits / total` as a ratio, or `None` when nothing was counted —
    /// avoids reporting a perfect ratio for an idle cache.
    fn ratio(&self, hits: &str, total: &str) -> Option<f64> {
        let total = self.counter_value(total)?;
        if total == 0 {
            return None;
        }
        Some(self.counter_value(hits).unwrap_or(0) as f64 / total as f64)
    }

    /// Ratios derived from counters: `(name, value)`, `None` when the
    /// denominator is zero or the counters were never registered.
    pub fn derived(&self) -> Vec<(&'static str, Option<f64>)> {
        let pubkey_total = self
            .counter_value("ebv.pubkey_cache.hits")
            .unwrap_or(0)
            .checked_add(self.counter_value("ebv.pubkey_cache.misses").unwrap_or(0));
        let pubkey_ratio = match pubkey_total {
            Some(t) if t > 0 => self
                .counter_value("ebv.pubkey_cache.hits")
                .map(|h| h as f64 / t as f64),
            _ => None,
        };
        vec![
            (
                "store.cache.hit_ratio",
                self.ratio("store.cache.hits", "store.fetches"),
            ),
            ("ebv.pubkey_cache.hit_ratio", pubkey_ratio),
        ]
    }
}

/// Split `name{k=v,...}` into the base name and its label pairs.
fn split_labels(name: &str) -> (&str, Vec<(&str, &str)>) {
    let Some(open) = name.find('{') else {
        return (name, Vec::new());
    };
    let Some(body) = name[open + 1..].strip_suffix('}') else {
        return (name, Vec::new());
    };
    let labels = body
        .split(',')
        .filter(|part| !part.is_empty())
        .map(|part| part.split_once('=').unwrap_or((part, "")))
        .collect();
    (&name[..open], labels)
}

/// Map a dotted metric name onto the Prometheus grammar
/// (`[a-zA-Z_:][a-zA-Z0-9_:]*`).
fn prom_name(base: &str) -> String {
    base.chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect()
}

fn prom_labels(out: &mut String, labels: &[(&str, &str)]) {
    if labels.is_empty() {
        return;
    }
    out.push('{');
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        // Exposition-format label escaping: backslash first (so the
        // escapes it introduces are not re-escaped), then newline and
        // quote. Peer slugs and error classes flow through here
        // unsanitized.
        let _ = write!(
            out,
            "{}=\"{}\"",
            prom_name(k),
            v.replace('\\', "\\\\")
                .replace('\n', "\\n")
                .replace('"', "\\\"")
        );
    }
    out.push('}');
}

fn prom_type_line(out: &mut String, last: &mut String, name: &str, kind: &str) {
    if name != last {
        let _ = writeln!(out, "# TYPE {name} {kind}");
        last.clear();
        last.push_str(name);
    }
}

/// Render the snapshot in the Prometheus text exposition format.
///
/// Histograms emit cumulative `_bucket{le="..."}` series (only buckets with
/// samples, plus `+Inf`), `_sum` and `_count`; derived ratios with a zero
/// denominator are omitted entirely.
pub fn prometheus_text(snap: &Snapshot) -> String {
    let mut out = String::new();
    let mut last_type = String::new();

    for (name, value) in &snap.counters {
        let (base, labels) = split_labels(name);
        let pname = prom_name(base);
        prom_type_line(&mut out, &mut last_type, &pname, "counter");
        out.push_str(&pname);
        prom_labels(&mut out, &labels);
        let _ = writeln!(out, " {value}");
    }

    for (name, value) in &snap.gauges {
        let (base, labels) = split_labels(name);
        let pname = prom_name(base);
        prom_type_line(&mut out, &mut last_type, &pname, "gauge");
        out.push_str(&pname);
        prom_labels(&mut out, &labels);
        let _ = writeln!(out, " {value}");
    }

    for (name, h) in &snap.histograms {
        let (base, labels) = split_labels(name);
        let pname = prom_name(base);
        prom_type_line(&mut out, &mut last_type, &pname, "histogram");
        let mut cumulative = 0u64;
        for &(upper, count) in &h.buckets {
            cumulative += count;
            out.push_str(&pname);
            out.push_str("_bucket");
            let mut le = labels.clone();
            let upper = upper.to_string();
            le.push(("le", upper.as_str()));
            prom_labels(&mut out, &le);
            let _ = writeln!(out, " {cumulative}");
        }
        out.push_str(&pname);
        out.push_str("_bucket");
        let mut le = labels.clone();
        le.push(("le", "+Inf"));
        prom_labels(&mut out, &le);
        let _ = writeln!(out, " {}", h.count);
        out.push_str(&pname);
        out.push_str("_sum");
        prom_labels(&mut out, &labels);
        let _ = writeln!(out, " {}", h.sum);
        out.push_str(&pname);
        out.push_str("_count");
        prom_labels(&mut out, &labels);
        let _ = writeln!(out, " {}", h.count);
    }

    for (name, ratio) in snap.derived() {
        if let Some(r) = ratio {
            let pname = prom_name(name);
            prom_type_line(&mut out, &mut last_type, &pname, "gauge");
            let _ = writeln!(out, "{pname} {r}");
        }
    }

    out
}

fn json_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        if v.fract() == 0.0 && v.abs() < 9.0e15 {
            let _ = write!(out, "{}", v as i64);
        } else {
            let _ = write!(out, "{v}");
        }
    } else {
        out.push_str("null");
    }
}

/// Render the snapshot as a JSON document:
///
/// ```json
/// {"counters":{...},"gauges":{...},
///  "histograms":{"ebv.sv":{"count":..,"sum":..,"min":..,"max":..,
///                          "mean":..,"p50":..,"p90":..,"p99":..}},
///  "derived":{"store.cache.hit_ratio":null}}
/// ```
///
/// The output parses with [`crate::json::parse`] (round-trip tested).
pub fn json_snapshot(snap: &Snapshot) -> String {
    let mut out = String::from("{\"counters\":{");
    for (i, (name, value)) in snap.counters.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        crate::json::escape_into(&mut out, name);
        let _ = write!(out, ":{value}");
    }
    out.push_str("},\"gauges\":{");
    for (i, (name, value)) in snap.gauges.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        crate::json::escape_into(&mut out, name);
        let _ = write!(out, ":{value}");
    }
    out.push_str("},\"histograms\":{");
    for (i, (name, h)) in snap.histograms.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        crate::json::escape_into(&mut out, name);
        let _ = write!(
            out,
            ":{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"mean\":",
            h.count, h.sum, h.min, h.max
        );
        json_f64(&mut out, h.mean());
        let _ = write!(
            out,
            ",\"p50\":{},\"p90\":{},\"p99\":{}}}",
            h.p50(),
            h.p90(),
            h.p99()
        );
    }
    out.push_str("},\"derived\":{");
    for (i, (name, ratio)) in snap.derived().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        crate::json::escape_into(&mut out, name);
        out.push(':');
        match ratio {
            Some(r) => json_f64(&mut out, *r),
            None => out.push_str("null"),
        }
    }
    out.push_str("}}");
    out
}

/// Snapshot the global registry and write the requested export files.
pub fn write_metrics_files(
    prom_path: Option<&Path>,
    json_path: Option<&Path>,
) -> std::io::Result<()> {
    let snap = crate::registry::global().snapshot();
    if let Some(p) = prom_path {
        std::fs::write(p, prometheus_text(&snap))?;
    }
    if let Some(p) = json_path {
        std::fs::write(p, json_snapshot(&snap))?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_split_and_render() {
        let (base, labels) = split_labels("sync.peer.requests{peer=3}");
        assert_eq!(base, "sync.peer.requests");
        assert_eq!(labels, vec![("peer", "3")]);
        let (base, labels) = split_labels("ebv.sv");
        assert_eq!(base, "ebv.sv");
        assert!(labels.is_empty());
    }

    #[test]
    fn derived_ratio_is_none_with_zero_denominator() {
        let snap = Snapshot {
            counters: vec![("store.cache.hits".into(), 0), ("store.fetches".into(), 0)],
            ..Default::default()
        };
        assert_eq!(snap.derived()[0], ("store.cache.hit_ratio", None));
        let json = json_snapshot(&snap);
        assert!(json.contains("\"store.cache.hit_ratio\":null"), "{json}");
        assert!(!prometheus_text(&snap).contains("hit_ratio"));
    }
}
