//! Causal trace contexts: seeded 64-bit trace/span identifiers with
//! parent links.
//!
//! A [`TraceCtx`] names one span of work inside one *trace* (a sync
//! session, a parallel-IBD run, an eclipse campaign). Contexts form a
//! tree: [`TraceCtx::root`] starts a trace from a seed, and
//! [`TraceCtx::child`] derives a child span from a name and a caller
//! key. Derivation is a pure function — *no wall clock, no global
//! counter* — so the same seed and the same call structure produce the
//! same identifiers on every run, and spans created concurrently (the
//! parallel-IBD interval workers) get identical ids regardless of
//! scheduling order. That is what lets the determinism suite compare
//! trace trees byte for byte across same-seed runs.
//!
//! The current context rides a thread-local stack: entering a span (via
//! [`child_span!`](crate::child_span!) or [`SpanGuard`]) pushes, dropping
//! the guard pops, and [`crate::trace::trace_event`] reads the top to
//! stamp `{trace, span, parent}` onto every event line. Worker threads
//! don't inherit the stack — hand them the parent's `TraceCtx` value and
//! use [`SpanGuard::enter_under`].

use std::cell::RefCell;

/// One span of work within a trace. `trace` identifies the whole tree,
/// `span` this node, `parent` the enclosing span (0 at the root).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceCtx {
    pub trace: u64,
    pub span: u64,
    pub parent: u64,
}

/// splitmix64 finalizer — the same mixer the fault harness seeds with.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// FNV-1a over the span name, so distinct names at the same tree
/// position get distinct ids.
fn fnv(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

impl TraceCtx {
    /// Start a new trace from a seed. The same seed always yields the
    /// same trace id (ids are identity, not entropy).
    pub fn root(seed: u64) -> TraceCtx {
        let trace = mix(seed ^ 0x7ace_1d5e_ed00_0000) | 1; // never 0
        TraceCtx {
            trace,
            span: trace,
            parent: 0,
        }
    }

    /// Derive a child span. `name` is the span's kind ("sync.request"),
    /// `key` disambiguates siblings (request number, interval index).
    /// Pure in (self, name, key): concurrent derivation is
    /// order-independent.
    pub fn child(&self, name: &str, key: u64) -> TraceCtx {
        let span = mix(self.trace ^ self.span.rotate_left(17) ^ fnv(name) ^ mix(key)) | 1;
        TraceCtx {
            trace: self.trace,
            span,
            parent: self.span,
        }
    }
}

/// Render an id the way trace lines carry it: 16 lowercase hex digits.
pub fn hex_id(id: u64) -> String {
    format!("{id:016x}")
}

thread_local! {
    static STACK: RefCell<Vec<TraceCtx>> = const { RefCell::new(Vec::new()) };
}

/// The innermost entered context on this thread, if any.
pub fn current() -> Option<TraceCtx> {
    STACK.with(|s| s.borrow().last().copied())
}

/// The current trace id on this thread, if any — what flight-recorder
/// dumps filter causally-related events by.
pub fn current_trace() -> Option<u64> {
    current().map(|c| c.trace)
}

/// RAII guard for an entered span: emits `span.begin` on entry and
/// `span.end` (with the span's wall time) on drop, and keeps the
/// context current on this thread in between. Inert when telemetry is
/// disabled — no clock read, no stack push.
#[must_use = "a span ends on drop; binding it to `_` ends it immediately"]
pub struct SpanGuard {
    entered: Option<(&'static str, crate::Stopwatch)>,
}

impl SpanGuard {
    fn push(ctx: TraceCtx, name: &'static str) -> SpanGuard {
        STACK.with(|s| s.borrow_mut().push(ctx));
        crate::trace::trace_event(
            "span.begin",
            &[("name", crate::TraceValue::Str(name.to_string()))],
        );
        SpanGuard {
            entered: Some((name, crate::Stopwatch::start())),
        }
    }

    /// A guard that does nothing (no context, telemetry off).
    pub fn inert() -> SpanGuard {
        SpanGuard { entered: None }
    }

    /// Enter a child of the current context. Inert when telemetry is
    /// disabled or no trace is in progress on this thread.
    pub fn enter(name: &'static str, key: u64) -> SpanGuard {
        if !crate::enabled() {
            return SpanGuard::inert();
        }
        match current() {
            Some(ctx) => SpanGuard::push(ctx.child(name, key), name),
            None => SpanGuard::inert(),
        }
    }

    /// Enter a span that roots a new trace from `seed` when no trace is
    /// in progress, or nests as a child (keyed by `seed`) when one is —
    /// how subsystem entry points (sync sessions, parallel IBD) both
    /// stand alone and compose under a caller's trace.
    pub fn enter_root(name: &'static str, seed: u64) -> SpanGuard {
        if !crate::enabled() {
            return SpanGuard::inert();
        }
        let ctx = match current() {
            Some(parent) => parent.child(name, seed),
            None => TraceCtx::root(seed),
        };
        SpanGuard::push(ctx, name)
    }

    /// Enter a child of an explicit parent context — for worker threads,
    /// which do not inherit the spawning thread's stack.
    pub fn enter_under(parent: TraceCtx, name: &'static str, key: u64) -> SpanGuard {
        if !crate::enabled() {
            return SpanGuard::inert();
        }
        SpanGuard::push(parent.child(name, key), name)
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some((name, sw)) = self.entered.take() else {
            return;
        };
        crate::trace::trace_event(
            "span.end",
            &[
                ("name", crate::TraceValue::Str(name.to_string())),
                (
                    "wall_us",
                    crate::TraceValue::U64(sw.elapsed().as_micros() as u64),
                ),
            ],
        );
        STACK.with(|s| {
            s.borrow_mut().pop();
        });
    }
}

/// Enter a child span of the current trace context:
///
/// ```ignore
/// let _req = child_span!("sync.request", request_no);
/// ```
///
/// Every `trace_event!` emitted while the guard lives carries the child's
/// `{trace, span, parent}`. Inert (no events, no ids) when telemetry is
/// disabled or no trace is in progress on the calling thread.
#[macro_export]
macro_rules! child_span {
    ($name:expr) => {
        $crate::context::SpanGuard::enter($name, 0)
    };
    ($name:expr, $key:expr) => {
        $crate::context::SpanGuard::enter($name, $key as u64)
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_deterministic_per_seed() {
        let a = TraceCtx::root(42);
        let b = TraceCtx::root(42);
        assert_eq!(a, b, "same seed, same root");
        assert_ne!(TraceCtx::root(43).trace, a.trace);
        let c1 = a.child("sync.request", 7);
        let c2 = b.child("sync.request", 7);
        assert_eq!(c1, c2, "same (parent, name, key), same child");
        assert_ne!(c1.span, a.child("sync.request", 8).span);
        assert_ne!(c1.span, a.child("ibd.interval", 7).span);
        assert_eq!(c1.trace, a.trace, "children stay in the trace");
        assert_eq!(c1.parent, a.span);
    }

    #[test]
    fn sibling_derivation_is_order_independent() {
        let root = TraceCtx::root(9);
        let forward: Vec<u64> = (0..8).map(|k| root.child("ibd.interval", k).span).collect();
        let mut reverse: Vec<u64> = (0..8)
            .rev()
            .map(|k| root.child("ibd.interval", k).span)
            .collect();
        reverse.reverse();
        assert_eq!(forward, reverse);
    }

    #[test]
    fn guard_stacks_and_unwinds() {
        crate::set_enabled(true);
        assert_eq!(current(), None);
        {
            let _outer = SpanGuard::enter_root("test.ctx.outer", 5);
            let outer = current().expect("outer current");
            {
                let _inner = SpanGuard::enter("test.ctx.inner", 1);
                let inner = current().expect("inner current");
                assert_eq!(inner.parent, outer.span);
                assert_eq!(inner.trace, outer.trace);
            }
            assert_eq!(current(), Some(outer), "inner popped");
        }
        assert_eq!(current(), None, "outer popped");
    }

    #[test]
    fn enter_without_context_is_inert() {
        crate::set_enabled(true);
        let _g = SpanGuard::enter("test.ctx.orphan", 0);
        assert_eq!(current(), None, "no orphan contexts");
    }
}
